package closedrules

import (
	"context"
	"testing"
)

func TestGenerateQuestViaFacade(t *testing.T) {
	ds, err := GenerateQuest(QuestT10I4(300, 80, 5))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTransactions() != 300 || ds.NumItems() != 80 {
		t.Errorf("dims %d×%d", ds.NumTransactions(), ds.NumItems())
	}
	ds2, err := GenerateQuest(QuestT20I6(100, 80, 5))
	if err != nil {
		t.Fatal(err)
	}
	if s := ds2.Stats(); s.AvgLen < 10 {
		t.Errorf("T20 avg length %v too small", s.AvgLen)
	}
}

func TestGenerateCensusViaFacade(t *testing.T) {
	ds, err := GenerateCensus(CensusC20(120, 5))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTransactions() != 120 {
		t.Errorf("transactions = %d", ds.NumTransactions())
	}
	ds2, err := GenerateCensus(CensusC73(50, 5))
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Transaction(0).Len() != 73 {
		t.Errorf("C73 row length = %d", ds2.Transaction(0).Len())
	}
}

func TestGenerateMushroomViaFacade(t *testing.T) {
	ds, err := GenerateMushroom(MushroomConfig{NumObjects: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTransactions() != 60 {
		t.Errorf("transactions = %d", ds.NumTransactions())
	}
	if ds.ItemName(0) != "class=e" {
		t.Errorf("name = %q", ds.ItemName(0))
	}
}

// TestGeneratedPipelinesEndToEnd pushes each generated regime through
// the full pipeline once — the integration smoke test for the public
// API surface.
func TestGeneratedPipelinesEndToEnd(t *testing.T) {
	type workload struct {
		name   string
		ds     *Dataset
		minSup float64
	}
	quest, err := GenerateQuest(QuestT10I4(500, 60, 8))
	if err != nil {
		t.Fatal(err)
	}
	census, err := GenerateCensus(CensusC20(400, 8))
	if err != nil {
		t.Fatal(err)
	}
	mush, err := GenerateMushroom(MushroomConfig{NumObjects: 400, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []workload{
		{"quest", quest, 0.02},
		{"census", census, 0.5},
		{"mushroom", mush, 0.3},
	} {
		res, err := MineContext(context.Background(), w.ds, WithMinSupport(w.minSup))
		if err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		bases, err := res.Bases(0.5)
		if err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		all, err := res.AllRules(0.5)
		if err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		if len(all) > 0 && bases.Size() >= len(all) {
			t.Errorf("%s: bases (%d) not smaller than rules (%d)",
				w.name, bases.Size(), len(all))
		}
		// Engine round trip on a sample of rules.
		eng, err := bases.Engine()
		if err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		for i, want := range all {
			if i%25 != 0 {
				continue
			}
			got, err := eng.Rule(want.Antecedent, want.Consequent)
			if err != nil {
				t.Fatalf("%s: rule %v: %v", w.name, want, err)
			}
			if got.Support != want.Support {
				t.Fatalf("%s: rule %v support %d, want %d",
					w.name, want, got.Support, want.Support)
			}
		}
	}
}
