package closedrules

import (
	"context"
	"strings"
	"testing"
)

func storedCollection(t *testing.T) (*Result, *ClosedCollection) {
	t.Helper()
	d := classic(t)
	res, err := MineContext(context.Background(), d, WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.SaveClosedItemsets(&sb); err != nil {
		t.Fatal(err)
	}
	col, err := ReadClosedCollection(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return res, col
}

func TestCollectionRoundTrip(t *testing.T) {
	res, col := storedCollection(t)
	if col.Len() != res.NumClosed() {
		t.Fatalf("collection %d closed, result %d", col.Len(), res.NumClosed())
	}
	if col.NumTransactions() != 5 {
		t.Errorf("NumTransactions = %d", col.NumTransactions())
	}
}

func TestCollectionSupportsAndClosures(t *testing.T) {
	res, col := storedCollection(t)
	fi, err := res.FrequentItemsets()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fi {
		sup, ok := col.Support(f.Items)
		if !ok || sup != f.Support {
			t.Errorf("Support(%v) = %d,%v want %d", f.Items, sup, ok, f.Support)
		}
		wantCl, _ := res.Closure(f.Items)
		gotCl, ok := col.Closure(f.Items)
		if !ok || !gotCl.Items.Equal(wantCl.Items) {
			t.Errorf("Closure(%v) = %v want %v", f.Items, gotCl.Items, wantCl.Items)
		}
	}
	if _, ok := col.Support(Items(3)); ok {
		t.Error("infrequent item has support in collection")
	}
}

func TestCollectionBasesMatchResult(t *testing.T) {
	res, col := storedCollection(t)
	for _, minConf := range []float64{0, 0.7} {
		want, err := res.Bases(minConf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := col.LuxenburgerReduction(minConf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want.Approximate) {
			t.Fatalf("conf %v: collection %d rules, result %d",
				minConf, len(got), len(want.Approximate))
		}
		for i := range got {
			if got[i].Key() != want.Approximate[i].Key() {
				t.Fatalf("conf %v: rule %d differs", minConf, i)
			}
		}
	}
	gbRes, err := res.GenericBasis()
	if err != nil {
		t.Fatal(err)
	}
	gbCol, err := col.GenericBasis()
	if err != nil {
		t.Fatal(err)
	}
	if len(gbRes) != len(gbCol) {
		t.Fatalf("generic basis: collection %d, result %d", len(gbCol), len(gbRes))
	}
	ib, err := col.InformativeBasis(0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ib) == 0 {
		t.Error("empty informative basis from collection")
	}
	full, err := col.LuxenburgerFull(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 7 {
		t.Errorf("|Lux full| = %d, want 7", len(full))
	}
	if !strings.Contains(col.LatticeDOT(nil), "digraph lattice") {
		t.Error("bad DOT")
	}
}

func TestCollectionErrors(t *testing.T) {
	if _, err := NewClosedCollection(nil); err == nil {
		t.Error("empty collection accepted")
	}
	// Two incomparable closed sets without a bottom.
	bad := []ClosedItemset{
		{Items: Items(0), Support: 3},
		{Items: Items(1), Support: 3},
	}
	if _, err := NewClosedCollection(bad); err == nil {
		t.Error("bottomless collection accepted")
	}
	if _, err := ReadClosedCollection(strings.NewReader("garbage\tx\n")); err == nil {
		t.Error("garbage accepted")
	}
}
