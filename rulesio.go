package closedrules

import (
	"io"

	"closedrules/internal/itemset"
	"closedrules/internal/rules"
)

// WriteRulesJSON writes rules as a JSON array.
func WriteRulesJSON(w io.Writer, list []Rule) error { return rules.WriteJSON(w, list) }

// ReadRulesJSON parses rules written by WriteRulesJSON.
func ReadRulesJSON(r io.Reader) ([]Rule, error) { return rules.ReadJSON(r) }

// WriteRulesCSV writes rules as CSV (itemsets as space-separated ids).
func WriteRulesCSV(w io.Writer, list []Rule) error { return rules.WriteCSV(w, list) }

// ReadRulesCSV parses rules written by WriteRulesCSV.
func ReadRulesCSV(r io.Reader) ([]Rule, error) { return rules.ReadCSV(r) }

// FilterRules returns the rules satisfying pred, preserving order.
func FilterRules(list []Rule, pred func(Rule) bool) []Rule { return rules.Filter(list, pred) }

// RulesWithItem keeps rules mentioning the item on either side.
func RulesWithItem(list []Rule, item int) []Rule { return rules.WithItem(list, item) }

// RulesPredicting keeps rules whose consequent contains the item.
func RulesPredicting(list []Rule, item int) []Rule { return rules.WithConsequentItem(list, item) }

// RulesApplicableTo keeps rules whose antecedent is contained in the
// observed itemset.
func RulesApplicableTo(list []Rule, observed Itemset) []Rule {
	return rules.WithAntecedentSubsetOf(list, itemset.Itemset(observed))
}

// TopRulesByLift returns the k rules with the highest lift.
func TopRulesByLift(list []Rule, k, numTx int) []Rule {
	return rules.TopBy(list, k, rules.ByLift(numTx))
}
