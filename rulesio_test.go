package closedrules

import (
	"context"
	"strings"
	"testing"
)

func minedBases(t *testing.T) (*Result, *BasisPair) {
	t.Helper()
	d := classic(t)
	res, err := MineContext(context.Background(), d, WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	bases, err := res.Bases(0)
	if err != nil {
		t.Fatal(err)
	}
	return res, bases
}

func TestRulesJSONRoundTripViaFacade(t *testing.T) {
	_, bases := minedBases(t)
	var sb strings.Builder
	if err := WriteRulesJSON(&sb, bases.Approximate); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRulesJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(bases.Approximate) {
		t.Fatalf("round trip: %d != %d", len(got), len(bases.Approximate))
	}
}

func TestRulesCSVRoundTripViaFacade(t *testing.T) {
	_, bases := minedBases(t)
	var sb strings.Builder
	if err := WriteRulesCSV(&sb, bases.Exact); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRulesCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(bases.Exact) {
		t.Fatalf("round trip: %d != %d", len(got), len(bases.Exact))
	}
}

func TestRuleFilteringViaFacade(t *testing.T) {
	res, _ := minedBases(t)
	all, err := res.AllRules(0)
	if err != nil {
		t.Fatal(err)
	}
	// Item 3 (D) is infrequent: no rules mention it.
	if got := RulesWithItem(all, 3); len(got) != 0 {
		t.Errorf("RulesWithItem(D) = %d rules", len(got))
	}
	pred := RulesPredicting(all, 0) // rules concluding A
	for _, r := range pred {
		if !r.Consequent.Contains(0) {
			t.Errorf("rule %v does not predict A", r)
		}
	}
	if len(pred) == 0 {
		t.Error("no rules predicting A")
	}
	// Rules applicable when only C is observed: antecedent ⊆ {C}.
	app := RulesApplicableTo(all, Items(2))
	for _, r := range app {
		if !Items(2).ContainsAll(r.Antecedent) {
			t.Errorf("rule %v not applicable to {C}", r)
		}
	}
	// Custom predicate.
	exact := FilterRules(all, func(r Rule) bool { return r.IsExact() })
	for _, r := range exact {
		if !r.IsExact() {
			t.Errorf("non-exact rule %v", r)
		}
	}
}

func TestTopRulesByLiftViaFacade(t *testing.T) {
	res, _ := minedBases(t)
	all, err := res.AllRules(0)
	if err != nil {
		t.Fatal(err)
	}
	top := TopRulesByLift(all, 3, res.Dataset().NumTransactions())
	if len(top) != 3 {
		t.Fatalf("top = %d rules", len(top))
	}
	lift := func(r Rule) float64 {
		m, err := RuleMetrics(r, res.Dataset().NumTransactions())
		if err != nil {
			return -1
		}
		return m.Lift
	}
	if lift(top[0]) < lift(top[1]) || lift(top[1]) < lift(top[2]) {
		t.Errorf("top rules not sorted by lift: %v %v %v",
			lift(top[0]), lift(top[1]), lift(top[2]))
	}
}

func TestDeriveAllRulesViaFacade(t *testing.T) {
	res, _ := minedBases(t)
	for _, minConf := range []float64{0, 0.6, 1} {
		derived, err := res.DeriveAllRules(minConf)
		if err != nil {
			t.Fatal(err)
		}
		measured, err := res.AllRules(minConf)
		if err != nil {
			t.Fatal(err)
		}
		if len(derived) != len(measured) {
			t.Fatalf("conf %v: derived %d, measured %d", minConf, len(derived), len(measured))
		}
		for i := range measured {
			if derived[i].Key() != measured[i].Key() || derived[i].Support != measured[i].Support {
				t.Fatalf("conf %v: rule %d differs", minConf, i)
			}
		}
	}
}

func TestSaveLoadClosedItemsets(t *testing.T) {
	res, _ := minedBases(t)
	var sb strings.Builder
	if err := res.SaveClosedItemsets(&sb); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadClosedItemsets(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := res.ClosedItemsets()
	if len(loaded) != len(want) {
		t.Fatalf("loaded %d closed itemsets, want %d", len(loaded), len(want))
	}
	for i := range want {
		if !loaded[i].Items.Equal(want[i].Items) || loaded[i].Support != want[i].Support {
			t.Errorf("closed itemset %d differs", i)
		}
		if len(loaded[i].Generators) != len(want[i].Generators) {
			t.Errorf("closed itemset %d lost generators", i)
		}
	}
}

func TestMineFrequentAllBaselinesAgree(t *testing.T) {
	d := classic(t)
	ctx := context.Background()
	ap, err := MineFrequentContext(ctx, d, WithMinSupport(0.4), WithAlgorithm("apriori"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"eclat", "declat", "peclat", "pdeclat", "fpgrowth", "pascal"} {
		got, err := MineFrequentContext(ctx, d, WithMinSupport(0.4), WithAlgorithm(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(ap) {
			t.Fatalf("%s: %d itemsets, apriori %d", name, len(got), len(ap))
		}
		for i := range ap {
			if !got[i].Items.Equal(ap[i].Items) || got[i].Support != ap[i].Support {
				t.Fatalf("%s: itemset %d differs", name, i)
			}
		}
	}
}
