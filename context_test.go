package closedrules

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestMineContextPreCancelled asserts that every registered miner
// checks the context before doing any work.
func TestMineContextPreCancelled(t *testing.T) {
	d := classic(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range ClosedMiners() {
		_, err := MineContext(ctx, d, WithMinSupport(0.4), WithAlgorithm(name))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
	for _, name := range FrequentMiners() {
		_, err := MineFrequentContext(ctx, d, WithMinSupport(0.4), WithAlgorithm(name))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// explosive returns a dense random dataset whose pattern space is far
// too large to mine to completion at support 2: without cancellation
// every miner would run for minutes; with it, each must return within
// one level or extension step of the deadline.
func explosive(t *testing.T) *Dataset {
	t.Helper()
	r := rand.New(rand.NewSource(77))
	const (
		numTx    = 2000
		numItems = 30
	)
	raw := make([][]int, numTx)
	for o := range raw {
		for i := 0; i < numItems; i++ {
			if r.Float64() < 0.5 {
				raw[o] = append(raw[o], i)
			}
		}
	}
	d, err := NewDatasetWithUniverse(raw, numItems)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func assertCancelsPromptly(t *testing.T, name string, mine func(context.Context) error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := mine(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("%s: err = %v, want context.DeadlineExceeded", name, err)
	}
	// Generous bound: one level pass on the explosive dataset is well
	// under a second; minutes would mean the deadline was ignored.
	if elapsed > 15*time.Second {
		t.Errorf("%s: returned after %v, deadline ignored", name, elapsed)
	}
}

// TestMineContextCancelsMidMine drives every miner into a pattern
// space it cannot finish and asserts the deadline aborts it mid-run.
func TestMineContextCancelsMidMine(t *testing.T) {
	if testing.Short() {
		t.Skip("explosive dataset in -short mode")
	}
	d := explosive(t)
	for _, name := range ClosedMiners() {
		assertCancelsPromptly(t, name, func(ctx context.Context) error {
			_, err := MineContext(ctx, d, WithAbsoluteMinSupport(2), WithAlgorithm(name))
			return err
		})
	}
	for _, name := range FrequentMiners() {
		assertCancelsPromptly(t, name, func(ctx context.Context) error {
			_, err := MineFrequentContext(ctx, d, WithAbsoluteMinSupport(2), WithAlgorithm(name))
			return err
		})
	}
}
