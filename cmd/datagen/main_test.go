package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"closedrules"
)

func TestQuestToStdout(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-model", "quest", "-ntrans", "50", "-nitems", "40", "-seed", "3"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := closedrules.ReadDat(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTransactions() != 50 {
		t.Errorf("transactions = %d", ds.NumTransactions())
	}
}

func TestCensusToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.dat")
	var sb strings.Builder
	err := run([]string{"-model", "census", "-nobjects", "30", "-attrs", "5", "-values", "3", "-out", path}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote") {
		t.Errorf("summary: %q", sb.String())
	}
	ds, err := closedrules.ReadDatFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTransactions() != 30 {
		t.Errorf("transactions = %d", ds.NumTransactions())
	}
	for i := 0; i < ds.NumTransactions(); i++ {
		if ds.Transaction(i).Len() != 5 {
			t.Fatalf("tx %d has %d items, want 5", i, ds.Transaction(i).Len())
		}
	}
}

func TestMushroomModel(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "mushroom", "-nobjects", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	ds, err := closedrules.ReadDat(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTransactions() != 20 {
		t.Errorf("transactions = %d", ds.NumTransactions())
	}
}

func TestSameSeedSameData(t *testing.T) {
	var a, b strings.Builder
	args := []string{"-model", "quest", "-ntrans", "40", "-nitems", "30", "-seed", "9"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different data")
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{"-model", "bogus"},
		{"-model", "quest", "-t", "0"},
		{"-model", "census", "-noise", "2"},
		{"-model", "mushroom", "-nobjects", "-1"},
		{"-model", "quest", "-out", filepath.Join(string(os.PathSeparator), "no", "such", "dir", "x.dat")},
	}
	for i, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}
