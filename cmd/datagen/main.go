// Command datagen synthesizes the evaluation datasets (quest-style
// market baskets, census-like and mushroom-like nominal data) in the
// FIMI ".dat" format. See DESIGN.md §3 for the substitution rationale.
//
// Usage:
//
//	datagen -model quest -ntrans 100000 -nitems 1000 -t 10 -i 4 -out t10i4d100k.dat
//	datagen -model census -nobjects 10000 -attrs 20 -out c20d10k.dat
//	datagen -model mushroom -nobjects 8124 -out mushroom.dat
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"closedrules"
	"closedrules/internal/dataset"
	"closedrules/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		model    = fs.String("model", "quest", "quest | census | mushroom")
		out      = fs.String("out", "", "output .dat path (default stdout)")
		seed     = fs.Int64("seed", 1, "random seed")
		ntrans   = fs.Int("ntrans", 10000, "quest: number of transactions")
		nitems   = fs.Int("nitems", 1000, "quest: item universe size")
		avgTx    = fs.Int("t", 10, "quest: average transaction length (T)")
		avgPat   = fs.Int("i", 4, "quest: average pattern length (I)")
		patterns = fs.Int("patterns", 0, "quest: number of patterns (default 2×items)")
		nobj     = fs.Int("nobjects", 10000, "census/mushroom: number of objects")
		attrs    = fs.Int("attrs", 20, "census: number of attributes")
		values   = fs.Int("values", 10, "census: values per attribute")
		clusters = fs.Int("clusters", 8, "census: latent clusters")
		noise    = fs.Float64("noise", 0.15, "census: attribute noise")
		detfrac  = fs.Float64("detfrac", 0.5, "census: fraction of cluster-determined attributes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		d   *closedrules.Dataset
		err error
	)
	switch *model {
	case "quest":
		cfg := gen.QuestConfig{
			NumTransactions: *ntrans,
			AvgTxLen:        *avgTx,
			NumItems:        *nitems,
			NumPatterns:     *patterns,
			AvgPatternLen:   *avgPat,
			Correlation:     0.5,
			CorruptionMean:  0.5,
			CorruptionStd:   0.1,
			Seed:            *seed,
		}
		if cfg.NumPatterns == 0 {
			cfg.NumPatterns = 2 * cfg.NumItems
		}
		d, err = gen.Quest(cfg)
	case "census":
		d, err = gen.Census(gen.CensusConfig{
			NumObjects:            *nobj,
			NumAttributes:         *attrs,
			ValuesPerAttribute:    *values,
			NumClusters:           *clusters,
			Noise:                 *noise,
			DeterministicFraction: *detfrac,
			Seed:                  *seed,
		})
	case "mushroom":
		d, err = gen.Mushroom(gen.MushroomConfig{NumObjects: *nobj, Seed: *seed})
	default:
		return fmt.Errorf("unknown -model %q", *model)
	}
	if err != nil {
		return err
	}

	if *out == "" {
		return dataset.WriteDat(w, d)
	}
	if err := dataset.WriteDatFile(*out, d); err != nil {
		return err
	}
	s := d.Stats()
	fmt.Fprintf(w, "wrote %s: %d transactions, %d items, avg length %.2f\n",
		*out, s.NumTransactions, s.NumItems, s.AvgLen)
	return nil
}
