package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRepoClean runs the full multichecker over every package of the
// module, so a plain `go test ./...` fails the moment any enforced
// invariant regresses — the same gate CI applies with
// `go run ./cmd/arvet ./...`. The module-path pattern makes the run
// independent of the test's working directory.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"closedrules/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("arvet found regressions (exit %d):\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestList pins the analyzer roster: every analyzer the architecture
// documentation names must be present, so a silently dropped analyzer
// fails loudly.
func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("arvet -list: exit %d\n%s", code, stderr.String())
	}
	for _, name := range []string{"atomicsnapshot", "bitsetalias", "ctxcancel", "noalloc", "registry"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("arvet -list output is missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

// TestOnlyUnknown verifies the usage exit code for a bad -only value.
func TestOnlyUnknown(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nonesuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("arvet -only nonesuch: got exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr does not name the unknown analyzer:\n%s", stderr.String())
	}
}
