// Command arvet is the repo's own static-analysis multichecker: it
// runs the five invariant analyzers of internal/analysis/... over the
// named package patterns and fails when any finding survives. It is
// what turns the conventions PRs 1–5 established by review into
// machine-checked properties, so new miners and bases (GenClose, the
// incremental lattice work, the Balcázar/Hamrouni plugins) cannot
// silently regress the hot paths or drop cancellation coverage.
//
// Usage:
//
//	arvet [-list] [-only name[,name]] [packages]
//
// With no packages, ./... is checked. -list prints the analyzers and
// exits; -only restricts the run to a comma-separated subset. Like
// the doccheck gate, arvet is self-contained (standard library only)
// so CI can run it without network access; it must be invoked from
// inside the module, since package loading resolves imports through
// the module's source.
//
// The enforced invariants, the //ar:noalloc and //ar:nocancel
// annotation contracts, and the reasoning behind each analyzer are
// documented in docs/ARCHITECTURE.md under "Enforced invariants".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"closedrules/internal/analysis"
	"closedrules/internal/analysis/atomicsnapshot"
	"closedrules/internal/analysis/bitsetalias"
	"closedrules/internal/analysis/ctxcancel"
	"closedrules/internal/analysis/noalloc"
	"closedrules/internal/analysis/registrycheck"
)

// analyzers is the full multichecker suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	atomicsnapshot.Analyzer,
	bitsetalias.Analyzer,
	ctxcancel.Analyzer,
	noalloc.Analyzer,
	registrycheck.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the multichecker and returns the process exit code:
// 0 clean, 1 findings, 2 usage or load failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("arvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	suite, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "arvet:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "arvet:", err)
		return 2
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "arvet:", err)
		return 2
	}
	bad := 0
	for _, pkg := range pkgs {
		findings, err := analysis.Run(pkg, suite)
		if err != nil {
			fmt.Fprintln(stderr, "arvet:", err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		bad += len(findings)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "arvet: %d finding(s)\n", bad)
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only flag to a suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var suite []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, names())
		}
		suite = append(suite, a)
	}
	return suite, nil
}

// names lists the registered analyzer names.
func names() string {
	out := make([]string, len(analyzers))
	for i, a := range analyzers {
		out[i] = a.Name
	}
	return strings.Join(out, ", ")
}
