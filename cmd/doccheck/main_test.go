package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckDirFlagsUndocumentedExports(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", `// Package a is documented.
package a

// Documented is fine.
func Documented() {}

func Undocumented() {}

type Exposed struct{}
`)
	problems, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want 2 (Undocumented, Exposed)", problems)
	}
}

// TestCheckDirSkipsTestFiles pins the _test.go exclusion: an
// undocumented exported symbol in a test file is not a finding.
func TestCheckDirSkipsTestFiles(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "doc.go", "// Package p is documented.\npackage p\n")
	write(t, dir, "x_test.go", "package p\n\nfunc Exported() {}\n")
	problems, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("want no problems for a _test.go symbol, got %v", problems)
	}
}

// TestCheckDirSkipsTestdata pins the testdata exclusion: the analyzer
// golden packages under internal/analysis/*/testdata hold
// deliberately undocumented declarations and must never trip the doc
// linter, even when their directory is named directly.
func TestCheckDirSkipsTestdata(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "testdata", "bad")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write(t, dir, "bad.go", "package bad\n\nfunc Exported() {}\n")
	problems, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("want testdata directories skipped, got %v", problems)
	}
}

func TestCheckMarkdownLinks(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	write(t, dir, "exists.go", "package x\n")
	write(t, dir, "docs/OTHER.md", "# other\n")
	md := write(t, dir, "docs/GUIDE.md", `# Guide

Good: [code](../exists.go), [sibling](OTHER.md), [dir](../docs),
[anchored](../exists.go#L1), [self](#guide),
[external](https://example.com/missing), [mail](mailto:x@y.z).

Bad: [gone](../missing.go) and [typo](OTHERS.md).

`+"```go\n// [not](a-link.go) inside a fence\nfunc f() { _ = []int(nil) }\n```\n")
	problems, err := checkMarkdown(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want exactly the two broken links", problems)
	}
	for _, p := range problems {
		if !strings.Contains(p, "missing.go") && !strings.Contains(p, "OTHERS.md") {
			t.Errorf("unexpected problem: %s", p)
		}
	}
}

// TestRepoMarkdownClean gates the repo's own documentation: every
// intra-repo link in the top-level and docs/ markdown must resolve.
func TestRepoMarkdownClean(t *testing.T) {
	for _, md := range []string{
		"../../README.md",
		"../../docs/ARCHITECTURE.md",
		"../../docs/PAPER_MAP.md",
	} {
		problems, err := checkMarkdown(md)
		if err != nil {
			t.Fatalf("%s: %v", md, err)
		}
		for _, p := range problems {
			t.Error(p)
		}
	}
}
