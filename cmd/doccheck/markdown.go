package main

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links and images: [text](target) /
// ![alt](target). The target group stops at whitespace or the closing
// parenthesis, so optional titles ([x](file "title")) are excluded.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)`)

// checkMarkdown validates the intra-repo link targets of one markdown
// file and returns one formatted problem line per broken link.
// External URLs (any target with a scheme or a host) and same-file
// anchors (#section) are skipped; a fragment on a file target is
// stripped before the existence check. Fenced code blocks are not
// scanned — Go snippets are full of ](-free bracket-paren runs, but
// a fence guard keeps any future example from false-positives.
func checkMarkdown(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	var out []string
	inFence := false
	for lineNo, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if externalTarget(target) {
				continue
			}
			rel := target
			if i := strings.IndexByte(rel, '#'); i >= 0 {
				rel = rel[:i]
			}
			// Percent-decode so targets like "a%20b.md" resolve.
			if dec, err := url.PathUnescape(rel); err == nil {
				rel = dec
			}
			if _, err := os.Stat(filepath.Join(dir, rel)); err != nil {
				out = append(out, fmt.Sprintf("%s:%d: broken link %q (%s does not exist)",
					path, lineNo+1, target, rel))
			}
		}
	}
	return out, nil
}

// externalTarget reports whether a link target is out of scope for
// the intra-repo check: a same-file anchor, or anything with a URL
// scheme or host (https, mailto, protocol-relative).
func externalTarget(target string) bool {
	if strings.HasPrefix(target, "#") {
		return true
	}
	u, err := url.Parse(target)
	return err == nil && (u.Scheme != "" || u.Host != "")
}
