// Command doccheck keeps the repo's documentation honest, in two
// modes selected by the kind of each argument.
//
// A directory argument gets the exported-documentation rule of golint
// and revive: every exported package-level symbol — functions,
// methods on exported types, types, and the specs of var/const
// declarations — must carry a doc comment, and every package must
// have a package comment. _test.go files are skipped, and so are
// testdata directories: the analyzer golden packages under
// internal/analysis/*/testdata deliberately hold undocumented and
// ill-formed declarations, which are the point, not a doc-lint
// finding.
//
// A *.md file argument gets its intra-repo links validated: every
// markdown link target that is not an external URL or a same-file
// anchor must resolve to an existing file or directory, relative to
// the markdown file's location. Fragments are stripped before the
// check ("../server/server.go#L10" checks "../server/server.go");
// fenced code blocks are ignored. This is what keeps the file
// references in docs/PAPER_MAP.md and the READMEs from rotting as
// code moves.
//
// Usage:
//
//	doccheck DIR|FILE.md ...
//
// It is self-contained (go/ast and regexp only, no third-party
// linter) so CI can gate on it without network access. Exits non-zero
// and prints one line per violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck DIR|FILE.md ...")
		os.Exit(2)
	}
	bad := 0
	for _, arg := range os.Args[1:] {
		var problems []string
		var err error
		if strings.HasSuffix(arg, ".md") {
			problems, err = checkMarkdown(arg)
		} else {
			problems, err = checkDir(arg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Println(p)
		}
		bad += len(problems)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one directory and returns one formatted problem
// line per undocumented exported symbol. Directories under a testdata
// element are skipped entirely; _test.go files are excluded by
// includeGoFile.
func checkDir(dir string) ([]string, error) {
	if underTestdata(dir) {
		return nil, nil
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, includeGoFile, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		out = append(out, checkPackage(fset, dir, pkg)...)
	}
	return out, nil
}

// includeGoFile is the exported-symbol mode's file filter: test files
// are never doc-linted (their names are their documentation).
func includeGoFile(fi os.FileInfo) bool {
	return !strings.HasSuffix(fi.Name(), "_test.go")
}

// underTestdata reports whether any element of the path is testdata,
// the go toolchain's convention for data invisible to builds.
func underTestdata(dir string) bool {
	for _, part := range strings.Split(filepath.ToSlash(filepath.Clean(dir)), "/") {
		if part == "testdata" {
			return true
		}
	}
	return false
}

func checkPackage(fset *token.FileSet, dir string, pkg *ast.Package) []string {
	var out []string
	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			out = append(out, checkDecl(fset, decl)...)
		}
	}
	return out
}

func checkDecl(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		out = append(out, fmt.Sprintf("%s: exported %s %s is missing a doc comment",
			fset.Position(pos), kind, name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		kind := "function"
		if d.Recv != nil {
			// Methods count only when the receiver type is exported:
			// an unexported type's method set is not reachable API.
			if base := receiverBase(d.Recv); base == "" || !ast.IsExported(base) {
				return nil
			}
			kind = "method"
		}
		report(d.Pos(), kind, d.Name.Name)
	case *ast.GenDecl:
		kind := map[token.Token]string{token.TYPE: "type", token.VAR: "var", token.CONST: "const"}[d.Tok]
		if kind == "" {
			return nil
		}
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
					report(sp.Pos(), kind, sp.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range sp.Names {
					// Inside a documented block, per-spec docs are
					// optional (matching golint's behaviour for
					// grouped const/var declarations).
					if n.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						report(n.Pos(), kind, n.Name)
					}
				}
			}
		}
	}
	return out
}

// receiverBase returns the receiver's type name, unwrapping pointers
// and generic instantiations.
func receiverBase(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
