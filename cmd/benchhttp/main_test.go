package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"closedrules/internal/bench"
)

// TestRunSmoke runs the whole harness end to end at tiny scale — mine,
// serve on a loopback socket, drive both endpoints, emit the report —
// and checks the emitted file parses, validates and carries measured
// numbers. This is the same shape the CI smoke step runs.
func TestRunSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "serving.json")
	var buf bytes.Buffer
	err := run([]string{
		"-scale", "small",
		"-c", "4",
		"-duration", "300ms",
		"-warmup", "50ms",
		"-endpoints", "recommend,support",
		"-baskets", "8",
		"-label", "smoke",
		"-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := bench.ReadServingReport(f)
	if err != nil {
		t.Fatalf("emitted report does not validate: %v", err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Label != "smoke" {
		t.Fatalf("unexpected report runs: %+v", rep.Runs)
	}
	if got := len(rep.Runs[0].Results); got != 2 {
		t.Fatalf("got %d cells, want 2 (recommend + support)", got)
	}
	for _, cell := range rep.Runs[0].Results {
		if cell.Failed != 0 {
			t.Errorf("cell %s has %d failed requests", cell.Endpoint, cell.Failed)
		}
		if cell.OK == 0 {
			t.Errorf("cell %s measured no successful requests", cell.Endpoint)
		}
	}
	if !strings.Contains(buf.String(), "wrote "+out) {
		t.Errorf("missing summary line in output:\n%s", buf.String())
	}
}

// TestRunAppendAndKnobs appends a batching+admission run to an existing
// report and checks both runs survive with their knobs recorded.
func TestRunAppendAndKnobs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "serving.json")
	base := []string{
		"-scale", "small", "-c", "2", "-duration", "200ms", "-warmup", "20ms",
		"-endpoints", "recommend", "-baskets", "4", "-out", out,
	}
	if err := run(append(base, "-label", "off"), new(bytes.Buffer)); err != nil {
		t.Fatalf("first run: %v", err)
	}
	withKnobs := append(base, "-label", "on", "-append",
		"-batch", "8", "-batch-wait", "1ms", "-max-inflight", "4")
	if err := run(withKnobs, new(bytes.Buffer)); err != nil {
		t.Fatalf("append run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := bench.ReadServingReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("got %d runs after append, want 2", len(rep.Runs))
	}
	if rep.Runs[0].Label != "off" || rep.Runs[0].Batching {
		t.Errorf("baseline run mangled: %+v", rep.Runs[0])
	}
	on := rep.Runs[1]
	if on.Label != "on" || !on.Batching || on.BatchSize != 8 || on.MaxInFlight != 4 || on.BatchWaitUs != 1000 {
		t.Errorf("knob run mangled: %+v", on)
	}
}

func TestParseFlagsRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{
		{"-c", "0"},
		{"-duration", "0s"},
		{"-baskets", "0"},
		{"-scale", "galactic"},
		{"-endpoints", "metrics"},
		{"-endpoints", ""},
	} {
		if cfg, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted bad input: %+v", args, cfg)
		}
	}
}
