// Command benchhttp load-tests the HTTP serving layer and emits a
// machine-readable benchmark report, so the read path's latency and
// overload behavior are tracked across PRs (BENCH_serving.json) the
// same way cmd/benchjson tracks the miners.
//
// Usage:
//
//	benchhttp -c 16 -duration 3s -out /tmp/serving.json
//	benchhttp -c 64 -batch 32 -batch-wait 2ms -max-inflight 32 -append -out BENCH_serving.json
//
// It mines a QUEST-style T10I4 dataset once, serves it through a real
// server.Server on a loopback listener, and drives the configured
// endpoints with closed-loop workers for the configured duration.
// Every (endpoint × concurrency) cell records p50/p99 latency of
// admitted responses, total RPS, and the 200/429/failed split — so a
// batching-on run and a batching-off run are directly comparable, and
// admission-control sheds are first-class numbers instead of noise.
// The emitted file is re-read and validated before the command exits
// 0; malformed output is a non-zero exit (the CI smoke contract).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"closedrules"
	"closedrules/internal/bench"
	"closedrules/internal/gen"
	"closedrules/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchhttp:", err)
		os.Exit(1)
	}
}

// config is the parsed flag set.
type config struct {
	scale       string
	minsup      float64
	minconf     float64
	concurrency int
	duration    time.Duration
	warmup      time.Duration
	endpoints   []string
	k           int
	baskets     int
	batch       int
	batchWait   time.Duration
	maxInflight int
	label       string
	out         string
	appendRun   bool
	tenants     int
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("benchhttp", flag.ContinueOnError)
	var (
		scale       = fs.String("scale", "small", "dataset scale: small (2k tx) | medium (10k tx)")
		minsup      = fs.Float64("minsup", 0.01, "relative minimum support for the one-time mine")
		minconf     = fs.Float64("minconf", 0.5, "confidence threshold of the served approximate basis")
		concurrency = fs.Int("c", 16, "closed-loop client workers per endpoint")
		duration    = fs.Duration("duration", 3*time.Second, "measured window per endpoint cell")
		warmup      = fs.Duration("warmup", 0, "untimed warmup before each cell (default duration/5, capped at 500ms)")
		endpoints   = fs.String("endpoints", "recommend,support", "comma-separated endpoints to drive (recommend, support)")
		k           = fs.Int("k", 5, "recommend ranking size")
		baskets     = fs.Int("baskets", 64, "distinct request basket pool size (smaller = warmer cache, more coalescing)")
		batch       = fs.Int("batch", 0, "recommend batch size (0 = batching off)")
		batchWait   = fs.Duration("batch-wait", 0, "batch max wait (0 = server default)")
		maxInflight = fs.Int("max-inflight", 0, "per-endpoint admission cap (0 = admission off)")
		label       = fs.String("label", "", "run label recorded in the report (default: knobs + date)")
		out         = fs.String("out", "BENCH_serving.json", "output report path")
		appendF     = fs.Bool("append", false, "append the run to an existing report instead of overwriting")
		tenants     = fs.Int("tenants", 0, "register this many datasets and drive the /datasets/{id} routes round-robin instead of the legacy single-tenant path")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cfg := &config{
		scale: *scale, minsup: *minsup, minconf: *minconf,
		concurrency: *concurrency, duration: *duration, warmup: *warmup,
		k: *k, baskets: *baskets,
		batch: *batch, batchWait: *batchWait, maxInflight: *maxInflight,
		label: *label, out: *out, appendRun: *appendF, tenants: *tenants,
	}
	if cfg.concurrency < 1 {
		return nil, fmt.Errorf("-c must be at least 1")
	}
	if cfg.tenants < 0 {
		return nil, fmt.Errorf("-tenants must be non-negative")
	}
	if cfg.duration <= 0 {
		return nil, fmt.Errorf("-duration must be positive")
	}
	if cfg.baskets < 1 {
		return nil, fmt.Errorf("-baskets must be at least 1")
	}
	if _, _, _, err := workloadDims(cfg.scale); err != nil {
		return nil, err
	}
	if cfg.warmup == 0 {
		cfg.warmup = cfg.duration / 5
		if cfg.warmup > 500*time.Millisecond {
			cfg.warmup = 500 * time.Millisecond
		}
	}
	for _, e := range strings.Split(*endpoints, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if e != "recommend" && e != "support" {
			return nil, fmt.Errorf("unknown endpoint %q (want recommend or support)", e)
		}
		cfg.endpoints = append(cfg.endpoints, e)
	}
	if len(cfg.endpoints) == 0 {
		return nil, fmt.Errorf("no endpoints to drive")
	}
	if cfg.label == "" {
		mode := "plain"
		if cfg.batch > 0 || cfg.maxInflight > 0 {
			mode = fmt.Sprintf("batch=%d inflight=%d", cfg.batch, cfg.maxInflight)
		}
		if cfg.tenants > 0 {
			mode += fmt.Sprintf(" tenants=%d", cfg.tenants)
		}
		cfg.label = fmt.Sprintf("%s c=%d %s %s", cfg.scale, cfg.concurrency, mode, time.Now().UTC().Format("2006-01-02"))
	}
	return cfg, nil
}

// workloadDims maps the scale flag onto QUEST generator dimensions.
func workloadDims(scale string) (tx, items int, name string, err error) {
	switch scale {
	case "small":
		return 2000, 200, "T10I4D2K", nil
	case "medium":
		return 10000, 500, "T10I4D10K", nil
	}
	return 0, 0, "", fmt.Errorf("unknown scale %q (want small or medium)", scale)
}

// buildServer mines the workload and wires a server with the
// configured serving knobs.
func buildServer(ctx context.Context, cfg *config) (*server.Server, string, error) {
	numTx, numItems, name, err := workloadDims(cfg.scale)
	if err != nil {
		return nil, "", err
	}
	d, err := gen.Quest(gen.T10I4(numTx, numItems, 1))
	if err != nil {
		return nil, "", err
	}
	res, err := closedrules.MineContext(ctx, d, closedrules.WithMinSupport(cfg.minsup))
	if err != nil {
		return nil, "", err
	}
	qs, err := closedrules.NewQueryService(res, cfg.minconf)
	if err != nil {
		return nil, "", err
	}
	srv, err := server.New(qs, server.Config{
		MaxInFlight:  cfg.maxInflight,
		BatchSize:    cfg.batch,
		BatchMaxWait: cfg.batchWait,
		MaxRecommend: cfg.k,
		MultiTenant:  cfg.tenants > 0,
	})
	if err != nil {
		return nil, "", err
	}
	return srv, name, nil
}

// registerTenants uploads n distinct datasets through the real POST
// /datasets route — the registration cost is part of what the mode
// measures being possible at all — and pre-materializes each with one
// query so the measured window drives resident tenants, not first-
// touch mining.
func registerTenants(baseURL string, cfg *config) ([]string, error) {
	numTx, numItems, _, err := workloadDims(cfg.scale)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	ids := make([]string, 0, cfg.tenants)
	for t := 0; t < cfg.tenants; t++ {
		// Distinct seeds per tenant: different datasets, so isolation
		// bugs would surface as wrong answers rather than cancel out.
		d, err := gen.Quest(gen.T10I4(numTx, numItems, int64(t)+2))
		if err != nil {
			return nil, err
		}
		txs := make([][]int, d.NumTransactions())
		for i := range txs {
			txs[i] = append([]int{}, d.Transaction(i)...)
		}
		body, err := json.Marshal(map[string]any{
			"id":           fmt.Sprintf("bench-%d", t),
			"transactions": txs,
			"params": map[string]any{
				"minSupport":    cfg.minsup,
				"minConfidence": cfg.minconf,
			},
		})
		if err != nil {
			return nil, err
		}
		resp, err := client.Post(baseURL+"/datasets", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return nil, fmt.Errorf("register tenant %d: %d %s", t, resp.StatusCode, raw)
		}
		var reg struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(raw, &reg); err != nil {
			return nil, fmt.Errorf("register tenant %d: %w", t, err)
		}
		ids = append(ids, reg.ID)
	}
	// First touch mines; retry while the shared flight outlasts one
	// request deadline.
	for _, id := range ids {
		var last string
		ok := false
		for attempt := 0; attempt < 60 && !ok; attempt++ {
			resp, err := client.Get(baseURL + "/datasets/" + id + "/support?items=0")
			if err != nil {
				return nil, err
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ok = true
				break
			}
			last = fmt.Sprintf("%d %s", resp.StatusCode, raw)
			time.Sleep(100 * time.Millisecond)
		}
		if !ok {
			return nil, fmt.Errorf("materialize tenant %s: %s", id, last)
		}
	}
	return ids, nil
}

// basketPool derives the request pool from the mined representation:
// baskets of one or two frequent items, so requests exercise the real
// ranking path instead of degenerate empty answers.
func basketPool(srv *server.Server, n, seed int) [][]int {
	// Frequent single items are exactly the 1-item derivable supports.
	qs := srv.Service()
	ctx := context.Background()
	var freq []int
	for it := 0; it < 10000 && len(freq) < 256; it++ {
		if _, ok, err := qs.Support(ctx, closedrules.Items(it)); err == nil && ok {
			freq = append(freq, it)
		}
	}
	if len(freq) == 0 {
		freq = []int{0}
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	pool := make([][]int, n)
	for i := range pool {
		a := freq[rng.Intn(len(freq))]
		if rng.Intn(2) == 0 {
			b := freq[rng.Intn(len(freq))]
			if b != a {
				pool[i] = []int{a, b}
				continue
			}
		}
		pool[i] = []int{a}
	}
	return pool
}

// cellCounters aggregates one worker's observations.
type cellCounters struct {
	requests int64
	ok       int64
	shed     int64
	failed   int64
	lat      []time.Duration // latencies of 200s only
}

// driveCell runs one (endpoint × concurrency) load test against the
// live server and returns the measured cell. With tenant IDs the
// requests spread round-robin over the /datasets/{id} routes instead
// of the legacy path.
func driveCell(baseURL, endpoint string, cfg *config, pool [][]int, tenantIDs []string) (bench.ServingResult, error) {
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.concurrency * 2,
			MaxIdleConnsPerHost: cfg.concurrency * 2,
		},
		Timeout: 30 * time.Second,
	}
	defer client.CloseIdleConnections()

	// Pre-render the request pool once (per tenant prefix): workers
	// must spend their time on the wire, not in encoding/json.
	prefixes := []string{""}
	if len(tenantIDs) > 0 {
		prefixes = make([]string, len(tenantIDs))
		for i, id := range tenantIDs {
			prefixes[i] = "/datasets/" + id
		}
	}
	bodies := make([][]byte, 0, len(prefixes)*len(pool))
	urls := make([]string, 0, len(prefixes)*len(pool))
	for _, prefix := range prefixes {
		for _, basket := range pool {
			items := make([]string, len(basket))
			for j, it := range basket {
				items[j] = fmt.Sprint(it)
			}
			switch endpoint {
			case "recommend":
				bodies = append(bodies, []byte(fmt.Sprintf(`{"observed":[%s],"k":%d}`, strings.Join(items, ","), cfg.k)))
				urls = append(urls, baseURL+prefix+"/recommend")
			case "support":
				bodies = append(bodies, nil)
				urls = append(urls, baseURL+prefix+"/support?items="+strings.Join(items, ","))
			}
		}
	}
	fire := func(i int) (int, error) {
		var resp *http.Response
		var err error
		if bodies[i] != nil {
			resp, err = client.Post(urls[i], "application/json", bytes.NewReader(bodies[i]))
		} else {
			resp, err = client.Get(urls[i])
		}
		if err != nil {
			return 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// Warmup: page in code paths and fill the recommendation cache the
	// way a steady-state deployment would see it.
	warmEnd := time.Now().Add(cfg.warmup)
	for i := 0; time.Now().Before(warmEnd); i++ {
		if _, err := fire(i % len(urls)); err != nil {
			return bench.ServingResult{}, fmt.Errorf("warmup: %w", err)
		}
	}

	counters := make([]cellCounters, cfg.concurrency)
	start := make(chan struct{})
	var wg sync.WaitGroup
	deadline := time.Now().Add(cfg.duration)
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			c := &counters[w]
			<-start
			for time.Now().Before(deadline) {
				i := rng.Intn(len(urls))
				began := time.Now()
				code, err := fire(i)
				took := time.Since(began)
				c.requests++
				switch {
				case err != nil:
					c.failed++
				case code == http.StatusOK:
					c.ok++
					c.lat = append(c.lat, took)
				case code == http.StatusTooManyRequests:
					c.shed++
				default:
					c.failed++
				}
			}
		}(w)
	}
	measureStart := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(measureStart)

	cell := bench.ServingResult{
		Endpoint:    endpoint,
		Concurrency: cfg.concurrency,
		DurationMs:  elapsed.Milliseconds(),
	}
	var lat []time.Duration
	for w := range counters {
		c := &counters[w]
		cell.Requests += c.requests
		cell.OK += c.ok
		cell.Shed += c.shed
		cell.Failed += c.failed
		lat = append(lat, c.lat...)
	}
	if cell.Requests == 0 {
		return cell, fmt.Errorf("cell %s/c%d measured no requests", endpoint, cfg.concurrency)
	}
	cell.RPS = float64(cell.Requests) / elapsed.Seconds()
	p50, p99 := bench.Percentiles(lat)
	cell.P50Micros = p50.Microseconds()
	cell.P99Micros = p99.Microseconds()
	return cell, nil
}

func run(args []string, w io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	srv, workload, err := buildServer(ctx, cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Fprintf(w, "benchhttp: serving %s on %s (batch=%d wait=%s max-inflight=%d)\n",
		workload, baseURL, cfg.batch, cfg.batchWait, cfg.maxInflight)

	var tenantIDs []string
	if cfg.tenants > 0 {
		tenantIDs, err = registerTenants(baseURL, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "benchhttp: registered and materialized %d tenants\n", len(tenantIDs))
	}

	pool := basketPool(srv, cfg.baskets, 1)
	newRun := bench.ServingRun{
		Label:       cfg.label,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Date:        time.Now().UTC().Format(time.RFC3339),
		Workload:    workload,
		MinSup:      cfg.minsup,
		MinConf:     cfg.minconf,
		Batching:    cfg.batch > 0,
		MaxInFlight: cfg.maxInflight,
		Baskets:     cfg.baskets,
		Tenants:     cfg.tenants,
	}
	if cfg.batch > 0 {
		newRun.BatchSize = cfg.batch
		wait := cfg.batchWait
		if wait <= 0 {
			wait = server.DefaultBatchMaxWait
		}
		newRun.BatchWaitUs = wait.Microseconds()
	}
	// Endpoint order is deterministic, and cells run back to back so
	// each one gets the whole machine.
	sorted := append([]string(nil), cfg.endpoints...)
	sort.Strings(sorted)
	for _, endpoint := range sorted {
		cell, err := driveCell(baseURL, endpoint, cfg, pool, tenantIDs)
		if err != nil {
			return err
		}
		newRun.Results = append(newRun.Results, cell)
		fmt.Fprintf(w, "  %s c=%d: %.0f rps, p50 %dus, p99 %dus, %d ok / %d shed / %d failed\n",
			endpoint, cell.Concurrency, cell.RPS, cell.P50Micros, cell.P99Micros, cell.OK, cell.Shed, cell.Failed)
	}
	cancel()
	if err := <-serveDone; err != nil {
		return fmt.Errorf("server: %w", err)
	}

	rep := bench.ServingReport{Schema: bench.ServingSchema}
	if cfg.appendRun {
		if f, err := os.Open(cfg.out); err == nil {
			prev, rerr := bench.ReadServingReport(f)
			f.Close()
			if rerr != nil {
				return fmt.Errorf("cannot append to %s: %w", cfg.out, rerr)
			}
			rep = prev
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	rep.Runs = append(rep.Runs, newRun)

	f, err := os.Create(cfg.out)
	if err != nil {
		return err
	}
	if err := bench.WriteServingReport(f, rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// Re-read and validate what was written: a malformed report must
	// be a non-zero exit, never a silently committed artifact.
	rf, err := os.Open(cfg.out)
	if err != nil {
		return err
	}
	defer rf.Close()
	if _, err := bench.ReadServingReport(rf); err != nil {
		return fmt.Errorf("emitted report is invalid: %w", err)
	}
	fmt.Fprintf(w, "wrote %s: %d run(s), %d cell(s) in run %q\n",
		cfg.out, len(rep.Runs), len(newRun.Results), newRun.Label)
	return nil
}
