// Command arserve mines a transaction dataset once and serves the
// condensed representation (closed itemsets + rule bases) over
// HTTP/JSON — the network front end of the library's QueryService.
//
// Usage:
//
//	arserve -in data.dat -minsup 0.3 [-minconf 0.5] [-addr :8080]
//	        [-algo close] [-exact-basis duquenne-guigues] [-approx-basis luxenburger]
//	        [-table -sep , -header]
//	        [-refresh 30s] [-refresh-timeout 1m]
//	        [-incremental=true] [-incremental-max-ratio 0.25]
//	        [-request-timeout 5s] [-mine-timeout 0] [-max-k 100]
//	        [-max-inflight 0] [-batch 0] [-batch-wait 2ms]
//	        [-multi-tenant] [-max-tenants 64]
//	        [-tenant-memory-budget 268435456] [-mine-workers 2]
//	        [-tenant-data-dir /srv/datasets]
//
// Endpoints (see the server package for wire formats):
//
//	GET  /support?items=1,2
//	GET  /confidence?antecedent=2&consequent=0
//	GET  /rules?antecedent=2&consequent=0
//	POST /recommend        {"observed":[1],"k":3}
//	GET  /healthz
//	GET  /metrics          Prometheus text format
//	POST /admin/reload     force one refresh cycle now
//
// With -multi-tenant the server additionally exposes the dataset
// registry and per-tenant routes: POST/GET /datasets,
// GET/DELETE /datasets/{id}, async re-mines via
// POST /datasets/{id}/mine + GET /jobs/{id}, and the query family
// under /datasets/{id}/... The -in dataset becomes the pinned
// "default" tenant, so the legacy routes above keep answering from
// it. Tenant services live in an LRU pool bounded by
// -tenant-memory-budget: cold tenants are evicted past the budget and
// transparently re-mined on their next query. -mine-workers bounds
// concurrent async mine jobs; each runs under -mine-timeout.
// Registrations by server-side "path" are disabled unless
// -tenant-data-dir names a directory; paths then resolve inside it
// and nothing outside is ever readable through the registry.
//
// Data freshness is a refresh.Refresher over the input file: with
// -refresh set, the file is watched (mtime, size, checksum) and a
// change re-mines and hot-swaps the served snapshot with zero
// downtime — append transactions to -in and the served rules update
// without a restart. When the change is a pure append (the old bytes
// are an unmodified prefix of the new file) the refresher skips the
// re-mine entirely and updates the served closed sets in place (see
// the incremental package); -incremental=false forces full re-mines
// and -incremental-max-ratio bounds how large an append batch the
// incremental path accepts relative to the served dataset. Without
// -refresh nothing polls, but POST /admin/reload still runs the same
// cycle logic on demand (always as a full re-mine). Failed cycles
// keep the old snapshot serving and back off exponentially; /healthz
// and /metrics report the cycle counters, including the
// closedrules_refresh_incremental_* families. SIGINT/SIGTERM trigger
// a graceful shutdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"closedrules"
	"closedrules/refresh"
	"closedrules/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "arserve:", err)
		os.Exit(1)
	}
}

// config is the parsed flag set.
type config struct {
	in             string
	table          bool
	sep            rune
	header         bool
	minsup         float64
	abssup         int
	minconf        float64
	algo           string
	exactBasis     string
	approxBasis    string
	addr           string
	reqTimeout     time.Duration
	mineTimeout    time.Duration
	refresh        time.Duration
	refreshTimeout time.Duration
	maxK           int
	maxInflight    int
	batch          int
	batchWait      time.Duration
	incremental    bool
	incrementalMax float64
	multiTenant    bool
	maxTenants     int
	tenantBudget   int64
	mineWorkers    int
	tenantDataDir  string
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("arserve", flag.ContinueOnError)
	var (
		in             = fs.String("in", "", "input file (.dat basket format unless -table); watched when -refresh is set")
		table          = fs.Bool("table", false, "input is a nominal table (one attribute per column)")
		sep            = fs.String("sep", ",", "table column separator")
		header         = fs.Bool("header", false, "table has a header row")
		minsup         = fs.Float64("minsup", 0.5, "relative minimum support (0,1]")
		abssup         = fs.Int("abssup", 0, "absolute minimum support (overrides -minsup when ≥1)")
		minconf        = fs.Float64("minconf", 0.5, "minimum confidence [0,1] for the served approximate basis")
		algo           = fs.String("algo", "", "closed-miner registry name (default close)")
		exactBasis     = fs.String("exact-basis", "", "basis registry name served for exact rules (default duquenne-guigues)")
		approxBasis    = fs.String("approx-basis", "", "basis registry name served for approximate rules (default luxenburger)")
		addr           = fs.String("addr", ":8080", "listen address")
		reqTimeout     = fs.Duration("request-timeout", server.DefaultRequestTimeout, "per-query deadline (negative = none)")
		mineTimeout    = fs.Duration("mine-timeout", 0, "deadline for the initial mine (0 = none)")
		refreshEvery   = fs.Duration("refresh", 0, "poll the input file and re-mine on change at this interval (0 = manual /admin/reload only)")
		refreshTimeout = fs.Duration("refresh-timeout", 0, "deadline per refresh cycle (0 = same as -mine-timeout)")
		maxK           = fs.Int("max-k", server.DefaultMaxRecommend, "cap on the k of a recommend request")
		maxInflight    = fs.Int("max-inflight", 0, "per-endpoint admission cap; excess requests get a fast 429 (0 = off)")
		batch          = fs.Int("batch", 0, "coalesce concurrent /recommend calls into batches of this size (0 = off)")
		batchWait      = fs.Duration("batch-wait", 0, "max time a /recommend call waits for its batch to fill (0 = server default)")
		incremental    = fs.Bool("incremental", true, "update the served snapshot in place when the input file grows by appended transactions, instead of re-mining")
		incrementalMax = fs.Float64("incremental-max-ratio", 0, "largest append batch, as a fraction of the committed transaction count, still handled incrementally (0 = default 0.25)")
		multiTenant    = fs.Bool("multi-tenant", false, "serve the dataset registry and per-tenant routes (/datasets, /jobs); -in becomes the pinned default tenant")
		maxTenants     = fs.Int("max-tenants", 0, "cap on registered datasets in multi-tenant mode (0 = server default)")
		tenantBudget   = fs.Int64("tenant-memory-budget", 0, "total resident-bytes budget across tenant services; least-recently-used tenants are evicted past it (0 = server default)")
		mineWorkers    = fs.Int("mine-workers", 0, "async mine job worker count (0 = server default)")
		tenantDataDir  = fs.String("tenant-data-dir", "", "directory POST /datasets \"path\" registrations may read from (empty = path registrations disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *in == "" {
		return nil, fmt.Errorf("missing -in")
	}
	if *refreshEvery < 0 || *refreshTimeout < 0 {
		return nil, fmt.Errorf("-refresh and -refresh-timeout must be non-negative")
	}
	if *maxInflight < 0 || *batch < 0 || *batchWait < 0 {
		return nil, fmt.Errorf("-max-inflight, -batch and -batch-wait must be non-negative")
	}
	if *incrementalMax < 0 {
		return nil, fmt.Errorf("-incremental-max-ratio must be non-negative")
	}
	r := []rune(*sep)
	if len(r) != 1 {
		return nil, fmt.Errorf("-sep must be a single character")
	}
	cfg := &config{
		in: *in, table: *table, sep: r[0], header: *header,
		minsup: *minsup, abssup: *abssup, minconf: *minconf, algo: *algo,
		exactBasis: *exactBasis, approxBasis: *approxBasis,
		addr: *addr, reqTimeout: *reqTimeout, mineTimeout: *mineTimeout,
		refresh: *refreshEvery, refreshTimeout: *refreshTimeout, maxK: *maxK,
		maxInflight: *maxInflight, batch: *batch, batchWait: *batchWait,
		incremental: *incremental, incrementalMax: *incrementalMax,
		multiTenant: *multiTenant, maxTenants: *maxTenants,
		tenantBudget: *tenantBudget, mineWorkers: *mineWorkers,
		tenantDataDir: *tenantDataDir,
	}
	if cfg.refreshTimeout == 0 {
		cfg.refreshTimeout = cfg.mineTimeout
	}
	return cfg, nil
}

// mineOptions are the registry options shared by the initial mine and
// every refresh cycle.
func (c *config) mineOptions() []closedrules.MineOption {
	opts := []closedrules.MineOption{closedrules.WithMinSupport(c.minsup)}
	if c.abssup >= 1 {
		opts = []closedrules.MineOption{closedrules.WithAbsoluteMinSupport(c.abssup)}
	}
	if c.algo != "" {
		opts = append(opts, closedrules.WithAlgorithm(c.algo))
	}
	return opts
}

// source builds the file watcher the refresher polls.
func (c *config) source() *refresh.FileSource {
	if c.table {
		return refresh.NewTableFileSource(c.in, c.sep, c.header)
	}
	return refresh.NewFileSource(c.in)
}

// mine loads the input file and mines it once, under the configured
// initial-mine deadline. Subsequent re-mines go through the Refresher.
func (c *config) mine(ctx context.Context, src *refresh.FileSource) (*closedrules.Result, error) {
	if c.mineTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.mineTimeout)
		defer cancel()
	}
	d, err := src.Load(ctx)
	if err != nil {
		return nil, err
	}
	return closedrules.MineContext(ctx, d, c.mineOptions()...)
}

// setup mines the initial representation and builds the HTTP server
// plus the refresher that keeps it fresh. The refresher is returned
// unstarted; run starts its poll loop when -refresh is set.
func setup(ctx context.Context, args []string) (*server.Server, *refresh.Refresher, *config, error) {
	cfg, err := parseFlags(args)
	if err != nil {
		return nil, nil, nil, err
	}
	src := cfg.source()
	res, err := cfg.mine(ctx, src)
	if err != nil {
		return nil, nil, nil, err
	}
	qs, err := closedrules.NewQueryServiceWithBases(res, cfg.minconf, closedrules.BasisSelection{
		Exact:       cfg.exactBasis,
		Approximate: cfg.approxBasis,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	// The startup mine is now serving: commit its fingerprint so the
	// first poll does not re-mine identical data.
	src.Commit()
	ref, err := refresh.New(qs, refresh.Config{
		Source:              src,
		Interval:            cfg.refresh,
		MineTimeout:         cfg.refreshTimeout,
		MineOptions:         cfg.mineOptions(),
		DisableIncremental:  !cfg.incremental,
		IncrementalMaxRatio: cfg.incrementalMax,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	srv, err := server.New(qs, server.Config{
		RequestTimeout:     cfg.reqTimeout,
		MaxRecommend:       cfg.maxK,
		Refresher:          ref,
		MaxInFlight:        cfg.maxInflight,
		BatchSize:          cfg.batch,
		BatchMaxWait:       cfg.batchWait,
		MultiTenant:        cfg.multiTenant,
		MaxTenants:         cfg.maxTenants,
		TenantMemoryBudget: cfg.tenantBudget,
		MineWorkers:        cfg.mineWorkers,
		MineTimeout:        cfg.mineTimeout,
		TenantDataDir:      cfg.tenantDataDir,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return srv, ref, cfg, nil
}

func run(ctx context.Context, args []string, w io.Writer) error {
	srv, ref, cfg, err := setup(ctx, args)
	if err != nil {
		return err
	}
	if cfg.refresh > 0 {
		if err := ref.Start(); err != nil {
			return err
		}
		defer ref.Stop()
		fmt.Fprintf(w, "arserve: watching %s every %s\n", cfg.in, cfg.refresh)
	}
	qs := srv.Service()
	bases := qs.ServedBases()
	fmt.Fprintf(w, "arserve: mined %s (%d transactions, %d basis rules from %s + %s); serving on %s\n",
		cfg.in, qs.NumTransactions(), qs.NumRules(), bases.Exact, bases.Approximate, cfg.addr)
	return srv.ListenAndServe(ctx, cfg.addr)
}
