// Command arserve mines a transaction dataset once and serves the
// condensed representation (closed itemsets + rule bases) over
// HTTP/JSON — the network front end of the library's QueryService.
//
// Usage:
//
//	arserve -in data.dat -minsup 0.3 [-minconf 0.5] [-addr :8080]
//	        [-algo close] [-exact-basis duquenne-guigues] [-approx-basis luxenburger]
//	        [-table -sep , -header]
//	        [-request-timeout 5s] [-mine-timeout 0] [-max-k 100]
//
// Endpoints (see the server package for wire formats):
//
//	GET  /support?items=1,2
//	GET  /confidence?antecedent=2&consequent=0
//	GET  /rules?antecedent=2&consequent=0
//	POST /recommend        {"observed":[1],"k":3}
//	GET  /healthz
//	GET  /metrics          Prometheus text format
//	POST /admin/reload     re-read -in, re-mine, hot-swap
//
// The input file is re-read on every /admin/reload, so replacing the
// file on disk and POSTing to the endpoint refreshes the served rules
// with zero downtime. SIGINT/SIGTERM trigger a graceful shutdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"closedrules"
	"closedrules/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "arserve:", err)
		os.Exit(1)
	}
}

// config is the parsed flag set.
type config struct {
	in          string
	table       bool
	sep         rune
	header      bool
	minsup      float64
	abssup      int
	minconf     float64
	algo        string
	exactBasis  string
	approxBasis string
	addr        string
	reqTimeout  time.Duration
	mineTimeout time.Duration
	maxK        int
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("arserve", flag.ContinueOnError)
	var (
		in          = fs.String("in", "", "input file (.dat basket format unless -table); re-read on /admin/reload")
		table       = fs.Bool("table", false, "input is a nominal table (one attribute per column)")
		sep         = fs.String("sep", ",", "table column separator")
		header      = fs.Bool("header", false, "table has a header row")
		minsup      = fs.Float64("minsup", 0.5, "relative minimum support (0,1]")
		abssup      = fs.Int("abssup", 0, "absolute minimum support (overrides -minsup when ≥1)")
		minconf     = fs.Float64("minconf", 0.5, "minimum confidence [0,1] for the served approximate basis")
		algo        = fs.String("algo", "", "closed-miner registry name (default close)")
		exactBasis  = fs.String("exact-basis", "", "basis registry name served for exact rules (default duquenne-guigues)")
		approxBasis = fs.String("approx-basis", "", "basis registry name served for approximate rules (default luxenburger)")
		addr        = fs.String("addr", ":8080", "listen address")
		reqTimeout  = fs.Duration("request-timeout", server.DefaultRequestTimeout, "per-query deadline (negative = none)")
		mineTimeout = fs.Duration("mine-timeout", 0, "deadline for the initial mine and each reload (0 = none)")
		maxK        = fs.Int("max-k", server.DefaultMaxRecommend, "cap on the k of a recommend request")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *in == "" {
		return nil, fmt.Errorf("missing -in")
	}
	r := []rune(*sep)
	if len(r) != 1 {
		return nil, fmt.Errorf("-sep must be a single character")
	}
	return &config{
		in: *in, table: *table, sep: r[0], header: *header,
		minsup: *minsup, abssup: *abssup, minconf: *minconf, algo: *algo,
		exactBasis: *exactBasis, approxBasis: *approxBasis,
		addr: *addr, reqTimeout: *reqTimeout, mineTimeout: *mineTimeout, maxK: *maxK,
	}, nil
}

// load reads the input file from disk.
func (c *config) load() (*closedrules.Dataset, error) {
	if c.table {
		return closedrules.ReadTableFile(c.in, c.sep, c.header)
	}
	return closedrules.ReadDatFile(c.in)
}

// mine re-reads the input file and mines it, under the configured
// mine deadline. This is both the startup path and the ReloadFunc.
func (c *config) mine(ctx context.Context) (*closedrules.Result, error) {
	if c.mineTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.mineTimeout)
		defer cancel()
	}
	d, err := c.load()
	if err != nil {
		return nil, err
	}
	opts := []closedrules.MineOption{closedrules.WithMinSupport(c.minsup)}
	if c.abssup >= 1 {
		opts = []closedrules.MineOption{closedrules.WithAbsoluteMinSupport(c.abssup)}
	}
	if c.algo != "" {
		opts = append(opts, closedrules.WithAlgorithm(c.algo))
	}
	return closedrules.MineContext(ctx, d, opts...)
}

// setup mines the initial representation and builds the HTTP server.
func setup(ctx context.Context, args []string) (*server.Server, *config, error) {
	cfg, err := parseFlags(args)
	if err != nil {
		return nil, nil, err
	}
	res, err := cfg.mine(ctx)
	if err != nil {
		return nil, nil, err
	}
	qs, err := closedrules.NewQueryServiceWithBases(res, cfg.minconf, closedrules.BasisSelection{
		Exact:       cfg.exactBasis,
		Approximate: cfg.approxBasis,
	})
	if err != nil {
		return nil, nil, err
	}
	// No ReloadTimeout: cfg.mine already applies -mine-timeout itself.
	srv := server.New(qs, server.Config{
		RequestTimeout: cfg.reqTimeout,
		MaxRecommend:   cfg.maxK,
		Reload:         cfg.mine,
	})
	return srv, cfg, nil
}

func run(ctx context.Context, args []string, w io.Writer) error {
	srv, cfg, err := setup(ctx, args)
	if err != nil {
		return err
	}
	qs := srv.Service()
	bases := qs.ServedBases()
	fmt.Fprintf(w, "arserve: mined %s (%d transactions, %d basis rules from %s + %s); serving on %s\n",
		cfg.in, qs.NumTransactions(), qs.NumRules(), bases.Exact, bases.Approximate, cfg.addr)
	return srv.ListenAndServe(ctx, cfg.addr)
}
