package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

const classicDat = "0 2 3\n1 2 4\n0 1 2 4\n1 4\n0 1 2 4\n"

// writeClassic writes the classic 5-object context to a temp .dat file.
func writeClassic(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "classic.dat")
	if err := os.WriteFile(path, []byte(classicDat), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// testServer builds the arserve HTTP stack from CLI args and mounts it
// on an httptest server.
func testServer(t *testing.T, args ...string) (*httptest.Server, string) {
	t.Helper()
	path := writeClassic(t)
	srv, _, _, err := setup(context.Background(), append([]string{"-in", path, "-minsup", "0.4"}, args...))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, path
}

func TestServeEndpoints(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status       string `json:"status"`
		Transactions int    `json:"transactions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Transactions != 5 {
		t.Errorf("healthz = %+v", h)
	}

	resp2, err := http.Get(ts.URL + "/support?items=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var s struct {
		Support int `json:"support"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Support != 4 {
		t.Errorf("support(C) = %+v", s)
	}
}

func TestReloadFromFile(t *testing.T) {
	ts, path := testServer(t)
	// Replace the file on disk with a doubled dataset, then hot-reload.
	if err := os.WriteFile(path, []byte(classicDat+classicDat), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Status       string `json:"status"`
		Transactions int    `json:"transactions"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "reloaded" || out.Transactions != 10 {
		t.Errorf("reload = %+v, want 10 transactions", out)
	}
}

func TestBasisFlags(t *testing.T) {
	ts, _ := testServer(t, "-exact-basis", "generic", "-approx-basis", "informative")
	resp, err := http.Get(ts.URL + "/bases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Registered []string `json:"registered"`
		Serving    struct {
			Exact       string `json:"exact"`
			Approximate string `json:"approximate"`
		} `json:"serving"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Serving.Exact != "generic" || out.Serving.Approximate != "informative" {
		t.Errorf("serving = %+v, want generic/informative", out.Serving)
	}
	if len(out.Registered) < 4 {
		t.Errorf("registered = %v, want at least the 4 built-ins", out.Registered)
	}
}

func TestBasisFlagUnknownName(t *testing.T) {
	path := writeClassic(t)
	if _, _, _, err := setup(context.Background(),
		[]string{"-in", path, "-minsup", "0.4", "-exact-basis", "bogus"}); err == nil {
		t.Error("unknown -exact-basis accepted")
	}
}

func TestTableInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.csv")
	data := "color,size\nred,big\nred,big\nblue,small\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, _, _, err := setup(context.Background(), []string{"-in", path, "-table", "-header", "-minsup", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Service().NumTransactions(); got != 3 {
		t.Errorf("NumTransactions = %d, want 3", got)
	}
}

func TestSetupErrors(t *testing.T) {
	ctx := context.Background()
	cases := [][]string{
		{},                               // missing -in
		{"-in", "/nonexistent/file.dat"}, // missing file
		{"-in", writeClassic(t), "-sep", "ab", "-table"},
		{"-in", writeClassic(t), "-minsup", "7"},
		{"-in", writeClassic(t), "-algo", "bogus"},
		{"-in", writeClassic(t), "-minconf", "2"},
	}
	for i, args := range cases {
		if _, _, _, err := setup(ctx, args); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}

func TestMineTimeout(t *testing.T) {
	_, _, _, err := setup(context.Background(),
		[]string{"-in", writeClassic(t), "-minsup", "0.4", "-mine-timeout", "1ns"})
	if err == nil {
		t.Error("expired mine deadline accepted")
	}
}

func TestRunGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var sb strings.Builder
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-in", writeClassic(t), "-minsup", "0.4", "-addr", "127.0.0.1:0"}, &sb)
	}()
	// Give the server a moment to come up, then trigger shutdown.
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Errorf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancel")
	}
	if !strings.Contains(sb.String(), "serving on") {
		t.Errorf("startup log missing: %q", sb.String())
	}
}

func TestRunSetupError(t *testing.T) {
	err := run(context.Background(), []string{}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "missing -in") {
		t.Errorf("run with no args = %v", err)
	}
}

// TestRefreshFlagPicksUpAppendedTransactions is the live-reload
// acceptance path: with -refresh the served snapshot follows the
// input file. A transaction appended to the file shows up in the
// served measures without a restart, and not a single request fails
// while the swap lands.
func TestRefreshFlagPicksUpAppendedTransactions(t *testing.T) {
	path := writeClassic(t)
	srv, ref, _, err := setup(context.Background(),
		[]string{"-in", path, "-minsup", "0.4", "-refresh", "3ms"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Start(); err != nil {
		t.Fatal(err)
	}
	defer ref.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hammer the query endpoints for the whole life of the test; every
	// response must be 200 — the swap is invisible to clients.
	stop := make(chan struct{})
	errc := make(chan error, 32)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/support?items=2")
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("support = %d during refresh", resp.StatusCode)
					return
				}
				resp, err = http.Post(ts.URL+"/recommend", "application/json",
					strings.NewReader(`{"observed":[1],"k":3}`))
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("recommend = %d during refresh", resp.StatusCode)
					return
				}
			}
		}()
	}

	// Append one transaction; supp(C)=supp({2}) must go 4 → 5 without
	// any restart or reload call.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("0 1 2 4\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("appended transaction never served; refresher stats: %+v", ref.Stats())
		}
		resp, err := http.Get(ts.URL + "/support?items=2")
		if err != nil {
			t.Fatal(err)
		}
		var s struct {
			Support int `json:"support"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if s.Support == 5 {
			break
		}
		time.Sleep(3 * time.Millisecond)
	}

	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("request failed during live refresh: %v", err)
	}
	if st := ref.Stats(); st.Failures != 0 || st.Successes < 1 {
		t.Errorf("refresher stats after pickup = %+v", st)
	}

	// healthz reflects the new snapshot and the refresh counters.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Transactions int `json:"transactions"`
		Refresh      *struct {
			Running              bool   `json:"running"`
			IncrementalSuccesses uint64 `json:"incrementalSuccesses"`
			DeltaTransactions    uint64 `json:"deltaTransactions"`
		} `json:"refresh"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Transactions != 6 {
		t.Errorf("healthz transactions = %d, want 6", h.Transactions)
	}
	if h.Refresh == nil || !h.Refresh.Running {
		t.Errorf("healthz refresh block = %+v, want running", h.Refresh)
	}
	// A one-row append onto five committed rows is well under the
	// default batch ratio, so the pickup must have been incremental.
	if h.Refresh != nil && (h.Refresh.IncrementalSuccesses < 1 || h.Refresh.DeltaTransactions != 1) {
		t.Errorf("healthz incremental counters = %+v, want ≥1 success over 1 delta transaction", h.Refresh)
	}
}

// TestServingKnobFlags pins that -max-inflight, -batch and -batch-wait
// reach the server config: with a one-slot gate and a pinned batch the
// stack sheds a concurrent burst with 429s, and healthz reports both
// admission and batching blocks.
func TestServingKnobFlags(t *testing.T) {
	path := writeClassic(t)
	srv, _, cfg, err := setup(context.Background(), []string{
		"-in", path, "-minsup", "0.4",
		"-max-inflight", "1", "-batch", "8", "-batch-wait", "100ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	if cfg.maxInflight != 1 || cfg.batch != 8 || cfg.batchWait != 100*time.Millisecond {
		t.Fatalf("parsed knobs = %+v", cfg)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	const clients = 4
	codes := make(chan int, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/recommend", "application/json",
				strings.NewReader(`{"observed":[1],"k":3}`))
			if err != nil {
				codes <- 0
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	var ok, shed int
	for i := 0; i < clients; i++ {
		switch code := <-codes; code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected status %d", code)
		}
	}
	if ok < 1 || ok+shed != clients {
		t.Errorf("ok=%d shed=%d, want every request answered and ≥1 admitted", ok, shed)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Admission *struct {
			MaxInFlight int `json:"maxInFlight"`
		} `json:"admission"`
		Batching *struct {
			BatchSize int `json:"batchSize"`
		} `json:"batching"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Admission == nil || h.Admission.MaxInFlight != 1 {
		t.Errorf("healthz admission = %+v, want maxInFlight 1", h.Admission)
	}
	if h.Batching == nil || h.Batching.BatchSize != 8 {
		t.Errorf("healthz batching = %+v, want batchSize 8", h.Batching)
	}

	if _, err := parseFlags([]string{"-in", "x.dat", "-max-inflight", "-1"}); err == nil {
		t.Error("negative -max-inflight accepted")
	}
	if _, err := parseFlags([]string{"-in", "x.dat", "-batch", "-1"}); err == nil {
		t.Error("negative -batch accepted")
	}
}

// TestIncrementalFlags pins the incremental-refresh knobs: on by
// default, switchable off, ratio validated.
func TestIncrementalFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-in", "x.dat"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.incremental || cfg.incrementalMax != 0 {
		t.Errorf("defaults = incremental %v max %v, want true / 0 (refresh default)", cfg.incremental, cfg.incrementalMax)
	}
	cfg, err = parseFlags([]string{"-in", "x.dat", "-incremental=false", "-incremental-max-ratio", "0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.incremental || cfg.incrementalMax != 0.5 {
		t.Errorf("parsed = incremental %v max %v, want false / 0.5", cfg.incremental, cfg.incrementalMax)
	}
	if _, err := parseFlags([]string{"-in", "x.dat", "-incremental-max-ratio", "-0.1"}); err == nil {
		t.Error("negative -incremental-max-ratio accepted")
	}
}

// TestRefreshTimeoutDefaultsToMineTimeout pins the flag fallback.
func TestRefreshTimeoutDefaultsToMineTimeout(t *testing.T) {
	cfg, err := parseFlags([]string{"-in", "x.dat", "-mine-timeout", "7s"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.refreshTimeout != 7*time.Second {
		t.Errorf("refreshTimeout = %v, want the -mine-timeout fallback", cfg.refreshTimeout)
	}
	cfg, err = parseFlags([]string{"-in", "x.dat", "-mine-timeout", "7s", "-refresh-timeout", "2s"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.refreshTimeout != 2*time.Second {
		t.Errorf("refreshTimeout = %v, want the explicit 2s", cfg.refreshTimeout)
	}
	if _, err := parseFlags([]string{"-in", "x.dat", "-refresh", "-1s"}); err == nil {
		t.Error("negative -refresh accepted")
	}
}
