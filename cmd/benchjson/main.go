// Command benchjson measures the closed-set mining engine and emits a
// machine-readable benchmark report, so the perf trajectory of the
// miners is tracked across PRs instead of remembered.
//
// Usage:
//
//	benchjson -scale small -label "quick check" -out /tmp/bench.json
//	benchjson -scale medium -append -out BENCH_closedmining.json
//	benchjson -scale medium -live-append -append -out BENCH_closedmining.json
//
// Every (workload × miner) cell records ns/op, allocs/op, bytes/op and
// the number of itemsets mined. With -append the new run is added to
// the runs already in -out (the tracked-baseline workflow); without it
// the file is overwritten with a single-run report. The emitted file is
// re-read and validated before the command exits 0, which is what the
// CI smoke step relies on: malformed output is a non-zero exit.
//
// -basis-e2e switches to the end-to-end dataset→basis campaign: each
// (miner × basis) pipeline is mined and built from scratch per
// iteration, so the cells (kind "basis") compare what serving a basis
// costs per miner — in particular the two-pass a-close path against
// the one-pass genclose path for the generator-requiring bases.
//
// -live-append switches to the incremental-maintenance campaign: each
// workload is replayed as a committed base plus -append-batches equal
// append batches (sized by -append-fracs), and every batch is both
// updated in place (internal/incremental) and re-mined from scratch
// with the -remine baseline. The two paths are checked equivalent on
// every batch; the emitted cells have kind "update" and miners
// "incremental" vs "remine", and the remine/incremental speedup per
// workload is printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"closedrules/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		scaleF   = fs.String("scale", "small", "workload scale: small | medium | full")
		label    = fs.String("label", "", "run label recorded in the report (default: scale + date)")
		out      = fs.String("out", "BENCH_closedmining.json", "output report path")
		appendF  = fs.Bool("append", false, "append the run to an existing report instead of overwriting")
		closedF  = fs.String("closed", "close,charm,pcharm,genclose,pgenclose", "comma-separated closed miners to bench")
		freqF    = fs.String("frequent", "eclat,declat,peclat,pdeclat", "comma-separated frequent miners to bench")
		minTime  = fs.Duration("mintime", 300*time.Millisecond, "minimum measuring time per cell")
		maxIters = fs.Int("maxiters", 20, "maximum iterations per cell")
		timeout  = fs.Duration("timeout", 0, "abort the whole campaign after this duration (0 = no limit)")

		basisE2E    = fs.Bool("basis-e2e", false, "run the end-to-end dataset→basis campaign (mine + build per iteration) instead of the miner sweep")
		basisMiners = fs.String("basis-miners", "aclose,genclose", "comma-separated closed miners pipelined in -basis-e2e (must satisfy the bases' requirements)")
		basisBases  = fs.String("basis-bases", "duquenne-guigues,generic", "comma-separated bases built in -basis-e2e")

		liveAppend  = fs.Bool("live-append", false, "run the live-append campaign (incremental update vs full re-mine) instead of the miner sweep")
		appendFracs = fs.String("append-fracs", "0.001,0.01", "comma-separated per-batch append sizes as fractions of each workload")
		appendN     = fs.Int("append-batches", 5, "append batches per live-append schedule")
		remineF     = fs.String("remine", "charm", "closed miner used as the full re-mine baseline in -live-append")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := bench.ParseScale(*scaleF)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *label == "" {
		*label = fmt.Sprintf("%s %s", *scaleF, time.Now().UTC().Format("2006-01-02"))
	}

	var newRun bench.Run
	if *basisE2E {
		newRun, err = bench.ExecuteBasis(ctx, bench.BasisConfig{
			Label:    *label,
			Scale:    scale,
			Miners:   splitList(*basisMiners),
			Bases:    splitList(*basisBases),
			MinTime:  *minTime,
			MaxIters: *maxIters,
		})
		if err != nil {
			return err
		}
	} else if *liveAppend {
		fracs, err := splitFloats(*appendFracs)
		if err != nil {
			return err
		}
		newRun, err = bench.ExecuteAppend(ctx, bench.AppendConfig{
			Label:       *label,
			Scale:       scale,
			Fractions:   fracs,
			Batches:     *appendN,
			RemineMiner: *remineF,
			MinTime:     *minTime,
			MaxIters:    *maxIters,
		})
		if err != nil {
			return err
		}
	} else {
		cfg := bench.RunConfig{
			Label:          *label,
			Scale:          scale,
			ClosedMiners:   splitList(*closedF),
			FrequentMiners: splitList(*freqF),
			MinTime:        *minTime,
			MaxIters:       *maxIters,
		}
		var skipped []string
		newRun, skipped, err = bench.Execute(ctx, cfg)
		if err != nil {
			return err
		}
		for _, s := range skipped {
			fmt.Fprintf(os.Stderr, "benchjson: miner %q not registered, skipped\n", s)
		}
	}
	newRun.Date = time.Now().UTC().Format(time.RFC3339)

	rep := bench.Report{Schema: bench.ReportSchema}
	if *appendF {
		if f, err := os.Open(*out); err == nil {
			prev, rerr := bench.ReadReport(f)
			f.Close()
			if rerr != nil {
				return fmt.Errorf("cannot append to %s: %w", *out, rerr)
			}
			rep = prev
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	rep.Runs = append(rep.Runs, newRun)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := bench.WriteReport(f, rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// Re-read and validate what was written: a malformed report must be
	// a non-zero exit, never a silently committed artifact.
	rf, err := os.Open(*out)
	if err != nil {
		return err
	}
	defer rf.Close()
	if _, err := bench.ReadReport(rf); err != nil {
		return fmt.Errorf("emitted report is invalid: %w", err)
	}

	fmt.Fprintf(w, "wrote %s: %d run(s), %d result(s) in run %q\n",
		*out, len(rep.Runs), len(newRun.Results), newRun.Label)
	pairs := map[string]string{"charm": "pcharm", "eclat": "peclat", "declat": "pdeclat", "genclose": "pgenclose"}
	if *liveAppend {
		pairs = map[string]string{"remine": "incremental"}
	}
	if *basisE2E {
		// The headline comparison: two-pass a-close vs one-pass genclose
		// on the same dataset→basis pipeline.
		pairs = map[string]string{"aclose": "genclose"}
	}
	for base, subject := range pairs {
		for workload, speedup := range bench.Speedups(newRun, base, subject) {
			fmt.Fprintf(w, "  %s: %s/%s speedup %.2fx\n", workload, subject, base, speedup)
		}
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad fraction %q: %w", p, err)
		}
		if f <= 0 || f >= 1 {
			return nil, fmt.Errorf("fraction %q outside (0,1)", p)
		}
		out = append(out, f)
	}
	return out, nil
}
