// Command benchjson measures the closed-set mining engine and emits a
// machine-readable benchmark report, so the perf trajectory of the
// miners is tracked across PRs instead of remembered.
//
// Usage:
//
//	benchjson -scale small -label "quick check" -out /tmp/bench.json
//	benchjson -scale medium -append -out BENCH_closedmining.json
//
// Every (workload × miner) cell records ns/op, allocs/op, bytes/op and
// the number of itemsets mined. With -append the new run is added to
// the runs already in -out (the tracked-baseline workflow); without it
// the file is overwritten with a single-run report. The emitted file is
// re-read and validated before the command exits 0, which is what the
// CI smoke step relies on: malformed output is a non-zero exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"closedrules/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, w *os.File) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		scaleF   = fs.String("scale", "small", "workload scale: small | medium | full")
		label    = fs.String("label", "", "run label recorded in the report (default: scale + date)")
		out      = fs.String("out", "BENCH_closedmining.json", "output report path")
		appendF  = fs.Bool("append", false, "append the run to an existing report instead of overwriting")
		closedF  = fs.String("closed", "close,charm,pcharm", "comma-separated closed miners to bench")
		freqF    = fs.String("frequent", "eclat,declat,peclat", "comma-separated frequent miners to bench")
		minTime  = fs.Duration("mintime", 300*time.Millisecond, "minimum measuring time per cell")
		maxIters = fs.Int("maxiters", 20, "maximum iterations per cell")
		timeout  = fs.Duration("timeout", 0, "abort the whole campaign after this duration (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := bench.ParseScale(*scaleF)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *label == "" {
		*label = fmt.Sprintf("%s %s", *scaleF, time.Now().UTC().Format("2006-01-02"))
	}

	cfg := bench.RunConfig{
		Label:          *label,
		Scale:          scale,
		ClosedMiners:   splitList(*closedF),
		FrequentMiners: splitList(*freqF),
		MinTime:        *minTime,
		MaxIters:       *maxIters,
	}
	newRun, skipped, err := bench.Execute(ctx, cfg)
	if err != nil {
		return err
	}
	newRun.Date = time.Now().UTC().Format(time.RFC3339)
	for _, s := range skipped {
		fmt.Fprintf(os.Stderr, "benchjson: miner %q not registered, skipped\n", s)
	}

	rep := bench.Report{Schema: bench.ReportSchema}
	if *appendF {
		if f, err := os.Open(*out); err == nil {
			prev, rerr := bench.ReadReport(f)
			f.Close()
			if rerr != nil {
				return fmt.Errorf("cannot append to %s: %w", *out, rerr)
			}
			rep = prev
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	rep.Runs = append(rep.Runs, newRun)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := bench.WriteReport(f, rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// Re-read and validate what was written: a malformed report must be
	// a non-zero exit, never a silently committed artifact.
	rf, err := os.Open(*out)
	if err != nil {
		return err
	}
	defer rf.Close()
	if _, err := bench.ReadReport(rf); err != nil {
		return fmt.Errorf("emitted report is invalid: %w", err)
	}

	fmt.Fprintf(w, "wrote %s: %d run(s), %d result(s) in run %q\n",
		*out, len(rep.Runs), len(newRun.Results), newRun.Label)
	for base, subject := range map[string]string{"charm": "pcharm", "eclat": "peclat"} {
		for workload, speedup := range bench.Speedups(newRun, base, subject) {
			fmt.Fprintf(w, "  %s: %s/%s speedup %.2fx\n", workload, subject, base, speedup)
		}
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
