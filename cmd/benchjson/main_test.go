package main

import (
	"os"
	"path/filepath"
	"testing"

	"closedrules/internal/bench"
)

func TestWriteAppendAndValidate(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	args := []string{
		"-scale", "small", "-label", "first", "-out", out,
		"-closed", "charm", "-frequent", "", "-mintime", "1ms", "-maxiters", "1",
	}
	if err := run(args, os.Stdout); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bench.ReadReport(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Label != "first" {
		t.Fatalf("unexpected report: %+v", rep)
	}

	// Appending keeps the first run; overwriting drops it.
	args[3] = "second"
	if err := run(append(args, "-append"), os.Stdout); err != nil {
		t.Fatal(err)
	}
	f, _ = os.Open(out)
	rep, err = bench.ReadReport(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 || rep.Runs[1].Label != "second" {
		t.Fatalf("append failed: %+v", rep)
	}
	args[3] = "third"
	if err := run(args, os.Stdout); err != nil {
		t.Fatal(err)
	}
	f, _ = os.Open(out)
	rep, err = bench.ReadReport(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Label != "third" {
		t.Fatalf("overwrite failed: %+v", rep)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-scale", "bogus"}, os.Stdout); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-out", "/nonexistent-dir/x.json", "-scale", "small",
		"-closed", "charm", "-frequent", "", "-mintime", "1ms", "-maxiters", "1"}, os.Stdout); err == nil {
		t.Error("unwritable output accepted")
	}
	if err := run([]string{"-live-append", "-append-fracs", "nope", "-scale", "small"}, os.Stdout); err == nil {
		t.Error("unparseable -append-fracs accepted")
	}
	if err := run([]string{"-live-append", "-append-fracs", "1.5", "-scale", "small"}, os.Stdout); err == nil {
		t.Error("out-of-range -append-fracs accepted")
	}
}

func TestLiveAppendMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	args := []string{
		"-scale", "small", "-label", "live", "-out", out, "-live-append",
		"-append-fracs", "0.01", "-append-batches", "2",
		"-mintime", "1ms", "-maxiters", "1",
	}
	if err := run(args, os.Stdout); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bench.ReadReport(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(rep.Runs))
	}
	// 4 workloads × (incremental + remine), all kind "update".
	if got := len(rep.Runs[0].Results); got != 8 {
		t.Fatalf("results = %d, want 8", got)
	}
	for _, r := range rep.Runs[0].Results {
		if r.Kind != "update" {
			t.Errorf("%s/%s kind = %q, want update", r.Workload, r.Miner, r.Kind)
		}
	}
}
