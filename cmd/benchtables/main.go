// Command benchtables regenerates the paper-shaped evaluation tables
// (experiments E1–E8 of DESIGN.md §4) and prints them as aligned text,
// ready to be pasted into EXPERIMENTS.md.
//
// Usage:
//
//	benchtables                 # all experiments, small scale
//	benchtables -scale medium   # larger datasets
//	benchtables -exp e1,e3      # a subset of the experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"closedrules/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	var (
		scaleFlag = fs.String("scale", "small", "dataset scale: small | medium | full")
		expFlag   = fs.String("exp", "all", "comma-separated experiment ids (e1..e8) or all")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}

	want := map[string]bool{}
	if *expFlag != "all" {
		for _, e := range strings.Split(*expFlag, ",") {
			want[strings.ToLower(strings.TrimSpace(e))] = true
		}
	}
	keep := func(id string) bool {
		return len(want) == 0 || want[strings.ToLower(id)]
	}

	ws, err := bench.Workloads(scale)
	if err != nil {
		return err
	}
	print := func(t bench.Table, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprintln(w, t.String())
		return nil
	}

	if keep("e1") {
		for _, wl := range ws {
			if err := print(bench.E1(wl)); err != nil {
				return err
			}
		}
	}
	if keep("e2") {
		for _, wl := range ws {
			if err := print(bench.E2(wl)); err != nil {
				return err
			}
		}
	}
	if keep("e3") {
		for _, wl := range ws {
			if err := print(bench.E3(wl)); err != nil {
				return err
			}
		}
	}
	if keep("e4") {
		for _, wl := range ws {
			if err := print(bench.E4(wl)); err != nil {
				return err
			}
		}
	}
	if keep("e5") {
		if err := print(bench.E5(scale)); err != nil {
			return err
		}
	}
	if keep("e6") {
		for _, wl := range ws {
			if err := print(bench.E6(wl)); err != nil {
				return err
			}
		}
	}
	if keep("e7") {
		for _, wl := range ws {
			if err := print(bench.E7(wl)); err != nil {
				return err
			}
		}
	}
	if keep("e8") {
		for _, wl := range ws {
			if err := print(bench.E8(wl)); err != nil {
				return err
			}
		}
	}
	return nil
}
