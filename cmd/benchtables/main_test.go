package main

import (
	"strings"
	"testing"
)

// The full small-scale suite takes a minute; the test exercises the
// cheap experiments and the flag plumbing only.
func TestSelectedExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var sb strings.Builder
	if err := run([]string{"-exp", "e5"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "== E5 — scale-up") {
		t.Errorf("missing E5 table:\n%s", out)
	}
	if strings.Contains(out, "== E1") {
		t.Errorf("unexpected E1 table in filtered run")
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "bogus"}, &sb); err == nil {
		t.Error("bad scale accepted")
	}
}
