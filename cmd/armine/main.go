// Command armine mines frequent closed itemsets, association rules and
// rule bases from transaction data.
//
// Usage:
//
//	armine -in data.dat -minsup 0.3 -mode bases [-minconf 0.5] [-algo close] [-timeout 30s]
//	armine -in data.dat -minsup 0.3 -basis luxenburger [-minconf 0.5] [-full]
//	armine -in table.csv -table -sep , -header -minsup 0.5 -mode closed
//	armine -algo list
//	armine -basis list
//
// Modes:
//
//	stats     dataset summary
//	frequent  all frequent itemsets (-algo apriori | eclat | declat | fpgrowth | pascal)
//	closed    frequent closed itemsets with minimal generators
//	pseudo    frequent pseudo-closed itemsets
//	rules     all valid association rules at -minconf
//	bases     Duquenne–Guigues + reduced Luxenburger bases (the paper)
//	generic   generic + informative bases (minimal generators)
//	lattice   iceberg lattice in Graphviz DOT
//
// Algorithms are resolved through the miner registry: `-algo list`
// prints every registered name. Closed modes default to "close",
// frequent mode to "apriori". The generator-requiring modes (closed,
// generic) accept any generator-tracking miner: the level-wise close,
// a-close and titanic, or genclose/pgenclose, which mine the closed
// sets and their minimal generators in one vertical traversal. Rule bases are resolved through the
// basis registry: `-basis list` prints every registered basis, and
// `-basis NAME` mines and prints that single basis at -minconf
// (overriding -mode; -full selects the unreduced variant where one
// exists). A -timeout aborts a runaway mine mid-run via context
// cancellation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"closedrules"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "armine:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("armine", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "input file (.dat basket format unless -table)")
		table   = fs.Bool("table", false, "input is a nominal table (one attribute per column)")
		sep     = fs.String("sep", ",", "table column separator")
		header  = fs.Bool("header", false, "table has a header row")
		minsup  = fs.Float64("minsup", 0.5, "relative minimum support (0,1]")
		abssup  = fs.Int("abssup", 0, "absolute minimum support (overrides -minsup when ≥1)")
		minconf = fs.Float64("minconf", 0.5, "minimum confidence [0,1]")
		algo    = fs.String("algo", "", "miner registry name (\"list\" to print all; default close, or apriori in frequent mode)")
		basis   = fs.String("basis", "", "basis registry name (\"list\" to print all); overrides -mode with a single-basis run")
		full    = fs.Bool("full", false, "with -basis: build the unreduced variant where one exists")
		mode    = fs.String("mode", "bases", "stats | frequent | closed | pseudo | rules | bases | generic | lattice")
		format  = fs.String("format", "text", "rule output format: text | json | csv")
		timeout = fs.Duration("timeout", 0, "abort mining after this duration (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *algo == "list" {
		fmt.Fprintf(w, "closed miners:   %s\n", strings.Join(closedrules.ClosedMiners(), " "))
		fmt.Fprintf(w, "frequent miners: %s\n", strings.Join(closedrules.FrequentMiners(), " "))
		return nil
	}
	if *basis == "list" {
		fmt.Fprintf(w, "bases: %s\n", strings.Join(closedrules.Bases(), " "))
		return nil
	}
	if *basis != "" {
		// Fail on unknown names before the mining work, not after.
		if _, err := closedrules.LookupBasis(*basis); err != nil {
			return err
		}
	}
	if *in == "" {
		return fmt.Errorf("missing -in")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var (
		d   *closedrules.Dataset
		err error
	)
	if *table {
		r := []rune(*sep)
		if len(r) != 1 {
			return fmt.Errorf("-sep must be a single character")
		}
		d, err = closedrules.ReadTableFile(*in, r[0], *header)
	} else {
		d, err = closedrules.ReadDatFile(*in)
	}
	if err != nil {
		return err
	}

	opts := []closedrules.MineOption{closedrules.WithMinSupport(*minsup)}
	if *abssup >= 1 {
		opts = []closedrules.MineOption{closedrules.WithAbsoluteMinSupport(*abssup)}
	}
	// Algorithm defaulting (close / apriori) is the library's job.
	if *algo != "" {
		opts = append(opts, closedrules.WithAlgorithm(*algo))
	}

	if *basis == "" && *mode == "stats" {
		s := d.Stats()
		fmt.Fprintf(w, "transactions: %d\nitems: %d\navg length: %.2f\nmin/max length: %d/%d\ndensity: %.4f\n",
			s.NumTransactions, s.NumItems, s.AvgLen, s.MinLen, s.MaxLen, s.Density)
		return nil
	}
	if *basis == "" && *mode == "frequent" {
		fi, err := closedrules.MineFrequentContext(ctx, d, opts...)
		if err != nil {
			return err
		}
		for _, f := range fi {
			fmt.Fprintf(w, "%s\t%d\n", f.Items.Format(d.Names()), f.Support)
		}
		fmt.Fprintf(w, "# %d frequent itemsets\n", len(fi))
		return nil
	}

	res, err := closedrules.MineContext(ctx, d, opts...)
	if err != nil {
		return err
	}
	names := d.Names()

	if *basis != "" {
		bopts := []closedrules.BasisOption{closedrules.WithMinConfidence(*minconf)}
		if *full {
			bopts = append(bopts, closedrules.WithReduction(false))
		}
		rs, err := res.Basis(ctx, *basis, bopts...)
		if err != nil {
			return err
		}
		if done, err := writeRules(w, rs.Rules, *format); done || err != nil {
			return err
		}
		variant := "reduced"
		if !rs.Reduced {
			variant = "full"
		}
		fmt.Fprintf(w, "## %s basis (%s, conf ≥ %.2f): %d\n", rs.Basis, variant, rs.MinConfidence, rs.Len())
		for _, r := range rs.Rules {
			fmt.Fprintln(w, r.Format(names))
		}
		return nil
	}

	switch *mode {
	case "closed":
		for _, c := range res.ClosedItemsets() {
			fmt.Fprintf(w, "%s\t%d", c.Items.Format(names), c.Support)
			for _, g := range c.Generators {
				fmt.Fprintf(w, "\tgen:%s", g.Format(names))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "# %d frequent closed itemsets\n", res.NumClosed())
	case "pseudo":
		ps, err := res.PseudoClosedItemsets()
		if err != nil {
			return err
		}
		for _, p := range ps {
			fmt.Fprintf(w, "%s\t%d\n", p.Items.Format(names), p.Support)
		}
		fmt.Fprintf(w, "# %d frequent pseudo-closed itemsets\n", len(ps))
	case "rules":
		all, err := res.AllRules(*minconf)
		if err != nil {
			return err
		}
		if done, err := writeRules(w, all, *format); done || err != nil {
			return err
		}
		for _, r := range all {
			fmt.Fprintln(w, r.Format(names))
		}
		fmt.Fprintf(w, "# %d rules\n", len(all))
	case "bases":
		bases, err := res.Bases(*minconf)
		if err != nil {
			return err
		}
		if *format != "text" {
			all := append(append([]closedrules.Rule{}, bases.Exact...), bases.Approximate...)
			_, err := writeRules(w, all, *format)
			return err
		}
		fmt.Fprintf(w, "## Duquenne–Guigues basis (exact rules): %d\n", len(bases.Exact))
		for _, r := range bases.Exact {
			fmt.Fprintln(w, r.Format(names))
		}
		fmt.Fprintf(w, "## Luxenburger reduction (approximate rules, conf ≥ %.2f): %d\n",
			*minconf, len(bases.Approximate))
		for _, r := range bases.Approximate {
			fmt.Fprintln(w, r.Format(names))
		}
	case "generic":
		gb, err := res.GenericBasis()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "## Generic basis (exact rules): %d\n", len(gb))
		for _, r := range gb {
			fmt.Fprintln(w, r.Format(names))
		}
		ib, err := res.InformativeBasis(*minconf, true)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "## Reduced informative basis (conf ≥ %.2f): %d\n", *minconf, len(ib))
		for _, r := range ib {
			fmt.Fprintln(w, r.Format(names))
		}
	case "lattice":
		fmt.Fprint(w, res.LatticeDOT())
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	return nil
}

// writeRules handles the non-text formats; done reports whether the
// rules were written (text falls through to the caller's renderer).
func writeRules(w io.Writer, list []closedrules.Rule, format string) (done bool, err error) {
	switch format {
	case "text":
		return false, nil
	case "json":
		return true, closedrules.WriteRulesJSON(w, list)
	case "csv":
		return true, closedrules.WriteRulesCSV(w, list)
	}
	return true, fmt.Errorf("unknown -format %q", format)
}
