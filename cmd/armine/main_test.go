package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeClassic writes the classic 5-object context to a temp .dat file.
func writeClassic(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "classic.dat")
	data := "0 2 3\n1 2 4\n0 1 2 4\n1 4\n0 1 2 4\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestStatsMode(t *testing.T) {
	out := runCLI(t, "-in", writeClassic(t), "-mode", "stats")
	if !strings.Contains(out, "transactions: 5") || !strings.Contains(out, "items: 5") {
		t.Errorf("stats output:\n%s", out)
	}
}

func TestFrequentMode(t *testing.T) {
	out := runCLI(t, "-in", writeClassic(t), "-minsup", "0.4", "-mode", "frequent")
	if !strings.Contains(out, "# 15 frequent itemsets") {
		t.Errorf("frequent output:\n%s", out)
	}
}

func TestClosedModeAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"close", "aclose", "charm", "titanic", "genclose", "pgenclose"} {
		out := runCLI(t, "-in", writeClassic(t), "-minsup", "0.4", "-mode", "closed", "-algo", algo)
		if !strings.Contains(out, "# 6 frequent closed itemsets") {
			t.Errorf("algo %s output:\n%s", algo, out)
		}
	}
}

func TestAlgoList(t *testing.T) {
	out := runCLI(t, "-algo", "list")
	for _, name := range []string{"close", "aclose", "charm", "titanic", "genclose", "pgenclose", "apriori", "eclat", "declat", "fpgrowth", "pascal"} {
		if !strings.Contains(out, name) {
			t.Errorf("-algo list missing %q:\n%s", name, out)
		}
	}
}

func TestBasisList(t *testing.T) {
	out := runCLI(t, "-basis", "list")
	for _, name := range []string{"duquenne-guigues", "generic", "informative", "luxenburger"} {
		if !strings.Contains(out, name) {
			t.Errorf("-basis list missing %q:\n%s", name, out)
		}
	}
}

func TestBasisFlagAllBuiltins(t *testing.T) {
	// Every registered basis is reachable by name from the CLI, with
	// the counts of the classic example at conf ≥ 0.5.
	for name, want := range map[string]string{
		"duquenne-guigues": "## duquenne-guigues basis (reduced, conf ≥ 0.50): 3",
		"generic":          "## generic basis (reduced, conf ≥ 0.50): 7",
		"luxenburger":      "## luxenburger basis (reduced, conf ≥ 0.50): 5",
		"informative":      "## informative basis (reduced, conf ≥ 0.50): 7",
	} {
		out := runCLI(t, "-in", writeClassic(t), "-minsup", "0.4", "-minconf", "0.5", "-basis", name)
		if !strings.Contains(out, want) {
			t.Errorf("-basis %s output:\n%s", name, out)
		}
	}
}

func TestBasisFlagFullVariant(t *testing.T) {
	out := runCLI(t, "-in", writeClassic(t), "-minsup", "0.4", "-minconf", "0", "-basis", "luxenburger", "-full")
	if !strings.Contains(out, "## luxenburger basis (full, conf ≥ 0.00): 7") {
		t.Errorf("-basis luxenburger -full output:\n%s", out)
	}
}

func TestBasisFlagJSONFormat(t *testing.T) {
	out := runCLI(t, "-in", writeClassic(t), "-minsup", "0.4", "-basis", "duquenne-guigues", "-format", "json")
	if !strings.HasPrefix(strings.TrimSpace(out), "[") || !strings.Contains(out, "\"antecedent\"") {
		t.Errorf("json basis output:\n%.200s", out)
	}
}

func TestBasisFlagUnknownName(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-in", writeClassic(t), "-minsup", "0.4", "-basis", "bogus"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "unknown basis") {
		t.Errorf("unknown basis err = %v", err)
	}
}

func TestFrequentModeAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"apriori", "eclat", "declat", "fpgrowth", "pascal"} {
		out := runCLI(t, "-in", writeClassic(t), "-minsup", "0.4", "-mode", "frequent", "-algo", algo)
		if !strings.Contains(out, "# 15 frequent itemsets") {
			t.Errorf("algo %s output:\n%s", algo, out)
		}
	}
}

func TestTimeoutFlag(t *testing.T) {
	// A generous timeout must not disturb a normal run.
	out := runCLI(t, "-in", writeClassic(t), "-minsup", "0.4", "-mode", "closed", "-timeout", "1m")
	if !strings.Contains(out, "# 6 frequent closed itemsets") {
		t.Errorf("timeout run output:\n%s", out)
	}
	// An already-expired timeout aborts with the context's error.
	var sb strings.Builder
	err := run([]string{"-in", writeClassic(t), "-minsup", "0.4", "-mode", "closed", "-timeout", "1ns"}, &sb)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired timeout: err = %v, want context.DeadlineExceeded", err)
	}
}

func TestPseudoMode(t *testing.T) {
	out := runCLI(t, "-in", writeClassic(t), "-minsup", "0.4", "-mode", "pseudo")
	if !strings.Contains(out, "# 3 frequent pseudo-closed itemsets") {
		t.Errorf("pseudo output:\n%s", out)
	}
}

func TestRulesMode(t *testing.T) {
	out := runCLI(t, "-in", writeClassic(t), "-minsup", "0.4", "-minconf", "0", "-mode", "rules")
	if !strings.Contains(out, "# 50 rules") {
		t.Errorf("rules output:\n%s", out)
	}
}

func TestBasesMode(t *testing.T) {
	out := runCLI(t, "-in", writeClassic(t), "-minsup", "0.4", "-minconf", "0.5", "-mode", "bases")
	if !strings.Contains(out, "Duquenne–Guigues basis (exact rules): 3") {
		t.Errorf("bases output:\n%s", out)
	}
	if !strings.Contains(out, "Luxenburger reduction (approximate rules, conf ≥ 0.50): 5") {
		t.Errorf("bases output:\n%s", out)
	}
}

func TestGenericMode(t *testing.T) {
	out := runCLI(t, "-in", writeClassic(t), "-minsup", "0.4", "-mode", "generic")
	if !strings.Contains(out, "Generic basis (exact rules): 7") {
		t.Errorf("generic output:\n%s", out)
	}
}

func TestLatticeMode(t *testing.T) {
	out := runCLI(t, "-in", writeClassic(t), "-minsup", "0.4", "-mode", "lattice")
	if !strings.HasPrefix(out, "digraph lattice {") {
		t.Errorf("lattice output:\n%s", out)
	}
}

func TestTableInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.csv")
	data := "color,size\nred,big\nred,big\nblue,small\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "-in", path, "-table", "-header", "-minsup", "0.5", "-mode", "closed")
	if !strings.Contains(out, "color=red") {
		t.Errorf("table output:\n%s", out)
	}
}

func TestRulesJSONFormat(t *testing.T) {
	out := runCLI(t, "-in", writeClassic(t), "-minsup", "0.4", "-minconf", "0", "-mode", "rules", "-format", "json")
	if !strings.HasPrefix(strings.TrimSpace(out), "[") {
		t.Errorf("json output:\n%.80s", out)
	}
	if !strings.Contains(out, "\"antecedent\"") {
		t.Errorf("json output lacks fields:\n%.200s", out)
	}
}

func TestBasesCSVFormat(t *testing.T) {
	out := runCLI(t, "-in", writeClassic(t), "-minsup", "0.4", "-minconf", "0.5", "-mode", "bases", "-format", "csv")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "antecedent,consequent,support,antecedentSupport,consequentSupport,confidence" {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != 9 { // header + 3 exact + 5 approximate
		t.Errorf("csv has %d lines:\n%s", len(lines), out)
	}
}

func TestBadFormat(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-in", writeClassic(t), "-minsup", "0.4", "-mode", "rules", "-format", "xml"}, &sb)
	if err == nil {
		t.Error("bad format accepted")
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{},                               // missing -in
		{"-in", "/nonexistent/file.dat"}, // missing file
		{"-in", writeClassic(t), "-algo", "bogus"},
		{"-in", writeClassic(t), "-mode", "bogus"},
		{"-in", writeClassic(t), "-table", "-sep", "ab"},
		{"-in", writeClassic(t), "-minsup", "7"},
	}
	for i, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}
