package closedrules

import (
	"context"
	"fmt"

	"closedrules/internal/closedset"
	"closedrules/internal/miner"
)

// MineOption configures MineContext and MineFrequentContext.
type MineOption func(*mineConfig) error

type mineConfig struct {
	minSupport  float64 // relative, in (0,1]; 0 when unset
	absSupport  int     // absolute count ≥ 1; 0 when unset
	algorithm   string  // registry name; empty means the call's default
	parallelism int     // worker-count hint for parallel miners; 0 when unset
}

// WithMinSupport sets the relative minimum support threshold in
// (0, 1].
func WithMinSupport(rel float64) MineOption {
	return func(c *mineConfig) error {
		if !(rel > 0 && rel <= 1) { // negated AND also rejects NaN
			return fmt.Errorf("closedrules: WithMinSupport(%v) outside (0,1]", rel)
		}
		c.minSupport = rel
		return nil
	}
}

// WithAbsoluteMinSupport sets the minimum support as an absolute
// transaction count ≥ 1. It takes precedence over WithMinSupport.
func WithAbsoluteMinSupport(count int) MineOption {
	return func(c *mineConfig) error {
		if count < 1 {
			return fmt.Errorf("closedrules: WithAbsoluteMinSupport(%d) < 1", count)
		}
		c.absSupport = count
		return nil
	}
}

// WithAlgorithm selects the miner by registry name (see ClosedMiners
// and FrequentMiners for the available names). Name matching ignores
// case, hyphens and underscores, so "a-close" and "AClose" are
// equivalent. An unknown name surfaces as an error from the mining
// call, which lists the registered alternatives.
func WithAlgorithm(name string) MineOption {
	return func(c *mineConfig) error {
		if name == "" {
			return fmt.Errorf("closedrules: WithAlgorithm with empty name")
		}
		c.algorithm = name
		return nil
	}
}

// WithParallelism sets the number of workers parallel miners (such as
// "pcharm" and "peclat") use, overriding their default of one worker
// per CPU. Sequential miners ignore it. n must be ≥ 1; note that the
// hint caps concurrency, it does not create it — mining with
// WithParallelism(1) is the parallel algorithm run on one worker.
func WithParallelism(n int) MineOption {
	return func(c *mineConfig) error {
		if n < 1 {
			return fmt.Errorf("closedrules: WithParallelism(%d) < 1", n)
		}
		c.parallelism = n
		return nil
	}
}

// BasisOption configures Result.Basis.
type BasisOption func(*basisConfig) error

// basisConfig carries the resolved basis-construction options. The
// zero value is not the default — buildBasisConfig seeds reduced=true,
// the paper's served variant.
type basisConfig struct {
	minConf      float64 // keep rules with confidence ≥ this; 0 keeps all
	reduced      bool    // transitive-reduction variant where one exists
	includeEmpty bool    // keep empty-antecedent rules (engine plumbing)
	genResolve   bool    // re-mine generators via genclose when missing
}

// WithMinConfidence keeps only rules with confidence ≥ c ∈ [0,1] in
// the constructed basis. Exact-rule bases (confidence 1 everywhere)
// are unaffected. The default 0 keeps every rule.
func WithMinConfidence(c float64) BasisOption {
	return func(cfg *basisConfig) error {
		// The negated-AND form also rejects NaN, which passes every
		// ordered comparison.
		if !(c >= 0 && c <= 1) {
			return fmt.Errorf("closedrules: WithMinConfidence(%v) outside [0,1]", c)
		}
		cfg.minConf = c
		return nil
	}
}

// WithReduction selects between the transitive-reduction variant of a
// basis (true, the default — e.g. the Hasse-edge Luxenburger reduction
// of Theorem 2) and the full variant (false — one rule per comparable
// closed pair). Bases without a reduced variant ignore it.
func WithReduction(reduced bool) BasisOption {
	return func(cfg *basisConfig) error {
		cfg.reduced = reduced
		return nil
	}
}

// WithGeneratorResolution lets a generator-requiring basis (generic,
// informative) be built from a result whose miner does not track
// minimal generators: the registry re-mines the dataset once with
// genclose — the one-pass closed-sets-plus-generators miner — and
// builds the basis from that resolved family. The re-mine is memoized
// on the Result, so repeated basis builds pay for it once. Off by
// default: without the opt-in such a request keeps failing with the
// explicit requirement error, as it always has.
func WithGeneratorResolution() BasisOption {
	return func(cfg *basisConfig) error {
		cfg.genResolve = true
		return nil
	}
}

func buildBasisConfig(opts []BasisOption) (basisConfig, error) {
	cfg := basisConfig{reduced: true}
	for _, opt := range opts {
		if opt == nil {
			return cfg, fmt.Errorf("closedrules: nil BasisOption")
		}
		if err := opt(&cfg); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

func buildConfig(opts []MineOption) (mineConfig, error) {
	var c mineConfig
	for _, opt := range opts {
		if opt == nil {
			return c, fmt.Errorf("closedrules: nil MineOption")
		}
		if err := opt(&c); err != nil {
			return c, err
		}
	}
	return c, nil
}

// minSup resolves the absolute support count for a dataset.
func (c mineConfig) minSup(d *Dataset) (int, error) {
	if c.absSupport >= 1 {
		return c.absSupport, nil
	}
	if c.minSupport <= 0 || c.minSupport > 1 {
		return 0, fmt.Errorf("closedrules: no support threshold: use WithMinSupport or WithAbsoluteMinSupport")
	}
	return d.AbsoluteSupport(c.minSupport), nil
}

// MineContext extracts the frequent closed itemsets of the dataset
// with the selected closed-itemset miner (default "close") and returns
// a Result from which itemsets, rules and bases are derived. The
// context is honored at the miner's level or extension boundaries, so
// cancellation and deadlines abort a runaway mine mid-run with
// ctx.Err().
func MineContext(ctx context.Context, d *Dataset, opts ...MineOption) (*Result, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.algorithm == "" {
		cfg.algorithm = "close"
	}
	minSup, err := cfg.minSup(d)
	if err != nil {
		return nil, err
	}
	m, err := miner.LookupClosed(cfg.algorithm)
	if err != nil {
		return nil, err
	}
	if cfg.parallelism > 0 {
		ctx = miner.ContextWithParallelism(ctx, cfg.parallelism)
	}
	items, err := m.MineClosed(ctx, d, minSup)
	if err != nil {
		return nil, err
	}
	return &Result{
		d:         d,
		minSup:    minSup,
		minerName: miner.Canonical(cfg.algorithm),
		hasGens:   m.TracksGenerators(),
		fc:        closedset.FromSlice(items),
	}, nil
}

// MineFrequentContext extracts all frequent itemsets with the selected
// frequent-itemset miner (default "apriori"), under the same
// cancellation contract as MineContext.
func MineFrequentContext(ctx context.Context, d *Dataset, opts ...MineOption) ([]CountedItemset, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.algorithm == "" {
		cfg.algorithm = "apriori"
	}
	minSup, err := cfg.minSup(d)
	if err != nil {
		return nil, err
	}
	m, err := miner.LookupFrequent(cfg.algorithm)
	if err != nil {
		return nil, err
	}
	if cfg.parallelism > 0 {
		ctx = miner.ContextWithParallelism(ctx, cfg.parallelism)
	}
	return m.MineFrequent(ctx, d, minSup)
}
