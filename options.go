package closedrules

import (
	"context"
	"fmt"

	"closedrules/internal/closedset"
	"closedrules/internal/miner"
)

// MineOption configures MineContext and MineFrequentContext.
type MineOption func(*mineConfig) error

type mineConfig struct {
	minSupport  float64 // relative, in (0,1]; 0 when unset
	absSupport  int     // absolute count ≥ 1; 0 when unset
	algorithm   string  // registry name; empty means the call's default
	parallelism int     // worker-count hint for parallel miners; 0 when unset
}

// WithMinSupport sets the relative minimum support threshold in
// (0, 1].
func WithMinSupport(rel float64) MineOption {
	return func(c *mineConfig) error {
		if rel <= 0 || rel > 1 {
			return fmt.Errorf("closedrules: WithMinSupport(%v) outside (0,1]", rel)
		}
		c.minSupport = rel
		return nil
	}
}

// WithAbsoluteMinSupport sets the minimum support as an absolute
// transaction count ≥ 1. It takes precedence over WithMinSupport.
func WithAbsoluteMinSupport(count int) MineOption {
	return func(c *mineConfig) error {
		if count < 1 {
			return fmt.Errorf("closedrules: WithAbsoluteMinSupport(%d) < 1", count)
		}
		c.absSupport = count
		return nil
	}
}

// WithAlgorithm selects the miner by registry name (see ClosedMiners
// and FrequentMiners for the available names). Name matching ignores
// case, hyphens and underscores, so "a-close" and "AClose" are
// equivalent. An unknown name surfaces as an error from the mining
// call, which lists the registered alternatives.
func WithAlgorithm(name string) MineOption {
	return func(c *mineConfig) error {
		if name == "" {
			return fmt.Errorf("closedrules: WithAlgorithm with empty name")
		}
		c.algorithm = name
		return nil
	}
}

// WithParallelism sets the number of workers parallel miners (such as
// "pcharm" and "peclat") use, overriding their default of one worker
// per CPU. Sequential miners ignore it. n must be ≥ 1; note that the
// hint caps concurrency, it does not create it — mining with
// WithParallelism(1) is the parallel algorithm run on one worker.
func WithParallelism(n int) MineOption {
	return func(c *mineConfig) error {
		if n < 1 {
			return fmt.Errorf("closedrules: WithParallelism(%d) < 1", n)
		}
		c.parallelism = n
		return nil
	}
}

func buildConfig(opts []MineOption) (mineConfig, error) {
	var c mineConfig
	for _, opt := range opts {
		if opt == nil {
			return c, fmt.Errorf("closedrules: nil MineOption")
		}
		if err := opt(&c); err != nil {
			return c, err
		}
	}
	return c, nil
}

// minSup resolves the absolute support count for a dataset.
func (c mineConfig) minSup(d *Dataset) (int, error) {
	if c.absSupport >= 1 {
		return c.absSupport, nil
	}
	if c.minSupport <= 0 || c.minSupport > 1 {
		return 0, fmt.Errorf("closedrules: no support threshold: use WithMinSupport or WithAbsoluteMinSupport")
	}
	return d.AbsoluteSupport(c.minSupport), nil
}

// MineContext extracts the frequent closed itemsets of the dataset
// with the selected closed-itemset miner (default "close") and returns
// a Result from which itemsets, rules and bases are derived. The
// context is honored at the miner's level or extension boundaries, so
// cancellation and deadlines abort a runaway mine mid-run with
// ctx.Err().
func MineContext(ctx context.Context, d *Dataset, opts ...MineOption) (*Result, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.algorithm == "" {
		cfg.algorithm = "close"
	}
	minSup, err := cfg.minSup(d)
	if err != nil {
		return nil, err
	}
	m, err := miner.LookupClosed(cfg.algorithm)
	if err != nil {
		return nil, err
	}
	if cfg.parallelism > 0 {
		ctx = miner.ContextWithParallelism(ctx, cfg.parallelism)
	}
	items, err := m.MineClosed(ctx, d, minSup)
	if err != nil {
		return nil, err
	}
	return &Result{
		d:         d,
		minSup:    minSup,
		minerName: miner.Canonical(cfg.algorithm),
		hasGens:   m.TracksGenerators(),
		fc:        closedset.FromSlice(items),
	}, nil
}

// MineFrequentContext extracts all frequent itemsets with the selected
// frequent-itemset miner (default "apriori"), under the same
// cancellation contract as MineContext.
func MineFrequentContext(ctx context.Context, d *Dataset, opts ...MineOption) ([]CountedItemset, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if cfg.algorithm == "" {
		cfg.algorithm = "apriori"
	}
	minSup, err := cfg.minSup(d)
	if err != nil {
		return nil, err
	}
	m, err := miner.LookupFrequent(cfg.algorithm)
	if err != nil {
		return nil, err
	}
	if cfg.parallelism > 0 {
		ctx = miner.ContextWithParallelism(ctx, cfg.parallelism)
	}
	return m.MineFrequent(ctx, d, minSup)
}
