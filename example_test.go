package closedrules_test

import (
	"context"
	"fmt"
	"strings"

	"closedrules"
)

// The running example of the Close paper: five objects over items
// A=0, B=1, C=2, D=3, E=4.
func classicDataset() *closedrules.Dataset {
	ds, err := closedrules.NewDataset([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		panic(err)
	}
	return ds
}

func Example() {
	ctx := context.Background()
	ds := classicDataset()
	res, _ := closedrules.MineContext(ctx, ds, closedrules.WithMinSupport(0.4))
	exact, _ := res.Basis(ctx, "duquenne-guigues")
	for _, r := range exact.Rules {
		fmt.Println(r)
	}
	// Output:
	// {0} → {2} (sup=3, conf=1.000)
	// {1} → {4} (sup=4, conf=1.000)
	// {4} → {1} (sup=4, conf=1.000)
}

func ExampleResult_Basis() {
	ctx := context.Background()
	ds := classicDataset()
	res, _ := closedrules.MineContext(ctx, ds, closedrules.WithMinSupport(0.4))
	approx, _ := res.Basis(ctx, "luxenburger", closedrules.WithMinConfidence(0.7))
	fmt.Println(approx.Basis, approx.MinConfidence, approx.Len())
	for _, r := range approx.Rules {
		fmt.Println(r)
	}
	// Output:
	// luxenburger 0.7 3
	// {2} → {0} (sup=3, conf=0.750)
	// {2} → {1, 4} (sup=3, conf=0.750)
	// {1, 4} → {2} (sup=3, conf=0.750)
}

func ExampleMineContext() {
	ds := classicDataset()
	res, _ := closedrules.MineContext(context.Background(), ds,
		closedrules.WithMinSupport(0.4),
		closedrules.WithAlgorithm("titanic"))
	for _, c := range res.ClosedItemsets() {
		fmt.Printf("%v support=%d\n", c.Items, c.Support)
	}
	// Output:
	// ∅ support=5
	// {2} support=4
	// {0, 2} support=3
	// {1, 4} support=4
	// {1, 2, 4} support=3
	// {0, 1, 2, 4} support=2
}

func ExampleMineFrequentContext() {
	ds := classicDataset()
	fi, _ := closedrules.MineFrequentContext(context.Background(), ds,
		closedrules.WithMinSupport(0.4),
		closedrules.WithAlgorithm("eclat"))
	fmt.Println(len(fi), "frequent itemsets")
	// Output:
	// 15 frequent itemsets
}

func ExampleQueryService() {
	ctx := context.Background()
	ds := classicDataset()
	res, _ := closedrules.MineContext(ctx, ds, closedrules.WithMinSupport(0.4))
	qs, _ := closedrules.NewQueryService(res, 0.5)

	conf, _ := qs.Confidence(ctx, closedrules.Items(2), closedrules.Items(0)) // C → A
	fmt.Printf("conf(C → A) = %.3f\n", conf)
	recs, _ := qs.Recommend(ctx, closedrules.Items(1), 1) // observed {B}
	for _, r := range recs {
		fmt.Println("recommend:", r)
	}
	// Output:
	// conf(C → A) = 0.750
	// recommend: {1} → {4} (sup=4, conf=1.000)
}

func ExampleResult_Closure() {
	ds := classicDataset()
	res, _ := closedrules.MineContext(context.Background(), ds, closedrules.WithMinSupport(0.4))
	cl, _ := res.Closure(closedrules.Items(0)) // h({A})
	fmt.Println(cl.Items, cl.Support)
	// Output:
	// {0, 2} 3
}

func ExampleResult_DerivationEngine() {
	ctx := context.Background()
	ds := classicDataset()
	res, _ := closedrules.MineContext(ctx, ds, closedrules.WithMinSupport(0.4))
	eng, _ := res.DerivationEngine(ctx)
	// Reconstruct the rule C → B,E from the bases alone.
	r, _ := eng.Rule(closedrules.Items(2), closedrules.Items(1, 4))
	fmt.Println(r)
	// Output:
	// {2} → {1, 4} (sup=3, conf=0.750)
}

func ExampleResult_DeriveAllRules() {
	ds := classicDataset()
	res, _ := closedrules.MineContext(context.Background(), ds, closedrules.WithMinSupport(0.4))
	derived, _ := res.DeriveAllRules(0.5)
	measured, _ := res.AllRules(0.5)
	fmt.Println(len(derived) == len(measured), len(derived))
	// Output:
	// true 50
}

func ExampleReadDat() {
	ds, _ := closedrules.ReadDat(strings.NewReader("0 2 3\n1 2 4\n0 1 2 4\n1 4\n0 1 2 4\n"))
	fmt.Println(ds.NumTransactions(), ds.NumItems())
	// Output:
	// 5 5
}

func ExampleResult_PseudoClosedItemsets() {
	ds := classicDataset()
	res, _ := closedrules.MineContext(context.Background(), ds, closedrules.WithMinSupport(0.4))
	ps, _ := res.PseudoClosedItemsets()
	for _, p := range ps {
		fmt.Println(p.Items)
	}
	// Output:
	// {0}
	// {1}
	// {4}
}
