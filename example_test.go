package closedrules_test

import (
	"fmt"
	"strings"

	"closedrules"
)

// The running example of the Close paper: five objects over items
// A=0, B=1, C=2, D=3, E=4.
func classicDataset() *closedrules.Dataset {
	ds, err := closedrules.NewDataset([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		panic(err)
	}
	return ds
}

func Example() {
	ds := classicDataset()
	res, _ := closedrules.Mine(ds, closedrules.Options{MinSupport: 0.4})
	bases, _ := res.Bases(0.5)
	for _, r := range bases.Exact {
		fmt.Println(r)
	}
	// Output:
	// {0} → {2} (sup=3, conf=1.000)
	// {1} → {4} (sup=4, conf=1.000)
	// {4} → {1} (sup=4, conf=1.000)
}

func ExampleMine() {
	ds := classicDataset()
	res, _ := closedrules.Mine(ds, closedrules.Options{MinSupport: 0.4})
	for _, c := range res.ClosedItemsets() {
		fmt.Printf("%v support=%d\n", c.Items, c.Support)
	}
	// Output:
	// ∅ support=5
	// {2} support=4
	// {0, 2} support=3
	// {1, 4} support=4
	// {1, 2, 4} support=3
	// {0, 1, 2, 4} support=2
}

func ExampleResult_Closure() {
	ds := classicDataset()
	res, _ := closedrules.Mine(ds, closedrules.Options{MinSupport: 0.4})
	cl, _ := res.Closure(closedrules.Items(0)) // h({A})
	fmt.Println(cl.Items, cl.Support)
	// Output:
	// {0, 2} 3
}

func ExampleBases_Engine() {
	ds := classicDataset()
	res, _ := closedrules.Mine(ds, closedrules.Options{MinSupport: 0.4})
	bases, _ := res.Bases(0)
	eng, _ := bases.Engine()
	// Reconstruct the rule C → B,E from the bases alone.
	r, _ := eng.Rule(closedrules.Items(2), closedrules.Items(1, 4))
	fmt.Println(r)
	// Output:
	// {2} → {1, 4} (sup=3, conf=0.750)
}

func ExampleResult_DeriveAllRules() {
	ds := classicDataset()
	res, _ := closedrules.Mine(ds, closedrules.Options{MinSupport: 0.4})
	derived, _ := res.DeriveAllRules(0.5)
	measured, _ := res.AllRules(0.5)
	fmt.Println(len(derived) == len(measured), len(derived))
	// Output:
	// true 50
}

func ExampleReadDat() {
	ds, _ := closedrules.ReadDat(strings.NewReader("0 2 3\n1 2 4\n0 1 2 4\n1 4\n0 1 2 4\n"))
	fmt.Println(ds.NumTransactions(), ds.NumItems())
	// Output:
	// 5 5
}

func ExampleResult_PseudoClosedItemsets() {
	ds := classicDataset()
	res, _ := closedrules.Mine(ds, closedrules.Options{MinSupport: 0.4})
	ps, _ := res.PseudoClosedItemsets()
	for _, p := range ps {
		fmt.Println(p.Items)
	}
	// Output:
	// {0}
	// {1}
	// {4}
}
