package closedrules

import (
	"context"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"closedrules/internal/testgen"
)

// updateGolden rewrites the testdata/basis fixtures from the current
// implementation instead of comparing against them.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/basis golden files")

// namedClassic is the classic 5-object context with the paper's item
// names A–E.
func namedClassic(t *testing.T) *Dataset {
	t.Helper()
	named, err := classic(t).WithNames([]string{"A", "B", "C", "D", "E"})
	if err != nil {
		t.Fatal(err)
	}
	return named
}

func TestBasisProvenance(t *testing.T) {
	res, err := MineContext(context.Background(), classic(t), WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := res.Basis(context.Background(), "Luxenburger", WithMinConfidence(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Basis != "luxenburger" {
		t.Errorf("Basis = %q, want luxenburger", rs.Basis)
	}
	if rs.MinConfidence != 0.5 || !rs.Reduced {
		t.Errorf("thresholds = (%v, %v), want (0.5, true)", rs.MinConfidence, rs.Reduced)
	}
	if rs.Len() != len(rs.Rules) || rs.Len() == 0 {
		t.Errorf("Len = %d, |Rules| = %d", rs.Len(), len(rs.Rules))
	}
}

func TestBasisOptionErrors(t *testing.T) {
	res, err := MineContext(context.Background(), classic(t), WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := res.Basis(ctx, "luxenburger", WithMinConfidence(1.5)); err == nil {
		t.Error("WithMinConfidence(1.5) accepted")
	}
	// NaN passes every ordered comparison; the range check must still
	// reject it (it would otherwise poison filters and JSON encoding).
	if _, err := res.Basis(ctx, "luxenburger", WithMinConfidence(math.NaN())); err == nil {
		t.Error("WithMinConfidence(NaN) accepted")
	}
	if _, err := res.Bases(math.NaN()); err == nil {
		t.Error("Bases(NaN) accepted")
	}
	if _, err := res.Basis(ctx, "luxenburger", nil); err == nil {
		t.Error("nil BasisOption accepted")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := res.Basis(cancelled, "generic"); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestBasisGeneratorRequirement(t *testing.T) {
	// Charm does not track generators; the generator bases must refuse
	// with an error naming the requirement, the others must work.
	res, err := MineContext(context.Background(), classic(t),
		WithMinSupport(0.4), WithAlgorithm("charm"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, name := range []string{"generic", "informative"} {
		_, err := res.Basis(ctx, name)
		if err == nil {
			t.Errorf("basis %q accepted without generators", name)
			continue
		}
		if !strings.Contains(err.Error(), "generators") || !strings.Contains(err.Error(), "charm") {
			t.Errorf("basis %q error does not explain the requirement: %v", name, err)
		}
	}
	for _, name := range []string{"duquenne-guigues", "luxenburger"} {
		if _, err := res.Basis(ctx, name); err != nil {
			t.Errorf("basis %q on charm result: %v", name, err)
		}
	}
}

// TestBasisCacheBounded asserts the per-Result basis memoization is
// keyed by (basis, variant) only: a caller — e.g. an HTTP client
// sweeping /rules?basis=...&minconf= — requesting many distinct
// confidence thresholds must not grow the cache per threshold.
func TestBasisCacheBounded(t *testing.T) {
	res, err := MineContext(context.Background(), classic(t), WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i <= 100; i++ {
		c := float64(i) / 100
		if _, err := res.Basis(ctx, "luxenburger", WithMinConfidence(c)); err != nil {
			t.Fatal(err)
		}
	}
	entries := 0
	res.basisCache.Range(func(_, _ any) bool { entries++; return true })
	if entries != 1 {
		t.Errorf("basisCache has %d entries after a 101-threshold sweep of one basis, want 1", entries)
	}
}

// TestBasisEquivalenceClassic asserts byte-identical output between
// every deprecated basis method and its registry-era replacement on
// the paper's worked example.
func TestBasisEquivalenceClassic(t *testing.T) {
	d := namedClassic(t)
	res, err := MineContext(context.Background(), d, WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	assertBasisEquivalence(t, res, d)
}

// TestBasisEquivalenceRandom repeats the equivalence proof across
// random datasets, where empty bottoms and exact-rule edge cases show
// up that the classic example lacks.
func TestBasisEquivalenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for iter := 0; iter < 10; iter++ {
		d := testgen.Random(r, 25, 8, 0.45)
		res, err := MineContext(context.Background(), d, WithAbsoluteMinSupport(1+r.Intn(3)))
		if err != nil {
			t.Fatal(err)
		}
		assertBasisEquivalence(t, res, d)
	}
}

// assertBasisEquivalence checks that each legacy method and its
// Result.Basis replacement produce byte-identical rule lists.
func assertBasisEquivalence(t *testing.T, res *Result, d *Dataset) {
	t.Helper()
	ctx := context.Background()
	for _, minConf := range []float64{0, 0.5, 0.8} {
		legacy, err := res.Bases(minConf)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := res.Basis(ctx, "duquenne-guigues")
		if err != nil {
			t.Fatal(err)
		}
		assertSameRules(t, d, "Bases.Exact", legacy.Exact, exact.Rules)
		approx, err := res.Basis(ctx, "luxenburger", WithMinConfidence(minConf))
		if err != nil {
			t.Fatal(err)
		}
		assertSameRules(t, d, "Bases.Approximate", legacy.Approximate, approx.Rules)

		full, err := res.LuxenburgerFull(minConf)
		if err != nil {
			t.Fatal(err)
		}
		fullRS, err := res.Basis(ctx, "luxenburger", WithMinConfidence(minConf), WithReduction(false))
		if err != nil {
			t.Fatal(err)
		}
		assertSameRules(t, d, "LuxenburgerFull", full, fullRS.Rules)

		for _, reduced := range []bool{true, false} {
			ib, err := res.InformativeBasis(minConf, reduced)
			if err != nil {
				t.Fatal(err)
			}
			ibRS, err := res.Basis(ctx, "informative", WithMinConfidence(minConf), WithReduction(reduced))
			if err != nil {
				t.Fatal(err)
			}
			assertSameRules(t, d, "InformativeBasis", ib, ibRS.Rules)
		}
	}
	gb, err := res.GenericBasis()
	if err != nil {
		t.Fatal(err)
	}
	gbRS, err := res.Basis(ctx, "generic")
	if err != nil {
		t.Fatal(err)
	}
	assertSameRules(t, d, "GenericBasis", gb, gbRS.Rules)
}

// assertSameRules requires two rule lists to be deeply equal and to
// render byte-identically.
func assertSameRules(t *testing.T, d *Dataset, label string, legacy, registry []Rule) {
	t.Helper()
	if !reflect.DeepEqual(legacy, registry) {
		t.Errorf("%s: legacy and registry rules differ:\nlegacy:\n%sregistry:\n%s",
			label, FormatRules(legacy, d), FormatRules(registry, d))
		return
	}
	if FormatRules(legacy, d) != FormatRules(registry, d) {
		t.Errorf("%s: rendered output differs", label)
	}
}

// goldenBasisCases enumerates the golden-file fixtures: every built-in
// basis run on the paper's worked example at minConf 0.5, plus the
// full (unreduced) variants.
var goldenBasisCases = []struct {
	file string
	name string
	opts []BasisOption
}{
	{"duquenne-guigues.golden", "duquenne-guigues", nil},
	{"generic.golden", "generic", nil},
	{"luxenburger.golden", "luxenburger", []BasisOption{WithMinConfidence(0.5)}},
	{"luxenburger-full.golden", "luxenburger", []BasisOption{WithMinConfidence(0.5), WithReduction(false)}},
	{"informative.golden", "informative", []BasisOption{WithMinConfidence(0.5)}},
	{"informative-full.golden", "informative", []BasisOption{WithMinConfidence(0.5), WithReduction(false)}},
}

// TestBasisGoldenFiles pins the exact rule lists (antecedent,
// consequent, support, confidence) of every built-in basis on the
// paper's worked example. Regenerate with
// `go test -run TestBasisGoldenFiles -update-golden`.
func TestBasisGoldenFiles(t *testing.T) {
	d := namedClassic(t)
	res, err := MineContext(context.Background(), d, WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range goldenBasisCases {
		rs, err := res.Basis(context.Background(), tc.name, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		got := FormatRules(rs.Rules, d)
		path := filepath.Join("testdata", "basis", tc.file)
		if *updateGolden {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update-golden to create)", tc.file, err)
		}
		if got != string(want) {
			t.Errorf("%s: basis %v diverged from golden file:\ngot:\n%swant:\n%s",
				tc.file, tc.name, got, want)
		}
	}
}
