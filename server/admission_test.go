package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// getBody fetches a URL and returns its body, failing on any error.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d; body: %s", url, resp.StatusCode, buf.String())
	}
	return buf.String()
}

// postRecommend fires one POST /recommend and returns the status code;
// transport-level failures are reported as code 0 (a dropped response).
func postRecommend(ts string, body string) int {
	resp, err := http.Post(ts+"/recommend", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// TestAdmissionShedsUnderOverload is the overload contract, table-
// driven over gate sizes: 2× MaxInFlight simultaneous recommend calls
// must observe a mix of 200s and fast 429s, every request must get a
// response (zero 5xx, zero transport drops), admitted-request latency
// must stay bounded, and the in-flight gauges must return to zero
// once the burst drains. Batching with a long max-wait pins admitted
// requests in flight so the overload window is deterministic.
func TestAdmissionShedsUnderOverload(t *testing.T) {
	const holdTime = 150 * time.Millisecond
	for _, limit := range []int{2, 4, 8} {
		limit := limit
		t.Run(fmt.Sprintf("maxInFlight=%d", limit), func(t *testing.T) {
			s, ts := newTestServer(t, Config{
				MaxInFlight: limit,
				// A batch bigger than the burst + a long max-wait keeps
				// every admitted request holding its slot for holdTime.
				BatchSize:    4 * limit,
				BatchMaxWait: holdTime,
			})
			t.Cleanup(s.Close)

			clients := 2 * limit
			start := make(chan struct{})
			codes := make([]int, clients)
			lat := make([]time.Duration, clients)
			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					<-start
					began := time.Now()
					codes[i] = postRecommend(ts.URL, `{"observed":[1],"k":3}`)
					lat[i] = time.Since(began)
				}(i)
			}
			close(start)
			wg.Wait()

			var ok, shed int
			for i, code := range codes {
				switch code {
				case http.StatusOK:
					ok++
					if lat[i] > 5*time.Second {
						t.Errorf("admitted request %d took %v — latency not bounded", i, lat[i])
					}
				case http.StatusTooManyRequests:
					shed++
					// Shedding must be fast — that is its entire point.
					if lat[i] > holdTime {
						t.Errorf("shed request %d took %v, want well under %v", i, lat[i], holdTime)
					}
				default:
					t.Errorf("request %d got status %d, want 200 or 429 (0 means dropped)", i, code)
				}
			}
			if ok+shed != clients {
				t.Fatalf("%d responses accounted for, want %d — responses dropped", ok+shed, clients)
			}
			if ok < limit {
				t.Errorf("only %d requests admitted, want at least the gate size %d", ok, limit)
			}
			if shed == 0 {
				t.Error("no requests shed at 2x the in-flight limit")
			}

			// The gauges drain back to zero and the shed counter agrees
			// with what the clients observed.
			waitFor(t, 5*time.Second, func() bool { return s.limiters["recommend"].inFlight() == 0 })
			if got := s.limiters["recommend"].shedCount(); got != uint64(shed) {
				t.Errorf("shed counter = %d, clients saw %d", got, shed)
			}
		})
	}
}

// TestAdmissionRetryAfterAndHealthz pins the 429 wire contract
// (Retry-After header + JSON error body) and the healthz admission
// block: shed and in-flight counts surface per endpoint, and queue
// depths read zero after drain.
func TestAdmissionRetryAfterAndHealthz(t *testing.T) {
	const limit = 1
	s, ts := newTestServer(t, Config{
		MaxInFlight:  limit,
		BatchSize:    8,
		BatchMaxWait: 150 * time.Millisecond,
	})
	t.Cleanup(s.Close)

	// Occupy the single slot, then overflow it.
	occupied := make(chan int, 1)
	go func() { occupied <- postRecommend(ts.URL, `{"observed":[1],"k":3}`) }()
	waitFor(t, 5*time.Second, func() bool { return s.limiters["recommend"].inFlight() == 1 })

	resp, err := http.Post(ts.URL+"/recommend", "application/json", bytes.NewReader([]byte(`{"observed":[1],"k":3}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != retryAfterSeconds {
		t.Errorf("Retry-After = %q, want %q", got, retryAfterSeconds)
	}
	var e errorJSON
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("429 body = %+v, %v; want a JSON error", e, err)
	}
	if got := <-occupied; got != http.StatusOK {
		t.Fatalf("slot-holding request got %d, want 200", got)
	}

	waitFor(t, 5*time.Second, func() bool { return s.limiters["recommend"].inFlight() == 0 })
	var h healthJSON
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Admission == nil {
		t.Fatal("healthz has no admission block")
	}
	if h.Admission.MaxInFlight != limit {
		t.Errorf("healthz maxInFlight = %d, want %d", h.Admission.MaxInFlight, limit)
	}
	if h.Admission.Shed["recommend"] != 1 {
		t.Errorf("healthz shed[recommend] = %d, want 1", h.Admission.Shed["recommend"])
	}
	for e, n := range h.Admission.InFlight {
		if n != 0 {
			t.Errorf("healthz inFlight[%s] = %d after drain, want 0", e, n)
		}
	}
	if h.Batching == nil {
		t.Fatal("healthz has no batching block")
	} else if h.Batching.QueueDepth != 0 {
		t.Errorf("healthz batching queueDepth = %d after drain, want 0", h.Batching.QueueDepth)
	}

	// The Prometheus families agree.
	body := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`closedrules_http_shed_total{endpoint="recommend"} 1`,
		`closedrules_http_inflight{endpoint="recommend"} 0`,
		"closedrules_http_max_inflight 1",
		"closedrules_batch_queue_depth 0",
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestAdmissionDoesNotGateObservability pins that healthz and metrics
// stay reachable while every query slot is taken.
func TestAdmissionDoesNotGateObservability(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxInFlight:  1,
		BatchSize:    8,
		BatchMaxWait: 150 * time.Millisecond,
	})
	t.Cleanup(s.Close)
	done := make(chan int, 1)
	go func() { done <- postRecommend(ts.URL, `{"observed":[1],"k":3}`) }()
	waitFor(t, 5*time.Second, func() bool { return s.limiters["recommend"].inFlight() == 1 })
	var h healthJSON
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &h)
	if body := getBody(t, ts.URL+"/metrics"); body == "" {
		t.Error("metrics unreachable under full query gates")
	}
	if got := <-done; got != http.StatusOK {
		t.Fatalf("gated request got %d", got)
	}
}
