package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"closedrules"
)

func TestBasesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out basesJSON
	getJSON(t, ts.URL+"/bases", http.StatusOK, &out)
	for _, want := range []string{"duquenne-guigues", "generic", "informative", "luxenburger"} {
		found := false
		for _, n := range out.Registered {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registered = %v, missing %q", out.Registered, want)
		}
	}
	if out.Serving.Exact != "duquenne-guigues" || out.Serving.Approximate != "luxenburger" {
		t.Errorf("serving = %+v, want the default pair", out.Serving)
	}
	if out.MinConfidence != 0.5 {
		t.Errorf("minConfidence = %v, want 0.5", out.MinConfidence)
	}
}

func TestRulesBasisParam(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Every registered built-in basis is reachable by name; variants in
	// spelling resolve through the registry's canonicalization.
	for name, wantCount := range map[string]int{
		"duquenne-guigues": 3,
		"duquenneguigues":  3,
		"generic":          7,
		"luxenburger":      5,
		"informative":      7,
	} {
		var out basisRulesJSON
		getJSON(t, ts.URL+"/rules?basis="+name, http.StatusOK, &out)
		if out.Count != wantCount || len(out.Rules) != wantCount {
			t.Errorf("basis %q: count = %d (|rules| = %d), want %d", name, out.Count, len(out.Rules), wantCount)
		}
		if out.MinConfidence != 0.5 {
			t.Errorf("basis %q: minConfidence = %v, want the service default 0.5", name, out.MinConfidence)
		}
	}
}

func TestRulesBasisMinconfOverride(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out basisRulesJSON
	getJSON(t, ts.URL+"/rules?basis=luxenburger&minconf=0.7", http.StatusOK, &out)
	if out.Basis != "luxenburger" || out.MinConfidence != 0.7 {
		t.Errorf("provenance = (%q, %v), want (luxenburger, 0.7)", out.Basis, out.MinConfidence)
	}
	if out.Count != 3 {
		t.Errorf("count = %d, want 3 at conf ≥ 0.7", out.Count)
	}
	for _, r := range out.Rules {
		if r.Confidence < 0.7 {
			t.Errorf("rule %v below the requested threshold", r)
		}
	}
}

func TestRulesBasisErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Unknown names and malformed thresholds are client errors. NaN
	// parses as a float but must be rejected: it passes ordered range
	// comparisons and is unencodable as JSON.
	getJSON(t, ts.URL+"/rules?basis=bogus", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/rules?basis=luxenburger&minconf=2", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/rules?basis=luxenburger&minconf=abc", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/rules?basis=luxenburger&minconf=NaN", http.StatusBadRequest, nil)
}

func TestHealthzReportsServedBases(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out healthJSON
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &out)
	if out.Serving.Exact != "duquenne-guigues" || out.Serving.Approximate != "luxenburger" {
		t.Errorf("healthz serving = %+v, want the default pair", out.Serving)
	}
}

func TestServerWithExplicitBasisPair(t *testing.T) {
	res := mineClassic(t, 1)
	qs, err := closedrules.NewQueryServiceWithBases(res, 0.5,
		closedrules.BasisSelection{Exact: "generic", Approximate: "informative"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(qs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	var out basesJSON
	getJSON(t, ts.URL+"/bases", http.StatusOK, &out)
	if out.Serving.Exact != "generic" || out.Serving.Approximate != "informative" {
		t.Errorf("serving = %+v, want generic/informative", out.Serving)
	}
}
