package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"closedrules"
)

// echoFlush answers every request with a one-rule ranking derived
// from its k, so tests can tell answers apart without a real service.
func echoFlush(ctx context.Context, reqs []closedrules.RecommendRequest) ([]closedrules.RecommendBatchResult, int, error) {
	out := make([]closedrules.RecommendBatchResult, len(reqs))
	for i, req := range reqs {
		out[i].Rules = []closedrules.Rule{{Antecedent: req.Observed, Consequent: closedrules.Items(req.K), Support: req.K}}
	}
	return out, 42, nil
}

// doAsync runs Do in a goroutine and delivers its return values.
type doResult struct {
	rules []closedrules.Rule
	numTx int
	err   error
}

func doAsync(b *recommendBatcher, req closedrules.RecommendRequest) <-chan doResult {
	ch := make(chan doResult, 1)
	go func() {
		rules, numTx, err := b.Do(context.Background(), req)
		ch <- doResult{rules, numTx, err}
	}()
	return ch
}

func waitResult(t *testing.T, ch <-chan doResult, within time.Duration) doResult {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(within):
		t.Fatal("Do did not return in time")
		return doResult{}
	}
}

// TestBatcherFlushOnFull pins the batch-full trigger: with a maxWait
// far beyond the test deadline, only the size trigger can explain the
// flush.
func TestBatcherFlushOnFull(t *testing.T) {
	b := newRecommendBatcher(echoFlush, 3, time.Hour, 0)
	defer b.Stop()
	var chs []<-chan doResult
	for i := 1; i <= 3; i++ {
		chs = append(chs, doAsync(b, closedrules.RecommendRequest{Observed: closedrules.Items(0), K: i}))
	}
	for _, ch := range chs {
		r := waitResult(t, ch, 5*time.Second)
		if r.err != nil || r.numTx != 42 || len(r.rules) != 1 {
			t.Fatalf("batched Do = %v, %d, %v", r.rules, r.numTx, r.err)
		}
	}
	if got := b.stats.flushes.Load(); got != 1 {
		t.Errorf("flushes = %d, want 1", got)
	}
	if got := b.stats.items.Load(); got != 3 {
		t.Errorf("items = %d, want 3", got)
	}
}

// TestBatcherFlushOnMaxWait pins the max-wait trigger and the
// per-item wait accounting: a lone item in a size-100 batch must be
// answered after roughly maxWait, and its measured queue wait must
// reflect that.
func TestBatcherFlushOnMaxWait(t *testing.T) {
	const maxWait = 30 * time.Millisecond
	b := newRecommendBatcher(echoFlush, 100, maxWait, 0)
	defer b.Stop()
	start := time.Now()
	r := waitResult(t, doAsync(b, closedrules.RecommendRequest{Observed: closedrules.Items(1), K: 7}), 5*time.Second)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if elapsed := time.Since(start); elapsed < maxWait/2 {
		t.Errorf("lone item answered after %v, want ≈%v (max-wait flush)", elapsed, maxWait)
	}
	// Per-item timing propagated into the batcher's wait accounting.
	if wait := time.Duration(b.stats.queueWaitNanos.Load()); wait < maxWait/2 {
		t.Errorf("recorded queue wait %v, want ≈%v", wait, maxWait)
	}
	if got := b.stats.flushes.Load(); got != 1 {
		t.Errorf("flushes = %d, want 1", got)
	}
}

// TestBatcherCoalescesDuplicates pins in-batch deduplication: two
// identical requests in one flush are answered by one lookup, and the
// fanned-out slices are independent.
func TestBatcherCoalescesDuplicates(t *testing.T) {
	var mu sync.Mutex
	var flushedReqs int
	fn := func(ctx context.Context, reqs []closedrules.RecommendRequest) ([]closedrules.RecommendBatchResult, int, error) {
		mu.Lock()
		flushedReqs += len(reqs)
		mu.Unlock()
		return echoFlush(ctx, reqs)
	}
	b := newRecommendBatcher(fn, 2, time.Hour, 0)
	defer b.Stop()
	req := closedrules.RecommendRequest{Observed: closedrules.Items(3), K: 5}
	ch1, ch2 := doAsync(b, req), doAsync(b, req)
	r1 := waitResult(t, ch1, 5*time.Second)
	r2 := waitResult(t, ch2, 5*time.Second)
	if r1.err != nil || r2.err != nil {
		t.Fatalf("errs = %v, %v", r1.err, r2.err)
	}
	mu.Lock()
	if flushedReqs != 1 {
		t.Errorf("flush saw %d unique requests, want 1", flushedReqs)
	}
	mu.Unlock()
	if got := b.stats.coalesced.Load(); got != 1 {
		t.Errorf("coalesced = %d, want 1", got)
	}
	// Fan-outs must not share a mutable slice.
	r1.rules[0] = closedrules.Rule{}
	if r2.rules[0].Support != 5 {
		t.Error("coalesced callers share a rules slice")
	}
}

// TestBatcherShutdownDrainFlushes pins the shutdown-drain trigger:
// Stop lands while a partial batch is waiting on its timer, and that
// batch is flushed with real answers, not errors.
func TestBatcherShutdownDrainFlushes(t *testing.T) {
	b := newRecommendBatcher(echoFlush, 10, time.Hour, 0)
	ch := doAsync(b, closedrules.RecommendRequest{Observed: closedrules.Items(2), K: 9})
	// Wait until the item is in the collector's partial batch, so Stop
	// deterministically exercises the shutdown-drain flush.
	waitFor(t, time.Second, func() bool { return b.stats.filling.Load() == 1 })
	done := make(chan struct{})
	go func() { b.Stop(); close(done) }()
	r := waitResult(t, ch, 5*time.Second)
	if r.err != nil || len(r.rules) != 1 {
		t.Fatalf("drained item = %v, %v; want a real answer", r.rules, r.err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return")
	}
}

// TestBatcherStopErrorsQueuedItems pins the Stop-mid-batch contract:
// items queued behind a batch that is mid-flush when Stop lands are
// errored with errBatcherStopped — answered, not leaked — and new
// submissions after Stop fail fast.
func TestBatcherStopErrorsQueuedItems(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	fn := func(ctx context.Context, reqs []closedrules.RecommendRequest) ([]closedrules.RecommendBatchResult, int, error) {
		once.Do(func() { close(entered) })
		<-release
		return echoFlush(ctx, reqs)
	}
	b := newRecommendBatcher(fn, 1, time.Hour, 0)

	chA := doAsync(b, closedrules.RecommendRequest{Observed: closedrules.Items(0), K: 1})
	<-entered // batch [A] is now mid-flush and the collector is busy
	chB := doAsync(b, closedrules.RecommendRequest{Observed: closedrules.Items(0), K: 2})
	chC := doAsync(b, closedrules.RecommendRequest{Observed: closedrules.Items(0), K: 3})
	// B and C are accepted into the queue, not yet collected.
	waitFor(t, time.Second, func() bool { return b.queueDepth() == 2 })

	stopDone := make(chan struct{})
	go func() { b.Stop(); close(stopDone) }()
	// Stop flips stopped before waiting for the collector, so new
	// submissions fail fast even while the flush is still blocked.
	waitFor(t, time.Second, func() bool {
		b.mu.RLock()
		defer b.mu.RUnlock()
		return b.stopped
	})
	if _, _, err := b.Do(context.Background(), closedrules.RecommendRequest{Observed: closedrules.Items(0), K: 4}); !errors.Is(err, errBatcherStopped) {
		t.Fatalf("Do after Stop = %v, want errBatcherStopped", err)
	}

	close(release) // let the in-flight flush finish
	if r := waitResult(t, chA, 5*time.Second); r.err != nil {
		t.Fatalf("mid-flush item errored: %v", r.err)
	}
	for _, ch := range []<-chan doResult{chB, chC} {
		if r := waitResult(t, ch, 5*time.Second); !errors.Is(r.err, errBatcherStopped) {
			t.Fatalf("queued item = %v, %v; want errBatcherStopped", r.rules, r.err)
		}
	}
	select {
	case <-stopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return — collector goroutine leaked")
	}
	if got := b.stats.stopErrors.Load(); got != 2 {
		t.Errorf("stopErrors = %d, want 2", got)
	}
}

// TestBatcherDoHonorsContext pins that a caller's context bounds its
// wait: the flush may continue for the rest of the batch, but the
// cancelled caller returns immediately.
func TestBatcherDoHonorsContext(t *testing.T) {
	release := make(chan struct{})
	fn := func(ctx context.Context, reqs []closedrules.RecommendRequest) ([]closedrules.RecommendBatchResult, int, error) {
		<-release
		return echoFlush(ctx, reqs)
	}
	b := newRecommendBatcher(fn, 1, time.Hour, 0)
	// Unblock the flush BEFORE Stop waits on the collector (cleanups
	// run LIFO), or Stop would deadlock against its own flush.
	t.Cleanup(b.Stop)
	t.Cleanup(func() { close(release) })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := b.Do(ctx, closedrules.RecommendRequest{Observed: closedrules.Items(0), K: 1}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v, want DeadlineExceeded", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, within time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	if !cond() {
		t.Fatal("condition never held")
	}
}
