// Package server exposes a closedrules.QueryService over HTTP/JSON —
// the network serving layer of the library. The condensed
// representation the paper mines (frequent closed itemsets plus the
// Duquenne–Guigues and Luxenburger bases) is small enough to hold in
// memory and answer from at network speed; this package puts an HTTP
// front end on that idea.
//
// Endpoints:
//
//	GET  /support?items=1,2            supp(X) from the closed itemsets
//	GET  /confidence?antecedent=2&consequent=0
//	GET  /rules?antecedent=2&consequent=0   the fully measured rule
//	GET  /rules?basis=luxenburger[&minconf=0.5]  a full basis by registry name
//	POST /recommend                    {"observed":[1],"k":3} → ranked rules
//	GET  /bases                        registered bases + the served pair
//	GET  /healthz                      liveness + serving snapshot summary
//	GET  /metrics                      Prometheus text format
//	POST /admin/reload                 re-mine and Swap (Config.Refresher or Config.Reload)
//
// When Config.Refresher is set (see the refresh package), the server
// becomes the observation surface of a continuously self-updating
// service: /healthz and /metrics report the refresher's cycle
// counters and POST /admin/reload runs one forced refresh cycle,
// sharing the background loop's single-flight guard (a concurrent
// cycle answers 409).
//
// Queries run under a per-request deadline (Config.RequestTimeout)
// wired into the library's context plumbing; a deadline that expires
// surfaces as 503, a client disconnect as 499. Unparseable parameters
// are 400, underivable queries (e.g. a rule over an infrequent
// itemset) are 422. Shutdown is graceful: cancel the context passed
// to Serve or ListenAndServe and in-flight requests get
// Config.ShutdownGrace to finish.
//
// Two serving hot-path controls harden the server under heavy
// traffic. Admission control (Config.MaxInFlight) puts a fixed pool
// of in-flight slots in front of every query endpoint: a request
// over the cap is shed immediately with 429 Too Many Requests and a
// Retry-After hint instead of queueing into collapse, and the shed
// and in-flight counts surface in /metrics and /healthz. Request
// coalescing (Config.BatchSize, Config.BatchMaxWait) batches
// concurrent POST /recommend calls into single snapshot reads —
// identical baskets in a batch share one lookup — which is exactly
// the access pattern the paper's condensed representation makes
// cheap. cmd/benchhttp load-tests both knobs and tracks the results
// in BENCH_serving.json.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"closedrules"
	"closedrules/internal/tenant"
	"closedrules/refresh"
)

// Default configuration values applied by Config.validate.
const (
	DefaultRequestTimeout = 5 * time.Second
	DefaultShutdownGrace  = 5 * time.Second
	DefaultMaxRecommend   = 100
	// DefaultMaxTenants caps registered datasets in multi-tenant mode.
	DefaultMaxTenants = 64
	// DefaultTenantMemoryBudget bounds the summed resident-bytes
	// estimate of materialized tenants (256 MiB).
	DefaultTenantMemoryBudget = 256 << 20
	// DefaultMineWorkers runs async mine jobs.
	DefaultMineWorkers = 2
)

// maxBodyBytes bounds request bodies; recommend observations are tiny.
const maxBodyBytes = 1 << 20

// ReloadFunc produces a freshly mined Result for the hot-reload path
// (POST /admin/reload). It must honor the context's deadline; the
// server Swaps the result in on success.
type ReloadFunc func(ctx context.Context) (*closedrules.Result, error)

// Config tunes a Server. The zero value is usable: every field has a
// default applied by New, and a nil Reload simply disables the
// /admin/reload endpoint (it answers 501).
type Config struct {
	// RequestTimeout is the per-query deadline. 0 means
	// DefaultRequestTimeout; negative disables the deadline.
	RequestTimeout time.Duration
	// ReloadTimeout is the deadline for a Reload call. 0 means no
	// deadline (mining time is workload-dependent).
	ReloadTimeout time.Duration
	// ShutdownGrace is how long in-flight requests may finish after
	// the serve context is cancelled. 0 means DefaultShutdownGrace.
	ShutdownGrace time.Duration
	// MaxRecommend caps the k of a recommend request; larger values
	// are clamped. 0 means DefaultMaxRecommend.
	MaxRecommend int
	// Reload, when set, enables POST /admin/reload: it is called to
	// re-mine and the result is hot-swapped into the service. Ignored
	// when Refresher is set.
	Reload ReloadFunc
	// Refresher, when set, takes over the data-freshness surface:
	// POST /admin/reload delegates to Refresher.Refresh (the same
	// cycle logic the background poll loop runs, so manual and
	// automatic reloads share single-flight and stats), and /healthz
	// and /metrics expose the refresher's cycle counters. The server
	// does not Start or Stop the refresher — its lifecycle belongs to
	// the caller (see cmd/arserve).
	Refresher *refresh.Refresher
	// MaxInFlight caps concurrently executing requests per query
	// endpoint (support, confidence, rules, recommend — each gets its
	// own gate, so a rules storm cannot starve recommend). A request
	// over the cap is shed immediately with 429 + Retry-After instead
	// of queued into collapse; sheds surface in /metrics
	// (closedrules_http_shed_total) and /healthz. 0 disables
	// admission control. Observability endpoints are never gated.
	MaxInFlight int
	// BatchSize enables recommend batching: concurrent POST
	// /recommend calls are coalesced by a collector goroutine into
	// single snapshot reads, flushed when BatchSize items are waiting
	// or the oldest has waited BatchMaxWait. Identical (observed, k)
	// requests in a flush share one lookup. 0 serves each request
	// individually.
	BatchSize int
	// BatchMaxWait bounds how long an under-filled batch may hold its
	// first request. 0 means DefaultBatchMaxWait. Only meaningful
	// with BatchSize > 0.
	BatchMaxWait time.Duration
	// MultiTenant turns the server into a mining service: the dataset
	// registry routes (POST/GET /datasets, DELETE /datasets/{id}),
	// async mine jobs (POST /datasets/{id}/mine, GET /jobs/{id}) and
	// per-tenant query routes (/datasets/{id}/support|confidence|
	// rules|bases, POST /datasets/{id}/recommend) are mounted, backed
	// by a tenant pool with LRU eviction under TenantMemoryBudget. The
	// legacy single-dataset routes stay up, served by a pinned
	// "default" tenant wrapping the qs passed to New.
	MultiTenant bool
	// MaxTenants caps registered datasets in multi-tenant mode. 0
	// means DefaultMaxTenants; negative is a validation error.
	MaxTenants int
	// TenantMemoryBudget bounds the summed MemoryEstimate of resident
	// tenant services, in bytes; least-recently-queried tenants are
	// evicted past it and transparently re-mined on their next query.
	// 0 means DefaultTenantMemoryBudget; negative is a validation
	// error.
	TenantMemoryBudget int64
	// MineWorkers is the async mine job worker count. 0 means
	// DefaultMineWorkers; negative is a validation error.
	MineWorkers int
	// MineTimeout bounds one tenant materialization or mine job. 0
	// means no deadline; negative is a validation error.
	MineTimeout time.Duration
	// TenantDataDir, when set, allows POST /datasets registrations by
	// server-side "path": paths are resolved inside this directory
	// (symlinks cannot tunnel out) and anything else is rejected.
	// Empty — the default — disables path registrations entirely, so an
	// untrusted HTTP client can never point the miner at arbitrary
	// server-readable files. validate requires an existing directory
	// and stores the absolute form.
	TenantDataDir string
}

// validate applies defaults and rejects configurations no server
// should run with. New calls it; the explicit errors (rather than
// silent clamping) are what let arserve report a bad flag instead of
// starting with a surprise value. Tenant knobs are validated even
// when MultiTenant is off, so a negative budget cannot hide behind a
// disabled mode flag.
func (c *Config) validate() error {
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.ShutdownGrace < 0 {
		return fmt.Errorf("server: negative ShutdownGrace %v", c.ShutdownGrace)
	}
	if c.ShutdownGrace == 0 {
		c.ShutdownGrace = DefaultShutdownGrace
	}
	if c.ReloadTimeout < 0 {
		return fmt.Errorf("server: negative ReloadTimeout %v", c.ReloadTimeout)
	}
	if c.MaxRecommend < 0 {
		return fmt.Errorf("server: negative MaxRecommend %d", c.MaxRecommend)
	}
	if c.MaxRecommend == 0 {
		c.MaxRecommend = DefaultMaxRecommend
	}
	if c.MaxInFlight < 0 {
		return fmt.Errorf("server: negative MaxInFlight %d", c.MaxInFlight)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("server: negative BatchSize %d", c.BatchSize)
	}
	if c.BatchMaxWait < 0 {
		return fmt.Errorf("server: negative BatchMaxWait %v", c.BatchMaxWait)
	}
	if c.MaxTenants < 0 {
		return fmt.Errorf("server: negative MaxTenants %d", c.MaxTenants)
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = DefaultMaxTenants
	}
	if c.TenantMemoryBudget < 0 {
		return fmt.Errorf("server: negative TenantMemoryBudget %d", c.TenantMemoryBudget)
	}
	if c.TenantMemoryBudget == 0 {
		c.TenantMemoryBudget = DefaultTenantMemoryBudget
	}
	if c.MineWorkers < 0 {
		return fmt.Errorf("server: negative MineWorkers %d", c.MineWorkers)
	}
	if c.MineWorkers == 0 {
		c.MineWorkers = DefaultMineWorkers
	}
	if c.MineTimeout < 0 {
		return fmt.Errorf("server: negative MineTimeout %v", c.MineTimeout)
	}
	if c.TenantDataDir != "" {
		abs, err := filepath.Abs(c.TenantDataDir)
		if err != nil {
			return fmt.Errorf("server: TenantDataDir: %w", err)
		}
		fi, err := os.Stat(abs)
		if err != nil {
			return fmt.Errorf("server: TenantDataDir: %w", err)
		}
		if !fi.IsDir() {
			return fmt.Errorf("server: TenantDataDir %s is not a directory", abs)
		}
		c.TenantDataDir = abs
	}
	return nil
}

// Server serves a QueryService over HTTP. Create one with New; it is
// safe for concurrent use and a single instance handles all traffic.
// A Server with batching enabled owns a collector goroutine: Serve
// and ListenAndServe release it on shutdown, while Handler-only users
// (tests mounting the mux) should call Close themselves.
type Server struct {
	qs        *closedrules.QueryService
	cfg       Config
	metrics   *metricsRegistry
	pool      *tenant.Pool   // nil unless Config.MultiTenant
	tmetrics  *tenantMetrics // nil unless Config.MultiTenant
	handler   http.Handler
	reloadMu  sync.Mutex
	limiters  map[string]*limiter // per-endpoint admission gates (nil entries when disabled)
	batcher   *recommendBatcher   // nil when batching is disabled
	closeOnce sync.Once
}

// endpointNames are the metric label values, in exposition order.
// datasets and jobs only receive traffic in multi-tenant mode; their
// series sit at zero otherwise.
var endpointNames = []string{
	"support", "confidence", "rules", "recommend", "bases", "healthz", "metrics", "reload",
	"datasets", "jobs",
}

// queryEndpoints are the endpoints admission control gates; the
// observability and admin endpoints stay reachable under overload.
// Tenant query routes share these gates under the same endpoint name,
// so the cap bounds total load per verb across all tenants.
var queryEndpoints = []string{"support", "confidence", "rules", "recommend"}

// New builds a Server around the service, validating and defaulting
// the Config (see Config.validate). With Config.MultiTenant the qs
// becomes the pinned "default" tenant of a tenant pool and the
// /datasets and /jobs route families are mounted alongside the legacy
// single-dataset routes.
func New(qs *closedrules.QueryService, cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Server{qs: qs, cfg: cfg, metrics: newMetricsRegistry(endpointNames)}
	s.limiters = make(map[string]*limiter, len(queryEndpoints))
	if cfg.MaxInFlight > 0 {
		for _, e := range queryEndpoints {
			s.limiters[e] = newLimiter(cfg.MaxInFlight)
		}
	}
	if cfg.BatchSize > 0 {
		// The flush deadline mirrors the per-request deadline: a batch
		// is one request's worth of work shared by many.
		flushTimeout := cfg.RequestTimeout
		if flushTimeout < 0 {
			flushTimeout = 0
		}
		s.batcher = newRecommendBatcher(qs.RecommendBatch, cfg.BatchSize, cfg.BatchMaxWait, flushTimeout)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /support", s.instrument("support", s.admit(s.limiters["support"], s.handleSupport)))
	mux.HandleFunc("GET /confidence", s.instrument("confidence", s.admit(s.limiters["confidence"], s.handleConfidence)))
	mux.HandleFunc("GET /rules", s.instrument("rules", s.admit(s.limiters["rules"], s.handleRules)))
	mux.HandleFunc("POST /recommend", s.instrument("recommend", s.admit(s.limiters["recommend"], s.handleRecommend)))
	mux.HandleFunc("GET /bases", s.instrument("bases", s.handleBases))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("POST /admin/reload", s.instrument("reload", s.handleReload))
	if cfg.MultiTenant {
		pool, err := tenant.NewPool(tenant.Config{
			MaxTenants:   cfg.MaxTenants,
			MemoryBudget: cfg.TenantMemoryBudget,
			MineWorkers:  cfg.MineWorkers,
			MineTimeout:  cfg.MineTimeout,
		})
		if err != nil {
			return nil, err
		}
		// The qs handed to New becomes the pinned default tenant: the
		// legacy routes and /datasets/default serve the same snapshots,
		// and being pinned it is never evicted or deletable.
		if _, err := pool.Register(tenant.Spec{
			ID:      DefaultTenantID,
			Pinned:  true,
			Service: qs,
			Params:  tenant.Params{MinConfidence: qs.MinConfidence()},
		}); err != nil {
			pool.Close()
			return nil, err
		}
		s.pool = pool
		s.tmetrics = newTenantMetrics()
		s.registerTenantRoutes(mux)
	}
	s.handler = mux
	return s, nil
}

// Close releases the server's background resources: the recommend
// batcher's collector goroutine (queued recommend calls are errored
// with 503 rather than left hanging) and, in multi-tenant mode, the
// tenant pool's mine workers and per-tenant refreshers. Serve and
// ListenAndServe call it on the way out; Handler-only users should
// call it when done. Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.batcher != nil {
			s.batcher.Stop()
		}
		if s.pool != nil {
			s.pool.Close()
		}
	})
}

// Handler returns the server's routing handler, for mounting under a
// larger mux or an httptest server.
func (s *Server) Handler() http.Handler { return s.handler }

// Service returns the underlying QueryService.
func (s *Server) Service() *closedrules.QueryService { return s.qs }

// ListenAndServe listens on addr and serves until the context is
// cancelled, then shuts down gracefully.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve serves on the listener until the context is cancelled, then
// shuts down gracefully: in-flight requests get ShutdownGrace to
// finish. A nil error means a clean shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	defer s.Close()
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		err := srv.Shutdown(shutdownCtx)
		<-errc // always http.ErrServerClosed once Shutdown has begun
		return err
	}
}

// instrument wraps a handler with per-endpoint request, error and
// latency accounting.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.observe(name, rec.code, time.Since(start))
	}
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// queryCtx derives the per-request query deadline.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout < 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorJSON{Error: msg})
}

// statusClientClosedRequest is the nginx-conventional status for a
// request whose client went away before the response; it keeps client
// cancellations out of the 5xx rate an operator alerts on.
const statusClientClosedRequest = 499

// writeQueryError maps a QueryService error onto a status: an expired
// deadline is 503 (the server ran out of its per-request budget), a
// cancelled context is 499 (the client disconnected — nobody reads
// the response, but metrics attribute it correctly), anything else is
// 422 (the query is well-formed but not derivable from the served
// representation).
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		writeError(w, statusClientClosedRequest, "client closed request")
	case errors.Is(err, errBatcherStopped):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
	default:
		writeError(w, http.StatusUnprocessableEntity, err.Error())
	}
}

// parseItems parses a comma-separated list of non-negative item ids
// ("1,2,4") into an Itemset.
func parseItems(s string) (closedrules.Itemset, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty itemset")
	}
	parts := strings.Split(s, ",")
	items := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad item %q: want a non-negative integer", p)
		}
		items = append(items, n)
	}
	return closedrules.Items(items...), nil
}

// itemsParam reads and parses a required itemset query parameter,
// answering 400 itself when the parameter is missing or malformed.
func itemsParam(w http.ResponseWriter, r *http.Request, name string) (closedrules.Itemset, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing ?"+name+"= parameter")
		return nil, false
	}
	items, err := parseItems(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, name+": "+err.Error())
		return nil, false
	}
	return items, true
}

// ruleJSON is the wire form of a measured rule, matching the
// closedrules JSON rule format plus a derived lift.
type ruleJSON struct {
	Antecedent        []int   `json:"antecedent"`
	Consequent        []int   `json:"consequent"`
	Support           int     `json:"support"`
	AntecedentSupport int     `json:"antecedentSupport"`
	ConsequentSupport int     `json:"consequentSupport,omitempty"`
	Confidence        float64 `json:"confidence"`
	Lift              float64 `json:"lift,omitempty"`
}

// ruleToJSON renders a rule with its derived lift. numTx must be the
// transaction count of the snapshot that measured the rule (the *WithN
// query variants report it), not a separate NumTransactions read —
// a hot reload between the two would skew the lift.
func ruleToJSON(r closedrules.Rule, numTx int) ruleJSON {
	out := ruleJSON{
		Antecedent:        append([]int{}, r.Antecedent...),
		Consequent:        append([]int{}, r.Consequent...),
		Support:           r.Support,
		AntecedentSupport: r.AntecedentSupport,
		ConsequentSupport: r.ConsequentSupport,
		Confidence:        r.Confidence(),
	}
	if m, err := closedrules.RuleMetrics(r, numTx); err == nil {
		out.Lift = m.Lift
	}
	return out
}

type supportJSON struct {
	Items    []int `json:"items"`
	Support  int   `json:"support"`
	Frequent bool  `json:"frequent"`
}

func (s *Server) handleSupport(w http.ResponseWriter, r *http.Request) {
	s.serveSupport(s.qs, w, r)
}

// serveSupport is the qs-parametric core shared by the legacy route
// and /datasets/{id}/support.
func (s *Server) serveSupport(qs *closedrules.QueryService, w http.ResponseWriter, r *http.Request) {
	items, ok := itemsParam(w, r, "items")
	if !ok {
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	sup, frequent, err := qs.Support(ctx, items)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, supportJSON{Items: append([]int{}, items...), Support: sup, Frequent: frequent})
}

type confidenceJSON struct {
	Antecedent []int   `json:"antecedent"`
	Consequent []int   `json:"consequent"`
	Confidence float64 `json:"confidence"`
}

func (s *Server) handleConfidence(w http.ResponseWriter, r *http.Request) {
	s.serveConfidence(s.qs, w, r)
}

func (s *Server) serveConfidence(qs *closedrules.QueryService, w http.ResponseWriter, r *http.Request) {
	ant, ok := itemsParam(w, r, "antecedent")
	if !ok {
		return
	}
	cons, ok := itemsParam(w, r, "consequent")
	if !ok {
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	conf, err := qs.Confidence(ctx, ant, cons)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, confidenceJSON{
		Antecedent: append([]int{}, ant...),
		Consequent: append([]int{}, cons...),
		Confidence: conf,
	})
}

// basisRulesJSON is the wire form of a full basis listing.
type basisRulesJSON struct {
	Basis         string     `json:"basis"`
	MinConfidence float64    `json:"minConfidence"`
	Count         int        `json:"count"`
	Rules         []ruleJSON `json:"rules"`
}

// serveBasisRules answers /rules?basis=NAME[&minconf=C]: the complete
// rule list of the named basis, built from the served snapshot.
// minconf defaults to the service's confidence threshold.
func (s *Server) serveBasisRules(qs *closedrules.QueryService, w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("basis")
	if _, err := closedrules.LookupBasis(name); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	minConf := qs.MinConfidence()
	if raw := r.URL.Query().Get("minconf"); raw != "" {
		c, err := strconv.ParseFloat(raw, 64)
		// The negated-AND form also rejects NaN ("minconf=NaN" parses
		// without error but passes every ordered comparison).
		if err != nil || !(c >= 0 && c <= 1) {
			writeError(w, http.StatusBadRequest, "minconf: want a number in [0,1]")
			return
		}
		minConf = c
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	rs, numTx, err := qs.BasisRulesWithN(ctx, name, minConf)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	out := basisRulesJSON{
		Basis:         rs.Basis,
		MinConfidence: rs.MinConfidence,
		Count:         rs.Len(),
		Rules:         make([]ruleJSON, rs.Len()),
	}
	for i, rule := range rs.Rules {
		out.Rules[i] = ruleToJSON(rule, numTx)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	s.serveRules(s.qs, w, r)
}

func (s *Server) serveRules(qs *closedrules.QueryService, w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Has("basis") {
		s.serveBasisRules(qs, w, r)
		return
	}
	ant, ok := itemsParam(w, r, "antecedent")
	if !ok {
		return
	}
	cons, ok := itemsParam(w, r, "consequent")
	if !ok {
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	rule, numTx, err := qs.RuleWithN(ctx, ant, cons)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ruleToJSON(rule, numTx))
}

type recommendRequest struct {
	Observed []int `json:"observed"`
	K        int   `json:"k"`
}

type recommendJSON struct {
	Observed []int      `json:"observed"`
	K        int        `json:"k"`
	Rules    []ruleJSON `json:"rules"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	s.serveRecommend(s.qs, true, w, r)
}

// serveRecommend is the recommend core. useBatcher routes the call
// through the coalescing batcher when one is configured; only the
// legacy route sets it — the batcher is bound to the default
// service's RecommendBatch, so tenant routes always query their own
// service directly.
func (s *Server) serveRecommend(qs *closedrules.QueryService, useBatcher bool, w http.ResponseWriter, r *http.Request) {
	var req recommendRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	for _, it := range req.Observed {
		if it < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad item %d: want a non-negative integer", it))
			return
		}
	}
	if req.K < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad k %d: want a positive integer", req.K))
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k > s.cfg.MaxRecommend {
		k = s.cfg.MaxRecommend
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	var (
		recs  []closedrules.Rule
		numTx int
		err   error
	)
	if useBatcher && s.batcher != nil {
		recs, numTx, err = s.batcher.Do(ctx, closedrules.RecommendRequest{Observed: closedrules.Items(req.Observed...), K: k})
	} else {
		recs, numTx, err = qs.RecommendWithN(ctx, closedrules.Items(req.Observed...), k)
	}
	if err != nil {
		writeQueryError(w, err)
		return
	}
	out := recommendJSON{Observed: req.Observed, K: k, Rules: make([]ruleJSON, len(recs))}
	for i, rec := range recs {
		out.Rules[i] = ruleToJSON(rec, numTx)
	}
	writeJSON(w, http.StatusOK, out)
}

// servingJSON names the basis pair the snapshot serves queries from.
type servingJSON struct {
	Exact       string `json:"exact,omitempty"`
	Approximate string `json:"approximate"`
}

// basesJSON is the wire form of GET /bases: what is registered and
// what this service is serving.
type basesJSON struct {
	Registered    []string    `json:"registered"`
	Serving       servingJSON `json:"serving"`
	MinConfidence float64     `json:"minConfidence"`
}

// handleBases answers GET /bases with the registered basis names and
// the pair the current snapshot serves Recommend from.
func (s *Server) handleBases(w http.ResponseWriter, r *http.Request) {
	s.serveBases(s.qs, w, r)
}

func (s *Server) serveBases(qs *closedrules.QueryService, w http.ResponseWriter, r *http.Request) {
	served := qs.ServedBases()
	writeJSON(w, http.StatusOK, basesJSON{
		Registered:    closedrules.Bases(),
		Serving:       servingJSON{Exact: served.Exact, Approximate: served.Approximate},
		MinConfidence: qs.MinConfidence(),
	})
}

type healthJSON struct {
	Status        string         `json:"status"`
	Transactions  int            `json:"transactions"`
	BasisRules    int            `json:"basisRules"`
	Serving       servingJSON    `json:"serving"`
	MinConfidence float64        `json:"minConfidence"`
	Swaps         uint64         `json:"swaps"`
	Cache         cacheJSON      `json:"cache"`
	Admission     *admissionJSON `json:"admission,omitempty"`
	Batching      *batchingJSON  `json:"batching,omitempty"`
	Refresh       *refreshJSON   `json:"refresh,omitempty"`
	Tenants       *tenantsJSON   `json:"tenants,omitempty"`
}

// tenantsJSON is the healthz view of the tenant pool; present only in
// multi-tenant mode.
type tenantsJSON struct {
	Registered  int          `json:"registered"`
	Resident    int          `json:"resident"`
	MaxTenants  int          `json:"maxTenants"`
	BudgetBytes int64        `json:"budgetBytes"`
	PoolBytes   int64        `json:"poolBytes"`
	Evictions   uint64       `json:"evictions"`
	Mines       uint64       `json:"mines"`
	Jobs        jobStatsJSON `json:"jobs"`
}

type jobStatsJSON struct {
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Done    uint64 `json:"done"`
	Failed  uint64 `json:"failed"`
}

// cacheJSON is the healthz view of the recommendation cache serving
// the CURRENT snapshot: the hit/miss pair resets at every Swap, so
// HitRatio describes how warm the cache answering requests right now
// actually is instead of conflating every snapshot since boot.
type cacheJSON struct {
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRatio float64 `json:"hitRatio"`
	Entries  int     `json:"entries"`
}

// admissionJSON is the healthz view of the per-endpoint admission
// gates; present only when Config.MaxInFlight is set.
type admissionJSON struct {
	MaxInFlight int               `json:"maxInFlight"`
	InFlight    map[string]int    `json:"inFlight"`
	Shed        map[string]uint64 `json:"shed"`
}

// batchingJSON is the healthz view of the recommend batcher; present
// only when Config.BatchSize is set.
type batchingJSON struct {
	BatchSize  int     `json:"batchSize"`
	MaxWaitMs  float64 `json:"maxWaitMs"`
	Flushes    uint64  `json:"flushes"`
	Items      uint64  `json:"items"`
	Coalesced  uint64  `json:"coalesced"`
	QueueDepth int     `json:"queueDepth"`
}

// refreshJSON is the healthz view of the background refresher's cycle
// counters; present only when a Refresher is configured.
type refreshJSON struct {
	Running             bool   `json:"running"`
	Cycles              uint64 `json:"cycles"`
	Successes           uint64 `json:"successes"`
	Skips               uint64 `json:"skips"`
	Failures            uint64 `json:"failures"`
	ConsecutiveFailures int    `json:"consecutiveFailures"`
	LastError           string `json:"lastError,omitempty"`
	LastSwap            string `json:"lastSwap,omitempty"`
	LastMineMs          int64  `json:"lastMineMs"`
	// Incremental-path counters: successful delta applications (a
	// subset of successes), cycles that fell back to a full re-mine,
	// total appended transactions applied, and the lattice-update
	// duration of the last incremental cycle.
	IncrementalSuccesses uint64 `json:"incrementalSuccesses"`
	IncrementalFallbacks uint64 `json:"incrementalFallbacks"`
	DeltaTransactions    uint64 `json:"deltaTransactions"`
	LastIncrementalMs    int64  `json:"lastIncrementalMs"`
}

// refreshStats snapshots the configured refresher's counters, or nil.
func (s *Server) refreshStats() *refresh.Stats {
	if s.cfg.Refresher == nil {
		return nil
	}
	st := s.cfg.Refresher.Stats()
	return &st
}

// refreshToJSON renders refresher counters for healthz and the
// per-dataset registry views.
func refreshToJSON(st *refresh.Stats) *refreshJSON {
	out := &refreshJSON{
		Running:              st.Running,
		Cycles:               st.Cycles,
		Successes:            st.Successes,
		Skips:                st.Skips,
		Failures:             st.Failures,
		ConsecutiveFailures:  st.ConsecutiveFailures,
		LastError:            st.LastError,
		LastMineMs:           st.LastMineDuration.Milliseconds(),
		IncrementalSuccesses: st.IncrementalSuccesses,
		IncrementalFallbacks: st.IncrementalFallbacks,
		DeltaTransactions:    st.DeltaTransactions,
		LastIncrementalMs:    st.LastIncrementalDuration.Milliseconds(),
	}
	if !st.LastSwap.IsZero() {
		out.LastSwap = st.LastSwap.UTC().Format(time.RFC3339)
	}
	return out
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	served := s.qs.ServedBases()
	svc := s.qs.Stats()
	out := healthJSON{
		Status:        "ok",
		Transactions:  s.qs.NumTransactions(),
		BasisRules:    s.qs.NumRules(),
		Serving:       servingJSON{Exact: served.Exact, Approximate: served.Approximate},
		MinConfidence: s.qs.MinConfidence(),
		Swaps:         svc.Swaps,
		Cache: cacheJSON{
			Hits:     svc.SnapshotCacheHits,
			Misses:   svc.SnapshotCacheMisses,
			HitRatio: svc.SnapshotHitRatio(),
			Entries:  svc.CacheEntries,
		},
	}
	if s.cfg.MaxInFlight > 0 {
		adm := &admissionJSON{
			MaxInFlight: s.cfg.MaxInFlight,
			InFlight:    make(map[string]int, len(queryEndpoints)),
			Shed:        make(map[string]uint64, len(queryEndpoints)),
		}
		for _, e := range queryEndpoints {
			l := s.limiters[e]
			adm.InFlight[e] = l.inFlight()
			adm.Shed[e] = l.shedCount()
		}
		out.Admission = adm
	}
	if b := s.batcher; b != nil {
		out.Batching = &batchingJSON{
			BatchSize:  b.size,
			MaxWaitMs:  float64(b.maxWait.Microseconds()) / 1e3,
			Flushes:    b.stats.flushes.Load(),
			Items:      b.stats.items.Load(),
			Coalesced:  b.stats.coalesced.Load(),
			QueueDepth: b.queueDepth(),
		}
	}
	if st := s.refreshStats(); st != nil {
		out.Refresh = refreshToJSON(st)
	}
	if s.pool != nil {
		st := s.pool.Stats()
		out.Tenants = &tenantsJSON{
			Registered:  st.Registered,
			Resident:    st.Resident,
			MaxTenants:  st.MaxTenants,
			BudgetBytes: st.BudgetBytes,
			PoolBytes:   st.Bytes,
			Evictions:   st.Evictions,
			Mines:       st.Mines,
			Jobs: jobStatsJSON{
				Queued:  st.Jobs.Queued,
				Running: st.Jobs.Running,
				Done:    st.Jobs.Done,
				Failed:  st.Jobs.Failed,
			},
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writePrometheus(w, s.qs.Stats(), s.qs.NumTransactions(), s.qs.NumRules(), s.refreshStats())
	if s.cfg.MaxInFlight > 0 {
		writeAdmission(w, s.cfg.MaxInFlight, queryEndpoints, s.limiters)
	}
	if s.batcher != nil {
		writeBatcher(w, s.batcher)
	}
	if s.pool != nil {
		writeTenantMetrics(w, s.pool.Stats(), s.tmetrics)
	}
}

// reloadJSON is the wire form of a successful reload. Transactions
// and BasisRules describe the snapshot being served as the response
// is written; under a polling refresher a subsequent cycle's swap can
// land between this request's swap and the read, so automation should
// treat them as "now serving", not "what this call mined".
type reloadJSON struct {
	Status       string `json:"status"`
	Transactions int    `json:"transactions"`
	BasisRules   int    `json:"basisRules"`
	ElapsedMs    int64  `json:"elapsedMs"`
}

// errReloadBusy is the legacy-path counterpart of refresh.ErrBusy.
var errReloadBusy = errors.New("reload already in progress")

// handleReload answers POST /admin/reload: one forced re-mine-and-
// swap through whichever mechanism is configured, under the optional
// ReloadTimeout. With a Refresher it is one forced refresh cycle —
// the exact logic the background poll loop runs, sharing its
// single-flight guard and stats, so an operator POST and an interval
// tick can never mine concurrently; a cycle already in flight
// answers 409.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Refresher == nil && s.cfg.Reload == nil {
		writeError(w, http.StatusNotImplemented, "no reload source configured")
		return
	}
	ctx := r.Context()
	if s.cfg.ReloadTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ReloadTimeout)
		defer cancel()
	}
	start := time.Now()
	if err := s.reload(ctx); err != nil {
		if errors.Is(err, refresh.ErrBusy) || errors.Is(err, errReloadBusy) {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, "reload: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, reloadJSON{
		Status:       "reloaded",
		Transactions: s.qs.NumTransactions(),
		BasisRules:   s.qs.NumRules(),
		ElapsedMs:    time.Since(start).Milliseconds(),
	})
}

// reload runs one re-mine-and-swap through the Refresher when
// configured, else the legacy ReloadFunc under its own mutex.
func (s *Server) reload(ctx context.Context) error {
	if s.cfg.Refresher != nil {
		return s.cfg.Refresher.Refresh(ctx)
	}
	if !s.reloadMu.TryLock() {
		return errReloadBusy
	}
	defer s.reloadMu.Unlock()
	res, err := s.cfg.Reload(ctx)
	if err != nil {
		return err
	}
	return s.qs.Swap(res)
}
