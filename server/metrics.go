package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"closedrules"
	"closedrules/refresh"
)

// endpointStats accumulates per-endpoint counters. All fields are
// atomics so the hot path never takes a lock.
type endpointStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64 // responses with a 4xx/5xx status
	nanos    atomic.Uint64 // cumulative handler latency
}

// metricsRegistry holds the server's operational counters. The
// endpoint map is fixed at construction and only read afterwards, so
// concurrent observe calls need no lock around it.
type metricsRegistry struct {
	start      time.Time
	order      []string
	byEndpoint map[string]*endpointStats
}

func newMetricsRegistry(endpoints []string) *metricsRegistry {
	m := &metricsRegistry{
		start:      time.Now(),
		order:      append([]string(nil), endpoints...),
		byEndpoint: make(map[string]*endpointStats, len(endpoints)),
	}
	for _, e := range endpoints {
		m.byEndpoint[e] = &endpointStats{}
	}
	return m
}

// observe records one served request. Unknown endpoints are ignored
// rather than grown into the map, which would race.
func (m *metricsRegistry) observe(endpoint string, code int, d time.Duration) {
	st, ok := m.byEndpoint[endpoint]
	if !ok {
		return
	}
	st.requests.Add(1)
	if code >= 400 {
		st.errors.Add(1)
	}
	st.nanos.Add(uint64(d.Nanoseconds()))
}

// writePrometheus renders every counter in Prometheus text exposition
// format (version 0.0.4). QPS and mean latency are derivable by the
// scraper: rate(closedrules_http_requests_total) and
// closedrules_http_request_seconds_total / ..._requests_total.
// ref is the background refresher's counters, or nil when no
// refresher is configured (the refresh metric family is then absent).
func (m *metricsRegistry) writePrometheus(w io.Writer, svc closedrules.ServiceStats, numTx, numRules int, ref *refresh.Stats) {
	fmt.Fprintf(w, "# HELP closedrules_http_requests_total Requests served, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE closedrules_http_requests_total counter\n")
	for _, e := range m.order {
		fmt.Fprintf(w, "closedrules_http_requests_total{endpoint=%q} %d\n", e, m.byEndpoint[e].requests.Load())
	}
	fmt.Fprintf(w, "# HELP closedrules_http_request_errors_total Requests answered with a 4xx/5xx status, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE closedrules_http_request_errors_total counter\n")
	for _, e := range m.order {
		fmt.Fprintf(w, "closedrules_http_request_errors_total{endpoint=%q} %d\n", e, m.byEndpoint[e].errors.Load())
	}
	fmt.Fprintf(w, "# HELP closedrules_http_request_seconds_total Cumulative request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE closedrules_http_request_seconds_total counter\n")
	for _, e := range m.order {
		fmt.Fprintf(w, "closedrules_http_request_seconds_total{endpoint=%q} %.9f\n", e, float64(m.byEndpoint[e].nanos.Load())/1e9)
	}
	fmt.Fprintf(w, "# HELP closedrules_cache_hits_total Recommend calls answered from the sharded cache.\n")
	fmt.Fprintf(w, "# TYPE closedrules_cache_hits_total counter\n")
	fmt.Fprintf(w, "closedrules_cache_hits_total %d\n", svc.CacheHits)
	fmt.Fprintf(w, "# HELP closedrules_cache_misses_total Recommend calls that computed a fresh ranking.\n")
	fmt.Fprintf(w, "# TYPE closedrules_cache_misses_total counter\n")
	fmt.Fprintf(w, "closedrules_cache_misses_total %d\n", svc.CacheMisses)
	fmt.Fprintf(w, "# HELP closedrules_snapshot_cache_hits Cache hits against the currently served snapshot (resets at every swap).\n")
	fmt.Fprintf(w, "# TYPE closedrules_snapshot_cache_hits gauge\n")
	fmt.Fprintf(w, "closedrules_snapshot_cache_hits %d\n", svc.SnapshotCacheHits)
	fmt.Fprintf(w, "# HELP closedrules_snapshot_cache_misses Cache misses against the currently served snapshot (resets at every swap).\n")
	fmt.Fprintf(w, "# TYPE closedrules_snapshot_cache_misses gauge\n")
	fmt.Fprintf(w, "closedrules_snapshot_cache_misses %d\n", svc.SnapshotCacheMisses)
	fmt.Fprintf(w, "# HELP closedrules_snapshot_cache_hit_ratio Hit ratio of the currently served snapshot's cache (0 before its first lookup).\n")
	fmt.Fprintf(w, "# TYPE closedrules_snapshot_cache_hit_ratio gauge\n")
	fmt.Fprintf(w, "closedrules_snapshot_cache_hit_ratio %.6f\n", svc.SnapshotHitRatio())
	fmt.Fprintf(w, "# HELP closedrules_cache_entries Rankings currently cached.\n")
	fmt.Fprintf(w, "# TYPE closedrules_cache_entries gauge\n")
	fmt.Fprintf(w, "closedrules_cache_entries %d\n", svc.CacheEntries)
	fmt.Fprintf(w, "# HELP closedrules_swaps_total Successful hot reloads.\n")
	fmt.Fprintf(w, "# TYPE closedrules_swaps_total counter\n")
	fmt.Fprintf(w, "closedrules_swaps_total %d\n", svc.Swaps)
	fmt.Fprintf(w, "# HELP closedrules_transactions Transactions in the served dataset.\n")
	fmt.Fprintf(w, "# TYPE closedrules_transactions gauge\n")
	fmt.Fprintf(w, "closedrules_transactions %d\n", numTx)
	fmt.Fprintf(w, "# HELP closedrules_basis_rules Basis rules available to Recommend.\n")
	fmt.Fprintf(w, "# TYPE closedrules_basis_rules gauge\n")
	fmt.Fprintf(w, "closedrules_basis_rules %d\n", numRules)
	if ref != nil {
		fmt.Fprintf(w, "# HELP closedrules_refresh_cycles_total Refresh cycles attempted (poll ticks run + manual reloads).\n")
		fmt.Fprintf(w, "# TYPE closedrules_refresh_cycles_total counter\n")
		fmt.Fprintf(w, "closedrules_refresh_cycles_total %d\n", ref.Cycles)
		fmt.Fprintf(w, "# HELP closedrules_refresh_successes_total Refresh cycles that mined and swapped a new snapshot.\n")
		fmt.Fprintf(w, "# TYPE closedrules_refresh_successes_total counter\n")
		fmt.Fprintf(w, "closedrules_refresh_successes_total %d\n", ref.Successes)
		fmt.Fprintf(w, "# HELP closedrules_refresh_skips_total Refresh cycles skipped because the source was unchanged.\n")
		fmt.Fprintf(w, "# TYPE closedrules_refresh_skips_total counter\n")
		fmt.Fprintf(w, "closedrules_refresh_skips_total %d\n", ref.Skips)
		fmt.Fprintf(w, "# HELP closedrules_refresh_failures_total Refresh cycles that failed (source, mine, or swap error).\n")
		fmt.Fprintf(w, "# TYPE closedrules_refresh_failures_total counter\n")
		fmt.Fprintf(w, "closedrules_refresh_failures_total %d\n", ref.Failures)
		fmt.Fprintf(w, "# HELP closedrules_refresh_incremental_successes_total Refresh cycles that applied an append delta to the served lattice instead of re-mining.\n")
		fmt.Fprintf(w, "# TYPE closedrules_refresh_incremental_successes_total counter\n")
		fmt.Fprintf(w, "closedrules_refresh_incremental_successes_total %d\n", ref.IncrementalSuccesses)
		fmt.Fprintf(w, "# HELP closedrules_refresh_incremental_fallbacks_total Refresh cycles that saw an append delta but re-mined in full (oversized batch or engine refusal).\n")
		fmt.Fprintf(w, "# TYPE closedrules_refresh_incremental_fallbacks_total counter\n")
		fmt.Fprintf(w, "closedrules_refresh_incremental_fallbacks_total %d\n", ref.IncrementalFallbacks)
		fmt.Fprintf(w, "# HELP closedrules_refresh_incremental_transactions_total Appended transactions applied through the incremental path.\n")
		fmt.Fprintf(w, "# TYPE closedrules_refresh_incremental_transactions_total counter\n")
		fmt.Fprintf(w, "closedrules_refresh_incremental_transactions_total %d\n", ref.DeltaTransactions)
		fmt.Fprintf(w, "# HELP closedrules_refresh_incremental_last_update_seconds Lattice-update duration of the last successful incremental cycle.\n")
		fmt.Fprintf(w, "# TYPE closedrules_refresh_incremental_last_update_seconds gauge\n")
		fmt.Fprintf(w, "closedrules_refresh_incremental_last_update_seconds %.9f\n", ref.LastIncrementalDuration.Seconds())
		fmt.Fprintf(w, "# HELP closedrules_refresh_last_mine_seconds Mining duration of the last successful refresh cycle.\n")
		fmt.Fprintf(w, "# TYPE closedrules_refresh_last_mine_seconds gauge\n")
		fmt.Fprintf(w, "closedrules_refresh_last_mine_seconds %.9f\n", ref.LastMineDuration.Seconds())
		fmt.Fprintf(w, "# HELP closedrules_refresh_last_swap_timestamp_seconds Unix time of the last successful swap (0 before the first).\n")
		fmt.Fprintf(w, "# TYPE closedrules_refresh_last_swap_timestamp_seconds gauge\n")
		lastSwap := 0.0
		if !ref.LastSwap.IsZero() {
			lastSwap = float64(ref.LastSwap.UnixNano()) / 1e9
		}
		fmt.Fprintf(w, "closedrules_refresh_last_swap_timestamp_seconds %.3f\n", lastSwap)
		fmt.Fprintf(w, "# HELP closedrules_refresh_running Whether the background refresh loop is active.\n")
		fmt.Fprintf(w, "# TYPE closedrules_refresh_running gauge\n")
		running := 0
		if ref.Running {
			running = 1
		}
		fmt.Fprintf(w, "closedrules_refresh_running %d\n", running)
	}
	fmt.Fprintf(w, "# HELP closedrules_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE closedrules_uptime_seconds gauge\n")
	fmt.Fprintf(w, "closedrules_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
}

// writeAdmission renders the admission-control families: one shed
// counter and one in-flight gauge per gated endpoint, plus the
// configured cap. Only called when admission control is enabled.
func writeAdmission(w io.Writer, maxInFlight int, endpoints []string, limiters map[string]*limiter) {
	fmt.Fprintf(w, "# HELP closedrules_http_max_inflight Configured per-endpoint in-flight cap.\n")
	fmt.Fprintf(w, "# TYPE closedrules_http_max_inflight gauge\n")
	fmt.Fprintf(w, "closedrules_http_max_inflight %d\n", maxInFlight)
	fmt.Fprintf(w, "# HELP closedrules_http_shed_total Requests shed with 429 by admission control, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE closedrules_http_shed_total counter\n")
	for _, e := range endpoints {
		fmt.Fprintf(w, "closedrules_http_shed_total{endpoint=%q} %d\n", e, limiters[e].shedCount())
	}
	fmt.Fprintf(w, "# HELP closedrules_http_inflight Requests currently holding an admission slot, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE closedrules_http_inflight gauge\n")
	for _, e := range endpoints {
		fmt.Fprintf(w, "closedrules_http_inflight{endpoint=%q} %d\n", e, limiters[e].inFlight())
	}
}

// writeBatcher renders the recommend batcher families. Only called
// when batching is enabled.
func writeBatcher(w io.Writer, b *recommendBatcher) {
	fmt.Fprintf(w, "# HELP closedrules_batch_flushes_total Recommend batches flushed.\n")
	fmt.Fprintf(w, "# TYPE closedrules_batch_flushes_total counter\n")
	fmt.Fprintf(w, "closedrules_batch_flushes_total %d\n", b.stats.flushes.Load())
	fmt.Fprintf(w, "# HELP closedrules_batch_items_total Recommend requests that went through the batcher.\n")
	fmt.Fprintf(w, "# TYPE closedrules_batch_items_total counter\n")
	fmt.Fprintf(w, "closedrules_batch_items_total %d\n", b.stats.items.Load())
	fmt.Fprintf(w, "# HELP closedrules_batch_coalesced_total Batched requests answered by another request's lookup.\n")
	fmt.Fprintf(w, "# TYPE closedrules_batch_coalesced_total counter\n")
	fmt.Fprintf(w, "closedrules_batch_coalesced_total %d\n", b.stats.coalesced.Load())
	fmt.Fprintf(w, "# HELP closedrules_batch_stop_errors_total Batched requests errored by shutdown drain.\n")
	fmt.Fprintf(w, "# TYPE closedrules_batch_stop_errors_total counter\n")
	fmt.Fprintf(w, "closedrules_batch_stop_errors_total %d\n", b.stats.stopErrors.Load())
	fmt.Fprintf(w, "# HELP closedrules_batch_wait_seconds_total Cumulative per-item wait between enqueue and flush.\n")
	fmt.Fprintf(w, "# TYPE closedrules_batch_wait_seconds_total counter\n")
	fmt.Fprintf(w, "closedrules_batch_wait_seconds_total %.9f\n", float64(b.stats.queueWaitNanos.Load())/1e9)
	fmt.Fprintf(w, "# HELP closedrules_batch_queue_depth Recommend requests accepted but not yet collected into a batch.\n")
	fmt.Fprintf(w, "# TYPE closedrules_batch_queue_depth gauge\n")
	fmt.Fprintf(w, "closedrules_batch_queue_depth %d\n", b.queueDepth())
}
