package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"closedrules"
)

// classicTx is the running example of the Close paper: five objects
// over items A=0, B=1, C=2, D=3, E=4.
var classicTx = [][]int{
	{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
}

func mineClassic(t *testing.T, repeat int) *closedrules.Result {
	t.Helper()
	var tx [][]int
	for i := 0; i < repeat; i++ {
		tx = append(tx, classicTx...)
	}
	d, err := closedrules.NewDataset(tx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := closedrules.MineContext(context.Background(), d, closedrules.WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	qs, err := closedrules.NewQueryService(mineClassic(t, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, wantCode int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d; body: %s", url, resp.StatusCode, wantCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
}

func postJSON(t *testing.T, url string, reqBody any, wantCode int, out any) {
	t.Helper()
	buf, err := json.Marshal(reqBody)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s = %d, want %d; body: %s", url, resp.StatusCode, wantCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("POST %s: bad JSON %q: %v", url, body, err)
		}
	}
}

func TestSupportEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out supportJSON
	getJSON(t, ts.URL+"/support?items=1,4", http.StatusOK, &out)
	if out.Support != 4 || !out.Frequent {
		t.Errorf("support(BE) = %+v, want 4/frequent", out)
	}
	// D = item 3 is infrequent at the mining threshold.
	getJSON(t, ts.URL+"/support?items=3", http.StatusOK, &out)
	if out.Frequent {
		t.Errorf("support(D) = %+v, want infrequent", out)
	}
}

func TestConfidenceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out confidenceJSON
	getJSON(t, ts.URL+"/confidence?antecedent=2&consequent=0", http.StatusOK, &out)
	if out.Confidence != 0.75 {
		t.Errorf("conf(C→A) = %v, want 0.75", out.Confidence)
	}
}

func TestRulesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out ruleJSON
	getJSON(t, ts.URL+"/rules?antecedent=2&consequent=0", http.StatusOK, &out)
	if out.Support != 3 || out.AntecedentSupport != 4 || out.ConsequentSupport != 3 {
		t.Errorf("rule(C→A) = %+v", out)
	}
	if out.Confidence != 0.75 || out.Lift == 0 {
		t.Errorf("rule(C→A) measures = %+v", out)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out recommendJSON
	postJSON(t, ts.URL+"/recommend", recommendRequest{Observed: []int{1}, K: 3}, http.StatusOK, &out)
	if len(out.Rules) == 0 {
		t.Fatal("no recommendations for {B}")
	}
	for _, r := range out.Rules {
		for _, it := range r.Antecedent {
			if it != 1 {
				t.Errorf("rule %+v not applicable to {B}", r)
			}
		}
	}
	// k defaults to 10 and clamps to MaxRecommend.
	postJSON(t, ts.URL+"/recommend", recommendRequest{Observed: []int{1}}, http.StatusOK, &out)
	if out.K != 10 {
		t.Errorf("default k = %d, want 10", out.K)
	}
	postJSON(t, ts.URL+"/recommend", recommendRequest{Observed: []int{1}, K: 10_000}, http.StatusOK, &out)
	if out.K != DefaultMaxRecommend {
		t.Errorf("clamped k = %d, want %d", out.K, DefaultMaxRecommend)
	}
}

func TestBadParams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, url := range []string{
		"/support",                         // missing items
		"/support?items=",                  // empty
		"/support?items=a,b",               // non-integer
		"/support?items=-1",                // negative
		"/confidence?antecedent=1",         // missing consequent
		"/rules?antecedent=x&consequent=0", // malformed antecedent
	} {
		getJSON(t, ts.URL+url, http.StatusBadRequest, nil)
	}
	// Malformed and oversized-k recommend bodies.
	resp, err := http.Post(ts.URL+"/recommend", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}
	postJSON(t, ts.URL+"/recommend", recommendRequest{Observed: []int{-2}, K: 1}, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/recommend", recommendRequest{Observed: []int{1}, K: -1}, http.StatusBadRequest, nil)
}

func TestUnderivableQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Rules over the infrequent item D are not derivable: 422.
	getJSON(t, ts.URL+"/confidence?antecedent=3&consequent=0", http.StatusUnprocessableEntity, nil)
	// Overlapping sides are rejected the same way.
	getJSON(t, ts.URL+"/confidence?antecedent=1&consequent=1,4", http.StatusUnprocessableEntity, nil)
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/support?items=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /support = %d, want 405", resp.StatusCode)
	}
}

// TestTimeout503 proves an expired per-request deadline surfaces as
// 503: the 1ns budget is spent before the query starts.
func TestTimeout503(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	getJSON(t, ts.URL+"/support?items=2", http.StatusServiceUnavailable, nil)
}

// TestClientCancel499 proves a client disconnect (cancelled request
// context) is attributed as 499, not a server-side 5xx.
func TestClientCancel499(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/support?items=2", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Errorf("cancelled request = %d, want %d", rec.Code, statusClientClosedRequest)
	}
}

func TestNegativeTimeoutDisablesDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: -1})
	var out supportJSON
	getJSON(t, ts.URL+"/support?items=2", http.StatusOK, &out)
	if out.Support != 4 {
		t.Errorf("support(C) = %+v", out)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out healthJSON
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &out)
	if out.Status != "ok" || out.Transactions != 5 || out.BasisRules == 0 || out.MinConfidence != 0.5 {
		t.Errorf("healthz = %+v", out)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var sup supportJSON
	getJSON(t, ts.URL+"/support?items=2", http.StatusOK, &sup)
	var rec recommendJSON
	postJSON(t, ts.URL+"/recommend", recommendRequest{Observed: []int{1}, K: 2}, http.StatusOK, &rec)
	postJSON(t, ts.URL+"/recommend", recommendRequest{Observed: []int{1}, K: 2}, http.StatusOK, &rec)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`closedrules_http_requests_total{endpoint="support"} 1`,
		`closedrules_http_requests_total{endpoint="recommend"} 2`,
		`closedrules_cache_hits_total 1`,
		`closedrules_cache_misses_total 1`,
		`closedrules_swaps_total 0`,
		`closedrules_transactions 5`,
		"closedrules_http_request_seconds_total",
		"closedrules_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func TestReloadEndpoint(t *testing.T) {
	qs, err := closedrules.NewQueryService(mineClassic(t, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	s, err := New(qs, Config{
		Reload: func(ctx context.Context) (*closedrules.Result, error) {
			calls++
			if calls > 1 {
				return nil, fmt.Errorf("source gone")
			}
			return mineClassic(t, 2), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out reloadJSON
	postJSON(t, ts.URL+"/admin/reload", struct{}{}, http.StatusOK, &out)
	if out.Status != "reloaded" || out.Transactions != 10 {
		t.Errorf("reload = %+v", out)
	}
	var h healthJSON
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Transactions != 10 || h.Swaps != 1 {
		t.Errorf("healthz after reload = %+v", h)
	}
	// A failing reload keeps the served snapshot and reports 500.
	postJSON(t, ts.URL+"/admin/reload", struct{}{}, http.StatusInternalServerError, nil)
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Transactions != 10 {
		t.Errorf("snapshot lost on failed reload: %+v", h)
	}
}

func TestReloadNotConfigured(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/admin/reload", struct{}{}, http.StatusNotImplemented, nil)
}

// TestShardedCacheConcurrent hammers Recommend through the HTTP layer
// with many distinct baskets from 8 goroutines — under -race this is
// the sharded-cache safety proof at the serving boundary.
func TestShardedCacheConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				body, _ := json.Marshal(recommendRequest{Observed: []int{i % 5}, K: 1 + (g+i)%4})
				resp, err := http.Post(ts.URL+"/recommend", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("recommend = %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestSwapUnderLoad keeps querying while /admin/reload hot-swaps
// snapshots underneath — queries must never observe an inconsistent
// state or fail.
func TestSwapUnderLoad(t *testing.T) {
	qs, err := closedrules.NewQueryService(mineClassic(t, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	repeat := 1
	s, err := New(qs, Config{
		Reload: func(ctx context.Context) (*closedrules.Result, error) {
			repeat++ // serialized by the server's reload lock
			return mineClassic(t, 1+repeat%2), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const goroutines = 6
	var wg sync.WaitGroup
	errc := make(chan error, goroutines+1)
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				var out supportJSON
				resp, err := http.Get(ts.URL + "/support?items=2")
				if err != nil {
					errc <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("support = %d: %s", resp.StatusCode, body)
					return
				}
				if err := json.Unmarshal(body, &out); err != nil {
					errc <- err
					return
				}
				// supp(C) is 4 per copy of the classic context: any
				// served snapshot must report a multiple of 4.
				if !out.Frequent || out.Support%4 != 0 || out.Support == 0 {
					errc <- fmt.Errorf("inconsistent snapshot: %+v", out)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 20; i++ {
			resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
			if err != nil {
				errc <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("reload = %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := s.Service().Stats().Swaps; got != 20 {
		t.Errorf("swaps = %d, want 20", got)
	}
}

// TestServeGracefulShutdown proves cancel → clean exit with in-flight
// requests drained.
func TestServeGracefulShutdown(t *testing.T) {
	qs, err := closedrules.NewQueryService(mineClassic(t, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(qs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	var out healthJSON
	getJSON(t, url+"/healthz", http.StatusOK, &out)

	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Errorf("Serve returned %v after cancel, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
}
