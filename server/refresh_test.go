package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"closedrules"
	"closedrules/refresh"
)

// newRefreshedServer builds a server whose reload path is a Refresher
// over the given source.
func newRefreshedServer(t *testing.T, src refresh.Source) (*refresh.Refresher, *httptest.Server) {
	t.Helper()
	qs, err := closedrules.NewQueryService(mineClassic(t, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := refresh.New(qs, refresh.Config{
		Source:      src,
		MineOptions: []closedrules.MineOption{closedrules.WithMinSupport(0.4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(qs, Config{Refresher: r})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return r, ts
}

// doubledSource returns the classic context twice over.
func doubledSource() refresh.Source {
	return refresh.SourceFunc(func(ctx context.Context) (*closedrules.Dataset, error) {
		return closedrules.NewDataset(append(append([][]int{}, classicTx...), classicTx...))
	})
}

func TestReloadDelegatesToRefresher(t *testing.T) {
	r, ts := newRefreshedServer(t, doubledSource())
	var out struct {
		Status       string `json:"status"`
		Transactions int    `json:"transactions"`
	}
	postJSON(t, ts.URL+"/admin/reload", nil, http.StatusOK, &out)
	if out.Status != "reloaded" || out.Transactions != 10 {
		t.Fatalf("reload via refresher = %+v, want 10 transactions", out)
	}
	st := r.Stats()
	if st.Cycles != 1 || st.Successes != 1 {
		t.Fatalf("refresher stats after HTTP reload = %+v", st)
	}
}

func TestReloadRefresherBusy409(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	src := refresh.SourceFunc(func(ctx context.Context) (*closedrules.Dataset, error) {
		once.Do(func() { close(entered) })
		<-gate
		return closedrules.NewDataset(classicTx)
	})
	r, ts := newRefreshedServer(t, src)
	go r.Refresh(context.Background())
	<-entered
	defer close(gate)
	var out struct {
		Error string `json:"error"`
	}
	postJSON(t, ts.URL+"/admin/reload", nil, http.StatusConflict, &out)
	if !strings.Contains(out.Error, "in flight") {
		t.Fatalf("busy reload error = %q", out.Error)
	}
}

func TestReloadRefresherError500(t *testing.T) {
	src := refresh.SourceFunc(func(ctx context.Context) (*closedrules.Dataset, error) {
		return nil, context.DeadlineExceeded
	})
	r, ts := newRefreshedServer(t, src)
	postJSON(t, ts.URL+"/admin/reload", nil, http.StatusInternalServerError, nil)
	if st := r.Stats(); st.Failures != 1 || st.LastError == "" {
		t.Fatalf("stats after failed HTTP reload = %+v", st)
	}
}

func TestHealthzReportsRefresher(t *testing.T) {
	_, ts := newRefreshedServer(t, doubledSource())
	postJSON(t, ts.URL+"/admin/reload", nil, http.StatusOK, nil)
	var h struct {
		Transactions int `json:"transactions"`
		Refresh      *struct {
			Running              bool   `json:"running"`
			Cycles               uint64 `json:"cycles"`
			Successes            uint64 `json:"successes"`
			LastSwap             string `json:"lastSwap"`
			IncrementalSuccesses uint64 `json:"incrementalSuccesses"`
			IncrementalFallbacks uint64 `json:"incrementalFallbacks"`
			DeltaTransactions    uint64 `json:"deltaTransactions"`
		} `json:"refresh"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Refresh == nil {
		t.Fatal("healthz has no refresh block with a Refresher configured")
	}
	if h.Refresh.IncrementalSuccesses != 0 || h.Refresh.IncrementalFallbacks != 0 || h.Refresh.DeltaTransactions != 0 {
		t.Fatalf("healthz incremental counters after a forced reload = %+v, want zeros", h.Refresh)
	}
	if h.Refresh.Cycles != 1 || h.Refresh.Successes != 1 || h.Refresh.LastSwap == "" {
		t.Fatalf("healthz refresh = %+v", h.Refresh)
	}
	if h.Refresh.Running {
		t.Fatal("healthz reports a running loop for a manual-only refresher")
	}
	if h.Transactions != 10 {
		t.Fatalf("healthz transactions after reload = %d, want 10", h.Transactions)
	}
}

func TestHealthzOmitsRefreshWithoutRefresher(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var h map[string]any
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &h)
	if _, present := h["refresh"]; present {
		t.Fatal("healthz has a refresh block without a Refresher")
	}
}

func TestMetricsRefreshFamilies(t *testing.T) {
	_, ts := newRefreshedServer(t, doubledSource())
	postJSON(t, ts.URL+"/admin/reload", nil, http.StatusOK, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"closedrules_refresh_cycles_total 1",
		"closedrules_refresh_successes_total 1",
		"closedrules_refresh_skips_total 0",
		"closedrules_refresh_failures_total 0",
		"closedrules_refresh_incremental_successes_total 0",
		"closedrules_refresh_incremental_fallbacks_total 0",
		"closedrules_refresh_incremental_transactions_total 0",
		"closedrules_refresh_incremental_last_update_seconds ",
		"closedrules_refresh_last_mine_seconds ",
		"closedrules_refresh_last_swap_timestamp_seconds ",
		"closedrules_refresh_running 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestMetricsOmitRefreshWithoutRefresher(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "closedrules_refresh_") {
		t.Fatal("refresh metric family present without a Refresher")
	}
}
