package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"closedrules"
	"closedrules/internal/tenant"
	"closedrules/refresh"
)

// DefaultTenantID names the pinned tenant backing the legacy
// single-dataset routes in multi-tenant mode: /support and
// /datasets/default/support answer from the same snapshots.
const DefaultTenantID = "default"

// maxRegisterBytes bounds POST /datasets bodies: inline uploads carry
// whole datasets, so the cap is far above the query-body cap.
const maxRegisterBytes = 32 << 20

// registerTenantRoutes mounts the multi-tenant route families. The
// per-tenant query routes share the legacy endpoints' admission gates
// (one cap per verb across all tenants) and metric names, plus a
// tenant label in the tenant-scoped families.
func (s *Server) registerTenantRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /datasets", s.instrument("datasets", s.handleRegisterDataset))
	mux.HandleFunc("GET /datasets", s.instrument("datasets", s.handleListDatasets))
	mux.HandleFunc("GET /datasets/{id}", s.instrument("datasets", s.handleGetDataset))
	mux.HandleFunc("DELETE /datasets/{id}", s.instrument("datasets", s.handleDeleteDataset))
	mux.HandleFunc("POST /datasets/{id}/mine", s.instrument("datasets", s.handleMineDataset))
	mux.HandleFunc("GET /jobs/{id}", s.instrument("jobs", s.handleGetJob))
	mux.HandleFunc("GET /datasets/{id}/support",
		s.instrumentTenant("support", s.admit(s.limiters["support"], s.tenantQuery(s.serveSupport))))
	mux.HandleFunc("GET /datasets/{id}/confidence",
		s.instrumentTenant("confidence", s.admit(s.limiters["confidence"], s.tenantQuery(s.serveConfidence))))
	mux.HandleFunc("GET /datasets/{id}/rules",
		s.instrumentTenant("rules", s.admit(s.limiters["rules"], s.tenantQuery(s.serveRules))))
	mux.HandleFunc("POST /datasets/{id}/recommend",
		s.instrumentTenant("recommend", s.admit(s.limiters["recommend"], s.tenantQuery(
			func(qs *closedrules.QueryService, w http.ResponseWriter, r *http.Request) {
				// Tenant recommends bypass the batcher: it coalesces into
				// the default service's snapshot, not this tenant's.
				s.serveRecommend(qs, false, w, r)
			}))))
	mux.HandleFunc("GET /datasets/{id}/bases",
		s.instrumentTenant("bases", s.tenantQuery(s.serveBases)))
}

// tenantQuery adapts a qs-parametric query core into a tenant route
// handler: resolve {id} through the pool — materializing the tenant's
// service if it was evicted — then run the query against it.
func (s *Server) tenantQuery(serve func(*closedrules.QueryService, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		qs, ok := s.resolveTenant(w, r)
		if !ok {
			return
		}
		serve(qs, w, r)
	}
}

// resolveTenant fetches the tenant's QueryService, answering the
// error itself when the lookup or (re)materialization fails. The wait
// for a shared re-mine is bounded by the request deadline; the mine
// keeps running for later callers if this one times out.
func (s *Server) resolveTenant(w http.ResponseWriter, r *http.Request) (*closedrules.QueryService, bool) {
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	qs, err := s.pool.Service(ctx, r.PathValue("id"))
	if err != nil {
		writeTenantError(w, err)
		return nil, false
	}
	return qs, true
}

// writeTenantError maps pool errors onto statuses: unknown IDs 404,
// duplicates 409, pinned-tenant mutations 403, capacity and fairness
// limits 429 (with a Retry-After hint, like admission control), bad
// input 400, shutdown 503, and anything the mine itself rejected 422.
func writeTenantError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, tenant.ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, tenant.ErrExists):
		writeError(w, http.StatusConflict, err.Error())
	case errors.Is(err, tenant.ErrPinned):
		writeError(w, http.StatusForbidden, err.Error())
	case errors.Is(err, tenant.ErrPoolFull),
		errors.Is(err, tenant.ErrTenantBusy),
		errors.Is(err, tenant.ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, tenant.ErrBadID):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, tenant.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		writeError(w, statusClientClosedRequest, "client closed request")
	default:
		writeError(w, http.StatusUnprocessableEntity, err.Error())
	}
}

// paramsJSON is the wire form of mining parameters, shared by the
// register body, the mine-job body, and dataset/job responses. The
// pointer confidence distinguishes "not sent" from an explicit 0.
type paramsJSON struct {
	MinSupport    float64  `json:"minSupport,omitempty"`
	AbsSupport    int      `json:"absSupport,omitempty"`
	MinConfidence *float64 `json:"minConfidence,omitempty"`
	Algorithm     string   `json:"algorithm,omitempty"`
	ExactBasis    string   `json:"exactBasis,omitempty"`
	ApproxBasis   string   `json:"approxBasis,omitempty"`
}

// merge overlays the fields the request actually sent onto base. A
// non-zero MinSupport clears an inherited absolute threshold (the
// sender chose relative), and vice versa the explicit AbsSupport
// wins over an inherited relative one.
func (p paramsJSON) merge(base tenant.Params) tenant.Params {
	out := base
	if p.MinSupport != 0 {
		out.MinSupport = p.MinSupport
		out.AbsSupport = 0
	}
	if p.AbsSupport != 0 {
		out.AbsSupport = p.AbsSupport
		out.MinSupport = 0
	}
	if p.MinConfidence != nil {
		out.MinConfidence = *p.MinConfidence
	}
	if p.Algorithm != "" {
		out.Algorithm = p.Algorithm
	}
	if p.ExactBasis != "" {
		out.ExactBasis = p.ExactBasis
	}
	if p.ApproxBasis != "" {
		out.ApproxBasis = p.ApproxBasis
	}
	return out
}

func paramsToJSON(p tenant.Params) paramsJSON {
	mc := p.MinConfidence
	return paramsJSON{
		MinSupport:    p.MinSupport,
		AbsSupport:    p.AbsSupport,
		MinConfidence: &mc,
		Algorithm:     p.Algorithm,
		ExactBasis:    p.ExactBasis,
		ApproxBasis:   p.ApproxBasis,
	}
}

// registerRequest is the POST /datasets body. Exactly one of
// Transactions (inline itemset lists), Dat (inline .dat text) or Path
// (a server-side file inside Config.TenantDataDir; rejected with 403
// when the operator has not configured one) must be set.
type registerRequest struct {
	ID           string     `json:"id"`
	Name         string     `json:"name"`
	Transactions [][]int    `json:"transactions"`
	Dat          string     `json:"dat"`
	Path         string     `json:"path"`
	Table        bool       `json:"table"`
	Sep          string     `json:"sep"`
	Header       bool       `json:"header"`
	Refresh      string     `json:"refresh"`
	Mine         bool       `json:"mine"`
	Params       paramsJSON `json:"params"`
}

// datasetJSON is the wire form of one tenant's registry entry.
type datasetJSON struct {
	ID        string       `json:"id"`
	Name      string       `json:"name"`
	CreatedAt string       `json:"createdAt"`
	Pinned    bool         `json:"pinned,omitempty"`
	Resident  bool         `json:"resident"`
	Bytes     int64        `json:"bytes"`
	Mines     uint64       `json:"mines"`
	Params    paramsJSON   `json:"params"`
	Refresh   string       `json:"refresh,omitempty"`
	RefreshST *refreshJSON `json:"refreshStats,omitempty"`
}

func datasetToJSON(info tenant.Info) datasetJSON {
	out := datasetJSON{
		ID:        info.ID,
		Name:      info.Name,
		CreatedAt: info.CreatedAt.UTC().Format(time.RFC3339),
		Pinned:    info.Pinned,
		Resident:  info.Resident,
		Bytes:     info.Bytes,
		Mines:     info.Mines,
		Params:    paramsToJSON(info.Params),
	}
	if info.Refresh > 0 {
		out.Refresh = info.Refresh.String()
	}
	if info.RefreshStats != nil {
		out.RefreshST = refreshToJSON(info.RefreshStats)
	}
	return out
}

// registerResponse is the 201 body: the new registry entry plus, with
// "mine": true, the initial mine job's ID (or why it could not be
// enqueued — the registration itself still stands).
type registerResponse struct {
	datasetJSON
	Job      string `json:"job,omitempty"`
	JobError string `json:"jobError,omitempty"`
}

func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	body := http.MaxBytesReader(w, r.Body, maxRegisterBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	sources := 0
	for _, set := range []bool{req.Transactions != nil, req.Dat != "", req.Path != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		writeError(w, http.StatusBadRequest, "exactly one of transactions, dat or path must be set")
		return
	}
	var refreshIval time.Duration
	if req.Refresh != "" {
		d, err := time.ParseDuration(req.Refresh)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, "refresh: want a positive duration like \"30s\"")
			return
		}
		if req.Path == "" {
			writeError(w, http.StatusBadRequest, "refresh requires a path-backed dataset")
			return
		}
		refreshIval = d
	}
	src, ok := s.registerSource(w, &req)
	if !ok {
		return
	}
	params := req.Params.merge(tenant.Params{MinConfidence: tenant.DefaultMinConfidence})
	info, err := s.pool.Register(tenant.Spec{
		ID:      req.ID,
		Name:    req.Name,
		Source:  src,
		Params:  params,
		Refresh: refreshIval,
	})
	if err != nil {
		writeTenantError(w, err)
		return
	}
	resp := registerResponse{datasetJSON: datasetToJSON(info)}
	if req.Mine {
		// The registered params (defaults already applied) drive the
		// initial mine, so the tenant serves exactly what the 201 body
		// reported — a zero Params here would re-default everything.
		job, err := s.pool.Enqueue(info.ID, info.Params)
		if err != nil {
			resp.JobError = err.Error()
		} else {
			resp.Job = job.ID
		}
	}
	writeJSON(w, http.StatusCreated, resp)
}

// registerSource builds the tenant's Source from whichever upload
// form the body used, answering 400 itself on malformed input. Path
// registrations name server-side files, so they are only honored when
// the operator opted in with Config.TenantDataDir (403 otherwise) and
// never outside that directory — without the gate any HTTP client
// could register arbitrary server-readable files and leak their
// contents through the query routes.
func (s *Server) registerSource(w http.ResponseWriter, req *registerRequest) (tenant.Source, bool) {
	switch {
	case req.Transactions != nil:
		d, err := closedrules.NewDataset(req.Transactions)
		if err != nil {
			writeError(w, http.StatusBadRequest, "transactions: "+err.Error())
			return nil, false
		}
		return tenant.NewInlineSource(d), true
	case req.Dat != "":
		d, err := closedrules.ReadDat(strings.NewReader(req.Dat))
		if err != nil {
			writeError(w, http.StatusBadRequest, "dat: "+err.Error())
			return nil, false
		}
		return tenant.NewInlineSource(d), true
	default:
		if s.cfg.TenantDataDir == "" {
			writeError(w, http.StatusForbidden,
				"path: server-side path registrations are disabled; start the server with a tenant data directory (arserve -tenant-data-dir)")
			return nil, false
		}
		path, err := resolveUnder(s.cfg.TenantDataDir, req.Path)
		if err != nil {
			writeError(w, http.StatusBadRequest, "path: "+err.Error())
			return nil, false
		}
		if fi, err := os.Stat(path); err != nil {
			writeError(w, http.StatusBadRequest, "path: "+err.Error())
			return nil, false
		} else if fi.IsDir() {
			writeError(w, http.StatusBadRequest, "path: is a directory")
			return nil, false
		}
		if req.Table {
			sep := req.Sep
			if sep == "" {
				sep = ","
			}
			runes := []rune(sep)
			if len(runes) != 1 {
				writeError(w, http.StatusBadRequest, "sep: want a single character")
				return nil, false
			}
			return refresh.NewTableFileSource(path, runes[0], req.Header), true
		}
		return refresh.NewFileSource(path), true
	}
}

// resolveUnder maps a client-supplied path into dir: relative paths
// are joined onto it, absolute ones must already point inside it, and
// the result — after symlink resolution, so a link cannot tunnel out —
// must not escape. dir is absolute (Config.validate made it so).
func resolveUnder(dir, raw string) (string, error) {
	joined := raw
	if !filepath.IsAbs(raw) {
		joined = filepath.Join(dir, raw)
	}
	if !within(dir, joined) {
		return "", errors.New("escapes the tenant data directory")
	}
	// EvalSymlinks also fails on a missing file, which double-checks
	// existence before the containment re-check.
	resolved, err := filepath.EvalSymlinks(joined)
	if err != nil {
		return "", err
	}
	resolvedDir, err := filepath.EvalSymlinks(dir)
	if err != nil {
		return "", err
	}
	if !within(resolvedDir, resolved) {
		return "", errors.New("escapes the tenant data directory")
	}
	return resolved, nil
}

// within reports whether path (cleaned) sits at or below dir.
func within(dir, path string) bool {
	rel, err := filepath.Rel(dir, filepath.Clean(path))
	return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
}

// listJSON is the GET /datasets body.
type listJSON struct {
	Count    int           `json:"count"`
	Datasets []datasetJSON `json:"datasets"`
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	infos := s.pool.List()
	out := listJSON{Count: len(infos), Datasets: make([]datasetJSON, len(infos))}
	for i, info := range infos {
		out.Datasets[i] = datasetToJSON(info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	info, err := s.pool.Get(r.PathValue("id"))
	if err != nil {
		writeTenantError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, datasetToJSON(info))
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.pool.Delete(id); err != nil {
		writeTenantError(w, err)
		return
	}
	// The tenant's labeled series go with it, so a churned pool does
	// not grow the exposition without bound.
	s.tmetrics.drop(id)
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		ID     string `json:"id"`
	}{Status: "deleted", ID: id})
}

// mineRequest is the optional POST /datasets/{id}/mine body: any
// field sent overrides the tenant's current parameters for this job
// (and, on success, becomes the tenant's new parameter set).
type mineRequest struct {
	Params paramsJSON `json:"params"`
}

// jobJSON is the wire form of one mine job.
type jobJSON struct {
	Job        string     `json:"job"`
	Tenant     string     `json:"tenant"`
	State      string     `json:"state"`
	Error      string     `json:"error,omitempty"`
	Params     paramsJSON `json:"params"`
	EnqueuedAt string     `json:"enqueuedAt"`
	StartedAt  string     `json:"startedAt,omitempty"`
	FinishedAt string     `json:"finishedAt,omitempty"`
	MineMillis int64      `json:"mineMillis,omitempty"`
}

func jobToJSON(j tenant.JobInfo) jobJSON {
	out := jobJSON{
		Job:        j.ID,
		Tenant:     j.Tenant,
		State:      string(j.State),
		Error:      j.Error,
		Params:     paramsToJSON(j.Params),
		EnqueuedAt: j.EnqueuedAt.UTC().Format(time.RFC3339),
		MineMillis: j.MineMillis,
	}
	if !j.StartedAt.IsZero() {
		out.StartedAt = j.StartedAt.UTC().Format(time.RFC3339)
	}
	if !j.FinishedAt.IsZero() {
		out.FinishedAt = j.FinishedAt.UTC().Format(time.RFC3339)
	}
	return out
}

// handleMineDataset enqueues an async re-mine and answers 202 with
// the job ID immediately: a huge upload never holds the request open.
// Progress is polled at GET /jobs/{id}; on success the job's result
// is hot-swapped in as the tenant's served snapshot.
func (s *Server) handleMineDataset(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req mineRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	info, err := s.pool.Get(id)
	if err != nil {
		writeTenantError(w, err)
		return
	}
	job, err := s.pool.Enqueue(id, req.Params.merge(info.Params))
	if err != nil {
		writeTenantError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, jobToJSON(job))
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.pool.Job(r.PathValue("id"))
	if err != nil {
		writeTenantError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jobToJSON(job))
}

// instrumentTenant wraps a tenant query route with the shared
// per-endpoint accounting plus a tenant-labeled request/error count.
// The label is only minted for IDs actually in the registry — keying
// off the response status is not enough, because admission-control
// 429s fire before tenant resolution, so a scanner probing random IDs
// during overload would otherwise mint unbounded metric series.
func (s *Server) instrumentTenant(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.observe(name, rec.code, time.Since(start))
		if id := r.PathValue("id"); s.pool.Has(id) {
			s.tmetrics.observe(id, name, rec.code)
		}
	}
}

// tenantMetrics is the tenant-labeled request accounting. Unlike the
// fixed endpoint registry, the tenant set changes at runtime, so the
// map is mutex-guarded; the lock is uncontended in practice (one
// short critical section per request).
type tenantMetrics struct {
	mu       sync.Mutex
	byTenant map[string]map[string]*tenantCounters
}

type tenantCounters struct {
	requests uint64
	errors   uint64
}

func newTenantMetrics() *tenantMetrics {
	return &tenantMetrics{byTenant: make(map[string]map[string]*tenantCounters)}
}

func (m *tenantMetrics) observe(id, endpoint string, code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byEndpoint := m.byTenant[id]
	if byEndpoint == nil {
		byEndpoint = make(map[string]*tenantCounters)
		m.byTenant[id] = byEndpoint
	}
	c := byEndpoint[endpoint]
	if c == nil {
		c = &tenantCounters{}
		byEndpoint[endpoint] = c
	}
	c.requests++
	if code >= 400 {
		c.errors++
	}
}

func (m *tenantMetrics) drop(id string) {
	m.mu.Lock()
	delete(m.byTenant, id)
	m.mu.Unlock()
}

// snapshot returns the labeled counters in deterministic order.
func (m *tenantMetrics) snapshot() []tenantSeries {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []tenantSeries
	for id, byEndpoint := range m.byTenant {
		for endpoint, c := range byEndpoint {
			out = append(out, tenantSeries{tenant: id, endpoint: endpoint, requests: c.requests, errors: c.errors})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].tenant != out[j].tenant {
			return out[i].tenant < out[j].tenant
		}
		return out[i].endpoint < out[j].endpoint
	})
	return out
}

type tenantSeries struct {
	tenant, endpoint string
	requests, errors uint64
}

// writeTenantMetrics renders the tenant pool gauges and the
// tenant-labeled request families. Only called in multi-tenant mode.
func writeTenantMetrics(w io.Writer, st tenant.Stats, tm *tenantMetrics) {
	fmt.Fprintf(w, "# HELP closedrules_tenants_registered Datasets currently registered in the tenant pool.\n")
	fmt.Fprintf(w, "# TYPE closedrules_tenants_registered gauge\n")
	fmt.Fprintf(w, "closedrules_tenants_registered %d\n", st.Registered)
	fmt.Fprintf(w, "# HELP closedrules_tenants_resident Tenants whose mined representation is currently in memory.\n")
	fmt.Fprintf(w, "# TYPE closedrules_tenants_resident gauge\n")
	fmt.Fprintf(w, "closedrules_tenants_resident %d\n", st.Resident)
	fmt.Fprintf(w, "# HELP closedrules_tenant_pool_bytes Estimated resident bytes across all materialized tenants.\n")
	fmt.Fprintf(w, "# TYPE closedrules_tenant_pool_bytes gauge\n")
	fmt.Fprintf(w, "closedrules_tenant_pool_bytes %d\n", st.Bytes)
	fmt.Fprintf(w, "# HELP closedrules_tenant_pool_budget_bytes Configured tenant memory budget.\n")
	fmt.Fprintf(w, "# TYPE closedrules_tenant_pool_budget_bytes gauge\n")
	fmt.Fprintf(w, "closedrules_tenant_pool_budget_bytes %d\n", st.BudgetBytes)
	fmt.Fprintf(w, "# HELP closedrules_tenant_evictions_total Tenant services evicted to fit the memory budget.\n")
	fmt.Fprintf(w, "# TYPE closedrules_tenant_evictions_total counter\n")
	fmt.Fprintf(w, "closedrules_tenant_evictions_total %d\n", st.Evictions)
	fmt.Fprintf(w, "# HELP closedrules_tenant_mines_total Materializations and completed mine jobs across all tenants.\n")
	fmt.Fprintf(w, "# TYPE closedrules_tenant_mines_total counter\n")
	fmt.Fprintf(w, "closedrules_tenant_mines_total %d\n", st.Mines)
	fmt.Fprintf(w, "# HELP closedrules_tenant_jobs_queued Mine jobs waiting for a worker.\n")
	fmt.Fprintf(w, "# TYPE closedrules_tenant_jobs_queued gauge\n")
	fmt.Fprintf(w, "closedrules_tenant_jobs_queued %d\n", st.Jobs.Queued)
	fmt.Fprintf(w, "# HELP closedrules_tenant_jobs_running Mine jobs currently executing.\n")
	fmt.Fprintf(w, "# TYPE closedrules_tenant_jobs_running gauge\n")
	fmt.Fprintf(w, "closedrules_tenant_jobs_running %d\n", st.Jobs.Running)
	fmt.Fprintf(w, "# HELP closedrules_tenant_jobs_done_total Mine jobs completed successfully.\n")
	fmt.Fprintf(w, "# TYPE closedrules_tenant_jobs_done_total counter\n")
	fmt.Fprintf(w, "closedrules_tenant_jobs_done_total %d\n", st.Jobs.Done)
	fmt.Fprintf(w, "# HELP closedrules_tenant_jobs_failed_total Mine jobs that errored.\n")
	fmt.Fprintf(w, "# TYPE closedrules_tenant_jobs_failed_total counter\n")
	fmt.Fprintf(w, "closedrules_tenant_jobs_failed_total %d\n", st.Jobs.Failed)
	series := tm.snapshot()
	fmt.Fprintf(w, "# HELP closedrules_tenant_http_requests_total Tenant-route requests served, by tenant and endpoint.\n")
	fmt.Fprintf(w, "# TYPE closedrules_tenant_http_requests_total counter\n")
	for _, sr := range series {
		fmt.Fprintf(w, "closedrules_tenant_http_requests_total{tenant=%q,endpoint=%q} %d\n", sr.tenant, sr.endpoint, sr.requests)
	}
	fmt.Fprintf(w, "# HELP closedrules_tenant_http_request_errors_total Tenant-route requests answered 4xx/5xx, by tenant and endpoint.\n")
	fmt.Fprintf(w, "# TYPE closedrules_tenant_http_request_errors_total counter\n")
	for _, sr := range series {
		fmt.Fprintf(w, "closedrules_tenant_http_request_errors_total{tenant=%q,endpoint=%q} %d\n", sr.tenant, sr.endpoint, sr.errors)
	}
}
