package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"closedrules"
	"closedrules/internal/tenant"
)

// betaTx is a second, deliberately different context: {0,1} co-occur
// in 3 of 4 objects, item 2 rides along once.
var betaTx = [][]int{{0, 1}, {0, 1, 2}, {0, 1}, {3}}

// newTenantServer builds a multi-tenant test server whose pinned
// default tenant serves the classic context.
func newTenantServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.MultiTenant = true
	return newTestServer(t, cfg)
}

// registerTenant uploads tx inline and returns the assigned ID.
func registerTenant(t *testing.T, baseURL, id string, tx [][]int, params map[string]any) string {
	t.Helper()
	body := map[string]any{"transactions": tx}
	if id != "" {
		body["id"] = id
	}
	if params != nil {
		body["params"] = params
	}
	var out struct {
		ID string `json:"id"`
	}
	postJSON(t, baseURL+"/datasets", body, http.StatusCreated, &out)
	if out.ID == "" {
		t.Fatal("register returned no id")
	}
	return out.ID
}

// libraryService mines tx directly with the library — the oracle the
// HTTP answers are compared against.
func libraryService(t *testing.T, tx [][]int, minsup, minconf float64) *closedrules.QueryService {
	t.Helper()
	d, err := closedrules.NewDataset(tx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := closedrules.MineContext(context.Background(), d, closedrules.WithMinSupport(minsup))
	if err != nil {
		t.Fatal(err)
	}
	qs, err := closedrules.NewQueryService(res, minconf)
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

func doDelete(t *testing.T, url string, wantCode int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("DELETE %s = %d, want %d", url, resp.StatusCode, wantCode)
	}
}

// TestTenantIsolation pins the core acceptance criterion: two tenants
// with different datasets and thresholds answer from their own
// snapshots, each matching a direct library computation.
func TestTenantIsolation(t *testing.T) {
	_, ts := newTenantServer(t, Config{})
	alpha := registerTenant(t, ts.URL, "alpha", classicTx,
		map[string]any{"minSupport": 0.4, "minConfidence": 0.5})
	beta := registerTenant(t, ts.URL, "beta", betaTx,
		map[string]any{"minSupport": 0.5, "minConfidence": 0.7})

	oracles := map[string]*closedrules.QueryService{
		alpha: libraryService(t, classicTx, 0.4, 0.5),
		beta:  libraryService(t, betaTx, 0.5, 0.7),
	}

	// Same itemset, different datasets: the counts must disagree and
	// each must match its oracle.
	for id, oracle := range oracles {
		var out supportJSON
		getJSON(t, ts.URL+"/datasets/"+id+"/support?items=0,1", http.StatusOK, &out)
		want, _, err := oracle.Support(context.Background(), closedrules.Items(0, 1))
		if err != nil {
			t.Fatal(err)
		}
		if out.Support != want {
			t.Errorf("tenant %s: supp({0,1}) = %d, want %d", id, out.Support, want)
		}
	}

	// Full basis listings at each tenant's own confidence threshold.
	for id, oracle := range oracles {
		for _, basis := range []string{"duquenne-guigues", "luxenburger"} {
			var out basisRulesJSON
			getJSON(t, ts.URL+"/datasets/"+id+"/rules?basis="+basis, http.StatusOK, &out)
			rs, err := oracle.BasisRules(context.Background(), basis, oracle.MinConfidence())
			if err != nil {
				t.Fatal(err)
			}
			if out.Count != rs.Len() {
				t.Errorf("tenant %s: %s basis has %d rules over HTTP, %d in the library",
					id, basis, out.Count, rs.Len())
			}
		}
	}

	// Recommendations come from the tenant's own rules.
	for id, oracle := range oracles {
		var out recommendJSON
		postJSON(t, ts.URL+"/datasets/"+id+"/recommend",
			map[string]any{"observed": []int{0}, "k": 5}, http.StatusOK, &out)
		want, err := oracle.Recommend(context.Background(), closedrules.Items(0), 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Rules) != len(want) {
			t.Fatalf("tenant %s: recommend returned %d rules, want %d", id, len(out.Rules), len(want))
		}
		for i := range want {
			if out.Rules[i].Support != want[i].Support ||
				out.Rules[i].Confidence != want[i].Confidence() {
				t.Errorf("tenant %s: recommendation %d = %+v, want %+v", id, i, out.Rules[i], want[i])
			}
		}
	}

	// The legacy routes and /datasets/default/... are the same tenant.
	var legacy, def supportJSON
	getJSON(t, ts.URL+"/support?items=1,4", http.StatusOK, &legacy)
	getJSON(t, ts.URL+"/datasets/"+DefaultTenantID+"/support?items=1,4", http.StatusOK, &def)
	if legacy.Support != def.Support || legacy.Frequent != def.Frequent {
		t.Errorf("legacy %+v != default tenant %+v", legacy, def)
	}
}

func TestTenantRegistryCRUD(t *testing.T) {
	_, ts := newTenantServer(t, Config{})
	id := registerTenant(t, ts.URL, "crud", classicTx, nil)

	var got datasetJSON
	getJSON(t, ts.URL+"/datasets/"+id, http.StatusOK, &got)
	if got.ID != id || got.Resident {
		t.Errorf("fresh dataset = %+v, want unmaterialized %q", got, id)
	}
	if got.Params.MinConfidence == nil || *got.Params.MinConfidence != tenant.DefaultMinConfidence {
		t.Errorf("default confidence not applied: %+v", got.Params)
	}

	var list listJSON
	getJSON(t, ts.URL+"/datasets", http.StatusOK, &list)
	if list.Count != 2 { // default + crud
		t.Errorf("list count = %d, want 2", list.Count)
	}

	// Duplicate ID conflicts; the pinned default cannot be deleted.
	postJSON(t, ts.URL+"/datasets", map[string]any{"id": id, "transactions": classicTx}, http.StatusConflict, nil)
	doDelete(t, ts.URL+"/datasets/"+DefaultTenantID, http.StatusForbidden)

	doDelete(t, ts.URL+"/datasets/"+id, http.StatusOK)
	getJSON(t, ts.URL+"/datasets/"+id, http.StatusNotFound, nil)
	doDelete(t, ts.URL+"/datasets/"+id, http.StatusNotFound)
	getJSON(t, ts.URL+"/datasets/"+id+"/support?items=0", http.StatusNotFound, nil)
}

func TestTenantRegisterRejections(t *testing.T) {
	_, ts := newTenantServer(t, Config{})
	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"no source", map[string]any{"id": "x"}, http.StatusBadRequest},
		{"two sources", map[string]any{"transactions": classicTx, "dat": "0 1"}, http.StatusBadRequest},
		{"transactions wrong type", map[string]any{"transactions": "nope"}, http.StatusBadRequest},
		{"negative item", map[string]any{"transactions": [][]int{{-1}}}, http.StatusBadRequest},
		{"bad id", map[string]any{"id": "../etc", "transactions": classicTx}, http.StatusBadRequest},
		{"bad refresh", map[string]any{"transactions": classicTx, "refresh": "nope"}, http.StatusBadRequest},
		{"refresh without path", map[string]any{"transactions": classicTx, "refresh": "30s"}, http.StatusBadRequest},
		{"path without data dir", map[string]any{"path": "/no/such/file.dat"}, http.StatusForbidden},
		{"support out of range", map[string]any{"transactions": classicTx,
			"params": map[string]any{"minSupport": 1.5}}, http.StatusUnprocessableEntity},
		{"unknown algorithm", map[string]any{"transactions": classicTx,
			"params": map[string]any{"algorithm": "no-such-miner"}}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			postJSON(t, ts.URL+"/datasets", tc.body, tc.want, nil)
		})
	}
}

// TestTenantPathRegistration pins the -tenant-data-dir gate: with a
// data directory configured, only files inside it are registrable —
// relative paths resolve under it, absolute paths must already point
// into it, and neither ".." nor a symlink can tunnel out.
func TestTenantPathRegistration(t *testing.T) {
	dir := t.TempDir()
	datBody := []byte("0 2 3\n1 2 4\n0 1 2 4\n1 4\n0 1 2 4\n")
	if err := os.WriteFile(filepath.Join(dir, "ok.dat"), datBody, 0o644); err != nil {
		t.Fatal(err)
	}
	outside := filepath.Join(t.TempDir(), "outside.dat")
	if err := os.WriteFile(outside, datBody, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink(outside, filepath.Join(dir, "link.dat")); err != nil {
		t.Fatal(err)
	}
	_, ts := newTenantServer(t, Config{TenantDataDir: dir})
	cases := []struct {
		name, path string
		want       int
	}{
		{"relative inside", "ok.dat", http.StatusCreated},
		{"absolute inside", filepath.Join(dir, "ok.dat"), http.StatusCreated},
		{"dotdot escape", "../outside.dat", http.StatusBadRequest},
		{"absolute outside", outside, http.StatusBadRequest},
		{"symlink escape", "link.dat", http.StatusBadRequest},
		{"missing file", "nope.dat", http.StatusBadRequest},
		{"directory", ".", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			postJSON(t, ts.URL+"/datasets", map[string]any{"path": tc.path}, tc.want, nil)
		})
	}
}

// waitJobDone polls GET /jobs/{id} until the job lands, failing the
// test on job failure or timeout, and returns the terminal record.
func waitJobDone(t *testing.T, baseURL, jobID string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var got jobJSON
		getJSON(t, baseURL+"/jobs/"+jobID, http.StatusOK, &got)
		switch got.State {
		case string(tenant.JobDone):
			return got
		case string(tenant.JobFailed):
			t.Fatalf("job failed: %s", got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRegisterWithInitialMine pins the initial-mine params fix:
// "mine": true must enqueue the job with the registered parameters —
// a zero Params would silently re-default the thresholds the 201
// response just reported.
func TestRegisterWithInitialMine(t *testing.T) {
	_, ts := newTenantServer(t, Config{})
	var out struct {
		ID  string `json:"id"`
		Job string `json:"job"`
	}
	postJSON(t, ts.URL+"/datasets", map[string]any{
		"id":           "eager",
		"transactions": classicTx,
		"mine":         true,
		"params":       map[string]any{"minSupport": 0.4, "minConfidence": 0.7},
	}, http.StatusCreated, &out)
	if out.Job == "" {
		t.Fatal("mine:true returned no job id")
	}
	job := waitJobDone(t, ts.URL, out.Job)
	if job.Params.MinSupport != 0.4 || job.Params.MinConfidence == nil || *job.Params.MinConfidence != 0.7 {
		t.Errorf("initial job params = %+v, want the registered 0.4/0.7", job.Params)
	}
	var ds datasetJSON
	getJSON(t, ts.URL+"/datasets/eager", http.StatusOK, &ds)
	if !ds.Resident || ds.Params.MinSupport != 0.4 || *ds.Params.MinConfidence != 0.7 {
		t.Errorf("dataset after initial mine = %+v, want resident at 0.4/0.7", ds)
	}
	// At minsup 0.4 the one-object itemset {0,2,3} is infrequent; had
	// the job re-defaulted to 0.1 it would be served as frequent.
	var sup supportJSON
	getJSON(t, ts.URL+"/datasets/eager/support?items=0,2,3", http.StatusOK, &sup)
	if sup.Frequent {
		t.Errorf("supp({0,2,3}) = %+v: served snapshot ignored the registered threshold", sup)
	}
}

// TestTenantMetricsUnknownIDNotMinted: IDs absent from the registry
// never mint tenant-labeled series, whatever the response status —
// admission-control 429s in particular are written before tenant
// resolution, so status-based filtering alone would let a scanner
// grow the exposition without bound during overload.
func TestTenantMetricsUnknownIDNotMinted(t *testing.T) {
	s, _ := newTenantServer(t, Config{})
	shed := s.instrumentTenant("support", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusTooManyRequests, "shed")
	})
	probe := func(id string) {
		req := httptest.NewRequest(http.MethodGet, "/datasets/"+id+"/support", nil)
		req.SetPathValue("id", id)
		shed(httptest.NewRecorder(), req)
	}
	probe("ghost")
	if got := s.tmetrics.snapshot(); len(got) != 0 {
		t.Errorf("unknown tenant minted series: %+v", got)
	}
	// A registered tenant's 429 is still labeled: the series set is
	// bounded by the registry, not by what scanners probe.
	probe(DefaultTenantID)
	got := s.tmetrics.snapshot()
	if len(got) != 1 || got[0].tenant != DefaultTenantID || got[0].errors != 1 {
		t.Errorf("registered tenant series = %+v, want one default-tenant error", got)
	}
}

// TestTenantMineJob pins the async-job acceptance criterion: the mine
// request returns 202 immediately and the job completes via
// GET /jobs/{id}, after which the tenant serves the new parameters.
func TestTenantMineJob(t *testing.T) {
	_, ts := newTenantServer(t, Config{})
	id := registerTenant(t, ts.URL, "jobs", classicTx,
		map[string]any{"minSupport": 0.4, "minConfidence": 0.5})

	var job jobJSON
	resp, err := http.Post(ts.URL+"/datasets/"+id+"/mine", "application/json",
		strings.NewReader(`{"params":{"minSupport":0.2,"minConfidence":0.3}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("mine = %d, want 202", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if job.Job == "" || job.Tenant != id {
		t.Fatalf("202 body = %+v", job)
	}

	if done := waitJobDone(t, ts.URL, job.Job); done.FinishedAt == "" {
		t.Errorf("done job missing finishedAt: %+v", done)
	}

	// The new thresholds are now the served configuration: at minsup
	// 0.2 the itemset {0,2,3} (a single object) becomes frequent.
	var sup supportJSON
	getJSON(t, ts.URL+"/datasets/"+id+"/support?items=0,2,3", http.StatusOK, &sup)
	if !sup.Frequent || sup.Support != 1 {
		t.Errorf("after re-mine at 0.2: supp({0,2,3}) = %+v, want frequent/1", sup)
	}
	var ds datasetJSON
	getJSON(t, ts.URL+"/datasets/"+id, http.StatusOK, &ds)
	if ds.Params.MinSupport != 0.2 {
		t.Errorf("params after job = %+v, want minSupport 0.2", ds.Params)
	}

	getJSON(t, ts.URL+"/jobs/j-doesnotexist", http.StatusNotFound, nil)
	postJSON(t, ts.URL+"/datasets/nope/mine", map[string]any{}, http.StatusNotFound, nil)
}

// TestTenantEvictionTransparent pins the tight-budget acceptance
// criterion: with a budget that holds only one tenant, alternating
// queries evict and transparently re-materialize — correct answers,
// no 5xx, and exactly one re-mine for the evicted tenant.
func TestTenantEvictionTransparent(t *testing.T) {
	_, ts := newTenantServer(t, Config{TenantMemoryBudget: 1})
	a := registerTenant(t, ts.URL, "evict-a", classicTx,
		map[string]any{"minSupport": 0.4, "minConfidence": 0.5})
	b := registerTenant(t, ts.URL, "evict-b", betaTx,
		map[string]any{"minSupport": 0.5, "minConfidence": 0.5})

	querySupport := func(id string, want int, items string) {
		t.Helper()
		var out supportJSON
		getJSON(t, ts.URL+"/datasets/"+id+"/support?items="+items, http.StatusOK, &out)
		if out.Support != want {
			t.Errorf("tenant %s: supp({%s}) = %d, want %d", id, items, out.Support, want)
		}
	}
	querySupport(a, 4, "1,4") // materializes a
	querySupport(b, 3, "0,1") // evicts a, materializes b
	querySupport(a, 4, "1,4") // re-mines a exactly once, evicts b

	var ds datasetJSON
	getJSON(t, ts.URL+"/datasets/"+a, http.StatusOK, &ds)
	if ds.Mines != 2 {
		t.Errorf("tenant a mines = %d, want 2 (initial + one re-mine)", ds.Mines)
	}
	var health healthJSON
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if health.Tenants == nil {
		t.Fatal("healthz has no tenants block in multi-tenant mode")
	}
	if health.Tenants.Evictions < 2 {
		t.Errorf("evictions = %d, want >= 2", health.Tenants.Evictions)
	}
	if health.Tenants.Registered != 3 || health.Tenants.Resident != 2 {
		// default (pinned, resident) + the just-mined tenant resident.
		t.Errorf("tenants block = %+v, want registered 3, resident 2", health.Tenants)
	}
}

func TestTenantMetricsExposition(t *testing.T) {
	_, ts := newTenantServer(t, Config{})
	id := registerTenant(t, ts.URL, "metrics", classicTx, nil)
	getJSON(t, ts.URL+"/datasets/"+id+"/support?items=2", http.StatusOK, nil)

	fetch := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	body := fetch()
	for _, want := range []string{
		"closedrules_tenants_registered 2",
		"closedrules_tenants_resident",
		"closedrules_tenant_pool_bytes",
		"closedrules_tenant_evictions_total 0",
		fmt.Sprintf("closedrules_tenant_http_requests_total{tenant=%q,endpoint=\"support\"} 1", id),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Deleting the tenant drops its labeled series.
	doDelete(t, ts.URL+"/datasets/"+id, http.StatusOK)
	if body = fetch(); strings.Contains(body, "tenant=\""+id+"\"") {
		t.Errorf("metrics still carry deleted tenant %s", id)
	}
}

// TestConfigValidate is the table test for the consolidated Config
// validation: every tenant knob rejects negatives explicitly, and
// defaults land where zero was passed.
func TestConfigValidate(t *testing.T) {
	bad := []struct {
		name string
		cfg  Config
	}{
		{"negative shutdown grace", Config{ShutdownGrace: -time.Second}},
		{"negative reload timeout", Config{ReloadTimeout: -time.Second}},
		{"negative max recommend", Config{MaxRecommend: -1}},
		{"negative max inflight", Config{MaxInFlight: -1}},
		{"negative batch size", Config{BatchSize: -1}},
		{"negative batch wait", Config{BatchMaxWait: -time.Millisecond}},
		{"negative max tenants", Config{MaxTenants: -1}},
		{"negative tenant budget", Config{TenantMemoryBudget: -1}},
		{"negative mine workers", Config{MineWorkers: -1}},
		{"negative mine timeout", Config{MineTimeout: -time.Second}},
		// Tenant knobs are validated even with MultiTenant off, so a
		// typo does not surface only when the mode is later enabled.
		{"negative budget single-tenant", Config{MultiTenant: false, TenantMemoryBudget: -5}},
		{"tenant data dir missing", Config{TenantDataDir: "/no/such/closedrules-data-dir"}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			if err := cfg.validate(); err == nil {
				t.Errorf("validate(%+v) = nil, want error", tc.cfg)
			}
		})
	}

	var cfg Config
	if err := cfg.validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if cfg.RequestTimeout != DefaultRequestTimeout ||
		cfg.ShutdownGrace != DefaultShutdownGrace ||
		cfg.MaxRecommend != DefaultMaxRecommend ||
		cfg.MaxTenants != DefaultMaxTenants ||
		cfg.TenantMemoryBudget != DefaultTenantMemoryBudget ||
		cfg.MineWorkers != DefaultMineWorkers {
		t.Errorf("defaults not applied: %+v", cfg)
	}

	// TenantDataDir must name an existing directory; a regular file is
	// rejected and a relative path is stored absolute.
	dir := t.TempDir()
	file := filepath.Join(dir, "f")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fileCfg := Config{TenantDataDir: file}
	if err := fileCfg.validate(); err == nil {
		t.Error("TenantDataDir pointing at a file accepted")
	}
	dirCfg := Config{TenantDataDir: dir}
	if err := dirCfg.validate(); err != nil {
		t.Fatalf("TenantDataDir %s rejected: %v", dir, err)
	}
	if !filepath.IsAbs(dirCfg.TenantDataDir) {
		t.Errorf("TenantDataDir not stored absolute: %s", dirCfg.TenantDataDir)
	}
}

// TestSingleTenantHas404Datasets: without MultiTenant the registry
// routes simply do not exist.
func TestSingleTenantNoRegistry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	getJSON(t, ts.URL+"/datasets", http.StatusNotFound, nil)
	var health healthJSON
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if health.Tenants != nil {
		t.Errorf("single-tenant healthz has a tenants block: %+v", health.Tenants)
	}
}
