package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"closedrules"
	"closedrules/server"
)

// serveClassic mines the paper's running example and exposes it over
// an in-process HTTP server, returning its base URL.
func serveClassic() (string, func()) {
	ctx := context.Background()
	ds, _ := closedrules.NewDataset([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	res, _ := closedrules.MineContext(ctx, ds, closedrules.WithMinSupport(0.4))
	qs, _ := closedrules.NewQueryService(res, 0.5)
	srv, _ := server.New(qs, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	return ts.URL, ts.Close
}

// Example shows the HTTP client path for support queries: mine, serve,
// then ask for supp({B, E}) over the wire.
func Example() {
	url, stop := serveClassic()
	defer stop()

	resp, err := http.Get(url + "/support?items=1,4")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var out struct {
		Support  int  `json:"support"`
		Frequent bool `json:"frequent"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	fmt.Println(out.Support, out.Frequent)
	// Output:
	// 4 true
}

// ExampleServer_Handler shows the recommendation client path: POST an
// observed basket and read back the ranked basis rules.
func ExampleServer_Handler() {
	url, stop := serveClassic()
	defer stop()

	body, _ := json.Marshal(map[string]any{"observed": []int{1}, "k": 1})
	resp, err := http.Post(url+"/recommend", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var out struct {
		Rules []struct {
			Consequent []int   `json:"consequent"`
			Confidence float64 `json:"confidence"`
		} `json:"rules"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	for _, r := range out.Rules {
		fmt.Printf("observed {1}: recommend %v (conf %.3f)\n", r.Consequent, r.Confidence)
	}
	// Output:
	// observed {1}: recommend [4] (conf 1.000)
}
