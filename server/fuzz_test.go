package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"closedrules"
)

// The fuzz targets drive the HTTP parameter parsers — /support and
// /confidence itemset lists, /rules basis + minconf, the /recommend
// JSON body — through the real handlers and assert the error
// contract: malformed input is 400 (unparseable) or 422 (well-formed
// but underivable), valid input is 200, and nothing panics or leaks a
// 5xx. `go test` runs the seed corpus; `go test -fuzz=FuzzX ./server`
// explores further.

// fuzzServer builds one shared server for all fuzz iterations (mining
// per-iteration would drown the fuzzer in setup).
var fuzzServer = sync.OnceValue(func() *Server {
	tx := [][]int{{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4}}
	d, err := closedrules.NewDataset(tx)
	if err != nil {
		panic(err)
	}
	res, err := closedrules.MineContext(context.Background(), d, closedrules.WithMinSupport(0.4))
	if err != nil {
		panic(err)
	}
	qs, err := closedrules.NewQueryService(res, 0.5)
	if err != nil {
		panic(err)
	}
	return New(qs, Config{})
})

// fuzzGet runs one GET through the handler without a network and
// fails the test on any status outside allowed.
func fuzzGet(t *testing.T, path string, query url.Values, allowed ...int) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.URL.RawQuery = query.Encode()
	rec := httptest.NewRecorder()
	fuzzServer().Handler().ServeHTTP(rec, req)
	for _, code := range allowed {
		if rec.Code == code {
			return
		}
	}
	t.Errorf("GET %s?%s = %d, want one of %v; body: %s", path, query.Encode(), rec.Code, allowed, rec.Body.String())
}

func FuzzParseItems(f *testing.F) {
	for _, seed := range []string{"1,2", "", "a", "-1", ",", "0", " 3 , 4 ", "1,,2", "9999999999999999999", "1\x00"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		items, err := parseItems(raw)
		if err == nil {
			for _, it := range items {
				if it < 0 {
					t.Errorf("parseItems(%q) accepted negative item %d", raw, it)
				}
			}
		}
	})
}

func FuzzSupportParams(f *testing.F) {
	for _, seed := range []string{"1,2", "", "x", "-3", "0,1,2,4", "3", "1," + strings.Repeat("2,", 100)} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, items string) {
		q := url.Values{}
		if items != "" {
			q.Set("items", items)
		}
		fuzzGet(t, "/support", q, http.StatusOK, http.StatusBadRequest)
	})
}

func FuzzConfidenceParams(f *testing.F) {
	f.Add("2", "0")
	f.Add("", "")
	f.Add("1", "1,4")
	f.Add("-1", "x")
	f.Add("3", "0")
	f.Fuzz(func(t *testing.T, antecedent, consequent string) {
		q := url.Values{}
		if antecedent != "" {
			q.Set("antecedent", antecedent)
		}
		if consequent != "" {
			q.Set("consequent", consequent)
		}
		fuzzGet(t, "/confidence", q, http.StatusOK, http.StatusBadRequest, http.StatusUnprocessableEntity)
	})
}

func FuzzRulesParams(f *testing.F) {
	f.Add("luxenburger", "0.5", "", "")
	f.Add("", "", "2", "0")
	f.Add("nope", "0.5", "", "")
	f.Add("luxenburger", "NaN", "", "")
	f.Add("luxenburger", "-0.1", "", "")
	f.Add("duquenne-guigues", "2", "1", "4")
	f.Add("", "", "3", "0")
	f.Fuzz(func(t *testing.T, basis, minconf, antecedent, consequent string) {
		q := url.Values{}
		for k, v := range map[string]string{"basis": basis, "minconf": minconf, "antecedent": antecedent, "consequent": consequent} {
			if v != "" {
				q.Set(k, v)
			}
		}
		fuzzGet(t, "/rules", q, http.StatusOK, http.StatusBadRequest, http.StatusUnprocessableEntity)
	})
}

func FuzzRecommendBody(f *testing.F) {
	for _, seed := range [][]byte{
		[]byte(`{"observed":[1],"k":3}`),
		[]byte(`{}`),
		[]byte(``),
		[]byte(`{"observed":[-1],"k":3}`),
		[]byte(`{"observed":[1],"k":-3}`),
		[]byte(`{"observed":"no"}`),
		[]byte(`[1,2,3]`),
		[]byte(`{"observed":[1],"k":999999999}`),
		[]byte("{\"observed\":[1],\"k\":3}garbage"),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/recommend", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		fuzzServer().Handler().ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusUnprocessableEntity:
		default:
			t.Errorf("POST /recommend %q = %d, want 200/400/422; body: %s", body, rec.Code, rec.Body.String())
		}
	})
}
