package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"closedrules"
)

// The fuzz targets drive the HTTP parameter parsers — /support and
// /confidence itemset lists, /rules basis + minconf, the /recommend
// JSON body — through the real handlers and assert the error
// contract: malformed input is 400 (unparseable) or 422 (well-formed
// but underivable), valid input is 200, and nothing panics or leaks a
// 5xx. `go test` runs the seed corpus; `go test -fuzz=FuzzX ./server`
// explores further.

// fuzzServer builds one shared server for all fuzz iterations (mining
// per-iteration would drown the fuzzer in setup).
var fuzzServer = sync.OnceValue(func() *Server {
	tx := [][]int{{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4}}
	d, err := closedrules.NewDataset(tx)
	if err != nil {
		panic(err)
	}
	res, err := closedrules.MineContext(context.Background(), d, closedrules.WithMinSupport(0.4))
	if err != nil {
		panic(err)
	}
	qs, err := closedrules.NewQueryService(res, 0.5)
	if err != nil {
		panic(err)
	}
	s, err := New(qs, Config{})
	if err != nil {
		panic(err)
	}
	return s
})

// fuzzGet runs one GET through the handler without a network and
// fails the test on any status outside allowed.
func fuzzGet(t *testing.T, path string, query url.Values, allowed ...int) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.URL.RawQuery = query.Encode()
	rec := httptest.NewRecorder()
	fuzzServer().Handler().ServeHTTP(rec, req)
	for _, code := range allowed {
		if rec.Code == code {
			return
		}
	}
	t.Errorf("GET %s?%s = %d, want one of %v; body: %s", path, query.Encode(), rec.Code, allowed, rec.Body.String())
}

func FuzzParseItems(f *testing.F) {
	for _, seed := range []string{"1,2", "", "a", "-1", ",", "0", " 3 , 4 ", "1,,2", "9999999999999999999", "1\x00"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		items, err := parseItems(raw)
		if err == nil {
			for _, it := range items {
				if it < 0 {
					t.Errorf("parseItems(%q) accepted negative item %d", raw, it)
				}
			}
		}
	})
}

func FuzzSupportParams(f *testing.F) {
	for _, seed := range []string{"1,2", "", "x", "-3", "0,1,2,4", "3", "1," + strings.Repeat("2,", 100)} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, items string) {
		q := url.Values{}
		if items != "" {
			q.Set("items", items)
		}
		fuzzGet(t, "/support", q, http.StatusOK, http.StatusBadRequest)
	})
}

func FuzzConfidenceParams(f *testing.F) {
	f.Add("2", "0")
	f.Add("", "")
	f.Add("1", "1,4")
	f.Add("-1", "x")
	f.Add("3", "0")
	f.Fuzz(func(t *testing.T, antecedent, consequent string) {
		q := url.Values{}
		if antecedent != "" {
			q.Set("antecedent", antecedent)
		}
		if consequent != "" {
			q.Set("consequent", consequent)
		}
		fuzzGet(t, "/confidence", q, http.StatusOK, http.StatusBadRequest, http.StatusUnprocessableEntity)
	})
}

func FuzzRulesParams(f *testing.F) {
	f.Add("luxenburger", "0.5", "", "")
	f.Add("", "", "2", "0")
	f.Add("nope", "0.5", "", "")
	f.Add("luxenburger", "NaN", "", "")
	f.Add("luxenburger", "-0.1", "", "")
	f.Add("duquenne-guigues", "2", "1", "4")
	f.Add("", "", "3", "0")
	f.Fuzz(func(t *testing.T, basis, minconf, antecedent, consequent string) {
		q := url.Values{}
		for k, v := range map[string]string{"basis": basis, "minconf": minconf, "antecedent": antecedent, "consequent": consequent} {
			if v != "" {
				q.Set(k, v)
			}
		}
		fuzzGet(t, "/rules", q, http.StatusOK, http.StatusBadRequest, http.StatusUnprocessableEntity)
	})
}

func FuzzRecommendBody(f *testing.F) {
	for _, seed := range [][]byte{
		[]byte(`{"observed":[1],"k":3}`),
		[]byte(`{}`),
		[]byte(``),
		[]byte(`{"observed":[-1],"k":3}`),
		[]byte(`{"observed":[1],"k":-3}`),
		[]byte(`{"observed":"no"}`),
		[]byte(`[1,2,3]`),
		[]byte(`{"observed":[1],"k":999999999}`),
		[]byte("{\"observed\":[1],\"k\":3}garbage"),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/recommend", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		fuzzServer().Handler().ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusUnprocessableEntity:
		default:
			t.Errorf("POST /recommend %q = %d, want 200/400/422; body: %s", body, rec.Code, rec.Body.String())
		}
	})
}

// fuzzTenantServer is the shared multi-tenant server behind the
// registry/job fuzz targets.
var fuzzTenantServer = sync.OnceValue(func() *Server {
	tx := [][]int{{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4}}
	d, err := closedrules.NewDataset(tx)
	if err != nil {
		panic(err)
	}
	res, err := closedrules.MineContext(context.Background(), d, closedrules.WithMinSupport(0.4))
	if err != nil {
		panic(err)
	}
	qs, err := closedrules.NewQueryService(res, 0.5)
	if err != nil {
		panic(err)
	}
	s, err := New(qs, Config{MultiTenant: true})
	if err != nil {
		panic(err)
	}
	return s
})

// FuzzRegisterBody drives the POST /datasets upload parser with
// arbitrary bytes: the contract is 2xx/4xx only — no panic, no 5xx.
// Successfully minted tenants are deleted again so the pool does not
// fill up across iterations.
func FuzzRegisterBody(f *testing.F) {
	for _, seed := range [][]byte{
		[]byte(`{"transactions":[[0,1],[1,2]]}`),
		[]byte(`{"id":"t1","transactions":[[0]]}`),
		[]byte(`{"dat":"0 1\n1 2\n"}`),
		[]byte(`{"path":"/no/such/file"}`),
		[]byte(`{"transactions":[[0]],"dat":"0"}`),
		[]byte(`{}`),
		[]byte(``),
		[]byte(`{"transactions":[[0]],"params":{"minSupport":2}}`),
		[]byte(`{"transactions":[[0]],"refresh":"-1s"}`),
		[]byte(`{"transactions":[[-1]]}`),
		[]byte(`{"id":"../../etc","transactions":[[0]]}`),
		[]byte(`{"transactions":[[0]],"mine":true}`),
		[]byte(`not json`),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/datasets", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h := fuzzTenantServer().Handler()
		h.ServeHTTP(rec, req)
		if rec.Code < 200 || rec.Code >= 500 || (rec.Code >= 300 && rec.Code < 400) {
			t.Fatalf("POST /datasets %q = %d, want 2xx/4xx; body: %s", body, rec.Code, rec.Body.String())
		}
		if rec.Code == http.StatusCreated {
			var resp struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.ID == "" {
				t.Fatalf("201 with unusable body %q: %v", rec.Body.String(), err)
			}
			del := httptest.NewRequest(http.MethodDelete, "/datasets/"+url.PathEscape(resp.ID), nil)
			drec := httptest.NewRecorder()
			h.ServeHTTP(drec, del)
			if drec.Code != http.StatusOK {
				t.Fatalf("cleanup DELETE %s = %d", resp.ID, drec.Code)
			}
		}
	})
}

// FuzzTenantPaths drives arbitrary IDs through the {id} routes — the
// tenant-id and job-id path parsers. Escaping the fuzz input means
// arbitrary decoded strings reach PathValue; the mux itself may still
// answer an unclean path with its canonical 301 before the handler
// runs, which is part of the routing contract, not an error.
func FuzzTenantPaths(f *testing.F) {
	for _, seed := range []string{"default", "", "..", "a/b", "j-00", "t-ffffffffffffffff",
		strings.Repeat("x", 200), "%2e%2e", "id with space", "\x00", "ид"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, id string) {
		h := fuzzTenantServer().Handler()
		for _, path := range []string{
			"/datasets/" + url.PathEscape(id),
			"/datasets/" + url.PathEscape(id) + "/support?items=2",
			"/jobs/" + url.PathEscape(id),
		} {
			req := httptest.NewRequest(http.MethodGet, path, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			ok := (rec.Code >= 200 && rec.Code < 300) ||
				(rec.Code >= 400 && rec.Code < 500) ||
				rec.Code == http.StatusMovedPermanently
			if !ok {
				t.Fatalf("GET %s = %d; body: %s", path, rec.Code, rec.Body.String())
			}
		}
	})
}
