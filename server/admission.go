package server

import (
	"net/http"
	"sync/atomic"
)

// limiter is one endpoint's admission gate: a fixed pool of in-flight
// slots held for the life of a request. Acquire never blocks — a
// request that finds no free slot is shed immediately with 429 (and a
// Retry-After hint) instead of queueing into collapse, so overload
// costs each rejected client microseconds rather than a timeout and
// the server keeps its latency bounded for the requests it admits.
type limiter struct {
	slots chan struct{}
	shed  atomic.Uint64
}

// newLimiter builds a gate admitting at most n concurrent requests.
func newLimiter(n int) *limiter {
	return &limiter{slots: make(chan struct{}, n)}
}

// tryAcquire claims a slot, or counts and reports a shed.
func (l *limiter) tryAcquire() bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		l.shed.Add(1)
		return false
	}
}

// release frees a slot claimed by tryAcquire.
func (l *limiter) release() { <-l.slots }

// inFlight is the number of requests currently holding slots.
func (l *limiter) inFlight() int { return len(l.slots) }

// shedCount is the number of requests rejected so far.
func (l *limiter) shedCount() uint64 { return l.shed.Load() }

// retryAfterSeconds is the Retry-After hint on a 429: query latencies
// are milliseconds, so by the earliest moment a client can legally
// retry the burst that shed it has drained.
const retryAfterSeconds = "1"

// admit wraps a query handler with the endpoint's admission gate; a
// nil limiter (admission disabled) passes the handler through as-is.
func (s *Server) admit(l *limiter, h http.HandlerFunc) http.HandlerFunc {
	if l == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !l.tryAcquire() {
			w.Header().Set("Retry-After", retryAfterSeconds)
			writeError(w, http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
		defer l.release()
		h(w, r)
	}
}
