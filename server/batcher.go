package server

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"closedrules"
)

// DefaultBatchMaxWait is how long an under-filled recommend batch
// waits for company before flushing when Config.BatchMaxWait is 0.
const DefaultBatchMaxWait = 2 * time.Millisecond

// errBatcherStopped answers requests the batcher accepted but could
// not flush before shutdown; the handler maps it to 503.
var errBatcherStopped = errors.New("server: recommend batcher stopped")

// batchAnswer is one item's response from a flush: a ranking measured
// against the batch's snapshot, or the error that ended it.
type batchAnswer struct {
	rules []closedrules.Rule
	numTx int
	err   error
}

// batchItem carries one recommend call through the batcher: the
// request, its enqueue time (per-item end-to-end timing), and a
// buffered response channel so a flush never blocks on a caller that
// gave up waiting.
type batchItem struct {
	req      closedrules.RecommendRequest
	enqueued time.Time
	done     chan batchAnswer
}

// batcherStats are the batcher's operational counters, all atomics so
// the flush loop and the metrics scraper never share a lock.
type batcherStats struct {
	flushes        atomic.Uint64 // batches flushed
	items          atomic.Uint64 // items flushed (answered or errored)
	coalesced      atomic.Uint64 // items answered by another item's lookup
	stopErrors     atomic.Uint64 // items errored by shutdown drain
	queueWaitNanos atomic.Uint64 // cumulative per-item enqueue→flush wait
	filling        atomic.Uint64 // size of the batch being collected right now
}

// flushFunc is the batch read a flush runs; production wires
// QueryService.RecommendBatch, tests inject blocking doubles.
type flushFunc func(ctx context.Context, reqs []closedrules.RecommendRequest) ([]closedrules.RecommendBatchResult, int, error)

// recommendBatcher coalesces concurrent POST /recommend calls into
// single snapshot reads — the MerkleBatcher idiom applied to the
// serving hot path: a bounded input channel, a single collector
// goroutine that flushes when the batch is full or the oldest item
// has waited maxWait, and per-item response channels. Items in one
// flush sharing an (observed, k) key are answered by one lookup, and
// the whole batch reads one snapshot (one atomic pointer load and one
// cache-stripe walk instead of N).
//
// Shutdown is two-phase: the batch being collected when Stop lands is
// still flushed (accepted work is finished), while items still queued
// behind it are errored with errBatcherStopped rather than leaked —
// every accepted item gets exactly one answer.
type recommendBatcher struct {
	flush   flushFunc
	size    int           // flush when a batch reaches this many items
	maxWait time.Duration // flush when the oldest item has waited this long
	timeout time.Duration // per-flush deadline (0 = none)

	in   chan *batchItem
	stop chan struct{}
	done chan struct{}

	// mu fences enqueue against Stop: Do enqueues under RLock after
	// checking stopped, Stop flips stopped under Lock, so once Stop
	// holds the lock no new item can slip past the shutdown drain.
	mu      sync.RWMutex
	stopped bool

	stopOnce sync.Once
	stats    batcherStats
}

// newRecommendBatcher builds and starts a batcher flushing through fn.
func newRecommendBatcher(fn flushFunc, size int, maxWait, timeout time.Duration) *recommendBatcher {
	if size < 1 {
		size = 1
	}
	if maxWait <= 0 {
		maxWait = DefaultBatchMaxWait
	}
	queueCap := 2 * size
	if queueCap < 16 {
		queueCap = 16
	}
	b := &recommendBatcher{
		flush:   fn,
		size:    size,
		maxWait: maxWait,
		timeout: timeout,
		in:      make(chan *batchItem, queueCap),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go b.run()
	return b
}

// Do submits one recommend request and waits for its batch to flush.
// The context only bounds this caller's wait (and an enqueue into a
// full queue); the flush itself runs under the batcher's own timeout
// so one impatient client cannot cancel a batch other clients share.
func (b *recommendBatcher) Do(ctx context.Context, req closedrules.RecommendRequest) ([]closedrules.Rule, int, error) {
	it := &batchItem{req: req, enqueued: time.Now(), done: make(chan batchAnswer, 1)}
	if err := b.enqueue(ctx, it); err != nil {
		return nil, 0, err
	}
	select {
	case ans := <-it.done:
		return ans.rules, ans.numTx, ans.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// enqueue hands the item to the collector, failing fast once Stop has
// begun. Holding the read lock across the send is safe: Stop cannot
// close b.stop until every in-flight enqueue releases the lock, and
// the collector keeps draining b.in until then, so the send always
// makes progress.
func (b *recommendBatcher) enqueue(ctx context.Context, it *batchItem) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.stopped {
		return errBatcherStopped
	}
	select {
	case b.in <- it:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stop shuts the batcher down: the batch being collected is flushed,
// queued items behind it are errored, and the collector goroutine
// exits before Stop returns. Safe to call more than once.
func (b *recommendBatcher) Stop() {
	b.stopOnce.Do(func() {
		b.mu.Lock()
		b.stopped = true
		close(b.stop)
		b.mu.Unlock()
		<-b.done
	})
}

// run is the collector loop: one goroutine owns batch assembly, so
// batching needs no locks on the hot path.
func (b *recommendBatcher) run() {
	defer close(b.done)
	for {
		// Poll stop first so a closed stop channel wins over queued
		// items: after Stop, backlog is drained with errors, not served.
		select {
		case <-b.stop:
			b.drainErr()
			return
		default:
		}
		select {
		case it := <-b.in:
			b.flushBatch(b.fill(it))
		case <-b.stop:
			b.drainErr()
			return
		}
	}
}

// fill collects items for one batch: it returns when the batch is
// full, maxWait has elapsed since the first item, or Stop lands (the
// partial batch is still flushed — shutdown drain).
func (b *recommendBatcher) fill(first *batchItem) []*batchItem {
	batch := append(make([]*batchItem, 0, b.size), first)
	b.stats.filling.Store(1)
	defer b.stats.filling.Store(0)
	timer := time.NewTimer(b.maxWait)
	defer timer.Stop()
	for len(batch) < b.size {
		select {
		case it := <-b.in:
			batch = append(batch, it)
			b.stats.filling.Store(uint64(len(batch)))
		case <-timer.C:
			return batch
		case <-b.stop:
			return batch
		}
	}
	return batch
}

// flushBatch answers every item of one batch from one batch read,
// deduplicating identical (observed, k) keys so coalesced items share
// a single lookup.
func (b *recommendBatcher) flushBatch(batch []*batchItem) {
	start := time.Now()
	// Group items by coalescing key; groups[i] answers from reqs[i].
	reqs := make([]closedrules.RecommendRequest, 0, len(batch))
	groups := make([][]*batchItem, 0, len(batch))
	byKey := make(map[string]int, len(batch))
	for _, it := range batch {
		b.stats.queueWaitNanos.Add(uint64(start.Sub(it.enqueued)))
		key := it.req.Observed.Key() + "#" + strconv.Itoa(it.req.K)
		idx, ok := byKey[key]
		if !ok {
			idx = len(reqs)
			byKey[key] = idx
			reqs = append(reqs, it.req)
			groups = append(groups, nil)
		} else {
			b.stats.coalesced.Add(1)
		}
		groups[idx] = append(groups[idx], it)
	}

	ctx := context.Background()
	if b.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.timeout)
		defer cancel()
	}
	results, numTx, err := b.flush(ctx, reqs)

	for idx, group := range groups {
		for n, it := range group {
			ans := batchAnswer{err: err}
			if err == nil {
				res := results[idx]
				ans = batchAnswer{rules: res.Rules, numTx: numTx, err: res.Err}
				if n > 0 && res.Err == nil {
					// Fan-outs past the first get their own copy so no
					// two callers share a mutable slice.
					ans.rules = append([]closedrules.Rule(nil), res.Rules...)
				}
			}
			it.done <- ans
		}
	}
	b.stats.flushes.Add(1)
	b.stats.items.Add(uint64(len(batch)))
}

// drainErr errors every item still queued at shutdown. It runs after
// stopped is set under the write lock, so no new enqueue can race in;
// once the queue reads empty it stays empty.
func (b *recommendBatcher) drainErr() {
	for {
		select {
		case it := <-b.in:
			it.done <- batchAnswer{err: errBatcherStopped}
			b.stats.stopErrors.Add(1)
			b.stats.items.Add(1)
		default:
			return
		}
	}
}

// queueDepth is the number of items accepted but not yet collected
// into a batch — the metrics gauge.
func (b *recommendBatcher) queueDepth() int { return len(b.in) }
