package closedrules

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestRegistryHasAllBuiltins(t *testing.T) {
	wantClosed := []string{"aclose", "charm", "close", "pcharm", "titanic"}
	if got := ClosedMiners(); !reflect.DeepEqual(got, wantClosed) {
		t.Errorf("ClosedMiners() = %v, want %v", got, wantClosed)
	}
	wantFrequent := []string{"apriori", "declat", "eclat", "fpgrowth", "pascal", "peclat"}
	if got := FrequentMiners(); !reflect.DeepEqual(got, wantFrequent) {
		t.Errorf("FrequentMiners() = %v, want %v", got, wantFrequent)
	}
}

func TestRegistryLookup(t *testing.T) {
	// Canonical names, hyphenated and cased variants all resolve.
	for _, name := range []string{"close", "a-close", "aclose", "A-Close", "CHARM", "Titanic"} {
		if _, err := LookupClosedMiner(name); err != nil {
			t.Errorf("LookupClosedMiner(%q): %v", name, err)
		}
	}
	for _, name := range []string{"apriori", "eclat", "dEclat", "FPGrowth", "fp-growth", "pascal"} {
		if _, err := LookupFrequentMiner(name); err != nil {
			t.Errorf("LookupFrequentMiner(%q): %v", name, err)
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := LookupClosedMiner("bogus")
	if err == nil {
		t.Fatal("unknown closed miner accepted")
	}
	if !strings.Contains(err.Error(), "close") || !strings.Contains(err.Error(), "titanic") {
		t.Errorf("error does not list registered miners: %v", err)
	}
	if _, err := LookupFrequentMiner("bogus"); err == nil {
		t.Fatal("unknown frequent miner accepted")
	}
	// The same error surfaces from the mining entry points.
	d := classic(t)
	if _, err := MineContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm("bogus")); err == nil {
		t.Error("MineContext with unknown algorithm accepted")
	}
	if _, err := MineFrequentContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm("bogus")); err == nil {
		t.Error("MineFrequentContext with unknown algorithm accepted")
	}
	// A closed miner is not a frequent miner and vice versa.
	if _, err := MineFrequentContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm("charm")); err == nil {
		t.Error("closed miner accepted as frequent miner")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	m, err := LookupClosedMiner("close")
	if err != nil {
		t.Fatal(err)
	}
	RegisterClosedMiner("close", m)
}

func TestMineContextAllClosedMinersAgree(t *testing.T) {
	d := classic(t)
	var reference []ClosedItemset
	for i, name := range ClosedMiners() {
		res, err := MineContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.MinerName() != name {
			t.Errorf("MinerName() = %q, want %q", res.MinerName(), name)
		}
		all := res.ClosedItemsets()
		if i == 0 {
			reference = all
			continue
		}
		if len(all) != len(reference) {
			t.Fatalf("%s: |FC| = %d, want %d", name, len(all), len(reference))
		}
		for j := range all {
			if !all[j].Items.Equal(reference[j].Items) || all[j].Support != reference[j].Support {
				t.Errorf("%s: FC[%d] = %v/%d, want %v/%d", name,
					j, all[j].Items, all[j].Support, reference[j].Items, reference[j].Support)
			}
		}
	}
}

func TestMineFrequentContextAllMinersAgree(t *testing.T) {
	d := classic(t)
	var reference []CountedItemset
	for i, name := range FrequentMiners() {
		fi, err := MineFrequentContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if i == 0 {
			reference = fi
			continue
		}
		if len(fi) != len(reference) {
			t.Fatalf("%s: |FI| = %d, want %d", name, len(fi), len(reference))
		}
		for j := range fi {
			if !fi[j].Items.Equal(reference[j].Items) || fi[j].Support != reference[j].Support {
				t.Errorf("%s: FI[%d] = %v, want %v", name, j, fi[j], reference[j])
			}
		}
	}
}

func TestTracksGenerators(t *testing.T) {
	d := classic(t)
	for name, want := range map[string]bool{"close": true, "a-close": true, "titanic": true, "charm": false} {
		res, err := MineContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm(name))
		if err != nil {
			t.Fatal(err)
		}
		if res.TracksGenerators() != want {
			t.Errorf("%s: TracksGenerators() = %v, want %v", name, res.TracksGenerators(), want)
		}
		_, err = res.GenericBasis()
		if want && err != nil {
			t.Errorf("%s: GenericBasis: %v", name, err)
		}
		if !want && err == nil {
			t.Errorf("%s: GenericBasis accepted without generators", name)
		}
	}
}

func TestMineFrequentWrappersIgnoreAlgorithmField(t *testing.T) {
	// The legacy MineFrequent* functions never looked at
	// Options.Algorithm; the compatibility wrappers must not start
	// rejecting values the old code accepted.
	d := classic(t)
	fi, err := MineFrequentEclat(d, Options{MinSupport: 0.4, Algorithm: Algorithm(7)})
	if err != nil {
		t.Fatalf("MineFrequentEclat with stray Algorithm: %v", err)
	}
	if len(fi) != 15 {
		t.Errorf("|FI| = %d, want 15", len(fi))
	}
	// Mine, by contrast, always validated it.
	if _, err := Mine(d, Options{MinSupport: 0.4, Algorithm: Algorithm(7)}); err == nil {
		t.Error("Mine with unknown Algorithm accepted")
	}
}

func TestMineOptionErrors(t *testing.T) {
	d := classic(t)
	ctx := context.Background()
	cases := []struct {
		name string
		opts []MineOption
	}{
		{"no threshold", nil},
		{"zero min support", []MineOption{WithMinSupport(0)}},
		{"min support above one", []MineOption{WithMinSupport(1.5)}},
		{"absolute below one", []MineOption{WithAbsoluteMinSupport(0)}},
		{"empty algorithm", []MineOption{WithMinSupport(0.4), WithAlgorithm("")}},
		{"nil option", []MineOption{nil}},
	}
	for _, tc := range cases {
		if _, err := MineContext(ctx, d, tc.opts...); err == nil {
			t.Errorf("MineContext %s: no error", tc.name)
		}
		if _, err := MineFrequentContext(ctx, d, tc.opts...); err == nil {
			t.Errorf("MineFrequentContext %s: no error", tc.name)
		}
	}
	// Absolute threshold takes precedence over relative.
	res, err := MineContext(ctx, d, WithMinSupport(0.99), WithAbsoluteMinSupport(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.MinSupport() != 2 {
		t.Errorf("MinSupport() = %d, want 2", res.MinSupport())
	}
}
