package closedrules

import (
	"context"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestRegistryHasAllBuiltins(t *testing.T) {
	wantClosed := []string{"aclose", "charm", "close", "genclose", "pcharm", "pgenclose", "titanic"}
	if got := ClosedMiners(); !reflect.DeepEqual(got, wantClosed) {
		t.Errorf("ClosedMiners() = %v, want %v", got, wantClosed)
	}
	wantFrequent := []string{"apriori", "declat", "eclat", "fpgrowth", "pascal", "pdeclat", "peclat"}
	if got := FrequentMiners(); !reflect.DeepEqual(got, wantFrequent) {
		t.Errorf("FrequentMiners() = %v, want %v", got, wantFrequent)
	}
}

func TestRegistryLookup(t *testing.T) {
	// Canonical names, hyphenated and cased variants all resolve.
	for _, name := range []string{"close", "a-close", "aclose", "A-Close", "CHARM", "Titanic"} {
		if _, err := LookupClosedMiner(name); err != nil {
			t.Errorf("LookupClosedMiner(%q): %v", name, err)
		}
	}
	for _, name := range []string{"apriori", "eclat", "dEclat", "FPGrowth", "fp-growth", "pascal"} {
		if _, err := LookupFrequentMiner(name); err != nil {
			t.Errorf("LookupFrequentMiner(%q): %v", name, err)
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := LookupClosedMiner("bogus")
	if err == nil {
		t.Fatal("unknown closed miner accepted")
	}
	if !strings.Contains(err.Error(), "close") || !strings.Contains(err.Error(), "titanic") {
		t.Errorf("error does not list registered miners: %v", err)
	}
	if _, err := LookupFrequentMiner("bogus"); err == nil {
		t.Fatal("unknown frequent miner accepted")
	}
	// The same error surfaces from the mining entry points.
	d := classic(t)
	if _, err := MineContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm("bogus")); err == nil {
		t.Error("MineContext with unknown algorithm accepted")
	}
	if _, err := MineFrequentContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm("bogus")); err == nil {
		t.Error("MineFrequentContext with unknown algorithm accepted")
	}
	// A closed miner is not a frequent miner and vice versa.
	if _, err := MineFrequentContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm("charm")); err == nil {
		t.Error("closed miner accepted as frequent miner")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	m, err := LookupClosedMiner("close")
	if err != nil {
		t.Fatal(err)
	}
	RegisterClosedMiner("close", m)
}

func TestMineContextAllClosedMinersAgree(t *testing.T) {
	d := classic(t)
	var reference []ClosedItemset
	for i, name := range ClosedMiners() {
		res, err := MineContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.MinerName() != name {
			t.Errorf("MinerName() = %q, want %q", res.MinerName(), name)
		}
		all := res.ClosedItemsets()
		if i == 0 {
			reference = all
			continue
		}
		if len(all) != len(reference) {
			t.Fatalf("%s: |FC| = %d, want %d", name, len(all), len(reference))
		}
		for j := range all {
			if !all[j].Items.Equal(reference[j].Items) || all[j].Support != reference[j].Support {
				t.Errorf("%s: FC[%d] = %v/%d, want %v/%d", name,
					j, all[j].Items, all[j].Support, reference[j].Items, reference[j].Support)
			}
		}
	}
}

func TestMineFrequentContextAllMinersAgree(t *testing.T) {
	d := classic(t)
	var reference []CountedItemset
	for i, name := range FrequentMiners() {
		fi, err := MineFrequentContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if i == 0 {
			reference = fi
			continue
		}
		if len(fi) != len(reference) {
			t.Fatalf("%s: |FI| = %d, want %d", name, len(fi), len(reference))
		}
		for j := range fi {
			if !fi[j].Items.Equal(reference[j].Items) || fi[j].Support != reference[j].Support {
				t.Errorf("%s: FI[%d] = %v, want %v", name, j, fi[j], reference[j])
			}
		}
	}
}

func TestTracksGenerators(t *testing.T) {
	d := classic(t)
	for name, want := range map[string]bool{
		"close": true, "a-close": true, "titanic": true, "genclose": true, "pgenclose": true,
		"charm": false,
	} {
		res, err := MineContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm(name))
		if err != nil {
			t.Fatal(err)
		}
		if res.TracksGenerators() != want {
			t.Errorf("%s: TracksGenerators() = %v, want %v", name, res.TracksGenerators(), want)
		}
		_, err = res.GenericBasis()
		if want && err != nil {
			t.Errorf("%s: GenericBasis: %v", name, err)
		}
		if !want && err == nil {
			t.Errorf("%s: GenericBasis accepted without generators", name)
		}
	}
}

func TestBasisRegistryHasAllBuiltins(t *testing.T) {
	// Subset rather than exact equality: other tests in this package
	// exercise RegisterBasis with extension bases, and the registry is
	// process-global.
	got := Bases()
	if !sort.StringsAreSorted(got) {
		t.Errorf("Bases() not sorted: %v", got)
	}
	for _, want := range []string{"duquenne-guigues", "generic", "informative", "luxenburger"} {
		found := false
		for _, n := range got {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Bases() = %v, missing %q", got, want)
		}
	}
}

func TestBasisRegistryLookup(t *testing.T) {
	// Canonical names, hyphenated and cased variants all resolve.
	for _, name := range []string{
		"duquenne-guigues", "duquenneguigues", "Duquenne-Guigues", "DUQUENNE_GUIGUES",
		"luxenburger", "Luxenburger", "generic", "informative",
	} {
		if _, err := LookupBasis(name); err != nil {
			t.Errorf("LookupBasis(%q): %v", name, err)
		}
	}
}

func TestBasisRegistryUnknownName(t *testing.T) {
	_, err := LookupBasis("bogus")
	if err == nil {
		t.Fatal("unknown basis accepted")
	}
	if !strings.Contains(err.Error(), "duquenne-guigues") || !strings.Contains(err.Error(), "luxenburger") {
		t.Errorf("error does not list registered bases: %v", err)
	}
	// The same error surfaces from the construction entry point.
	res, err := MineContext(context.Background(), classic(t), WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Basis(context.Background(), "bogus"); err == nil {
		t.Error("Result.Basis with unknown basis accepted")
	}
}

func TestRegisterBasisDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate basis registration did not panic")
		}
	}()
	b, err := LookupBasis("luxenburger")
	if err != nil {
		t.Fatal(err)
	}
	RegisterBasis("luxenburger", b)
}

// customBasis is a registry-extension probe: a basis that serves only
// the top closed itemset's exact expansion, registered under a name no
// built-in uses.
type customBasis struct{}

func (customBasis) Name() string                    { return "test-custom" }
func (customBasis) Requirements() BasisRequirements { return BasisRequirements{} }
func (customBasis) Build(ctx context.Context, in BasisInput) (RuleSet, error) {
	return RuleSet{Rules: nil}, nil
}

func TestRegisterBasisExtension(t *testing.T) {
	RegisterBasis("test-custom", customBasis{})
	found := false
	for _, n := range Bases() {
		if n == "test-custom" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Bases() = %v, missing test-custom", Bases())
	}
	res, err := MineContext(context.Background(), classic(t), WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := res.Basis(context.Background(), "Test-Custom")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Basis != "test-custom" {
		t.Errorf("provenance Basis = %q, want test-custom", rs.Basis)
	}
}

func TestMineOptionErrors(t *testing.T) {
	d := classic(t)
	ctx := context.Background()
	cases := []struct {
		name string
		opts []MineOption
	}{
		{"no threshold", nil},
		{"zero min support", []MineOption{WithMinSupport(0)}},
		{"min support above one", []MineOption{WithMinSupport(1.5)}},
		{"absolute below one", []MineOption{WithAbsoluteMinSupport(0)}},
		{"empty algorithm", []MineOption{WithMinSupport(0.4), WithAlgorithm("")}},
		{"nil option", []MineOption{nil}},
	}
	for _, tc := range cases {
		if _, err := MineContext(ctx, d, tc.opts...); err == nil {
			t.Errorf("MineContext %s: no error", tc.name)
		}
		if _, err := MineFrequentContext(ctx, d, tc.opts...); err == nil {
			t.Errorf("MineFrequentContext %s: no error", tc.name)
		}
	}
	// Absolute threshold takes precedence over relative.
	res, err := MineContext(ctx, d, WithMinSupport(0.99), WithAbsoluteMinSupport(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.MinSupport() != 2 {
		t.Errorf("MinSupport() = %d, want 2", res.MinSupport())
	}
}
