// Quickstart: the running example of the Close paper (5 objects over
// items A..E), mined end to end — frequent closed itemsets, the
// Duquenne–Guigues basis, the reduced Luxenburger basis, and the
// derivation engine reconstructing an arbitrary rule from the bases.
package main

import (
	"context"
	"fmt"
	"log"

	"closedrules"
)

func main() {
	ctx := context.Background()
	// The classic context: 1:ACD 2:BCE 3:ABCE 4:BE 5:ABCE.
	ds, err := closedrules.NewDataset([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	ds, err = ds.WithNames([]string{"A", "B", "C", "D", "E"})
	if err != nil {
		log.Fatal(err)
	}

	res, err := closedrules.MineContext(ctx, ds, closedrules.WithMinSupport(0.4))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("## Frequent closed itemsets (minsup 40%)")
	for _, c := range res.ClosedItemsets() {
		fmt.Printf("  %-15s support %d/5", c.Items.Format(ds.Names()), c.Support)
		if len(c.Generators) > 0 {
			fmt.Print("   generators:")
			for _, g := range c.Generators {
				fmt.Printf(" %s", g.Format(ds.Names()))
			}
		}
		fmt.Println()
	}

	// Bases are first-class and resolved by registry name, exactly like
	// miners: closedrules.Bases() lists what is registered, and each
	// returned RuleSet carries its provenance (basis name, thresholds).
	exact, err := res.Basis(ctx, "duquenne-guigues")
	if err != nil {
		log.Fatal(err)
	}
	approx, err := res.Basis(ctx, "luxenburger", closedrules.WithMinConfidence(0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n## %s basis (exact rules)\n", exact.Basis)
	fmt.Print(closedrules.FormatRules(exact.Rules, ds))
	fmt.Printf("\n## reduced %s basis (approximate rules, conf ≥ %.0f%%)\n",
		approx.Basis, approx.MinConfidence*100)
	fmt.Print(closedrules.FormatRules(approx.Rules, ds))

	all, err := res.AllRules(0.5)
	if err != nil {
		log.Fatal(err)
	}
	size := exact.Len() + approx.Len()
	fmt.Printf("\nall valid rules: %d — bases: %d rules (%.1f× smaller)\n",
		len(all), size, float64(len(all))/float64(size))

	// The bases are generating sets: rebuild any rule from them alone.
	eng, err := res.DerivationEngine(ctx)
	if err != nil {
		log.Fatal(err)
	}
	r, err := eng.Rule(closedrules.Items(2), closedrules.Items(0)) // C → A
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nderived from the bases alone: %s\n", r.Format(ds.Names()))

	// Serve the bases concurrently: a QueryService answers support,
	// confidence and recommendation queries from the condensed
	// representation.
	qs, err := closedrules.NewQueryService(res, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	conf, err := qs.Confidence(ctx, closedrules.Items(2), closedrules.Items(0)) // C → A
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served confidence of C → A: %.3f\n", conf)
	recs, err := qs.Recommend(ctx, closedrules.Items(1), 2) // observed {B}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recommendations for a basket containing B:")
	for _, r := range recs {
		fmt.Println("  " + r.Format(ds.Names()))
	}
}
