// Census example: strongly correlated nominal data (the C20D10K regime
// of the paper's evaluations). Latent population clusters induce hard
// functional dependencies, so the frequent itemsets vastly outnumber
// the closed ones and the bases compress the rule set by an order of
// magnitude or more. The example also shows the derivation engine
// answering ad-hoc rule queries from the bases alone.
package main

import (
	"context"
	"fmt"
	"log"

	"closedrules"
)

func main() {
	ctx := context.Background()
	ds, err := closedrules.GenerateCensus(closedrules.CensusC20(5000, 7))
	if err != nil {
		log.Fatal(err)
	}
	s := ds.Stats()
	fmt.Printf("census-like data: %d objects × 20 attributes (%d items)\n",
		s.NumTransactions, s.NumItems)

	// Titanic computes every closure from support counts alone — on
	// correlated data like this it avoids all closure database passes.
	res, err := closedrules.MineContext(ctx, ds,
		closedrules.WithMinSupport(0.4),
		closedrules.WithAlgorithm("titanic"))
	if err != nil {
		log.Fatal(err)
	}
	fi, err := res.FrequentItemsets()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minsup 40%%: |FI| = %d, |FC| = %d  (|FI|/|FC| = %.1f — strongly correlated)\n",
		len(fi), res.NumClosed(), float64(len(fi))/float64(res.NumClosed()))

	for _, minConf := range []float64{0.9, 0.7} {
		all, err := res.AllRules(minConf)
		if err != nil {
			log.Fatal(err)
		}
		bases, err := res.Bases(minConf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("conf ≥ %.0f%%: %6d valid rules  →  basis %4d rules (%.1f× smaller)\n",
			minConf*100, len(all), bases.Size(),
			float64(len(all))/float64(bases.Size()))
	}

	// Exact rules: the functional dependencies the generator planted.
	bases, err := res.Bases(0.7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDuquenne–Guigues basis (the data's functional dependencies):")
	for i, r := range bases.Exact {
		if i == 8 {
			fmt.Printf("  … and %d more\n", len(bases.Exact)-8)
			break
		}
		fmt.Println("  " + r.Format(ds.Names()))
	}

	// Ad-hoc query answered from the bases, not the data.
	eng, err := bases.Engine()
	if err != nil {
		log.Fatal(err)
	}
	if len(bases.Approximate) > 0 {
		q := bases.Approximate[0]
		r, err := eng.Rule(q.Antecedent, q.Consequent)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nengine-derived (no database access): %s\n", r.Format(ds.Names()))
	}
}
