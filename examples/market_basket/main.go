// Market-basket example: IBM-Quest-style weakly correlated data (the
// T10I4 regime of the paper's evaluations). On this kind of data the
// closed sets nearly coincide with the frequent sets — the honest
// negative result of the Close line of papers — yet the Luxenburger
// reduction still prunes most of the redundant approximate rules.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"closedrules"
)

func main() {
	ctx := context.Background()
	cfg := closedrules.QuestT10I4(10000, 500, 2026)
	ds, err := closedrules.GenerateQuest(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := ds.Stats()
	fmt.Printf("synthetic baskets: %d transactions, %d items, avg length %.1f\n",
		s.NumTransactions, s.NumItems, s.AvgLen)

	// Charm's depth-first tidset intersections suit this sparse regime.
	start := time.Now()
	res, err := closedrules.MineContext(ctx, ds,
		closedrules.WithMinSupport(0.01),
		closedrules.WithAlgorithm("charm"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closed mining (minsup 1%%): %d closed itemsets in %v\n",
		res.NumClosed(), time.Since(start).Round(time.Millisecond))

	fi, err := res.FrequentItemsets()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequent itemsets: %d  →  |FI|/|FC| = %.2f (weakly correlated: ≈1)\n",
		len(fi), float64(len(fi))/float64(res.NumClosed()))

	bases, err := res.Bases(0.5)
	if err != nil {
		log.Fatal(err)
	}
	all, err := res.AllRules(0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("valid rules @conf 50%%: %d   bases: %d exact + %d approximate\n",
		len(all), len(bases.Exact), len(bases.Approximate))

	// Rank the basis rules by lift to surface the interesting ones.
	type scored struct {
		r    closedrules.Rule
		lift float64
	}
	var ranked []scored
	for _, r := range bases.Approximate {
		m, err := closedrules.RuleMetrics(r, ds.NumTransactions())
		if err != nil {
			continue
		}
		ranked = append(ranked, scored{r, m.Lift})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].lift > ranked[j].lift })
	fmt.Println("\ntop basis rules by lift:")
	for i, sc := range ranked {
		if i == 5 {
			break
		}
		fmt.Printf("  lift %.1f  %v\n", sc.lift, sc.r)
	}
}
