// Mushroom example: the densest, most correlated dataset of the
// paper's evaluation line. The class attribute is almost determined by
// odor, veil-type is constant (so h(∅) ≠ ∅ and the Duquenne–Guigues
// basis starts from the rule ∅ → veil-type), and the exact-rule
// compression is maximal: hundreds of exact rules collapse to a
// handful of pseudo-closed antecedents.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"closedrules"
)

func main() {
	// A deadline bounds the mine: if the thresholds turn out to be
	// explosive, the run aborts with ctx.Err() instead of hanging.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	ds, err := closedrules.GenerateMushroom(closedrules.MushroomConfig{NumObjects: 8124, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	s := ds.Stats()
	fmt.Printf("mushroom-like data: %d objects × 23 attributes (%d items)\n",
		s.NumTransactions, s.NumItems)

	res, err := closedrules.MineContext(ctx, ds, closedrules.WithMinSupport(0.3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minsup 30%%: %d frequent closed itemsets\n", res.NumClosed())

	// h(∅): the items present in every single object.
	if bot, ok := res.Closure(closedrules.Items()); ok && bot.Items.Len() > 0 {
		fmt.Printf("h(∅) = %s — universal items, the root of the DG basis\n",
			bot.Items.Format(ds.Names()))
	}

	all, err := res.AllRules(1.0) // exact rules only
	if err != nil {
		log.Fatal(err)
	}
	bases, err := res.Bases(0.7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact rules: %d   Duquenne–Guigues basis: %d (%.0f× smaller)\n",
		len(all), len(bases.Exact),
		float64(len(all))/float64(maxInt(1, len(bases.Exact))))
	fmt.Println("the basis rules:")
	for _, r := range bases.Exact {
		fmt.Println("  " + r.Format(ds.Names()))
	}

	// The generic basis trades minimality for readability: minimal
	// generator antecedents, no inference needed.
	gb, err := res.Basis(ctx, "generic")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngeneric basis (readable, minimal-generator antecedents): %d rules, e.g.\n", gb.Len())
	for i, r := range gb.Rules {
		if i == 5 {
			break
		}
		fmt.Println("  " + r.Format(ds.Names()))
	}

	approx, err := res.AllRules(0.7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalid rules @conf 70%%: %d  →  bases: %d (%.1f× smaller)\n",
		len(approx), bases.Size(), float64(len(approx))/float64(bases.Size()))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
