// Rule-store example: the full downstream workflow — mine once, persist
// the condensed representation (closed itemsets + bases), then answer
// rule queries from the stored artifacts without touching the original
// data again, including serving them concurrently from a QueryService.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"closedrules"
)

func main() {
	ctx := context.Background()
	ds, err := closedrules.GenerateCensus(closedrules.CensusC20(3000, 13))
	if err != nil {
		log.Fatal(err)
	}
	res, err := closedrules.MineContext(ctx, ds, closedrules.WithMinSupport(0.4))
	if err != nil {
		log.Fatal(err)
	}

	// Persist the closed itemsets (the condensed representation)…
	var fcStore bytes.Buffer
	if err := res.SaveClosedItemsets(&fcStore); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d closed itemsets (%d bytes of text)\n",
		res.NumClosed(), fcStore.Len())

	// …and the bases as JSON for other tools.
	bases, err := res.Bases(0.6)
	if err != nil {
		log.Fatal(err)
	}
	var ruleStore bytes.Buffer
	all := append(append([]closedrules.Rule{}, bases.Exact...), bases.Approximate...)
	if err := closedrules.WriteRulesJSON(&ruleStore, all); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %d basis rules as JSON (%d bytes)\n", len(all), ruleStore.Len())

	// Reload both stores.
	closed, err := closedrules.LoadClosedItemsets(bytes.NewReader(fcStore.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	rules, err := closedrules.ReadRulesJSON(bytes.NewReader(ruleStore.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded %d closed itemsets, %d rules\n\n", len(closed), len(rules))

	// Query the reloaded rules: the strongest associations by lift,
	// and everything that predicts a chosen attribute value.
	fmt.Println("top 3 reloaded rules by lift:")
	for _, r := range closedrules.TopRulesByLift(rules, 3, ds.NumTransactions()) {
		fmt.Println("  " + r.Format(ds.Names()))
	}

	target := rules[0].Consequent[0]
	predicting := closedrules.RulesPredicting(rules, target)
	fmt.Printf("\nrules predicting %s: %d\n", ds.ItemName(target), len(predicting))
	for i, r := range predicting {
		if i == 3 {
			fmt.Printf("  … and %d more\n", len(predicting)-3)
			break
		}
		fmt.Println("  " + r.Format(ds.Names()))
	}

	// Stand up a serving layer over the reloaded collection: the
	// QueryService answers concurrent support/confidence/recommendation
	// queries straight from the condensed representation.
	col, err := closedrules.NewClosedCollection(closed)
	if err != nil {
		log.Fatal(err)
	}
	qs, err := closedrules.NewQueryServiceFromCollection(col, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	observed := closedrules.Items(rules[0].Antecedent...)
	recs, err := qs.Recommend(ctx, observed, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserved recommendations for %s:\n", observed.Format(ds.Names()))
	for _, r := range recs {
		fmt.Println("  " + r.Format(ds.Names()))
	}
}
