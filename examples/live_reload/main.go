// Live-reload example: a QueryService that follows its data. A
// background refresh.Refresher watches a transaction file; appending
// transactions to the file changes the served recommendations without
// a restart, a reload call, or a dropped query — the library half of
// what `arserve -refresh` does over HTTP.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"closedrules"
	"closedrules/refresh"
)

func main() {
	ctx := context.Background()

	// A small shop's transaction log: items 0=bread, 1=butter, 2=milk,
	// 3=jam, 4=tea.
	dir, err := os.MkdirTemp("", "live_reload")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "transactions.dat")
	seed := "0 2 3\n1 2 4\n0 1 2 4\n1 4\n0 1 2 4\n"
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		log.Fatal(err)
	}

	// Mine once and start serving.
	src := refresh.NewFileSource(path)
	ds, err := src.Load(ctx)
	if err != nil {
		log.Fatal(err)
	}
	mineOpts := []closedrules.MineOption{closedrules.WithMinSupport(0.4)}
	res, err := closedrules.MineContext(ctx, ds, mineOpts...)
	if err != nil {
		log.Fatal(err)
	}
	qs, err := closedrules.NewQueryService(res, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	src.Commit() // the initial load is now the served snapshot

	// Watch the file: every 50ms the refresher stats it and — only
	// when the content actually changed — re-mines and atomically
	// swaps the served snapshot.
	r, err := refresh.New(qs, refresh.Config{
		Source:      src,
		Interval:    50 * time.Millisecond,
		MineTimeout: 30 * time.Second,
		MineOptions: mineOpts,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Start(); err != nil {
		log.Fatal(err)
	}
	defer r.Stop()

	show := func(when string) {
		sup, _, _ := qs.Support(ctx, closedrules.Items(2))
		recs, err := qs.Recommend(ctx, closedrules.Items(1), 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d transactions, supp(milk)=%d\n", when, qs.NumTransactions(), sup)
		for _, rule := range recs {
			fmt.Println("   recommend:", rule)
		}
	}
	show("before")

	// New sales land in the log — no restart, no reload endpoint.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.WriteString("0 1 2 4\n0 1 2 4\n0 2 4\n"); err != nil {
		log.Fatal(err)
	}
	f.Close()

	// Wait for the watcher to pick the change up (one poll interval
	// plus the re-mine; queries keep answering from the old snapshot
	// until the very instant the swap lands).
	deadline := time.Now().Add(10 * time.Second)
	for qs.Stats().Swaps == 0 {
		if time.Now().After(deadline) {
			st := r.Stats()
			log.Fatalf("refresher never swapped: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	show("after ")

	st := r.Stats()
	fmt.Printf("refresher: %d cycles, %d swaps, %d skips, last mine %v\n",
		st.Cycles, st.Successes, st.Skips, st.LastMineDuration.Round(time.Millisecond))
}
