module closedrules

go 1.24
