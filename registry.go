package closedrules

import (
	"closedrules/internal/basis"
	"closedrules/internal/miner"

	// The built-in bases register themselves from builtin's init
	// function, exactly as the miners below do.
	_ "closedrules/internal/basis/builtin"

	// The built-in miners register themselves from their init
	// functions; these imports are what make them reachable by name.
	_ "closedrules/internal/aclose"
	_ "closedrules/internal/apriori"
	_ "closedrules/internal/charm"
	_ "closedrules/internal/closealg"
	_ "closedrules/internal/eclat"
	_ "closedrules/internal/fpgrowth"
	_ "closedrules/internal/genclose"
	_ "closedrules/internal/pascal"
	_ "closedrules/internal/titanic"
)

// ClosedMiner is a pluggable closed-itemset mining algorithm. Register
// an implementation with RegisterClosedMiner to make it reachable
// through MineContext's WithAlgorithm option. Implementations must
// return the complete FC including the bottom element h(∅), honor
// ctx cancellation at level or extension boundaries, and be safe for
// concurrent use.
type ClosedMiner = miner.ClosedMiner

// FrequentMiner is a pluggable frequent-itemset mining algorithm,
// reachable through MineFrequentContext's WithAlgorithm option, under
// the same cancellation and concurrency contract as ClosedMiner.
type FrequentMiner = miner.FrequentMiner

// RegisterClosedMiner makes a closed-itemset miner available under the
// given name. Like database/sql.Register it panics when the miner is
// nil or the name is empty or already taken: registration is meant to
// run from an init function, where a duplicate is a programming error.
func RegisterClosedMiner(name string, m ClosedMiner) { miner.RegisterClosed(name, m) }

// RegisterFrequentMiner makes a frequent-itemset miner available under
// the given name, with the same panicking contract as
// RegisterClosedMiner.
func RegisterFrequentMiner(name string, m FrequentMiner) { miner.RegisterFrequent(name, m) }

// LookupClosedMiner resolves a registered closed miner by name; the
// error of an unknown name lists the registered alternatives.
func LookupClosedMiner(name string) (ClosedMiner, error) { return miner.LookupClosed(name) }

// LookupFrequentMiner resolves a registered frequent miner by name.
func LookupFrequentMiner(name string) (FrequentMiner, error) { return miner.LookupFrequent(name) }

// ClosedMiners returns the registered closed-miner names, sorted.
func ClosedMiners() []string { return miner.ClosedNames() }

// FrequentMiners returns the registered frequent-miner names, sorted.
func FrequentMiners() []string { return miner.FrequentNames() }

// BasisBuilder is a pluggable rule-basis construction, reachable by
// name through Result.Basis. Register an implementation with
// RegisterBasis to plug a new basis — e.g. a closure-operator basis or
// a simultaneous lattice+bases construction — into the library, the
// armine CLI and the HTTP server without touching any of them.
// Implementations must return rules in canonical sorted order, honor
// ctx cancellation, and be safe for concurrent use.
type BasisBuilder = basis.Builder

// BasisRequirements declares what a basis construction needs from the
// mining result (generators, the iceberg lattice, the frequent-itemset
// family); the registry verifies them before every Build.
type BasisRequirements = basis.Requirements

// BasisInput carries the mining result's components into a
// BasisBuilder: the closed itemsets, |O|, and lazy thunks for the
// lattice and the frequent-itemset family.
type BasisInput = basis.BuildInput

// RuleSet is a constructed rule basis with its provenance: the basis
// registry name, the thresholds it was built at, and the rules in
// canonical order.
type RuleSet = basis.RuleSet

// RegisterBasis makes a rule-basis construction available under the
// given name, with the same panicking contract as RegisterClosedMiner:
// registration is meant to run from an init function, where a nil
// builder, an empty name or a duplicate is a programming error.
func RegisterBasis(name string, b BasisBuilder) { basis.Register(name, b) }

// LookupBasis resolves a registered basis builder by name; the error
// of an unknown name lists the registered alternatives. Matching
// ignores case, hyphens and underscores, so "Duquenne-Guigues" and
// "duquenneguigues" are equivalent.
func LookupBasis(name string) (BasisBuilder, error) { return basis.Lookup(name) }

// Bases returns the registered basis names, sorted.
func Bases() []string { return basis.Names() }
