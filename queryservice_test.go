package closedrules

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func classicService(t *testing.T) *QueryService {
	t.Helper()
	res, err := MineContext(context.Background(), classic(t), WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	qs, err := NewQueryService(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

func TestQueryServiceSupport(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	// Classic context: supp(C) = 4, supp(BE) = 4, supp(ABCE) = 2.
	cases := []struct {
		x    Itemset
		want int
	}{
		{Items(2), 4},
		{Items(1, 4), 4},
		{Items(0, 1, 2, 4), 2},
	}
	for _, tc := range cases {
		got, ok, err := qs.Support(ctx, tc.x)
		if err != nil || !ok || got != tc.want {
			t.Errorf("Support(%v) = %d, %v, %v; want %d", tc.x, got, ok, err, tc.want)
		}
	}
	// D = item 3 has support 1 < minsup: not derivable.
	if _, ok, err := qs.Support(ctx, Items(3)); ok || err != nil {
		t.Errorf("Support(D) ok = %v, err = %v; want not-frequent", ok, err)
	}
}

func TestQueryServiceConfidence(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	// C → A: supp(AC)/supp(C) = 3/4.
	conf, err := qs.Confidence(ctx, Items(2), Items(0))
	if err != nil || conf != 0.75 {
		t.Errorf("Confidence(C→A) = %v, %v; want 0.75", conf, err)
	}
	// B → E: exact rule.
	conf, err = qs.Confidence(ctx, Items(1), Items(4))
	if err != nil || conf != 1 {
		t.Errorf("Confidence(B→E) = %v, %v; want 1", conf, err)
	}
	// Overlapping sides are rejected.
	if _, err := qs.Confidence(ctx, Items(1), Items(1, 4)); err == nil {
		t.Error("overlapping rule accepted")
	}
	// Rules over infrequent itemsets are not derivable.
	if _, err := qs.Confidence(ctx, Items(3), Items(0)); err == nil {
		t.Error("infrequent antecedent accepted")
	}
	// The fully measured rule carries the consequent support.
	r, err := qs.Rule(ctx, Items(2), Items(0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Support != 3 || r.AntecedentSupport != 4 || r.ConsequentSupport != 3 {
		t.Errorf("Rule(C→A) = %+v", r)
	}
}

func TestQueryServiceRecommend(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	// Observed {B}: the exact rule B → E applies and E is novel.
	recs, err := qs.Recommend(ctx, Items(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations for {B}")
	}
	for _, r := range recs {
		if !Items(1).ContainsAll(r.Antecedent) {
			t.Errorf("rule %v not applicable to {B}", r)
		}
		if Items(1).ContainsAll(r.Consequent) {
			t.Errorf("rule %v recommends nothing new", r)
		}
	}
	// Cached second call returns the same slice content.
	again, err := qs.Recommend(ctx, Items(1), 5)
	if err != nil || len(again) != len(recs) {
		t.Errorf("cached Recommend = %v, %v", again, err)
	}
	if _, err := qs.Recommend(ctx, Items(1), 0); err == nil {
		t.Error("k = 0 accepted")
	}
}

func TestRecommendCacheIsolation(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	recs, err := qs.Recommend(ctx, Items(1), 5)
	if err != nil || len(recs) == 0 {
		t.Fatalf("Recommend = %v, %v", recs, err)
	}
	// Mutating a returned slice must not corrupt the cached ranking.
	want := append([]Rule(nil), recs...)
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
	recs[0] = Rule{}
	again, err := qs.Recommend(ctx, Items(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if again[i].Key() != want[i].Key() {
			t.Fatalf("cache corrupted by caller mutation: %v vs %v", again, want)
		}
	}
}

func TestQueryServiceContextCancelled(t *testing.T) {
	qs := classicService(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := qs.Support(ctx, Items(2)); !errors.Is(err, context.Canceled) {
		t.Errorf("Support err = %v", err)
	}
	if _, err := qs.Confidence(ctx, Items(2), Items(0)); !errors.Is(err, context.Canceled) {
		t.Errorf("Confidence err = %v", err)
	}
	if _, err := qs.Recommend(ctx, Items(1), 3); !errors.Is(err, context.Canceled) {
		t.Errorf("Recommend err = %v", err)
	}
}

func TestQueryServiceSwap(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	if qs.NumTransactions() != 5 {
		t.Fatalf("NumTransactions = %d", qs.NumTransactions())
	}
	// Re-mine a doubled dataset and hot-swap it in.
	d, err := NewDataset([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineContext(ctx, d, WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if err := qs.Swap(res); err != nil {
		t.Fatal(err)
	}
	if qs.NumTransactions() != 10 {
		t.Errorf("NumTransactions after Swap = %d, want 10", qs.NumTransactions())
	}
	sup, ok, err := qs.Support(ctx, Items(2))
	if err != nil || !ok || sup != 8 {
		t.Errorf("Support(C) after Swap = %d, %v, %v; want 8", sup, ok, err)
	}
	if err := qs.Swap(nil); err == nil {
		t.Error("Swap(nil) accepted")
	}
}

func TestQueryServiceFromCollection(t *testing.T) {
	ctx := context.Background()
	res, err := MineContext(ctx, classic(t), WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.SaveClosedItemsets(&buf); err != nil {
		t.Fatal(err)
	}
	col, err := ReadClosedCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := NewQueryServiceFromCollection(col, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := qs.Confidence(ctx, Items(2), Items(0))
	if err != nil || conf != 0.75 {
		t.Errorf("Confidence(C→A) = %v, %v; want 0.75", conf, err)
	}
	recs, err := qs.Recommend(ctx, Items(1), 3)
	if err != nil || len(recs) == 0 {
		t.Errorf("Recommend = %v, %v", recs, err)
	}
}

func TestQueryServiceServedBases(t *testing.T) {
	qs := classicService(t)
	sel := qs.ServedBases()
	if sel.Exact != "duquenne-guigues" || sel.Approximate != "luxenburger" {
		t.Errorf("ServedBases = %+v, want the paper's default pair", sel)
	}
}

func TestQueryServiceWithBases(t *testing.T) {
	ctx := context.Background()
	res, err := MineContext(ctx, classic(t), WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	qs, err := NewQueryServiceWithBases(res, 0.5, BasisSelection{Exact: "generic", Approximate: "informative"})
	if err != nil {
		t.Fatal(err)
	}
	sel := qs.ServedBases()
	if sel.Exact != "generic" || sel.Approximate != "informative" {
		t.Errorf("ServedBases = %+v, want generic/informative", sel)
	}
	// generic (7) + informative reduced at 0.5 (7).
	if qs.NumRules() != 14 {
		t.Errorf("NumRules = %d, want 14", qs.NumRules())
	}
	// The selection survives a hot swap.
	res2, err := MineContext(ctx, classic(t), WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if err := qs.Swap(res2); err != nil {
		t.Fatal(err)
	}
	if sel := qs.ServedBases(); sel.Exact != "generic" || sel.Approximate != "informative" {
		t.Errorf("ServedBases after Swap = %+v", sel)
	}
	// A generator basis over a generator-less miner fails at build.
	resCharm, err := MineContext(ctx, classic(t), WithMinSupport(0.4), WithAlgorithm("charm"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQueryServiceWithBases(resCharm, 0.5, BasisSelection{Exact: "generic"}); err == nil {
		t.Error("generic basis over charm accepted")
	}
	if _, err := NewQueryServiceWithBases(res, 0.5, BasisSelection{Exact: "bogus"}); err == nil {
		t.Error("unknown basis accepted")
	}
}

func TestQueryServiceBasisRules(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	rs, err := qs.BasisRules(ctx, "luxenburger", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Basis != "luxenburger" || rs.Len() != 5 {
		t.Errorf("BasisRules(luxenburger, 0.5) = (%q, %d), want (luxenburger, 5)", rs.Basis, rs.Len())
	}
	if _, err := qs.BasisRules(ctx, "bogus", 0.5); err == nil {
		t.Error("unknown basis accepted")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := qs.BasisRules(cancelled, "luxenburger", 0.5); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled BasisRules err = %v", err)
	}
}

func TestQueryServiceBasisRulesFromCollection(t *testing.T) {
	ctx := context.Background()
	res, err := MineContext(ctx, classic(t), WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.SaveClosedItemsets(&buf); err != nil {
		t.Fatal(err)
	}
	col, err := ReadClosedCollection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := NewQueryServiceFromCollection(col, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// A collection-backed snapshot records its served pair but cannot
	// build arbitrary bases (no mining result behind it).
	sel := qs.ServedBases()
	if sel.Exact != "generic" || sel.Approximate != "luxenburger" {
		t.Errorf("ServedBases = %+v, want generic/luxenburger", sel)
	}
	if _, err := qs.BasisRules(ctx, "luxenburger", 0.5); err == nil {
		t.Error("BasisRules on a collection-backed service accepted")
	}
}

// TestQueryServiceConcurrent hammers one service from 8 goroutines
// while a ninth keeps hot-swapping fresh results in; run under -race
// this is the serving-layer safety proof.
func TestQueryServiceConcurrent(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()

	res5, err := MineContext(ctx, classic(t), WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	d10, err := NewDataset([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res10, err := MineContext(ctx, d10, WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 8
		iters      = 400
	)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines+1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0:
					if _, _, err := qs.Support(ctx, Items(r.Intn(5))); err != nil {
						errc <- fmt.Errorf("Support: %w", err)
						return
					}
				case 1:
					// C → A survives every swap (both datasets contain it).
					if _, err := qs.Confidence(ctx, Items(2), Items(0)); err != nil {
						errc <- fmt.Errorf("Confidence: %w", err)
						return
					}
				case 2:
					if _, err := qs.Recommend(ctx, Items(r.Intn(5)), 1+r.Intn(4)); err != nil {
						errc <- fmt.Errorf("Recommend: %w", err)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			res := res5
			if i%2 == 0 {
				res = res10
			}
			if err := qs.Swap(res); err != nil {
				errc <- fmt.Errorf("Swap: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestSnapshotCacheCounters pins the per-snapshot cache accounting: a
// Swap resets the snapshot hit/miss pair (the cache itself starts
// empty in the new snapshot) while the lifetime pair keeps
// accumulating, so the snapshot hit ratio describes the snapshot
// serving now instead of conflating every snapshot since boot.
func TestSnapshotCacheCounters(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	// One miss, then two hits against the first snapshot.
	for i := 0; i < 3; i++ {
		if _, err := qs.Recommend(ctx, Items(1), 5); err != nil {
			t.Fatal(err)
		}
	}
	st := qs.Stats()
	if st.SnapshotCacheHits != 2 || st.SnapshotCacheMisses != 1 {
		t.Fatalf("snapshot counters before Swap = %d/%d, want 2/1", st.SnapshotCacheHits, st.SnapshotCacheMisses)
	}
	if got, want := st.SnapshotHitRatio(), 2.0/3.0; got != want {
		t.Fatalf("SnapshotHitRatio = %v, want %v", got, want)
	}

	res, err := MineContext(ctx, classic(t), WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if err := qs.Swap(res); err != nil {
		t.Fatal(err)
	}
	st = qs.Stats()
	if st.SnapshotCacheHits != 0 || st.SnapshotCacheMisses != 0 {
		t.Fatalf("snapshot counters after Swap = %d/%d, want 0/0", st.SnapshotCacheHits, st.SnapshotCacheMisses)
	}
	if st.SnapshotHitRatio() != 0 {
		t.Fatalf("SnapshotHitRatio after Swap = %v, want 0", st.SnapshotHitRatio())
	}
	// Lifetime counters survived the Swap.
	if st.CacheHits != 2 || st.CacheMisses != 1 {
		t.Fatalf("lifetime counters after Swap = %d/%d, want 2/1", st.CacheHits, st.CacheMisses)
	}
	// The new snapshot starts counting from zero.
	if _, err := qs.Recommend(ctx, Items(1), 5); err != nil {
		t.Fatal(err)
	}
	st = qs.Stats()
	if st.SnapshotCacheHits != 0 || st.SnapshotCacheMisses != 1 {
		t.Fatalf("snapshot counters after post-Swap miss = %d/%d, want 0/1", st.SnapshotCacheHits, st.SnapshotCacheMisses)
	}
}

func TestRecommendBatch(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	want, err := qs.Recommend(ctx, Items(1), 5)
	if err != nil || len(want) == 0 {
		t.Fatalf("Recommend = %v, %v", want, err)
	}
	missesBefore := qs.Stats().SnapshotCacheMisses

	reqs := []RecommendRequest{
		{Observed: Items(1), K: 5},  // duplicate of the warmed key
		{Observed: Items(1), K: 5},  // coalesces with the previous item
		{Observed: Items(2), K: 3},  // fresh key: one miss
		{Observed: Items(1), K: -1}, // invalid k: per-item error
	}
	out, numTx, err := qs.RecommendBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if numTx != qs.NumTransactions() {
		t.Errorf("numTx = %d, want %d", numTx, qs.NumTransactions())
	}
	if len(out) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(out), len(reqs))
	}
	for i := 0; i < 2; i++ {
		if out[i].Err != nil || len(out[i].Rules) != len(want) {
			t.Errorf("result %d = %v, %v; want %d rules", i, out[i].Rules, out[i].Err, len(want))
		}
		for j := range want {
			if out[i].Rules[j].Key() != want[j].Key() {
				t.Errorf("result %d rule %d = %v, want %v", i, j, out[i].Rules[j], want[j])
			}
		}
	}
	if out[2].Err != nil {
		t.Errorf("result 2 err = %v", out[2].Err)
	}
	if out[3].Err == nil {
		t.Error("invalid k accepted in batch")
	}
	// The duplicate pair cost at most one lookup; {C} cost one miss.
	if got := qs.Stats().SnapshotCacheMisses - missesBefore; got != 1 {
		t.Errorf("batch added %d misses, want 1 (duplicates coalesce, warm key hits)", got)
	}
	// Fanned-out duplicates must be independent slices.
	out[0].Rules[0] = Rule{}
	if out[1].Rules[0].Key() != want[0].Key() {
		t.Error("duplicate batch items share a rules slice")
	}
}

func TestRecommendBatchCancelled(t *testing.T) {
	qs := classicService(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := qs.RecommendBatch(ctx, []RecommendRequest{{Observed: Items(1), K: 3}}); !errors.Is(err, context.Canceled) {
		t.Errorf("RecommendBatch err = %v, want context.Canceled", err)
	}
}

func TestMemoryEstimate(t *testing.T) {
	qs := classicService(t)
	base := qs.MemoryEstimate()
	if base <= 0 {
		t.Fatalf("MemoryEstimate() = %d, want > 0", base)
	}
	// Warming the recommendation cache grows the estimate: the cache
	// entries are part of the resident footprint the tenant pool
	// budgets against.
	if _, err := qs.Recommend(context.Background(), Items(0), 3); err != nil {
		t.Fatal(err)
	}
	warmed := qs.MemoryEstimate()
	if warmed <= base {
		t.Errorf("estimate after cache warm = %d, want > %d", warmed, base)
	}
	// A strictly larger dataset mined at the same threshold estimates
	// strictly larger (more transactions, at least as many closed sets).
	var tx [][]int
	for i := 0; i < 50; i++ {
		tx = append(tx, [][]int{{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4}}...)
	}
	d, err := NewDataset(tx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineContext(context.Background(), d, WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewQueryService(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := big.MemoryEstimate(); got <= base {
		t.Errorf("50x dataset estimate = %d, want > %d", got, base)
	}
}
