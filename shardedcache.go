package closedrules

import "sync"

const (
	// recCacheShards is the number of independently locked stripes of
	// the recommendation cache. Must be a power of two so the shard
	// index is a cheap mask of the key hash. 32 stripes keep lock
	// contention negligible even under hundreds of concurrent callers
	// while the per-stripe maps stay small enough to reset cheaply.
	recCacheShards = 32

	// recShardLimit bounds each stripe; when a stripe fills it is reset
	// rather than evicted entry by entry — the working set of observed
	// baskets in a serving deployment is small compared to the total
	// capacity (recCacheShards × recShardLimit entries), so resets are
	// rare and only ever drop 1/recCacheShards of the cache.
	recShardLimit = 256
)

// recCache is the sharded per-snapshot recommendation cache: N stripes,
// each an independently mutex-guarded map keyed by (basket, k). Striping
// by key hash means concurrent Recommend calls for different baskets
// almost never contend on the same lock, unlike the previous single
// RWMutex-guarded map which serialized every cache fill behind one
// writer lock.
type recCache struct {
	shards [recCacheShards]recShard
}

// recShard is one stripe of the cache.
type recShard struct {
	mu sync.Mutex
	m  map[string][]Rule
}

// newRecCache returns an empty cache with all stripes initialized.
func newRecCache() *recCache {
	c := &recCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string][]Rule)
	}
	return c
}

// shardIndex hashes the key (FNV-1a) onto a stripe.
func shardIndex(key string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h & (recCacheShards - 1))
}

// get returns the cached ranking for the key, if any. The returned
// slice is shared: callers must copy before handing it out.
func (c *recCache) get(key string) ([]Rule, bool) {
	s := &c.shards[shardIndex(key)]
	s.mu.Lock()
	v, ok := s.m[key]
	s.mu.Unlock()
	return v, ok
}

// put stores a ranking, resetting the stripe first when it is full.
func (c *recCache) put(key string, ranking []Rule) {
	s := &c.shards[shardIndex(key)]
	s.mu.Lock()
	if len(s.m) >= recShardLimit {
		s.m = make(map[string][]Rule)
	}
	s.m[key] = ranking
	s.mu.Unlock()
}

// entries counts the cached rankings across all stripes.
func (c *recCache) entries() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
