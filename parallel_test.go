package closedrules

import (
	"context"
	"testing"
	"time"
)

// TestParallelMinersMatchSequentialOnGeneratorWorkloads cross-checks
// that the parallel miners produce the identical closed-set family
// (same itemsets, same supports, same count, same order) as their
// sequential counterparts on each generated data regime.
func TestParallelMinersMatchSequentialOnGeneratorWorkloads(t *testing.T) {
	quest, err := GenerateQuest(QuestT10I4(400, 60, 11))
	if err != nil {
		t.Fatal(err)
	}
	census, err := GenerateCensus(CensusC20(300, 11))
	if err != nil {
		t.Fatal(err)
	}
	mush, err := GenerateMushroom(MushroomConfig{NumObjects: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, w := range []struct {
		name   string
		ds     *Dataset
		minSup float64
	}{
		{"quest", quest, 0.02},
		{"census", census, 0.5},
		{"mushroom", mush, 0.3},
	} {
		seq, err := MineContext(ctx, w.ds, WithMinSupport(w.minSup), WithAlgorithm("charm"))
		if err != nil {
			t.Fatalf("%s charm: %v", w.name, err)
		}
		par, err := MineContext(ctx, w.ds, WithMinSupport(w.minSup), WithAlgorithm("pcharm"), WithParallelism(4))
		if err != nil {
			t.Fatalf("%s pcharm: %v", w.name, err)
		}
		sc, pc := seq.ClosedItemsets(), par.ClosedItemsets()
		if len(sc) != len(pc) {
			t.Fatalf("%s: pcharm %d closed, charm %d", w.name, len(pc), len(sc))
		}
		for i := range sc {
			if !sc[i].Items.Equal(pc[i].Items) || sc[i].Support != pc[i].Support {
				t.Fatalf("%s: closed itemset %d differs: %v/%d vs %v/%d",
					w.name, i, pc[i].Items, pc[i].Support, sc[i].Items, sc[i].Support)
			}
		}

		seqFI, err := MineFrequentContext(ctx, w.ds, WithMinSupport(w.minSup), WithAlgorithm("eclat"))
		if err != nil {
			t.Fatalf("%s eclat: %v", w.name, err)
		}
		parFI, err := MineFrequentContext(ctx, w.ds, WithMinSupport(w.minSup), WithAlgorithm("peclat"), WithParallelism(4))
		if err != nil {
			t.Fatalf("%s peclat: %v", w.name, err)
		}
		if len(seqFI) != len(parFI) {
			t.Fatalf("%s: peclat %d itemsets, eclat %d", w.name, len(parFI), len(seqFI))
		}
		for i := range seqFI {
			if !seqFI[i].Items.Equal(parFI[i].Items) || seqFI[i].Support != parFI[i].Support {
				t.Fatalf("%s: frequent itemset %d differs", w.name, i)
			}
		}

		parDI, err := MineFrequentContext(ctx, w.ds, WithMinSupport(w.minSup), WithAlgorithm("pdeclat"), WithParallelism(4))
		if err != nil {
			t.Fatalf("%s pdeclat: %v", w.name, err)
		}
		if len(seqFI) != len(parDI) {
			t.Fatalf("%s: pdeclat %d itemsets, eclat %d", w.name, len(parDI), len(seqFI))
		}
		for i := range seqFI {
			if !seqFI[i].Items.Equal(parDI[i].Items) || seqFI[i].Support != parDI[i].Support {
				t.Fatalf("%s: pdeclat frequent itemset %d differs", w.name, i)
			}
		}
	}
}

// TestParallelMinersHonorDeadlineMidMine gives the parallel miners a
// deadline that expires mid-run on a larger workload and expects the
// deadline error, not a result.
func TestParallelMinersHonorDeadlineMidMine(t *testing.T) {
	ds, err := GenerateQuest(QuestT20I6(4000, 300, 13))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the context cache so the deadline is spent inside the mine,
	// not building the bitset view.
	if _, err := MineContext(context.Background(), ds, WithAbsoluteMinSupport(ds.NumTransactions()/2), WithAlgorithm("pcharm")); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"pcharm", "peclat", "pdeclat"} {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		var mineErr error
		if algo == "pcharm" {
			_, mineErr = MineContext(ctx, ds, WithMinSupport(0.002), WithAlgorithm(algo), WithParallelism(4))
		} else {
			_, mineErr = MineFrequentContext(ctx, ds, WithMinSupport(0.002), WithAlgorithm(algo), WithParallelism(4))
		}
		cancel()
		if mineErr != context.DeadlineExceeded {
			t.Errorf("%s: err = %v, want context.DeadlineExceeded", algo, mineErr)
		}
	}
}

// TestWithParallelismValidation covers the option's contract.
func TestWithParallelismValidation(t *testing.T) {
	d := classic(t)
	if _, err := MineContext(context.Background(), d, WithMinSupport(0.4), WithParallelism(0)); err == nil {
		t.Error("WithParallelism(0) accepted")
	}
	// The hint is harmless on sequential miners.
	if _, err := MineContext(context.Background(), d, WithMinSupport(0.4), WithParallelism(8)); err != nil {
		t.Errorf("sequential miner with parallelism hint: %v", err)
	}
}
