package closedrules

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"closedrules/internal/gen"
	"closedrules/internal/testgen"
)

func classic(t *testing.T) *Dataset {
	t.Helper()
	d, err := NewDataset([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMineClassicPipeline(t *testing.T) {
	d := classic(t)
	res, err := MineContext(context.Background(), d, WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if res.MinSupport() != 2 {
		t.Fatalf("MinSupport = %d", res.MinSupport())
	}
	if res.NumClosed() != 6 {
		t.Fatalf("|FC| = %d, want 6", res.NumClosed())
	}
	fi, err := res.FrequentItemsets()
	if err != nil {
		t.Fatal(err)
	}
	if len(fi) != 15 {
		t.Fatalf("|FI| = %d, want 15", len(fi))
	}
	max := res.MaximalItemsets()
	if len(max) != 1 || !max[0].Items.Equal(Items(0, 1, 2, 4)) {
		t.Errorf("maximal = %v", max)
	}
}

func TestMineAlgorithmsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 15; iter++ {
		d := testgen.Random(r, 30, 10, 0.4)
		var counts [4]int
		for i, algo := range []string{"close", "a-close", "charm", "titanic"} {
			res, err := MineContext(context.Background(), d,
				WithAbsoluteMinSupport(2), WithAlgorithm(algo))
			if err != nil {
				t.Fatal(err)
			}
			counts[i] = res.NumClosed()
		}
		if counts[0] != counts[1] || counts[1] != counts[2] || counts[2] != counts[3] {
			t.Fatalf("iter %d: algorithms disagree: %v", iter, counts)
		}
	}
}

func TestMineOptionValidation(t *testing.T) {
	d := classic(t)
	ctx := context.Background()
	if _, err := MineContext(ctx, d); err == nil {
		t.Error("missing support threshold accepted")
	}
	if _, err := MineContext(ctx, d, WithMinSupport(1.5)); err == nil {
		t.Error("WithMinSupport > 1 accepted")
	}
	if _, err := MineContext(ctx, d, WithAbsoluteMinSupport(0)); err == nil {
		t.Error("WithAbsoluteMinSupport < 1 accepted")
	}
	if _, err := MineContext(ctx, d, WithMinSupport(0.4), WithAlgorithm("bogus")); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := MineContext(ctx, d, WithMinSupport(0.4), nil); err == nil {
		t.Error("nil option accepted")
	}
	if _, err := MineContext(ctx, d, WithAbsoluteMinSupport(3)); err != nil {
		t.Errorf("absolute threshold rejected: %v", err)
	}
}

func TestBasesClassic(t *testing.T) {
	d := classic(t)
	res, err := MineContext(context.Background(), d, WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	bases, err := res.Bases(0)
	if err != nil {
		t.Fatal(err)
	}
	// DG = {A→C, B→E, E→B}; Lux reduction (non-∅) = 5 rules.
	if len(bases.Exact) != 3 {
		t.Fatalf("|DG| = %d, want 3: %v", len(bases.Exact), bases.Exact)
	}
	if len(bases.Approximate) != 5 {
		t.Fatalf("|Lux red| = %d, want 5: %v", len(bases.Approximate), bases.Approximate)
	}
	if bases.Size() != 8 {
		t.Errorf("Size = %d", bases.Size())
	}

	// Compare against all valid rules: the compression the paper is
	// about. At minConf 0 the classic example has 50 valid rules.
	all, err := res.AllRules(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) <= bases.Size() {
		t.Errorf("bases (%d) not smaller than all rules (%d)", bases.Size(), len(all))
	}
}

func TestEngineRoundTripViaFacade(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for iter := 0; iter < 20; iter++ {
		d := testgen.Random(r, 20, 8, 0.45)
		res, err := MineContext(context.Background(), d, WithAbsoluteMinSupport(1+r.Intn(3)))
		if err != nil {
			t.Fatal(err)
		}
		bases, err := res.Bases(0)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := bases.Engine()
		if err != nil {
			t.Fatal(err)
		}
		all, err := res.AllRules(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range all {
			got, err := eng.Rule(want.Antecedent, want.Consequent)
			if err != nil {
				t.Fatalf("iter %d: %v not derivable: %v", iter, want, err)
			}
			if got.Support != want.Support ||
				math.Abs(got.Confidence()-want.Confidence()) > 1e-12 {
				t.Fatalf("iter %d: %v derived wrong (%d, %v)",
					iter, want, got.Support, got.Confidence())
			}
		}
	}
}

func TestLuxenburgerFullViaFacade(t *testing.T) {
	d := classic(t)
	res, _ := MineContext(context.Background(), d, WithMinSupport(0.4))
	full, err := res.LuxenburgerFull(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 7 {
		t.Fatalf("|Lux full| = %d, want 7", len(full))
	}
	filtered, err := res.LuxenburgerFull(0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range filtered {
		if r.Confidence() < 0.7 {
			t.Errorf("rule %v below threshold", r)
		}
	}
}

func TestGenericAndInformativeViaFacade(t *testing.T) {
	d := classic(t)
	res, _ := MineContext(context.Background(), d, WithMinSupport(0.4))
	gb, err := res.GenericBasis()
	if err != nil {
		t.Fatal(err)
	}
	if len(gb) != 7 {
		t.Fatalf("|GB| = %d, want 7", len(gb))
	}
	ib, err := res.InformativeBasis(0, false)
	if err != nil {
		t.Fatal(err)
	}
	ibRed, err := res.InformativeBasis(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ibRed) > len(ib) {
		t.Errorf("reduced IB (%d) larger than IB (%d)", len(ibRed), len(ib))
	}

	// Charm-mined results cannot produce generator bases.
	resCharm, _ := MineContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm("charm"))
	if _, err := resCharm.GenericBasis(); err == nil {
		t.Error("GenericBasis on Charm result should fail")
	}
	if _, err := resCharm.InformativeBasis(0, true); err == nil {
		t.Error("InformativeBasis on Charm result should fail")
	}
}

func TestPseudoClosedViaFacade(t *testing.T) {
	d := classic(t)
	res, _ := MineContext(context.Background(), d, WithMinSupport(0.4))
	ps, err := res.PseudoClosedItemsets()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("|FP| = %d, want 3", len(ps))
	}
}

func TestClosureAndSupportViaFacade(t *testing.T) {
	d := classic(t)
	res, _ := MineContext(context.Background(), d, WithMinSupport(0.4))
	cl, ok := res.Closure(Items(0))
	if !ok || !cl.Items.Equal(Items(0, 2)) {
		t.Errorf("Closure(A) = %v,%v", cl.Items, ok)
	}
	sup, ok := res.Support(Items(1, 2))
	if !ok || sup != 3 {
		t.Errorf("Support(BC) = %d,%v", sup, ok)
	}
	if _, ok := res.Support(Items(3)); ok {
		t.Error("Support(D) should fail at minsup 2")
	}
}

func TestLatticeExports(t *testing.T) {
	d := classic(t)
	res, _ := MineContext(context.Background(), d, WithMinSupport(0.4))
	dot := res.LatticeDOT()
	if !strings.Contains(dot, "digraph lattice") {
		t.Error("DOT missing header")
	}
	edges := res.LatticeEdges()
	if len(edges) != 7 {
		t.Errorf("|edges| = %d, want 7", len(edges))
	}
}

func TestMineFrequentBaselines(t *testing.T) {
	d := classic(t)
	ctx := context.Background()
	ap, err := MineFrequentContext(ctx, d, WithMinSupport(0.4), WithAlgorithm("apriori"))
	if err != nil {
		t.Fatal(err)
	}
	ec, err := MineFrequentContext(ctx, d, WithMinSupport(0.4), WithAlgorithm("eclat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ap) != 15 || len(ec) != 15 {
		t.Fatalf("baselines disagree: apriori %d, eclat %d", len(ap), len(ec))
	}
	for i := range ap {
		if !ap[i].Items.Equal(ec[i].Items) || ap[i].Support != ec[i].Support {
			t.Fatalf("item %d differs", i)
		}
	}
}

func TestFormatRulesUsesNames(t *testing.T) {
	d := classic(t)
	named, err := d.WithNames([]string{"A", "B", "C", "D", "E"})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := MineContext(context.Background(), named, WithMinSupport(0.4))
	bases, _ := res.Bases(0)
	out := FormatRules(bases.Exact, named)
	if !strings.Contains(out, "{A} → {C}") {
		t.Errorf("FormatRules output:\n%s", out)
	}
}

func TestRuleMetricsViaFacade(t *testing.T) {
	d := classic(t)
	res, _ := MineContext(context.Background(), d, WithMinSupport(0.4))
	all, _ := res.AllRules(0.5)
	if len(all) == 0 {
		t.Fatal("no rules")
	}
	m, err := RuleMetrics(all[0], d.NumTransactions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Support <= 0 || m.Confidence < 0.5 {
		t.Errorf("metrics = %+v", m)
	}
}

// TestResultConcurrentAccess exercises the lazy caches from multiple
// goroutines; run with -race.
func TestResultConcurrentAccess(t *testing.T) {
	d := classic(t)
	res, err := MineContext(context.Background(), d, WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := res.FrequentItemsets(); err != nil {
				t.Error(err)
			}
			if _, err := res.Bases(0.5); err != nil {
				t.Error(err)
			}
			if res.LatticeDOT() == "" {
				t.Error("empty DOT")
			}
			if _, err := res.AllRules(0.5); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestEndToEndMushroomRegime is the headline behaviour on correlated
// data: the bases are dramatically smaller than the rule set.
func TestEndToEndMushroomRegime(t *testing.T) {
	d, err := gen.Mushroom(gen.MushroomConfig{NumObjects: 600, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineContext(context.Background(), d, WithMinSupport(0.3))
	if err != nil {
		t.Fatal(err)
	}
	bases, err := res.Bases(0.5)
	if err != nil {
		t.Fatal(err)
	}
	all, err := res.AllRules(0.5)
	if err != nil {
		t.Fatal(err)
	}
	exact := 0
	for _, r := range all {
		if r.IsExact() {
			exact++
		}
	}
	if exact == 0 {
		t.Skip("no exact rules at this scale")
	}
	if len(bases.Exact) >= exact {
		t.Errorf("DG (%d) not smaller than exact rules (%d)", len(bases.Exact), exact)
	}
	if bases.Size() >= len(all) {
		t.Errorf("bases (%d) not smaller than all rules (%d)", bases.Size(), len(all))
	}
}

func TestEndToEndQuestRegime(t *testing.T) {
	d, err := gen.Quest(gen.T10I4(1500, 120, 11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineContext(context.Background(), d, WithMinSupport(0.01))
	if err != nil {
		t.Fatal(err)
	}
	// Weakly correlated: few or no exact rules.
	bases, err := res.Bases(0.5)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := res.FrequentItemsets()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClosed() == 0 || len(fi) == 0 {
		t.Skip("no itemsets at this scale")
	}
	t.Logf("quest: |FI|=%d |FC|=%d |DG|=%d |LuxRed|=%d",
		len(fi), res.NumClosed(), len(bases.Exact), len(bases.Approximate))
}
