package closedrules

import "closedrules/internal/gen"

// The synthetic workload generators recreate the statistical regimes
// of the paper's evaluation datasets (see DESIGN.md §3). They are part
// of the public API so downstream users can reproduce the experiment
// suite and build comparable workloads.

// QuestConfig parameterizes the IBM-Quest-style market-basket
// generator (weakly correlated regime).
type QuestConfig = gen.QuestConfig

// CensusConfig parameterizes the census-like nominal-data generator
// (strongly correlated regime).
type CensusConfig = gen.CensusConfig

// MushroomConfig parameterizes the mushroom-like nominal-data
// generator (dense, maximally correlated regime).
type MushroomConfig = gen.MushroomConfig

// QuestT10I4 returns the canonical T10I4 configuration at the given
// scale.
func QuestT10I4(numTx, numItems int, seed int64) QuestConfig {
	return gen.T10I4(numTx, numItems, seed)
}

// QuestT20I6 returns the canonical T20I6 configuration.
func QuestT20I6(numTx, numItems int, seed int64) QuestConfig {
	return gen.T20I6(numTx, numItems, seed)
}

// CensusC20 returns a C20D10K-shaped configuration at the given scale.
func CensusC20(numObjects int, seed int64) CensusConfig { return gen.C20(numObjects, seed) }

// CensusC73 returns a C73D10K-shaped configuration at the given scale.
func CensusC73(numObjects int, seed int64) CensusConfig { return gen.C73(numObjects, seed) }

// GenerateQuest synthesizes a market-basket dataset.
func GenerateQuest(cfg QuestConfig) (*Dataset, error) { return gen.Quest(cfg) }

// GenerateCensus synthesizes a census-like dataset.
func GenerateCensus(cfg CensusConfig) (*Dataset, error) { return gen.Census(cfg) }

// GenerateMushroom synthesizes a mushroom-like dataset.
func GenerateMushroom(cfg MushroomConfig) (*Dataset, error) { return gen.Mushroom(cfg) }
