package closedrules

// One benchmark family per experiment of DESIGN.md §4 (E1–E8). The
// heavier paper-shaped tables come from `go run ./cmd/benchtables`;
// these benchmarks time the core computation of each experiment on
// bench-friendly dataset sizes so `go test -bench=.` stays fast while
// still exposing the regressions that matter (candidate explosion,
// lattice construction, basis extraction, inference).

import (
	"context"
	"testing"

	"closedrules/internal/aclose"
	"closedrules/internal/apriori"
	"closedrules/internal/charm"
	"closedrules/internal/closealg"
	"closedrules/internal/core"
	"closedrules/internal/dataset"
	"closedrules/internal/eclat"
	"closedrules/internal/galois"
	"closedrules/internal/gen"
	"closedrules/internal/itemset"
	"closedrules/internal/lattice"
	"closedrules/internal/naive"
	"closedrules/internal/rules"
	"closedrules/internal/titanic"
)

// Benchmark datasets, built once.
var benchData = struct {
	quest    *dataset.Dataset
	mushroom *dataset.Dataset
	census   *dataset.Dataset
}{}

func questBench(b *testing.B) *dataset.Dataset {
	b.Helper()
	if benchData.quest == nil {
		d, err := gen.Quest(gen.T10I4(2000, 200, 1))
		if err != nil {
			b.Fatal(err)
		}
		benchData.quest = d
	}
	return benchData.quest
}

func mushroomBench(b *testing.B) *dataset.Dataset {
	b.Helper()
	if benchData.mushroom == nil {
		d, err := gen.Mushroom(gen.MushroomConfig{NumObjects: 2000, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		benchData.mushroom = d
	}
	return benchData.mushroom
}

func censusBench(b *testing.B) *dataset.Dataset {
	b.Helper()
	if benchData.census == nil {
		d, err := gen.Census(gen.C20(2000, 4))
		if err != nil {
			b.Fatal(err)
		}
		benchData.census = d
	}
	return benchData.census
}

// --- E1: |FI| vs |FC| --------------------------------------------------

func benchE1(b *testing.B, d *dataset.Dataset, minSup float64) {
	abs := d.AbsoluteSupport(minSup)
	b.ResetTimer()
	var nFI, nFC int
	for i := 0; i < b.N; i++ {
		fam, err := eclat.Mine(d, abs)
		if err != nil {
			b.Fatal(err)
		}
		fc, _, err := closealg.Mine(d, abs)
		if err != nil {
			b.Fatal(err)
		}
		nFI, nFC = fam.Len(), fc.Len()
	}
	b.ReportMetric(float64(nFI), "FI")
	b.ReportMetric(float64(nFC), "FC")
}

func BenchmarkE1_ClosedVsFrequent_T10I4(b *testing.B)    { benchE1(b, questBench(b), 0.01) }
func BenchmarkE1_ClosedVsFrequent_Mushroom(b *testing.B) { benchE1(b, mushroomBench(b), 0.3) }
func BenchmarkE1_ClosedVsFrequent_Census(b *testing.B)   { benchE1(b, censusBench(b), 0.5) }

// --- E2: exact rules vs DG basis ---------------------------------------

func benchE2(b *testing.B, d *dataset.Dataset, minSup float64) {
	abs := d.AbsoluteSupport(minSup)
	fam, _, err := apriori.Mine(d, abs)
	if err != nil {
		b.Fatal(err)
	}
	fc, _, err := closealg.Mine(d, abs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var nDG int
	for i := 0; i < b.N; i++ {
		dg, err := core.DuquenneGuigues(d.NumTransactions(), fam, fc)
		if err != nil {
			b.Fatal(err)
		}
		nDG = len(dg)
	}
	b.ReportMetric(float64(nDG), "DGrules")
}

func BenchmarkE2_DGBasis_Mushroom(b *testing.B) { benchE2(b, mushroomBench(b), 0.3) }
func BenchmarkE2_DGBasis_Census(b *testing.B)   { benchE2(b, censusBench(b), 0.5) }
func BenchmarkE2_DGBasis_T10I4(b *testing.B)    { benchE2(b, questBench(b), 0.01) }

// BenchmarkE2_ExactRules_Mushroom is the baseline E2 compares against:
// enumerating every exact rule.
func BenchmarkE2_ExactRules_Mushroom(b *testing.B) {
	d := mushroomBench(b)
	abs := d.AbsoluteSupport(0.3)
	fam, _, err := apriori.Mine(d, abs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		exact, _, err := rules.Count(fam, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		n = exact
	}
	b.ReportMetric(float64(n), "exactRules")
}

// --- E3: approximate rules vs Luxenburger bases ------------------------

func benchE3(b *testing.B, d *dataset.Dataset, minSup, minConf float64) {
	abs := d.AbsoluteSupport(minSup)
	fc, _, err := closealg.Mine(d, abs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var nRed int
	for i := 0; i < b.N; i++ {
		lat := lattice.Build(fc)
		red, err := core.LuxenburgerReduction(lat, fc, core.LuxenburgerOptions{MinConfidence: minConf})
		if err != nil {
			b.Fatal(err)
		}
		nRed = len(red)
	}
	b.ReportMetric(float64(nRed), "LuxRed")
}

func BenchmarkE3_LuxReduction_Mushroom(b *testing.B) { benchE3(b, mushroomBench(b), 0.3, 0.5) }
func BenchmarkE3_LuxReduction_Census(b *testing.B)   { benchE3(b, censusBench(b), 0.5, 0.5) }

// BenchmarkE3_AllRules_Mushroom is the baseline: counting all valid
// rules at the same thresholds.
func BenchmarkE3_AllRules_Mushroom(b *testing.B) {
	d := mushroomBench(b)
	abs := d.AbsoluteSupport(0.3)
	fam, _, err := apriori.Mine(d, abs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		_, approx, err := rules.Count(fam, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		n = approx
	}
	b.ReportMetric(float64(n), "approxRules")
}

// --- E4: miner runtimes -------------------------------------------------

func benchMiner(b *testing.B, d *dataset.Dataset, minSup float64, mine func(*dataset.Dataset, int) error) {
	abs := d.AbsoluteSupport(minSup)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mine(d, abs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4_Apriori_T10I4(b *testing.B) {
	benchMiner(b, questBench(b), 0.01, func(d *dataset.Dataset, s int) error {
		_, _, err := apriori.Mine(d, s)
		return err
	})
}

func BenchmarkE4_Close_T10I4(b *testing.B) {
	benchMiner(b, questBench(b), 0.01, func(d *dataset.Dataset, s int) error {
		_, _, err := closealg.Mine(d, s)
		return err
	})
}

func BenchmarkE4_AClose_T10I4(b *testing.B) {
	benchMiner(b, questBench(b), 0.01, func(d *dataset.Dataset, s int) error {
		_, _, err := aclose.Mine(d, s)
		return err
	})
}

func BenchmarkE4_Apriori_Mushroom(b *testing.B) {
	benchMiner(b, mushroomBench(b), 0.3, func(d *dataset.Dataset, s int) error {
		_, _, err := apriori.Mine(d, s)
		return err
	})
}

func BenchmarkE4_Close_Mushroom(b *testing.B) {
	benchMiner(b, mushroomBench(b), 0.3, func(d *dataset.Dataset, s int) error {
		_, _, err := closealg.Mine(d, s)
		return err
	})
}

func BenchmarkE4_AClose_Mushroom(b *testing.B) {
	benchMiner(b, mushroomBench(b), 0.3, func(d *dataset.Dataset, s int) error {
		_, _, err := aclose.Mine(d, s)
		return err
	})
}

// --- E5: scale-up -------------------------------------------------------

func benchE5(b *testing.B, numTx int) {
	d, err := gen.Quest(gen.T10I4(numTx, 200, 7))
	if err != nil {
		b.Fatal(err)
	}
	abs := d.AbsoluteSupport(0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := closealg.Mine(d, abs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5_ScaleUp_Close_1K(b *testing.B) { benchE5(b, 1000) }
func BenchmarkE5_ScaleUp_Close_2K(b *testing.B) { benchE5(b, 2000) }
func BenchmarkE5_ScaleUp_Close_4K(b *testing.B) { benchE5(b, 4000) }
func BenchmarkE5_ScaleUp_Close_8K(b *testing.B) { benchE5(b, 8000) }

// --- E6: informative bases ----------------------------------------------

func BenchmarkE6_InformativeBasis_Mushroom(b *testing.B) {
	d := mushroomBench(b)
	abs := d.AbsoluteSupport(0.3)
	fc, _, err := closealg.Mine(d, abs)
	if err != nil {
		b.Fatal(err)
	}
	lat := lattice.Build(fc)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		ib, err := core.InformativeBasis(lat, fc, true, core.LuxenburgerOptions{MinConfidence: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		n = len(ib)
	}
	b.ReportMetric(float64(n), "IBrules")
}

// --- E7: full pipeline ----------------------------------------------------

func benchE7(b *testing.B, d *dataset.Dataset, minSup, minConf float64) {
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := MineContext(ctx, d, WithMinSupport(minSup))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.Bases(minConf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7_Pipeline_Census(b *testing.B)   { benchE7(b, censusBench(b), 0.5, 0.5) }
func BenchmarkE7_Pipeline_Mushroom(b *testing.B) { benchE7(b, mushroomBench(b), 0.3, 0.5) }

// BenchmarkE7_EngineDerivation times rule reconstruction from the
// bases (the query path a downstream user exercises).
func BenchmarkE7_EngineDerivation(b *testing.B) {
	d := mushroomBench(b)
	res, err := MineContext(context.Background(), d, WithMinSupport(0.3))
	if err != nil {
		b.Fatal(err)
	}
	bases, err := res.Bases(0)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := bases.Engine()
	if err != nil {
		b.Fatal(err)
	}
	if len(bases.Approximate) == 0 {
		b.Skip("no approximate rules")
	}
	queries := bases.Approximate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := eng.Rule(q.Antecedent, q.Consequent); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: closed-miner ablation -------------------------------------------

func BenchmarkE8_Close_Census(b *testing.B) {
	benchMiner(b, censusBench(b), 0.5, func(d *dataset.Dataset, s int) error {
		_, _, err := closealg.Mine(d, s)
		return err
	})
}

func BenchmarkE8_AClose_Census(b *testing.B) {
	benchMiner(b, censusBench(b), 0.5, func(d *dataset.Dataset, s int) error {
		_, _, err := aclose.Mine(d, s)
		return err
	})
}

func BenchmarkE8_Charm_Census(b *testing.B) {
	benchMiner(b, censusBench(b), 0.5, func(d *dataset.Dataset, s int) error {
		_, err := charm.Mine(d, s)
		return err
	})
}

func BenchmarkE8_Titanic_Census(b *testing.B) {
	benchMiner(b, censusBench(b), 0.5, func(d *dataset.Dataset, s int) error {
		_, _, err := titanic.Mine(d, s)
		return err
	})
}

func BenchmarkE8_NaiveClosed_Census(b *testing.B) {
	d := censusBench(b)
	ctx := d.Context()
	abs := d.AbsoluteSupport(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naive.ClosedItemsets(ctx, abs)
	}
}

// --- representation ablations ---------------------------------------------

// Eclat's tidset-bitset representation vs dEclat's diffsets: same
// output, different memory traffic (DESIGN.md design-choice ablation).
func BenchmarkAblation_EclatTidsets_T10I4(b *testing.B) {
	benchMiner(b, questBench(b), 0.01, func(d *dataset.Dataset, s int) error {
		_, err := eclat.Mine(d, s)
		return err
	})
}

func BenchmarkAblation_EclatDiffsets_T10I4(b *testing.B) {
	benchMiner(b, questBench(b), 0.01, func(d *dataset.Dataset, s int) error {
		_, err := eclat.MineDiffset(d, s)
		return err
	})
}

// Iceberg-lattice construction — the only super-linear stage of the
// pipeline (O(|FC|²)), parallelized over GOMAXPROCS.
func BenchmarkLatticeBuild_T10I4(b *testing.B) {
	d := questBench(b)
	fc, _, err := closealg.Mine(d, d.AbsoluteSupport(0.01))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lattice.Build(fc)
	}
}

// --- micro: substrate hot paths -------------------------------------------

func BenchmarkGaloisClosure_Mushroom(b *testing.B) {
	d := mushroomBench(b)
	ctx := d.Context()
	items := itemset.Of(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkItemset = galois.Closure(ctx, items)
	}
}

var benchSinkItemset itemset.Itemset
