package closedrules

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBasisGoldenFilesGenClose proves the one-pass generator path
// reproduces the two-pass answers exactly: every golden fixture —
// including the generator-requiring duquenne-guigues, generic and
// informative bases — built from a genclose-mined result must be
// byte-identical to the files pinned by the default (close) miner.
func TestBasisGoldenFilesGenClose(t *testing.T) {
	d := namedClassic(t)
	for _, algo := range []string{"genclose", "pgenclose"} {
		res, err := MineContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm(algo))
		if err != nil {
			t.Fatal(err)
		}
		if !res.HasGenerators() {
			t.Fatalf("%s: HasGenerators() = false", algo)
		}
		for _, tc := range goldenBasisCases {
			rs, err := res.Basis(context.Background(), tc.name, tc.opts...)
			if err != nil {
				t.Fatalf("%s/%s: %v", algo, tc.file, err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "basis", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			if got := FormatRules(rs.Rules, d); got != string(want) {
				t.Errorf("%s/%s: one-pass basis diverged from golden file:\ngot:\n%swant:\n%s",
					algo, tc.file, got, want)
			}
		}
	}
}

// TestBasisGeneratorResolution covers the opt-in auto-resolve: a
// generator-requiring basis on a generator-less (charm) result
// succeeds under WithGeneratorResolution — with output byte-identical
// to the golden files — and keeps failing without it.
func TestBasisGeneratorResolution(t *testing.T) {
	d := namedClassic(t)
	res, err := MineContext(context.Background(), d, WithMinSupport(0.4), WithAlgorithm("charm"))
	if err != nil {
		t.Fatal(err)
	}
	if res.HasGenerators() {
		t.Fatal("charm result claims generators")
	}
	ctx := context.Background()
	for _, tc := range goldenBasisCases {
		if tc.name != "generic" && tc.name != "informative" {
			continue
		}
		opts := append([]BasisOption{WithGeneratorResolution()}, tc.opts...)
		rs, err := res.Basis(ctx, tc.name, opts...)
		if err != nil {
			t.Fatalf("%s with resolution: %v", tc.file, err)
		}
		want, err := os.ReadFile(filepath.Join("testdata", "basis", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		if got := FormatRules(rs.Rules, d); got != string(want) {
			t.Errorf("%s: resolved basis diverged from golden file:\ngot:\n%swant:\n%s",
				tc.file, got, want)
		}
	}
	// The re-mine is memoized once on the Result.
	res.genMu.Lock()
	resolved := res.genFC != nil
	res.genMu.Unlock()
	if !resolved {
		t.Error("generator re-mine not memoized on the Result")
	}
	// Without the opt-in the explicit error is preserved, and it now
	// points at both escape hatches.
	_, err = res.Basis(ctx, "generic")
	if err == nil {
		t.Fatal("generic basis accepted without generators or resolution")
	}
	for _, want := range []string{"generators", "charm", "genclose", "WithGeneratorResolution"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("requirement error missing %q: %v", want, err)
		}
	}
}

// TestBasisGeneratorResolutionCancelled asserts a failed resolution is
// not cached: a cancelled re-mine surfaces the context error, and a
// later build with a live context succeeds.
func TestBasisGeneratorResolutionCancelled(t *testing.T) {
	res, err := MineContext(context.Background(), classic(t), WithMinSupport(0.4), WithAlgorithm("charm"))
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := res.Basis(cancelled, "generic", WithGeneratorResolution()); err == nil {
		t.Fatal("cancelled resolution reported success")
	}
	if _, err := res.Basis(context.Background(), "generic", WithGeneratorResolution()); err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
}
