// Package bench defines the experiment suite reconstructed from the
// paper's companion evaluations (DESIGN.md §4): the workload catalog
// (four datasets in two correlation regimes), the experiment runners
// E1–E8, and a plain-text table renderer. Both the benchtables command
// and the root bench_test.go drive experiments through this package so
// the numbers in EXPERIMENTS.md and the benchmarks cannot drift apart.
package bench

import (
	"fmt"
	"strings"
	"time"

	"closedrules/internal/dataset"
	"closedrules/internal/gen"
)

// Scale selects the dataset sizes: Small keeps `go test -bench` quick;
// Full approaches the papers' original scales.
type Scale int

// The three benchmark scales, smallest first.
const (
	Small Scale = iota
	Medium
	Full
)

// ParseScale maps a flag value to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "full":
		return Full, nil
	}
	return Small, fmt.Errorf("bench: unknown scale %q", s)
}

// Workload is one evaluation dataset with its sweep parameters.
type Workload struct {
	Name     string
	D        *dataset.Dataset
	MinSups  []float64 // relative minimum supports, descending
	MinConfs []float64 // confidence sweep for rule experiments
	// RuleMinSup is the support used by the rule/bases experiments
	// (the papers fix one support per dataset and sweep confidence).
	RuleMinSup float64
}

// Workloads builds the four canonical datasets at the given scale.
func Workloads(s Scale) ([]Workload, error) {
	type dims struct{ questTx, questItems, mushObj, censObj int }
	var d dims
	switch s {
	case Small:
		d = dims{questTx: 2000, questItems: 200, mushObj: 1000, censObj: 1000}
	case Medium:
		d = dims{questTx: 10000, questItems: 500, mushObj: 4000, censObj: 5000}
	case Full:
		d = dims{questTx: 100000, questItems: 1000, mushObj: 8124, censObj: 10000}
	default:
		return nil, fmt.Errorf("bench: bad scale %d", s)
	}

	t10, err := gen.Quest(gen.T10I4(d.questTx, d.questItems, 1))
	if err != nil {
		return nil, err
	}
	t20, err := gen.Quest(gen.T20I6(d.questTx, d.questItems, 2))
	if err != nil {
		return nil, err
	}
	mush, err := gen.Mushroom(gen.MushroomConfig{NumObjects: d.mushObj, Seed: 3})
	if err != nil {
		return nil, err
	}
	c20, err := gen.Census(gen.C20(d.censObj, 4))
	if err != nil {
		return nil, err
	}

	return []Workload{
		{
			Name: fmt.Sprintf("T10I4D%dK", d.questTx/1000), D: t10,
			MinSups:    []float64{0.02, 0.01, 0.005},
			MinConfs:   []float64{0.9, 0.7, 0.5},
			RuleMinSup: 0.005,
		},
		{
			Name: fmt.Sprintf("T20I6D%dK", d.questTx/1000), D: t20,
			MinSups:    []float64{0.02, 0.01},
			MinConfs:   []float64{0.9, 0.7, 0.5},
			RuleMinSup: 0.01,
		},
		{
			Name: "MUSHROOMS*", D: mush,
			MinSups:    []float64{0.6, 0.5, 0.4, 0.3},
			MinConfs:   []float64{0.9, 0.7, 0.5},
			RuleMinSup: 0.3,
		},
		{
			Name: "C20*", D: c20,
			MinSups:    []float64{0.8, 0.7, 0.6, 0.5},
			MinConfs:   []float64{0.9, 0.7, 0.5},
			RuleMinSup: 0.5,
		},
	}, nil
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// String renders an aligned plain-text table.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// timed runs fn and returns its duration.
func timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

func ratio(small, big int) string {
	if small == 0 {
		if big == 0 {
			return "—"
		}
		return "∞"
	}
	return fmt.Sprintf("%.1f×", float64(big)/float64(small))
}
