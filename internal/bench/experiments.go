package bench

import (
	"fmt"
	"time"

	"closedrules/internal/aclose"
	"closedrules/internal/apriori"
	"closedrules/internal/charm"
	"closedrules/internal/closealg"
	"closedrules/internal/core"
	"closedrules/internal/gen"
	"closedrules/internal/itemset"
	"closedrules/internal/lattice"
	"closedrules/internal/rules"
	"closedrules/internal/titanic"
)

// E1 reproduces the |FI| vs |FC| comparison (ICDT'99 / IS'99): the
// precondition of the whole approach — on correlated data the closed
// sets are far fewer than the frequent sets.
func E1(w Workload) (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  fmt.Sprintf("frequent vs frequent closed itemsets — %s", w.Name),
		Header: []string{"minsup", "|FI|", "|FC|", "|FI|/|FC|"},
	}
	for _, ms := range w.MinSups {
		abs := w.D.AbsoluteSupport(ms)
		fam, _, err := apriori.Mine(w.D, abs)
		if err != nil {
			return t, err
		}
		fc, _, err := closealg.Mine(w.D, abs)
		if err != nil {
			return t, err
		}
		// FC includes the bottom element; FI excludes ∅ by convention.
		nFC := fc.Len() - 1
		t.Rows = append(t.Rows, []string{
			pct(ms), fmt.Sprint(fam.Len()), fmt.Sprint(nFC), ratio(nFC, fam.Len()),
		})
	}
	return t, nil
}

// E2 reproduces the exact-rules vs Duquenne–Guigues comparison
// (Theorem 1; SIGKDD Expl. Tab. "exact rules"): the DG basis is
// dramatically smaller than the set of exact rules on correlated data.
func E2(w Workload) (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  fmt.Sprintf("exact rules vs Duquenne–Guigues basis — %s (minsup %s)", w.Name, pct(w.RuleMinSup)),
		Header: []string{"minsup", "exact rules", "|DG basis|", "reduction"},
	}
	abs := w.D.AbsoluteSupport(w.RuleMinSup)
	fam, _, err := apriori.Mine(w.D, abs)
	if err != nil {
		return t, err
	}
	fc, _, err := closealg.Mine(w.D, abs)
	if err != nil {
		return t, err
	}
	exact, _, err := rules.Count(fam, 0)
	if err != nil {
		return t, err
	}
	dg, err := core.DuquenneGuigues(w.D.NumTransactions(), fam, fc)
	if err != nil {
		return t, err
	}
	nDG := len(core.DropEmptyAntecedent(dg))
	t.Rows = append(t.Rows, []string{
		pct(w.RuleMinSup), fmt.Sprint(exact), fmt.Sprint(nDG), ratio(nDG, exact),
	})
	return t, nil
}

// E3 reproduces the approximate-rules vs Luxenburger bases comparison
// (Theorem 2): all valid approximate rules vs the full Luxenburger
// basis vs its transitive reduction, per confidence threshold.
func E3(w Workload) (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  fmt.Sprintf("approximate rules vs Luxenburger bases — %s (minsup %s)", w.Name, pct(w.RuleMinSup)),
		Header: []string{"minconf", "approx rules", "|Lux full|", "|Lux reduction|", "reduction"},
	}
	abs := w.D.AbsoluteSupport(w.RuleMinSup)
	fam, _, err := apriori.Mine(w.D, abs)
	if err != nil {
		return t, err
	}
	fc, _, err := closealg.Mine(w.D, abs)
	if err != nil {
		return t, err
	}
	lat := lattice.Build(fc)
	for _, mc := range w.MinConfs {
		_, approx, err := rules.Count(fam, mc)
		if err != nil {
			return t, err
		}
		full, err := core.LuxenburgerFull(fc, core.LuxenburgerOptions{MinConfidence: mc})
		if err != nil {
			return t, err
		}
		red, err := core.LuxenburgerReduction(lat, fc, core.LuxenburgerOptions{MinConfidence: mc})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			pct(mc), fmt.Sprint(approx), fmt.Sprint(len(full)), fmt.Sprint(len(red)),
			ratio(len(red), approx),
		})
	}
	return t, nil
}

// E4 reproduces the Apriori vs Close vs A-Close runtime comparison
// (IS'99 Figs. 9–11, ICDT'99): all three on the same counting
// substrate, with pass counts.
func E4(w Workload) (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  fmt.Sprintf("miner runtimes — %s", w.Name),
		Header: []string{"minsup", "apriori ms", "close ms", "a-close ms", "apriori passes", "close passes", "a-close passes"},
	}
	for _, ms_ := range w.MinSups {
		abs := w.D.AbsoluteSupport(ms_)
		var aStats apriori.Stats
		da, err := timed(func() error {
			_, s, err := apriori.Mine(w.D, abs)
			aStats = s
			return err
		})
		if err != nil {
			return t, err
		}
		var cStats closealg.Stats
		dc, err := timed(func() error {
			_, s, err := closealg.Mine(w.D, abs)
			cStats = s
			return err
		})
		if err != nil {
			return t, err
		}
		var acStats aclose.Stats
		dac, err := timed(func() error {
			_, s, err := aclose.Mine(w.D, abs)
			acStats = s
			return err
		})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			pct(ms_), ms(da), ms(dc), ms(dac),
			fmt.Sprint(aStats.Passes), fmt.Sprint(cStats.Passes), fmt.Sprint(acStats.Passes),
		})
	}
	return t, nil
}

// E5 reproduces the scale-up experiment (IS'99 Fig. 12): Close runtime
// as the number of transactions grows, at fixed relative support.
func E5(scale Scale) (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "scale-up: Close runtime vs number of transactions (T10I4, minsup 1%)",
		Header: []string{"transactions", "close ms", "|FC|"},
	}
	base := 2000
	steps := []int{1, 2, 4}
	if scale == Medium {
		base, steps = 5000, []int{1, 2, 4, 8}
	}
	if scale == Full {
		base, steps = 12500, []int{1, 2, 4, 8}
	}
	for _, k := range steps {
		n := base * k
		d, err := gen.Quest(gen.T10I4(n, 200, 7))
		if err != nil {
			return t, err
		}
		abs := d.AbsoluteSupport(0.01)
		var nFC int
		dur, err := timed(func() error {
			fc, _, err := closealg.Mine(d, abs)
			if err == nil {
				nFC = fc.Len()
			}
			return err
		})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), ms(dur), fmt.Sprint(nFC)})
	}
	return t, nil
}

// E6 reproduces the informative/min-max bases table (the follow-on of
// the same authors): generic basis vs exact rules and informative
// basis (full and reduced) vs approximate rules.
func E6(w Workload) (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  fmt.Sprintf("informative bases — %s (minsup %s)", w.Name, pct(w.RuleMinSup)),
		Header: []string{"minconf", "exact", "|GB|", "approx", "|IB|", "|IB reduced|"},
	}
	abs := w.D.AbsoluteSupport(w.RuleMinSup)
	fam, _, err := apriori.Mine(w.D, abs)
	if err != nil {
		return t, err
	}
	fc, _, err := closealg.Mine(w.D, abs)
	if err != nil {
		return t, err
	}
	lat := lattice.Build(fc)
	gb, err := core.GenericBasis(fc)
	if err != nil {
		return t, err
	}
	for _, mc := range w.MinConfs {
		exact, approx, err := rules.Count(fam, mc)
		if err != nil {
			return t, err
		}
		ib, err := core.InformativeBasis(lat, fc, false, core.LuxenburgerOptions{MinConfidence: mc})
		if err != nil {
			return t, err
		}
		ibr, err := core.InformativeBasis(lat, fc, true, core.LuxenburgerOptions{MinConfidence: mc})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			pct(mc), fmt.Sprint(exact), fmt.Sprint(len(gb)),
			fmt.Sprint(approx), fmt.Sprint(len(ib)), fmt.Sprint(len(ibr)),
		})
	}
	return t, nil
}

// E7 measures the cost of basis extraction on top of closed-itemset
// mining: the paper's pipeline must not be dominated by the basis step.
func E7(w Workload) (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  fmt.Sprintf("pipeline cost breakdown — %s (minsup %s)", w.Name, pct(w.RuleMinSup)),
		Header: []string{"stage", "ms", "output size"},
	}
	abs := w.D.AbsoluteSupport(w.RuleMinSup)

	var fam *itemset.Family
	dFam, err := timed(func() error {
		f, _, err := apriori.Mine(w.D, abs)
		fam = f
		return err
	})
	if err != nil {
		return t, err
	}
	fcRes, _, err := closealg.Mine(w.D, abs)
	if err != nil {
		return t, err
	}
	dClose, err := timed(func() error {
		_, _, err := closealg.Mine(w.D, abs)
		return err
	})
	if err != nil {
		return t, err
	}
	var lat *lattice.Lattice
	dLat, err := timed(func() error {
		lat = lattice.Build(fcRes)
		return nil
	})
	if err != nil {
		return t, err
	}
	var dg []rules.Rule
	dDG, err := timed(func() error {
		var err error
		dg, err = core.DuquenneGuigues(w.D.NumTransactions(), fam, fcRes)
		return err
	})
	if err != nil {
		return t, err
	}
	var red []rules.Rule
	dRed, err := timed(func() error {
		var err error
		red, err = core.LuxenburgerReduction(lat, fcRes, core.LuxenburgerOptions{})
		return err
	})
	if err != nil {
		return t, err
	}
	var nAll int
	dAll, err := timed(func() error {
		e, a, err := rules.Count(fam, 0.5)
		nAll = e + a
		return err
	})
	if err != nil {
		return t, err
	}

	t.Rows = [][]string{
		{"mine FC (Close)", ms(dClose), fmt.Sprintf("%d closed", fcRes.Len())},
		{"mine FI (Apriori)", ms(dFam), fmt.Sprintf("%d frequent", fam.Len())},
		{"build lattice", ms(dLat), fmt.Sprintf("%d edges", lat.NumEdges())},
		{"DG basis", ms(dDG), fmt.Sprintf("%d rules", len(dg))},
		{"Lux reduction", ms(dRed), fmt.Sprintf("%d rules", len(red))},
		{"all rules @50% (count)", ms(dAll), fmt.Sprintf("%d rules", nAll)},
	}
	return t, nil
}

// E8 is the ablation over closed-itemset miners: the bases are
// miner-independent, so the cheapest correct FC producer wins.
func E8(w Workload) (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  fmt.Sprintf("closed-miner ablation — %s", w.Name),
		Header: []string{"minsup", "close ms", "a-close ms", "titanic ms", "charm ms", "|FC| (agree)"},
	}
	// TITANIC's support-only closures blow up on weakly correlated
	// data (faithful to the literature: it targets dense contexts).
	// Rows where even the level-wise A-Close takes long would take
	// TITANIC orders of magnitude longer; skip those.
	const titanicGate = 300 * time.Millisecond
	for _, ms_ := range w.MinSups {
		abs := w.D.AbsoluteSupport(ms_)
		var n1, n2, n3, n4 int
		d1, err := timed(func() error {
			fc, _, err := closealg.Mine(w.D, abs)
			if err == nil {
				n1 = fc.Len()
			}
			return err
		})
		if err != nil {
			return t, err
		}
		d2, err := timed(func() error {
			fc, _, err := aclose.Mine(w.D, abs)
			if err == nil {
				n2 = fc.Len()
			}
			return err
		})
		if err != nil {
			return t, err
		}
		titanicCell := "(skipped)"
		n4 = n1
		if d2 <= titanicGate {
			d4, err := timed(func() error {
				fc, _, err := titanic.Mine(w.D, abs)
				if err == nil {
					n4 = fc.Len()
				}
				return err
			})
			if err != nil {
				return t, err
			}
			titanicCell = ms(d4)
		}
		d3, err := timed(func() error {
			fc, err := charm.Mine(w.D, abs)
			if err == nil {
				n3 = fc.Len()
			}
			return err
		})
		if err != nil {
			return t, err
		}
		agree := "yes"
		if n1 != n2 || n2 != n3 || n3 != n4 {
			agree = fmt.Sprintf("NO (%d/%d/%d/%d)", n1, n2, n3, n4)
		}
		t.Rows = append(t.Rows, []string{
			pct(ms_), ms(d1), ms(d2), titanicCell, ms(d3), fmt.Sprintf("%d (%s)", n1, agree),
		})
	}
	t.Notes = "titanic is skipped on rows where a-close needs >300ms: its support-only closures target dense data"
	return t, nil
}

// All runs every experiment at the given scale.
func All(scale Scale) ([]Table, error) {
	ws, err := Workloads(scale)
	if err != nil {
		return nil, err
	}
	var tables []Table
	run := func(t Table, err error) error {
		if err != nil {
			return err
		}
		tables = append(tables, t)
		return nil
	}
	for _, w := range ws {
		if err := run(E1(w)); err != nil {
			return nil, err
		}
	}
	for _, w := range ws {
		if err := run(E2(w)); err != nil {
			return nil, err
		}
	}
	for _, w := range ws {
		if err := run(E3(w)); err != nil {
			return nil, err
		}
	}
	for _, w := range ws {
		if err := run(E4(w)); err != nil {
			return nil, err
		}
	}
	if err := run(E5(scale)); err != nil {
		return nil, err
	}
	for _, w := range ws {
		if err := run(E6(w)); err != nil {
			return nil, err
		}
	}
	for _, w := range ws {
		if err := run(E7(w)); err != nil {
			return nil, err
		}
	}
	for _, w := range ws {
		if err := run(E8(w)); err != nil {
			return nil, err
		}
	}
	return tables, nil
}
