package bench

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestExecuteAppendMeasuresEveryCell(t *testing.T) {
	run, err := ExecuteAppend(context.Background(), AppendConfig{
		Label:     "append-test",
		Scale:     Small,
		Fractions: []float64{0.01},
		Batches:   3,
		MinTime:   time.Millisecond,
		MaxIters:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 workloads × 1 fraction × (incremental + remine).
	if len(run.Results) != 8 {
		t.Fatalf("%d results, want 8", len(run.Results))
	}
	sets := map[string]int{}
	for _, r := range run.Results {
		if r.Kind != "update" {
			t.Errorf("%s/%s kind = %q, want update", r.Workload, r.Miner, r.Kind)
		}
		if r.NsPerOp <= 0 || r.Iterations < 1 || r.Sets < 1 {
			t.Errorf("unmeasured cell: %+v", r)
		}
		if !strings.HasSuffix(r.Workload, "+1.0%") {
			t.Errorf("workload %q missing the batch-fraction suffix", r.Workload)
		}
		if prev, seen := sets[r.Workload]; seen && prev != r.Sets {
			t.Errorf("%s: incremental and remine report different set counts (%d vs %d)", r.Workload, prev, r.Sets)
		}
		sets[r.Workload] = r.Sets
	}
	if got := Speedups(run, "remine", "incremental"); len(got) != 4 {
		t.Errorf("Speedups paired %d workloads, want 4", len(got))
	}
	// An update run must round-trip the report pipeline.
	rep := Report{Schema: ReportSchema, Runs: []Run{run}}
	var sb strings.Builder
	if err := WriteReport(&sb, rep); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	if _, err := ReadReport(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
}

func TestExecuteAppendValidation(t *testing.T) {
	if _, err := ExecuteAppend(context.Background(), AppendConfig{
		Label: "bad", Scale: Small, RemineMiner: "nosuchminer",
	}); err == nil {
		t.Error("unknown remine miner accepted")
	}
	// A batch fraction that consumes the whole dataset leaves no base.
	if _, err := ExecuteAppend(context.Background(), AppendConfig{
		Label: "bad", Scale: Small, Fractions: []float64{0.25}, Batches: 4,
		MinTime: time.Millisecond, MaxIters: 1,
	}); err == nil || !strings.Contains(err.Error(), "infeasible") {
		t.Errorf("err = %v, want schedule infeasible", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteAppend(ctx, AppendConfig{
		Label: "cancelled", Scale: Small, Fractions: []float64{0.01},
		MinTime: time.Millisecond, MaxIters: 1,
	}); err == nil {
		t.Error("cancelled context accepted")
	}
}
