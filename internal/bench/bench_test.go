package bench

import (
	"strings"
	"testing"
)

func TestParseScale(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Scale
		ok   bool
	}{
		{"small", Small, true},
		{"MEDIUM", Medium, true},
		{"Full", Full, true},
		{"tiny", Small, false},
	} {
		got, err := ParseScale(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseScale(%q) = %v, %v", c.in, got, err)
		}
	}
}

func TestWorkloadsSmall(t *testing.T) {
	ws, err := Workloads(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("%d workloads", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		names[w.Name] = true
		if w.D.NumTransactions() == 0 {
			t.Errorf("%s: empty dataset", w.Name)
		}
		if len(w.MinSups) == 0 || len(w.MinConfs) == 0 || w.RuleMinSup <= 0 {
			t.Errorf("%s: missing sweep parameters", w.Name)
		}
		for i := 1; i < len(w.MinSups); i++ {
			if w.MinSups[i] >= w.MinSups[i-1] {
				t.Errorf("%s: MinSups not descending", w.Name)
			}
		}
	}
	if !names["MUSHROOMS*"] || !names["C20*"] {
		t.Errorf("workload names: %v", names)
	}
}

func TestWorkloadsBadScale(t *testing.T) {
	if _, err := Workloads(Scale(42)); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestTableString(t *testing.T) {
	tbl := Table{
		ID:     "EX",
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333333", "4"}},
		Notes:  "a note",
	}
	out := tbl.String()
	if !strings.Contains(out, "== EX — demo ==") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "note: a note") {
		t.Errorf("missing note:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header, separator, 2 rows, note
	if len(lines) != 6 {
		t.Errorf("%d lines:\n%s", len(lines), out)
	}
}

func TestRatioAndPct(t *testing.T) {
	if got := ratio(2, 10); got != "5.0×" {
		t.Errorf("ratio = %q", got)
	}
	if got := ratio(0, 10); got != "∞" {
		t.Errorf("ratio zero = %q", got)
	}
	if got := ratio(0, 0); got != "—" {
		t.Errorf("ratio 0/0 = %q", got)
	}
	if got := pct(0.305); got != "30.5%" {
		t.Errorf("pct = %q", got)
	}
}

func TestE5Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := E5(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Errorf("E5 rows = %d", len(tbl.Rows))
	}
}

// TestExperimentsRunOnTinyData wires every experiment through a tiny
// workload to catch integration regressions without the full cost.
func TestExperimentsRunOnTinyData(t *testing.T) {
	ws, err := Workloads(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Use only the census workload (smallest FI counts) and the first
	// threshold of each sweep.
	w := ws[3]
	w.MinSups = w.MinSups[:1]
	w.MinConfs = w.MinConfs[:1]

	for name, fn := range map[string]func(Workload) (Table, error){
		"E1": E1, "E2": E2, "E3": E3, "E4": E4, "E6": E6, "E7": E7, "E8": E8,
	} {
		tbl, err := fn(w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: no rows", name)
		}
		if tbl.ID == "" || tbl.Title == "" {
			t.Errorf("%s: missing metadata", name)
		}
	}
}
