package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// The serving-side counterpart of the mining benchmark: every cell is
// one (endpoint × concurrency) load-test of a live HTTP server —
// p50/p99 latency, throughput and shed counts — and cells accumulate
// in a committed BENCH_serving.json exactly like the mining cells in
// BENCH_closedmining.json, so the read path's perf trajectory is
// tracked, not remembered. The cmd/benchhttp command is the driver.

// ServingSchema is the current schema version of ServingReport; bump
// it when the JSON layout changes incompatibly.
const ServingSchema = 1

// ServingResult is one measured (endpoint, concurrency) serving cell.
type ServingResult struct {
	// Endpoint is the path exercised ("recommend", "support", ...).
	Endpoint string `json:"endpoint"`
	// Concurrency is the number of closed-loop client workers.
	Concurrency int `json:"concurrency"`
	// DurationMs is the measured wall-clock window.
	DurationMs int64 `json:"duration_ms"`
	// Requests counts every response received, any status.
	Requests int64 `json:"requests"`
	// OK counts 200 responses.
	OK int64 `json:"ok"`
	// Shed counts 429 responses (admission control at work).
	Shed int64 `json:"shed"`
	// Failed counts everything else: 5xx, unexpected 4xx, transport
	// errors. A healthy run has zero.
	Failed int64 `json:"failed"`
	// RPS is Requests over the measured window.
	RPS float64 `json:"rps"`
	// P50Micros and P99Micros are latency percentiles over the
	// admitted (200) responses, in microseconds.
	P50Micros int64 `json:"p50_us"`
	P99Micros int64 `json:"p99_us"`
}

// ServingRun is one load-test campaign: a set of cells measured
// against one server configuration on one machine state.
type ServingRun struct {
	Label      string `json:"label"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Date       string `json:"date,omitempty"`
	// Workload names the mined dataset backing the server.
	Workload string  `json:"workload"`
	MinSup   float64 `json:"minsup"`
	MinConf  float64 `json:"minconf"`
	// Batching reports whether recommend coalescing was on, and with
	// which knobs (zero when off).
	Batching    bool  `json:"batching"`
	BatchSize   int   `json:"batch_size,omitempty"`
	BatchWaitUs int64 `json:"batch_wait_us,omitempty"`
	// MaxInFlight is the per-endpoint admission cap (0 = off).
	MaxInFlight int `json:"max_inflight,omitempty"`
	// Baskets is the size of the request pool the workers drew from —
	// smaller pools mean warmer caches and more coalescing.
	Baskets int `json:"baskets"`
	// Tenants is how many registered datasets the run drove
	// round-robin through the /datasets/{id} routes (0 = the
	// single-tenant legacy path).
	Tenants int             `json:"tenants,omitempty"`
	Results []ServingResult `json:"results"`
}

// ServingReport is the on-disk accumulation of serving runs
// (BENCH_serving.json).
type ServingReport struct {
	Schema int          `json:"schema"`
	Runs   []ServingRun `json:"runs"`
}

// ValidateServing checks a serving report for structural sanity — the
// guard the CI smoke step relies on.
func ValidateServing(r ServingReport) error {
	if r.Schema != ServingSchema {
		return fmt.Errorf("bench: serving report schema %d, want %d", r.Schema, ServingSchema)
	}
	if len(r.Runs) == 0 {
		return fmt.Errorf("bench: serving report has no runs")
	}
	for i, run := range r.Runs {
		if run.Label == "" {
			return fmt.Errorf("bench: serving run %d has no label", i)
		}
		if run.GOMAXPROCS < 1 {
			return fmt.Errorf("bench: serving run %q has GOMAXPROCS %d", run.Label, run.GOMAXPROCS)
		}
		if run.Workload == "" {
			return fmt.Errorf("bench: serving run %q has no workload", run.Label)
		}
		if run.Batching && run.BatchSize < 1 {
			return fmt.Errorf("bench: serving run %q claims batching with batch size %d", run.Label, run.BatchSize)
		}
		if len(run.Results) == 0 {
			return fmt.Errorf("bench: serving run %q has no results", run.Label)
		}
		for _, res := range run.Results {
			cell := fmt.Sprintf("run %q: cell %s/c%d", run.Label, res.Endpoint, res.Concurrency)
			if res.Endpoint == "" {
				return fmt.Errorf("bench: run %q has a result without an endpoint", run.Label)
			}
			if res.Concurrency < 1 {
				return fmt.Errorf("bench: %s has concurrency %d", cell, res.Concurrency)
			}
			if res.DurationMs <= 0 || res.Requests <= 0 {
				return fmt.Errorf("bench: %s not measured", cell)
			}
			if res.OK+res.Shed+res.Failed != res.Requests {
				return fmt.Errorf("bench: %s: %d ok + %d shed + %d failed != %d requests",
					cell, res.OK, res.Shed, res.Failed, res.Requests)
			}
			if res.OK > 0 && (res.P50Micros <= 0 || res.P99Micros < res.P50Micros) {
				return fmt.Errorf("bench: %s has implausible percentiles p50=%dus p99=%dus",
					cell, res.P50Micros, res.P99Micros)
			}
			if res.RPS <= 0 {
				return fmt.Errorf("bench: %s has RPS %v", cell, res.RPS)
			}
		}
	}
	return nil
}

// ReadServingReport decodes and validates a serving report.
func ReadServingReport(r io.Reader) (ServingReport, error) {
	var rep ServingReport
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return rep, fmt.Errorf("bench: decoding serving report: %w", err)
	}
	if err := ValidateServing(rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// WriteServingReport validates and encodes a serving report.
func WriteServingReport(w io.Writer, rep ServingReport) error {
	if err := ValidateServing(rep); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Percentiles computes the p50 and p99 of a latency sample. The input
// is sorted in place; an empty sample yields zeros.
func Percentiles(lat []time.Duration) (p50, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[percentileIndex(len(lat), 50)], lat[percentileIndex(len(lat), 99)]
}

// percentileIndex is the nearest-rank index of the p-th percentile in
// a sorted sample of n.
func percentileIndex(n, p int) int {
	idx := (n*p + 99) / 100 // ceil(n*p/100), nearest-rank
	if idx < 1 {
		idx = 1
	}
	if idx > n {
		idx = n
	}
	return idx - 1
}
