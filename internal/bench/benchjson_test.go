package bench

import (
	"context"
	"strings"
	"testing"
	"time"
)

func smallRun(t *testing.T) Run {
	t.Helper()
	run, skipped, err := Execute(context.Background(), RunConfig{
		Label:          "test",
		Scale:          Small,
		ClosedMiners:   []string{"charm", "pcharm", "nosuchminer"},
		FrequentMiners: []string{"eclat", "peclat"},
		MinTime:        time.Millisecond,
		MaxIters:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 4 { // one unknown name per workload
		t.Errorf("skipped = %v, want nosuchminer×4", skipped)
	}
	return run
}

func TestExecuteMeasuresEveryCell(t *testing.T) {
	run := smallRun(t)
	// 4 workloads × (2 closed + 2 frequent) resolvable miners.
	if len(run.Results) != 16 {
		t.Fatalf("%d results, want 16", len(run.Results))
	}
	for _, r := range run.Results {
		if r.NsPerOp <= 0 || r.Iterations < 1 || r.Sets < 1 {
			t.Errorf("unmeasured cell: %+v", r)
		}
	}
	// The parallel miners must mine the same number of itemsets as
	// their sequential counterparts on every workload.
	counts := map[string]int{}
	for _, r := range run.Results {
		counts[r.Workload+"/"+r.Miner] = r.Sets
	}
	for _, r := range run.Results {
		switch r.Miner {
		case "pcharm":
			if counts[r.Workload+"/charm"] != r.Sets {
				t.Errorf("%s: pcharm %d sets, charm %d", r.Workload, r.Sets, counts[r.Workload+"/charm"])
			}
		case "peclat":
			if counts[r.Workload+"/eclat"] != r.Sets {
				t.Errorf("%s: peclat %d sets, eclat %d", r.Workload, r.Sets, counts[r.Workload+"/eclat"])
			}
		}
	}
	if len(Speedups(run, "charm", "pcharm")) != 4 {
		t.Error("Speedups did not pair all workloads")
	}
}

func TestReportRoundTripAndValidation(t *testing.T) {
	run := smallRun(t)
	rep := Report{Schema: ReportSchema, Runs: []Run{run}}
	var sb strings.Builder
	if err := WriteReport(&sb, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 || len(got.Runs[0].Results) != len(run.Results) {
		t.Fatalf("round trip lost results")
	}

	for _, bad := range []Report{
		{},
		{Schema: ReportSchema},
		{Schema: ReportSchema, Runs: []Run{{Label: "x", GOMAXPROCS: 1}}},
		{Schema: ReportSchema, Runs: []Run{{Label: "x", GOMAXPROCS: 1,
			Results: []MinerResult{{Workload: "w", Miner: "m", Kind: "bogus", NsPerOp: 1, Iterations: 1, Sets: 1}}}}},
	} {
		if err := Validate(bad); err == nil {
			t.Errorf("invalid report accepted: %+v", bad)
		}
	}
	if _, err := ReadReport(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestExecuteHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Execute(ctx, RunConfig{
		Label:        "cancelled",
		Scale:        Small,
		ClosedMiners: []string{"charm"},
	})
	if err == nil {
		t.Fatal("cancelled campaign succeeded")
	}
}
