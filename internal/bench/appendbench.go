package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/incremental"
	"closedrules/internal/miner"
)

// The live-append benchmark: the experimental backbone of the
// incremental-maintenance claim. Each cell replays an append schedule —
// a workload split into a committed base plus a fixed number of equal
// append batches — and measures, per batch, updating the closed-set
// family in place (internal/incremental) against re-mining the grown
// prefix from scratch. Both paths run on identical state inside the
// same replay, and every batch's incremental result is checked
// Set.Equal against the re-mine before it is trusted as the next
// step's base, so a cell that reports a speedup has also proved
// equivalence on its whole schedule.

// AppendConfig configures one live-append campaign.
type AppendConfig struct {
	Label string
	Scale Scale
	// Fractions are the per-batch append sizes as fractions of the
	// workload's transaction count (default 0.001 and 0.01).
	Fractions []float64
	// Batches is how many append batches each schedule replays
	// (default 5).
	Batches int
	// RemineMiner is the registry name of the full re-mine baseline
	// (default "charm" — the strongest sequential closed miner, so the
	// reported speedup is against the toughest honest opponent).
	RemineMiner string
	// MinTime is the minimum measuring time per cell (default 300ms).
	MinTime time.Duration
	// MaxIters caps the schedule replays per cell (default 20).
	MaxIters int
}

// ExecuteAppend runs the live-append campaign and returns one Run
// whose cells have Kind "update": for every workload × fraction, a
// Miner "incremental" cell (ns per in-place update) and a Miner
// "remine" cell (ns per from-scratch re-mine of the same prefix).
// Workload names carry the batch fraction, e.g. "MUSHROOMS*+1.0%".
func ExecuteAppend(ctx context.Context, cfg AppendConfig) (Run, error) {
	if len(cfg.Fractions) == 0 {
		cfg.Fractions = []float64{0.001, 0.01}
	}
	if cfg.Batches <= 0 {
		cfg.Batches = 5
	}
	if cfg.RemineMiner == "" {
		cfg.RemineMiner = "charm"
	}
	if cfg.MinTime <= 0 {
		cfg.MinTime = 300 * time.Millisecond
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 20
	}
	run := Run{Label: cfg.Label, Scale: scaleName(cfg.Scale), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	m, err := miner.LookupClosed(cfg.RemineMiner)
	if err != nil {
		return run, err
	}
	ws, err := Workloads(cfg.Scale)
	if err != nil {
		return run, err
	}
	for _, w := range ws {
		for _, frac := range cfg.Fractions {
			inc, rem, err := measureAppend(ctx, cfg, m, w, frac)
			if err != nil {
				return run, fmt.Errorf("bench: live-append %s at %.3f%%: %w", w.Name, frac*100, err)
			}
			run.Results = append(run.Results, inc, rem)
		}
	}
	return run, nil
}

// measureAppend replays one append schedule until the time budget is
// spent and returns the incremental and re-mine cells for it.
func measureAppend(ctx context.Context, cfg AppendConfig, m miner.ClosedMiner, w Workload, frac float64) (inc, rem MinerResult, err error) {
	n := w.D.NumTransactions()
	batch := int(float64(n) * frac)
	if batch < 1 {
		batch = 1
	}
	base := n - cfg.Batches*batch
	abs := w.D.AbsoluteSupport(w.RuleMinSup)
	if base < 1 || abs > base {
		return inc, rem, fmt.Errorf("schedule infeasible: base %d, batch %d, abs support %d", base, batch, abs)
	}

	// Untimed setup: the committed base family plus every grown prefix,
	// each with its binary context warmed so neither path pays it.
	baseDS, err := w.D.Slice(0, base)
	if err != nil {
		return inc, rem, err
	}
	baseDS.Context()
	baseClosed, err := m.MineClosed(ctx, baseDS, abs)
	if err != nil {
		return inc, rem, err
	}
	baseSet := closedset.FromSlice(baseClosed)
	prefixes := make([]*dataset.Dataset, cfg.Batches)
	for i := range prefixes {
		if prefixes[i], err = w.D.Slice(0, base+(i+1)*batch); err != nil {
			return inc, rem, err
		}
		prefixes[i].Context()
	}

	var incNs, remNs int64
	var sets, iters int
	start := time.Now()
	for iters == 0 || (time.Since(start) < cfg.MinTime && iters < cfg.MaxIters) {
		if err := ctx.Err(); err != nil {
			return inc, rem, err
		}
		prev, prevTx := baseSet, base
		for i, full := range prefixes {
			t0 := time.Now()
			upd, err := incremental.Update(ctx, prev, abs, full, prevTx, abs)
			incNs += time.Since(t0).Nanoseconds()
			if err != nil {
				return inc, rem, fmt.Errorf("incremental batch %d: %w", i, err)
			}
			t1 := time.Now()
			remined, err := m.MineClosed(ctx, full, abs)
			remNs += time.Since(t1).Nanoseconds()
			if err != nil {
				return inc, rem, fmt.Errorf("re-mine batch %d: %w", i, err)
			}
			// Equivalence is part of the benchmark contract: a fast wrong
			// answer must fail the campaign, not enter the report.
			if want := closedset.FromSlice(remined); !upd.Equal(want) || !want.Equal(upd) {
				return inc, rem, fmt.Errorf("batch %d: incremental family differs from re-mine (%d vs %d closed sets)", i, upd.Len(), want.Len())
			}
			sets = upd.Len()
			prev, prevTx = upd, full.NumTransactions()
		}
		iters++
	}

	name := fmt.Sprintf("%s+%.1f%%", w.Name, frac*100)
	ops := int64(iters * cfg.Batches)
	inc = MinerResult{
		Workload: name, MinSup: w.RuleMinSup, Miner: "incremental", Kind: "update",
		NsPerOp: incNs / ops, Sets: sets, Iterations: iters,
	}
	rem = MinerResult{
		Workload: name, MinSup: w.RuleMinSup, Miner: "remine", Kind: "update",
		NsPerOp: remNs / ops, Sets: sets, Iterations: iters,
	}
	return inc, rem, nil
}
