package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// validServingReport is a minimal report that passes validation;
// tests mutate copies of it to probe each rule.
func validServingReport() ServingReport {
	return ServingReport{
		Schema: ServingSchema,
		Runs: []ServingRun{{
			Label:      "baseline",
			GOMAXPROCS: 1,
			Workload:   "T10I4D2K",
			MinSup:     0.01,
			MinConf:    0.5,
			Baskets:    64,
			Results: []ServingResult{{
				Endpoint:    "recommend",
				Concurrency: 8,
				DurationMs:  1000,
				Requests:    1000,
				OK:          990,
				Shed:        10,
				RPS:         1000,
				P50Micros:   150,
				P99Micros:   900,
			}},
		}},
	}
}

func TestValidateServing(t *testing.T) {
	if err := ValidateServing(validServingReport()); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*ServingReport)
		wantErr string
	}{
		{"bad schema", func(r *ServingReport) { r.Schema = 99 }, "schema"},
		{"no runs", func(r *ServingReport) { r.Runs = nil }, "no runs"},
		{"no label", func(r *ServingReport) { r.Runs[0].Label = "" }, "label"},
		{"bad gomaxprocs", func(r *ServingReport) { r.Runs[0].GOMAXPROCS = 0 }, "GOMAXPROCS"},
		{"no workload", func(r *ServingReport) { r.Runs[0].Workload = "" }, "workload"},
		{"batching without size", func(r *ServingReport) { r.Runs[0].Batching = true }, "batch size"},
		{"no results", func(r *ServingReport) { r.Runs[0].Results = nil }, "no results"},
		{"no endpoint", func(r *ServingReport) { r.Runs[0].Results[0].Endpoint = "" }, "endpoint"},
		{"bad concurrency", func(r *ServingReport) { r.Runs[0].Results[0].Concurrency = 0 }, "concurrency"},
		{"unmeasured", func(r *ServingReport) { r.Runs[0].Results[0].Requests = 0 }, "not measured"},
		{"sum mismatch", func(r *ServingReport) { r.Runs[0].Results[0].Shed = 0 }, "!="},
		{"p99 below p50", func(r *ServingReport) { r.Runs[0].Results[0].P99Micros = 100 }, "percentiles"},
		{"no rps", func(r *ServingReport) { r.Runs[0].Results[0].RPS = 0 }, "RPS"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := validServingReport()
			tc.mutate(&rep)
			err := ValidateServing(rep)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ValidateServing = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestServingReportRoundTrip(t *testing.T) {
	rep := validServingReport()
	var buf bytes.Buffer
	if err := WriteServingReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadServingReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 || got.Runs[0].Label != "baseline" || got.Runs[0].Results[0].P99Micros != 900 {
		t.Fatalf("round trip mangled the report: %+v", got)
	}
	// Unknown fields are a schema drift signal, not silently dropped.
	if _, err := ReadServingReport(strings.NewReader(`{"schema":1,"runs":[],"extra":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestPercentiles(t *testing.T) {
	var lat []time.Duration
	for i := 100; i >= 1; i-- {
		lat = append(lat, time.Duration(i)*time.Millisecond)
	}
	p50, p99 := Percentiles(lat)
	if p50 != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", p50)
	}
	if p99 != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", p99)
	}
	if p50, p99 = Percentiles(nil); p50 != 0 || p99 != 0 {
		t.Errorf("empty sample percentiles = %v, %v", p50, p99)
	}
	if p50, p99 = Percentiles([]time.Duration{7}); p50 != 7 || p99 != 7 {
		t.Errorf("singleton percentiles = %v, %v", p50, p99)
	}
}
