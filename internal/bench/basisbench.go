package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"closedrules"
	"closedrules/internal/miner"
)

// The end-to-end dataset→basis campaign: each cell times the full
// pipeline — mine the closed sets with one miner, then build one rule
// basis from the fresh result — so the report captures what serving a
// basis actually costs per miner, not just the mining step. Its point
// is the two-pass vs one-pass comparison: a-close mines closed sets
// and generators level-wise over the transaction data, genclose mines
// both in a single vertical traversal, and the generator-requiring
// bases (generic, informative) consume either directly. Cells have
// kind "basis", the Basis field set, and Sets = |rules|.

// BasisConfig configures one end-to-end campaign.
type BasisConfig struct {
	Label string
	Scale Scale
	// Miners are the closed-miner registry names to pipeline; each must
	// satisfy the requirements of every configured basis (use
	// generator-tracking miners for generator-requiring bases).
	Miners []string
	// Bases are the basis registry names built from each miner's result.
	Bases []string
	// MinTime is the minimum measuring time per cell (default 300ms).
	MinTime time.Duration
	// MaxIters caps the iterations per cell (default 20).
	MaxIters int
}

// ExecuteBasis runs the dataset→basis campaign: for every workload,
// every (miner × basis) pipeline is mined and built from scratch per
// iteration (no Result reuse — the cached lattice or family would
// hide the miner's share of the cost).
func ExecuteBasis(ctx context.Context, cfg BasisConfig) (Run, error) {
	rc := RunConfig{MinTime: cfg.MinTime, MaxIters: cfg.MaxIters}
	if rc.MinTime <= 0 {
		rc.MinTime = 300 * time.Millisecond
	}
	if rc.MaxIters <= 0 {
		rc.MaxIters = 20
	}
	run := Run{Label: cfg.Label, Scale: scaleName(cfg.Scale), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	ws, err := Workloads(cfg.Scale)
	if err != nil {
		return run, err
	}
	for _, w := range ws {
		minSup := w.RuleMinSup
		w.D.Context() // warm the binary context outside the timed region
		for _, mn := range cfg.Miners {
			for _, bn := range cfg.Bases {
				var rules int
				res, err := measure(ctx, rc, func() error {
					r, err := closedrules.MineContext(ctx, w.D,
						closedrules.WithMinSupport(minSup), closedrules.WithAlgorithm(mn))
					if err != nil {
						return err
					}
					rs, err := r.Basis(ctx, bn)
					if err != nil {
						return err
					}
					rules = rs.Len()
					return nil
				})
				if err != nil {
					return run, fmt.Errorf("bench: %s→%s on %s: %w", mn, bn, w.Name, err)
				}
				res.Workload, res.MinSup, res.Kind = w.Name, minSup, "basis"
				res.Miner, res.Basis = miner.Canonical(mn), bn
				res.Sets = rules
				run.Results = append(run.Results, res)
			}
		}
	}
	return run, nil
}
