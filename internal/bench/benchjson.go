package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"closedrules/internal/miner"

	// Vertical miners used by the default benchmark set; the other
	// algorithm packages are already linked in via experiments.go.
	_ "closedrules/internal/eclat"
)

// The machine-readable closed-mining benchmark: every (workload ×
// miner) cell is measured as ns/op, allocs/op and bytes/op, and the
// cells accumulate across PRs in a committed BENCH_closedmining.json
// so the perf trajectory of the mining engine is tracked, not
// remembered. The cmd/benchjson command is the driver.

// ReportSchema is the current schema version of Report; bump it when
// the JSON layout changes incompatibly.
const ReportSchema = 1

// MinerResult is one measured (workload, miner) benchmark cell.
type MinerResult struct {
	Workload    string  `json:"workload"`
	MinSup      float64 `json:"minsup"`          // relative support used
	Miner       string  `json:"miner"`           // registry name
	Basis       string  `json:"basis,omitempty"` // basis registry name (kind "basis" only)
	Kind        string  `json:"kind"`            // "closed", "frequent", "update" (live-append) or "basis" (dataset→basis end to end)
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Sets        int     `json:"sets"` // |FC| (closed) or |FI| (frequent) mined
	Iterations  int     `json:"iterations"`
}

// Run is one benchmark campaign: every configured miner over every
// workload of a scale, on one machine state.
type Run struct {
	Label      string        `json:"label"`
	Scale      string        `json:"scale"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Date       string        `json:"date,omitempty"`
	Results    []MinerResult `json:"results"`
}

// Report is the on-disk accumulation of runs (BENCH_closedmining.json).
type Report struct {
	Schema int   `json:"schema"`
	Runs   []Run `json:"runs"`
}

// RunConfig configures one benchmark run.
type RunConfig struct {
	Label string
	Scale Scale
	// ClosedMiners and FrequentMiners are registry names; unknown
	// names are reported through Skipped, not errors, so one binary
	// can bench trees with and without the optional miners.
	ClosedMiners   []string
	FrequentMiners []string
	// MinTime is the minimum measuring time per cell (default 300ms).
	MinTime time.Duration
	// MaxIters caps the iterations per cell (default 20).
	MaxIters int
}

// scaleName is the inverse of ParseScale.
func scaleName(s Scale) string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Full:
		return "full"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// Execute runs the configured benchmark campaign. Unknown miner names
// are returned in skipped. The context bounds the whole campaign; a
// cancellation aborts between cells and inside miners that honor ctx.
func Execute(ctx context.Context, cfg RunConfig) (Run, []string, error) {
	if cfg.MinTime <= 0 {
		cfg.MinTime = 300 * time.Millisecond
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 20
	}
	run := Run{
		Label:      cfg.Label,
		Scale:      scaleName(cfg.Scale),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	ws, err := Workloads(cfg.Scale)
	if err != nil {
		return run, nil, err
	}
	var skipped []string
	for _, w := range ws {
		minSup := w.RuleMinSup
		abs := w.D.AbsoluteSupport(minSup)
		// Warm the dataset's cached binary context outside the timed
		// region so every miner pays the same (zero) context cost.
		w.D.Context()
		for _, name := range cfg.ClosedMiners {
			m, err := miner.LookupClosed(name)
			if err != nil {
				skipped = append(skipped, name)
				continue
			}
			var sets int
			res, err := measure(ctx, cfg, func() error {
				cs, err := m.MineClosed(ctx, w.D, abs)
				sets = len(cs)
				return err
			})
			if err != nil {
				return run, skipped, fmt.Errorf("bench: %s on %s: %w", name, w.Name, err)
			}
			res.Workload, res.MinSup, res.Miner, res.Kind, res.Sets = w.Name, minSup, miner.Canonical(name), "closed", sets
			run.Results = append(run.Results, res)
		}
		for _, name := range cfg.FrequentMiners {
			m, err := miner.LookupFrequent(name)
			if err != nil {
				skipped = append(skipped, name)
				continue
			}
			var sets int
			res, err := measure(ctx, cfg, func() error {
				fs, err := m.MineFrequent(ctx, w.D, abs)
				sets = len(fs)
				return err
			})
			if err != nil {
				return run, skipped, fmt.Errorf("bench: %s on %s: %w", name, w.Name, err)
			}
			res.Workload, res.MinSup, res.Miner, res.Kind, res.Sets = w.Name, minSup, miner.Canonical(name), "frequent", sets
			run.Results = append(run.Results, res)
		}
	}
	return run, skipped, nil
}

// measure times op until MinTime has elapsed or MaxIters ran, after one
// untimed warm-up; allocation counters come from the runtime's
// monotonic Mallocs/TotalAlloc, so GC cycles do not skew them.
func measure(ctx context.Context, cfg RunConfig, op func() error) (MinerResult, error) {
	if err := op(); err != nil { // warm-up: steady caches, page-in data
		return MinerResult{}, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for iters == 0 || (time.Since(start) < cfg.MinTime && iters < cfg.MaxIters) {
		if err := ctx.Err(); err != nil {
			return MinerResult{}, err
		}
		if err := op(); err != nil {
			return MinerResult{}, err
		}
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return MinerResult{
		NsPerOp:     elapsed.Nanoseconds() / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		Iterations:  iters,
	}, nil
}

// Validate checks a report for structural sanity — the guard the CI
// smoke step relies on to keep the bench harness from rotting.
func Validate(r Report) error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("bench: report schema %d, want %d", r.Schema, ReportSchema)
	}
	if len(r.Runs) == 0 {
		return fmt.Errorf("bench: report has no runs")
	}
	for i, run := range r.Runs {
		if run.Label == "" {
			return fmt.Errorf("bench: run %d has no label", i)
		}
		if run.GOMAXPROCS < 1 {
			return fmt.Errorf("bench: run %q has GOMAXPROCS %d", run.Label, run.GOMAXPROCS)
		}
		if len(run.Results) == 0 {
			return fmt.Errorf("bench: run %q has no results", run.Label)
		}
		for _, res := range run.Results {
			if res.Workload == "" || res.Miner == "" {
				return fmt.Errorf("bench: run %q has a result without workload or miner", run.Label)
			}
			if res.Kind != "closed" && res.Kind != "frequent" && res.Kind != "update" && res.Kind != "basis" {
				return fmt.Errorf("bench: run %q: result %s/%s has kind %q", run.Label, res.Workload, res.Miner, res.Kind)
			}
			if (res.Kind == "basis") != (res.Basis != "") {
				return fmt.Errorf("bench: run %q: result %s/%s: basis field %q inconsistent with kind %q",
					run.Label, res.Workload, res.Miner, res.Basis, res.Kind)
			}
			if res.NsPerOp <= 0 || res.Iterations <= 0 {
				return fmt.Errorf("bench: run %q: result %s/%s not measured", run.Label, res.Workload, res.Miner)
			}
			// A basis can be legitimately empty; mining zero itemsets is a
			// broken cell.
			if res.Kind == "basis" && res.Sets < 0 {
				return fmt.Errorf("bench: run %q: result %s/%s has negative rule count", run.Label, res.Workload, res.Miner)
			}
			if res.Kind != "basis" && res.Sets <= 0 {
				return fmt.Errorf("bench: run %q: result %s/%s mined no itemsets", run.Label, res.Workload, res.Miner)
			}
		}
	}
	return nil
}

// ReadReport decodes and validates a report.
func ReadReport(r io.Reader) (Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return rep, fmt.Errorf("bench: decoding report: %w", err)
	}
	if err := Validate(rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// WriteReport validates and encodes a report.
func WriteReport(w io.Writer, rep Report) error {
	if err := Validate(rep); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Speedups compares two miners within one run: for every workload
// where both were measured with the same kind (and, for dataset→basis
// cells, the same basis), the ratio ns(base)/ns(subject) — >1 means
// subject is faster. Basis cells are reported per "workload/basis".
func Speedups(run Run, base, subject string) map[string]float64 {
	baseNs := map[string]int64{}
	for _, r := range run.Results {
		if r.Miner == miner.Canonical(base) {
			baseNs[r.Workload+"/"+r.Kind+"/"+r.Basis] = r.NsPerOp
		}
	}
	out := map[string]float64{}
	for _, r := range run.Results {
		if r.Miner != miner.Canonical(subject) {
			continue
		}
		if b, ok := baseNs[r.Workload+"/"+r.Kind+"/"+r.Basis]; ok && r.NsPerOp > 0 {
			label := r.Workload
			if r.Basis != "" {
				label += "/" + r.Basis
			}
			out[label] = float64(b) / float64(r.NsPerOp)
		}
	}
	return out
}
