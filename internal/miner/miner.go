// Package miner defines the pluggable mining interfaces and the
// process-wide registry the public API dispatches through. Each
// algorithm package registers a thin adapter from its init function;
// the registry itself never imports an algorithm, so the dependency
// arrow points one way and new miners plug in without touching this
// package or the root package.
package miner

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
)

// ClosedMiner mines the frequent closed itemsets of a dataset at an
// absolute support threshold. Implementations must return the complete
// FC including the bottom element h(∅), honor ctx cancellation at
// level or extension boundaries, and be safe for concurrent use (the
// registry hands the same instance to every caller).
type ClosedMiner interface {
	// MineClosed returns the frequent closed itemsets at absolute
	// support ≥ minSup. When ctx is cancelled the miner must return
	// ctx.Err() within one level (level-wise miners) or one branch
	// extension (depth-first miners).
	//
	// The flat-slice exchange form (rather than *closedset.Set) is
	// deliberate: every element type here is re-exported by the root
	// package, so miners outside this module can implement the
	// interface. The O(|FC|) re-indexing the caller pays to rebuild a
	// Set is noise next to the mining itself.
	MineClosed(ctx context.Context, d *dataset.Dataset, minSup int) ([]closedset.Closed, error)
	// TracksGenerators reports whether the returned closed itemsets
	// carry their minimal generators (required by the generic and
	// informative bases).
	TracksGenerators() bool
}

// FrequentMiner mines all frequent itemsets of a dataset at an
// absolute support threshold, under the same cancellation and
// concurrency contract as ClosedMiner.
type FrequentMiner interface {
	MineFrequent(ctx context.Context, d *dataset.Dataset, minSup int) ([]itemset.Counted, error)
}

var (
	mu      sync.RWMutex
	closedM = map[string]ClosedMiner{}
	freqM   = map[string]FrequentMiner{}
)

// Canonical normalizes a miner name: lower-cased with hyphens and
// underscores removed, so "A-Close", "a_close" and "aclose" all name
// the same miner.
func Canonical(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	name = strings.ReplaceAll(name, "-", "")
	name = strings.ReplaceAll(name, "_", "")
	return name
}

// RegisterClosed makes a closed-itemset miner available under the
// given name. It panics if the miner is nil or the name is empty or
// already taken — registration happens in init functions, where a
// duplicate is a programming error, not a runtime condition.
func RegisterClosed(name string, m ClosedMiner) {
	key := Canonical(name)
	mu.Lock()
	defer mu.Unlock()
	if m == nil {
		panic("closedrules: RegisterClosedMiner with nil miner")
	}
	if key == "" {
		panic("closedrules: RegisterClosedMiner with empty name")
	}
	if _, dup := closedM[key]; dup {
		panic(fmt.Sprintf("closedrules: RegisterClosedMiner called twice for %q", key))
	}
	closedM[key] = m
}

// RegisterFrequent makes a frequent-itemset miner available under the
// given name, with the same panicking contract as RegisterClosed.
func RegisterFrequent(name string, m FrequentMiner) {
	key := Canonical(name)
	mu.Lock()
	defer mu.Unlock()
	if m == nil {
		panic("closedrules: RegisterFrequentMiner with nil miner")
	}
	if key == "" {
		panic("closedrules: RegisterFrequentMiner with empty name")
	}
	if _, dup := freqM[key]; dup {
		panic(fmt.Sprintf("closedrules: RegisterFrequentMiner called twice for %q", key))
	}
	freqM[key] = m
}

// LookupClosed resolves a closed miner by name; the error of an
// unknown name lists the registered alternatives.
func LookupClosed(name string) (ClosedMiner, error) {
	mu.RLock()
	m, ok := closedM[Canonical(name)]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("closedrules: unknown closed miner %q (registered: %s)",
			name, strings.Join(ClosedNames(), ", "))
	}
	return m, nil
}

// LookupFrequent resolves a frequent miner by name.
func LookupFrequent(name string) (FrequentMiner, error) {
	mu.RLock()
	m, ok := freqM[Canonical(name)]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("closedrules: unknown frequent miner %q (registered: %s)",
			name, strings.Join(FrequentNames(), ", "))
	}
	return m, nil
}

// ClosedNames returns the registered closed-miner names, sorted.
func ClosedNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(closedM))
	for n := range closedM {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FrequentNames returns the registered frequent-miner names, sorted.
func FrequentNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(freqM))
	for n := range freqM {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
