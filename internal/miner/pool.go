package miner

import "sync"

// RunPool runs fn(0) … fn(n-1) on up to workers goroutines and returns
// the first error any call produced (after all started work drained).
// It is the bounded fan-out both parallel miners share: jobs are fed
// by index, a failing worker stops the feed, and the caller's fn is
// responsible for observing ctx — RunPool itself adds no cancellation
// points beyond the feed/fail handshake.
func RunPool(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	feed := make(chan int)
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				if err := fn(i); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	var failed error
feedLoop:
	for i := 0; i < n; i++ {
		select {
		case feed <- i:
		case failed = <-errc:
			break feedLoop
		}
	}
	close(feed)
	wg.Wait()
	if failed != nil {
		return failed
	}
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}
