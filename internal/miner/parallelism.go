package miner

import (
	"context"
	"runtime"
)

// parallelismKey carries the worker-count hint through a context. The
// registry interfaces stay two-method (MineClosed/MineFrequent work on
// ctx, dataset, minSup alone); the degree of parallelism is a tuning
// hint, and tuning hints travel on the context so sequential miners
// can ignore them without interface churn.
type parallelismKey struct{}

// ContextWithParallelism returns a context carrying a worker-count
// hint for parallel miners. n < 1 removes the hint.
func ContextWithParallelism(ctx context.Context, n int) context.Context {
	if n < 1 {
		return ctx
	}
	return context.WithValue(ctx, parallelismKey{}, n)
}

// ParallelismFromContext resolves the worker count a parallel miner
// should use: the context hint when present, else GOMAXPROCS.
func ParallelismFromContext(ctx context.Context) int {
	if n, ok := ctx.Value(parallelismKey{}).(int); ok && n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
