package galois

import (
	"math/rand"
	"testing"

	"closedrules/internal/bitset"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
)

// classic is the Close-paper running example:
// 1:ACD 2:BCE 3:ABCE 4:BE 5:ABCE with A=0,…,E=4.
func classic(t *testing.T) *dataset.Context {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d.Context()
}

func TestExtent(t *testing.T) {
	c := classic(t)
	cases := []struct {
		items itemset.Itemset
		want  []int
	}{
		{itemset.Of(), []int{0, 1, 2, 3, 4}},
		{itemset.Of(0), []int{0, 2, 4}},       // A
		{itemset.Of(1, 4), []int{1, 2, 3, 4}}, // BE
		{itemset.Of(0, 2), []int{0, 2, 4}},    // AC
		{itemset.Of(0, 1), []int{2, 4}},       // AB
		{itemset.Of(3, 4), nil},               // DE never co-occur
	}
	for _, cs := range cases {
		got := Extent(c, cs.items).Slice()
		if len(got) != len(cs.want) {
			t.Errorf("Extent(%v) = %v, want %v", cs.items, got, cs.want)
			continue
		}
		for i := range cs.want {
			if got[i] != cs.want[i] {
				t.Errorf("Extent(%v) = %v, want %v", cs.items, got, cs.want)
				break
			}
		}
	}
}

func TestIntent(t *testing.T) {
	c := classic(t)
	// objects {0,2,4} = ACD, ABCE, ABCE → common items {A,C}
	got := Intent(c, bitset.FromSlice(5, []int{0, 2, 4}))
	if !got.Equal(itemset.Of(0, 2)) {
		t.Errorf("Intent = %v, want {0,2}", got)
	}
	// empty object set → all items
	if got := Intent(c, bitset.New(5)); !got.Equal(itemset.Of(0, 1, 2, 3, 4)) {
		t.Errorf("Intent(∅) = %v", got)
	}
	// all objects → ∅ here (no universal item)
	if got := Intent(c, bitset.Full(5)); got.Len() != 0 {
		t.Errorf("Intent(O) = %v", got)
	}
}

func TestClosureClassicValues(t *testing.T) {
	c := classic(t)
	// Hand-checked closures from the Close paper's example.
	cases := []struct{ in, want itemset.Itemset }{
		{itemset.Of(), itemset.Of()},
		{itemset.Of(0), itemset.Of(0, 2)},          // h(A)=AC
		{itemset.Of(1), itemset.Of(1, 4)},          // h(B)=BE
		{itemset.Of(2), itemset.Of(2)},             // h(C)=C
		{itemset.Of(4), itemset.Of(1, 4)},          // h(E)=BE
		{itemset.Of(3), itemset.Of(0, 2, 3)},       // h(D)=ACD
		{itemset.Of(0, 1), itemset.Of(0, 1, 2, 4)}, // h(AB)=ABCE
		{itemset.Of(1, 2), itemset.Of(1, 2, 4)},    // h(BC)=BCE
		{itemset.Of(0, 4), itemset.Of(0, 1, 2, 4)}, // h(AE)=ABCE
		{itemset.Of(2, 4), itemset.Of(1, 2, 4)},    // h(CE)=BCE
	}
	for _, cs := range cases {
		if got := Closure(c, cs.in); !got.Equal(cs.want) {
			t.Errorf("h(%v) = %v, want %v", cs.in, got, cs.want)
		}
	}
}

func TestSupport(t *testing.T) {
	c := classic(t)
	cases := []struct {
		items itemset.Itemset
		want  int
	}{
		{itemset.Of(), 5},
		{itemset.Of(0), 3},
		{itemset.Of(1), 4},
		{itemset.Of(3), 1},
		{itemset.Of(1, 4), 4},
		{itemset.Of(0, 1, 2, 4), 2},
		{itemset.Of(3, 4), 0},
	}
	for _, cs := range cases {
		if got := Support(c, cs.items); got != cs.want {
			t.Errorf("Support(%v) = %d, want %d", cs.items, got, cs.want)
		}
	}
}

func TestClosureWithSupport(t *testing.T) {
	c := classic(t)
	cl, sup := ClosureWithSupport(c, itemset.Of(0))
	if !cl.Equal(itemset.Of(0, 2)) || sup != 3 {
		t.Errorf("ClosureWithSupport(A) = %v,%d", cl, sup)
	}
	// empty extent: closure is the full universe, support 0
	cl, sup = ClosureWithSupport(c, itemset.Of(3, 4))
	if sup != 0 || !cl.Equal(itemset.Of(0, 1, 2, 3, 4)) {
		t.Errorf("ClosureWithSupport(DE) = %v,%d", cl, sup)
	}
}

func TestIsClosed(t *testing.T) {
	c := classic(t)
	closed := []itemset.Itemset{
		itemset.Of(), itemset.Of(2), itemset.Of(0, 2), itemset.Of(1, 4),
		itemset.Of(1, 2, 4), itemset.Of(0, 2, 3), itemset.Of(0, 1, 2, 4),
	}
	for _, s := range closed {
		if !IsClosed(c, s) {
			t.Errorf("IsClosed(%v) = false", s)
		}
	}
	notClosed := []itemset.Itemset{
		itemset.Of(0), itemset.Of(1), itemset.Of(4), itemset.Of(3),
		itemset.Of(0, 1), itemset.Of(2, 4), itemset.Of(0, 3),
	}
	for _, s := range notClosed {
		if IsClosed(c, s) {
			t.Errorf("IsClosed(%v) = true", s)
		}
	}
}

func TestConceptOf(t *testing.T) {
	c := classic(t)
	con := ConceptOf(c, itemset.Of(0))
	if !con.Intent.Equal(itemset.Of(0, 2)) {
		t.Errorf("Intent = %v", con.Intent)
	}
	if got := con.Extent.Slice(); len(got) != 3 {
		t.Errorf("Extent = %v", got)
	}
}

func TestExtentInto(t *testing.T) {
	c := classic(t)
	dst := bitset.Full(5)
	ExtentInto(c, itemset.Of(0, 2), dst)
	if !dst.Equal(Extent(c, itemset.Of(0, 2))) {
		t.Error("ExtentInto != Extent")
	}
}

// randomContext draws a small random context for property tests.
func randomContext(r *rand.Rand) *dataset.Context {
	nObj := 1 + r.Intn(20)
	nIt := 1 + r.Intn(10)
	raw := make([][]int, nObj)
	for i := range raw {
		for x := 0; x < nIt; x++ {
			if r.Intn(100) < 40 {
				raw[i] = append(raw[i], x)
			}
		}
	}
	d, _ := dataset.FromTransactions(raw)
	if d.NumItems() < nIt {
		// Pad the universe so itemsets over nIt items stay in range.
		raw = append(raw, []int{nIt - 1})
		d2, _ := dataset.FromTransactions(raw)
		d = d2
	}
	return d.Context()
}

func randomItemset(r *rand.Rand, numItems int) itemset.Itemset {
	var items []int
	for x := 0; x < numItems; x++ {
		if r.Intn(100) < 25 {
			items = append(items, x)
		}
	}
	return itemset.Of(items...)
}

// TestClosureOperatorLaws checks the three defining properties of a
// closure operator: extensivity, monotonicity and idempotency, plus
// the support invariant supp(X) = supp(h(X)).
func TestClosureOperatorLaws(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for iter := 0; iter < 400; iter++ {
		c := randomContext(r)
		x := randomItemset(r, c.NumItems)
		y := randomItemset(r, c.NumItems)
		hx := Closure(c, x)
		if !hx.ContainsAll(x) && Support(c, x) > 0 {
			t.Fatalf("extensivity: %v ⊄ h=%v", x, hx)
		}
		if !Closure(c, hx).Equal(hx) {
			t.Fatalf("idempotency: h(h(%v)) != h(%v)", x, x)
		}
		union := x.Union(y)
		hu := Closure(c, union)
		if !hu.ContainsAll(hx) && !(Support(c, union) == 0) {
			// monotonicity: X ⊆ X∪Y ⇒ h(X) ⊆ h(X∪Y); with an empty
			// extent h(X∪Y) is the whole universe which contains hx
			// anyway, so the guard only documents intent.
			t.Fatalf("monotonicity: h(%v)=%v ⊄ h(%v)=%v", x, hx, union, hu)
		}
		if Support(c, x) != Support(c, hx) {
			t.Fatalf("support invariant: supp(%v)=%d, supp(h)=%d",
				x, Support(c, x), Support(c, hx))
		}
	}
}

// TestGaloisDuality checks g(f(·)) and f(g(·)) are closure operators on
// both sides: extent of intent of an object set contains the set.
func TestGaloisDuality(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		c := randomContext(r)
		objs := bitset.New(c.NumObjects)
		for o := 0; o < c.NumObjects; o++ {
			if r.Intn(100) < 30 {
				objs.Add(o)
			}
		}
		intent := Intent(c, objs)
		ext := Extent(c, intent)
		if !objs.IsSubset(ext) {
			t.Fatalf("g(f(O)) ⊉ O: objs=%v ext=%v", objs, ext)
		}
		// And f(g(f(O))) = f(O): triple application collapses.
		if !Intent(c, ext).Equal(intent) {
			t.Fatalf("f g f != f")
		}
	}
}

// TestAntitone checks the Galois connection is order-reversing:
// X ⊆ Y ⇒ g(Y) ⊆ g(X).
func TestAntitone(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for iter := 0; iter < 200; iter++ {
		c := randomContext(r)
		x := randomItemset(r, c.NumItems)
		y := x.Union(randomItemset(r, c.NumItems))
		if !Extent(c, y).IsSubset(Extent(c, x)) {
			t.Fatalf("antitone violated for %v ⊆ %v", x, y)
		}
	}
}
