package gen

import (
	"testing"

	"closedrules/internal/closealg"
	"closedrules/internal/eclat"
)

func TestQuestShape(t *testing.T) {
	d, err := Quest(T10I4(2000, 200, 1))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 2000 {
		t.Fatalf("NumTransactions = %d", d.NumTransactions())
	}
	if d.NumItems() != 200 {
		t.Fatalf("NumItems = %d", d.NumItems())
	}
	s := d.Stats()
	if s.AvgLen < 5 || s.AvgLen > 15 {
		t.Errorf("AvgLen = %v, want ≈10", s.AvgLen)
	}
	if s.MaxLen > 80 {
		t.Errorf("MaxLen = %d suspiciously large", s.MaxLen)
	}
}

func TestQuestDeterministic(t *testing.T) {
	a, err := Quest(T10I4(200, 100, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Quest(T10I4(200, 100, 42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Transactions() {
		if !a.Transaction(i).Equal(b.Transaction(i)) {
			t.Fatalf("tx %d differs between equal seeds", i)
		}
	}
	c, err := Quest(T10I4(200, 100, 43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Transactions() {
		if !a.Transaction(i).Equal(c.Transaction(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestQuestValidation(t *testing.T) {
	bad := T10I4(100, 50, 1)
	bad.AvgTxLen = 0
	if _, err := Quest(bad); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestQuestWeaklyCorrelated: in the T10I4 regime the number of
// frequent closed itemsets is close to the number of frequent
// itemsets (the Close paper's observation for synthetic data).
func TestQuestWeaklyCorrelated(t *testing.T) {
	d, err := Quest(T10I4(2000, 150, 7))
	if err != nil {
		t.Fatal(err)
	}
	minSup := d.AbsoluteSupport(0.01)
	fi, err := eclat.Mine(d, minSup)
	if err != nil {
		t.Fatal(err)
	}
	fc, _, err := closealg.Mine(d, minSup)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Len() == 0 {
		t.Skip("no frequent itemsets at this scale")
	}
	// FC includes the bottom; allow for it in the comparison. The
	// regime split: quest stays well above the census/mushroom regime
	// (which lands far below 0.5 — see the census test).
	ratio := float64(fc.Len()-1) / float64(fi.Len())
	if ratio < 0.5 {
		t.Errorf("|FC|/|FI| = %.2f — too correlated for the quest regime", ratio)
	}
}

func TestCensusShape(t *testing.T) {
	d, err := Census(C20(500, 3))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 500 {
		t.Fatalf("NumTransactions = %d", d.NumTransactions())
	}
	if d.NumItems() != 200 { // 20 attributes × 10 values
		t.Fatalf("NumItems = %d", d.NumItems())
	}
	for i, tx := range d.Transactions() {
		if tx.Len() != 20 {
			t.Fatalf("tx %d has %d items, want 20", i, tx.Len())
		}
	}
	if d.ItemName(0) != "a0=v0" {
		t.Errorf("name = %q", d.ItemName(0))
	}
}

// TestCensusStronglyCorrelated: the census regime has |FC| ≪ |FI|.
func TestCensusStronglyCorrelated(t *testing.T) {
	d, err := Census(CensusConfig{
		NumObjects: 400, NumAttributes: 12, ValuesPerAttribute: 8,
		NumClusters: 5, Noise: 0.1, DeterministicFraction: 0.5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	minSup := d.AbsoluteSupport(0.1)
	fi, err := eclat.Mine(d, minSup)
	if err != nil {
		t.Fatal(err)
	}
	fc, _, err := closealg.Mine(d, minSup)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Len() < 50 {
		t.Skipf("only %d frequent itemsets", fi.Len())
	}
	ratio := float64(fc.Len()) / float64(fi.Len())
	if ratio > 0.5 {
		t.Errorf("|FC|/|FI| = %.2f (%d/%d) — not correlated enough for the census regime",
			ratio, fc.Len(), fi.Len())
	}
}

func TestCensusValidation(t *testing.T) {
	bad := C20(100, 1)
	bad.Noise = 1.5
	if _, err := Census(bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestMushroomShape(t *testing.T) {
	d, err := Mushroom(MushroomConfig{NumObjects: 800, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 800 {
		t.Fatalf("NumTransactions = %d", d.NumTransactions())
	}
	// 23 attributes, one value each → row length 23.
	for i, tx := range d.Transactions() {
		if tx.Len() != 23 {
			t.Fatalf("tx %d has %d items", i, tx.Len())
		}
	}
	// Roughly half the objects edible.
	sup := d.ItemSupports()
	edible := sup[0]
	if edible < 300 || edible > 520 {
		t.Errorf("edible count = %d, want ≈ 414", edible)
	}
}

// TestMushroomUniversalItem: veil-type=p must appear in every object,
// giving a non-trivial h(∅).
func TestMushroomUniversalItem(t *testing.T) {
	d, err := Mushroom(MushroomConfig{NumObjects: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sup := d.ItemSupports()
	found := false
	for it, s := range sup {
		if s == d.NumTransactions() && d.ItemName(it) == "veil-type=p" {
			found = true
		}
	}
	if !found {
		t.Error("veil-type=p is not universal")
	}
}

// TestMushroomHasExactRules: odor nearly determines the class, so
// exact rules must exist at moderate support.
func TestMushroomHasExactRules(t *testing.T) {
	d, err := Mushroom(MushroomConfig{NumObjects: 1000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	minSup := d.AbsoluteSupport(0.2)
	fc, _, err := closealg.Mine(d, minSup)
	if err != nil {
		t.Fatal(err)
	}
	// Strong correlation ⇒ some closed set has a generator strictly
	// smaller than itself ⇒ exact rules exist.
	foundProper := false
	for _, g := range fc.AllGenerators() {
		if !g.Generator.Equal(g.Closure) {
			foundProper = true
			break
		}
	}
	if !foundProper {
		t.Error("no proper generator: mushroom data lacks exact rules")
	}
}

func TestMushroomDeterministic(t *testing.T) {
	a, _ := Mushroom(MushroomConfig{NumObjects: 100, Seed: 21})
	b, _ := Mushroom(MushroomConfig{NumObjects: 100, Seed: 21})
	for i := range a.Transactions() {
		if !a.Transaction(i).Equal(b.Transaction(i)) {
			t.Fatalf("tx %d differs between equal seeds", i)
		}
	}
}

func TestMushroomValidation(t *testing.T) {
	if _, err := Mushroom(MushroomConfig{NumObjects: -1}); err == nil {
		t.Error("negative NumObjects accepted")
	}
}
