// Package gen synthesizes the evaluation datasets of the paper's
// experiment suite. None of the original datasets (IBM Quest
// synthetic data, UCI Mushrooms, PUMS census extracts) can be shipped
// here, so each has a generator reproducing its statistical regime;
// DESIGN.md §3 documents each substitution and why it preserves the
// behaviours the experiments measure.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"closedrules/internal/dataset"
)

// QuestConfig parameterizes the IBM Quest ("Tx Iy Dz") market-basket
// generator of Agrawal & Srikant (VLDB 1994). The classic datasets of
// the Close/A-Close evaluations are T10I4D100K (AvgTxLen 10,
// AvgPatternLen 4, 100K transactions, 1000 items, 2000 patterns) and
// T20I6D100K.
type QuestConfig struct {
	NumTransactions int     // D: number of transactions
	AvgTxLen        int     // T: average transaction length (Poisson)
	NumItems        int     // N: item universe size
	NumPatterns     int     // L: number of maximal potential itemsets
	AvgPatternLen   int     // I: average pattern length (Poisson)
	Correlation     float64 // fraction of a pattern reused from the previous one (exp. mean)
	CorruptionMean  float64 // mean of the per-pattern corruption level
	CorruptionStd   float64 // std dev of the corruption level
	Seed            int64
}

// T10I4 returns the canonical weakly-correlated configuration at a
// chosen scale (numTx transactions over numItems items).
func T10I4(numTx, numItems int, seed int64) QuestConfig {
	return QuestConfig{
		NumTransactions: numTx,
		AvgTxLen:        10,
		NumItems:        numItems,
		NumPatterns:     numItems * 2,
		AvgPatternLen:   4,
		Correlation:     0.5,
		CorruptionMean:  0.5,
		CorruptionStd:   0.1,
		Seed:            seed,
	}
}

// T20I6 returns the denser classic configuration.
func T20I6(numTx, numItems int, seed int64) QuestConfig {
	c := T10I4(numTx, numItems, seed)
	c.AvgTxLen = 20
	c.AvgPatternLen = 6
	return c
}

// Quest generates a market-basket dataset. The procedure follows the
// VLDB'94 description: potential patterns have Poisson-distributed
// sizes, reuse an exponentially-distributed fraction of the previous
// pattern's items, and carry exponentially-distributed weights;
// transactions draw patterns by weight and drop a corruption-dependent
// suffix of each.
func Quest(cfg QuestConfig) (*dataset.Dataset, error) {
	if cfg.NumTransactions < 0 || cfg.NumItems < 1 || cfg.NumPatterns < 1 ||
		cfg.AvgTxLen < 1 || cfg.AvgPatternLen < 1 {
		return nil, fmt.Errorf("gen: invalid quest config %+v", cfg)
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	// Potential patterns.
	patterns := make([][]int, cfg.NumPatterns)
	corrupt := make([]float64, cfg.NumPatterns)
	for p := range patterns {
		size := poisson(r, float64(cfg.AvgPatternLen))
		if size < 1 {
			size = 1
		}
		if size > cfg.NumItems {
			size = cfg.NumItems
		}
		pick := map[int]bool{}
		var items []int
		if p > 0 {
			frac := r.ExpFloat64() * cfg.Correlation
			if frac > 1 {
				frac = 1
			}
			reuse := int(math.Round(frac * float64(size)))
			prev := patterns[p-1]
			perm := r.Perm(len(prev))
			for _, idx := range perm {
				if len(items) >= reuse {
					break
				}
				if !pick[prev[idx]] {
					pick[prev[idx]] = true
					items = append(items, prev[idx])
				}
			}
		}
		for len(items) < size {
			it := r.Intn(cfg.NumItems)
			if !pick[it] {
				pick[it] = true
				items = append(items, it)
			}
		}
		patterns[p] = items
		c := r.NormFloat64()*cfg.CorruptionStd + cfg.CorruptionMean
		corrupt[p] = clamp01(c)
	}

	// Pattern weights (exponential, normalized to a cumulative table).
	cum := make([]float64, cfg.NumPatterns)
	total := 0.0
	for p := range cum {
		total += r.ExpFloat64()
		cum[p] = total
	}

	pickPattern := func() int {
		x := r.Float64() * total
		lo, hi := 0, cfg.NumPatterns-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	raw := make([][]int, cfg.NumTransactions)
	for t := range raw {
		want := poisson(r, float64(cfg.AvgTxLen))
		if want < 1 {
			want = 1
		}
		seen := map[int]bool{}
		var tx []int
		for len(tx) < want {
			p := pickPattern()
			items := append([]int(nil), patterns[p]...)
			// Corruption: drop random items while a coin keeps coming
			// up below the pattern's corruption level.
			for len(items) > 0 && r.Float64() < corrupt[p] {
				i := r.Intn(len(items))
				items[i] = items[len(items)-1]
				items = items[:len(items)-1]
			}
			if len(items) == 0 {
				continue
			}
			if len(tx)+len(items) > want {
				// Oversized: half the time store it anyway, otherwise
				// discard it; either way the transaction is complete.
				// An empty transaction always keeps the items — the
				// original generator never emits empty baskets.
				if len(tx) == 0 || r.Intn(2) == 0 {
					for _, it := range items {
						if !seen[it] {
							seen[it] = true
							tx = append(tx, it)
						}
					}
				}
				break
			}
			for _, it := range items {
				if !seen[it] {
					seen[it] = true
					tx = append(tx, it)
				}
			}
		}
		raw[t] = tx
	}
	return dataset.FromTransactionsN(raw, cfg.NumItems)
}

// poisson samples a Poisson variate by Knuth's product method; fine
// for the small means used here.
func poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // lambda pathologically large; bail out
		}
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
