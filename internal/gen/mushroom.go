package gen

import (
	"fmt"
	"math/rand"

	"closedrules/internal/dataset"
)

// MushroomConfig parameterizes the mushroom-like generator standing in
// for the UCI Agaricus-Lepiota dataset used throughout the Close /
// A-Close / bases evaluations: 8124 objects × 23 nominal attributes
// (class + 22 descriptors) with strong functional dependencies between
// attributes — the most closure-friendly of the classic datasets.
type MushroomConfig struct {
	NumObjects int // UCI original: 8124
	Seed       int64
}

// mushAttr describes one nominal attribute: a name, its domain, and
// per-class value weights (edible, poisonous). A weight table with a
// single non-zero entry makes the attribute class-determined; a table
// identical across classes makes it class-independent.
type mushAttr struct {
	name   string
	values []string
	wE, wP []float64 // weights per value for edible / poisonous
	// copyOf, when ≥ 0, makes the attribute copy the sampled value of
	// attribute copyOf with probability copyProb — the hard inter-
	// attribute dependencies of the real data (above/below-ring
	// attributes nearly always agree).
	copyOf   int
	copyProb float64
}

// mushSpec mirrors the UCI schema: domain sizes follow the real
// attribute domains; the weight tables encode the dataset's famous
// dependencies (odor almost determines the class; veil-type is
// constant; ring-number is almost constant). Values are invented —
// only the dependency structure matters for the experiments.
func mushSpec() []mushAttr {
	skew := func(ws ...float64) []float64 { return ws }
	at := func(name string, values []string, wE, wP []float64) mushAttr {
		return mushAttr{name: name, values: values, wE: wE, wP: wP, copyOf: -1}
	}
	spec := []mushAttr{
		at("class", []string{"e", "p"}, skew(1, 0), skew(0, 1)),
		at("cap-shape", []string{"b", "c", "f", "k", "s", "x"},
			skew(2, 1, 8, 1, 1, 8), skew(1, 1, 8, 3, 1, 8)),
		at("cap-surface", []string{"f", "g", "s", "y"},
			skew(5, 1, 5, 5), skew(4, 1, 4, 6)),
		at("cap-color", []string{"b", "c", "e", "g", "n", "p", "r", "u", "w", "y"},
			skew(1, 1, 3, 5, 6, 1, 1, 1, 3, 2), skew(2, 1, 3, 4, 5, 2, 1, 1, 4, 3)),
		at("bruises", []string{"t", "f"}, skew(7, 3), skew(3, 7)),
		// Odor: the near-deterministic class indicator of the UCI data.
		at("odor", []string{"a", "l", "n", "c", "f", "m", "p", "s", "y"},
			skew(4, 4, 12, 0, 0, 0, 0, 0, 0), skew(0, 0, 1, 2, 11, 1, 3, 3, 3)),
		at("gill-attachment", []string{"a", "f"}, skew(1, 39), skew(1, 79)),
		at("gill-spacing", []string{"c", "w"}, skew(7, 3), skew(9, 1)),
		at("gill-size", []string{"b", "n"}, skew(8, 2), skew(4, 6)),
		at("gill-color", []string{"b", "e", "g", "h", "k", "n", "o", "p", "r", "u", "w", "y"},
			skew(0, 1, 3, 2, 2, 4, 1, 4, 0, 2, 4, 1), skew(6, 1, 2, 3, 1, 2, 1, 3, 1, 1, 2, 1)),
		at("stalk-shape", []string{"e", "t"}, skew(4, 6), skew(6, 4)),
		at("stalk-root", []string{"b", "c", "e", "r", "?"},
			skew(5, 1, 2, 1, 3), skew(4, 1, 2, 0, 5)),
		at("stalk-surface-above-ring", []string{"f", "k", "s", "y"},
			skew(2, 1, 9, 1), skew(2, 6, 4, 1)),
		at("stalk-surface-below-ring", []string{"f", "k", "s", "y"},
			skew(2, 1, 8, 2), skew(2, 6, 4, 1)),
		at("stalk-color-above-ring", []string{"b", "c", "e", "g", "n", "o", "p", "w", "y"},
			skew(0, 0, 1, 2, 1, 1, 2, 12, 0), skew(4, 1, 0, 1, 2, 0, 6, 4, 1)),
		at("stalk-color-below-ring", []string{"b", "c", "e", "g", "n", "o", "p", "w", "y"},
			skew(0, 0, 1, 2, 1, 1, 2, 12, 0), skew(4, 1, 0, 1, 2, 0, 6, 4, 1)),
		// Veil type is constant in the real data: a universal item, so
		// h(∅) ≠ ∅ and the DG basis carries the rule ∅ → {veil-type=p}.
		at("veil-type", []string{"p"}, skew(1), skew(1)),
		at("veil-color", []string{"n", "o", "w", "y"}, skew(0, 0, 1, 0), skew(1, 1, 20, 1)),
		at("ring-number", []string{"n", "o", "t"}, skew(0, 18, 2), skew(1, 18, 1)),
		at("ring-type", []string{"e", "f", "l", "n", "p"},
			skew(3, 1, 0, 0, 8), skew(4, 0, 5, 1, 4)),
		at("spore-print-color", []string{"b", "h", "k", "n", "o", "r", "u", "w", "y"},
			skew(1, 1, 6, 6, 1, 0, 1, 2, 1), skew(0, 8, 2, 2, 0, 1, 0, 5, 0)),
		at("population", []string{"a", "c", "n", "s", "v", "y"},
			skew(1, 1, 2, 3, 4, 2), skew(0, 1, 1, 2, 7, 1)),
		at("habitat", []string{"d", "g", "l", "m", "p", "u", "w"},
			skew(6, 7, 2, 2, 1, 1, 1), skew(6, 4, 3, 1, 3, 2, 0)),
	}
	for i := range spec {
		spec[i].copyOf = -1
	}
	// Above/below-ring surfaces and colors nearly always agree in the
	// real data: hard dependencies that create non-closed itemsets.
	const (
		ssAbove, ssBelow = 12, 13
		scAbove, scBelow = 14, 15
	)
	spec[ssBelow].copyOf, spec[ssBelow].copyProb = ssAbove, 0.85
	spec[scBelow].copyOf, spec[scBelow].copyProb = scAbove, 0.85
	return spec
}

// Mushroom generates the dataset; items are named
// "<attribute>=<value>" as ReadTable would produce.
func Mushroom(cfg MushroomConfig) (*dataset.Dataset, error) {
	if cfg.NumObjects < 0 {
		return nil, fmt.Errorf("gen: invalid mushroom config %+v", cfg)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	spec := mushSpec()

	// Dense item ids: attribute a, value v ↦ base[a]+v.
	base := make([]int, len(spec))
	numItems := 0
	var names []string
	for a, at := range spec {
		base[a] = numItems
		numItems += len(at.values)
		for _, v := range at.values {
			names = append(names, at.name+"="+v)
		}
	}

	// ~51.8% edible, like the original.
	raw := make([][]int, cfg.NumObjects)
	vals := make([]int, len(spec))
	for o := range raw {
		edible := r.Float64() < 0.518
		row := make([]int, 0, len(spec))
		for a, at := range spec {
			w := at.wP
			if edible {
				w = at.wE
			}
			var v int
			switch {
			case a == 0: // class attribute is the label itself
				if edible {
					v = 0
				} else {
					v = 1
				}
			case at.copyOf >= 0 && r.Float64() < at.copyProb &&
				vals[at.copyOf] < len(at.values):
				v = vals[at.copyOf]
			default:
				v = weighted(r, w)
			}
			vals[a] = v
			row = append(row, base[a]+v)
		}
		raw[o] = row
	}
	d, err := dataset.FromTransactionsN(raw, numItems)
	if err != nil {
		return nil, err
	}
	return d.WithNames(names)
}

// weighted draws an index proportionally to the weights.
func weighted(r *rand.Rand, w []float64) int {
	total := 0.0
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	acc := 0.0
	for i, v := range w {
		acc += v
		if x <= acc {
			return i
		}
	}
	return len(w) - 1
}
