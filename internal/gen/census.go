package gen

import (
	"fmt"
	"math/rand"

	"closedrules/internal/dataset"
)

// CensusConfig parameterizes the census-like generator standing in for
// the PUMS extracts C20D10K / C73D10K: every object carries exactly
// one value per attribute, and attributes are strongly correlated
// through latent population clusters — the regime where closed-itemset
// methods dominate.
type CensusConfig struct {
	NumObjects         int
	NumAttributes      int // C20D10K ↦ 20, C73D10K ↦ 73
	ValuesPerAttribute int
	NumClusters        int     // latent population groups
	Noise              float64 // probability a noisy attribute deviates from its cluster value
	// DeterministicFraction is the fraction of attributes that are
	// exact functions of the latent cluster (no noise) — the stand-in
	// for the derived/encoded fields of real census extracts. These
	// functional dependencies are what make |FC| ≪ |FI|.
	DeterministicFraction float64
	Seed                  int64
}

// C20 returns a configuration shaped like C20D10K at the given scale.
func C20(numObjects int, seed int64) CensusConfig {
	return CensusConfig{
		NumObjects:            numObjects,
		NumAttributes:         20,
		ValuesPerAttribute:    10,
		NumClusters:           8,
		Noise:                 0.15,
		DeterministicFraction: 0.5,
		Seed:                  seed,
	}
}

// C73 returns a configuration shaped like C73D10K at the given scale.
func C73(numObjects int, seed int64) CensusConfig {
	c := C20(numObjects, seed)
	c.NumAttributes = 73
	c.ValuesPerAttribute = 6
	return c
}

// Census generates the dataset; items are named "aI=vJ".
func Census(cfg CensusConfig) (*dataset.Dataset, error) {
	if cfg.NumObjects < 0 || cfg.NumAttributes < 1 || cfg.ValuesPerAttribute < 1 ||
		cfg.NumClusters < 1 || cfg.Noise < 0 || cfg.Noise > 1 ||
		cfg.DeterministicFraction < 0 || cfg.DeterministicFraction > 1 {
		return nil, fmt.Errorf("gen: invalid census config %+v", cfg)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	numDet := int(cfg.DeterministicFraction * float64(cfg.NumAttributes))

	// Cluster-preferred value per attribute, with skewed cluster
	// weights (cluster k has weight ∝ 1/(k+1), Zipf-like). Preferred
	// values are themselves Zipf-skewed toward low value ids — census
	// attributes have dominant modal values ("worked last year = yes"),
	// which is what pushes itemsets over high support thresholds.
	zipfValue := func() int {
		total := 0.0
		for v := 0; v < cfg.ValuesPerAttribute; v++ {
			total += 1 / float64((v+1)*(v+1))
		}
		x := r.Float64() * total
		acc := 0.0
		for v := 0; v < cfg.ValuesPerAttribute; v++ {
			acc += 1 / float64((v+1)*(v+1))
			if x <= acc {
				return v
			}
		}
		return cfg.ValuesPerAttribute - 1
	}
	pref := make([][]int, cfg.NumClusters)
	for c := range pref {
		pref[c] = make([]int, cfg.NumAttributes)
		for a := range pref[c] {
			pref[c][a] = zipfValue()
		}
	}
	cum := make([]float64, cfg.NumClusters)
	total := 0.0
	for c := range cum {
		total += 1 / float64(c+1)
		cum[c] = total
	}
	pickCluster := func() int {
		x := r.Float64() * total
		for c, v := range cum {
			if x <= v {
				return c
			}
		}
		return cfg.NumClusters - 1
	}

	raw := make([][]int, cfg.NumObjects)
	for o := range raw {
		c := pickCluster()
		row := make([]int, cfg.NumAttributes)
		for a := 0; a < cfg.NumAttributes; a++ {
			v := pref[c][a]
			if a >= numDet && r.Float64() < cfg.Noise {
				v = r.Intn(cfg.ValuesPerAttribute)
			}
			row[a] = a*cfg.ValuesPerAttribute + v
		}
		raw[o] = row
	}
	numItems := cfg.NumAttributes * cfg.ValuesPerAttribute
	d, err := dataset.FromTransactionsN(raw, numItems)
	if err != nil {
		return nil, err
	}
	names := make([]string, numItems)
	for a := 0; a < cfg.NumAttributes; a++ {
		for v := 0; v < cfg.ValuesPerAttribute; v++ {
			names[a*cfg.ValuesPerAttribute+v] = fmt.Sprintf("a%d=v%d", a, v)
		}
	}
	return d.WithNames(names)
}
