package apriori

import (
	"math/rand"
	"testing"

	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/naive"
	"closedrules/internal/testgen"
)

func classic(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMineClassic(t *testing.T) {
	d := classic(t)
	fam, stats, err := Mine(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 15 {
		t.Fatalf("|FI| = %d, want 15", fam.Len())
	}
	if s, _ := fam.Support(itemset.Of(0, 1, 2, 4)); s != 2 {
		t.Errorf("supp(ABCE) = %d", s)
	}
	if stats.Passes != 4 { // levels 1..4 each take one pass
		t.Errorf("Passes = %d, want 4", stats.Passes)
	}
	if len(stats.FrequentPerLevel) != 4 {
		t.Fatalf("FrequentPerLevel = %v", stats.FrequentPerLevel)
	}
	wantPerLevel := []int{4, 6, 4, 1}
	for i, want := range wantPerLevel {
		if stats.FrequentPerLevel[i] != want {
			t.Errorf("level %d: %d frequent, want %d", i+1, stats.FrequentPerLevel[i], want)
		}
	}
}

func TestMineMinSupValidation(t *testing.T) {
	d := classic(t)
	if _, _, err := Mine(d, 0); err == nil {
		t.Error("minSup 0 accepted")
	}
	if _, _, err := Mine(d, -3); err == nil {
		t.Error("negative minSup accepted")
	}
}

func TestMineHighMinSup(t *testing.T) {
	d := classic(t)
	fam, _, err := Mine(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 0 {
		t.Errorf("minsup 5: |FI| = %d, want 0", fam.Len())
	}
	fam, _, err = Mine(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	// B, C, E and BE.
	if fam.Len() != 4 {
		t.Errorf("minsup 4: |FI| = %d, want 4: %v", fam.Len(), fam.All())
	}
}

func TestMineEmptyDataset(t *testing.T) {
	d, _ := dataset.FromTransactions(nil)
	fam, stats, err := Mine(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 0 || stats.Passes != 1 {
		t.Errorf("empty dataset: %d itemsets, %d passes", fam.Len(), stats.Passes)
	}
}

func TestMineSingleTransaction(t *testing.T) {
	d, _ := dataset.FromTransactions([][]int{{0, 1, 2}})
	fam, _, err := Mine(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 7 { // 2^3 - 1
		t.Errorf("|FI| = %d, want 7", fam.Len())
	}
}

func TestMineAgainstNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for iter := 0; iter < 60; iter++ {
		d := testgen.Random(r, 25, 10, 0.4)
		minSup := 1 + r.Intn(4)
		fam, _, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.FrequentItemsets(d.Context(), minSup)
		if !fam.Equal(want) {
			t.Fatalf("iter %d (minSup %d): apriori %d itemsets, naive %d",
				iter, minSup, fam.Len(), want.Len())
		}
	}
}

func TestMineAgainstNaiveCorrelated(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for iter := 0; iter < 10; iter++ {
		d := testgen.Correlated(r, 40, 4, 3, 0.2)
		minSup := 2 + r.Intn(6)
		fam, _, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.FrequentItemsets(d.Context(), minSup)
		if !fam.Equal(want) {
			t.Fatalf("iter %d: apriori %d, naive %d", iter, fam.Len(), want.Len())
		}
	}
}

func TestStatsTotalCandidates(t *testing.T) {
	s := Stats{CandidatesPerLevel: []int{5, 3, 1}}
	if s.TotalCandidates() != 9 {
		t.Errorf("TotalCandidates = %d", s.TotalCandidates())
	}
}
