// Package apriori implements the classical Apriori frequent-itemset
// miner (Agrawal & Srikant, VLDB 1994). It is the baseline the Close
// and A-Close papers compare against: one database pass per level,
// candidate generation by join + subset pruning, support counting via
// a prefix trie over the candidates.
package apriori

import (
	"context"
	"fmt"

	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/levelwise"
)

// Stats reports the work done by a mining run, mirroring the
// pass/candidate accounting of the papers' evaluations.
type Stats struct {
	Passes             int   // database passes (= levels counted)
	CandidatesPerLevel []int // candidates counted at level k (index k-1)
	FrequentPerLevel   []int // frequent itemsets found at level k
}

// TotalCandidates sums the candidate counts over all levels.
func (s Stats) TotalCandidates() int {
	n := 0
	for _, c := range s.CandidatesPerLevel {
		n += c
	}
	return n
}

// Mine returns all non-empty frequent itemsets with absolute support ≥
// minSup, together with run statistics.
func Mine(d *dataset.Dataset, minSup int) (*itemset.Family, Stats, error) {
	return MineContext(context.Background(), d, minSup)
}

// MineContext is Mine with cancellation: ctx is checked before every
// level-wise database pass, so a cancelled context aborts the run
// within one level.
func MineContext(ctx context.Context, d *dataset.Dataset, minSup int) (*itemset.Family, Stats, error) {
	var stats Stats
	if minSup < 1 {
		return nil, stats, fmt.Errorf("apriori: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	fam := itemset.NewFamily()

	// Level 1: one pass counting single items.
	sup := d.ItemSupports()
	stats.Passes = 1
	stats.CandidatesPerLevel = append(stats.CandidatesPerLevel, d.NumItems())
	var level []itemset.Itemset
	for it, s := range sup {
		if s >= minSup {
			one := itemset.Of(it)
			fam.Add(one, s)
			level = append(level, one)
		}
	}
	stats.FrequentPerLevel = append(stats.FrequentPerLevel, len(level))

	for k := 2; len(level) >= 2; k++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		cands := levelwise.Join(level)
		cands = levelwise.PruneBySubsets(cands, levelwise.Keys(level))
		if len(cands) == 0 {
			break
		}
		stats.CandidatesPerLevel = append(stats.CandidatesPerLevel, len(cands))

		counts := make([]int, len(cands))
		trie := levelwise.NewTrie(k, cands)
		if err := trie.WalkPass(ctx, d.Transactions(), k, func(_, idx int) { counts[idx]++ }); err != nil {
			return nil, stats, err
		}
		stats.Passes++

		var next []itemset.Itemset
		for i, c := range cands {
			if counts[i] >= minSup {
				fam.Add(c, counts[i])
				next = append(next, c)
			}
		}
		stats.FrequentPerLevel = append(stats.FrequentPerLevel, len(next))
		level = next
	}
	return fam, stats, nil
}
