// Package testgen builds small randomized datasets for the
// cross-checking tests that compare the real miners against the
// brute-force oracles in internal/naive. Kept out of _test files so
// every package's tests can share the same generators.
package testgen

import (
	"math/rand"

	"closedrules/internal/dataset"
)

// Random returns a dataset with up to maxObjects transactions over up
// to maxItems items; each (object, item) pair is related with the
// given density. The item universe is padded so NumItems is exact.
func Random(r *rand.Rand, maxObjects, maxItems int, density float64) *dataset.Dataset {
	nObj := 1 + r.Intn(maxObjects)
	nIt := 1 + r.Intn(maxItems)
	raw := make([][]int, nObj, nObj+1)
	sawLast := false
	for o := 0; o < nObj; o++ {
		for i := 0; i < nIt; i++ {
			if r.Float64() < density {
				raw[o] = append(raw[o], i)
				if i == nIt-1 {
					sawLast = true
				}
			}
		}
	}
	if !sawLast {
		// Pin the universe size by mentioning the last item once.
		raw = append(raw, []int{nIt - 1})
	}
	d, err := dataset.FromTransactions(raw)
	if err != nil {
		panic(err) // unreachable: generated items are non-negative
	}
	return d
}

// Correlated returns a dataset in the strongly correlated regime
// (mushroom/census-like): nObjects rows, each choosing one value per
// attribute, with values drawn from a cluster-preferred distribution.
// This produces many equal-support itemsets, exercising closure logic
// harder than uniform noise.
func Correlated(r *rand.Rand, nObjects, nAttrs, valuesPerAttr int, noise float64) *dataset.Dataset {
	nClusters := 2 + r.Intn(3)
	pref := make([][]int, nClusters)
	for c := range pref {
		pref[c] = make([]int, nAttrs)
		for a := range pref[c] {
			pref[c][a] = r.Intn(valuesPerAttr)
		}
	}
	raw := make([][]int, nObjects)
	for o := range raw {
		c := r.Intn(nClusters)
		row := make([]int, nAttrs)
		for a := 0; a < nAttrs; a++ {
			v := pref[c][a]
			if r.Float64() < noise {
				v = r.Intn(valuesPerAttr)
			}
			row[a] = a*valuesPerAttr + v
		}
		raw[o] = row
	}
	d, err := dataset.FromTransactions(raw)
	if err != nil {
		panic(err)
	}
	return d
}
