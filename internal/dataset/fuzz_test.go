package dataset

// Robustness tests: the readers must return errors — never panic —
// on arbitrary malformed input, and accept every output the writers
// produce (round-trip totality).

import (
	"math/rand"
	"strings"
	"testing"
)

func TestReadDatNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	alphabet := []byte("0123456789 \t\n#-xyz\x00\xff,")
	for iter := 0; iter < 500; iter++ {
		n := r.Intn(200)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on %q: %v", buf, p)
				}
			}()
			d, err := ReadDat(strings.NewReader(string(buf)))
			if err == nil && d == nil {
				t.Fatal("nil dataset without error")
			}
		}()
	}
}

func TestReadTableNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	alphabet := []byte("abc,;? \n\r\"=0")
	for iter := 0; iter < 500; iter++ {
		n := r.Intn(200)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on %q: %v", buf, p)
				}
			}()
			_, _ = ReadTable(strings.NewReader(string(buf)), ',', iter%2 == 0)
		}()
	}
}

func TestDatRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	for iter := 0; iter < 100; iter++ {
		raw := make([][]int, r.Intn(30))
		for i := range raw {
			n := 1 + r.Intn(8) // WriteDat/ReadDat drop empty lines; use non-empty
			for j := 0; j < n; j++ {
				raw[i] = append(raw[i], r.Intn(1000))
			}
		}
		d, err := FromTransactions(raw)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := WriteDat(&sb, d); err != nil {
			t.Fatal(err)
		}
		d2, err := ReadDat(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("iter %d: round trip failed: %v", iter, err)
		}
		if d2.NumTransactions() != d.NumTransactions() {
			t.Fatalf("iter %d: %d transactions, want %d",
				iter, d2.NumTransactions(), d.NumTransactions())
		}
		for i := range raw {
			if !d.Transaction(i).Equal(d2.Transaction(i)) {
				t.Fatalf("iter %d: transaction %d differs", iter, i)
			}
		}
	}
}

// failingReader injects an I/O error after a few bytes.
type failingReader struct{ n int }

func (f *failingReader) Read(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errInjected
	}
	p[0] = '1'
	f.n--
	return 1, nil
}

type injectedError struct{}

func (injectedError) Error() string { return "injected I/O failure" }

var errInjected = injectedError{}

func TestReadDatPropagatesIOErrors(t *testing.T) {
	if _, err := ReadDat(&failingReader{n: 3}); err == nil {
		t.Fatal("I/O error swallowed")
	}
	if _, err := ReadTable(&failingReader{n: 3}, ',', false); err == nil {
		t.Fatal("I/O error swallowed by ReadTable")
	}
}

func TestHugeLineRejectedGracefully(t *testing.T) {
	// A single line beyond the scanner's buffer must error, not hang
	// or panic.
	line := strings.Repeat("1 ", 20<<20)
	_, err := ReadDat(strings.NewReader(line))
	if err == nil {
		t.Skip("scanner swallowed the line (buffer large enough)")
	}
}
