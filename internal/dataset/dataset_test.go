package dataset

import (
	"math/rand"
	"strings"
	"testing"

	"closedrules/internal/itemset"
)

// classic is the 5-object, 5-item running example of the Close paper
// (items A=0, B=1, C=2, D=3, E=4).
func classic(t *testing.T) *Dataset {
	t.Helper()
	d, err := FromTransactions([][]int{
		{0, 2, 3},    // ACD
		{1, 2, 4},    // BCE
		{0, 1, 2, 4}, // ABCE
		{1, 4},       // BE
		{0, 1, 2, 4}, // ABCE
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFromTransactionsNormalizes(t *testing.T) {
	d, err := FromTransactions([][]int{{3, 1, 1, 2}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 2 {
		t.Fatalf("NumTransactions = %d", d.NumTransactions())
	}
	if d.NumItems() != 4 {
		t.Fatalf("NumItems = %d", d.NumItems())
	}
	if !d.Transaction(0).Equal(itemset.Of(1, 2, 3)) {
		t.Errorf("tx0 = %v", d.Transaction(0))
	}
	if d.Transaction(1).Len() != 0 {
		t.Errorf("tx1 = %v", d.Transaction(1))
	}
}

func TestFromTransactionsRejectsNegative(t *testing.T) {
	if _, err := FromTransactions([][]int{{1, -2}}); err == nil {
		t.Fatal("no error for negative item")
	}
}

func TestStats(t *testing.T) {
	d := classic(t)
	s := d.Stats()
	if s.NumTransactions != 5 || s.NumItems != 5 {
		t.Fatalf("dims: %+v", s)
	}
	if s.MinLen != 2 || s.MaxLen != 4 {
		t.Errorf("len range: %+v", s)
	}
	if s.AvgLen != (3+3+4+2+4)/5.0 {
		t.Errorf("AvgLen = %v", s.AvgLen)
	}
	want := 16.0 / 25.0
	if s.Density < want-1e-12 || s.Density > want+1e-12 {
		t.Errorf("Density = %v, want %v", s.Density, want)
	}
}

func TestStatsEmpty(t *testing.T) {
	d, _ := FromTransactions(nil)
	s := d.Stats()
	if s.NumTransactions != 0 || s.AvgLen != 0 || s.Density != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestItemSupports(t *testing.T) {
	d := classic(t)
	got := d.ItemSupports()
	want := []int{3, 4, 4, 1, 4} // A,B,C,D,E
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("support[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAbsoluteSupport(t *testing.T) {
	d := classic(t)
	cases := []struct {
		rel  float64
		want int
	}{
		{0.2, 1}, {0.4, 2}, {0.5, 3}, {0.6, 3}, {1.0, 5}, {0.0001, 1},
	}
	for _, c := range cases {
		if got := d.AbsoluteSupport(c.rel); got != c.want {
			t.Errorf("AbsoluteSupport(%v) = %d, want %d", c.rel, got, c.want)
		}
	}
}

func TestContextRowsCols(t *testing.T) {
	d := classic(t)
	c := d.Context()
	if c.NumObjects != 5 || c.NumItems != 5 {
		t.Fatalf("context dims %d×%d", c.NumObjects, c.NumItems)
	}
	// Row 2 = ABCE = {0,1,2,4}
	for _, x := range []int{0, 1, 2, 4} {
		if !c.Rows[2].Has(x) {
			t.Errorf("row 2 missing %d", x)
		}
	}
	if c.Rows[2].Has(3) {
		t.Error("row 2 has D")
	}
	// Col C=2 present in objects {0,1,2,4}
	for _, o := range []int{0, 1, 2, 4} {
		if !c.Cols[2].Has(o) {
			t.Errorf("col C missing object %d", o)
		}
	}
	if c.Cols[2].Has(3) {
		t.Error("col C has object 3")
	}
	// Consistency: Rows[o].Has(i) == Cols[i].Has(o) for all o,i.
	for o := 0; o < c.NumObjects; o++ {
		for i := 0; i < c.NumItems; i++ {
			if c.Rows[o].Has(i) != c.Cols[i].Has(o) {
				t.Fatalf("rows/cols inconsistent at (%d,%d)", o, i)
			}
		}
	}
}

func TestNames(t *testing.T) {
	d := classic(t)
	if d.ItemName(0) != "0" {
		t.Errorf("unnamed ItemName = %q", d.ItemName(0))
	}
	nd, err := d.WithNames([]string{"A", "B", "C", "D", "E"})
	if err != nil {
		t.Fatal(err)
	}
	if nd.ItemName(0) != "A" || nd.ItemName(4) != "E" {
		t.Error("names not applied")
	}
	if _, err := d.WithNames([]string{"A"}); err == nil {
		t.Error("short name table accepted")
	}
}

func TestReadDat(t *testing.T) {
	in := "1 2 3\n\n# comment\n2 4\n0\n"
	d, err := ReadDat(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 3 {
		t.Fatalf("NumTransactions = %d", d.NumTransactions())
	}
	if !d.Transaction(1).Equal(itemset.Of(2, 4)) {
		t.Errorf("tx1 = %v", d.Transaction(1))
	}
	if d.NumItems() != 5 {
		t.Errorf("NumItems = %d", d.NumItems())
	}
}

func TestReadDatErrors(t *testing.T) {
	for _, in := range []string{"1 x 3\n", "1 -2\n", "4294967296999999999999999\n"} {
		if _, err := ReadDat(strings.NewReader(in)); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestDatRoundTrip(t *testing.T) {
	d := classic(t)
	var sb strings.Builder
	if err := WriteDat(&sb, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDat(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumTransactions() != d.NumTransactions() {
		t.Fatalf("round trip lost transactions")
	}
	for i := range d.Transactions() {
		if !d.Transaction(i).Equal(d2.Transaction(i)) {
			t.Errorf("tx %d: %v != %v", i, d.Transaction(i), d2.Transaction(i))
		}
	}
}

func TestReadTable(t *testing.T) {
	in := "color,size\nred,big\nblue,small\nred,small\n"
	d, err := ReadTable(strings.NewReader(in), ',', true)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 3 {
		t.Fatalf("NumTransactions = %d", d.NumTransactions())
	}
	if d.NumItems() != 4 {
		t.Fatalf("NumItems = %d (names %v)", d.NumItems(), d.Names())
	}
	// first row: color=red, size=big → items 0,1
	if !d.Transaction(0).Equal(itemset.Of(0, 1)) {
		t.Errorf("tx0 = %v", d.Transaction(0))
	}
	if d.ItemName(0) != "color=red" {
		t.Errorf("name 0 = %q", d.ItemName(0))
	}
	// row 3 shares items with rows 1 and 2
	if !d.Transaction(2).Equal(itemset.Of(0, 3)) {
		t.Errorf("tx2 = %v", d.Transaction(2))
	}
}

func TestReadTableNoHeaderAndMissing(t *testing.T) {
	in := "a;?\nb;x\n;x\n"
	d, err := ReadTable(strings.NewReader(in), ';', false)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 3 {
		t.Fatalf("NumTransactions = %d", d.NumTransactions())
	}
	if d.Transaction(0).Len() != 1 { // "?" dropped
		t.Errorf("tx0 = %v", d.Transaction(0))
	}
	if d.Transaction(2).Len() != 1 { // empty first field dropped
		t.Errorf("tx2 = %v", d.Transaction(2))
	}
	if d.ItemName(0) != "c0=a" {
		t.Errorf("name = %q", d.ItemName(0))
	}
}

func TestReadTableRaggedRows(t *testing.T) {
	in := "a,b\nc\n"
	if _, err := ReadTable(strings.NewReader(in), ',', false); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestProject(t *testing.T) {
	d := classic(t)
	nd, remap := d.Project(itemset.Of(1, 2, 4)) // keep B, C, E
	if nd.NumItems() != 3 {
		t.Fatalf("NumItems = %d", nd.NumItems())
	}
	if remap[1] != 0 || remap[2] != 1 || remap[4] != 2 || remap[0] != -1 || remap[3] != -1 {
		t.Fatalf("remap = %v", remap)
	}
	// ACD → {C} → {1}
	if !nd.Transaction(0).Equal(itemset.Of(1)) {
		t.Errorf("tx0 = %v", nd.Transaction(0))
	}
	// ABCE → BCE → {0,1,2}
	if !nd.Transaction(2).Equal(itemset.Of(0, 1, 2)) {
		t.Errorf("tx2 = %v", nd.Transaction(2))
	}
	if nd.NumTransactions() != 5 {
		t.Errorf("transactions dropped")
	}
}

func TestWriteSupports(t *testing.T) {
	d := classic(t)
	var sb strings.Builder
	if err := WriteSupports(&sb, d); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
	// descending support: first line is one of B/C/E (support 4), last is D.
	if !strings.HasSuffix(lines[4], "\t1") {
		t.Errorf("last line %q should be the support-1 item", lines[4])
	}
}

func TestContextLargeRandomConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	raw := make([][]int, 80)
	for i := range raw {
		n := r.Intn(10)
		t := make([]int, n)
		for j := range t {
			t[j] = r.Intn(130) // force multi-word bitsets
		}
		raw[i] = t
	}
	d, err := FromTransactions(raw)
	if err != nil {
		t.Fatal(err)
	}
	c := d.Context()
	for o := 0; o < c.NumObjects; o++ {
		if c.Rows[o].Count() != d.Transaction(o).Len() {
			t.Fatalf("row %d count mismatch", o)
		}
	}
	sup := d.ItemSupports()
	for i := 0; i < c.NumItems; i++ {
		if c.Cols[i].Count() != sup[i] {
			t.Fatalf("col %d support mismatch", i)
		}
	}
}

func TestContextCachedAndShared(t *testing.T) {
	d, err := FromTransactions([][]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	c1 := d.Context()
	if c2 := d.Context(); c1 != c2 {
		t.Error("Context rebuilt on second call")
	}
	named, err := d.WithNames([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if named.Context() != c1 {
		t.Error("WithNames dataset does not share the context cache")
	}
	proj, _ := d.Project(itemset.Of(0, 1))
	if proj.Context() == c1 {
		t.Error("Project shares the parent's context")
	}
	// Concurrent first builds must agree (run under -race).
	d2, err := FromTransactions([][]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *Context, 8)
	for i := 0; i < 8; i++ {
		go func() { got <- d2.Context() }()
	}
	first := <-got
	for i := 1; i < 8; i++ {
		if c := <-got; c != first {
			t.Fatal("concurrent Context calls returned different views")
		}
	}
	// A zero-value Dataset still answers, uncached.
	var zero Dataset
	if zero.Context() == nil {
		t.Error("zero dataset has nil context")
	}
}
