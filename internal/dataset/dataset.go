// Package dataset implements the data-mining context of the paper: a
// triplet D = (O, I, R) where O is a finite set of objects
// (transactions), I a finite set of items and R ⊆ O×I a binary
// relation. It provides the transaction-list view used by level-wise
// miners and the bitset (binary context) view used by the Galois
// operators, plus readers/writers for the common interchange formats.
package dataset

import (
	"fmt"
	"sort"
	"sync"

	"closedrules/internal/bitset"
	"closedrules/internal/itemset"
)

// Dataset is an immutable transaction database over items 0..NumItems-1.
type Dataset struct {
	tx       []itemset.Itemset
	numItems int
	names    []string // optional, indexed by item id; nil if unnamed

	// ctxc caches the binary-matrix view across Context calls. It is a
	// pointer so derived datasets that share tx (WithNames) share the
	// cache, and so copying the struct never copies a sync.Once.
	ctxc *ctxCache
}

// ctxCache builds the binary context at most once per dataset.
type ctxCache struct {
	once sync.Once
	c    *Context
}

// FromTransactions builds a dataset from raw transactions. Each
// transaction is sorted and deduplicated; items must be non-negative.
// numItems is inferred as max item + 1.
func FromTransactions(raw [][]int) (*Dataset, error) {
	return FromTransactionsN(raw, 0)
}

// FromTransactionsN builds a dataset with an explicit item-universe
// size; numItems is grown if a transaction mentions a larger item.
func FromTransactionsN(raw [][]int, numItems int) (*Dataset, error) {
	if numItems < 0 {
		return nil, fmt.Errorf("dataset: negative numItems %d", numItems)
	}
	d := &Dataset{tx: make([]itemset.Itemset, len(raw)), numItems: numItems, ctxc: &ctxCache{}}
	for i, t := range raw {
		for _, x := range t {
			if x < 0 {
				return nil, fmt.Errorf("dataset: transaction %d has negative item %d", i, x)
			}
			if x+1 > d.numItems {
				d.numItems = x + 1
			}
		}
		d.tx[i] = itemset.Of(t...)
	}
	return d, nil
}

// WithNames attaches item names. len(names) must be ≥ NumItems.
func (d *Dataset) WithNames(names []string) (*Dataset, error) {
	if len(names) < d.numItems {
		return nil, fmt.Errorf("dataset: %d names for %d items", len(names), d.numItems)
	}
	nd := *d
	nd.names = names
	return &nd, nil
}

// NumTransactions returns the number of objects |O|.
func (d *Dataset) NumTransactions() int { return len(d.tx) }

// NumItems returns the number of items |I|.
func (d *Dataset) NumItems() int { return d.numItems }

// Transaction returns the i-th transaction (shared slice; do not mutate).
func (d *Dataset) Transaction(i int) itemset.Itemset { return d.tx[i] }

// Transactions returns all transactions (shared slices; do not mutate).
func (d *Dataset) Transactions() []itemset.Itemset { return d.tx }

// Names returns the item-name table, or nil if the dataset is unnamed.
func (d *Dataset) Names() []string { return d.names }

// ItemName returns the name of an item, falling back to its id.
func (d *Dataset) ItemName(item int) string {
	if d.names != nil && item >= 0 && item < len(d.names) && d.names[item] != "" {
		return d.names[item]
	}
	return fmt.Sprintf("%d", item)
}

// AbsoluteSupport converts a relative minimum support in (0,1] to an
// absolute count (ceiling), and passes through absolute counts ≥ 1.
func (d *Dataset) AbsoluteSupport(rel float64) int {
	n := float64(d.NumTransactions())
	k := int(rel*n + 0.999999999)
	if k < 1 {
		k = 1
	}
	return k
}

// Stats summarizes a dataset.
type Stats struct {
	NumTransactions int
	NumItems        int
	MinLen, MaxLen  int
	AvgLen          float64
	Density         float64 // |R| / (|O|·|I|)
}

// Stats computes summary statistics.
func (d *Dataset) Stats() Stats {
	s := Stats{NumTransactions: len(d.tx), NumItems: d.numItems}
	if len(d.tx) == 0 {
		return s
	}
	s.MinLen = d.tx[0].Len()
	total := 0
	for _, t := range d.tx {
		n := t.Len()
		total += n
		if n < s.MinLen {
			s.MinLen = n
		}
		if n > s.MaxLen {
			s.MaxLen = n
		}
	}
	s.AvgLen = float64(total) / float64(len(d.tx))
	if d.numItems > 0 {
		s.Density = float64(total) / (float64(len(d.tx)) * float64(d.numItems))
	}
	return s
}

// ItemSupports returns the absolute support of every single item.
func (d *Dataset) ItemSupports() []int {
	sup := make([]int, d.numItems)
	for _, t := range d.tx {
		for _, x := range t {
			sup[x]++
		}
	}
	return sup
}

// Slice returns the dataset restricted to the transactions [lo, hi),
// sharing their itemset slices with the parent. The item universe and
// name table are kept — a slice is the same context minus some
// objects, not a re-numbered projection — which is what makes slices
// composable with Concat: d.Slice(0, k) followed by the tail yields d
// back, transaction for transaction.
func (d *Dataset) Slice(lo, hi int) (*Dataset, error) {
	if lo < 0 || hi < lo || hi > len(d.tx) {
		return nil, fmt.Errorf("dataset: slice [%d,%d) outside [0,%d]", lo, hi, len(d.tx))
	}
	return &Dataset{tx: d.tx[lo:hi], numItems: d.numItems, names: d.names, ctxc: &ctxCache{}}, nil
}

// Concat returns the dataset holding a's transactions followed by b's —
// the append composition the incremental refresh path builds its new
// snapshot from. Transaction slices are shared with both parents. The
// item universe is the larger of the two; the name table is taken from
// whichever parent names that whole universe (preferring b, whose
// names include any items first seen in the appended batch), or
// dropped when neither does.
func Concat(a, b *Dataset) (*Dataset, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("dataset: Concat with nil dataset")
	}
	d := &Dataset{numItems: a.numItems, ctxc: &ctxCache{}}
	if b.numItems > d.numItems {
		d.numItems = b.numItems
	}
	d.tx = make([]itemset.Itemset, 0, len(a.tx)+len(b.tx))
	d.tx = append(d.tx, a.tx...)
	d.tx = append(d.tx, b.tx...)
	switch {
	case b.names != nil && len(b.names) >= d.numItems:
		d.names = b.names
	case a.names != nil && len(a.names) >= d.numItems:
		d.names = a.names
	}
	return d, nil
}

// Context is the binary-matrix view of a dataset: Rows[o] is the intent
// bitset of object o (over items), Cols[i] the extent bitset (tidset)
// of item i (over objects).
type Context struct {
	NumObjects int
	NumItems   int
	Rows       []bitset.Set
	Cols       []bitset.Set
}

// Context returns the bitset view. The view is built once — O(|R|) —
// on the first call and cached: miners, QueryService rebuilds and
// hot reloads that mine the same dataset repeatedly share one context
// instead of re-materializing |O|·|I| bits each time. Concurrent
// callers are safe (the build is guarded by a sync.Once), and the
// returned value is shared: treat it as read-only, like Transactions.
func (d *Dataset) Context() *Context {
	if d.ctxc == nil {
		// A Dataset not built by a constructor (zero value in tests):
		// fall back to an uncached build rather than racing on a lazily
		// created cache.
		return d.buildContext()
	}
	d.ctxc.once.Do(func() { d.ctxc.c = d.buildContext() })
	return d.ctxc.c
}

// buildContext materializes the bitset view.
func (d *Dataset) buildContext() *Context {
	c := &Context{
		NumObjects: len(d.tx),
		NumItems:   d.numItems,
		Rows:       make([]bitset.Set, len(d.tx)),
		Cols:       make([]bitset.Set, d.numItems),
	}
	for i := range c.Cols {
		c.Cols[i] = bitset.New(len(d.tx))
	}
	for o, t := range d.tx {
		row := bitset.New(d.numItems)
		for _, x := range t {
			row.Add(x)
			c.Cols[x].Add(o)
		}
		c.Rows[o] = row
	}
	return c
}

// Project returns a new dataset containing only the given items,
// renumbered densely in ascending order of their original ids, along
// with the mapping old→new (-1 for dropped items). Transactions that
// become empty are kept (objects are part of the context).
func (d *Dataset) Project(keep itemset.Itemset) (*Dataset, []int) {
	remap := make([]int, d.numItems)
	for i := range remap {
		remap[i] = -1
	}
	for newID, old := range keep {
		remap[old] = newID
	}
	nd := &Dataset{tx: make([]itemset.Itemset, len(d.tx)), numItems: keep.Len(), ctxc: &ctxCache{}}
	for i, t := range d.tx {
		nt := make(itemset.Itemset, 0, t.Len())
		for _, x := range t {
			if remap[x] >= 0 {
				nt = append(nt, remap[x])
			}
		}
		sort.Ints(nt)
		nd.tx[i] = nt
	}
	if d.names != nil {
		names := make([]string, keep.Len())
		for newID, old := range keep {
			if old < len(d.names) {
				names[newID] = d.names[old]
			}
		}
		nd.names = names
	}
	return nd, remap
}
