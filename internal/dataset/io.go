package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// ReadDat parses the FIMI ".dat" basket format: one transaction per
// line, whitespace-separated non-negative integer item ids. Blank lines
// are skipped. Lines starting with '#' are treated as comments.
func ReadDat(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var raw [][]int
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		t := make([]int, 0, len(fields))
		for _, f := range fields {
			x, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad item %q: %v", lineNo, f, err)
			}
			if x < 0 {
				return nil, fmt.Errorf("dataset: line %d: negative item %d", lineNo, x)
			}
			t = append(t, x)
		}
		raw = append(raw, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %v", err)
	}
	return FromTransactions(raw)
}

// ReadDatFile reads a .dat file from disk.
func ReadDatFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDat(f)
}

// WriteDat writes the dataset in the FIMI ".dat" format.
func WriteDat(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, t := range d.Transactions() {
		for i, x := range t {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(x)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteDatFile writes a .dat file to disk.
func WriteDatFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteDat(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTable parses a delimiter-separated nominal table (such as the UCI
// mushroom file or a census extract): every row is one object and every
// column an attribute; each distinct (column, value) pair becomes one
// item named "<header>=<value>". If hasHeader is false, columns are
// named c0, c1, …. Missing values ("?" or empty) produce no item.
func ReadTable(r io.Reader, sep rune, hasHeader bool) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var headers []string
	ids := map[string]int{}
	var names []string
	var raw [][]int
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Split(line, string(sep))
		if headers == nil {
			if hasHeader {
				headers = make([]string, len(fields))
				for i, h := range fields {
					headers[i] = strings.TrimSpace(h)
				}
				continue
			}
			headers = make([]string, len(fields))
			for i := range fields {
				headers[i] = fmt.Sprintf("c%d", i)
			}
		}
		if len(fields) != len(headers) {
			return nil, fmt.Errorf("dataset: line %d: %d fields, want %d", lineNo, len(fields), len(headers))
		}
		t := make([]int, 0, len(fields))
		for i, f := range fields {
			v := strings.TrimSpace(f)
			if v == "" || v == "?" {
				continue
			}
			key := headers[i] + "=" + v
			id, ok := ids[key]
			if !ok {
				id = len(names)
				ids[key] = id
				names = append(names, key)
			}
			t = append(t, id)
		}
		raw = append(raw, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %v", err)
	}
	d, err := FromTransactions(raw)
	if err != nil {
		return nil, err
	}
	if d.numItems < len(names) {
		d.numItems = len(names)
	}
	return d.WithNames(names)
}

// ReadTableFile reads a nominal table from disk.
func ReadTableFile(path string, sep rune, hasHeader bool) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTable(f, sep, hasHeader)
}

// WriteSupports writes "item support" lines sorted by descending
// support, a quick diagnostic view of a dataset.
func WriteSupports(w io.Writer, d *Dataset) error {
	sup := d.ItemSupports()
	order := make([]int, len(sup))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if sup[order[a]] != sup[order[b]] {
			return sup[order[a]] > sup[order[b]]
		}
		return order[a] < order[b]
	})
	bw := bufio.NewWriter(w)
	for _, it := range order {
		if _, err := fmt.Fprintf(bw, "%s\t%d\n", d.ItemName(it), sup[it]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
