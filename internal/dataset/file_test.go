package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDatFileRoundTrip(t *testing.T) {
	d := classic(t)
	path := filepath.Join(t.TempDir(), "x.dat")
	if err := WriteDatFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTransactions() != d.NumTransactions() {
		t.Fatalf("%d transactions, want %d", got.NumTransactions(), d.NumTransactions())
	}
}

func TestDatFileErrors(t *testing.T) {
	if _, err := ReadDatFile("/nonexistent/nope.dat"); err == nil {
		t.Error("missing file accepted")
	}
	if err := WriteDatFile(filepath.Join(string(os.PathSeparator), "no", "dir", "x.dat"), mustDataset(t)); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestReadTableFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := ReadTableFile(path, ',', true)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 1 || d.NumItems() != 2 {
		t.Errorf("dims %d×%d", d.NumTransactions(), d.NumItems())
	}
	if _, err := ReadTableFile("/nonexistent/t.csv", ',', true); err == nil {
		t.Error("missing file accepted")
	}
}

func mustDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := FromTransactions([][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFromTransactionsNValidation(t *testing.T) {
	if _, err := FromTransactionsN(nil, -1); err == nil {
		t.Error("negative numItems accepted")
	}
	d, err := FromTransactionsN([][]int{{2}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumItems() != 10 {
		t.Errorf("NumItems = %d, want 10", d.NumItems())
	}
	// universe grows when a transaction exceeds it
	d2, err := FromTransactionsN([][]int{{15}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumItems() != 16 {
		t.Errorf("NumItems = %d, want 16", d2.NumItems())
	}
}
