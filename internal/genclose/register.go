package genclose

import (
	"context"

	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	registry "closedrules/internal/miner"
)

type registered struct{}

func (registered) MineClosed(ctx context.Context, d *dataset.Dataset, minSup int) ([]closedset.Closed, error) {
	fc, err := MineContext(ctx, d, minSup)
	if err != nil {
		return nil, err
	}
	return fc.All(), nil
}

func (registered) TracksGenerators() bool { return true }

// registeredParallel adapts the parallel miner; the worker count comes
// from the context hint (WithParallelism in the root package), else
// one worker per CPU.
type registeredParallel struct{}

func (registeredParallel) MineClosed(ctx context.Context, d *dataset.Dataset, minSup int) ([]closedset.Closed, error) {
	fc, err := MineParallelContext(ctx, d, minSup, registry.ParallelismFromContext(ctx))
	if err != nil {
		return nil, err
	}
	return fc.All(), nil
}

func (registeredParallel) TracksGenerators() bool { return true }

func init() {
	registry.RegisterClosed("genclose", registered{})
	registry.RegisterClosed("pgenclose", registeredParallel{})
}
