// Package genclose mines the frequent closed itemsets and their
// minimal generators simultaneously, in one traversal — the
// construction of "Simultaneous mining of frequent closed itemsets and
// their generators" (Anh Tran et al., 2014) adapted to this library's
// vertical bitset engine.
//
// The traversal is level-wise over the minimal generators (the free
// sets): a candidate of size k joins two free sets of size k-1 and is
// itself free exactly when its support is strictly below the support
// of every immediate subset. Unlike A-Close — which counts candidates
// with one trie pass over the transaction list per level and computes
// closures in a separate terminal pass — every support here is a
// popcount probe on cached tidsets (no database passes after the
// initial binary context), and each closed node is extended with its
// closure the moment its first generator is discovered: generators
// with equal tidsets share one closure computation, so h(·) runs once
// per closed itemset, interleaved with the traversal instead of after
// it. The result therefore carries generators natively, which is what
// the generic and informative bases (and the basis registry's
// generator requirement) consume.
//
// The same per-level candidate evaluation runs sequentially or fanned
// out over the shared worker pool (MineParallelContext, registered as
// "pgenclose"): candidates are evaluated into index-addressed slots
// and all result-set mutations replay sequentially in candidate
// order, so the parallel output is byte-identical to the sequential
// one.
package genclose

import (
	"context"
	"fmt"

	"closedrules/internal/bitset"
	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/galois"
	"closedrules/internal/itemset"
	"closedrules/internal/levelwise"
	registry "closedrules/internal/miner"
)

// node is one free set (minimal generator) of the current level, with
// its tidset materialized and its support cached.
type node struct {
	items itemset.Itemset
	tids  bitset.Set
	sup   int
}

// probe is the popcount-only support kernel of the candidate
// evaluation: |tids(prefix) ∩ tids(item)| read off the cached bitsets
// without materializing the intersection, so candidates pruned by
// support or freeness allocate nothing.
//
//ar:noalloc
func probe(prev, col bitset.Set) int {
	return prev.IntersectionCount(col)
}

// Mine returns the frequent closed itemsets — with their minimal
// generators — at absolute support ≥ minSup, including the bottom
// h(∅) with generator ∅.
func Mine(d *dataset.Dataset, minSup int) (*closedset.Set, error) {
	return MineContext(context.Background(), d, minSup)
}

// MineContext is Mine with cancellation: ctx is checked per candidate
// inside every level, so a cancelled context aborts the run within one
// candidate evaluation.
func MineContext(ctx context.Context, d *dataset.Dataset, minSup int) (*closedset.Set, error) {
	return mine(ctx, d, minSup, 1)
}

// MineParallel mines with the given number of workers (≤ 0 means one
// per CPU); the result is byte-identical to Mine.
func MineParallel(d *dataset.Dataset, minSup, workers int) (*closedset.Set, error) {
	return MineParallelContext(context.Background(), d, minSup, workers)
}

// MineParallelContext is MineParallel with cancellation, under the
// same per-candidate contract as MineContext.
func MineParallelContext(ctx context.Context, d *dataset.Dataset, minSup, workers int) (*closedset.Set, error) {
	if workers < 1 {
		workers = 1
	}
	return mine(ctx, d, minSup, workers)
}

// mine is the shared engine. All mutation of the result set and the
// closure index happens on the calling goroutine in candidate order;
// workers only fill index-addressed slots with pure per-candidate
// results, which is what makes the parallel run byte-identical to the
// sequential one.
func mine(ctx context.Context, d *dataset.Dataset, minSup, workers int) (*closedset.Set, error) {
	if minSup < 1 {
		return nil, fmt.Errorf("genclose: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dc := d.Context()
	nTx := d.NumTransactions()
	fc := closedset.New()
	m := &miner{ctx: ctx, dc: dc, minSup: minSup, workers: workers, fc: fc,
		idx: map[uint64][]closureEntry{}}

	// The empty set is the level-0 generator: free by definition, its
	// closure is the bottom h(∅) whenever it is frequent.
	if nTx >= minSup {
		fc.AddGenerator(galois.Closure(dc, itemset.Empty()), nTx, itemset.Empty())
	}

	// Level 1: an item is free iff its support is strictly below
	// supp(∅) = |O|; items occurring in every transaction belong to the
	// bottom's closure instead.
	var level []node
	for it := 0; it < dc.NumItems; it++ {
		sup := dc.Cols[it].Count()
		if sup < minSup || sup == nTx {
			continue
		}
		level = append(level, node{items: itemset.Of(it), tids: dc.Cols[it], sup: sup})
	}
	if err := m.emitLevel(level); err != nil {
		return nil, err
	}

	for k := 2; len(level) >= 2; k++ {
		next, err := m.nextLevel(level, k)
		if err != nil {
			return nil, err
		}
		if err := m.emitLevel(next); err != nil {
			return nil, err
		}
		level = next
	}
	return fc, nil
}

// miner carries the per-run state of one traversal.
type miner struct {
	ctx     context.Context
	dc      *dataset.Context
	minSup  int
	workers int
	fc      *closedset.Set
	// idx is the closure index: tidset hash → discovered (tidset,
	// closure) pairs. Equal tidsets imply equal closures, so every
	// closed itemset pays for exactly one Intent computation no matter
	// how many generators reach it, across all levels.
	idx map[uint64][]closureEntry
}

type closureEntry struct {
	tids    bitset.Set
	closure itemset.Itemset
}

// lookup returns the cached closure of a tidset, if discovered.
func (m *miner) lookup(tids bitset.Set, h uint64) (itemset.Itemset, bool) {
	for _, e := range m.idx[h] {
		if e.tids.Equal(tids) {
			return e.closure, true
		}
	}
	return nil, false
}

// nextLevel evaluates the level-k candidates: the apriori-gen join of
// the level-(k-1) free sets, pruned to candidates whose every
// immediate subset is itself free (subsets of free sets are free, so a
// missing subset disqualifies a minimal generator outright). Each
// surviving candidate is probed for support against the prefix
// parent's tidset and kept when frequent and free; only survivors
// materialize their tidset. Candidates land in index-addressed slots,
// evaluated by up to m.workers workers.
func (m *miner) nextLevel(level []node, k int) ([]node, error) {
	byKey := make(map[string]*node, len(level))
	items := make([]itemset.Itemset, len(level))
	for i := range level {
		byKey[level[i].items.Key()] = &level[i]
		items[i] = level[i].items
	}
	levelwise.SortLex(items)
	cands := levelwise.Join(items)
	cands = levelwise.PruneBySubsets(cands, levelwise.Keys(items))
	if len(cands) == 0 {
		return nil, nil
	}

	slots := make([]node, len(cands))
	err := registry.RunPool(len(cands), m.workers, func(i int) error {
		if err := m.ctx.Err(); err != nil {
			return err
		}
		cand := cands[i]
		prefix := byKey[cand[:k-1].Key()]
		sup := probe(prefix.tids, m.dc.Cols[cand[k-1]])
		if sup < m.minSup || !m.free(byKey, cand, sup) {
			return nil
		}
		slots[i] = node{
			items: cand,
			tids:  bitset.New(prefix.tids.Width()).AndInto(prefix.tids, m.dc.Cols[cand[k-1]]),
			sup:   sup,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	next := slots[:0]
	for i := range slots {
		if slots[i].items != nil {
			next = append(next, slots[i])
		}
	}
	return next, nil
}

// free reports whether a candidate with the given support is a free
// set: strictly smaller support than every immediate subset. All
// subsets are present in prev (PruneBySubsets guarantees it).
func (m *miner) free(prev map[string]*node, cand itemset.Itemset, sup int) bool {
	sub := make(itemset.Itemset, 0, len(cand)-1)
	for drop := 0; drop < len(cand); drop++ {
		sub = sub[:0]
		sub = append(sub, cand[:drop]...)
		sub = append(sub, cand[drop+1:]...)
		if prev[sub.Key()].sup == sup {
			return false
		}
	}
	return true
}

// emitLevel extends the closed nodes reached by one level of
// generators: every distinct new tidset gets its closure computed
// (in parallel — each h(·) is independent), then the generators are
// recorded in candidate order. This is the "simultaneous" half of
// GenClose: closures interleave with the traversal, once per closed
// itemset.
func (m *miner) emitLevel(level []node) error {
	if len(level) == 0 {
		return nil
	}
	type job struct {
		tids    bitset.Set
		h       uint64
		closure itemset.Itemset
	}
	hashes := make([]uint64, len(level))
	closures := make([]itemset.Itemset, len(level)) // nil → resolved by jobRef
	jobRef := make([]*job, len(level))
	var jobs []*job
	pending := map[uint64][]*job{}
	for i := range level {
		if err := m.ctx.Err(); err != nil {
			return err
		}
		h := level[i].tids.Hash()
		hashes[i] = h
		if cl, ok := m.lookup(level[i].tids, h); ok {
			closures[i] = cl
			continue
		}
		dup := false
		for _, j := range pending[h] {
			if j.tids.Equal(level[i].tids) {
				jobRef[i] = j
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		j := &job{tids: level[i].tids, h: h}
		jobs = append(jobs, j)
		pending[h] = append(pending[h], j)
		jobRef[i] = j
	}
	err := registry.RunPool(len(jobs), m.workers, func(i int) error {
		if err := m.ctx.Err(); err != nil {
			return err
		}
		jobs[i].closure = galois.Intent(m.dc, jobs[i].tids)
		return nil
	})
	if err != nil {
		return err
	}
	for _, j := range jobs {
		m.idx[j.h] = append(m.idx[j.h], closureEntry{tids: j.tids, closure: j.closure})
	}
	for i := range level {
		cl := closures[i]
		if cl == nil {
			cl = jobRef[i].closure
		}
		m.fc.AddGenerator(cl, level[i].sup, level[i].items)
	}
	return nil
}
