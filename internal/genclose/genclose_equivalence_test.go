package genclose_test

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"

	"closedrules/internal/aclose"
	"closedrules/internal/charm"
	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/genclose"
	"closedrules/internal/testgen"
)

// The property/equivalence harness that pins genclose to the existing
// miners: its closed sets and supports must be byte-identical to
// charm's (the independent closed-set oracle), its generator sets must
// be set-identical to a-close's (the generator-tracking oracle), and
// pgenclose must be byte-identical to genclose, on the paper's worked
// example plus randomized datasets across several thresholds.

func classicEq(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// render serializes a closed-set family in the library's stable text
// format — the byte-identity yardstick (canonical order, supports and
// generators included).
func render(t *testing.T, s *closedset.Set) string {
	t.Helper()
	var buf bytes.Buffer
	if err := closedset.Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// renderNoGens is render with the generator columns dropped, for
// comparisons against miners that do not track them.
func renderNoGens(t *testing.T, s *closedset.Set) string {
	t.Helper()
	bare := closedset.New()
	s.Each(func(c closedset.Closed) bool {
		bare.Add(c.Items, c.Support)
		return true
	})
	return render(t, bare)
}

// assertPinned checks one (dataset, minSup) cell against both oracles
// and the parallel variant.
func assertPinned(t *testing.T, d *dataset.Dataset, minSup int, workers int) {
	t.Helper()
	got, err := genclose.Mine(d, minSup)
	if err != nil {
		t.Fatal(err)
	}

	// Closed sets + supports: byte-identical to charm.
	oracle, err := charm.Mine(d, minSup)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := renderNoGens(t, got), renderNoGens(t, oracle); g != w {
		t.Fatalf("minSup %d: closed sets diverge from charm:\ngenclose:\n%scharm:\n%s", minSup, g, w)
	}

	// Generators: set-identical to a-close per closed itemset.
	ref, _, err := aclose.Mine(d, minSup)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ref.All() {
		gc, ok := got.Get(c.Items)
		if !ok {
			t.Fatalf("minSup %d: closed %v missing from genclose", minSup, c.Items)
		}
		if len(gc.Generators) != len(c.Generators) {
			t.Fatalf("minSup %d: %v has %d generators %v, a-close has %d %v",
				minSup, c.Items, len(gc.Generators), gc.Generators, len(c.Generators), c.Generators)
		}
		for _, g := range c.Generators {
			found := false
			for _, h := range gc.Generators {
				if h.Equal(g) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("minSup %d: %v: generator %v missing (got %v)", minSup, c.Items, g, gc.Generators)
			}
		}
	}

	// Parallel variant: byte-identical, generators included.
	par, err := genclose.MineParallel(d, minSup, workers)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := render(t, par), render(t, got); g != w {
		t.Fatalf("minSup %d (workers %d): pgenclose diverges:\nparallel:\n%ssequential:\n%s",
			minSup, workers, g, w)
	}
}

func TestEquivalenceClassic(t *testing.T) {
	d := classicEq(t)
	for _, minSup := range []int{1, 2, 3} {
		assertPinned(t, d, minSup, 4)
	}
}

// TestEquivalenceRandom sweeps 12 randomized datasets × 3 thresholds
// through the full oracle pin.
func TestEquivalenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	for iter := 0; iter < 12; iter++ {
		d := testgen.Random(r, 30, 12, 0.4)
		for _, minSup := range []int{1, 2, 4} {
			assertPinned(t, d, minSup, 1+r.Intn(6))
		}
	}
}

// TestEquivalenceCorrelated repeats the pin on correlated data, where
// equal-tidset merges (shared closures) actually occur.
func TestEquivalenceCorrelated(t *testing.T) {
	r := rand.New(rand.NewSource(223))
	for iter := 0; iter < 4; iter++ {
		d := testgen.Correlated(r, 80, 5, 3, 0.15)
		for _, minSup := range []int{2, 5, 9} {
			assertPinned(t, d, minSup, 4)
		}
	}
}

// countdownCtx cancels itself after a fixed number of Err probes — a
// deterministic way to hit the miner mid-run, deep inside a level,
// regardless of machine speed (the pcharm/pdeclat pattern).
type countdownCtx struct {
	context.Context
	mu sync.Mutex
	n  int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
	if c.n <= 0 {
		return context.Canceled
	}
	return nil
}

func TestCancelledMidMine(t *testing.T) {
	r := rand.New(rand.NewSource(229))
	d := testgen.Correlated(r, 200, 6, 3, 0.2)
	// A full run needs far more than 40 Err probes (one per candidate);
	// the countdown cancels mid-level.
	ctx := &countdownCtx{Context: context.Background(), n: 40}
	if _, err := genclose.MineContext(ctx, d, 2); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestParallelCancelledMidMine(t *testing.T) {
	r := rand.New(rand.NewSource(233))
	d := testgen.Correlated(r, 200, 6, 3, 0.2)
	ctx := &countdownCtx{Context: context.Background(), n: 40}
	if _, err := genclose.MineParallelContext(ctx, d, 2, 4); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
