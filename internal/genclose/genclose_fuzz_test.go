package genclose_test

import (
	"testing"

	"closedrules/internal/dataset"
	"closedrules/internal/galois"
	"closedrules/internal/genclose"
	"closedrules/internal/itemset"
)

// FuzzGenClose decodes arbitrary bytes into a small binary context
// (each byte is one transaction's bitmask over ≤ 8 items) and checks
// the mined family's structural invariants: no panics, every returned
// itemset closed, every generator's closure equal to its closed set,
// and every generator minimal (no proper subset with the same
// support). `go test` runs the seed corpus; `go test -fuzz=FuzzGenClose
// ./internal/genclose` explores further.
func FuzzGenClose(f *testing.F) {
	f.Add([]byte{0b1101, 0b10110, 0b10111, 0b10010, 0b10111}, 2)
	f.Add([]byte{1, 2, 4, 8}, 1)
	f.Add([]byte{0xff, 0xff, 0xff}, 3)
	f.Add([]byte{0, 0}, 1)
	f.Add([]byte{}, 1)
	f.Fuzz(func(t *testing.T, raw []byte, minSup int) {
		if len(raw) > 24 {
			raw = raw[:24]
		}
		tx := make([][]int, len(raw))
		for i, b := range raw {
			for it := 0; it < 8; it++ {
				if b&(1<<it) != 0 {
					tx[i] = append(tx[i], it)
				}
			}
		}
		d, err := dataset.FromTransactions(tx)
		if err != nil {
			t.Skip()
		}
		if minSup < 1 || minSup > len(raw) {
			minSup = 1
		}
		fc, err := genclose.Mine(d, minSup)
		if err != nil {
			t.Fatalf("Mine: %v", err)
		}
		dc := d.Context()
		for _, c := range fc.All() {
			if !galois.IsClosed(dc, c.Items) {
				t.Errorf("returned set %v is not closed", c.Items)
			}
			if got, ok := fc.ClosureOf(c.Items); !ok || !got.Items.Equal(c.Items) {
				t.Errorf("ClosureOf(%v) = %v,%v within the mined family", c.Items, got.Items, ok)
			}
			if sup := galois.Support(dc, c.Items); sup != c.Support {
				t.Errorf("supp(%v) = %d, recorded %d", c.Items, sup, c.Support)
			}
			if len(c.Generators) == 0 {
				t.Errorf("closed %v has no generators", c.Items)
			}
			for _, g := range c.Generators {
				if !galois.Closure(dc, g).Equal(c.Items) {
					t.Errorf("h(%v) = %v, attached to %v", g, galois.Closure(dc, g), c.Items)
				}
				// Minimality: dropping any one item must raise the support.
				for drop := 0; drop < len(g); drop++ {
					sub := make(itemset.Itemset, 0, len(g)-1)
					sub = append(sub, g[:drop]...)
					sub = append(sub, g[drop+1:]...)
					if galois.Support(dc, sub) == c.Support {
						t.Errorf("generator %v of %v not minimal: subset %v has equal support", g, c.Items, sub)
					}
				}
			}
		}
	})
}
