package genclose

import (
	"context"
	"testing"

	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
)

// classic is the paper's worked example: 5 objects over items
// 0..4 (A..E).
func classic(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestMineClassic pins the worked example of the paper at minsup 2/5:
// the six frequent closed itemsets with their supports, and the
// minimal generators the generic basis consumes.
func TestMineClassic(t *testing.T) {
	fc, err := Mine(classic(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		items itemset.Itemset
		sup   int
		gens  []itemset.Itemset
	}{
		{itemset.Empty(), 5, []itemset.Itemset{itemset.Empty()}},
		{itemset.Of(2), 4, []itemset.Itemset{itemset.Of(2)}},
		{itemset.Of(0, 2), 3, []itemset.Itemset{itemset.Of(0)}},
		{itemset.Of(1, 4), 4, []itemset.Itemset{itemset.Of(1), itemset.Of(4)}},
		{itemset.Of(1, 2, 4), 3, []itemset.Itemset{itemset.Of(1, 2), itemset.Of(2, 4)}},
		{itemset.Of(0, 1, 2, 4), 2, []itemset.Itemset{itemset.Of(0, 1), itemset.Of(0, 4)}},
		{itemset.Of(0, 2, 3), 1, nil}, // infrequent at 2: must be absent
	}
	if fc.Len() != 6 {
		t.Fatalf("|FC| = %d, want 6", fc.Len())
	}
	for _, w := range want[:6] {
		c, ok := fc.Get(w.items)
		if !ok {
			t.Fatalf("closed %v missing", w.items)
		}
		if c.Support != w.sup {
			t.Errorf("supp(%v) = %d, want %d", w.items, c.Support, w.sup)
		}
		if len(c.Generators) != len(w.gens) {
			t.Fatalf("%v has %d generators %v, want %v", w.items, len(c.Generators), c.Generators, w.gens)
		}
		for _, g := range w.gens {
			found := false
			for _, got := range c.Generators {
				if got.Equal(g) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%v: generator %v missing (got %v)", w.items, g, c.Generators)
			}
		}
	}
	if fc.Contains(want[6].items) {
		t.Errorf("infrequent %v present", want[6].items)
	}
}

func TestMineValidation(t *testing.T) {
	if _, err := Mine(classic(t), 0); err == nil {
		t.Error("minSup 0 accepted")
	}
	if _, err := MineParallel(classic(t), 0, 2); err == nil {
		t.Error("parallel minSup 0 accepted")
	}
}

func TestMineThresholdAboveData(t *testing.T) {
	fc, err := Mine(classic(t), 6)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Len() != 0 {
		t.Fatalf("|FC| = %d at minSup 6 over 5 transactions, want 0", fc.Len())
	}
}

func TestMineCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineContext(ctx, classic(t), 2); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := MineParallelContext(ctx, classic(t), 2, 2); err != context.Canceled {
		t.Fatalf("parallel err = %v, want context.Canceled", err)
	}
}
