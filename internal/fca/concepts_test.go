package fca

import (
	"math/rand"
	"testing"

	"closedrules/internal/galois"
	"closedrules/internal/testgen"
)

func TestConceptsClassic(t *testing.T) {
	c := classic(t)
	concepts, err := Concepts(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(concepts) != 8 {
		t.Fatalf("%d concepts, want 8", len(concepts))
	}
	for _, con := range concepts {
		// Duality: intent of the extent is the intent; extent of the
		// intent is the extent — maximal rectangles.
		if !galois.Intent(c, con.Extent).Equal(con.Intent) {
			t.Errorf("concept %v: f(extent) ≠ intent", con.Intent)
		}
		if !galois.Extent(c, con.Intent).Equal(con.Extent) {
			t.Errorf("concept %v: g(intent) ≠ extent", con.Intent)
		}
	}
}

// TestConceptsAntiIsomorphism: larger intents have smaller extents —
// the order anti-isomorphism between the two sides of the connection.
func TestConceptsAntiIsomorphism(t *testing.T) {
	r := rand.New(rand.NewSource(827))
	for iter := 0; iter < 40; iter++ {
		d := testgen.Random(r, 15, 8, 0.45)
		c := d.Context()
		concepts, err := Concepts(c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range concepts {
			for j := range concepts {
				if i == j {
					continue
				}
				if concepts[j].Intent.ContainsAll(concepts[i].Intent) &&
					!concepts[i].Intent.Equal(concepts[j].Intent) {
					if !concepts[j].Extent.IsSubset(concepts[i].Extent) {
						t.Fatalf("iter %d: intent %v ⊂ %v but extents not reversed",
							iter, concepts[i].Intent, concepts[j].Intent)
					}
				}
			}
		}
	}
}

// TestConceptCountEqualsDistinctExtents: concepts biject with the
// distinct extents of the context.
func TestConceptCountEqualsDistinctExtents(t *testing.T) {
	r := rand.New(rand.NewSource(829))
	for iter := 0; iter < 30; iter++ {
		d := testgen.Random(r, 12, 7, 0.5)
		c := d.Context()
		concepts, err := Concepts(c)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, con := range concepts {
			key := con.Extent.String()
			if seen[key] {
				t.Fatalf("iter %d: duplicate extent %s", iter, key)
			}
			seen[key] = true
		}
	}
}
