package fca

import (
	"math/rand"
	"testing"

	"closedrules/internal/core"
	"closedrules/internal/dataset"
	"closedrules/internal/galois"
	"closedrules/internal/itemset"
	"closedrules/internal/naive"
	"closedrules/internal/rules"
	"closedrules/internal/testgen"
)

func classic(t *testing.T) *dataset.Context {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d.Context()
}

// fullPseudoIntents enumerates the pseudo-intents of a context by the
// definition, over all 2^n subsets — the oracle for StemBase.
func fullPseudoIntents(c *dataset.Context) []itemset.Itemset {
	n := c.NumItems
	var all []itemset.Itemset
	for mask := 0; mask < 1<<uint(n); mask++ {
		var s itemset.Itemset
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s = append(s, i)
			}
		}
		all = append(all, s)
	}
	// size-ascending order
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].Compare(all[i]) < 0 {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	var pseudo []itemset.Itemset
	var closures []itemset.Itemset
	for _, s := range all {
		h := galois.Closure(c, s)
		if h.Equal(s) {
			continue
		}
		ok := true
		for qi, q := range pseudo {
			if s.ContainsAll(q) && !s.Equal(q) && !s.ContainsAll(closures[qi]) {
				ok = false
				break
			}
		}
		if ok {
			pseudo = append(pseudo, s)
			closures = append(closures, h)
		}
	}
	return pseudo
}

func TestIntentsClassic(t *testing.T) {
	c := classic(t)
	intents, err := Intents(c)
	if err != nil {
		t.Fatal(err)
	}
	// FC at minsup 1 is {∅, C, AC, BE, ACD, BCE, ABCE} = 7; plus the
	// top intent ABCDE (empty extent) = 8.
	if len(intents) != 8 {
		t.Fatalf("|intents| = %d, want 8: %v", len(intents), intents)
	}
	want := naive.ClosedItemsets(c, 1)
	found := 0
	for _, in := range intents {
		if want.Contains(in) {
			found++
		}
	}
	if found != want.Len() {
		t.Errorf("intents cover %d/%d frequent closed sets", found, want.Len())
	}
	// The extra one is the full item set.
	full := itemset.Of(0, 1, 2, 3, 4)
	hasFull := false
	for _, in := range intents {
		if in.Equal(full) {
			hasFull = true
		}
	}
	if !hasFull {
		t.Error("top intent missing")
	}
}

func TestIntentsLecticOrderAndUnique(t *testing.T) {
	r := rand.New(rand.NewSource(501))
	for iter := 0; iter < 60; iter++ {
		d := testgen.Random(r, 15, 8, 0.45)
		c := d.Context()
		intents, err := Intents(c)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for i, in := range intents {
			if seen[in.Key()] {
				t.Fatalf("iter %d: duplicate intent %v", iter, in)
			}
			seen[in.Key()] = true
			if !galois.IsClosed(c, in) {
				t.Fatalf("iter %d: %v is not closed", iter, in)
			}
			if i > 0 && lecticLess(intents[i], intents[i-1]) {
				t.Fatalf("iter %d: lectic order violated at %d", iter, i)
			}
		}
		// Completeness vs brute force: frequent closed ∪ {top}.
		want := naive.ClosedItemsets(c, 1)
		extra := 0
		full := itemset.Itemset(nil)
		for i := 0; i < c.NumItems; i++ {
			full = append(full, i)
		}
		for _, in := range intents {
			if !want.Contains(in) {
				extra++
				if !in.Equal(full) {
					t.Fatalf("iter %d: unexpected non-frequent intent %v", iter, in)
				}
			}
		}
		if len(intents)-extra != want.Len() {
			t.Fatalf("iter %d: %d intents (-%d top), naive %d",
				iter, len(intents), extra, want.Len())
		}
	}
}

// lecticLess reports a < b in the lectic order: the smallest
// differing element belongs to b.
func lecticLess(a, b itemset.Itemset) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			return false // a has the smaller differing element
		default:
			return true
		}
	}
	return i == len(a) && j < len(b)
}

func TestNextClosedStopsAtTop(t *testing.T) {
	c := classic(t)
	full := itemset.Of(0, 1, 2, 3, 4)
	if _, ok := NextClosed(c.NumItems, ContextClosure(c), full); ok {
		t.Error("NextClosed after the top intent should stop")
	}
}

func TestAllClosedLimit(t *testing.T) {
	// A deliberately broken operator (not idempotent) to exercise the
	// guard: closure flips between two states.
	bad := func(x itemset.Itemset) itemset.Itemset { return x }
	// The identity operator is fine (every set closed): 2^6 sets.
	out, err := AllClosed(6, bad, 0)
	if err != nil || len(out) != 64 {
		t.Fatalf("identity operator: %d sets, err %v", len(out), err)
	}
	if _, err := AllClosed(6, bad, 10); err == nil {
		t.Error("limit not enforced")
	}
}

func TestStemBaseClassic(t *testing.T) {
	c := classic(t)
	sb, err := StemBase(c)
	if err != nil {
		t.Fatal(err)
	}
	oracle := fullPseudoIntents(c)
	if len(sb) != len(oracle) {
		t.Fatalf("|stem base| = %d, oracle %d\nsb: %v\noracle: %v",
			len(sb), len(oracle), sb, oracle)
	}
	wantKeys := map[string]bool{}
	for _, p := range oracle {
		wantKeys[p.Key()] = true
	}
	for _, r := range sb {
		if !wantKeys[r.Antecedent.Key()] {
			t.Errorf("unexpected pseudo-intent %v", r.Antecedent)
		}
	}
}

func TestStemBaseMatchesOracleRandom(t *testing.T) {
	r := rand.New(rand.NewSource(503))
	for iter := 0; iter < 60; iter++ {
		d := testgen.Random(r, 12, 7, 0.45)
		c := d.Context()
		sb, err := StemBase(c)
		if err != nil {
			t.Fatal(err)
		}
		oracle := fullPseudoIntents(c)
		if len(sb) != len(oracle) {
			t.Fatalf("iter %d: stem base %d, oracle %d", iter, len(sb), len(oracle))
		}
		keys := map[string]bool{}
		for _, p := range oracle {
			keys[p.Key()] = true
		}
		for _, rule := range sb {
			if !keys[rule.Antecedent.Key()] {
				t.Fatalf("iter %d: %v is not a pseudo-intent", iter, rule.Antecedent)
			}
		}
	}
}

// TestStemBaseDerivesAllExactRules: the full stem base must derive
// every exact rule between frequent itemsets (it is complete for all
// implications of the context, a superset of the frequent ones).
func TestStemBaseDerivesAllExactRules(t *testing.T) {
	r := rand.New(rand.NewSource(509))
	for iter := 0; iter < 30; iter++ {
		d := testgen.Random(r, 12, 7, 0.45)
		c := d.Context()
		sb, err := StemBase(c)
		if err != nil {
			t.Fatal(err)
		}
		imps := core.NewImplications(sb)
		fam := naive.FrequentItemsets(c, 1)
		all, err := rules.Generate(fam, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		exact, _ := rules.Split(all)
		for _, rule := range exact {
			if !imps.Derives(rule) {
				t.Fatalf("iter %d: stem base cannot derive %v", iter, rule)
			}
		}
	}
}

// TestStemBaseMinimality: no stem-base rule follows from the others.
func TestStemBaseMinimality(t *testing.T) {
	r := rand.New(rand.NewSource(521))
	for iter := 0; iter < 30; iter++ {
		d := testgen.Random(r, 12, 7, 0.45)
		sb, err := StemBase(d.Context())
		if err != nil {
			t.Fatal(err)
		}
		for drop := range sb {
			rest := make([]rules.Rule, 0, len(sb)-1)
			rest = append(rest, sb[:drop]...)
			rest = append(rest, sb[drop+1:]...)
			if core.NewImplications(rest).Derives(sb[drop]) {
				t.Fatalf("iter %d: stem base rule %v redundant", iter, sb[drop])
			}
		}
	}
}

// TestStemBaseClosureMatchesContext: LinClosure over the stem base is
// the context closure operator — for every subset, not just frequent
// ones (Ganter & Wille Thm. on the stem base).
func TestStemBaseClosureMatchesContext(t *testing.T) {
	r := rand.New(rand.NewSource(523))
	for iter := 0; iter < 20; iter++ {
		d := testgen.Random(r, 10, 6, 0.5)
		c := d.Context()
		sb, err := StemBase(c)
		if err != nil {
			t.Fatal(err)
		}
		imps := core.NewImplications(sb)
		n := c.NumItems
		for mask := 0; mask < 1<<uint(n); mask++ {
			var s itemset.Itemset
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					s = append(s, i)
				}
			}
			want := galois.Closure(c, s)
			if got := imps.Close(s); !got.Equal(want) {
				t.Fatalf("iter %d: Close(%v) = %v, want %v", iter, s, got, want)
			}
		}
	}
}
