package fca

import (
	"closedrules/internal/dataset"
	"closedrules/internal/galois"
)

// Concepts enumerates all formal concepts of the context — the
// (extent, intent) pairs of the Galois connection, with intents in
// lectic order. The concept lattice they form, restricted to frequent
// intents, is exactly the iceberg lattice the Luxenburger basis is
// defined on.
func Concepts(c *dataset.Context) ([]galois.Concept, error) {
	intents, err := Intents(c)
	if err != nil {
		return nil, err
	}
	out := make([]galois.Concept, len(intents))
	for i, in := range intents {
		out[i] = galois.Concept{Extent: galois.Extent(c, in), Intent: in}
	}
	return out, nil
}
