// Package fca implements the classical formal-concept-analysis
// algorithms the paper's framework descends from (Ganter & Wille,
// reference [1]): NextClosure enumeration of all closed sets in lectic
// order, and Ganter's computation of the (full, frequency-free)
// Duquenne–Guigues stem base. They serve as an independent
// cross-validation of the frequency-restricted machinery in
// internal/core and as the bridge to the FCA literature.
package fca

import (
	"fmt"

	"closedrules/internal/dataset"
	"closedrules/internal/galois"
	"closedrules/internal/itemset"
	"closedrules/internal/rules"
)

// Closure is an abstract closure operator over items 0..n-1. It must
// be extensive, monotone and idempotent.
type Closure func(itemset.Itemset) itemset.Itemset

// NextClosed returns the lectically smallest closed set strictly
// greater than a (Ganter's NextClosure step), or ok=false when a is
// the lectically largest closed set. n is the universe width.
//
// The lectic order on subsets of {0..n-1}: A < B iff the smallest
// element where they differ belongs to B.
func NextClosed(n int, close Closure, a itemset.Itemset) (itemset.Itemset, bool) {
	for i := n - 1; i >= 0; i-- {
		if a.Contains(i) {
			continue
		}
		// A ⊕ i = close((A ∩ {0..i-1}) ∪ {i})
		var prefix itemset.Itemset
		for _, x := range a {
			if x < i {
				prefix = append(prefix, x)
			}
		}
		b := close(prefix.With(i))
		// Accept if B agrees with A below i (B ∩ {0..i-1} ⊆ A).
		ok := true
		for _, x := range b {
			if x >= i {
				break
			}
			if !prefix.Contains(x) {
				ok = false
				break
			}
		}
		if ok {
			return b, true
		}
	}
	return nil, false
}

// AllClosed enumerates every closed set of the operator in lectic
// order, starting from close(∅). The operator must have finitely many
// closed sets over {0..n-1} (always true); limit guards against a
// broken operator (non-idempotent closures can loop) — 0 means no
// limit.
func AllClosed(n int, close Closure, limit int) ([]itemset.Itemset, error) {
	var out []itemset.Itemset
	a := close(itemset.Empty())
	for {
		out = append(out, a)
		if limit > 0 && len(out) > limit {
			return nil, fmt.Errorf("fca: more than %d closed sets (broken operator?)", limit)
		}
		next, ok := NextClosed(n, close, a)
		if !ok {
			return out, nil
		}
		a = next
	}
}

// ContextClosure returns the closure operator h = f∘g of a binary
// context.
func ContextClosure(c *dataset.Context) Closure {
	return func(x itemset.Itemset) itemset.Itemset {
		return galois.Closure(c, x)
	}
}

// Intents enumerates all intents (closed itemsets) of the context in
// lectic order — including the top intent I when no object contains
// every item.
func Intents(c *dataset.Context) ([]itemset.Itemset, error) {
	return AllClosed(c.NumItems, ContextClosure(c), 0)
}

// StemBase computes the full Duquenne–Guigues basis of the context —
// no frequency threshold — with Ganter's algorithm: enumerate, in
// lectic order, the sets closed under the implications found so far;
// each such set that is not an intent is a pseudo-intent and
// contributes the implication P → h(P)∖P.
//
// Rule supports are the true supports from the context (0 for
// pseudo-intents with empty extent).
func StemBase(c *dataset.Context) ([]rules.Rule, error) {
	h := ContextClosure(c)
	var basis []rules.Rule
	// imps is rebuilt lazily; LinClosure over the current basis.
	closeL := func(x itemset.Itemset) itemset.Itemset {
		// Fixpoint over current implications; premises/conclusions are
		// small, so the simple loop is fine here.
		cur := x.Clone()
		for changed := true; changed; {
			changed = false
			for _, im := range basis {
				if cur.ContainsAll(im.Antecedent) && !cur.ContainsAll(im.Consequent) {
					cur = cur.Union(im.Consequent)
					changed = true
				}
			}
		}
		return cur
	}

	a := closeL(itemset.Empty())
	for {
		ha := h(a)
		if !ha.Equal(a) {
			// a is a pseudo-intent.
			sup := galois.Support(c, a)
			basis = append(basis, rules.Rule{
				Antecedent:        a,
				Consequent:        ha.Diff(a),
				Support:           sup,
				AntecedentSupport: sup,
			})
		}
		next, ok := NextClosed(c.NumItems, closeL, a)
		if !ok {
			break
		}
		a = next
	}
	rules.Sort(basis)
	return basis, nil
}
