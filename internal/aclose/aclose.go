// Package aclose implements the A-Close algorithm of Pasquier,
// Bastide, Taouil & Lakhal ("Discovering frequent closed itemsets for
// association rules", ICDT 1999) — reference [5] of the ICDE'2000
// paper.
//
// Unlike Close, A-Close mines the generators level-wise using support
// counts alone (a candidate is pruned when its support equals the
// support of one of its subsets) and computes closures in a single
// extra pass at the end — and only for the generators at sizes ≥ l-1,
// where l is the first level at which a non-free candidate was pruned:
// below that size every generator is provably its own closure.
package aclose

import (
	"context"
	"fmt"

	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/galois"
	"closedrules/internal/itemset"
	"closedrules/internal/levelwise"
)

// Stats reports the level-wise work of a run.
type Stats struct {
	Passes             int
	CandidatesPerLevel []int
	GeneratorsPerLevel []int
	FirstPruneLevel    int // 0 if no non-free candidate was ever pruned
	ClosuresComputed   int // closures computed in the final pass
}

type generator struct {
	items   itemset.Itemset
	support int
}

// Mine returns the frequent closed itemsets (including the bottom
// h(∅) with generator ∅) at absolute support ≥ minSup.
func Mine(d *dataset.Dataset, minSup int) (*closedset.Set, Stats, error) {
	return MineContext(context.Background(), d, minSup)
}

// MineContext is Mine with cancellation: ctx is checked before every
// level-wise counting pass and before each level of the final closure
// pass, so a cancelled context aborts the run within one level.
func MineContext(ctx context.Context, d *dataset.Dataset, minSup int) (*closedset.Set, Stats, error) {
	var stats Stats
	if minSup < 1 {
		return nil, stats, fmt.Errorf("aclose: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	dc := d.Context()
	nTx := d.NumTransactions()

	// Level 1 pass: item supports. Items as frequent as ∅ are not free.
	sup := d.ItemSupports()
	stats.Passes = 1
	stats.CandidatesPerLevel = append(stats.CandidatesPerLevel, d.NumItems())
	var level []generator
	for it, s := range sup {
		if s < minSup {
			continue
		}
		if s == nTx {
			if stats.FirstPruneLevel == 0 {
				stats.FirstPruneLevel = 1
			}
			continue
		}
		level = append(level, generator{items: itemset.Of(it), support: s})
	}
	stats.GeneratorsPerLevel = append(stats.GeneratorsPerLevel, len(level))
	allGens := [][]generator{level}

	for k := 2; len(level) >= 2; k++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		supports := make(map[string]int, len(level))
		items := make([]itemset.Itemset, len(level))
		for i, g := range level {
			supports[g.items.Key()] = g.support
			items[i] = g.items
		}
		levelwise.SortLex(items)
		cands := levelwise.Join(items)
		cands = levelwise.PruneBySubsets(cands, levelwise.Keys(items))
		if len(cands) == 0 {
			break
		}
		stats.CandidatesPerLevel = append(stats.CandidatesPerLevel, len(cands))

		counts := make([]int, len(cands))
		trie := levelwise.NewTrie(k, cands)
		if err := trie.WalkPass(ctx, d.Transactions(), k, func(_, idx int) { counts[idx]++ }); err != nil {
			return nil, stats, err
		}
		stats.Passes++

		var next []generator
		for i, cand := range cands {
			if counts[i] < minSup {
				continue
			}
			free := true
			for drop := 0; drop < len(cand) && free; drop++ {
				sub := make(itemset.Itemset, 0, len(cand)-1)
				sub = append(sub, cand[:drop]...)
				sub = append(sub, cand[drop+1:]...)
				if s, ok := supports[sub.Key()]; ok && s == counts[i] {
					free = false
				}
			}
			if !free {
				if stats.FirstPruneLevel == 0 {
					stats.FirstPruneLevel = k
				}
				continue
			}
			next = append(next, generator{items: cand, support: counts[i]})
		}
		stats.GeneratorsPerLevel = append(stats.GeneratorsPerLevel, len(next))
		allGens = append(allGens, next)
		level = next
	}

	// Closure pass. Generators of size < l-1 are their own closures
	// when l is the first prune level (no equal-support superset can
	// exist below it); all others need an explicit h(·) computation.
	fc := closedset.New()
	if nTx >= minSup {
		bottom := galois.Closure(dc, itemset.Empty())
		fc.AddGenerator(bottom, nTx, itemset.Empty())
	}
	closureNeeded := func(size int) bool {
		if stats.FirstPruneLevel == 0 {
			return false
		}
		return size >= stats.FirstPruneLevel-1
	}
	ranClosurePass := false
	for _, lv := range allGens {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		for _, g := range lv {
			if closureNeeded(len(g.items)) {
				cl := galois.Closure(dc, g.items)
				fc.AddGenerator(cl, g.support, g.items)
				stats.ClosuresComputed++
				ranClosurePass = true
			} else {
				fc.AddGenerator(g.items.Clone(), g.support, g.items)
			}
		}
	}
	if ranClosurePass {
		stats.Passes++
	}
	return fc, stats, nil
}
