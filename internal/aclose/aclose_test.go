package aclose

import (
	"math/rand"
	"testing"

	"closedrules/internal/closealg"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/naive"
	"closedrules/internal/testgen"
)

func classic(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMineClassic(t *testing.T) {
	fc, stats, err := Mine(classic(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Len() != 6 {
		t.Fatalf("|FC| = %d, want 6: %v", fc.Len(), fc.All())
	}
	if s, ok := fc.Support(itemset.Of(1, 2, 4)); !ok || s != 3 {
		t.Errorf("supp(BCE) = %d,%v", s, ok)
	}
	// In the classic example AC is discovered at level 2 with
	// supp(AC)=supp(A), so the first prune is at level 2.
	if stats.FirstPruneLevel != 2 {
		t.Errorf("FirstPruneLevel = %d, want 2", stats.FirstPruneLevel)
	}
	if stats.ClosuresComputed == 0 {
		t.Error("expected a closure pass")
	}
}

func TestMineValidation(t *testing.T) {
	if _, _, err := Mine(classic(t), 0); err == nil {
		t.Error("minSup 0 accepted")
	}
}

func TestNoPruneMeansNoClosurePass(t *testing.T) {
	// A context where every frequent itemset is free: all closures are
	// trivial and A-Close must skip the closure pass entirely.
	// Pairwise-overlapping transactions with unique intersections work:
	// {0,1},{1,2},{2,0} — every 1-set has supp 2, every 2-set supp 1.
	d, _ := dataset.FromTransactions([][]int{{0, 1}, {1, 2}, {0, 2}})
	fc, stats, err := Mine(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FirstPruneLevel != 0 {
		t.Fatalf("FirstPruneLevel = %d, want 0", stats.FirstPruneLevel)
	}
	if stats.ClosuresComputed != 0 {
		t.Errorf("ClosuresComputed = %d, want 0", stats.ClosuresComputed)
	}
	want := naive.ClosedItemsets(d.Context(), 1)
	if !fc.Equal(want) {
		t.Fatalf("FC mismatch: got %v want %v", fc.All(), want.All())
	}
}

func TestMineUniversalItem(t *testing.T) {
	d, _ := dataset.FromTransactions([][]int{{0, 1}, {0, 2}, {0, 1, 2}})
	fc, stats, err := Mine(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FirstPruneLevel != 1 {
		t.Errorf("FirstPruneLevel = %d, want 1 (universal item)", stats.FirstPruneLevel)
	}
	want := naive.ClosedItemsets(d.Context(), 1)
	if !fc.Equal(want) {
		t.Fatalf("FC mismatch: got %v want %v", fc.All(), want.All())
	}
}

func TestMineAgainstNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for iter := 0; iter < 80; iter++ {
		d := testgen.Random(r, 25, 10, 0.4)
		minSup := 1 + r.Intn(4)
		fc, _, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.ClosedItemsets(d.Context(), minSup)
		if !fc.Equal(want) {
			t.Fatalf("iter %d (minSup %d): aclose %d closed, naive %d",
				iter, minSup, fc.Len(), want.Len())
		}
	}
}

func TestMineAgreesWithClose(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for iter := 0; iter < 40; iter++ {
		d := testgen.Correlated(r, 60, 5, 3, 0.2)
		minSup := 2 + r.Intn(6)
		a, _, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		c, _, err := closealg.Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(c) {
			t.Fatalf("iter %d: A-Close and Close disagree (%d vs %d)", iter, a.Len(), c.Len())
		}
	}
}

// TestGeneratorsAreFreeSets checks the A-Close invariant that every
// reported generator is a free set (no proper subset of equal support).
func TestGeneratorsAreFreeSets(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for iter := 0; iter < 30; iter++ {
		d := testgen.Random(r, 20, 8, 0.45)
		minSup := 1 + r.Intn(3)
		fc, _, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		ctx := d.Context()
		fam := naive.FrequentItemsets(ctx, 1)
		for _, g := range fc.AllGenerators() {
			if !naive.IsFree(ctx, fam, g.Generator, g.Support) {
				t.Fatalf("iter %d: generator %v (supp %d) is not free",
					iter, g.Generator, g.Support)
			}
		}
	}
}
