package fpgrowth

import (
	"math/rand"
	"testing"

	"closedrules/internal/apriori"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/naive"
	"closedrules/internal/testgen"
)

func classic(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMineClassic(t *testing.T) {
	fam, err := Mine(classic(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 15 {
		t.Fatalf("|FI| = %d, want 15: %v", fam.Len(), fam.All())
	}
	for _, chk := range []struct {
		items itemset.Itemset
		sup   int
	}{
		{itemset.Of(0), 3},
		{itemset.Of(1, 4), 4},
		{itemset.Of(0, 1, 2, 4), 2},
		{itemset.Of(1, 2, 4), 3},
	} {
		if s, ok := fam.Support(chk.items); !ok || s != chk.sup {
			t.Errorf("supp(%v) = %d,%v want %d", chk.items, s, ok, chk.sup)
		}
	}
}

func TestMineValidation(t *testing.T) {
	if _, err := Mine(classic(t), 0); err == nil {
		t.Error("minSup 0 accepted")
	}
}

func TestMineEmptyAndDegenerate(t *testing.T) {
	d, _ := dataset.FromTransactions(nil)
	fam, err := Mine(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 0 {
		t.Errorf("|FI| = %d on empty data", fam.Len())
	}
	d2, _ := dataset.FromTransactions([][]int{{}, {}, {0}})
	fam2, err := Mine(d2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fam2.Len() != 0 {
		t.Errorf("|FI| = %d, want 0", fam2.Len())
	}
}

func TestMineSingleLongTransaction(t *testing.T) {
	d, _ := dataset.FromTransactions([][]int{{0, 1, 2, 3}})
	fam, err := Mine(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 15 { // 2^4 - 1
		t.Errorf("|FI| = %d, want 15", fam.Len())
	}
}

func TestMineAgainstNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(311))
	for iter := 0; iter < 80; iter++ {
		d := testgen.Random(r, 25, 10, 0.4)
		minSup := 1 + r.Intn(4)
		fam, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.FrequentItemsets(d.Context(), minSup)
		if !fam.Equal(want) {
			t.Fatalf("iter %d (minSup %d): fpgrowth %d itemsets, naive %d",
				iter, minSup, fam.Len(), want.Len())
		}
	}
}

func TestMineAgainstAprioriCorrelated(t *testing.T) {
	r := rand.New(rand.NewSource(313))
	for iter := 0; iter < 15; iter++ {
		d := testgen.Correlated(r, 60, 5, 3, 0.2)
		minSup := 2 + r.Intn(6)
		fam, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := apriori.Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if !fam.Equal(want) {
			t.Fatalf("iter %d: fpgrowth %d, apriori %d", iter, fam.Len(), want.Len())
		}
	}
}

// TestTiedSupportsOrdering exercises the frequency-order tie-breaking:
// many items with identical supports must still mine correctly.
func TestTiedSupportsOrdering(t *testing.T) {
	d, _ := dataset.FromTransactions([][]int{
		{0, 1, 2, 3}, {0, 1, 2, 3}, {4, 5, 6, 7}, {4, 5, 6, 7},
	})
	fam, err := Mine(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := naive.FrequentItemsets(d.Context(), 2)
	if !fam.Equal(want) {
		t.Fatalf("fpgrowth %d, naive %d", fam.Len(), want.Len())
	}
}
