// Package fpgrowth implements the FP-Growth frequent-itemset miner
// (Han, Pei & Yin, SIGMOD 2000): transactions are compressed into a
// prefix tree (FP-tree) ordered by descending item frequency, and
// frequent itemsets are mined recursively from conditional trees,
// without candidate generation. It is the third independent frequent
// miner (after Apriori and Eclat) used to cross-check results and as a
// baseline in the benchmarks.
package fpgrowth

import (
	"context"
	"fmt"
	"sort"

	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
)

type fpNode struct {
	item     int // item id, -1 for the root
	count    int
	parent   *fpNode
	children map[int]*fpNode
	next     *fpNode // header-list chaining
}

type fpTree struct {
	root    *fpNode
	heads   map[int]*fpNode // item → first node in header list
	tails   map[int]*fpNode
	support map[int]int // item supports within this (conditional) tree
}

func newTree() *fpTree {
	return &fpTree{
		root:    &fpNode{item: -1, children: map[int]*fpNode{}},
		heads:   map[int]*fpNode{},
		tails:   map[int]*fpNode{},
		support: map[int]int{},
	}
}

// insert adds a (frequency-ordered) item path with the given count.
func (t *fpTree) insert(path []int, count int) {
	n := t.root
	for _, it := range path {
		child, ok := n.children[it]
		if !ok {
			child = &fpNode{item: it, parent: n, children: map[int]*fpNode{}}
			n.children[it] = child
			if t.heads[it] == nil {
				t.heads[it] = child
				t.tails[it] = child
			} else {
				t.tails[it].next = child
				t.tails[it] = child
			}
		}
		child.count += count
		t.support[it] += count
		n = child
	}
}

// Mine returns all non-empty frequent itemsets with absolute support ≥
// minSup.
func Mine(d *dataset.Dataset, minSup int) (*itemset.Family, error) {
	return MineContext(context.Background(), d, minSup)
}

// MineContext is Mine with cancellation: ctx is checked before every
// conditional-tree projection, so a cancelled context aborts the run
// within one extension step.
func MineContext(ctx context.Context, d *dataset.Dataset, minSup int) (*itemset.Family, error) {
	if minSup < 1 {
		return nil, fmt.Errorf("fpgrowth: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sup := d.ItemSupports()

	// Global frequency order: descending support, ascending id.
	order := make([]int, 0, d.NumItems())
	for it, s := range sup {
		if s >= minSup {
			order = append(order, it)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if sup[order[a]] != sup[order[b]] {
			return sup[order[a]] > sup[order[b]]
		}
		return order[a] < order[b]
	})
	rank := make(map[int]int, len(order))
	for i, it := range order {
		rank[it] = i
	}

	tree := newTree()
	path := make([]int, 0, 64)
	for _, tx := range d.Transactions() {
		path = path[:0]
		for _, it := range tx {
			if _, ok := rank[it]; ok {
				path = append(path, it)
			}
		}
		sort.Slice(path, func(a, b int) bool { return rank[path[a]] < rank[path[b]] })
		if len(path) > 0 {
			tree.insert(path, 1)
		}
	}

	fam := itemset.NewFamily()
	if err := mineTree(ctx, tree, minSup, itemset.Empty(), fam); err != nil {
		return nil, err
	}
	return fam, nil
}

// mineTree recursively mines one (conditional) FP-tree.
func mineTree(ctx context.Context, t *fpTree, minSup int, suffix itemset.Itemset, fam *itemset.Family) error {
	// Items processed in any order; each spawns a conditional tree.
	items := make([]int, 0, len(t.heads))
	for it := range t.heads {
		if t.support[it] >= minSup {
			items = append(items, it)
		}
	}
	sort.Ints(items)
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return err
		}
		withItem := suffix.With(it)
		fam.Add(withItem, t.support[it])

		// Conditional pattern base: prefix paths of every node of it.
		cond := newTree()
		for n := t.heads[it]; n != nil; n = n.next {
			var rev []int
			for p := n.parent; p != nil && p.item >= 0; p = p.parent {
				rev = append(rev, p.item)
			}
			if len(rev) == 0 {
				continue
			}
			// reverse to root→leaf order
			for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
				rev[l], rev[r] = rev[r], rev[l]
			}
			cond.insert(rev, n.count)
		}
		// Prune infrequent items from the conditional tree by support
		// filtering at the next level of recursion (mineTree checks).
		if len(cond.heads) > 0 {
			if err := mineTree(ctx, cond, minSup, withItem, fam); err != nil {
				return err
			}
		}
	}
	return nil
}
