package fpgrowth

import (
	"context"

	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/miner"
)

type registered struct{}

func (registered) MineFrequent(ctx context.Context, d *dataset.Dataset, minSup int) ([]itemset.Counted, error) {
	fam, err := MineContext(ctx, d, minSup)
	if err != nil {
		return nil, err
	}
	return fam.All(), nil
}

func init() { miner.RegisterFrequent("fpgrowth", registered{}) }
