package tenant

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"closedrules"
	"closedrules/refresh"
)

// classicTx is the paper's running example context.
var classicTx = [][]int{{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4}}

// countingSource wraps an inline dataset and counts Load calls — the
// probe for "an evicted tenant's first query re-mines exactly once".
type countingSource struct {
	d     *closedrules.Dataset
	loads atomic.Int64
	gate  chan struct{} // when non-nil, Load blocks until it closes
}

func newCountingSource(t *testing.T, tx [][]int) *countingSource {
	t.Helper()
	d, err := closedrules.NewDataset(tx)
	if err != nil {
		t.Fatal(err)
	}
	return &countingSource{d: d}
}

func (s *countingSource) Load(ctx context.Context) (*closedrules.Dataset, error) {
	s.loads.Add(1)
	if s.gate != nil {
		select {
		case <-s.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.d, nil
}

func newTestPool(t *testing.T, budget int64) *Pool {
	t.Helper()
	p, err := NewPool(Config{MaxTenants: 64, MemoryBudget: budget, MineWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func classicParams() Params {
	return Params{MinSupport: 0.4, MinConfidence: 0.5}
}

// supportOf queries one tenant and fails the test on any error.
func supportOf(t *testing.T, p *Pool, id string, items ...int) int {
	t.Helper()
	svc, err := p.Service(context.Background(), id)
	if err != nil {
		t.Fatalf("Service(%s): %v", id, err)
	}
	sup, _, err := svc.Support(context.Background(), closedrules.Items(items...))
	if err != nil {
		t.Fatalf("Support(%s): %v", id, err)
	}
	return sup
}

func TestNewPoolValidation(t *testing.T) {
	cases := []Config{
		{MaxTenants: 0, MemoryBudget: 1, MineWorkers: 1},
		{MaxTenants: 1, MemoryBudget: 0, MineWorkers: 1},
		{MaxTenants: 1, MemoryBudget: 1, MineWorkers: 0},
		{MaxTenants: 1, MemoryBudget: 1, MineWorkers: 1, MineTimeout: -time.Second},
		{MaxTenants: 1, MemoryBudget: 1, MineWorkers: 1, JobQueue: -1},
	}
	for i, cfg := range cases {
		if _, err := NewPool(cfg); err == nil {
			t.Errorf("case %d: NewPool(%+v) accepted an invalid config", i, cfg)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	p := newTestPool(t, 1<<30)
	src := newCountingSource(t, classicTx)
	if _, err := p.Register(Spec{ID: "bad id!", Source: src}); !errors.Is(err, ErrBadID) {
		t.Errorf("bad id: got %v, want ErrBadID", err)
	}
	if _, err := p.Register(Spec{ID: "a"}); err == nil {
		t.Error("Spec without Source or Service accepted")
	}
	if _, err := p.Register(Spec{ID: "a", Source: src, Params: Params{MinSupport: 2}}); err == nil {
		t.Error("out-of-range support accepted")
	}
	if _, err := p.Register(Spec{ID: "a", Source: src, Params: Params{Algorithm: "no-such"}}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := p.Register(Spec{ID: "a", Source: src, Refresh: -time.Second}); err == nil {
		t.Error("negative refresh accepted")
	}
	// Registry-resolved names are accepted as they register; the
	// generator-coupled miners included.
	for _, algo := range []string{"genclose", "pgenclose"} {
		params := classicParams()
		params.Algorithm = algo
		if _, err := p.Register(Spec{ID: "algo-" + algo, Source: newCountingSource(t, classicTx), Params: params}); err != nil {
			t.Errorf("algorithm %q rejected: %v", algo, err)
		}
	}
	if _, err := p.Register(Spec{ID: "a", Source: src, Params: classicParams()}); err != nil {
		t.Fatalf("valid registration rejected: %v", err)
	}
	if _, err := p.Register(Spec{ID: "a", Source: src, Params: classicParams()}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate id: got %v, want ErrExists", err)
	}
}

func TestSingleFlightMaterialization(t *testing.T) {
	p := newTestPool(t, 1<<30)
	src := newCountingSource(t, classicTx)
	if _, err := p.Register(Spec{ID: "a", Source: src, Params: classicParams()}); err != nil {
		t.Fatal(err)
	}
	const callers = 32
	var wg sync.WaitGroup
	svcs := make([]*closedrules.QueryService, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			svc, err := p.Service(context.Background(), "a")
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			svcs[i] = svc
		}(i)
	}
	wg.Wait()
	if got := src.loads.Load(); got != 1 {
		t.Errorf("loads = %d, want 1 (single flight)", got)
	}
	for i := 1; i < callers; i++ {
		if svcs[i] != svcs[0] {
			t.Fatalf("caller %d got a different service instance", i)
		}
	}
}

// TestEvictionRematerializes pins the acceptance criterion: under a
// budget too small for two tenants, querying them alternately evicts
// the colder one, and the evicted tenant's next query re-mines
// exactly once and answers correctly.
func TestEvictionRematerializes(t *testing.T) {
	p := newTestPool(t, 1) // any materialized tenant overflows the budget
	srcA := newCountingSource(t, classicTx)
	srcB := newCountingSource(t, [][]int{{0, 1}, {0, 1}, {2}})
	if _, err := p.Register(Spec{ID: "a", Source: srcA, Params: classicParams()}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(Spec{ID: "b", Source: srcB, Params: Params{MinSupport: 0.5, MinConfidence: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if got := supportOf(t, p, "a", 1, 4); got != 4 {
		t.Errorf("supp(BE) via a = %d, want 4", got)
	}
	// The just-touched tenant survives its own over-budget
	// materialization (nothing else to evict).
	if st := p.Stats(); st.Resident != 1 {
		t.Fatalf("resident = %d, want 1", st.Resident)
	}
	if got := supportOf(t, p, "b", 0, 1); got != 2 {
		t.Errorf("supp({0,1}) via b = %d, want 2", got)
	}
	st := p.Stats()
	if st.Resident != 1 {
		t.Fatalf("after querying b: resident = %d, want 1 (a evicted)", st.Resident)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// Re-query the evicted tenant: transparent, correct, one re-mine.
	if got := supportOf(t, p, "a", 1, 4); got != 4 {
		t.Errorf("supp(BE) after rematerialization = %d, want 4", got)
	}
	if got := srcA.loads.Load(); got != 2 {
		t.Errorf("srcA loads = %d, want 2 (initial + one re-mine)", got)
	}
}

func TestDeleteReleasesEverything(t *testing.T) {
	p := newTestPool(t, 1<<30)
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("t%d", i)
		if _, err := p.Register(Spec{ID: id, Source: newCountingSource(t, classicTx), Params: classicParams()}); err != nil {
			t.Fatal(err)
		}
		supportOf(t, p, id, 2)
	}
	if st := p.Stats(); st.Resident != 4 || st.Bytes == 0 {
		t.Fatalf("resident = %d bytes = %d, want 4 residents with bytes > 0", st.Resident, st.Bytes)
	}
	for i := 0; i < 4; i++ {
		if err := p.Delete(fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.Registered != 0 || st.Resident != 0 || st.Bytes != 0 {
		t.Errorf("after deletes: registered=%d resident=%d bytes=%d, want all zero", st.Registered, st.Resident, st.Bytes)
	}
	if _, err := p.Service(context.Background(), "t0"); !errors.Is(err, ErrNotFound) {
		t.Errorf("query after delete: got %v, want ErrNotFound", err)
	}
	if err := p.Delete("t0"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: got %v, want ErrNotFound", err)
	}
}

func TestPinnedTenant(t *testing.T) {
	p := newTestPool(t, 1)
	res, err := closedrules.MineContext(context.Background(), mustDataset(t, classicTx), closedrules.WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	qs, err := closedrules.NewQueryService(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(Spec{ID: "default", Pinned: true, Service: qs}); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete("default"); !errors.Is(err, ErrPinned) {
		t.Errorf("delete pinned: got %v, want ErrPinned", err)
	}
	// A pinned, pre-materialized tenant has no source to re-mine from.
	if _, err := p.Enqueue("default", Params{}); !errors.Is(err, ErrNoSource) {
		t.Errorf("mine pinned: got %v, want ErrNoSource", err)
	}
	// Materialize another tenant over the 1-byte budget: the pinned
	// tenant must never be the victim.
	if _, err := p.Register(Spec{ID: "b", Source: newCountingSource(t, classicTx), Params: classicParams()}); err != nil {
		t.Fatal(err)
	}
	supportOf(t, p, "b", 2)
	if svc, err := p.Service(context.Background(), "default"); err != nil || svc != qs {
		t.Errorf("pinned tenant displaced: svc=%p err=%v", svc, err)
	}
}

// TestNoRefresherStartAfterClose pins the shutdown race fix: a mine
// that lands after Close cancelled the pool context must not start a
// refresher — Close's stop sweep has already passed the entry, so the
// refresher would run forever with nothing left to Stop it.
func TestNoRefresherStartAfterClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.dat")
	if err := os.WriteFile(path, []byte("0 2 3\n1 2 4\n0 1 2 4\n1 4\n0 1 2 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p := newTestPool(t, 1<<30)
	if _, err := p.Register(Spec{ID: "r", Source: refresh.NewFileSource(path), Params: classicParams(), Refresh: time.Hour}); err != nil {
		t.Fatal(err)
	}
	svc, err := p.Service(context.Background(), "r")
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.get("r")
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	if e.refresher == nil {
		e.mu.Unlock()
		t.Fatal("materialization did not attach a refresher")
	}
	e.mu.Unlock()
	p.Close()
	// Replay the racing install: the mine finished before the cancel
	// but publishes after the sweep.
	e.mu.Lock()
	p.installLocked(e, svc, 1, e.params)
	started := e.refresher != nil
	e.mu.Unlock()
	if started {
		t.Error("installLocked started a refresher after Close")
	}
}

func mustDataset(t *testing.T, tx [][]int) *closedrules.Dataset {
	t.Helper()
	d, err := closedrules.NewDataset(tx)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMineJobLifecycle(t *testing.T) {
	p := newTestPool(t, 1<<30)
	src := newCountingSource(t, classicTx)
	if _, err := p.Register(Spec{ID: "a", Source: src, Params: classicParams()}); err != nil {
		t.Fatal(err)
	}
	job, err := p.Enqueue("a", Params{MinSupport: 0.2, MinConfidence: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobQueued || job.Tenant != "a" || job.ID == "" {
		t.Fatalf("enqueue returned %+v", job)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := p.Job(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == JobDone {
			if got.Error != "" || got.FinishedAt.IsZero() {
				t.Fatalf("done job: %+v", got)
			}
			break
		}
		if got.State == JobFailed {
			t.Fatalf("job failed: %s", got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The job's params became the tenant's served configuration.
	info, err := p.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Params.MinSupport != 0.2 || info.Params.MinConfidence != 0.3 {
		t.Errorf("params after job = %+v", info.Params)
	}
	svc, err := p.Service(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.MinConfidence(); got != 0.3 {
		t.Errorf("served minconf = %v, want 0.3", got)
	}
	if _, err := p.Job("j-nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown job: got %v, want ErrNotFound", err)
	}
}

// TestJobFairness holds the only worker busy with a gated mine and
// checks the same tenant cannot take a second slot while another
// tenant still can.
func TestJobFairness(t *testing.T) {
	p, err := NewPool(Config{MaxTenants: 8, MemoryBudget: 1 << 30, MineWorkers: 1, JobQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	gated := newCountingSource(t, classicTx)
	gated.gate = make(chan struct{})
	if _, err := p.Register(Spec{ID: "a", Source: gated, Params: classicParams()}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(Spec{ID: "b", Source: newCountingSource(t, classicTx), Params: classicParams()}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Enqueue("a", Params{}); err != nil {
		t.Fatal(err)
	}
	// fairCap = (1+1)/2 = 1: tenant a holds its slot until the gate
	// opens; a second job for a must bounce, one for b must not.
	if _, err := p.Enqueue("a", Params{}); !errors.Is(err, ErrTenantBusy) {
		t.Errorf("second job for a: got %v, want ErrTenantBusy", err)
	}
	jb, err := p.Enqueue("b", Params{})
	if err != nil {
		t.Fatalf("job for b: %v", err)
	}
	close(gated.gate)
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := p.Job(jb.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == JobDone {
			break
		}
		if got.State == JobFailed {
			t.Fatalf("b's job failed: %s", got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("b's job stuck in %s", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolHammer is the -race stress test: concurrent register, query,
// job, and delete traffic against a pool with a budget so tight every
// materialization evicts someone. No query may fail with anything but
// ErrNotFound (its tenant was concurrently deleted), and after the
// storm the gauges must return to exactly zero.
func TestPoolHammer(t *testing.T) {
	p, err := NewPool(Config{MaxTenants: 64, MemoryBudget: 1, MineWorkers: 2, MineTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	const tenants = 6
	ids := make([]string, tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("h%d", i)
		if _, err := p.Register(Spec{ID: ids[i], Source: newCountingSource(t, classicTx), Params: classicParams()}); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queries, notFound atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[rng.Intn(tenants)]
				switch rng.Intn(10) {
				case 0: // churn: delete and re-register
					if err := p.Delete(id); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("delete %s: %v", id, err)
						return
					}
					_, err := p.Register(Spec{ID: id, Source: newCountingSource(t, classicTx), Params: classicParams()})
					if err != nil && !errors.Is(err, ErrExists) && !errors.Is(err, ErrPoolFull) {
						t.Errorf("re-register %s: %v", id, err)
						return
					}
				case 1: // async re-mine
					_, err := p.Enqueue(id, Params{})
					if err != nil && !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrTenantBusy) && !errors.Is(err, ErrQueueFull) {
						t.Errorf("enqueue %s: %v", id, err)
						return
					}
				default: // query
					queries.Add(1)
					svc, err := p.Service(context.Background(), id)
					if errors.Is(err, ErrNotFound) {
						notFound.Add(1)
						continue
					}
					if err != nil {
						t.Errorf("service %s: %v", id, err)
						return
					}
					if _, _, err := svc.Support(context.Background(), closedrules.Items(2)); err != nil {
						t.Errorf("support %s: %v", id, err)
						return
					}
				}
			}
		}(w)
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if queries.Load() == 0 {
		t.Fatal("hammer made no queries")
	}
	t.Logf("hammer: %d queries (%d hit deleted tenants), %d evictions, %d mines",
		queries.Load(), notFound.Load(), p.Stats().Evictions, p.Stats().Mines)

	// Quiesce: delete everything and require the gauges at zero.
	for _, id := range ids {
		if err := p.Delete(id); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatalf("final delete %s: %v", id, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := p.Stats()
		if st.Registered == 0 && st.Resident == 0 && st.Bytes == 0 && st.Jobs.Running == 0 && st.Jobs.Queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges did not return to zero: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
