// Package tenant turns the single-dataset serving stack into a
// multi-tenant mining service: a registry of datasets, each owned by
// a tenant ID, in front of a sharded pool of per-tenant
// closedrules.QueryService instances with LRU eviction under a total
// memory budget, single-flight lazy (re)materialization, async mining
// jobs on a bounded worker pool, and optional per-tenant background
// refresh for file-backed datasets.
//
// The design leans on the paper's central observation: the condensed
// representation (frequent closed itemsets plus the Duquenne–Guigues
// and Luxenburger bases) is small relative to the data that produced
// it, so holding one *per tenant* in memory is feasible — and when it
// is not, a tenant's representation can be dropped and re-mined on
// demand. The pool makes that trade explicit: registration keeps only
// the tenant's source (inline transactions or a file path) and mining
// parameters; the mined QueryService is a cache entry. A query against
// an evicted tenant re-mines exactly once (concurrent queries share
// the flight) and every other caller waits on the same result.
//
// Concurrency: tenant lookup is sharded (16 ways) so the query hot
// path takes only a shard read-lock plus one entry mutex; mining never
// runs under any lock (the arvet atomicsnapshot invariant). Eviction
// uses an approximate LRU — a per-tenant atomic last-used timestamp
// scanned under a single eviction mutex — which is exact enough for
// pools of hundreds of tenants and keeps the touch on the query path
// to one atomic store.
package tenant

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"closedrules"
	"closedrules/refresh"
)

// Sentinel errors of the pool API. The serving layer maps them onto
// HTTP statuses (404, 409, 403, 429, ...).
var (
	// ErrNotFound: no tenant (or job) with that ID is registered.
	ErrNotFound = errors.New("tenant: not found")
	// ErrExists: Register was called with an ID already in use.
	ErrExists = errors.New("tenant: id already registered")
	// ErrPoolFull: the pool is at MaxTenants registered datasets.
	ErrPoolFull = errors.New("tenant: pool at max registered tenants")
	// ErrPinned: the operation (delete, evict) is not allowed on a
	// pinned tenant.
	ErrPinned = errors.New("tenant: tenant is pinned")
	// ErrNoSource: the tenant has no re-minable source (a pinned,
	// pre-materialized tenant), so mine jobs and rematerialization are
	// impossible.
	ErrNoSource = errors.New("tenant: no re-minable source")
	// ErrTenantBusy: the tenant already holds its fair share of mine
	// job slots; retry when a job finishes.
	ErrTenantBusy = errors.New("tenant: mine job limit for this tenant reached")
	// ErrQueueFull: the global mine job queue is full.
	ErrQueueFull = errors.New("tenant: mine job queue full")
	// ErrClosed: the pool has been closed.
	ErrClosed = errors.New("tenant: pool closed")
	// ErrBadID: the ID does not match idPattern.
	ErrBadID = errors.New("tenant: id must match [a-zA-Z0-9][a-zA-Z0-9._-]{0,63}")
)

// idPattern constrains client-chosen tenant IDs: URL-safe, bounded,
// no leading punctuation.
var idPattern = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// Defaults applied by NewPool (for zero Config fields the serving
// layer passes through) and by Params.withDefaults.
const (
	// DefaultMinSupport is the relative support used when a tenant
	// registers without a threshold.
	DefaultMinSupport = 0.1
	// DefaultMinConfidence filters the approximate basis when a tenant
	// registers without a confidence threshold.
	DefaultMinConfidence = 0.5
)

// Params are one tenant's mining parameters: what to mine with and
// which bases to serve. The zero value is usable — withDefaults fills
// the support and confidence thresholds — and every field is
// overridable per mine job.
type Params struct {
	// MinSupport is the relative minimum support in (0,1]; ignored
	// when AbsSupport ≥ 1. 0 means DefaultMinSupport.
	MinSupport float64
	// AbsSupport is the absolute minimum support; ≥1 overrides
	// MinSupport.
	AbsSupport int
	// MinConfidence in [0,1] filters the served approximate basis.
	MinConfidence float64
	// Algorithm is a closed-miner registry name ("" = registry
	// default).
	Algorithm string
	// ExactBasis and ApproxBasis are basis registry names ("" = the
	// paper's pair).
	ExactBasis  string
	ApproxBasis string
}

// withDefaults fills the thresholds a zero Params leaves open.
func (p Params) withDefaults() Params {
	if p.MinSupport == 0 && p.AbsSupport < 1 {
		p.MinSupport = DefaultMinSupport
	}
	return p
}

// Validate rejects parameters no mine could accept: thresholds out of
// range or registry names that do not resolve. Registry checks happen
// here so a bad registration fails at POST /datasets time with a 4xx,
// not inside a mine job.
func (p Params) Validate() error {
	if p.AbsSupport < 0 {
		return fmt.Errorf("tenant: negative absolute support %d", p.AbsSupport)
	}
	if p.AbsSupport == 0 && !(p.MinSupport > 0 && p.MinSupport <= 1) {
		return fmt.Errorf("tenant: relative support %v outside (0,1]", p.MinSupport)
	}
	if !(p.MinConfidence >= 0 && p.MinConfidence <= 1) { // negated AND also rejects NaN
		return fmt.Errorf("tenant: confidence %v outside [0,1]", p.MinConfidence)
	}
	if p.Algorithm != "" {
		found := false
		for _, name := range closedrules.ClosedMiners() {
			if name == p.Algorithm {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("tenant: unknown algorithm %q (registered: %v)", p.Algorithm, closedrules.ClosedMiners())
		}
	}
	for _, name := range []string{p.ExactBasis, p.ApproxBasis} {
		if name == "" {
			continue
		}
		if _, err := closedrules.LookupBasis(name); err != nil {
			return fmt.Errorf("tenant: %w", err)
		}
	}
	return nil
}

// mineOptions renders the params as registry mining options.
func (p Params) mineOptions() []closedrules.MineOption {
	opts := []closedrules.MineOption{closedrules.WithMinSupport(p.MinSupport)}
	if p.AbsSupport >= 1 {
		opts = []closedrules.MineOption{closedrules.WithAbsoluteMinSupport(p.AbsSupport)}
	}
	if p.Algorithm != "" {
		opts = append(opts, closedrules.WithAlgorithm(p.Algorithm))
	}
	return opts
}

// Source produces the transactions a tenant's snapshots are mined
// from; the registry keeps the Source, the pool caches what mining it
// yields. refresh.FileSource satisfies it for file-backed tenants
// (bringing change detection and the incremental append path along);
// InlineSource holds uploaded transactions in memory.
type Source interface {
	Load(ctx context.Context) (*closedrules.Dataset, error)
}

// InlineSource serves a dataset uploaded inline with the registration
// request. The raw transactions stay resident for the tenant's whole
// lifetime — they ARE the registry copy — while the mined
// representation built from them comes and goes with the pool budget.
type InlineSource struct{ d *closedrules.Dataset }

// NewInlineSource wraps an uploaded dataset.
func NewInlineSource(d *closedrules.Dataset) *InlineSource { return &InlineSource{d: d} }

// Load returns the uploaded dataset.
func (s *InlineSource) Load(ctx context.Context) (*closedrules.Dataset, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.d, nil
}

// Config tunes a Pool. NewPool validates rather than defaults: the
// serving layer owns zero-means-default translation (see
// server.Config), so a zero worker count or budget reaching NewPool
// is an explicit error, not a silent minimum.
type Config struct {
	// MaxTenants caps registered datasets (must be ≥ 1).
	MaxTenants int
	// MemoryBudget bounds the summed MemoryEstimate of resident
	// tenants, in bytes (must be ≥ 1). The budget is enforced by
	// eviction after materialization, so a single tenant larger than
	// the whole budget still serves — alone.
	MemoryBudget int64
	// MineWorkers is the async mine job worker count (must be ≥ 1).
	MineWorkers int
	// MineTimeout bounds one materialization or mine job (0 = none).
	MineTimeout time.Duration
	// JobQueue bounds queued mine jobs (0 = 8× MineWorkers).
	JobQueue int
}

// Pool is the tenant registry and resident-service cache. Create one
// with NewPool; all methods are safe for concurrent use. Close
// releases the job workers and per-tenant refreshers.
type Pool struct {
	cfg    Config
	shards [numShards]shard

	ctx    context.Context
	cancel context.CancelFunc

	registered atomic.Int64
	resident   atomic.Int64
	bytes      atomic.Int64
	evictions  atomic.Uint64
	mines      atomic.Uint64 // materializations + completed mine jobs

	// evictMu serializes budget-enforcement scans so concurrent
	// materializations cannot double-evict.
	evictMu sync.Mutex

	jobs jobManager

	closeOnce sync.Once
}

const numShards = 16

type shard struct {
	mu      sync.RWMutex
	tenants map[string]*entry
}

// entry is one registered tenant. The immutable identity fields are
// set at Register; everything below mu is the resident state.
type entry struct {
	id        string
	name      string
	createdAt time.Time
	pinned    bool
	src       Source
	refresh   time.Duration

	lastUsed atomic.Int64 // unix nanos of the last query (approximate LRU)

	mu        sync.Mutex
	params    Params
	svc       *closedrules.QueryService
	bytes     int64
	mines     uint64
	mat       *flight // in-flight materialization, nil otherwise
	refresher *refresh.Refresher
	deleted   bool
}

// flight is one single-flight materialization: waiters block on done
// and read svc/err after it closes.
type flight struct {
	done chan struct{}
	svc  *closedrules.QueryService
	err  error
}

// Spec describes one registration. Exactly one of Source or Service
// must be set: Source registers a lazily mined tenant; Service
// registers a pre-materialized one (the serving layer's pinned
// default tenant).
type Spec struct {
	// ID is the client-chosen tenant ID; "" generates one ("t-" + 8
	// hex bytes).
	ID string
	// Name is a display name ("" = the ID).
	Name string
	// Source supplies the transactions each (re)mine loads.
	Source Source
	// Params are the tenant's mining parameters (zero fields get
	// defaults).
	Params Params
	// Refresh attaches a background refresher at this poll interval to
	// each materialized service (file-backed sources only; the
	// incremental append path applies when Source implements
	// refresh.DeltaSource).
	Refresh time.Duration
	// Pinned exempts the tenant from eviction and deletion.
	Pinned bool
	// Service registers an already mined service (Source may be nil;
	// the tenant then cannot be re-mined).
	Service *closedrules.QueryService
}

// Info is the externally visible state of one tenant.
type Info struct {
	ID        string
	Name      string
	CreatedAt time.Time
	Pinned    bool
	Resident  bool
	Bytes     int64
	Mines     uint64
	Params    Params
	Refresh   time.Duration
	LastUsed  time.Time
	// RefreshStats is the attached refresher's cycle counters, nil
	// when the tenant is not resident or has no refresher.
	RefreshStats *refresh.Stats
}

// Stats is a point-in-time snapshot of the pool gauges the serving
// layer exposes on /healthz and /metrics.
type Stats struct {
	Registered  int
	Resident    int
	Bytes       int64
	BudgetBytes int64
	MaxTenants  int
	Evictions   uint64
	Mines       uint64
	Jobs        JobStats
}

// NewPool builds a pool. Zero or negative MaxTenants, MemoryBudget or
// MineWorkers are explicit errors — the caller translates its own
// zero-means-default conventions before construction.
func NewPool(cfg Config) (*Pool, error) {
	if cfg.MaxTenants < 1 {
		return nil, fmt.Errorf("tenant: MaxTenants %d, want ≥ 1", cfg.MaxTenants)
	}
	if cfg.MemoryBudget < 1 {
		return nil, fmt.Errorf("tenant: MemoryBudget %d bytes, want ≥ 1", cfg.MemoryBudget)
	}
	if cfg.MineWorkers < 1 {
		return nil, fmt.Errorf("tenant: MineWorkers %d, want ≥ 1", cfg.MineWorkers)
	}
	if cfg.MineTimeout < 0 {
		return nil, fmt.Errorf("tenant: negative MineTimeout %v", cfg.MineTimeout)
	}
	if cfg.JobQueue < 0 {
		return nil, fmt.Errorf("tenant: negative JobQueue %d", cfg.JobQueue)
	}
	if cfg.JobQueue == 0 {
		cfg.JobQueue = 8 * cfg.MineWorkers
	}
	p := &Pool{cfg: cfg}
	for i := range p.shards {
		p.shards[i].tenants = make(map[string]*entry)
	}
	p.ctx, p.cancel = context.WithCancel(context.Background())
	p.jobs.init(p, cfg.MineWorkers, cfg.JobQueue)
	return p, nil
}

// Close stops the job workers (queued jobs fail with ErrClosed),
// cancels in-flight mines, and stops every per-tenant refresher. Safe
// to call more than once.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.cancel()
		p.jobs.close()
		for i := range p.shards {
			sh := &p.shards[i]
			sh.mu.RLock()
			entries := make([]*entry, 0, len(sh.tenants))
			for _, t := range sh.tenants {
				entries = append(entries, t)
			}
			sh.mu.RUnlock()
			for _, t := range entries {
				t.mu.Lock()
				ref := t.refresher
				t.refresher = nil
				t.mu.Unlock()
				if ref != nil {
					ref.Stop()
				}
			}
		}
	})
}

func (p *Pool) shardOf(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &p.shards[h.Sum32()%numShards]
}

// newID generates "t-" plus 8 random hex bytes.
func newID(prefix string) string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("tenant: crypto/rand unavailable: " + err.Error())
	}
	return prefix + hex.EncodeToString(b[:])
}

// Register adds a tenant. The Spec's Params are validated eagerly so
// a registration no mine could ever satisfy fails now, not on first
// query.
func (p *Pool) Register(spec Spec) (Info, error) {
	if err := p.ctx.Err(); err != nil {
		return Info{}, ErrClosed
	}
	id := spec.ID
	if id == "" {
		id = newID("t-")
	} else if !idPattern.MatchString(id) {
		return Info{}, ErrBadID
	}
	if spec.Source == nil && spec.Service == nil {
		return Info{}, fmt.Errorf("tenant: Spec needs a Source or a Service")
	}
	if spec.Refresh < 0 {
		return Info{}, fmt.Errorf("tenant: negative Refresh interval %v", spec.Refresh)
	}
	if spec.Refresh > 0 && spec.Source == nil {
		return Info{}, fmt.Errorf("tenant: Refresh needs a Source")
	}
	params := spec.Params.withDefaults()
	if err := params.Validate(); err != nil {
		return Info{}, err
	}
	name := spec.Name
	if name == "" {
		name = id
	}
	t := &entry{
		id:        id,
		name:      name,
		createdAt: time.Now(),
		pinned:    spec.Pinned,
		src:       spec.Source,
		refresh:   spec.Refresh,
		params:    params,
	}
	t.lastUsed.Store(time.Now().UnixNano())
	if spec.Service != nil {
		t.svc = spec.Service
		t.bytes = spec.Service.MemoryEstimate()
	}

	sh := p.shardOf(id)
	sh.mu.Lock()
	if _, dup := sh.tenants[id]; dup {
		sh.mu.Unlock()
		return Info{}, ErrExists
	}
	// The registered count is checked under this shard's lock; two
	// concurrent registrations through different shards can overshoot
	// MaxTenants by at most numShards-1, which is an acceptable bound
	// for an admission knob (the alternative is a global lock on every
	// registration).
	if int(p.registered.Load()) >= p.cfg.MaxTenants {
		sh.mu.Unlock()
		return Info{}, ErrPoolFull
	}
	sh.tenants[id] = t
	p.registered.Add(1)
	sh.mu.Unlock()
	if t.svc != nil {
		p.resident.Add(1)
		p.bytes.Add(t.bytes)
		p.enforceBudget(t)
	}
	return p.infoOf(t), nil
}

// get resolves a tenant by ID.
func (p *Pool) get(id string) (*entry, error) {
	sh := p.shardOf(id)
	sh.mu.RLock()
	t, ok := sh.tenants[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return t, nil
}

// Has reports whether a tenant with this ID is registered. One shard
// read-lock — cheap enough for per-request metric-label decisions.
func (p *Pool) Has(id string) bool {
	_, err := p.get(id)
	return err == nil
}

// Get returns one tenant's Info.
func (p *Pool) Get(id string) (Info, error) {
	t, err := p.get(id)
	if err != nil {
		return Info{}, err
	}
	return p.infoOf(t), nil
}

// List returns every registered tenant, sorted by ID.
func (p *Pool) List() []Info {
	var out []Info
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.RLock()
		for _, t := range sh.tenants {
			out = append(out, p.infoOf(t))
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (p *Pool) infoOf(t *entry) Info {
	t.mu.Lock()
	defer t.mu.Unlock()
	info := Info{
		ID:        t.id,
		Name:      t.name,
		CreatedAt: t.createdAt,
		Pinned:    t.pinned,
		Resident:  t.svc != nil,
		Bytes:     t.bytes,
		Mines:     t.mines,
		Params:    t.params,
		Refresh:   t.refresh,
		LastUsed:  time.Unix(0, t.lastUsed.Load()),
	}
	if t.refresher != nil {
		st := t.refresher.Stats()
		info.RefreshStats = &st
	}
	return info
}

// Delete unregisters a tenant: its resident service (if any) is
// released, its refresher stopped, and subsequent lookups return
// ErrNotFound. Queries already holding the service finish against it.
// Pinned tenants cannot be deleted.
func (p *Pool) Delete(id string) error {
	sh := p.shardOf(id)
	sh.mu.Lock()
	t, ok := sh.tenants[id]
	if !ok {
		sh.mu.Unlock()
		return ErrNotFound
	}
	if t.pinned {
		sh.mu.Unlock()
		return ErrPinned
	}
	delete(sh.tenants, id)
	p.registered.Add(-1)
	sh.mu.Unlock()

	t.mu.Lock()
	t.deleted = true
	ref := t.refresher
	t.refresher = nil
	wasResident := t.svc != nil
	freed := t.bytes
	t.svc = nil
	t.bytes = 0
	t.mu.Unlock()
	if wasResident {
		p.resident.Add(-1)
		p.bytes.Add(-freed)
	}
	if ref != nil {
		ref.Stop()
	}
	return nil
}

// Service returns the tenant's QueryService, materializing it first
// when it is not resident (evicted, or never yet queried). Concurrent
// callers against a non-resident tenant share one mine — single
// flight — and a caller whose ctx expires while the shared mine runs
// gets its ctx error while the mine completes for the others.
func (p *Pool) Service(ctx context.Context, id string) (*closedrules.QueryService, error) {
	t, err := p.get(id)
	if err != nil {
		return nil, err
	}
	return p.materialize(ctx, t)
}

// materialize returns the resident service or mines one, single
// flight. The mine itself runs under the pool's lifecycle context and
// MineTimeout — not the caller's ctx — so one impatient caller cannot
// poison the flight every waiter shares.
func (p *Pool) materialize(ctx context.Context, t *entry) (*closedrules.QueryService, error) {
	t.lastUsed.Store(time.Now().UnixNano())
	t.mu.Lock()
	if t.deleted {
		t.mu.Unlock()
		return nil, ErrNotFound
	}
	if t.svc != nil {
		svc := t.svc
		t.mu.Unlock()
		return svc, nil
	}
	if c := t.mat; c != nil {
		t.mu.Unlock()
		return awaitFlight(ctx, c)
	}
	if t.src == nil {
		t.mu.Unlock()
		return nil, ErrNoSource
	}
	c := &flight{done: make(chan struct{})}
	t.mat = c
	params := t.params
	t.mu.Unlock()

	go func() {
		svc, bytes, err := p.mine(params, t.src)
		t.mu.Lock()
		t.mat = nil
		if err == nil {
			if t.deleted {
				svc, err = nil, ErrNotFound
			} else {
				p.installLocked(t, svc, bytes, params)
			}
		}
		c.svc, c.err = svc, err
		t.mu.Unlock()
		close(c.done)
		if err == nil {
			p.enforceBudget(t)
		}
	}()
	return awaitFlight(ctx, c)
}

// awaitFlight blocks on a shared materialization until it lands or
// the caller's ctx expires.
func awaitFlight(ctx context.Context, c *flight) (*closedrules.QueryService, error) {
	select {
	case <-c.done:
		return c.svc, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// mine is one load→mine→build pass for a tenant, under the pool
// lifecycle context and MineTimeout. It never runs under a lock.
func (p *Pool) mine(params Params, src Source) (*closedrules.QueryService, int64, error) {
	ctx := p.ctx
	if p.cfg.MineTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.cfg.MineTimeout)
		defer cancel()
	}
	d, err := src.Load(ctx)
	if err != nil {
		return nil, 0, fmt.Errorf("tenant: load: %w", err)
	}
	res, err := closedrules.MineContext(ctx, d, params.mineOptions()...)
	if err != nil {
		return nil, 0, fmt.Errorf("tenant: mine: %w", err)
	}
	svc, err := closedrules.NewQueryServiceWithBases(res, params.MinConfidence, closedrules.BasisSelection{
		Exact:       params.ExactBasis,
		Approximate: params.ApproxBasis,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("tenant: build service: %w", err)
	}
	// Commit the fingerprint so an attached refresher's first poll
	// compares against what is being served, not against nothing.
	if c, ok := src.(refresh.Committer); ok {
		c.Commit()
	}
	p.mines.Add(1)
	return svc, svc.MemoryEstimate(), nil
}

// installLocked publishes a freshly mined service into the entry
// (t.mu must be held): pool gauges move by the delta, the entry's
// params track what actually mined it, and the refresher — bound to
// the replaced service — is restarted against the new one.
func (p *Pool) installLocked(t *entry, svc *closedrules.QueryService, bytes int64, params Params) {
	if t.svc == nil {
		p.resident.Add(1)
	} else {
		p.bytes.Add(-t.bytes)
	}
	t.svc = svc
	t.bytes = bytes
	t.params = params
	t.mines++
	p.bytes.Add(bytes)
	oldRef := t.refresher
	t.refresher = nil
	if oldRef != nil {
		// Stop blocks on an in-flight cycle; do it off the entry lock.
		go oldRef.Stop()
	}
	p.startRefresherLocked(t, svc, params)
}

// startRefresherLocked attaches a background refresher to a newly
// materialized service when the tenant asked for one (t.mu held).
// Start only spawns the poll goroutine, so holding the lock is safe.
func (p *Pool) startRefresherLocked(t *entry, svc *closedrules.QueryService, params Params) {
	if t.refresh <= 0 || t.src == nil {
		return
	}
	// A mine that finishes just before Close cancels p.ctx can install
	// after Close's refresher-stop sweep already passed this entry,
	// which would leak a running refresher past pool shutdown. The
	// check is ordered by t.mu: if the cancel has not happened by now,
	// the sweep is still ahead of us and will stop whatever starts here
	// once we release the lock.
	if p.ctx.Err() != nil {
		return
	}
	src, ok := t.src.(refresh.Source)
	if !ok {
		return
	}
	ref, err := refresh.New(svc, refresh.Config{
		Source:      src,
		Interval:    t.refresh,
		MineTimeout: p.cfg.MineTimeout,
		MineOptions: params.mineOptions(),
	})
	if err != nil {
		return // params were validated; unreachable in practice
	}
	if ref.Start() == nil {
		t.refresher = ref
	}
}

// enforceBudget evicts least-recently-used resident tenants until the
// pool fits its memory budget again. keep (the tenant just touched)
// and pinned tenants are never evicted, so a single oversized tenant
// serves alone rather than thrashing.
func (p *Pool) enforceBudget(keep *entry) {
	p.evictMu.Lock()
	defer p.evictMu.Unlock()
	for p.bytes.Load() > p.cfg.MemoryBudget {
		victim := p.lruVictim(keep)
		if victim == nil {
			return
		}
		p.evict(victim)
	}
}

// lruVictim scans for the resident, unpinned, not-mid-flight tenant
// with the oldest last use. O(registered) per eviction, which is fine
// at the pool sizes a single process holds.
func (p *Pool) lruVictim(keep *entry) *entry {
	var victim *entry
	var oldest int64
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.RLock()
		for _, t := range sh.tenants {
			if t == keep || t.pinned {
				continue
			}
			t.mu.Lock()
			resident := t.svc != nil && t.mat == nil && !t.deleted
			t.mu.Unlock()
			if !resident {
				continue
			}
			if used := t.lastUsed.Load(); victim == nil || used < oldest {
				victim, oldest = t, used
			}
		}
		sh.mu.RUnlock()
	}
	return victim
}

// evict drops one tenant's resident service. The registration — its
// source, params, identity — survives; the next query re-mines.
func (p *Pool) evict(t *entry) {
	t.mu.Lock()
	if t.svc == nil || t.mat != nil || t.deleted {
		t.mu.Unlock()
		return
	}
	ref := t.refresher
	t.refresher = nil
	freed := t.bytes
	t.svc = nil
	t.bytes = 0
	t.mu.Unlock()
	p.resident.Add(-1)
	p.bytes.Add(-freed)
	p.evictions.Add(1)
	if ref != nil {
		ref.Stop()
	}
}

// Stats snapshots the pool gauges.
func (p *Pool) Stats() Stats {
	return Stats{
		Registered:  int(p.registered.Load()),
		Resident:    int(p.resident.Load()),
		Bytes:       p.bytes.Load(),
		BudgetBytes: p.cfg.MemoryBudget,
		MaxTenants:  p.cfg.MaxTenants,
		Evictions:   p.evictions.Load(),
		Mines:       p.mines.Load(),
		Jobs:        p.jobs.stats(),
	}
}
