package tenant

import (
	"sync"
	"time"
)

// JobState is the lifecycle of one async mine job.
type JobState string

// Job lifecycle states, in order; Done and Failed are terminal.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobInfo is the externally visible record of one mine job.
type JobInfo struct {
	ID         string
	Tenant     string
	State      JobState
	Error      string
	Params     Params
	EnqueuedAt time.Time
	StartedAt  time.Time
	FinishedAt time.Time
	// MineMillis is the wall time of the mine itself (running→finished).
	MineMillis int64
}

// JobStats are the job gauges exposed on /healthz and /metrics.
type JobStats struct {
	Queued  int
	Running int
	Done    uint64
	Failed  uint64
}

// job is the internal record; mu guards the mutable lifecycle fields.
type job struct {
	id     string
	tenant string
	params Params

	mu         sync.Mutex
	state      JobState
	err        string
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time
}

func (j *job) info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:         j.id,
		Tenant:     j.tenant,
		State:      j.state,
		Error:      j.err,
		Params:     j.params,
		EnqueuedAt: j.enqueuedAt,
		StartedAt:  j.startedAt,
		FinishedAt: j.finishedAt,
	}
	if !j.startedAt.IsZero() && !j.finishedAt.IsZero() {
		info.MineMillis = j.finishedAt.Sub(j.startedAt).Milliseconds()
	}
	return info
}

// jobManager runs mine jobs on a bounded worker pool with per-tenant
// fairness: one tenant can hold at most half the workers (rounded up),
// so a burst of jobs against one dataset cannot starve every other
// tenant's queue slot.
type jobManager struct {
	pool    *Pool
	queue   chan *job
	wg      sync.WaitGroup
	fairCap int

	mu       sync.Mutex
	byID     map[string]*job
	order    []string // insertion order, for pruning finished records
	active   map[string]int
	queued   int
	running  int
	done     uint64
	failed   uint64
	closed   bool
	sequence uint64
}

// maxJobRecords bounds retained finished-job records; the oldest
// finished records are pruned past it so a long-lived pool cannot
// accumulate unbounded job history.
const maxJobRecords = 1024

func (m *jobManager) init(p *Pool, workers, queue int) {
	m.pool = p
	m.queue = make(chan *job, queue)
	m.fairCap = (workers + 1) / 2
	m.byID = make(map[string]*job)
	m.active = make(map[string]int)
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
}

// close drains the queue, failing every still-queued job, and waits
// for the workers (in-flight mines are cancelled via the pool ctx,
// which the caller cancels first).
func (m *jobManager) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.queue)
	m.wg.Wait()
	// Workers exited; anything left in byID still queued was never
	// picked up (the channel close raced the producer side shut).
	m.mu.Lock()
	for _, j := range m.byID {
		j.mu.Lock()
		if j.state == JobQueued {
			j.state = JobFailed
			j.err = ErrClosed.Error()
			j.finishedAt = time.Now()
			m.queued--
			m.failed++
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
}

// enqueue admits a mine job for the tenant: per-tenant fairness first,
// then queue capacity. The returned JobInfo is in state queued.
func (m *jobManager) enqueue(t *entry, params Params) (JobInfo, error) {
	if t.src == nil {
		return JobInfo{}, ErrNoSource
	}
	j := &job{
		id:         newID("j-"),
		tenant:     t.id,
		params:     params,
		state:      JobQueued,
		enqueuedAt: time.Now(),
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobInfo{}, ErrClosed
	}
	if m.active[t.id] >= m.fairCap {
		m.mu.Unlock()
		return JobInfo{}, ErrTenantBusy
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		return JobInfo{}, ErrQueueFull
	}
	m.active[t.id]++
	m.queued++
	m.byID[j.id] = j
	m.order = append(m.order, j.id)
	m.pruneLocked()
	m.mu.Unlock()
	return j.info(), nil
}

// pruneLocked drops the oldest finished job records past
// maxJobRecords (m.mu held).
func (m *jobManager) pruneLocked() {
	if len(m.byID) <= maxJobRecords {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.byID[id]
		if j == nil {
			continue
		}
		j.mu.Lock()
		finished := j.state == JobDone || j.state == JobFailed
		j.mu.Unlock()
		if finished && len(m.byID) > maxJobRecords {
			delete(m.byID, id)
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// worker runs queued jobs until the queue closes.
func (m *jobManager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

// run executes one job: mine the tenant's source with the job's
// params and, on success, install the result as the tenant's served
// snapshot (hot swap — in-flight queries keep the old one).
func (m *jobManager) run(j *job) {
	j.mu.Lock()
	j.state = JobRunning
	j.startedAt = time.Now()
	j.mu.Unlock()
	m.mu.Lock()
	m.queued--
	m.running++
	m.mu.Unlock()

	err := m.execute(j)

	j.mu.Lock()
	j.finishedAt = time.Now()
	if err != nil {
		j.state = JobFailed
		j.err = err.Error()
	} else {
		j.state = JobDone
	}
	j.mu.Unlock()
	m.mu.Lock()
	m.running--
	if err != nil {
		m.failed++
	} else {
		m.done++
	}
	if m.active[j.tenant]--; m.active[j.tenant] <= 0 {
		delete(m.active, j.tenant)
	}
	m.mu.Unlock()
}

// execute performs the mine and installs the result.
func (m *jobManager) execute(j *job) error {
	t, err := m.pool.get(j.tenant)
	if err != nil {
		return err // deleted while queued
	}
	svc, bytes, err := m.pool.mine(j.params, t.src)
	if err != nil {
		return err
	}
	t.mu.Lock()
	if t.deleted {
		t.mu.Unlock()
		return ErrNotFound
	}
	m.pool.installLocked(t, svc, bytes, j.params)
	t.mu.Unlock()
	t.lastUsed.Store(time.Now().UnixNano())
	m.pool.enforceBudget(t)
	return nil
}

func (m *jobManager) job(id string) (JobInfo, error) {
	m.mu.Lock()
	j, ok := m.byID[id]
	m.mu.Unlock()
	if !ok {
		return JobInfo{}, ErrNotFound
	}
	return j.info(), nil
}

func (m *jobManager) stats() JobStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return JobStats{Queued: m.queued, Running: m.running, Done: m.done, Failed: m.failed}
}

// Enqueue schedules an async re-mine of tenant id with the given
// params (zero fields default; validated here so the job cannot fail
// on malformed input after the 202 has been returned).
func (p *Pool) Enqueue(id string, params Params) (JobInfo, error) {
	t, err := p.get(id)
	if err != nil {
		return JobInfo{}, err
	}
	params = params.withDefaults()
	if err := params.Validate(); err != nil {
		return JobInfo{}, err
	}
	return p.jobs.enqueue(t, params)
}

// Job reports one mine job's state.
func (p *Pool) Job(id string) (JobInfo, error) { return p.jobs.job(id) }
