package lattice

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/naive"
	"closedrules/internal/testgen"
)

func classicFC(t *testing.T) (*Lattice, *dataset.Context) {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := d.Context()
	return Build(naive.ClosedItemsets(ctx, 2)), ctx
}

func TestBuildClassic(t *testing.T) {
	l, _ := classicFC(t)
	if l.Len() != 6 {
		t.Fatalf("nodes = %d, want 6", l.Len())
	}
	if l.NumEdges() != 7 {
		t.Fatalf("edges = %d, want 7: %v", l.NumEdges(), l.Edges())
	}
	if l.BottomIndex() != 0 || l.Nodes[0].Items.Len() != 0 {
		t.Errorf("bottom = %d (%v)", l.BottomIndex(), l.Nodes[0].Items)
	}
	max := l.MaximalIndices()
	if len(max) != 1 || !l.Nodes[max[0]].Items.Equal(itemset.Of(0, 1, 2, 4)) {
		t.Errorf("maximal = %v", max)
	}
	if h := l.Height(); h != 3 { // ∅ → C → AC|BCE → ABCE
		t.Errorf("height = %d, want 3", h)
	}
}

func TestBuildCoversMatchNaive(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for iter := 0; iter < 60; iter++ {
		d := testgen.Random(r, 20, 9, 0.4)
		minSup := 1 + r.Intn(3)
		fc := naive.ClosedItemsets(d.Context(), minSup)
		l := Build(fc)
		wantPairs := naive.CoverPairs(l.Nodes)
		want := map[[2]int]bool{}
		for _, p := range wantPairs {
			want[p] = true
		}
		got := map[[2]int]bool{}
		for _, e := range l.Edges() {
			got[e] = true
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d edges, naive %d", iter, len(got), len(want))
		}
		for e := range got {
			if !want[e] {
				t.Fatalf("iter %d: spurious edge %v→%v",
					iter, l.Nodes[e[0]].Items, l.Nodes[e[1]].Items)
			}
		}
	}
}

func TestUpDownSymmetry(t *testing.T) {
	l, _ := classicFC(t)
	for i, ups := range l.Up {
		for _, j := range ups {
			found := false
			for _, d := range l.Down[j] {
				if d == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d→%d missing from Down", i, j)
			}
		}
	}
}

func TestNodeIndex(t *testing.T) {
	l, _ := classicFC(t)
	idx, ok := l.NodeIndex(itemset.Of(1, 4))
	if !ok || !l.Nodes[idx].Items.Equal(itemset.Of(1, 4)) {
		t.Errorf("NodeIndex(BE) = %d,%v", idx, ok)
	}
	if _, ok := l.NodeIndex(itemset.Of(3)); ok {
		t.Error("NodeIndex(D) should miss")
	}
}

func TestEdgeConfidence(t *testing.T) {
	l, _ := classicFC(t)
	// Edge ∅(5) → C(4): confidence 4/5.
	bi := l.BottomIndex()
	ci, _ := l.NodeIndex(itemset.Of(2))
	got := l.EdgeConfidence(bi, ci)
	if math.Abs(got-0.8) > 1e-12 {
		t.Errorf("EdgeConfidence(∅→C) = %v", got)
	}
}

// TestPathProductEqualsSupportRatio is Luxenburger's lemma: the product
// of edge confidences along any path from a to b equals
// supp(b)/supp(a), independent of the path taken.
func TestPathProductEqualsSupportRatio(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for iter := 0; iter < 40; iter++ {
		d := testgen.Random(r, 20, 8, 0.45)
		fc := naive.ClosedItemsets(d.Context(), 1)
		l := Build(fc)
		for a := 0; a < l.Len(); a++ {
			for b := 0; b < l.Len(); b++ {
				if a == b || !l.Nodes[b].Items.ContainsAll(l.Nodes[a].Items) {
					continue
				}
				got, ok := l.PathProduct(a, b)
				if !ok {
					t.Fatalf("iter %d: no path %v → %v despite containment",
						iter, l.Nodes[a].Items, l.Nodes[b].Items)
				}
				want := float64(l.Nodes[b].Support) / float64(l.Nodes[a].Support)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("iter %d: path product %v, want %v", iter, got, want)
				}
			}
		}
	}
}

func TestPathProductUnreachable(t *testing.T) {
	l, _ := classicFC(t)
	ac, _ := l.NodeIndex(itemset.Of(0, 2))
	be, _ := l.NodeIndex(itemset.Of(1, 4))
	if _, ok := l.PathProduct(ac, be); ok {
		t.Error("AC → BE should be unreachable")
	}
	if got, ok := l.PathProduct(ac, ac); !ok || got != 1 {
		t.Errorf("self path = %v,%v", got, ok)
	}
}

func TestDOT(t *testing.T) {
	l, _ := classicFC(t)
	dot := l.DOT([]string{"A", "B", "C", "D", "E"})
	if !strings.HasPrefix(dot, "digraph lattice {") {
		t.Errorf("DOT prefix: %q", dot[:20])
	}
	if !strings.Contains(dot, "A, B, C, E") {
		t.Errorf("DOT lacks top node label:\n%s", dot)
	}
	if strings.Count(dot, "->") != 7 {
		t.Errorf("DOT edge count = %d", strings.Count(dot, "->"))
	}
}

func TestMeetJoinClassic(t *testing.T) {
	l, _ := classicFC(t)
	ac, _ := l.NodeIndex(itemset.Of(0, 2))
	be, _ := l.NodeIndex(itemset.Of(1, 4))
	bce, _ := l.NodeIndex(itemset.Of(1, 2, 4))
	abce, _ := l.NodeIndex(itemset.Of(0, 1, 2, 4))
	bot := l.BottomIndex()

	if m, ok := l.Meet(ac, be); !ok || m != bot {
		t.Errorf("Meet(AC,BE) = %d,%v want bottom", m, ok)
	}
	if m, ok := l.Meet(ac, abce); !ok || m != ac {
		t.Errorf("Meet(AC,ABCE) = %d,%v want AC", m, ok)
	}
	if j, ok := l.Join(ac, be); !ok || j != abce {
		t.Errorf("Join(AC,BE) = %d,%v want ABCE", j, ok)
	}
	if j, ok := l.Join(bce, bce); !ok || j != bce {
		t.Errorf("Join(BCE,BCE) = %d,%v", j, ok)
	}
}

// TestMeetJoinLaws: on random complete FC sets, meet always exists and
// is the greatest lower bound; join, when defined, is the least upper
// bound.
func TestMeetJoinLaws(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	for iter := 0; iter < 30; iter++ {
		d := testgen.Random(r, 18, 8, 0.45)
		fc := naive.ClosedItemsets(d.Context(), 1)
		l := Build(fc)
		for a := 0; a < l.Len(); a++ {
			for b := a; b < l.Len(); b++ {
				m, ok := l.Meet(a, b)
				if !ok {
					t.Fatalf("iter %d: meet(%v,%v) missing — FC not intersection-closed?",
						iter, l.Nodes[a].Items, l.Nodes[b].Items)
				}
				mi := l.Nodes[m].Items
				if !l.Nodes[a].Items.ContainsAll(mi) || !l.Nodes[b].Items.ContainsAll(mi) {
					t.Fatalf("iter %d: meet not a lower bound", iter)
				}
				// Greatest: any common lower bound is ⊆ meet.
				for c := 0; c < l.Len(); c++ {
					ci := l.Nodes[c].Items
					if l.Nodes[a].Items.ContainsAll(ci) && l.Nodes[b].Items.ContainsAll(ci) &&
						!mi.ContainsAll(ci) {
						t.Fatalf("iter %d: %v is a larger common lower bound than %v",
							iter, ci, mi)
					}
				}
				if j, ok := l.Join(a, b); ok {
					ji := l.Nodes[j].Items
					if !ji.ContainsAll(l.Nodes[a].Items) || !ji.ContainsAll(l.Nodes[b].Items) {
						t.Fatalf("iter %d: join not an upper bound", iter)
					}
				}
			}
		}
	}
}

func TestBuildEmptyAndSingle(t *testing.T) {
	d, _ := dataset.FromTransactions(nil)
	l := Build(naive.ClosedItemsets(d.Context(), 1))
	if l.Len() != 0 || l.BottomIndex() != -1 || l.Height() != 0 {
		t.Errorf("empty lattice: len=%d bottom=%d", l.Len(), l.BottomIndex())
	}
	d2, _ := dataset.FromTransactions([][]int{{0}})
	l2 := Build(naive.ClosedItemsets(d2.Context(), 1))
	if l2.Len() != 1 || l2.NumEdges() != 0 {
		t.Errorf("singleton lattice: len=%d edges=%d", l2.Len(), l2.NumEdges())
	}
}
