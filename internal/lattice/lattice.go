// Package lattice builds the iceberg lattice: the frequent closed
// itemsets ordered by inclusion, with their Hasse diagram (the
// transitive reduction of the containment order). Theorem 2 of the
// paper defines the reduced Luxenburger basis on exactly the edges of
// this diagram.
package lattice

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"closedrules/internal/bitset"
	"closedrules/internal/closedset"
	"closedrules/internal/itemset"
)

// Lattice is the ordered set (FC, ⊆). Nodes are in canonical
// (size, lex) order, so node 0 is the bottom whenever the set is a
// complete mining result.
type Lattice struct {
	Nodes []closedset.Closed
	Up    [][]int // Up[i]: immediate supersets (upper covers) of node i
	Down  [][]int // Down[i]: immediate subsets (lower covers) of node i

	index map[string]int
}

// Build constructs the lattice and its Hasse diagram from a set of
// closed itemsets. Cost is O(|FC|² · w) bitset operations, where w is
// the item-universe width in words; the per-node cover computation is
// independent, so it is spread over GOMAXPROCS goroutines.
func Build(fc *closedset.Set) *Lattice {
	nodes := fc.All()
	l := &Lattice{
		Nodes: nodes,
		Up:    make([][]int, len(nodes)),
		Down:  make([][]int, len(nodes)),
		index: make(map[string]int, len(nodes)),
	}
	width := 0
	for _, n := range nodes {
		for _, it := range n.Items {
			if it+1 > width {
				width = it + 1
			}
		}
	}
	for i, n := range nodes {
		l.index[n.Items.Key()] = i
	}

	intents := make([]bitset.Set, len(nodes))
	for i, n := range nodes {
		b := bitset.New(width)
		for _, it := range n.Items {
			b.Add(it)
		}
		intents[i] = b
	}

	// Nodes are size-ascending, so supersets of i always follow i.
	// A superset j is an upper cover iff no previously accepted cover
	// c of i satisfies c ⊂ j (scanning in ascending size keeps covers
	// minimal). Each node's scan is independent of the others.
	coversOf := func(i int) []int {
		var covers []int
		for j := i + 1; j < len(nodes); j++ {
			if !intents[i].IsSubset(intents[j]) || intents[i].Equal(intents[j]) {
				continue
			}
			minimal := true
			for _, c := range covers {
				if intents[c].IsSubset(intents[j]) {
					minimal = false
					break
				}
			}
			if minimal {
				covers = append(covers, j)
			}
		}
		return covers
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers <= 1 {
		for i := range nodes {
			l.Up[i] = coversOf(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					l.Up[i] = coversOf(i)
				}
			}()
		}
		for i := range nodes {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	for i, covers := range l.Up {
		for _, j := range covers {
			l.Down[j] = append(l.Down[j], i)
		}
	}
	for i := range l.Down {
		sort.Ints(l.Down[i])
	}
	return l
}

// Len returns the number of nodes.
func (l *Lattice) Len() int { return len(l.Nodes) }

// NodeIndex returns the index of the node with the given itemset.
func (l *Lattice) NodeIndex(items itemset.Itemset) (int, bool) {
	i, ok := l.index[items.Key()]
	return i, ok
}

// BottomIndex returns the index of the least node, or -1 when the node
// set has no unique least element.
func (l *Lattice) BottomIndex() int {
	if len(l.Nodes) == 0 {
		return -1
	}
	bot := l.Nodes[0].Items
	for _, n := range l.Nodes[1:] {
		if !n.Items.ContainsAll(bot) {
			return -1
		}
	}
	return 0
}

// MaximalIndices returns the indices of the maximal nodes (no upper
// cover).
func (l *Lattice) MaximalIndices() []int {
	var out []int
	for i, up := range l.Up {
		if len(up) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Edges returns all Hasse edges as (lower, upper) index pairs, in
// deterministic order.
func (l *Lattice) Edges() [][2]int {
	var out [][2]int
	for i, ups := range l.Up {
		for _, j := range ups {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// NumEdges returns the number of Hasse edges.
func (l *Lattice) NumEdges() int {
	n := 0
	for _, ups := range l.Up {
		n += len(ups)
	}
	return n
}

// EdgeConfidence returns supp(upper)/supp(lower) for a Hasse edge — the
// confidence of the reduced Luxenburger rule lower → upper∖lower.
func (l *Lattice) EdgeConfidence(lower, upper int) float64 {
	return float64(l.Nodes[upper].Support) / float64(l.Nodes[lower].Support)
}

// Height returns the length (in edges) of the longest chain.
func (l *Lattice) Height() int {
	depth := make([]int, len(l.Nodes))
	h := 0
	// Nodes are size-ascending: Down edges always point to earlier
	// indices, so one forward sweep is a valid topological pass.
	for i := range l.Nodes {
		for _, d := range l.Down[i] {
			if depth[d]+1 > depth[i] {
				depth[i] = depth[d] + 1
			}
		}
		if depth[i] > h {
			h = depth[i]
		}
	}
	return h
}

// PathProduct returns the product of edge confidences along any path
// from node a down-to-up to node b, which by Luxenburger's lemma equals
// supp(b)/supp(a) independently of the path; ok is false when b is not
// reachable above a.
func (l *Lattice) PathProduct(a, b int) (float64, bool) {
	if a == b {
		return 1, true
	}
	// BFS upward from a.
	type st struct {
		node int
		conf float64
	}
	seen := make(map[int]bool)
	queue := []st{{a, 1}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, up := range l.Up[cur.node] {
			if seen[up] {
				continue
			}
			seen[up] = true
			c := cur.conf * l.EdgeConfidence(cur.node, up)
			if up == b {
				return c, true
			}
			queue = append(queue, st{up, c})
		}
	}
	return 0, false
}

// Meet returns the infimum of two nodes: the largest closed itemset
// contained in both. FC is closed under intersection (intersections of
// closed sets are closed, and support only grows downward), so the
// meet always exists in a complete mining result.
func (l *Lattice) Meet(a, b int) (int, bool) {
	inter := l.Nodes[a].Items.Intersect(l.Nodes[b].Items)
	i, ok := l.index[inter.Key()]
	return i, ok
}

// Join returns the supremum of two nodes: the smallest closed itemset
// containing both, which exists iff their union is frequent.
func (l *Lattice) Join(a, b int) (int, bool) {
	union := l.Nodes[a].Items.Union(l.Nodes[b].Items)
	// The smallest node containing the union; Nodes are size-ascending.
	for i, n := range l.Nodes {
		if n.Items.ContainsAll(union) {
			return i, true
		}
	}
	return 0, false
}

// DOT renders the Hasse diagram in Graphviz format; names may be nil.
func (l *Lattice) DOT(names []string) string {
	var b strings.Builder
	b.WriteString("digraph lattice {\n  rankdir=BT;\n  node [shape=box];\n")
	for i, n := range l.Nodes {
		label := n.Items.Format(names)
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i, fmt.Sprintf("%s (%d)", label, n.Support))
	}
	for _, e := range l.Edges() {
		fmt.Fprintf(&b, "  n%d -> n%d [label=%.2f];\n", e[0], e[1], l.EdgeConfidence(e[0], e[1]))
	}
	b.WriteString("}\n")
	return b.String()
}
