// Package closealg implements the Close algorithm of Pasquier,
// Bastide, Taouil & Lakhal ("Efficient mining of association rules
// using closed itemset lattices", Information Systems 24(1), 1999) —
// reference [4] of the ICDE'2000 paper.
//
// Close mines the frequent closed itemsets FC level-wise over
// *generators* (free sets): at each level one database pass computes,
// for every candidate generator, its support and its closure (the
// intersection of all transactions containing it). Candidate
// generators for the next level are built apriori-style and pruned
// when they are contained in the closure of one of their subsets —
// the test that removes non-free sets and gives Close its advantage
// over Apriori on correlated data.
//
// The package follows the paper's object-major pass structure: support
// counting uses the same candidate trie as the Apriori baseline, and
// closures are accumulated by intersecting transaction bitsets, so
// runtime comparisons between the two are apples-to-apples.
package closealg

import (
	"context"
	"fmt"

	"closedrules/internal/bitset"
	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/galois"
	"closedrules/internal/itemset"
	"closedrules/internal/levelwise"
)

// Stats reports the level-wise work of a run.
type Stats struct {
	Passes             int   // database passes
	CandidatesPerLevel []int // candidate generators counted at each level
	GeneratorsPerLevel []int // surviving (frequent, free) generators
}

// TotalCandidates sums candidate counts over all levels.
func (s Stats) TotalCandidates() int {
	n := 0
	for _, c := range s.CandidatesPerLevel {
		n += c
	}
	return n
}

// generator is a candidate with its discovered closure and support.
type generator struct {
	items   itemset.Itemset
	closure itemset.Itemset
	support int
}

// Mine returns the frequent closed itemsets of the dataset — including
// the bottom element h(∅) with generator ∅ — at absolute support ≥
// minSup, with every closed itemset carrying the minimal generators
// that produced it.
func Mine(d *dataset.Dataset, minSup int) (*closedset.Set, Stats, error) {
	return MineContext(context.Background(), d, minSup)
}

// MineContext is Mine with cancellation: ctx is checked before every
// level-wise database pass, so a cancelled context aborts the run
// within one level.
func MineContext(ctx context.Context, d *dataset.Dataset, minSup int) (*closedset.Set, Stats, error) {
	var stats Stats
	if minSup < 1 {
		return nil, stats, fmt.Errorf("closealg: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	dc := d.Context()
	fc := closedset.New()

	// Bottom: h(∅) = intersection of all transactions, support |O|.
	if d.NumTransactions() >= minSup {
		bottom := galois.Closure(dc, itemset.Empty())
		fc.AddGenerator(bottom, d.NumTransactions(), itemset.Empty())
	}

	// Level 1: generators are the frequent items not in h(∅) (an item
	// of h(∅) has the same support as ∅ and is therefore not free).
	sup := d.ItemSupports()
	stats.Passes = 1
	stats.CandidatesPerLevel = append(stats.CandidatesPerLevel, d.NumItems())
	var level []generator
	for it, s := range sup {
		if s < minSup || s == d.NumTransactions() {
			continue
		}
		g := itemset.Of(it)
		cl := galois.Closure(dc, g)
		level = append(level, generator{items: g, closure: cl, support: s})
		fc.AddGenerator(cl, s, g)
	}
	stats.GeneratorsPerLevel = append(stats.GeneratorsPerLevel, len(level))

	for k := 2; len(level) >= 2; k++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		cands := nextCandidates(level)
		if len(cands) == 0 {
			break
		}
		stats.CandidatesPerLevel = append(stats.CandidatesPerLevel, len(cands))

		// One object-major pass: count supports and accumulate closures
		// as the intersection of the transactions containing each
		// candidate.
		counts := make([]int, len(cands))
		closures := make([]bitset.Set, len(cands))
		trie := levelwise.NewTrie(k, cands)
		err := trie.WalkPass(ctx, d.Transactions(), k, func(o, idx int) {
			if counts[idx] == 0 {
				closures[idx] = dc.Rows[o].Clone()
			} else {
				closures[idx].And(dc.Rows[o])
			}
			counts[idx]++
		})
		if err != nil {
			return nil, stats, err
		}
		stats.Passes++

		var next []generator
		for i, cand := range cands {
			if counts[i] < minSup {
				continue
			}
			cl := itemset.Itemset(closures[i].Slice())
			next = append(next, generator{items: cand, closure: cl, support: counts[i]})
			fc.AddGenerator(cl, counts[i], cand)
		}
		stats.GeneratorsPerLevel = append(stats.GeneratorsPerLevel, len(next))
		level = next
	}
	return fc, stats, nil
}

// nextCandidates builds the candidate generators of level k+1 from the
// generators of level k: apriori join, subset prune (free sets are
// downward closed), and the Close-specific prune dropping candidates
// contained in the closure of one of their k-subsets (equal-support
// subsets make the candidate non-free and its closure already known).
func nextCandidates(level []generator) []itemset.Itemset {
	items := make([]itemset.Itemset, len(level))
	byKey := make(map[string]int, len(level))
	for i, g := range level {
		items[i] = g.items
		byKey[g.items.Key()] = i
	}
	levelwise.SortLex(items)
	cands := levelwise.Join(items)

	keys := make(map[string]bool, len(byKey))
	for k := range byKey {
		keys[k] = true
	}
	cands = levelwise.PruneBySubsets(cands, keys)

	out := cands[:0]
	for _, c := range cands {
		free := true
		for drop := 0; drop < len(c) && free; drop++ {
			sub := make(itemset.Itemset, 0, len(c)-1)
			sub = append(sub, c[:drop]...)
			sub = append(sub, c[drop+1:]...)
			if gi, ok := byKey[sub.Key()]; ok {
				if level[gi].closure.ContainsAll(c) {
					free = false
				}
			}
		}
		if free {
			out = append(out, c)
		}
	}
	return out
}
