package closealg

import (
	"math/rand"
	"testing"

	"closedrules/internal/apriori"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/naive"
	"closedrules/internal/testgen"
)

func classic(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMineClassic(t *testing.T) {
	fc, stats, err := Mine(classic(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	// FC = {∅, C, AC, BE, BCE, ABCE}.
	if fc.Len() != 6 {
		t.Fatalf("|FC| = %d, want 6: %v", fc.Len(), fc.All())
	}
	for _, chk := range []struct {
		items itemset.Itemset
		sup   int
	}{
		{itemset.Of(), 5},
		{itemset.Of(2), 4},
		{itemset.Of(0, 2), 3},
		{itemset.Of(1, 4), 4},
		{itemset.Of(1, 2, 4), 3},
		{itemset.Of(0, 1, 2, 4), 2},
	} {
		if s, ok := fc.Support(chk.items); !ok || s != chk.sup {
			t.Errorf("supp(%v) = %d,%v want %d", chk.items, s, ok, chk.sup)
		}
	}
	if stats.Passes < 2 {
		t.Errorf("Passes = %d", stats.Passes)
	}
	// Level-wise generator counts: 4 singletons (A,B,C,E), then the
	// frequent free 2-sets {AB, AE, BC, CE}.
	if stats.GeneratorsPerLevel[0] != 4 {
		t.Errorf("level-1 generators = %d, want 4", stats.GeneratorsPerLevel[0])
	}
	if len(stats.GeneratorsPerLevel) > 1 && stats.GeneratorsPerLevel[1] != 4 {
		t.Errorf("level-2 generators = %d, want 4 (%v)",
			stats.GeneratorsPerLevel[1], stats.GeneratorsPerLevel)
	}
}

func TestMineGeneratorsClassic(t *testing.T) {
	fc, _, err := Mine(classic(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := naive.ClosedItemsets(classic(t).Context(), 2)
	gotGens := fc.AllGenerators()
	wantGens := want.AllGenerators()
	if len(gotGens) != len(wantGens) {
		t.Fatalf("%d generators, want %d", len(gotGens), len(wantGens))
	}
	for i := range gotGens {
		if !gotGens[i].Generator.Equal(wantGens[i].Generator) ||
			!gotGens[i].Closure.Equal(wantGens[i].Closure) {
			t.Errorf("generator %d: got %v→%v want %v→%v", i,
				gotGens[i].Generator, gotGens[i].Closure,
				wantGens[i].Generator, wantGens[i].Closure)
		}
	}
}

func TestMineValidation(t *testing.T) {
	if _, _, err := Mine(classic(t), 0); err == nil {
		t.Error("minSup 0 accepted")
	}
}

func TestMineUniversalItem(t *testing.T) {
	// Item 0 in every transaction: bottom is {0}, singletons of h(∅)
	// are not generators.
	d, _ := dataset.FromTransactions([][]int{{0, 1}, {0, 2}, {0, 1, 2}})
	fc, _, err := Mine(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	bot, ok := fc.Bottom()
	if !ok || !bot.Items.Equal(itemset.Of(0)) || bot.Support != 3 {
		t.Fatalf("Bottom = %+v, %v", bot, ok)
	}
	want := naive.ClosedItemsets(d.Context(), 1)
	if !fc.Equal(want) {
		t.Fatalf("FC mismatch: got %v want %v", fc.All(), want.All())
	}
}

func TestMineEmptyDataset(t *testing.T) {
	d, _ := dataset.FromTransactions(nil)
	fc, _, err := Mine(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Len() != 0 {
		t.Errorf("|FC| = %d on empty data", fc.Len())
	}
}

func TestMineAgainstNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for iter := 0; iter < 80; iter++ {
		d := testgen.Random(r, 25, 10, 0.4)
		minSup := 1 + r.Intn(4)
		fc, _, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.ClosedItemsets(d.Context(), minSup)
		if !fc.Equal(want) {
			t.Fatalf("iter %d (minSup %d): close %d closed, naive %d\nclose: %v\nnaive: %v",
				iter, minSup, fc.Len(), want.Len(), fc.All(), want.All())
		}
	}
}

func TestMineGeneratorsAgainstNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for iter := 0; iter < 40; iter++ {
		d := testgen.Random(r, 20, 8, 0.45)
		minSup := 1 + r.Intn(3)
		fc, _, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.ClosedItemsets(d.Context(), minSup)
		g1, g2 := fc.AllGenerators(), want.AllGenerators()
		if len(g1) != len(g2) {
			t.Fatalf("iter %d: %d generators vs naive %d", iter, len(g1), len(g2))
		}
		for i := range g1 {
			if !g1[i].Generator.Equal(g2[i].Generator) || !g1[i].Closure.Equal(g2[i].Closure) ||
				g1[i].Support != g2[i].Support {
				t.Fatalf("iter %d: generator %d mismatch", iter, i)
			}
		}
	}
}

func TestMineAgainstNaiveCorrelated(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for iter := 0; iter < 10; iter++ {
		d := testgen.Correlated(r, 50, 5, 3, 0.15)
		minSup := 2 + r.Intn(8)
		fc, _, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.ClosedItemsets(d.Context(), minSup)
		if !fc.Equal(want) {
			t.Fatalf("iter %d: close %d, naive %d", iter, fc.Len(), want.Len())
		}
	}
}

// TestFewerCandidatesThanApriori documents the paper's core efficiency
// claim: on correlated data Close counts strictly fewer candidates
// than Apriori, because generators are a strict subset of the frequent
// itemsets there.
func TestFewerCandidatesThanApriori(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	d := testgen.Correlated(r, 120, 6, 3, 0.1)
	minSup := 6
	fc, stats, err := Mine(d, minSup)
	if err != nil {
		t.Fatal(err)
	}
	fi, aStats, err := apriori.Mine(d, minSup)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Len() >= fi.Len() {
		t.Skipf("data not correlated enough: |FC|=%d |FI|=%d", fc.Len(), fi.Len())
	}
	if stats.TotalCandidates() >= aStats.TotalCandidates() {
		t.Errorf("Close candidates %d should be < Apriori candidates %d on correlated data",
			stats.TotalCandidates(), aStats.TotalCandidates())
	}
}
