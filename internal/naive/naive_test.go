package naive

import (
	"testing"

	"closedrules/internal/dataset"
	"closedrules/internal/galois"
	"closedrules/internal/itemset"
)

// classic is the Close-paper running example:
// 1:ACD 2:BCE 3:ABCE 4:BE 5:ABCE with A=0,…,E=4.
func classic(t *testing.T) *dataset.Context {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d.Context()
}

func TestFrequentItemsetsClassic(t *testing.T) {
	c := classic(t)
	fam := FrequentItemsets(c, 2)
	// Hand-enumerated: 15 frequent itemsets at minsup 2 (D is infrequent).
	if fam.Len() != 15 {
		t.Fatalf("|FI| = %d, want 15: %v", fam.Len(), fam.All())
	}
	checks := []struct {
		items itemset.Itemset
		sup   int
	}{
		{itemset.Of(0), 3}, {itemset.Of(1), 4}, {itemset.Of(2), 4}, {itemset.Of(4), 4},
		{itemset.Of(0, 1), 2}, {itemset.Of(0, 2), 3}, {itemset.Of(0, 4), 2},
		{itemset.Of(1, 2), 3}, {itemset.Of(1, 4), 4}, {itemset.Of(2, 4), 3},
		{itemset.Of(0, 1, 2), 2}, {itemset.Of(0, 1, 4), 2}, {itemset.Of(0, 2, 4), 2},
		{itemset.Of(1, 2, 4), 3}, {itemset.Of(0, 1, 2, 4), 2},
	}
	for _, ch := range checks {
		if got, ok := fam.Support(ch.items); !ok || got != ch.sup {
			t.Errorf("supp(%v) = %d,%v want %d", ch.items, got, ok, ch.sup)
		}
	}
	if fam.Contains(itemset.Of(3)) {
		t.Error("D should be infrequent")
	}
}

func TestFrequentItemsetsMinSupOne(t *testing.T) {
	c := classic(t)
	fam := FrequentItemsets(c, 1)
	// All 15 above plus: D, AD, CD, ACD — 19 total.
	if fam.Len() != 19 {
		t.Fatalf("|FI| at minsup 1 = %d, want 19", fam.Len())
	}
	if s, ok := fam.Support(itemset.Of(0, 2, 3)); !ok || s != 1 {
		t.Errorf("supp(ACD) = %d,%v", s, ok)
	}
}

func TestClosedItemsetsClassic(t *testing.T) {
	c := classic(t)
	fc := ClosedItemsets(c, 2)
	// FC = {∅, C, AC, BE, BCE, ABCE}.
	if fc.Len() != 6 {
		t.Fatalf("|FC| = %d, want 6: %v", fc.Len(), fc.All())
	}
	wantSup := map[string]int{
		itemset.Of().Key():           5,
		itemset.Of(2).Key():          4,
		itemset.Of(0, 2).Key():       3,
		itemset.Of(1, 4).Key():       4,
		itemset.Of(1, 2, 4).Key():    3,
		itemset.Of(0, 1, 2, 4).Key(): 2,
	}
	for _, cl := range fc.All() {
		want, ok := wantSup[cl.Items.Key()]
		if !ok {
			t.Errorf("unexpected closed set %v", cl.Items)
			continue
		}
		if cl.Support != want {
			t.Errorf("supp(%v) = %d, want %d", cl.Items, cl.Support, want)
		}
	}
}

func TestGeneratorsClassic(t *testing.T) {
	c := classic(t)
	fc := ClosedItemsets(c, 2)
	// generator → closure, hand-checked.
	want := map[string]string{
		itemset.Of().Key():     itemset.Of().Key(),
		itemset.Of(2).Key():    itemset.Of(2).Key(),
		itemset.Of(0).Key():    itemset.Of(0, 2).Key(),
		itemset.Of(1).Key():    itemset.Of(1, 4).Key(),
		itemset.Of(4).Key():    itemset.Of(1, 4).Key(),
		itemset.Of(1, 2).Key(): itemset.Of(1, 2, 4).Key(),
		itemset.Of(2, 4).Key(): itemset.Of(1, 2, 4).Key(),
		itemset.Of(0, 1).Key(): itemset.Of(0, 1, 2, 4).Key(),
		itemset.Of(0, 4).Key(): itemset.Of(0, 1, 2, 4).Key(),
	}
	gens := fc.AllGenerators()
	if len(gens) != len(want) {
		t.Fatalf("%d generators, want %d: %v", len(gens), len(want), gens)
	}
	for _, g := range gens {
		cl, ok := want[g.Generator.Key()]
		if !ok {
			t.Errorf("unexpected generator %v", g.Generator)
			continue
		}
		if g.Closure.Key() != cl {
			t.Errorf("closure(%v) = %v", g.Generator, g.Closure)
		}
	}
}

func TestClosureOfViaSet(t *testing.T) {
	c := classic(t)
	fc := ClosedItemsets(c, 2)
	cases := []struct{ in, want itemset.Itemset }{
		{itemset.Of(0), itemset.Of(0, 2)},
		{itemset.Of(1), itemset.Of(1, 4)},
		{itemset.Of(0, 1), itemset.Of(0, 1, 2, 4)},
		{itemset.Of(), itemset.Of()},
		{itemset.Of(2, 4), itemset.Of(1, 2, 4)},
	}
	for _, cs := range cases {
		got, ok := fc.ClosureOf(cs.in)
		if !ok || !got.Items.Equal(cs.want) {
			t.Errorf("ClosureOf(%v) = %v,%v want %v", cs.in, got.Items, ok, cs.want)
		}
		// Must agree with the context closure operator.
		if direct := galois.Closure(c, cs.in); !direct.Equal(got.Items) {
			t.Errorf("set closure %v != context closure %v", got.Items, direct)
		}
	}
	if _, ok := fc.ClosureOf(itemset.Of(3)); ok {
		t.Error("ClosureOf(infrequent) should fail")
	}
}

func TestPseudoClosedClassic(t *testing.T) {
	c := classic(t)
	got := PseudoClosed(c, 2)
	// FP = {A, B, E}: the DG basis of the running example is
	// A→C, B→E, E→B.
	if len(got) != 3 {
		t.Fatalf("|FP| = %d, want 3: %v", len(got), got)
	}
	want := map[string]bool{
		itemset.Of(0).Key(): true,
		itemset.Of(1).Key(): true,
		itemset.Of(4).Key(): true,
	}
	for _, p := range got {
		if !want[p.Key()] {
			t.Errorf("unexpected pseudo-closed %v", p)
		}
	}
}

func TestPseudoClosedEmptySetCase(t *testing.T) {
	// Context where item 0 is universal: h(∅) = {0} ≠ ∅, so ∅ is
	// pseudo-closed and the DG basis contains ∅ → {0}.
	d, err := dataset.FromTransactions([][]int{{0, 1}, {0, 2}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	c := d.Context()
	got := PseudoClosed(c, 1)
	foundEmpty := false
	for _, p := range got {
		if p.Len() == 0 {
			foundEmpty = true
		}
	}
	if !foundEmpty {
		t.Errorf("∅ should be pseudo-closed, got %v", got)
	}
}

func TestMaximalClassic(t *testing.T) {
	c := classic(t)
	fc := ClosedItemsets(c, 2)
	max := fc.Maximal()
	if len(max) != 1 || !max[0].Items.Equal(itemset.Of(0, 1, 2, 4)) {
		t.Errorf("Maximal = %v", max)
	}
}

func TestBottomClassic(t *testing.T) {
	c := classic(t)
	fc := ClosedItemsets(c, 2)
	bot, ok := fc.Bottom()
	if !ok || bot.Items.Len() != 0 || bot.Support != 5 {
		t.Errorf("Bottom = %v,%v", bot, ok)
	}
}

func TestCoverPairsClassic(t *testing.T) {
	c := classic(t)
	fc := ClosedItemsets(c, 2)
	list := fc.All()
	pairs := CoverPairs(list)
	// Hand-computed Hasse diagram has 7 edges:
	// ∅→C, ∅→BE, C→AC, C→BCE, BE→BCE, AC→ABCE, BCE→ABCE.
	if len(pairs) != 7 {
		t.Fatalf("%d cover pairs, want 7", len(pairs))
	}
	type edge struct{ from, to string }
	want := map[edge]bool{
		{itemset.Of().Key(), itemset.Of(2).Key()}:                 true,
		{itemset.Of().Key(), itemset.Of(1, 4).Key()}:              true,
		{itemset.Of(2).Key(), itemset.Of(0, 2).Key()}:             true,
		{itemset.Of(2).Key(), itemset.Of(1, 2, 4).Key()}:          true,
		{itemset.Of(1, 4).Key(), itemset.Of(1, 2, 4).Key()}:       true,
		{itemset.Of(0, 2).Key(), itemset.Of(0, 1, 2, 4).Key()}:    true,
		{itemset.Of(1, 2, 4).Key(), itemset.Of(0, 1, 2, 4).Key()}: true,
	}
	for _, p := range pairs {
		e := edge{list[p[0]].Items.Key(), list[p[1]].Items.Key()}
		if !want[e] {
			t.Errorf("unexpected cover %v → %v", list[p[0]].Items, list[p[1]].Items)
		}
	}
}

func TestSupportInvariantFIvsFC(t *testing.T) {
	// §2 of the paper: supp(I) = supp(h(I)); so every frequent
	// itemset's support must be recoverable from FC alone.
	c := classic(t)
	fam := FrequentItemsets(c, 2)
	fc := ClosedItemsets(c, 2)
	for _, f := range fam.All() {
		got, ok := fc.SupportOf(f.Items)
		if !ok || got != f.Support {
			t.Errorf("SupportOf(%v) = %d,%v want %d", f.Items, got, ok, f.Support)
		}
	}
}

func TestIsFreeEmptyAndSingletons(t *testing.T) {
	c := classic(t)
	fam := FrequentItemsets(c, 1)
	if !IsFree(c, fam, itemset.Empty(), 5) {
		t.Error("∅ must be free")
	}
	// D has support 1 ≠ 5 → free.
	if !IsFree(c, fam, itemset.Of(3), 1) {
		t.Error("D should be free")
	}
	// AC has supp 3 = supp(A) → not free.
	if IsFree(c, fam, itemset.Of(0, 2), 3) {
		t.Error("AC should not be free")
	}
}
