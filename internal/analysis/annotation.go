package analysis

import (
	"go/ast"
	"strings"
)

// Annotation markers recognized in function doc comments. A marker
// occupies its own comment line, optionally followed by a reason:
//
//	//ar:noalloc
//	//ar:nocancel bounded by transaction width; WalkPass checks per pass
//
// The contract of each marker is documented in docs/ARCHITECTURE.md
// ("Enforced invariants").
const (
	// NoAlloc marks a function whose body must not allocate; enforced
	// by the noalloc analyzer.
	NoAlloc = "noalloc"
	// NoCancel exempts a bounded recursive walk from the ctxcancel
	// analyzer; the rest of the line must state why the recursion
	// terminates quickly without a context check.
	NoCancel = "nocancel"
)

// HasAnnotation reports whether the function's doc comment carries
// the //ar:<name> marker.
func HasAnnotation(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == "ar:"+name || strings.HasPrefix(text, "ar:"+name+" ") {
			return true
		}
	}
	return false
}
