// Package good mirrors the QueryService snapshot idiom exactly:
// lock-free reads through atomic Load, mining outside every lock,
// publication through Store/CompareAndSwap, and the TryLock-guarded
// single-flight refresh. The atomicsnapshot analyzer must stay silent
// on every line; any diagnostic here is a false positive.
package good

import (
	"context"
	"sync"
	"sync/atomic"
)

type state struct{ rules []int }

type service struct {
	flight sync.Mutex
	st     atomic.Pointer[state]
}

// MineContext stands in for a miner entry point.
func MineContext(ctx context.Context) *state { return &state{} }

// Query is the lock-free read path: one atomic Load, no mutex.
func (s *service) Query() []int {
	cur := s.st.Load()
	if cur == nil {
		return nil
	}
	return cur.rules
}

// Refresh mines outside any lock and publishes the finished snapshot.
func (s *service) Refresh(ctx context.Context) {
	next := MineContext(ctx)
	s.st.Store(next)
}

// Single coalesces concurrent refreshes: the TryLock-guarded re-mine
// is the sanctioned single-flight idiom — it blocks no readers, and
// losers return instead of queueing.
func (s *service) Single(ctx context.Context) {
	if !s.flight.TryLock() {
		return
	}
	defer s.flight.Unlock()
	s.st.Store(MineContext(ctx))
}

// Publish swaps in a snapshot only if it is still the successor of
// old, the refresh loop's lost-update guard.
func (s *service) Publish(old, next *state) bool {
	return s.st.CompareAndSwap(old, next)
}

// Bookkeep shows an ordinary short lock span with no mining inside:
// mutexes are fine, just not across mining.
func (s *service) Bookkeep(note func()) {
	s.flight.Lock()
	note()
	s.flight.Unlock()
}
