// Package bad violates the snapshot-serving discipline: a raw access
// to an atomic snapshot field and mining/basis construction performed
// while a mutex is held. Each flagged line carries a // want comment;
// the package is type-checked by analysistest, never linked.
package bad

import (
	"context"
	"sync"
	"sync/atomic"

	"closedrules/internal/basis"
)

type state struct{ rules []int }

type service struct {
	mu sync.Mutex
	st atomic.Pointer[state]
}

// MineContext stands in for a miner entry point.
func MineContext(ctx context.Context) *state { return &state{} }

// refresh re-mines while holding the lock, stalling every reader on
// the mining run.
func (s *service) refresh(ctx context.Context) {
	s.mu.Lock()
	next := MineContext(ctx) // want `MineContext called while s\.mu is locked`
	s.mu.Unlock()
	s.st.Store(next)
}

// rebuild holds the lock (deferred unlock, so the span is the whole
// block) across a basis construction.
func (s *service) rebuild(ctx context.Context, b basis.Builder, in basis.BuildInput) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rs, _ := b.Build(ctx, in) // want `Build called while s\.mu is locked`
	_ = rs
}

// peek takes the address of the atomic field, sidestepping its
// method set.
func (s *service) peek() *state {
	p := &s.st // want `atomic field s\.st accessed directly`
	return p.Load()
}
