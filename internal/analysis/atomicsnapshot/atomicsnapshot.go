// Package atomicsnapshot enforces the snapshot-serving discipline the
// QueryService established in PR 2: a struct field of a sync/atomic
// type (atomic.Pointer[T] above all) is only ever touched through its
// atomic methods — Load, Store, Swap, CompareAndSwap — never read,
// written, copied or address-taken as a raw field; and no mutex is
// held across a mining or basis-construction call. Together the two
// rules pin the architecture's serving contract: readers take
// lock-free snapshots, writers publish fully built state, and the
// expensive work (MineContext, basis Build) happens outside every
// lock so queries are never blocked on a re-mine.
//
// The mutex rule is a statement-order approximation, not a CFG
// analysis: within each block, the span between a Lock()/RLock() and
// the matching Unlock on the same receiver — or the rest of the block
// when the unlock is deferred — must not call MineContext-shaped
// functions (Mine*, and Build/Basis of the basis layer).
package atomicsnapshot

import (
	"go/ast"
	"go/types"
	"strings"

	"closedrules/internal/analysis"
)

// Analyzer is the atomicsnapshot analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicsnapshot",
	Doc:  "atomic snapshot fields are only touched via atomic methods; no mutex is held across mining",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		checkAtomicFieldAccess(pass, f)
		checkLockedMining(pass, f)
	}
	return nil, nil
}

// checkAtomicFieldAccess flags raw accesses to struct fields whose
// type is declared in sync/atomic.
func checkAtomicFieldAccess(pass *analysis.Pass, f *ast.File) {
	analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field := selectedAtomicField(pass, sel)
		if field == nil {
			return true
		}
		if len(stack) > 0 {
			if parent, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && parent.X == sel {
				// qs.st.Load(...): the selection continues into the
				// atomic type's own method set, which is the only
				// sanctioned access.
				return true
			}
		}
		pass.Reportf(sel.Sel.Pos(),
			"atomic field %s.%s accessed directly; snapshot fields must only be touched via their atomic methods (Load/Store/Swap/CompareAndSwap)",
			types.ExprString(sel.X), sel.Sel.Name)
		return true
	})
}

// selectedAtomicField resolves sel to a struct field whose type is
// declared in sync/atomic, or nil.
func selectedAtomicField(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return nil
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	tn := named.Obj()
	if tn.Pkg() == nil || tn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	return obj
}

// mutexKind classifies receiver types that hold exclusion.
func mutexKind(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkLockedMining flags mining/basis calls inside lock spans.
func checkLockedMining(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		checkBlock(pass, block)
		return true
	})
}

// checkBlock scans one statement list for Lock…Unlock spans.
func checkBlock(pass *analysis.Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		recv, op := lockCall(pass, stmt)
		// Only unconditional Lock/RLock opens a span: a TryLock-guarded
		// region is the sanctioned single-flight idiom (refresh holds
		// its TryLock across a re-mine precisely so concurrent cycles
		// coalesce; it blocks no readers).
		if recv == "" || (op != "Lock" && op != "RLock") {
			continue
		}
		// Span: until the matching unlock in this block, or the rest
		// of the block when the unlock is deferred (or absent).
		span := block.List[i+1:]
		for j := i + 1; j < len(block.List); j++ {
			if r, o := lockCall(pass, block.List[j]); r == recv && (o == "Unlock" || o == "RUnlock") {
				span = block.List[i+1 : j]
				break
			}
		}
		for _, s := range span {
			reportMiningCalls(pass, s, recv)
		}
	}
}

// lockCall matches stmt as `recv.Op()` on a sync.Mutex/RWMutex,
// returning the receiver's expression string and the method name. A
// deferred unlock deliberately does not match: it releases at
// function exit, so the span correctly extends to the end of the
// block.
func lockCall(pass *analysis.Pass, stmt ast.Stmt) (string, string) {
	var call *ast.CallExpr
	if s, ok := stmt.(*ast.ExprStmt); ok {
		if c, ok := s.X.(*ast.CallExpr); ok {
			call = c
		}
	}
	if call == nil {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", ""
	}
	if !mutexKind(pass.TypesInfo.Types[sel.X].Type) {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

// miningCalleeNames are the unmistakably mining-shaped entry points.
var miningCalleeNames = map[string]bool{
	"MineContext":         true,
	"MineParallelContext": true,
	"MineDiffsetContext":  true,
	"MineClosed":          true,
	"MineFrequent":        true,
}

// reportMiningCalls flags mining/basis-construction calls under stmt.
func reportMiningCalls(pass *analysis.Pass, stmt ast.Stmt, lockRecv string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A closure is not executed where it is written; deferred
			// or goroutine-run bodies run outside the span.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, pkgPath := calleeNameAndPkg(pass, call)
		if name == "" {
			return true
		}
		mining := miningCalleeNames[name] ||
			((name == "Build" || name == "Basis") && strings.Contains(pkgPath, "internal/basis"))
		if mining {
			pass.Reportf(call.Pos(),
				"%s called while %s is locked; mine and build bases outside the lock, then publish the finished snapshot", name, lockRecv)
		}
		return true
	})
}

// calleeNameAndPkg resolves a call's function name and package path.
func calleeNameAndPkg(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", ""
	}
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	return fn.Name(), path
}
