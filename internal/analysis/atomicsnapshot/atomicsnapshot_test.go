package atomicsnapshot_test

import (
	"testing"

	"closedrules/internal/analysis/analysistest"
	"closedrules/internal/analysis/atomicsnapshot"
)

// TestBad pins the violation surface: raw atomic-field access and
// mining or basis construction inside a lock span (explicit unlock
// and deferred unlock both).
func TestBad(t *testing.T) {
	analysistest.Run(t, "testdata/bad", atomicsnapshot.Analyzer)
}

// TestGood pins the false-positive surface: the QueryService read and
// publish paths and the TryLock single-flight refresh must pass
// untouched.
func TestGood(t *testing.T) {
	analysistest.Run(t, "testdata/good", atomicsnapshot.Analyzer)
}
