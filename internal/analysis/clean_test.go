package analysis_test

import (
	"testing"

	"closedrules/internal/analysis/analysistest"
	"closedrules/internal/analysis/atomicsnapshot"
	"closedrules/internal/analysis/bitsetalias"
	"closedrules/internal/analysis/ctxcancel"
	"closedrules/internal/analysis/noalloc"
	"closedrules/internal/analysis/registrycheck"
)

// TestCleanIdioms runs the full arvet suite over a condensed copy of
// the repo's real architecture (testdata/clean) and requires total
// silence: the suite-wide false-positive pin. Per-analyzer bad/good
// packages live next to each analyzer; this test is the one place
// all five run together, the way cmd/arvet runs them.
func TestCleanIdioms(t *testing.T) {
	analysistest.Run(t, "testdata/clean",
		atomicsnapshot.Analyzer,
		bitsetalias.Analyzer,
		ctxcancel.Analyzer,
		noalloc.Analyzer,
		registrycheck.Analyzer,
	)
}
