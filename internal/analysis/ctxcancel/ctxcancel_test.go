package ctxcancel_test

import (
	"testing"

	"closedrules/internal/analysis/analysistest"
	"closedrules/internal/analysis/ctxcancel"
)

// TestBad pins the two rules: a recursive mining loop with the
// cancellation check deleted is flagged, and so is an ignored context
// parameter.
func TestBad(t *testing.T) {
	analysistest.Run(t, "testdata/bad", ctxcancel.Analyzer)
}

// TestGood pins the false-positive surface: the repo's real
// cancellation idioms must pass untouched.
func TestGood(t *testing.T) {
	analysistest.Run(t, "testdata/good", ctxcancel.Analyzer)
}
