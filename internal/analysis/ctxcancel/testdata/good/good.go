// Package good mirrors the repo's sanctioned cancellation idioms —
// the per-extension ctx.Err() check of the depth-first miners, the
// per-1024-transactions check of levelwise.WalkPass, and a bounded
// descent opted out with //ar:nocancel. The ctxcancel analyzer must
// stay silent on every line; any diagnostic here is a false positive.
package good

import "context"

// extend recurses with ctx.Err consulted every iteration — the
// charm.extend / eclat.mine shape.
func extend(ctx context.Context, ext []int) error {
	for i := range ext {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := extend(ctx, ext[i+1:]); err != nil {
			return err
		}
	}
	return nil
}

// walkPass checks ctx once per 1024 transactions and hands the inner
// descent to a bounded annotated helper — the levelwise.WalkPass
// shape.
func walkPass(ctx context.Context, txs [][]int) error {
	for o, tx := range txs {
		if o&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		walk(tx)
	}
	return nil
}

// walk descends one transaction's tail; cancellation is walkPass's
// job, checked once per 1024 transactions.
//
//ar:nocancel bounded by the transaction's length
func walk(tx []int) {
	for i := range tx {
		walk(tx[i+1:])
	}
}

// recClosure is the closure-bound recursion idiom with the check in
// place, as the dEclat recursion writes it.
func recClosure(ctx context.Context, ext []int) error {
	var rec func(tail []int) error
	rec = func(tail []int) error {
		for i := range tail {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := rec(tail[i+1:]); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(ext)
}
