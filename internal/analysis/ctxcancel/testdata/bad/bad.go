// Package bad holds the ctxcancel violations: depth-first mining
// loops that recurse without ever consulting their context, and a
// declared context parameter the function ignores. Each flagged line
// carries a // want comment; the package is type-checked by
// analysistest, never linked.
package bad

import "context"

// descend is the depth-first miner shape with its cancellation check
// deleted: the loop recurses but never consults ctx, so a cancelled
// run keeps mining to completion.
func descend(ctx context.Context, ext []int) error {
	for i := range ext { // want `recursive mining loop has no context cancellation check`
		if err := descend(ctx, ext[i+1:]); err != nil {
			return err
		}
	}
	return nil
}

// mineAll drives a recursive closure that ignores cancellation, and
// never touches its own ctx either — the shape of a new miner shipped
// uncancellable.
func mineAll(ctx context.Context, ext []int) { // want `context parameter ctx is never used`
	var rec func(tail []int)
	rec = func(tail []int) {
		for i := range tail { // want `recursive mining loop has no context cancellation check`
			rec(tail[i+1:])
		}
	}
	rec(ext)
}
