// Package ctxcancel enforces the repo's cancellation invariant: every
// depth-first or level-wise mining loop must observe its context on
// each recursion or pass, so a cancelled context aborts a run within
// one extension step (the contract miner.ClosedMiner documents).
//
// Two rules are checked:
//
//  1. A loop that performs a recursive call — the shape of every
//     depth-first miner (charm.extend, eclat.mine, fpgrowth.mineTree)
//     — must contain a ctx.Err() or ctx.Done() check in an enclosing
//     loop body of the same function. Bounded recursions that
//     deliberately defer cancellation to a coarser granularity (the
//     levelwise trie walk, checked per WalkPass) opt out with an
//     //ar:nocancel annotation stating the reason.
//
//  2. A declared context.Context parameter must actually be used:
//     a function that accepts ctx and ignores it can neither be
//     cancelled nor forward cancellation, which is how a new miner
//     would silently ship uncancellable.
package ctxcancel

import (
	"go/ast"
	"go/types"

	"closedrules/internal/analysis"
)

// Analyzer is the ctxcancel analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcancel",
	Doc:  "mining loops must reach a context cancellation check on each recursion or pass",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		litOwner := literalOwners(pass, f)
		checkRecursiveLoops(pass, f, litOwner)
		checkUnusedCtxParams(pass, f)
	}
	return nil, nil
}

// literalOwners maps each function literal directly bound to an
// identifier (rec := func(...) / var rec = func(...) / rec = func(...))
// to that identifier's object, so calls through the variable are
// recognized as recursion into the literal.
func literalOwners(pass *analysis.Pass, f *ast.File) map[*ast.FuncLit]types.Object {
	owners := map[*ast.FuncLit]types.Object{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		lit, ok := rhs.(*ast.FuncLit)
		if !ok {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			owners[lit] = obj
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			owners[lit] = obj
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i := range st.Lhs {
				if i < len(st.Rhs) {
					bind(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i := range st.Names {
				if i < len(st.Values) {
					bind(st.Names[i], st.Values[i])
				}
			}
		}
		return true
	})
	return owners
}

// checkRecursiveLoops reports loops that recurse without a
// cancellation check (rule 1).
func checkRecursiveLoops(pass *analysis.Pass, f *ast.File, litOwner map[*ast.FuncLit]types.Object) {
	// Loops already reported, so one loop with several recursive calls
	// yields one diagnostic.
	reported := map[ast.Node]bool{}
	analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeObject(pass, call)
		if callee == nil {
			return true
		}
		// Find the innermost enclosing function that the call recurses
		// into, and the loops between it and the call.
		var loops []ast.Node
		for i := len(stack) - 1; i >= 0; i-- {
			switch fn := stack[i].(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, stack[i])
			case *ast.FuncLit:
				if litOwner[fn] == callee {
					report(pass, f, stack[:i+1], loops, reported)
					return true
				}
				// A literal with its own identity ends the search: a
				// call to the outer function from inside a nested
				// closure is not this loop's recursion.
			case *ast.FuncDecl:
				if fn.Name != nil && pass.TypesInfo.Defs[fn.Name] == callee {
					report(pass, f, stack[:i+1], loops, reported)
				}
				return true
			}
		}
		return true
	})
}

// report flags the innermost loop of a recursive call when no
// enclosing loop body contains a cancellation check, unless the
// enclosing declared function is annotated //ar:nocancel.
func report(pass *analysis.Pass, f *ast.File, stack []ast.Node, loops []ast.Node, reported map[ast.Node]bool) {
	if len(loops) == 0 {
		// Recursion outside a loop: each level is one extension step;
		// the per-branch check the miners need lives in the loop that
		// drives the recursion, so a loop-free recursive call is not
		// a mining loop.
		return
	}
	for _, l := range loops {
		if hasCancelCheck(pass, loopBody(l)) {
			return
		}
	}
	if decl := enclosingDecl(stack); decl != nil && analysis.HasAnnotation(decl.Doc, analysis.NoCancel) {
		return
	}
	inner := loops[0]
	if reported[inner] {
		return
	}
	reported[inner] = true
	pass.Reportf(inner.Pos(),
		"recursive mining loop has no context cancellation check; check ctx.Err() each iteration or annotate the function //ar:nocancel with the bound that makes it safe")
}

// calleeObject resolves the called function or method to its object,
// or nil for dynamic calls (interface methods, computed expressions).
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// enclosingDecl returns the top FuncDecl of the stack, if any.
func enclosingDecl(stack []ast.Node) *ast.FuncDecl {
	for _, n := range stack {
		if d, ok := n.(*ast.FuncDecl); ok {
			return d
		}
	}
	return nil
}

// loopBody returns the body of a for or range statement.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// hasCancelCheck reports whether the block contains a call to Err or
// Done on a context.Context value.
func hasCancelCheck(pass *analysis.Pass, body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return true
		}
		if isContext(pass.TypesInfo.Types[sel.X].Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkUnusedCtxParams reports declared context parameters that the
// function body never references (rule 2).
func checkUnusedCtxParams(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || fn.Type.Params == nil {
			continue
		}
		if analysis.HasAnnotation(fn.Doc, analysis.NoCancel) {
			continue
		}
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				obj := pass.TypesInfo.Defs[name]
				if obj == nil || !isContext(obj.Type()) {
					continue
				}
				if !usesObject(pass, fn.Body, obj) {
					pass.Reportf(name.Pos(),
						"context parameter %s is never used: the function cannot observe or forward cancellation; use it or rename it to _", name.Name)
				}
			}
		}
	}
}

// usesObject reports whether any identifier in body resolves to obj.
func usesObject(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
