// Package good mirrors the sanctioned registration idioms: literal
// lowercase names registered once from init, the same name reused
// across the distinct RegisterClosed/RegisterFrequent namespaces, a
// builder whose Name() matches its registration, and the root
// package's forwarding re-export shape. The registry analyzer must
// stay silent on every line; any diagnostic here is a false positive.
package good

import (
	"context"

	"closedrules/internal/basis"
	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/miner"
)

func init() {
	miner.RegisterClosed("good-miner", goodMiner{})
	miner.RegisterFrequent("good-miner", goodMiner{})
	basis.Register("good-basis", goodBasis{})
}

// The genclose idiom: one package registering its sequential and
// parallel generator-tracking variants as two distinct literal names
// from a second init function. Both registrations are sanctioned.
func init() {
	miner.RegisterClosed("good-genminer", genMiner{})
	miner.RegisterClosed("pgood-genminer", genMiner{})
}

// genMiner mirrors a generator-tracking closed miner (the
// genclose/pgenclose registration shape).
type genMiner struct{}

func (genMiner) MineClosed(ctx context.Context, d *dataset.Dataset, minSup int) ([]closedset.Closed, error) {
	return nil, ctx.Err()
}

func (genMiner) TracksGenerators() bool { return true }

// RegisterAlias is the root-package re-export shape: forwarding a
// name parameter through is not a registration — the discipline
// applies at the wrapper's call sites.
func RegisterAlias(name string, m miner.ClosedMiner) {
	miner.RegisterClosed(name, m)
}

type goodMiner struct{}

func (goodMiner) MineClosed(ctx context.Context, d *dataset.Dataset, minSup int) ([]closedset.Closed, error) {
	return nil, ctx.Err()
}

func (goodMiner) TracksGenerators() bool { return false }

func (goodMiner) MineFrequent(ctx context.Context, d *dataset.Dataset, minSup int) ([]itemset.Counted, error) {
	return nil, ctx.Err()
}

type goodBasis struct{}

func (goodBasis) Name() string { return "good-basis" }

func (goodBasis) Requirements() basis.Requirements { return basis.Requirements{} }

func (goodBasis) Build(ctx context.Context, in basis.BuildInput) (basis.RuleSet, error) {
	return basis.RuleSet{}, ctx.Err()
}
