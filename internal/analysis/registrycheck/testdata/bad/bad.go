// Package bad holds the registration-discipline violations against
// the real miner and basis registries: a non-canonical name, a
// duplicate, a computed name, a registration outside init, and a
// builder whose Name() drifts from its registration. Each flagged
// line carries a // want comment; the package is type-checked by
// analysistest, never linked (the init here never runs).
package bad

import (
	"context"

	"closedrules/internal/basis"
	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/miner"
)

func init() {
	miner.RegisterClosed("Fake-Miner", fakeMiner{}) // want `not lowercase`
	miner.RegisterClosed("fake", fakeMiner{})
	miner.RegisterClosed("fake", fakeMiner{}) // want `duplicate registration`
	name := "computed"
	miner.RegisterFrequent(name, fakeFreq{}) // want `name must be a string literal`
	basis.Register("drifted", drifted{})     // want `registered as "drifted" but its Name\(\) returns "original"`
}

// setup registers outside init, where the registration either never
// runs or races the registry.
func setup() {
	miner.RegisterClosed("late", fakeMiner{}) // want `must be called from an init function`
}

type fakeMiner struct{}

func (fakeMiner) MineClosed(ctx context.Context, d *dataset.Dataset, minSup int) ([]closedset.Closed, error) {
	return nil, ctx.Err()
}

func (fakeMiner) TracksGenerators() bool { return false }

type fakeFreq struct{}

func (fakeFreq) MineFrequent(ctx context.Context, d *dataset.Dataset, minSup int) ([]itemset.Counted, error) {
	return nil, ctx.Err()
}

type drifted struct{}

func (drifted) Name() string { return "original" }

func (drifted) Requirements() basis.Requirements { return basis.Requirements{} }

func (drifted) Build(ctx context.Context, in basis.BuildInput) (basis.RuleSet, error) {
	return basis.RuleSet{}, ctx.Err()
}

var _ = setup
