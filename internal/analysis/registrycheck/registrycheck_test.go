package registrycheck_test

import (
	"testing"

	"closedrules/internal/analysis/analysistest"
	"closedrules/internal/analysis/registrycheck"
)

// TestBad pins the violation surface: non-canonical and computed
// names, duplicates, registration outside init, and Name() drift.
func TestBad(t *testing.T) {
	analysistest.Run(t, "testdata/bad", registrycheck.Analyzer)
}

// TestGood pins the false-positive surface: canonical registrations,
// the per-function duplicate namespaces, and the root package's
// forwarding wrappers must pass untouched.
func TestGood(t *testing.T) {
	analysistest.Run(t, "testdata/good", registrycheck.Analyzer)
}
