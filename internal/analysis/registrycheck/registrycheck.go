// Package registrycheck enforces the registration discipline of the
// miner and basis registries (internal/miner, internal/basis): each
// algorithm package registers from an init function, under a literal,
// canonical, lowercase name, at most once per name — and a basis
// builder's Name() method must return exactly the name it was
// registered under. These are the copy-paste drifts a new plugin
// (GenClose, the Balcázar and Hamrouni bases) is most likely to ship:
// a registration pasted from a sibling package with the old name, a
// Name() that disagrees with the registration, or a Register call
// moved out of init where it either never runs or races the registry.
package registrycheck

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"closedrules/internal/analysis"
)

// Analyzer is the registry analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "registry",
	Doc:  "miner and basis registrations are literal canonical names, made once, from init",
	Run:  run,
}

// registerFuncs names the registration entry points, keyed by the
// import-path suffix of the registry package.
var registerFuncs = map[string]map[string]bool{
	"internal/miner": {"RegisterClosed": true, "RegisterFrequent": true},
	"internal/basis": {"Register": true},
}

func run(pass *analysis.Pass) (any, error) {
	seen := map[string]ast.Node{} // canonical registered name → first call
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := registrationCallee(pass, call)
			if fn == nil {
				return true
			}
			if isForwardingWrapper(pass, call, stack) {
				// The root package re-exports the registries
				// (RegisterClosedMiner et al.); a wrapper that passes
				// its own name parameter through is not a
				// registration — the discipline applies at the
				// wrapper's call sites, which resolve to the same
				// registry functions and are checked in their own
				// packages.
				return true
			}
			if !insideInit(stack) {
				pass.Reportf(call.Pos(),
					"%s must be called from an init function, so registration runs exactly once at package load", fn.Name())
			}
			if len(call.Args) < 1 {
				return true
			}
			name, ok := literalString(call.Args[0])
			if !ok {
				pass.Reportf(call.Args[0].Pos(),
					"registration name must be a string literal, so the registered name is auditable and canonical at compile time")
				return true
			}
			checkName(pass, call, fn.Name(), name)
			// Each registration function keeps its own namespace
			// (RegisterClosed and RegisterFrequent are distinct maps).
			key := fn.Name() + "\x00" + canonical(name)
			if prev, dup := seen[key]; dup {
				pass.Reportf(call.Pos(),
					"duplicate registration of %q (canonical %q, first registered at %s) would panic at package load",
					name, canonical(name), pass.Fset.Position(prev.Pos()))
			} else {
				seen[key] = call
			}
			if fn.Name() == "Register" && len(call.Args) >= 2 {
				checkBuilderName(pass, call.Args[1], name)
			}
			return true
		})
	}
	return nil, nil
}

// checkName verifies the literal is non-empty, trimmed and lowercase.
func checkName(pass *analysis.Pass, call *ast.CallExpr, fn, name string) {
	switch {
	case strings.TrimSpace(name) == "":
		pass.Reportf(call.Args[0].Pos(), "%s with an empty name panics at package load", fn)
	case name != strings.TrimSpace(name):
		pass.Reportf(call.Args[0].Pos(), "registration name %q has surrounding whitespace; register the trimmed name", name)
	case name != strings.ToLower(name):
		pass.Reportf(call.Args[0].Pos(), "registration name %q is not lowercase; register the canonical lowercase form", name)
	}
}

// checkBuilderName cross-checks a basis builder's Name() method
// against the name it is registered under. The builder argument must
// be a value of a type declared in this package whose Name method
// returns a single string literal; other shapes are skipped (the
// method may be inherited or computed).
func checkBuilderName(pass *analysis.Pass, arg ast.Expr, registered string) {
	t := pass.TypesInfo.Types[arg].Type
	if t == nil {
		return
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Name" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if receiverNamed(pass, fd) != named.Obj() {
				continue
			}
			lit, ok := singleStringReturn(fd.Body)
			if !ok {
				return
			}
			if lit != registered {
				pass.Reportf(arg.Pos(),
					"builder %s is registered as %q but its Name() returns %q; the two must match so RuleSet provenance resolves back through the registry",
					named.Obj().Name(), registered, lit)
			}
			return
		}
	}
}

// receiverNamed resolves a method declaration's receiver type object.
func receiverNamed(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) == 0 {
		return nil
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[tt]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[tt]
		default:
			return nil
		}
	}
}

// singleStringReturn matches a body of exactly `return "lit"`.
func singleStringReturn(body *ast.BlockStmt) (string, bool) {
	if len(body.List) != 1 {
		return "", false
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return "", false
	}
	return literalString(ret.Results[0])
}

// literalString decodes a string literal expression.
func literalString(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// registrationCallee returns the called registration function when
// the call targets one of the registry packages, else nil.
func registrationCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	for suffix, names := range registerFuncs {
		if strings.HasSuffix(fn.Pkg().Path(), suffix) && names[fn.Name()] {
			return fn
		}
	}
	return nil
}

// isForwardingWrapper reports whether the registration call forwards
// the name parameter of its enclosing function declaration.
func isForwardingWrapper(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) < 1 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if pass.TypesInfo.Defs[name] == obj {
					return true
				}
			}
		}
		return false
	}
	return false
}

// insideInit reports whether the stack passes through a func init
// declaration.
func insideInit(stack []ast.Node) bool {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			return fd.Recv == nil && fd.Name.Name == "init"
		}
	}
	return false
}

// canonical mirrors miner.Canonical/basis.Canonical: lowercase with
// hyphens and underscores removed.
func canonical(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	name = strings.ReplaceAll(name, "-", "")
	name = strings.ReplaceAll(name, "_", "")
	return name
}
