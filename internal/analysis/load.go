package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package: the unit the driver
// hands to Run.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's source directory.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files holds the parsed syntax of the package's non-test files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo records the type-checker's resolution maps.
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// Load resolves the given `go list` patterns (e.g. "./...") to
// packages and type-checks each from source. Test files are not
// loaded — the invariants arvet enforces live in production code, and
// external-test packages would need a second type-check universe.
//
// Loading uses only the standard library: package enumeration shells
// out to `go list` (the go toolchain is the one tool the module
// already depends on), parsing is go/parser, and imports resolve
// through go/importer's source importer, which understands the module
// layout as long as the process runs inside the module.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// One shared source importer: it caches type-checked dependencies,
	// so the module's packages are checked once, not once per importer.
	imp := importer.ForCompiler(fset, "source", nil)
	var out []*Package
	for _, lp := range listed {
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks the single package rooted at dir
// without consulting `go list` — the entry point analysistest uses
// for testdata packages, which package patterns cannot name.
func LoadDir(dir string) (*Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var files []string
	for _, n := range names {
		files = append(files, filepath.Base(n))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return checkPackage(fset, imp, dir, dir, files)
}

// checkPackage parses the named files of one package and type-checks
// them with full resolution info.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// goList shells out to `go list -json` and decodes the package stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}
