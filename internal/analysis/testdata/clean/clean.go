// Package clean is the want-no-diagnostics pin for the entire arvet
// suite: a condensed copy of the repo's real architecture — the
// atomic-snapshot read path, the TryLock single-flight refresh, the
// depth-first miner with its per-extension ctx.Err() check, the
// WalkPass counting pass, an //ar:noalloc probe kernel over the real
// bitset package, distinct-destination in-place ops, and a canonical
// init-time registration. All five analyzers run over this package in
// one pass and must report nothing; any diagnostic here means a false
// positive against an idiom production code actually uses.
package clean

import (
	"context"
	"sync"
	"sync/atomic"

	"closedrules/internal/basis"
	"closedrules/internal/bitset"
	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/miner"
)

func init() {
	miner.RegisterClosed("clean-miner", cleanMiner{})
	basis.Register("clean-basis", cleanBasis{})
}

// snapshot is a fully built, immutable serving state.
type snapshot struct{ supports []int }

// service is the QueryService shape: readers Load a snapshot without
// locks; the refresh path mines outside the lock and publishes with
// Store.
type service struct {
	flight sync.Mutex
	st     atomic.Pointer[snapshot]
}

// Query is the lock-free read path.
func (s *service) Query(i int) int {
	cur := s.st.Load()
	if cur == nil || i >= len(cur.supports) {
		return 0
	}
	return cur.supports[i]
}

// Refresh is the single-flight re-mine: TryLock coalesces concurrent
// cycles, the mining happens under no reader-visible lock, and the
// finished snapshot is published atomically.
func (s *service) Refresh(ctx context.Context, ext []span) error {
	if !s.flight.TryLock() {
		return nil
	}
	defer s.flight.Unlock()
	next := &snapshot{}
	if err := mine(ctx, ext, func(sup int) {
		next.supports = append(next.supports, sup)
	}); err != nil {
		return err
	}
	s.st.Store(next)
	return nil
}

// span pairs a candidate with its extent.
type span struct {
	tids bitset.Set
	sup  int
}

// mine is the depth-first shape: ctx.Err() consulted at every
// extension before recursing.
func mine(ctx context.Context, ext []span, emit func(sup int)) error {
	for i, e := range ext {
		if err := ctx.Err(); err != nil {
			return err
		}
		emit(e.sup)
		var next []span
		for _, f := range ext[i+1:] {
			if sup := supportProbe(e.tids, f.tids); sup > 0 {
				next = append(next, span{tids: intersect(e.tids, f.tids), sup: sup})
			}
		}
		if len(next) > 0 {
			if err := mine(ctx, next, emit); err != nil {
				return err
			}
		}
	}
	return nil
}

// supportProbe is the popcount-only candidate probe, allocation-free
// through the annotated bitset kernel.
//
//ar:noalloc
func supportProbe(a, b bitset.Set) int {
	return a.IntersectionCount(b)
}

// intersect materializes a surviving candidate's extent into a fresh
// destination — distinct from both operands, per the in-place
// contract.
func intersect(a, b bitset.Set) bitset.Set {
	dst := bitset.New(a.Width())
	return dst.AndInto(a, b)
}

// countPass is the WalkPass shape: one pass over the transactions
// with ctx checked every 1024, the inner work unconditional.
func countPass(ctx context.Context, txs [][]int, visit func(o int)) error {
	for o := range txs {
		if o&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		visit(o)
	}
	return nil
}

// cleanMiner is a registry citizen registered under its canonical
// lowercase name from init.
type cleanMiner struct{}

func (cleanMiner) MineClosed(ctx context.Context, d *dataset.Dataset, minSup int) ([]closedset.Closed, error) {
	return nil, ctx.Err()
}

func (cleanMiner) TracksGenerators() bool { return false }

// cleanBasis is a builder whose Name() matches its registration.
type cleanBasis struct{}

func (cleanBasis) Name() string { return "clean-basis" }

func (cleanBasis) Requirements() basis.Requirements { return basis.Requirements{} }

func (cleanBasis) Build(ctx context.Context, in basis.BuildInput) (basis.RuleSet, error) {
	return basis.RuleSet{}, ctx.Err()
}

var _ = countPass
