// Package analysistest runs an analyzer over a golden testdata
// package and compares its diagnostics against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest (rebuilt
// on the repo's own internal/analysis framework, since the module is
// dependency-free).
//
// A testdata source line states its expected diagnostics as one or
// more quoted regular expressions:
//
//	s.AndInto(s, t) // want `receiver aliases argument`
//
// Every reported diagnostic must be matched by a want on its line,
// and every want must be matched by a diagnostic; a package with no
// want comments asserts the analyzer stays silent on it (the
// false-positive pin the repo's clean-idiom packages provide).
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"closedrules/internal/analysis"
)

// wantRe extracts the quoted expectations of one // want comment.
// Both Go string forms are accepted: `...` and "...".
var wantRe = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

// expectation is one // want entry: a compiled pattern at a line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the single package rooted at dir, applies the analyzers,
// and reports any mismatch between diagnostics and // want comments
// as test errors. dir is relative to the test's working directory
// (conventionally "testdata/<case>").
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	findings, err := analysis.Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}
	for _, f := range findings {
		if !claimWant(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", posOf(f), f.Message, f.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(w.file), w.line, w.pattern)
		}
	}
}

// claimWant marks and returns the first unmatched expectation on the
// finding's line whose pattern matches the message.
func claimWant(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Position.Filename || w.line != f.Position.Line {
			continue
		}
		if w.pattern.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every // want comment of the package.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(text[len("want "):], -1) {
					pat, err := unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}

// unquote decodes a want string in either quoting form.
func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}

// posOf renders a finding position relative to the testdata dir for
// readable failures.
func posOf(f analysis.Finding) string {
	return fmt.Sprintf("%s:%d:%d", filepath.Base(f.Position.Filename), f.Position.Line, f.Position.Column)
}
