package bitsetalias_test

import (
	"testing"

	"closedrules/internal/analysis/analysistest"
	"closedrules/internal/analysis/bitsetalias"
)

// TestBad pins the violation surface: the receiver aliasing an
// argument in each of the three in-place ops.
func TestBad(t *testing.T) {
	analysistest.Run(t, "testdata/bad", bitsetalias.Analyzer)
}

// TestGood pins the false-positive surface: distinct destinations and
// unrelated APIs reusing the op names must pass untouched.
func TestGood(t *testing.T) {
	analysistest.Run(t, "testdata/good", bitsetalias.Analyzer)
}
