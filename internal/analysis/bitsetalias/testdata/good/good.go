// Package good uses the in-place bitset ops with distinct
// destinations — the scratch-buffer idiom of the fpgrowth and titanic
// hot paths — plus an unrelated type that happens to reuse an op
// name. The bitsetalias analyzer must stay silent on every line; any
// diagnostic here is a false positive.
package good

import "closedrules/internal/bitset"

// scratch writes every result into a dedicated destination.
func scratch(dst, a, b bitset.Set) bitset.Set {
	dst.AndInto(a, b)
	dst.OrInto(a, b)
	return dst.AndNotInto(a, b)
}

// accumulator is an unrelated API reusing the AndInto name as a plain
// function (no receiver): not the bitset contract, not flagged.
type accumulator struct{ fn func(a, b int) int }

func (acc accumulator) apply(a, b int) int { return acc.fn(a, b) }

// AndInto here is a free function, not a method.
var AndInto = func(dst *int, a, b int) { *dst = a & b }

func use(a, b int) int {
	var out int
	AndInto(&out, a, b)
	return out
}
