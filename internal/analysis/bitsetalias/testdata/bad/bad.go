// Package bad aliases the receiver of the in-place bitset ops with an
// argument — the copy-paste misuse the chaining style invites. Each
// flagged line carries a // want comment; the package is type-checked
// by analysistest, never linked.
package bad

import "closedrules/internal/bitset"

// collapse reuses operands as destinations in all three ops.
func collapse(s, t bitset.Set) bitset.Set {
	s.AndInto(s, t)           // want `AndInto receiver s aliases an argument`
	t.OrInto(s, t)            // want `OrInto receiver t aliases an argument`
	return s.AndNotInto(t, s) // want `AndNotInto receiver s aliases an argument`
}
