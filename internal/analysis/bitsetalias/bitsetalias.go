// Package bitsetalias guards the in-place bitset API PR 3 introduced:
// the three-operand ops dst.AndInto(a, b) / OrInto / AndNotInto must
// not be called with the receiver aliasing an argument
// (s.AndInto(s, t)). The current word-parallel implementations would
// happen to tolerate it, but the API contract reserves the right to
// reorder reads and writes (SIMD batches, word-tiling), so aliasing
// is a misuse the type system cannot express — exactly the kind of
// latent bug a future optimization of the hot path would activate in
// every caller that leaned on the accident.
//
// Aliasing is detected syntactically: the receiver expression and an
// argument expression printing identically. Two distinct expressions
// referencing the same set (p := &s; p.AndInto(s, t)) are out of
// scope — that requires alias analysis; the check targets the
// copy-paste form the API's chaining style invites.
package bitsetalias

import (
	"go/ast"
	"go/types"

	"closedrules/internal/analysis"
)

// Analyzer is the bitsetalias analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "bitsetalias",
	Doc:  "in-place bitset ops must not be called with the receiver aliasing an argument",
	Run:  run,
}

// inPlaceOps are the three-operand destructive bitset operations.
var inPlaceOps = map[string]bool{
	"AndInto":    true,
	"OrInto":     true,
	"AndNotInto": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !inPlaceOps[sel.Sel.Name] {
				return true
			}
			// Require a real method whose receiver and argument types
			// agree, so an unrelated API that happens to reuse the
			// name is not flagged.
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() == nil {
				return true
			}
			recv := types.ExprString(sel.X)
			for _, arg := range call.Args {
				if types.ExprString(arg) == recv {
					pass.Reportf(call.Pos(),
						"%s receiver %s aliases an argument; in-place bitset ops may reorder reads and writes, so the destination must be distinct (use %s.%s on separate sets, or the two-operand form)",
						sel.Sel.Name, recv, recv, sel.Sel.Name)
					break
				}
			}
			return true
		})
	}
	return nil, nil
}
