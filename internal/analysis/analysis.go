// Package analysis is a self-contained static-analysis framework
// modeled on golang.org/x/tools/go/analysis, reduced to what the
// repo's own checkers (cmd/arvet) need. The module is intentionally
// dependency-free, so the framework is rebuilt here on the standard
// library alone: an Analyzer runs over one type-checked package at a
// time and reports position-anchored diagnostics.
//
// The five analyzers under internal/analysis/... encode the repo's
// mining invariants — cancellation coverage of mining loops
// (ctxcancel), allocation-free annotated hot paths (noalloc),
// registration discipline (registry), atomic-snapshot field hygiene
// (atomicsnapshot) and in-place bitset aliasing (bitsetalias) — so
// that the conventions PRs 1–5 established by review are machine
// checked as the miner and basis registries grow. See
// docs/ARCHITECTURE.md, "Enforced invariants".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check: a name, what it enforces, and
// the function that runs it over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run analyzes one package and reports findings via pass.Report.
	// The non-error return value is unused (kept for symmetry with
	// x/tools analyzers, whose Run returns a result).
	Run func(pass *Pass) (any, error)
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function, plus the Report sink for diagnostics.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files holds the package's parsed source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records type and object resolution for the package.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The driver
// prefixes the analyzer name when printing.
type Diagnostic struct {
	// Pos anchors the finding in the file set of the reporting pass.
	Pos token.Pos
	// Message states the violated invariant and, where useful, the fix.
	Message string
}

// Finding is a resolved diagnostic as the driver hands it to callers:
// positioned, attributed to its analyzer, ready to print.
type Finding struct {
	// Position is the resolved file:line:col of the diagnostic.
	Position token.Position
	// Analyzer is the name of the analyzer that produced it.
	Analyzer string
	// Message is the diagnostic message.
	Message string
}

// String renders the finding in the conventional file:line:col:
// message (analyzer) form used by go vet.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// Run executes every analyzer over the package and returns the
// findings sorted by position. Analyzer errors (not diagnostics)
// abort the run.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			out = append(out, Finding{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: name,
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// WithStack walks every node of f depth-first, calling fn with the
// node and the stack of its ancestors (outermost first, not including
// n itself). If fn returns false the node's children are skipped.
// It is the stand-in for x/tools' inspector.WithStack.
func WithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}
