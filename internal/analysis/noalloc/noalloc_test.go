package noalloc_test

import (
	"testing"

	"closedrules/internal/analysis/analysistest"
	"closedrules/internal/analysis/noalloc"
)

// TestBad pins the violation surface: direct allocations, transitive
// allocations through unannotated helpers, and unverifiable
// cross-package calls inside //ar:noalloc bodies.
func TestBad(t *testing.T) {
	analysistest.Run(t, "testdata/bad", noalloc.Analyzer)
}

// TestGood pins the false-positive surface: the probe shape with its
// panic path, math/bits intrinsics, and annotated callees — same
// package and cross package — must pass untouched.
func TestGood(t *testing.T) {
	analysistest.Run(t, "testdata/good", noalloc.Analyzer)
}
