// Package noalloc verifies the //ar:noalloc annotation: a function so
// marked — the PR-3 bitset probes and the other mining hot-path
// kernels — must not allocate on any non-panicking path. The
// annotation is the machine-checked form of the "popcount-only, no
// materialization" contract the vertical miners' probe loops rely on;
// without it, alloc creep in a probe helper silently undoes the
// allocation-free hot path.
//
// Enforced per annotated function, over its own body and the bodies
// of same-package functions it calls (transitively, cycle-safe):
//
//   - no make, new, or append
//   - no composite or function literals, no string concatenation or
//     string/[]byte/[]rune conversions
//   - no go or defer statements
//   - no address-taking (&x may force a heap escape)
//   - no calls that cannot be verified: dynamic calls, and calls into
//     other packages unless the callee is itself declared under
//     //ar:noalloc (math/bits is allowlisted as compiler intrinsics;
//     fmt in particular is always a diagnostic)
//
// Arguments of a builtin panic(...) call are exempt: panic paths are
// cold and terminal, so the width-mismatch panics of the bitset
// probes may format their message.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"

	"closedrules/internal/analysis"
)

// Analyzer is the noalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //ar:noalloc must not allocate outside panic paths",
	Run:  run,
}

// intrinsicPkgs are imported packages whose functions compile to
// allocation-free intrinsics.
var intrinsicPkgs = map[string]bool{
	"math/bits": true,
}

// allowedBuiltins never allocate (append, make and new are handled
// explicitly; panic starts an exempt cold path).
var allowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true,
	"min": true, "max": true, "real": true, "imag": true,
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:    pass,
		decls:   map[types.Object]*ast.FuncDecl{},
		memo:    map[*ast.FuncDecl][]analysis.Diagnostic{},
		foreign: map[string]*foreignFile{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					c.decls[obj] = fd
				}
			}
		}
	}
	seenPos := map[string]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !analysis.HasAnnotation(fd.Doc, analysis.NoAlloc) {
				continue
			}
			if fd.Body == nil {
				pass.Reportf(fd.Pos(), "//ar:noalloc function %s has no body to verify", fd.Name.Name)
				continue
			}
			for _, diag := range c.check(fd, map[*ast.FuncDecl]bool{}) {
				// A shared helper reached from several annotated roots
				// is reported once per offending position.
				key := pass.Fset.Position(diag.Pos).String() + "|" + diag.Message
				if !seenPos[key] {
					seenPos[key] = true
					pass.Report(diag)
				}
			}
		}
	}
	return nil, nil
}

// checker accumulates per-function verification results.
type checker struct {
	pass    *analysis.Pass
	decls   map[types.Object]*ast.FuncDecl
	memo    map[*ast.FuncDecl][]analysis.Diagnostic
	foreign map[string]*foreignFile // defining file → parsed syntax (nil on parse failure)
}

// foreignFile is the re-parsed syntax of a dependency source file,
// used to read //ar:noalloc annotations across package boundaries.
type foreignFile struct {
	fset *token.FileSet
	file *ast.File
}

// check returns the allocation diagnostics of fd's body plus those of
// every same-package callee, memoized. active guards cycles.
func (c *checker) check(fd *ast.FuncDecl, active map[*ast.FuncDecl]bool) []analysis.Diagnostic {
	if diags, ok := c.memo[fd]; ok {
		return diags
	}
	if active[fd] {
		return nil
	}
	active[fd] = true
	defer delete(active, fd)

	var diags []analysis.Diagnostic
	reportf := func(pos ast.Node, format string, args ...any) {
		diags = append(diags, analysis.Diagnostic{Pos: pos.Pos(), Message: fmt.Sprintf(format, args...)})
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			return c.checkCall(e, active, &diags)
		case *ast.CompositeLit:
			reportf(e, "composite literal allocates in //ar:noalloc path")
		case *ast.FuncLit:
			reportf(e, "function literal allocates in //ar:noalloc path")
			return false
		case *ast.GoStmt:
			reportf(e, "go statement allocates in //ar:noalloc path")
		case *ast.DeferStmt:
			reportf(e, "defer may allocate in //ar:noalloc path")
		case *ast.UnaryExpr:
			if e.Op.String() == "&" {
				reportf(e, "taking an address may force a heap allocation in //ar:noalloc path")
			}
		case *ast.BinaryExpr:
			if e.Op.String() == "+" && isString(c.pass.TypesInfo.Types[e.X].Type) {
				reportf(e, "string concatenation allocates in //ar:noalloc path")
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	c.memo[fd] = diags
	return diags
}

// checkCall classifies one call inside a noalloc-checked body. The
// return value tells the walker whether to descend into the call's
// children (false for exempt panic arguments).
func (c *checker) checkCall(call *ast.CallExpr, active map[*ast.FuncDecl]bool, diags *[]analysis.Diagnostic) bool {
	report := func(format string, args ...any) {
		*diags = append(*diags, analysis.Diagnostic{Pos: call.Pos(), Message: fmt.Sprintf(format, args...)})
	}
	fun := ast.Unparen(call.Fun)

	// Conversions: string/byte-slice/rune-slice conversions copy and
	// allocate; numeric and named-type conversions do not.
	if tv, ok := c.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		if allocatingConversion(tv.Type) {
			report("conversion to %s allocates in //ar:noalloc path", tv.Type)
		}
		return true
	}

	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[f.Sel]
	default:
		report("dynamic call cannot be proven allocation-free in //ar:noalloc path")
		return true
	}

	switch o := obj.(type) {
	case *types.Builtin:
		switch o.Name() {
		case "append":
			report("append allocates in //ar:noalloc path")
		case "make":
			report("make allocates in //ar:noalloc path")
		case "new":
			report("new allocates in //ar:noalloc path")
		case "panic":
			// Cold path: a panic terminates the run; its message may
			// allocate. Skip the arguments entirely.
			return false
		default:
			if !allowedBuiltins[o.Name()] {
				report("builtin %s is not allowlisted in //ar:noalloc path", o.Name())
			}
		}
		return true
	case *types.Func:
		pkg := o.Pkg()
		if pkg == nil || pkg != c.pass.Pkg {
			if pkg != nil && intrinsicPkgs[pkg.Path()] {
				return true
			}
			if c.annotatedElsewhere(o) {
				// Declared //ar:noalloc in its own package, where this
				// analyzer verifies it against its own body.
				return true
			}
			report("call to %s cannot be proven allocation-free in //ar:noalloc path (outside the checked package)", qualified(o))
			return true
		}
		callee, ok := c.decls[o]
		if !ok {
			report("call to %s cannot be proven allocation-free in //ar:noalloc path (no body found)", o.Name())
			return true
		}
		if analysis.HasAnnotation(callee.Doc, analysis.NoAlloc) {
			// Verified under its own annotation.
			return true
		}
		*diags = append(*diags, c.check(callee, active)...)
		return true
	case nil:
		report("unresolved call cannot be proven allocation-free in //ar:noalloc path")
		return true
	default:
		// Call through a variable (function value): dynamic.
		report("call through %s cannot be proven allocation-free in //ar:noalloc path", o.Name())
		return true
	}
}

// annotatedElsewhere reports whether the cross-package function o is
// declared under //ar:noalloc. The shared source importer records
// dependency positions in the pass's FileSet, so o.Pos() names the
// defining file; that file is re-parsed once (cached) and the
// declaration located by name and line. The annotation is trusted
// here, not re-verified: the analyzer checks its body when it runs
// over the defining package, which arvet always does (./...).
func (c *checker) annotatedElsewhere(o *types.Func) bool {
	pos := c.pass.Fset.Position(o.Pos())
	if !pos.IsValid() || pos.Filename == "" {
		return false
	}
	ff, ok := c.foreign[pos.Filename]
	if !ok {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, pos.Filename, nil, parser.ParseComments)
		if err == nil {
			ff = &foreignFile{fset: fset, file: f}
		}
		c.foreign[pos.Filename] = ff
	}
	if ff == nil {
		return false
	}
	for _, d := range ff.file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != o.Name() {
			continue
		}
		if ff.fset.Position(fd.Name.Pos()).Line == pos.Line {
			return analysis.HasAnnotation(fd.Doc, analysis.NoAlloc)
		}
	}
	return false
}

// allocatingConversion reports whether converting to t allocates
// (string and slice targets copy their contents).
func allocatingConversion(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Slice:
		return true
	case *types.Interface:
		return true
	}
	return false
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// qualified renders pkg.Name for diagnostics.
func qualified(f *types.Func) string {
	if f.Pkg() == nil {
		return f.Name()
	}
	return f.Pkg().Path() + "." + f.Name()
}
