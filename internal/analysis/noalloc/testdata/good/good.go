// Package good mirrors the repo's annotated hot-path kernels: the
// popcount probe shape with its width-mismatch panic, math/bits
// intrinsics, and a cross-package call into an //ar:noalloc bitset
// probe trusted under its own annotation. The noalloc analyzer must
// stay silent on every line; any diagnostic here is a false positive.
package good

import (
	"fmt"
	"math/bits"

	"closedrules/internal/bitset"
)

// intersectionCount is the bitset probe shape: a popcount over the
// word-wise AND. The panic arguments are a cold, terminal path and
// may format their message.
//
//ar:noalloc
func intersectionCount(a, b []uint64) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("width mismatch %d vs %d", len(a), len(b)))
	}
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w & b[i])
	}
	return n
}

// probe is the charm.probe shape: a cross-package call into a bitset
// probe that carries its own //ar:noalloc annotation, so it is
// trusted here and verified where it is declared.
//
//ar:noalloc
func probe(s, t bitset.Set) int {
	return s.IntersectionCount(t)
}

// viaKernel calls a same-package annotated kernel, trusted under its
// own annotation rather than re-verified.
//
//ar:noalloc
func viaKernel(a, b []uint64) int {
	return intersectionCount(a, b)
}
