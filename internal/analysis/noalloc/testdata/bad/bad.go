// Package bad holds the noalloc violations: //ar:noalloc bodies that
// allocate directly, through a same-package helper, or through an
// unverifiable cross-package call. Each flagged line carries a
// // want comment; the package is type-checked by analysistest, never
// linked.
package bad

import "fmt"

// grow appends inside an annotated body — the exact alloc creep the
// annotation exists to catch.
//
//ar:noalloc
func grow(dst, src []int) []int {
	for _, x := range src {
		dst = append(dst, x) // want `append allocates`
	}
	return dst
}

// fresh materializes a slice on the probe path.
//
//ar:noalloc
func fresh(n int) []uint64 {
	return make([]uint64, n) // want `make allocates`
}

// box returns a composite literal.
//
//ar:noalloc
func box(x int) []int {
	return []int{x} // want `composite literal allocates`
}

// concat builds a string on the hot path.
//
//ar:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// shout calls into a package with no noalloc annotation; fmt is the
// canonical unverifiable callee.
//
//ar:noalloc
func shout(x int) string {
	return fmt.Sprintf("%d", x) // want `cannot be proven allocation-free`
}

// viaHelper reaches an allocation transitively: the helper is not
// annotated, so its body is verified as part of viaHelper's.
//
//ar:noalloc
func viaHelper(xs []int) []int {
	return helper(xs)
}

func helper(xs []int) []int {
	return append(xs, 1) // want `append allocates`
}
