// Package basis defines the pluggable rule-basis interface and the
// process-wide registry the public API dispatches through — the
// basis-construction counterpart of internal/miner. The paper's
// deliverable is not the closed itemsets themselves but the bases
// built on them (Duquenne–Guigues for exact rules, Luxenburger for
// approximate ones); making those constructions registry-resolved
// gives follow-on bases (Balcázar's closure-operator framework,
// Hamrouni's simultaneous construction) a seam to plug into without
// touching this package or the root package.
//
// Each construction registers a Builder from an init function; the
// registry itself never imports a construction, so the dependency
// arrow points one way, exactly as with miners.
package basis

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"closedrules/internal/closedset"
	"closedrules/internal/itemset"
	"closedrules/internal/lattice"
	"closedrules/internal/rules"
)

// Requirements declares what a basis construction needs from the
// mining result. The registry checks them centrally in Build, so a
// Builder body can assume they are satisfied.
type Requirements struct {
	// Generators requires the closed itemsets to carry their minimal
	// generators (only generator-tracking miners record them).
	Generators bool
	// Lattice requires the iceberg lattice of the closed itemsets.
	Lattice bool
	// FrequentItemsets requires the complete frequent-itemset family
	// (the Duquenne–Guigues pseudo-closed antecedents quantify over
	// all frequent itemsets, not just the closed ones).
	FrequentItemsets bool
}

// BuildInput carries everything a basis construction may consume. The
// expensive inputs — the iceberg lattice and the frequent-itemset
// family — are handed over as thunks so a builder that does not need
// them never pays for them; Build guarantees a thunk a builder
// declared in its Requirements is non-nil.
type BuildInput struct {
	// NumTx is |O|, the transaction count of the mined dataset.
	NumTx int
	// FC is the indexed set of frequent closed itemsets.
	FC *closedset.Set
	// HasGenerators reports whether FC carries minimal generators.
	HasGenerators bool
	// MinerName names the miner that produced FC (for error messages).
	MinerName string
	// MinConfidence keeps only rules with confidence ≥ this threshold;
	// exact-rule bases ignore it (their rules all have confidence 1).
	// Builders must treat it as a pure per-rule filter — callers may
	// build once at threshold 0 and filter the output themselves, and
	// the two routes must agree.
	MinConfidence float64
	// Reduced selects the transitive-reduction variant of bases that
	// have one (Luxenburger, informative); bases without a reduced
	// variant ignore it.
	Reduced bool
	// IncludeEmptyAntecedent keeps rules whose antecedent is the empty
	// closed set. Conventional listings exclude them; the derivation
	// engine needs the unfiltered diagram.
	IncludeEmptyAntecedent bool
	// Lattice lazily builds (and caches) the iceberg lattice.
	Lattice func() *lattice.Lattice
	// Family lazily mines (and caches) the frequent-itemset family.
	Family func() (*itemset.Family, error)
	// ResolveGenerators, when non-nil, lazily re-mines FC with a
	// generator-tracking miner. Build consults it only when a
	// generator-requiring basis meets a generator-less FC: on success
	// the resolved set replaces FC for that build, on failure (or when
	// nil — the default, since resolution re-mines the dataset) the
	// requirement check fails with the explicit error. The root package
	// wires it to a memoized genclose run behind the
	// WithGeneratorResolution opt-in.
	ResolveGenerators func(context.Context) (*closedset.Set, error)
}

// RuleSet is a basis construction's output: the rules plus the
// provenance needed to interpret them — which basis produced them and
// at which thresholds. It is what feeds the derivation engine and the
// serving layer.
type RuleSet struct {
	// Basis is the canonical registry name of the producing basis.
	Basis string
	// MinConfidence is the confidence threshold the rules were built at.
	MinConfidence float64
	// Reduced reports whether the transitive-reduction variant was built.
	Reduced bool
	// Rules is the basis itself, in canonical sorted order.
	Rules []rules.Rule
}

// Len returns the number of rules in the set.
func (rs *RuleSet) Len() int { return len(rs.Rules) }

// Builder is a pluggable rule-basis construction. Register an
// implementation with Register to make it reachable by name from
// Result.Basis, the armine CLI and the HTTP server. Implementations
// must return rules in canonical sorted order (rules.Sort), honor ctx
// cancellation, and be safe for concurrent use (the registry hands
// the same instance to every caller).
type Builder interface {
	// Name is the basis's preferred display name, recorded as the
	// RuleSet provenance regardless of which alias resolved it.
	Name() string
	// Requirements declares the inputs the construction consumes;
	// Build verifies them before calling.
	Requirements() Requirements
	// Build constructs the basis. It may assume Requirements hold.
	Build(ctx context.Context, in BuildInput) (RuleSet, error)
}

var (
	mu       sync.RWMutex
	builders = map[string]Builder{}
	display  = map[string]string{} // canonical key → name as registered
)

// Canonical normalizes a basis name: lower-cased with hyphens and
// underscores removed, so "Duquenne-Guigues" and "duquenneguigues"
// name the same basis (the same convention as miner names).
func Canonical(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	name = strings.ReplaceAll(name, "-", "")
	name = strings.ReplaceAll(name, "_", "")
	return name
}

// Register makes a basis builder available under the given name. It
// panics if the builder is nil or the name is empty or already taken —
// registration happens in init functions, where a duplicate is a
// programming error, not a runtime condition.
func Register(name string, b Builder) {
	key := Canonical(name)
	mu.Lock()
	defer mu.Unlock()
	if b == nil {
		panic("closedrules: RegisterBasis with nil builder")
	}
	if key == "" {
		panic("closedrules: RegisterBasis with empty name")
	}
	if _, dup := builders[key]; dup {
		panic(fmt.Sprintf("closedrules: RegisterBasis called twice for %q", key))
	}
	builders[key] = b
	display[key] = strings.TrimSpace(name)
}

// Lookup resolves a registered basis builder by name; the error of an
// unknown name lists the registered alternatives.
func Lookup(name string) (Builder, error) {
	mu.RLock()
	b, ok := builders[Canonical(name)]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("closedrules: unknown basis %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return b, nil
}

// Names returns the registered basis names (as registered, e.g.
// "duquenne-guigues"), sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(display))
	for _, n := range display {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build resolves the named basis, verifies its Requirements against
// the input, and runs the construction. The returned RuleSet's
// provenance fields are stamped here, so a builder cannot misreport
// which basis or thresholds produced the rules.
func Build(ctx context.Context, name string, in BuildInput) (RuleSet, error) {
	b, err := Lookup(name)
	if err != nil {
		return RuleSet{}, err
	}
	req := b.Requirements()
	if req.Generators && !in.HasGenerators {
		if in.ResolveGenerators == nil {
			return RuleSet{}, fmt.Errorf(
				"closedrules: basis %q needs minimal generators, and miner %q does not track generators; mine with close, a-close, titanic or genclose, or opt in with WithGeneratorResolution",
				b.Name(), in.MinerName)
		}
		fc, err := in.ResolveGenerators(ctx)
		if err != nil {
			return RuleSet{}, fmt.Errorf("closedrules: basis %q needs minimal generators and resolving them failed: %w", b.Name(), err)
		}
		in.FC = fc
		in.HasGenerators = true
	}
	if req.Lattice && in.Lattice == nil {
		return RuleSet{}, fmt.Errorf("closedrules: basis %q needs the iceberg lattice, and none is available", b.Name())
	}
	if req.FrequentItemsets && in.Family == nil {
		return RuleSet{}, fmt.Errorf(
			"closedrules: basis %q needs the frequent-itemset family, which requires the mining result (not available from a detached collection)",
			b.Name())
	}
	// The negated-AND form also rejects NaN, which passes every
	// ordered comparison.
	if !(in.MinConfidence >= 0 && in.MinConfidence <= 1) {
		return RuleSet{}, fmt.Errorf("closedrules: minConfidence %v outside [0,1]", in.MinConfidence)
	}
	if err := ctx.Err(); err != nil {
		return RuleSet{}, err
	}
	rs, err := b.Build(ctx, in)
	if err != nil {
		return RuleSet{}, err
	}
	rs.Basis = b.Name()
	rs.MinConfidence = in.MinConfidence
	rs.Reduced = in.Reduced
	return rs, nil
}
