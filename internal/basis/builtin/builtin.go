// Package builtin registers the library's built-in rule-basis
// constructions — the paper's Duquenne–Guigues and Luxenburger bases
// plus the follow-on generic and informative (min-max) bases — with
// the basis registry. The constructions themselves live in
// internal/core; this package is the thin adapter layer that makes
// them reachable by registry name, mirroring the per-miner register.go
// files of the miner registry.
package builtin

import (
	"context"

	"closedrules/internal/basis"
	"closedrules/internal/core"
	"closedrules/internal/rules"
)

func init() {
	basis.Register("duquenne-guigues", duquenneGuigues{})
	basis.Register("luxenburger", luxenburger{})
	basis.Register("generic", generic{})
	basis.Register("informative", informative{})
}

// duquenneGuigues builds the exact-rule basis of Theorem 1: one rule
// P → h(P)∖P per frequent pseudo-closed itemset P.
type duquenneGuigues struct{}

// Name returns the basis's registry name.
func (duquenneGuigues) Name() string { return "duquenne-guigues" }

// Requirements declares the frequent-itemset family (pseudo-closed
// antecedents quantify over all frequent itemsets).
func (duquenneGuigues) Requirements() basis.Requirements {
	return basis.Requirements{FrequentItemsets: true}
}

// Build constructs the basis. Every rule has confidence 1, so the
// confidence threshold never filters anything; the Reduced flag is
// ignored (the basis is already minimal).
func (duquenneGuigues) Build(ctx context.Context, in basis.BuildInput) (basis.RuleSet, error) {
	fam, err := in.Family()
	if err != nil {
		return basis.RuleSet{}, err
	}
	if err := ctx.Err(); err != nil {
		return basis.RuleSet{}, err
	}
	list, err := core.DuquenneGuigues(in.NumTx, fam, in.FC)
	if err != nil {
		return basis.RuleSet{}, err
	}
	if !in.IncludeEmptyAntecedent {
		list = core.DropEmptyAntecedent(list)
	}
	return basis.RuleSet{Rules: list}, nil
}

// luxenburger builds the approximate-rule basis of Theorem 2: one rule
// per comparable pair of frequent closed itemsets, or (Reduced, the
// default) only the Hasse-edge pairs of the iceberg lattice.
type luxenburger struct{}

// Name returns the basis's registry name.
func (luxenburger) Name() string { return "luxenburger" }

// Requirements declares the iceberg lattice (the reduction walks its
// Hasse edges).
func (luxenburger) Requirements() basis.Requirements {
	return basis.Requirements{Lattice: true}
}

// Build constructs the full or reduced variant per in.Reduced.
func (luxenburger) Build(ctx context.Context, in basis.BuildInput) (basis.RuleSet, error) {
	if err := ctx.Err(); err != nil {
		return basis.RuleSet{}, err
	}
	opt := core.LuxenburgerOptions{
		MinConfidence:          in.MinConfidence,
		IncludeEmptyAntecedent: in.IncludeEmptyAntecedent,
	}
	var (
		list []rules.Rule
		err  error
	)
	if in.Reduced {
		list, err = core.LuxenburgerReduction(in.Lattice(), in.FC, opt)
	} else {
		list, err = core.LuxenburgerFull(in.FC, opt)
	}
	if err != nil {
		return basis.RuleSet{}, err
	}
	return basis.RuleSet{Rules: list}, nil
}

// generic builds the generic basis for exact rules: g → h(g)∖g per
// minimal generator g that differs from its closure.
type generic struct{}

// Name returns the basis's registry name.
func (generic) Name() string { return "generic" }

// Requirements declares minimal generators (only generator-tracking
// miners record them).
func (generic) Requirements() basis.Requirements {
	return basis.Requirements{Generators: true}
}

// Build constructs the basis; like Duquenne–Guigues, its rules all
// have confidence 1, so the confidence threshold is moot.
func (generic) Build(ctx context.Context, in basis.BuildInput) (basis.RuleSet, error) {
	if err := ctx.Err(); err != nil {
		return basis.RuleSet{}, err
	}
	list, err := core.GenericBasis(in.FC)
	if err != nil {
		return basis.RuleSet{}, err
	}
	return basis.RuleSet{Rules: list}, nil
}

// informative builds the informative (min-max) basis for approximate
// rules: g → I2∖g per minimal generator g and frequent closed
// I2 ⊋ h(g); Reduced restricts I2 to lattice covers of h(g).
type informative struct{}

// Name returns the basis's registry name.
func (informative) Name() string { return "informative" }

// Requirements declares minimal generators and the iceberg lattice.
func (informative) Requirements() basis.Requirements {
	return basis.Requirements{Generators: true, Lattice: true}
}

// Build constructs the reduced or unreduced variant per in.Reduced.
func (informative) Build(ctx context.Context, in basis.BuildInput) (basis.RuleSet, error) {
	if err := ctx.Err(); err != nil {
		return basis.RuleSet{}, err
	}
	list, err := core.InformativeBasis(in.Lattice(), in.FC, in.Reduced, core.LuxenburgerOptions{
		MinConfidence:          in.MinConfidence,
		IncludeEmptyAntecedent: in.IncludeEmptyAntecedent,
	})
	if err != nil {
		return basis.RuleSet{}, err
	}
	return basis.RuleSet{Rules: list}, nil
}
