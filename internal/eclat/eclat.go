// Package eclat implements the Eclat frequent-itemset miner (Zaki,
// 1997): depth-first search over the itemset lattice with vertical
// tidset (bitset) intersections. It serves as an independent
// cross-check of Apriori and as the vertical baseline in benchmarks.
package eclat

import (
	"context"
	"fmt"

	"closedrules/internal/bitset"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
)

// Mine returns all non-empty frequent itemsets with absolute support ≥
// minSup.
func Mine(d *dataset.Dataset, minSup int) (*itemset.Family, error) {
	return MineContext(context.Background(), d, minSup)
}

// MineContext is Mine with cancellation: ctx is checked at every
// prefix extension of the depth-first search, so a cancelled context
// aborts the run within one extension step.
func MineContext(ctx context.Context, d *dataset.Dataset, minSup int) (*itemset.Family, error) {
	if minSup < 1 {
		return nil, fmt.Errorf("eclat: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := d.Context()
	fam := itemset.NewFamily()
	if err := mine(ctx, minSup, frontier(c, minSup), itemset.Empty(), fam.Add); err != nil {
		return nil, err
	}
	return fam, nil
}

// entry is one IT-pair of the search tree with its support cached.
type entry struct {
	item int
	tids bitset.Set
	sup  int
}

// frontier returns the frequent level-1 entries in item order.
func frontier(c *dataset.Context, minSup int) []entry {
	var out []entry
	for it := 0; it < c.NumItems; it++ {
		if sup := c.Cols[it].Count(); sup >= minSup {
			out = append(out, entry{item: it, tids: c.Cols[it], sup: sup})
		}
	}
	return out
}

// mine runs the depth-first tidset search below prefix over ext,
// reporting every frequent itemset to add. Candidate extensions are
// probed with IntersectionCount first; a tidset is materialized only
// for the survivors, so infrequent extensions allocate nothing. Both
// the sequential and the parallel front end drive this function.
func mine(ctx context.Context, minSup int, ext []entry,
	prefix itemset.Itemset, add func(itemset.Itemset, int)) error {
	for i, e := range ext {
		if err := ctx.Err(); err != nil {
			return err
		}
		p := prefix.With(e.item)
		add(p, e.sup)
		var next []entry
		for _, f := range ext[i+1:] {
			if sup := e.tids.IntersectionCount(f.tids); sup >= minSup {
				next = append(next, entry{item: f.item, tids: e.tids.Intersect(f.tids), sup: sup})
			}
		}
		if len(next) > 0 {
			if err := mine(ctx, minSup, next, p, add); err != nil {
				return err
			}
		}
	}
	return nil
}
