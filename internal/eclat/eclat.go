// Package eclat implements the Eclat frequent-itemset miner (Zaki,
// 1997): depth-first search over the itemset lattice with vertical
// tidset (bitset) intersections. It serves as an independent
// cross-check of Apriori and as the vertical baseline in benchmarks.
package eclat

import (
	"context"
	"fmt"

	"closedrules/internal/bitset"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
)

// Mine returns all non-empty frequent itemsets with absolute support ≥
// minSup.
func Mine(d *dataset.Dataset, minSup int) (*itemset.Family, error) {
	return MineContext(context.Background(), d, minSup)
}

// MineContext is Mine with cancellation: ctx is checked at every
// prefix extension of the depth-first search, so a cancelled context
// aborts the run within one extension step.
func MineContext(ctx context.Context, d *dataset.Dataset, minSup int) (*itemset.Family, error) {
	if minSup < 1 {
		return nil, fmt.Errorf("eclat: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := d.Context()
	fam := itemset.NewFamily()

	type entry struct {
		item int
		tids bitset.Set
	}
	var frontier []entry
	for it := 0; it < c.NumItems; it++ {
		if c.Cols[it].Count() >= minSup {
			frontier = append(frontier, entry{item: it, tids: c.Cols[it]})
		}
	}

	var recurse func(prefix itemset.Itemset, ext []entry) error
	recurse = func(prefix itemset.Itemset, ext []entry) error {
		for i, e := range ext {
			if err := ctx.Err(); err != nil {
				return err
			}
			p := prefix.With(e.item)
			fam.Add(p, e.tids.Count())
			var next []entry
			for _, f := range ext[i+1:] {
				t := e.tids.Intersect(f.tids)
				if t.Count() >= minSup {
					next = append(next, entry{item: f.item, tids: t})
				}
			}
			if len(next) > 0 {
				if err := recurse(p, next); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := recurse(itemset.Empty(), frontier); err != nil {
		return nil, err
	}
	return fam, nil
}
