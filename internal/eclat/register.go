package eclat

import (
	"context"

	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/miner"
)

type registered struct{}

func (registered) MineFrequent(ctx context.Context, d *dataset.Dataset, minSup int) ([]itemset.Counted, error) {
	fam, err := MineContext(ctx, d, minSup)
	if err != nil {
		return nil, err
	}
	return fam.All(), nil
}

type registeredDiffset struct{}

func (registeredDiffset) MineFrequent(ctx context.Context, d *dataset.Dataset, minSup int) ([]itemset.Counted, error) {
	fam, err := MineDiffsetContext(ctx, d, minSup)
	if err != nil {
		return nil, err
	}
	return fam.All(), nil
}

// registeredParallel adapts the parallel miner; the worker count comes
// from the context hint (WithParallelism in the root package), else
// one worker per CPU.
type registeredParallel struct{}

func (registeredParallel) MineFrequent(ctx context.Context, d *dataset.Dataset, minSup int) ([]itemset.Counted, error) {
	fam, err := MineParallelContext(ctx, d, minSup, miner.ParallelismFromContext(ctx))
	if err != nil {
		return nil, err
	}
	return fam.All(), nil
}

// registeredDiffsetParallel is the diffset analogue of
// registeredParallel: dEclat subtrees fanned over the shared pool.
type registeredDiffsetParallel struct{}

func (registeredDiffsetParallel) MineFrequent(ctx context.Context, d *dataset.Dataset, minSup int) ([]itemset.Counted, error) {
	fam, err := MineDiffsetParallelContext(ctx, d, minSup, miner.ParallelismFromContext(ctx))
	if err != nil {
		return nil, err
	}
	return fam.All(), nil
}

func init() {
	miner.RegisterFrequent("eclat", registered{})
	miner.RegisterFrequent("declat", registeredDiffset{})
	miner.RegisterFrequent("peclat", registeredParallel{})
	miner.RegisterFrequent("pdeclat", registeredDiffsetParallel{})
}
