package eclat

import (
	"math/rand"
	"testing"

	"closedrules/internal/dataset"
	"closedrules/internal/naive"
	"closedrules/internal/testgen"
)

func TestMineDiffsetClassic(t *testing.T) {
	fam, err := MineDiffset(classic(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 15 {
		t.Fatalf("|FI| = %d, want 15: %v", fam.Len(), fam.All())
	}
}

func TestMineDiffsetValidation(t *testing.T) {
	if _, err := MineDiffset(classic(t), 0); err == nil {
		t.Error("minSup 0 accepted")
	}
}

func TestMineDiffsetEmpty(t *testing.T) {
	d, _ := dataset.FromTransactions(nil)
	fam, err := MineDiffset(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 0 {
		t.Errorf("|FI| = %d", fam.Len())
	}
}

// TestDiffsetEqualsTidset: dEclat and Eclat must agree itemset-by-
// itemset, support-by-support, on randomized contexts.
func TestDiffsetEqualsTidset(t *testing.T) {
	r := rand.New(rand.NewSource(811))
	for iter := 0; iter < 80; iter++ {
		d := testgen.Random(r, 25, 10, 0.4)
		minSup := 1 + r.Intn(4)
		a, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		b, err := MineDiffset(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("iter %d: eclat %d itemsets, declat %d", iter, a.Len(), b.Len())
		}
	}
}

func TestMineDiffsetAgainstNaiveCorrelated(t *testing.T) {
	r := rand.New(rand.NewSource(821))
	for iter := 0; iter < 15; iter++ {
		d := testgen.Correlated(r, 60, 5, 3, 0.2)
		minSup := 2 + r.Intn(6)
		fam, err := MineDiffset(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.FrequentItemsets(d.Context(), minSup)
		if !fam.Equal(want) {
			t.Fatalf("iter %d: declat %d, naive %d", iter, fam.Len(), want.Len())
		}
	}
}
