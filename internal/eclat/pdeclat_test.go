package eclat

import (
	"context"
	"math/rand"
	"testing"

	"closedrules/internal/dataset"
	"closedrules/internal/testgen"
)

// TestMineDiffsetParallelByteIdentical checks that All() returns the
// same itemsets, in the same order, with the same supports as the
// sequential diffset miner, across worker counts.
func TestMineDiffsetParallelByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(167))
	for iter := 0; iter < 60; iter++ {
		d := testgen.Random(r, 30, 12, 0.4)
		minSup := 1 + r.Intn(4)
		workers := 1 + r.Intn(6)
		seq, err := MineDiffset(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		par, err := MineDiffsetParallel(d, minSup, workers)
		if err != nil {
			t.Fatal(err)
		}
		sa, pa := seq.All(), par.All()
		if len(sa) != len(pa) {
			t.Fatalf("iter %d (workers %d): parallel %d itemsets, sequential %d", iter, workers, len(pa), len(sa))
		}
		for i := range sa {
			if !sa[i].Items.Equal(pa[i].Items) || sa[i].Support != pa[i].Support {
				t.Fatalf("iter %d (workers %d): element %d differs", iter, workers, i)
			}
		}
	}
}

// TestMineDiffsetParallelMatchesEclat cross-checks the representations:
// parallel diffsets against sequential tidset Eclat.
func TestMineDiffsetParallelMatchesEclat(t *testing.T) {
	r := rand.New(rand.NewSource(173))
	for iter := 0; iter < 20; iter++ {
		d := testgen.Correlated(r, 60, 5, 3, 0.15)
		minSup := 2 + r.Intn(6)
		want, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MineDiffsetParallel(d, minSup, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("iter %d: parallel diffset %d itemsets, eclat %d", iter, got.Len(), want.Len())
		}
	}
}

func TestMineDiffsetParallelCancelledMidMine(t *testing.T) {
	r := rand.New(rand.NewSource(179))
	d := testgen.Correlated(r, 200, 6, 3, 0.2)
	ctx := &countdownCtx{Context: context.Background(), n: 40}
	if _, err := MineDiffsetParallelContext(ctx, d, 2, 4); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMineDiffsetParallelEmptyAndValidation(t *testing.T) {
	d, err := dataset.FromTransactions(nil)
	if err != nil {
		t.Fatal(err)
	}
	fam, err := MineDiffsetParallel(d, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 0 {
		t.Errorf("|FI| = %d on empty dataset", fam.Len())
	}
	if _, err := MineDiffsetParallel(d, 0, 2); err == nil {
		t.Error("minSup 0 accepted")
	}
}
