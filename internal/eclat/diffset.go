package eclat

import (
	"context"
	"fmt"

	"closedrules/internal/bitset"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
)

// MineDiffset is the dEclat variant (Zaki & Gouda, KDD 2003): instead
// of intersecting tidsets along the search tree it propagates
// *diffsets* — the tids lost relative to the parent — so the sets
// shrink as the tree deepens instead of staying wide. Results are
// identical to Mine; the benchmark suite uses the pair as a
// representation ablation (DESIGN.md E8 family).
func MineDiffset(d *dataset.Dataset, minSup int) (*itemset.Family, error) {
	return MineDiffsetContext(context.Background(), d, minSup)
}

// MineDiffsetContext is MineDiffset with cancellation, checked at
// every prefix extension like MineContext.
func MineDiffsetContext(ctx context.Context, d *dataset.Dataset, minSup int) (*itemset.Family, error) {
	if minSup < 1 {
		return nil, fmt.Errorf("eclat: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := d.Context()
	fam := itemset.NewFamily()

	// Root level: keep plain tidsets; children switch to diffsets.
	roots := frontier(c, minSup)

	// node carries the diffset relative to its parent and its support.
	type node struct {
		item    int
		diff    bitset.Set // parentTids ∖ tids(item within subtree)
		support int
	}

	var recurse func(prefix itemset.Itemset, ext []node) error
	recurse = func(prefix itemset.Itemset, ext []node) error {
		for i, e := range ext {
			if err := ctx.Err(); err != nil {
				return err
			}
			p := prefix.With(e.item)
			fam.Add(p, e.support)
			var next []node
			for _, f := range ext[i+1:] {
				// diffset(P∪{e,f}) = diff(f) ∖ diff(e); support drops by
				// the size of that new diffset. Probe the size with a
				// popcount-only pass and materialize survivors only.
				sup := e.support - f.diff.AndNotCount(e.diff)
				if sup >= minSup {
					next = append(next, node{item: f.item, diff: f.diff.Difference(e.diff), support: sup})
				}
			}
			if len(next) > 0 {
				if err := recurse(p, next); err != nil {
					return err
				}
			}
		}
		return nil
	}

	for i, e := range roots {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := itemset.Of(e.item)
		fam.Add(p, e.sup)
		var children []node
		for _, f := range roots[i+1:] {
			// First diffset level: d(e,f) = tids(e) ∖ tids(f).
			sup := e.sup - e.tids.AndNotCount(f.tids)
			if sup >= minSup {
				children = append(children, node{item: f.item, diff: e.tids.Difference(f.tids), support: sup})
			}
		}
		if len(children) > 0 {
			if err := recurse(p, children); err != nil {
				return nil, err
			}
		}
	}
	return fam, nil
}
