package eclat

import (
	"context"
	"fmt"

	"closedrules/internal/bitset"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
)

// MineDiffset is the dEclat variant (Zaki & Gouda, KDD 2003): instead
// of intersecting tidsets along the search tree it propagates
// *diffsets* — the tids lost relative to the parent — so the sets
// shrink as the tree deepens instead of staying wide. Results are
// identical to Mine; the benchmark suite uses the pair as a
// representation ablation (DESIGN.md E8 family).
func MineDiffset(d *dataset.Dataset, minSup int) (*itemset.Family, error) {
	return MineDiffsetContext(context.Background(), d, minSup)
}

// MineDiffsetContext is MineDiffset with cancellation, checked at
// every prefix extension like MineContext.
func MineDiffsetContext(ctx context.Context, d *dataset.Dataset, minSup int) (*itemset.Family, error) {
	if minSup < 1 {
		return nil, fmt.Errorf("eclat: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := d.Context()
	fam := itemset.NewFamily()

	// Root level: keep plain tidsets; children switch to diffsets.
	roots := frontier(c, minSup)

	for i := range roots {
		if err := mineDiffClass(ctx, minSup, roots, i, fam.Add); err != nil {
			return nil, err
		}
	}
	return fam, nil
}

// dnode carries the diffset relative to its parent and its support —
// the dEclat analogue of entry.
type dnode struct {
	item    int
	diff    bitset.Set // parentTids ∖ tids(item within subtree)
	support int
}

// mineDiff walks the diffset subtree below prefix, reporting every
// frequent itemset through add. Shared by the sequential and parallel
// dEclat variants; add must be cheap and need not be thread-safe (each
// caller owns its own sink).
func mineDiff(ctx context.Context, minSup int, ext []dnode, prefix itemset.Itemset, add func(itemset.Itemset, int)) error {
	for i, e := range ext {
		if err := ctx.Err(); err != nil {
			return err
		}
		p := prefix.With(e.item)
		add(p, e.support)
		var next []dnode
		for _, f := range ext[i+1:] {
			// diffset(P∪{e,f}) = diff(f) ∖ diff(e); support drops by
			// the size of that new diffset. Probe the size with a
			// popcount-only pass and materialize survivors only.
			sup := e.support - f.diff.AndNotCount(e.diff)
			if sup >= minSup {
				next = append(next, dnode{item: f.item, diff: f.diff.Difference(e.diff), support: sup})
			}
		}
		if len(next) > 0 {
			if err := mineDiff(ctx, minSup, next, p, add); err != nil {
				return err
			}
		}
	}
	return nil
}

// mineDiffClass mines the complete diffset subtree of root i — the
// root itself plus every extension by later roots — reporting through
// add. The wide root-level tidset differences happen here, so a
// parallel caller pays them inside the worker.
func mineDiffClass(ctx context.Context, minSup int, roots []entry, i int, add func(itemset.Itemset, int)) error {
	e := roots[i]
	p := itemset.Of(e.item)
	add(p, e.sup)
	var children []dnode
	for _, f := range roots[i+1:] {
		if err := ctx.Err(); err != nil {
			return err
		}
		// First diffset level: d(e,f) = tids(e) ∖ tids(f).
		sup := e.sup - e.tids.AndNotCount(f.tids)
		if sup >= minSup {
			children = append(children, dnode{item: f.item, diff: e.tids.Difference(f.tids), support: sup})
		}
	}
	if len(children) > 0 {
		return mineDiff(ctx, minSup, children, p, add)
	}
	return nil
}
