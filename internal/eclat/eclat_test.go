package eclat

import (
	"math/rand"
	"testing"

	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/naive"
	"closedrules/internal/testgen"
)

func classic(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMineClassic(t *testing.T) {
	fam, err := Mine(classic(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 15 {
		t.Fatalf("|FI| = %d, want 15", fam.Len())
	}
	if s, _ := fam.Support(itemset.Of(1, 2)); s != 3 {
		t.Errorf("supp(BC) = %d, want 3", s)
	}
}

func TestMineValidation(t *testing.T) {
	if _, err := Mine(classic(t), 0); err == nil {
		t.Error("minSup 0 accepted")
	}
}

func TestMineEmpty(t *testing.T) {
	d, _ := dataset.FromTransactions(nil)
	fam, err := Mine(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 0 {
		t.Errorf("|FI| = %d", fam.Len())
	}
}

func TestMineAgainstNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for iter := 0; iter < 60; iter++ {
		d := testgen.Random(r, 25, 10, 0.4)
		minSup := 1 + r.Intn(4)
		fam, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.FrequentItemsets(d.Context(), minSup)
		if !fam.Equal(want) {
			t.Fatalf("iter %d: eclat %d itemsets, naive %d", iter, fam.Len(), want.Len())
		}
	}
}
