package eclat

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"closedrules/internal/dataset"
	"closedrules/internal/testgen"
)

// countdownCtx cancels itself after a fixed number of Err probes — a
// deterministic way to hit a miner mid-run regardless of machine speed.
type countdownCtx struct {
	context.Context
	mu sync.Mutex
	n  int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
	if c.n <= 0 {
		return context.Canceled
	}
	return nil
}

// TestMineParallelByteIdentical checks that All() returns the same
// itemsets, in the same order, with the same supports as sequential
// Eclat, across worker counts.
func TestMineParallelByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(151))
	for iter := 0; iter < 60; iter++ {
		d := testgen.Random(r, 30, 12, 0.4)
		minSup := 1 + r.Intn(4)
		workers := 1 + r.Intn(6)
		seq, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		par, err := MineParallel(d, minSup, workers)
		if err != nil {
			t.Fatal(err)
		}
		sa, pa := seq.All(), par.All()
		if len(sa) != len(pa) {
			t.Fatalf("iter %d (workers %d): parallel %d itemsets, sequential %d", iter, workers, len(pa), len(sa))
		}
		for i := range sa {
			if !sa[i].Items.Equal(pa[i].Items) || sa[i].Support != pa[i].Support {
				t.Fatalf("iter %d (workers %d): element %d differs", iter, workers, i)
			}
		}
	}
}

func TestMineParallelMatchesDiffsets(t *testing.T) {
	r := rand.New(rand.NewSource(157))
	for iter := 0; iter < 20; iter++ {
		d := testgen.Correlated(r, 60, 5, 3, 0.15)
		minSup := 2 + r.Intn(6)
		want, err := MineDiffset(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MineParallel(d, minSup, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("iter %d: parallel %d itemsets, diffset %d", iter, got.Len(), want.Len())
		}
	}
}

func TestMineParallelCancelledMidMine(t *testing.T) {
	r := rand.New(rand.NewSource(163))
	d := testgen.Correlated(r, 200, 6, 3, 0.2)
	ctx := &countdownCtx{Context: context.Background(), n: 40}
	if _, err := MineParallelContext(ctx, d, 2, 4); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMineParallelEmptyAndValidation(t *testing.T) {
	d, err := dataset.FromTransactions(nil)
	if err != nil {
		t.Fatal(err)
	}
	fam, err := MineParallel(d, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 0 {
		t.Errorf("|FI| = %d on empty dataset", fam.Len())
	}
	if _, err := MineParallel(d, 0, 2); err == nil {
		t.Error("minSup 0 accepted")
	}
}
