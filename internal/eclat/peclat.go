package eclat

import (
	"context"
	"fmt"

	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/miner"
)

// Parallel Eclat: each first-level equivalence class — one frequent
// root item together with its tidset intersections against the later
// roots — is an independent depth-first subtree, so the classes are
// fanned out to a bounded worker pool. Workers append into per-worker
// result slices and never share mutable state; the merge into one
// Family happens single-threaded afterwards, which keeps the result
// byte-identical to the sequential miner (Family.All sorts
// canonically, and distinct classes can never produce the same
// itemset: every itemset of class i has minimum item i).

// MineParallel mines all frequent itemsets with the given number of
// workers (≤ 0 means one per CPU); the result is byte-identical to
// Mine.
func MineParallel(d *dataset.Dataset, minSup, workers int) (*itemset.Family, error) {
	return MineParallelContext(context.Background(), d, minSup, workers)
}

// MineParallelContext is MineParallel with cancellation: every worker
// checks ctx at each prefix extension of its subtree, so a cancelled
// context aborts the whole pool within one extension step per worker.
func MineParallelContext(ctx context.Context, d *dataset.Dataset, minSup, workers int) (*itemset.Family, error) {
	if minSup < 1 {
		return nil, fmt.Errorf("eclat: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	c := d.Context()
	roots := frontier(c, minSup)
	results := make([][]itemset.Counted, len(roots))

	err := miner.RunPool(len(roots), workers, func(i int) error {
		local, err := mineClass(ctx, minSup, roots, i)
		if err != nil {
			return err
		}
		results[i] = local
		return nil
	})
	if err != nil {
		return nil, err
	}

	fam := itemset.NewFamily()
	for _, local := range results {
		for _, f := range local {
			fam.Add(f.Items, f.Support)
		}
	}
	return fam, nil
}

// mineClass mines the complete subtree of root i: the root itself plus
// every extension by later roots, collected into a private slice.
func mineClass(ctx context.Context, minSup int, roots []entry, i int) ([]itemset.Counted, error) {
	var local []itemset.Counted
	add := func(p itemset.Itemset, sup int) {
		local = append(local, itemset.Counted{Items: p, Support: sup})
	}
	e := roots[i]
	p := itemset.Of(e.item)
	add(p, e.sup)
	// The wide first-level intersections happen here, inside the
	// worker, not on the dispatching goroutine.
	var next []entry
	for _, f := range roots[i+1:] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if sup := e.tids.IntersectionCount(f.tids); sup >= minSup {
			next = append(next, entry{item: f.item, tids: e.tids.Intersect(f.tids), sup: sup})
		}
	}
	if len(next) > 0 {
		if err := mine(ctx, minSup, next, p, add); err != nil {
			return nil, err
		}
	}
	return local, nil
}
