package eclat

import (
	"context"
	"fmt"

	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/miner"
)

// Parallel dEclat: the same first-level-class decomposition as
// MineParallel (peclat.go), but each worker walks its subtree with
// diffset propagation instead of tidset intersection. Classes stay
// independent — every itemset of class i has minimum item roots[i] —
// so per-worker slices merged single-threaded reproduce the sequential
// miner byte-for-byte.

// MineDiffsetParallel mines all frequent itemsets with diffsets and
// the given number of workers (≤ 0 means one); the result is identical
// to MineDiffset.
func MineDiffsetParallel(d *dataset.Dataset, minSup, workers int) (*itemset.Family, error) {
	return MineDiffsetParallelContext(context.Background(), d, minSup, workers)
}

// MineDiffsetParallelContext is MineDiffsetParallel with cancellation,
// checked by every worker at each prefix extension of its subtree.
func MineDiffsetParallelContext(ctx context.Context, d *dataset.Dataset, minSup, workers int) (*itemset.Family, error) {
	if minSup < 1 {
		return nil, fmt.Errorf("eclat: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	c := d.Context()
	roots := frontier(c, minSup)
	results := make([][]itemset.Counted, len(roots))

	err := miner.RunPool(len(roots), workers, func(i int) error {
		var local []itemset.Counted
		add := func(p itemset.Itemset, sup int) {
			local = append(local, itemset.Counted{Items: p, Support: sup})
		}
		if err := mineDiffClass(ctx, minSup, roots, i, add); err != nil {
			return err
		}
		results[i] = local
		return nil
	})
	if err != nil {
		return nil, err
	}

	fam := itemset.NewFamily()
	for _, local := range results {
		for _, f := range local {
			fam.Add(f.Items, f.Support)
		}
	}
	return fam, nil
}
