// Package levelwise holds the machinery shared by the level-wise
// (Apriori-style) miners: the candidate prefix trie used to enumerate,
// in one database pass, all candidates included in each transaction,
// and the apriori-gen candidate construction (join + subset prune).
package levelwise

import (
	"context"
	"sort"

	"closedrules/internal/itemset"
)

// Trie indexes a list of equal-size candidate itemsets for subset
// enumeration against transactions.
type Trie struct {
	root *trieNode
	k    int
}

type trieNode struct {
	item     int
	children []*trieNode
	leaf     int // candidate index at depth k, else -1
}

// NewTrie builds a trie over candidates, which must all have size k ≥ 1
// and be lexicographically sorted itemsets.
func NewTrie(k int, candidates []itemset.Itemset) *Trie {
	t := &Trie{root: &trieNode{leaf: -1}, k: k}
	for idx, c := range candidates {
		n := t.root
		for _, it := range c {
			n = n.child(it)
		}
		n.leaf = idx
	}
	return t
}

func (n *trieNode) child(item int) *trieNode {
	// children kept sorted by item; candidates arrive in lex order so
	// appends dominate.
	i := sort.Search(len(n.children), func(i int) bool { return n.children[i].item >= item })
	if i < len(n.children) && n.children[i].item == item {
		return n.children[i]
	}
	c := &trieNode{item: item, leaf: -1}
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
	return c
}

// Walk calls visit(idx) for every candidate that is a subset of the
// transaction t (sorted itemset).
func (t *Trie) Walk(tx itemset.Itemset, visit func(candIdx int)) {
	walk(t.root, tx, visit)
}

// WalkPass runs one object-major counting pass: Walk over every
// transaction of at least k items, with ctx checked every 1024
// transactions — one pass over a huge database on a single level
// still honors a deadline, the ROADMAP's cancellation-granularity
// item. visit additionally receives the transaction's index o.
func (t *Trie) WalkPass(ctx context.Context, txs []itemset.Itemset, k int, visit func(o, candIdx int)) error {
	for o, tx := range txs {
		if o&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if tx.Len() < k {
			continue
		}
		t.Walk(tx, func(idx int) { visit(o, idx) })
	}
	return nil
}

// walk descends the trie against one transaction's tail. Cancellation
// is WalkPass's job, checked once per 1024 transactions — a per-node
// check here would put a branch on the innermost counting loop of
// every level-wise miner.
//
//ar:nocancel bounded by transaction length and candidate size k
func walk(n *trieNode, tx itemset.Itemset, visit func(int)) {
	if n.leaf >= 0 {
		visit(n.leaf)
		return
	}
	// Two-pointer scan: children and tx are both sorted.
	ci, ti := 0, 0
	for ci < len(n.children) && ti < len(tx) {
		switch {
		case n.children[ci].item < tx[ti]:
			ci++
		case n.children[ci].item > tx[ti]:
			ti++
		default:
			walk(n.children[ci], tx[ti+1:], visit)
			ci++
			ti++
		}
	}
}

// Join implements the apriori-gen join step: for every pair of k-sets
// in prev sharing their first k-1 items, it emits their (k+1)-union.
// prev must be sorted lexicographically; the output is too.
func Join(prev []itemset.Itemset) []itemset.Itemset {
	var out []itemset.Itemset
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			a, b := prev[i], prev[j]
			k := len(a)
			if !a[:k-1].Equal(b[:k-1]) {
				break // sorted: once prefixes diverge, no later j matches
			}
			cand := make(itemset.Itemset, k+1)
			copy(cand, a)
			cand[k] = b[k-1]
			out = append(out, cand)
		}
	}
	return out
}

// PruneBySubsets removes candidates with any k-subset missing from the
// previous level (given as a key set). Candidates have size k+1.
func PruneBySubsets(cands []itemset.Itemset, prevKeys map[string]bool) []itemset.Itemset {
	out := cands[:0]
	for _, c := range cands {
		ok := true
		for drop := 0; drop < len(c) && ok; drop++ {
			sub := make(itemset.Itemset, 0, len(c)-1)
			sub = append(sub, c[:drop]...)
			sub = append(sub, c[drop+1:]...)
			if !prevKeys[sub.Key()] {
				ok = false
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// Keys builds the key set of a level for PruneBySubsets.
func Keys(level []itemset.Itemset) map[string]bool {
	m := make(map[string]bool, len(level))
	for _, s := range level {
		m[s.Key()] = true
	}
	return m
}

// SortLex sorts a candidate list lexicographically in place.
func SortLex(list []itemset.Itemset) {
	sort.Slice(list, func(i, j int) bool { return list[i].CompareLex(list[j]) < 0 })
}
