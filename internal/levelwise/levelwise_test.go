package levelwise

import (
	"math/rand"
	"sort"
	"testing"

	"closedrules/internal/itemset"
)

func TestJoinBasic(t *testing.T) {
	level := []itemset.Itemset{
		itemset.Of(1, 2), itemset.Of(1, 3), itemset.Of(1, 4), itemset.Of(2, 3),
	}
	got := Join(level)
	want := []itemset.Itemset{
		itemset.Of(1, 2, 3), itemset.Of(1, 2, 4), itemset.Of(1, 3, 4),
	}
	if len(got) != len(want) {
		t.Fatalf("Join = %v, want %v", got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("Join[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestJoinSingletons(t *testing.T) {
	level := []itemset.Itemset{itemset.Of(3), itemset.Of(5), itemset.Of(9)}
	got := Join(level)
	// All pairs: {3,5},{3,9},{5,9} (empty shared prefix).
	if len(got) != 3 {
		t.Fatalf("Join singletons = %v", got)
	}
}

func TestJoinEmptyAndSingle(t *testing.T) {
	if got := Join(nil); len(got) != 0 {
		t.Errorf("Join(nil) = %v", got)
	}
	if got := Join([]itemset.Itemset{itemset.Of(1, 2)}); len(got) != 0 {
		t.Errorf("Join(single) = %v", got)
	}
}

func TestPruneBySubsets(t *testing.T) {
	prev := []itemset.Itemset{
		itemset.Of(1, 2), itemset.Of(1, 3), itemset.Of(2, 3), itemset.Of(1, 4),
	}
	cands := []itemset.Itemset{
		itemset.Of(1, 2, 3), // all subsets present → kept
		itemset.Of(1, 2, 4), // {2,4} missing → pruned
	}
	got := PruneBySubsets(cands, Keys(prev))
	if len(got) != 1 || !got[0].Equal(itemset.Of(1, 2, 3)) {
		t.Fatalf("PruneBySubsets = %v", got)
	}
}

func TestTrieWalkFindsExactlySubsets(t *testing.T) {
	cands := []itemset.Itemset{
		itemset.Of(1, 2, 3), itemset.Of(1, 2, 5), itemset.Of(2, 3, 5), itemset.Of(3, 5, 7),
	}
	SortLex(cands)
	trie := NewTrie(3, cands)
	tx := itemset.Of(1, 2, 3, 5)
	var hit []int
	trie.Walk(tx, func(idx int) { hit = append(hit, idx) })
	sort.Ints(hit)
	// subsets of tx: {1,2,3}, {1,2,5}, {2,3,5} — not {3,5,7}.
	if len(hit) != 3 {
		t.Fatalf("Walk hit %v", hit)
	}
	for _, idx := range hit {
		if !tx.ContainsAll(cands[idx]) {
			t.Errorf("hit %v not subset of %v", cands[idx], tx)
		}
	}
}

func TestTrieWalkShortTransaction(t *testing.T) {
	cands := []itemset.Itemset{itemset.Of(1, 2, 3)}
	trie := NewTrie(3, cands)
	var n int
	trie.Walk(itemset.Of(1, 2), func(int) { n++ })
	if n != 0 {
		t.Errorf("short transaction matched %d candidates", n)
	}
	trie.Walk(itemset.Of(), func(int) { n++ })
	if n != 0 {
		t.Errorf("empty transaction matched %d candidates", n)
	}
}

// TestTrieAgainstNaiveCounting cross-checks trie counting against
// direct subset tests on random data.
func TestTrieAgainstNaiveCounting(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for iter := 0; iter < 50; iter++ {
		k := 2 + r.Intn(3)
		// random candidate pool
		seen := map[string]bool{}
		var cands []itemset.Itemset
		for len(cands) < 10 {
			items := make([]int, k)
			for i := range items {
				items[i] = r.Intn(12)
			}
			c := itemset.Of(items...)
			if c.Len() == k && !seen[c.Key()] {
				seen[c.Key()] = true
				cands = append(cands, c)
			}
		}
		SortLex(cands)
		trie := NewTrie(k, cands)

		counts := make([]int, len(cands))
		naiveCounts := make([]int, len(cands))
		for tx := 0; tx < 30; tx++ {
			var items []int
			for i := 0; i < 12; i++ {
				if r.Intn(2) == 0 {
					items = append(items, i)
				}
			}
			T := itemset.Of(items...)
			trie.Walk(T, func(idx int) { counts[idx]++ })
			for i, c := range cands {
				if T.ContainsAll(c) {
					naiveCounts[i]++
				}
			}
		}
		for i := range cands {
			if counts[i] != naiveCounts[i] {
				t.Fatalf("iter %d: candidate %v trie=%d naive=%d",
					iter, cands[i], counts[i], naiveCounts[i])
			}
		}
	}
}

// TestJoinProducesAllAndOnlyValidCandidates checks the apriori-gen
// contract: the join of the full set of frequent k-itemsets yields
// every (k+1)-set whose two "last-item-dropped" subsets are present.
func TestJoinProducesAllAndOnlyValidCandidates(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for iter := 0; iter < 40; iter++ {
		// Random family of 3-itemsets over 8 items.
		seen := map[string]bool{}
		var level []itemset.Itemset
		for n := 0; n < 12; n++ {
			items := []int{r.Intn(8), r.Intn(8), r.Intn(8)}
			c := itemset.Of(items...)
			if c.Len() == 3 && !seen[c.Key()] {
				seen[c.Key()] = true
				level = append(level, c)
			}
		}
		SortLex(level)
		got := Join(level)
		gotKeys := map[string]bool{}
		for _, g := range got {
			if g.Len() != 4 {
				t.Fatalf("join output size %d", g.Len())
			}
			if gotKeys[g.Key()] {
				t.Fatalf("duplicate candidate %v", g)
			}
			gotKeys[g.Key()] = true
			// Its two generating subsets must be in the level.
			a := g.Without(g[3])
			b := g.Without(g[2])
			if !seen[a.Key()] || !seen[b.Key()] {
				t.Fatalf("candidate %v lacks generating subsets", g)
			}
		}
		// Completeness: any 4-set whose two tail-dropped 3-subsets are
		// present must appear.
		for _, x := range level {
			for _, y := range level {
				if x.CompareLex(y) >= 0 {
					continue
				}
				u := x.Union(y)
				if u.Len() == 4 && x[:2].Equal(y[:2]) && !gotKeys[u.Key()] {
					t.Fatalf("missing candidate %v from %v + %v", u, x, y)
				}
			}
		}
	}
}
