// Package itemset implements the itemset algebra used by every mining
// algorithm in this library: immutable sorted integer itemsets, support-
// counted itemsets, and keyed families of itemsets.
//
// Items are dense non-negative integers assigned by the dataset layer;
// the dataset layer also owns the mapping back to human-readable names.
package itemset

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Itemset is a strictly increasing slice of item identifiers. The
// functions in this package never mutate their receivers or arguments;
// they return fresh slices where needed. Callers must preserve the
// sorted-unique invariant; Of normalizes arbitrary input.
type Itemset []int

// Of builds an itemset from arbitrary items, sorting and deduplicating.
func Of(items ...int) Itemset {
	s := make(Itemset, len(items))
	copy(s, items)
	sort.Ints(s)
	out := s[:0]
	for i, x := range s {
		if i == 0 || x != s[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Empty is the canonical empty itemset.
func Empty() Itemset { return Itemset{} }

// Len returns the number of items.
func (s Itemset) Len() int { return len(s) }

// IsEmpty reports whether the itemset has no items.
func (s Itemset) IsEmpty() bool { return len(s) == 0 }

// Clone returns an independent copy.
func (s Itemset) Clone() Itemset {
	c := make(Itemset, len(s))
	copy(c, s)
	return c
}

// Contains reports whether x is a member (binary search).
func (s Itemset) Contains(x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}

// ContainsAll reports whether other ⊆ s (merge walk, O(len(s))).
func (s Itemset) ContainsAll(other Itemset) bool {
	if len(other) > len(s) {
		return false
	}
	i := 0
	for _, x := range other {
		for i < len(s) && s[i] < x {
			i++
		}
		if i >= len(s) || s[i] != x {
			return false
		}
		i++
	}
	return true
}

// Equal reports element-wise equality.
func (s Itemset) Equal(other Itemset) bool {
	if len(s) != len(other) {
		return false
	}
	for i, x := range s {
		if x != other[i] {
			return false
		}
	}
	return true
}

// Compare orders itemsets first by length, then lexicographically.
// This is the canonical order used for deterministic output.
func (s Itemset) Compare(other Itemset) int {
	if len(s) != len(other) {
		if len(s) < len(other) {
			return -1
		}
		return 1
	}
	for i, x := range s {
		if x != other[i] {
			if x < other[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// CompareLex orders itemsets purely lexicographically (shorter prefix
// first), the order used by lectic enumeration.
func (s Itemset) CompareLex(other Itemset) int {
	n := len(s)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if s[i] != other[i] {
			if s[i] < other[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s) < len(other):
		return -1
	case len(s) > len(other):
		return 1
	}
	return 0
}

// Union returns s ∪ other as a new itemset.
func (s Itemset) Union(other Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(other))
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] < other[j]:
			out = append(out, s[i])
			i++
		case s[i] > other[j]:
			out = append(out, other[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, other[j:]...)
	return out
}

// Intersect returns s ∩ other as a new itemset.
func (s Itemset) Intersect(other Itemset) Itemset {
	out := make(Itemset, 0)
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] < other[j]:
			i++
		case s[i] > other[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Diff returns s \ other as a new itemset.
func (s Itemset) Diff(other Itemset) Itemset {
	out := make(Itemset, 0, len(s))
	j := 0
	for _, x := range s {
		for j < len(other) && other[j] < x {
			j++
		}
		if j < len(other) && other[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// With returns s ∪ {x} as a new itemset.
func (s Itemset) With(x int) Itemset {
	i := sort.SearchInts(s, x)
	if i < len(s) && s[i] == x {
		return s.Clone()
	}
	out := make(Itemset, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, x)
	out = append(out, s[i:]...)
	return out
}

// Without returns s \ {x} as a new itemset.
func (s Itemset) Without(x int) Itemset {
	i := sort.SearchInts(s, x)
	if i >= len(s) || s[i] != x {
		return s.Clone()
	}
	out := make(Itemset, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// Subsets calls fn with every proper non-empty subset of s. It is meant
// for rule generation over modest itemset sizes; it panics beyond 30
// items to avoid silent combinatorial explosion.
func (s Itemset) Subsets(fn func(sub Itemset) bool) {
	if len(s) > 30 {
		panic(fmt.Sprintf("itemset: Subsets on %d items", len(s)))
	}
	n := len(s)
	for mask := 1; mask < (1<<uint(n))-1; mask++ {
		sub := make(Itemset, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub = append(sub, s[i])
			}
		}
		if !fn(sub) {
			return
		}
	}
}

// KSubsets calls fn with every subset of s of size k, in lexicographic
// order. fn may keep the slice; a fresh slice is passed each time.
func (s Itemset) KSubsets(k int, fn func(sub Itemset) bool) {
	if k < 0 || k > len(s) {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		sub := make(Itemset, k)
		for i, j := range idx {
			sub[i] = s[j]
		}
		if !fn(sub) {
			return
		}
		// Advance the combination.
		i := k - 1
		for i >= 0 && idx[i] == len(s)-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// Key returns a compact string usable as a map key. Keys are injective:
// two itemsets share a key iff they are equal.
func (s Itemset) Key() string {
	buf := make([]byte, 0, len(s)*3)
	var tmp [binary.MaxVarintLen64]byte
	for _, x := range s {
		n := binary.PutUvarint(tmp[:], uint64(x))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// FromKey decodes a key produced by Key back into the itemset.
func FromKey(key string) (Itemset, error) {
	buf := []byte(key)
	var out Itemset
	for len(buf) > 0 {
		x, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("itemset: malformed key")
		}
		out = append(out, int(x))
		buf = buf[n:]
	}
	// Keys encode sorted itemsets; verify to catch foreign strings.
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			return nil, fmt.Errorf("itemset: key not in canonical order")
		}
	}
	return out, nil
}

// String renders as "{1, 2, 3}"; the empty set renders as "∅".
func (s Itemset) String() string {
	if len(s) == 0 {
		return "∅"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte('}')
	return b.String()
}

// Format renders the itemset using the given item names; items without
// a name fall back to their numeric id.
func (s Itemset) Format(names []string) string {
	if len(s) == 0 {
		return "∅"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		if x >= 0 && x < len(names) && names[x] != "" {
			b.WriteString(names[x])
		} else {
			fmt.Fprintf(&b, "%d", x)
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Counted pairs an itemset with its absolute support count.
type Counted struct {
	Items   Itemset
	Support int
}

// Sort orders a slice of Counted in the canonical (size, lex) order.
func Sort(list []Counted) {
	sort.Slice(list, func(i, j int) bool {
		return list[i].Items.Compare(list[j].Items) < 0
	})
}

// Family is a set of support-counted itemsets with O(1) lookup by value.
// The zero value is not usable; call NewFamily.
type Family struct {
	byKey map[string]int
	list  []Counted
}

// NewFamily returns an empty family.
func NewFamily() *Family {
	return &Family{byKey: map[string]int{}}
}

// Add inserts or overwrites the support of the given itemset.
func (f *Family) Add(items Itemset, support int) {
	k := items.Key()
	if i, ok := f.byKey[k]; ok {
		f.list[i].Support = support
		return
	}
	f.byKey[k] = len(f.list)
	f.list = append(f.list, Counted{Items: items, Support: support})
}

// Support returns the stored support of the itemset.
func (f *Family) Support(items Itemset) (int, bool) {
	i, ok := f.byKey[items.Key()]
	if !ok {
		return 0, false
	}
	return f.list[i].Support, true
}

// Contains reports membership.
func (f *Family) Contains(items Itemset) bool {
	_, ok := f.byKey[items.Key()]
	return ok
}

// Len returns the number of itemsets in the family.
func (f *Family) Len() int { return len(f.list) }

// All returns the itemsets in canonical (size, lex) order.
func (f *Family) All() []Counted {
	out := make([]Counted, len(f.list))
	copy(out, f.list)
	Sort(out)
	return out
}

// Levels groups the itemsets by size; Levels()[k] holds the k-itemsets
// (index 0 holds the empty set if present).
func (f *Family) Levels() [][]Counted {
	maxLen := 0
	for _, c := range f.list {
		if len(c.Items) > maxLen {
			maxLen = len(c.Items)
		}
	}
	levels := make([][]Counted, maxLen+1)
	for _, c := range f.list {
		levels[len(c.Items)] = append(levels[len(c.Items)], c)
	}
	for _, lv := range levels {
		Sort(lv)
	}
	return levels
}

// MaxSize returns the size of the largest itemset (0 for empty family).
func (f *Family) MaxSize() int {
	m := 0
	for _, c := range f.list {
		if len(c.Items) > m {
			m = len(c.Items)
		}
	}
	return m
}

// Equal reports whether two families hold exactly the same itemsets
// with the same supports.
func (f *Family) Equal(g *Family) bool {
	if f.Len() != g.Len() {
		return false
	}
	for _, c := range f.list {
		s, ok := g.Support(c.Items)
		if !ok || s != c.Support {
			return false
		}
	}
	return true
}
