package itemset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOfNormalizes(t *testing.T) {
	cases := []struct {
		in   []int
		want Itemset
	}{
		{nil, Itemset{}},
		{[]int{3, 1, 2}, Itemset{1, 2, 3}},
		{[]int{5, 5, 5}, Itemset{5}},
		{[]int{2, 1, 2, 1}, Itemset{1, 2}},
		{[]int{0}, Itemset{0}},
	}
	for _, c := range cases {
		if got := Of(c.in...); !got.Equal(c.want) {
			t.Errorf("Of(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	s := Of(1, 3, 5, 7)
	for _, x := range []int{1, 3, 5, 7} {
		if !s.Contains(x) {
			t.Errorf("!Contains(%d)", x)
		}
	}
	for _, x := range []int{0, 2, 4, 6, 8, -1} {
		if s.Contains(x) {
			t.Errorf("Contains(%d)", x)
		}
	}
}

func TestContainsAll(t *testing.T) {
	s := Of(1, 2, 3, 5, 8)
	cases := []struct {
		sub  Itemset
		want bool
	}{
		{Of(), true},
		{Of(1), true},
		{Of(8), true},
		{Of(1, 8), true},
		{Of(2, 3, 5), true},
		{Of(1, 2, 3, 5, 8), true},
		{Of(4), false},
		{Of(1, 4), false},
		{Of(1, 2, 3, 5, 8, 9), false},
		{Of(0, 1), false},
	}
	for _, c := range cases {
		if got := s.ContainsAll(c.sub); got != c.want {
			t.Errorf("ContainsAll(%v) = %v, want %v", c.sub, got, c.want)
		}
	}
}

func TestSetOps(t *testing.T) {
	a := Of(1, 3, 5, 7)
	b := Of(3, 4, 7, 9)
	if got := a.Union(b); !got.Equal(Of(1, 3, 4, 5, 7, 9)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(Of(3, 7)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); !got.Equal(Of(1, 5)) {
		t.Errorf("Diff = %v", got)
	}
	if got := b.Diff(a); !got.Equal(Of(4, 9)) {
		t.Errorf("Diff rev = %v", got)
	}
	// operands untouched
	if !a.Equal(Of(1, 3, 5, 7)) || !b.Equal(Of(3, 4, 7, 9)) {
		t.Error("operands mutated")
	}
}

func TestWithWithout(t *testing.T) {
	s := Of(2, 4)
	if got := s.With(3); !got.Equal(Of(2, 3, 4)) {
		t.Errorf("With(3) = %v", got)
	}
	if got := s.With(1); !got.Equal(Of(1, 2, 4)) {
		t.Errorf("With(1) = %v", got)
	}
	if got := s.With(9); !got.Equal(Of(2, 4, 9)) {
		t.Errorf("With(9) = %v", got)
	}
	if got := s.With(2); !got.Equal(s) {
		t.Errorf("With(existing) = %v", got)
	}
	if got := s.Without(2); !got.Equal(Of(4)) {
		t.Errorf("Without(2) = %v", got)
	}
	if got := s.Without(7); !got.Equal(s) {
		t.Errorf("Without(absent) = %v", got)
	}
	if !s.Equal(Of(2, 4)) {
		t.Error("receiver mutated")
	}
}

func TestCompareOrders(t *testing.T) {
	// canonical: size first, then lex
	ordered := []Itemset{Of(), Of(1), Of(2), Of(1, 2), Of(1, 3), Of(2, 3), Of(1, 2, 3)}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareLex(t *testing.T) {
	if Of(1).CompareLex(Of(1, 2)) != -1 {
		t.Error("prefix should sort first")
	}
	if Of(1, 9).CompareLex(Of(2)) != -1 {
		t.Error("lex order ignores length")
	}
	if Of(3).CompareLex(Of(3)) != 0 {
		t.Error("equal")
	}
}

func TestSubsetsEnumeratesProperNonEmpty(t *testing.T) {
	s := Of(1, 2, 3)
	var got []Itemset
	s.Subsets(func(sub Itemset) bool {
		got = append(got, sub)
		return true
	})
	if len(got) != 6 { // 2^3 - 2
		t.Fatalf("got %d subsets, want 6", len(got))
	}
	seen := map[string]bool{}
	for _, sub := range got {
		if sub.Len() == 0 || sub.Len() == s.Len() {
			t.Errorf("subset %v not proper non-empty", sub)
		}
		if !s.ContainsAll(sub) {
			t.Errorf("%v not subset of %v", sub, s)
		}
		seen[sub.Key()] = true
	}
	if len(seen) != 6 {
		t.Errorf("duplicates among subsets")
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	n := 0
	Of(1, 2, 3, 4).Subsets(func(Itemset) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop after %d", n)
	}
}

func TestKSubsets(t *testing.T) {
	s := Of(1, 2, 3, 4)
	var got []Itemset
	s.KSubsets(2, func(sub Itemset) bool {
		got = append(got, sub)
		return true
	})
	want := []Itemset{Of(1, 2), Of(1, 3), Of(1, 4), Of(2, 3), Of(2, 4), Of(3, 4)}
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("KSubsets[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// edge cases
	count := 0
	s.KSubsets(0, func(sub Itemset) bool { count++; return sub.Len() == 0 })
	if count != 1 {
		t.Errorf("KSubsets(0) visited %d", count)
	}
	s.KSubsets(5, func(Itemset) bool { t.Error("KSubsets(5) visited"); return true })
	s.KSubsets(-1, func(Itemset) bool { t.Error("KSubsets(-1) visited"); return true })
}

func TestSubsetsGuardsAgainstBlowup(t *testing.T) {
	wide := make([]int, 31)
	for i := range wide {
		wide[i] = i
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic for 31-item Subsets")
		}
	}()
	Of(wide...).Subsets(func(Itemset) bool { return true })
}

func TestKeyInjective(t *testing.T) {
	sets := []Itemset{
		Of(), Of(0), Of(1), Of(0, 1), Of(128), Of(1, 128), Of(300, 70000),
		Of(16384), Of(2, 3), Of(23),
	}
	keys := map[string]Itemset{}
	for _, s := range sets {
		k := s.Key()
		if prev, dup := keys[k]; dup {
			t.Errorf("key collision: %v vs %v", prev, s)
		}
		keys[k] = s
	}
}

func TestStringAndFormat(t *testing.T) {
	if got := Of().String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
	if got := Of(2, 1).String(); got != "{1, 2}" {
		t.Errorf("String = %q", got)
	}
	names := []string{"a", "b", "c"}
	if got := Of(0, 2).Format(names); got != "{a, c}" {
		t.Errorf("Format = %q", got)
	}
	if got := Of(0, 5).Format(names); got != "{a, 5}" {
		t.Errorf("Format fallback = %q", got)
	}
}

func TestFamilyBasics(t *testing.T) {
	f := NewFamily()
	if f.Len() != 0 || f.MaxSize() != 0 {
		t.Fatal("fresh family not empty")
	}
	f.Add(Of(1, 2), 10)
	f.Add(Of(3), 7)
	f.Add(Of(1, 2), 12) // overwrite
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	if s, ok := f.Support(Of(1, 2)); !ok || s != 12 {
		t.Errorf("Support({1,2}) = %d,%v", s, ok)
	}
	if _, ok := f.Support(Of(9)); ok {
		t.Error("phantom support")
	}
	if !f.Contains(Of(3)) || f.Contains(Of(4)) {
		t.Error("Contains wrong")
	}
	all := f.All()
	if len(all) != 2 || !all[0].Items.Equal(Of(3)) || !all[1].Items.Equal(Of(1, 2)) {
		t.Errorf("All order = %v", all)
	}
	if f.MaxSize() != 2 {
		t.Errorf("MaxSize = %d", f.MaxSize())
	}
}

func TestFamilyLevels(t *testing.T) {
	f := NewFamily()
	f.Add(Of(), 100)
	f.Add(Of(2), 8)
	f.Add(Of(1), 9)
	f.Add(Of(1, 2), 5)
	lv := f.Levels()
	if len(lv) != 3 {
		t.Fatalf("levels = %d", len(lv))
	}
	if len(lv[0]) != 1 || len(lv[1]) != 2 || len(lv[2]) != 1 {
		t.Fatalf("level sizes: %d %d %d", len(lv[0]), len(lv[1]), len(lv[2]))
	}
	if !lv[1][0].Items.Equal(Of(1)) {
		t.Errorf("level 1 not sorted: %v", lv[1])
	}
}

func TestFamilyEqual(t *testing.T) {
	a, b := NewFamily(), NewFamily()
	a.Add(Of(1), 3)
	b.Add(Of(1), 3)
	if !a.Equal(b) {
		t.Error("equal families differ")
	}
	b.Add(Of(2), 1)
	if a.Equal(b) {
		t.Error("families with different sizes equal")
	}
	a.Add(Of(2), 2)
	if a.Equal(b) {
		t.Error("families with different supports equal")
	}
}

// Property tests.

func genItemset(r *rand.Rand) Itemset {
	n := r.Intn(8)
	items := make([]int, n)
	for i := range items {
		items[i] = r.Intn(20)
	}
	return Of(items...)
}

func TestQuickAlgebraLaws(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b, c := genItemset(r), genItemset(r), genItemset(r)
		if !a.Union(b).Equal(b.Union(a)) {
			t.Fatalf("union not commutative: %v %v", a, b)
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			t.Fatalf("intersect not commutative: %v %v", a, b)
		}
		if !a.Union(a).Equal(a) || !a.Intersect(a).Equal(a) {
			t.Fatalf("idempotency: %v", a)
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			t.Fatalf("union not associative")
		}
		// absorption: A ∪ (A ∩ B) = A
		if !a.Union(a.Intersect(b)).Equal(a) {
			t.Fatalf("absorption failed: %v %v", a, b)
		}
		// diff: (A\B) ∩ B = ∅ and (A\B) ∪ (A∩B) = A
		if a.Diff(b).Intersect(b).Len() != 0 {
			t.Fatalf("diff overlap: %v %v", a, b)
		}
		if !a.Diff(b).Union(a.Intersect(b)).Equal(a) {
			t.Fatalf("diff partition: %v %v", a, b)
		}
		if !a.ContainsAll(a.Intersect(b)) {
			t.Fatalf("intersection not contained")
		}
		if !a.Union(b).ContainsAll(a) {
			t.Fatalf("union does not contain operand")
		}
	}
}

func TestQuickKeyRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		items := make([]int, len(raw))
		for i, x := range raw {
			items[i] = int(x)
		}
		a := Of(items...)
		b := Of(items...)
		if a.Key() != b.Key() || !a.Equal(b) {
			return false
		}
		dec, err := FromKey(a.Key())
		return err == nil && dec.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromKeyErrors(t *testing.T) {
	if _, err := FromKey("\xff"); err == nil {
		t.Error("malformed key accepted")
	}
	// Unsorted encoding (2 then 1) is not a canonical key.
	bad := Itemset{9}.Key() + Itemset{1}.Key()
	if _, err := FromKey(bad); err == nil {
		t.Error("non-canonical key accepted")
	}
	if got, err := FromKey(""); err != nil || got.Len() != 0 {
		t.Errorf("empty key: %v, %v", got, err)
	}
}
