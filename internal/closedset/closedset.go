// Package closedset defines the result type shared by all closed-
// itemset miners: a set of frequent closed itemsets FC with supports
// and (optionally) their minimal generators, plus the closure lookup
// h(X) = smallest element of FC containing X that underpins basis
// construction and rule derivation.
package closedset

import (
	"sort"
	"sync"

	"closedrules/internal/itemset"
)

// Closed is one frequent closed itemset with its absolute support and
// the minimal generators discovered for it (possibly empty when the
// miner does not track generators).
type Closed struct {
	Items      itemset.Itemset
	Support    int
	Generators []itemset.Itemset
}

// Set is a collection of frequent closed itemsets keyed by value.
// The zero value is not usable; call New. A Set is safe for concurrent
// reads once mining has finished; mutation (Add, AddGenerator) must
// not run concurrently with anything else.
type Set struct {
	byKey map[string]int
	list  []Closed

	mu     sync.Mutex // guards the lazily built sorted index
	sorted []int      // indices ordered by (size, lex); nil when stale
}

// New returns an empty set.
func New() *Set {
	return &Set{byKey: map[string]int{}}
}

// FromSlice rebuilds a Set from a flat list of closed itemsets (the
// exchange form used by the miner registry and the persistence layer),
// preserving supports and generators.
func FromSlice(items []Closed) *Set {
	s := New()
	for _, c := range items {
		s.Add(c.Items, c.Support)
		for _, g := range c.Generators {
			s.AddGenerator(c.Items, c.Support, g)
		}
	}
	return s
}

// Add inserts a closed itemset or updates its support if present.
func (s *Set) Add(items itemset.Itemset, support int) {
	k := items.Key()
	if i, ok := s.byKey[k]; ok {
		s.list[i].Support = support
		return
	}
	s.byKey[k] = len(s.list)
	s.list = append(s.list, Closed{Items: items, Support: support})
	s.sorted = nil
}

// AddGenerator records gen as a (minimal) generator of the closed
// itemset; the closed itemset is created with the given support if
// missing. Duplicate generators are ignored.
func (s *Set) AddGenerator(items itemset.Itemset, support int, gen itemset.Itemset) {
	k := items.Key()
	i, ok := s.byKey[k]
	if !ok {
		s.Add(items, support)
		i = s.byKey[k]
	}
	for _, g := range s.list[i].Generators {
		if g.Equal(gen) {
			return
		}
	}
	s.list[i].Generators = append(s.list[i].Generators, gen)
}

// Len returns |FC|.
func (s *Set) Len() int { return len(s.list) }

// HasGenerators reports whether every closed itemset carries at least
// one minimal generator — true for the output of generator-tracking
// miners (close, a-close, titanic, genclose), false for the bare
// families the vertical miners return. An empty set vacuously has
// generators.
func (s *Set) HasGenerators() bool {
	for i := range s.list {
		if len(s.list[i].Generators) == 0 {
			return false
		}
	}
	return true
}

// Contains reports whether items is one of the closed itemsets.
func (s *Set) Contains(items itemset.Itemset) bool {
	_, ok := s.byKey[items.Key()]
	return ok
}

// Support returns the support of the closed itemset.
func (s *Set) Support(items itemset.Itemset) (int, bool) {
	i, ok := s.byKey[items.Key()]
	if !ok {
		return 0, false
	}
	return s.list[i].Support, true
}

// Get returns the full record of the closed itemset.
func (s *Set) Get(items itemset.Itemset) (Closed, bool) {
	i, ok := s.byKey[items.Key()]
	if !ok {
		return Closed{}, false
	}
	return s.list[i], true
}

func (s *Set) ensureSorted() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sorted == nil {
		idx := make([]int, len(s.list))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return s.list[idx[a]].Items.Compare(s.list[idx[b]].Items) < 0
		})
		s.sorted = idx
	}
	return s.sorted
}

// Each calls fn for every closed itemset in unspecified order,
// stopping early when fn returns false. Unlike All it neither sorts
// nor copies, so hot paths that only need to see every element — not
// canonical order — pay nothing per call.
func (s *Set) Each(fn func(Closed) bool) {
	for _, c := range s.list {
		if !fn(c) {
			return
		}
	}
}

// All returns the closed itemsets in canonical (size, lex) order.
func (s *Set) All() []Closed {
	sorted := s.ensureSorted()
	out := make([]Closed, len(s.list))
	for i, idx := range sorted {
		out[i] = s.list[idx]
	}
	return out
}

// ClosureOf returns h(X): the smallest closed itemset of the set
// containing X. The second result is false when no element contains X
// (X is not frequent at the mining threshold, or the set is
// incomplete). Because FC is closed under intersection, the smallest
// container is unique whenever it exists.
//
// An itemset that is itself closed — the common case on serving paths,
// where queries arrive straight from basis rules — is answered by one
// key lookup; only non-closed itemsets pay the ordered scan.
func (s *Set) ClosureOf(x itemset.Itemset) (Closed, bool) {
	if i, ok := s.byKey[x.Key()]; ok {
		return s.list[i], true
	}
	for _, idx := range s.ensureSorted() {
		if s.list[idx].Items.ContainsAll(x) {
			return s.list[idx], true
		}
	}
	return Closed{}, false
}

// SupportOf returns supp(X) = supp(h(X)) for any itemset X contained
// in some closed itemset of the set.
func (s *Set) SupportOf(x itemset.Itemset) (int, bool) {
	c, ok := s.ClosureOf(x)
	if !ok {
		return 0, false
	}
	return c.Support, true
}

// Maximal returns the maximal closed itemsets (the maximal frequent
// itemsets, by the paper's §2 property).
func (s *Set) Maximal() []Closed {
	var out []Closed
	for i, ci := range s.list {
		isMax := true
		for j, cj := range s.list {
			if i != j && cj.Items.ContainsAll(ci.Items) {
				isMax = false
				break
			}
		}
		if isMax {
			out = append(out, ci)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Items.Compare(out[b].Items) < 0 })
	return out
}

// Bottom returns the least closed itemset, h(∅). A complete mining run
// always contains it, and every other element is a superset. The bool
// result is false when the set is empty or no element is contained in
// all others (an incomplete set).
func (s *Set) Bottom() (Closed, bool) {
	if len(s.list) == 0 {
		return Closed{}, false
	}
	bot := s.list[s.ensureSorted()[0]]
	for _, c := range s.list {
		if !c.Items.ContainsAll(bot.Items) {
			return bot, false
		}
	}
	return bot, true
}

// Equal reports whether two sets contain the same closed itemsets with
// the same supports (generators are not compared).
func (s *Set) Equal(t *Set) bool {
	if s.Len() != t.Len() {
		return false
	}
	for _, c := range s.list {
		sup, ok := t.Support(c.Items)
		if !ok || sup != c.Support {
			return false
		}
	}
	return true
}

// AllGenerators returns every (generator, closure) pair, in canonical
// order of the generator. Closed itemsets that equal their unique
// generator (free closed sets) are included.
func (s *Set) AllGenerators() []GeneratorOf {
	var out []GeneratorOf
	for _, c := range s.list {
		for _, g := range c.Generators {
			out = append(out, GeneratorOf{Generator: g, Closure: c.Items, Support: c.Support})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if cmp := out[a].Generator.Compare(out[b].Generator); cmp != 0 {
			return cmp < 0
		}
		return out[a].Closure.Compare(out[b].Closure) < 0
	})
	return out
}

// GeneratorOf links a minimal generator to its closure.
type GeneratorOf struct {
	Generator itemset.Itemset
	Closure   itemset.Itemset
	Support   int
}
