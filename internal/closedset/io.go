package closedset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"closedrules/internal/itemset"
)

// The text format for closed-itemset collections, one record per line:
//
//	<support> TAB <items> [TAB <generator> ...]
//
// where <items> and each <generator> are space-separated item ids and
// the empty itemset is written as "-". Lines starting with '#' are
// comments. The format is stable and diff-friendly so mined FC sets
// can be stored, compared and re-analyzed without re-mining.

const ioHeader = "# closedrules closed-itemset collection v1"

// Write serializes the set in canonical order.
func Write(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, ioHeader); err != nil {
		return err
	}
	for _, c := range s.All() {
		if _, err := fmt.Fprintf(bw, "%d\t%s", c.Support, formatItems(c.Items)); err != nil {
			return err
		}
		for _, g := range c.Generators {
			if _, err := fmt.Fprintf(bw, "\t%s", formatItems(g)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a collection written by Write.
func Read(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	s := New()
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 2 {
			return nil, fmt.Errorf("closedset: line %d: %d fields", lineNo, len(fields))
		}
		sup, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("closedset: line %d: support: %v", lineNo, err)
		}
		if sup < 0 {
			return nil, fmt.Errorf("closedset: line %d: negative support", lineNo)
		}
		items, err := parseItems(fields[1])
		if err != nil {
			return nil, fmt.Errorf("closedset: line %d: items: %v", lineNo, err)
		}
		s.Add(items, sup)
		for _, gf := range fields[2:] {
			g, err := parseItems(gf)
			if err != nil {
				return nil, fmt.Errorf("closedset: line %d: generator: %v", lineNo, err)
			}
			s.AddGenerator(items, sup, g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("closedset: read: %v", err)
	}
	return s, nil
}

func formatItems(s itemset.Itemset) string {
	if s.Len() == 0 {
		return "-"
	}
	var b strings.Builder
	for i, x := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.Itoa(x))
	}
	return b.String()
}

func parseItems(f string) (itemset.Itemset, error) {
	f = strings.TrimSpace(f)
	if f == "-" || f == "" {
		return itemset.Empty(), nil
	}
	parts := strings.Fields(f)
	items := make([]int, 0, len(parts))
	for _, p := range parts {
		x, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		if x < 0 {
			return nil, fmt.Errorf("negative item %d", x)
		}
		items = append(items, x)
	}
	return itemset.Of(items...), nil
}
