package closedset

import (
	"testing"

	"closedrules/internal/itemset"
)

// buildClassic assembles the FC of the Close-paper example by hand:
// {∅:5, C:4, AC:3, BE:4, BCE:3, ABCE:2} with A=0,…,E=4.
func buildClassic() *Set {
	s := New()
	s.Add(itemset.Of(), 5)
	s.Add(itemset.Of(2), 4)
	s.Add(itemset.Of(0, 2), 3)
	s.Add(itemset.Of(1, 4), 4)
	s.Add(itemset.Of(1, 2, 4), 3)
	s.Add(itemset.Of(0, 1, 2, 4), 2)
	return s
}

func TestAddAndLookup(t *testing.T) {
	s := New()
	s.Add(itemset.Of(1, 2), 5)
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Contains(itemset.Of(1, 2)) || s.Contains(itemset.Of(1)) {
		t.Error("Contains wrong")
	}
	s.Add(itemset.Of(1, 2), 9) // update support
	if sup, ok := s.Support(itemset.Of(1, 2)); !ok || sup != 9 {
		t.Errorf("Support = %d,%v", sup, ok)
	}
	if s.Len() != 1 {
		t.Errorf("duplicate insert changed Len to %d", s.Len())
	}
	if _, ok := s.Support(itemset.Of(3)); ok {
		t.Error("phantom support")
	}
}

func TestAddGeneratorDedup(t *testing.T) {
	s := New()
	s.AddGenerator(itemset.Of(1, 2), 4, itemset.Of(1))
	s.AddGenerator(itemset.Of(1, 2), 4, itemset.Of(1)) // duplicate
	s.AddGenerator(itemset.Of(1, 2), 4, itemset.Of(2))
	c, ok := s.Get(itemset.Of(1, 2))
	if !ok || len(c.Generators) != 2 {
		t.Fatalf("Generators = %v", c.Generators)
	}
}

func TestAllCanonicalOrder(t *testing.T) {
	s := buildClassic()
	all := s.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Items.Compare(all[i].Items) >= 0 {
			t.Fatalf("All not in canonical order at %d: %v then %v",
				i, all[i-1].Items, all[i].Items)
		}
	}
	if !all[0].Items.Equal(itemset.Of()) {
		t.Errorf("first should be ∅, got %v", all[0].Items)
	}
}

func TestClosureOfSmallest(t *testing.T) {
	s := buildClassic()
	cases := []struct{ in, want itemset.Itemset }{
		{itemset.Of(), itemset.Of()},
		{itemset.Of(2), itemset.Of(2)},
		{itemset.Of(0), itemset.Of(0, 2)},
		{itemset.Of(1), itemset.Of(1, 4)},
		{itemset.Of(1, 2), itemset.Of(1, 2, 4)},
		{itemset.Of(0, 4), itemset.Of(0, 1, 2, 4)},
	}
	for _, c := range cases {
		got, ok := s.ClosureOf(c.in)
		if !ok || !got.Items.Equal(c.want) {
			t.Errorf("ClosureOf(%v) = %v,%v want %v", c.in, got.Items, ok, c.want)
		}
	}
	if _, ok := s.ClosureOf(itemset.Of(3)); ok {
		t.Error("ClosureOf over uncovered item should fail")
	}
}

func TestClosureOfAfterMutation(t *testing.T) {
	// The sorted index must be rebuilt after Add.
	s := New()
	s.Add(itemset.Of(0, 1), 3)
	if got, ok := s.ClosureOf(itemset.Of(0)); !ok || !got.Items.Equal(itemset.Of(0, 1)) {
		t.Fatalf("ClosureOf = %v,%v", got.Items, ok)
	}
	s.Add(itemset.Of(0), 5)
	if got, ok := s.ClosureOf(itemset.Of(0)); !ok || !got.Items.Equal(itemset.Of(0)) {
		t.Fatalf("after Add: ClosureOf = %v,%v", got.Items, ok)
	}
}

func TestSupportOf(t *testing.T) {
	s := buildClassic()
	if sup, ok := s.SupportOf(itemset.Of(0)); !ok || sup != 3 {
		t.Errorf("SupportOf(A) = %d,%v", sup, ok)
	}
	if sup, ok := s.SupportOf(itemset.Of(0, 1)); !ok || sup != 2 {
		t.Errorf("SupportOf(AB) = %d,%v", sup, ok)
	}
}

func TestMaximal(t *testing.T) {
	s := buildClassic()
	max := s.Maximal()
	if len(max) != 1 || !max[0].Items.Equal(itemset.Of(0, 1, 2, 4)) {
		t.Errorf("Maximal = %v", max)
	}
	// Two incomparable maxima.
	s2 := New()
	s2.Add(itemset.Of(0, 1), 2)
	s2.Add(itemset.Of(2, 3), 2)
	s2.Add(itemset.Of(0), 3)
	if got := s2.Maximal(); len(got) != 2 {
		t.Errorf("Maximal = %v", got)
	}
}

func TestBottom(t *testing.T) {
	s := buildClassic()
	bot, ok := s.Bottom()
	if !ok || bot.Items.Len() != 0 || bot.Support != 5 {
		t.Errorf("Bottom = %+v,%v", bot, ok)
	}
	if _, ok := New().Bottom(); ok {
		t.Error("empty set has a bottom")
	}
	// Incomplete set without a universal least element.
	s2 := New()
	s2.Add(itemset.Of(0), 3)
	s2.Add(itemset.Of(1), 3)
	if _, ok := s2.Bottom(); ok {
		t.Error("no least element but Bottom ok")
	}
}

func TestEqual(t *testing.T) {
	a, b := buildClassic(), buildClassic()
	if !a.Equal(b) {
		t.Error("identical sets not Equal")
	}
	b.Add(itemset.Of(2), 99)
	if a.Equal(b) {
		t.Error("different support but Equal")
	}
	c := buildClassic()
	c.Add(itemset.Of(3), 1)
	if a.Equal(c) {
		t.Error("different size but Equal")
	}
}

func TestAllGeneratorsOrder(t *testing.T) {
	s := New()
	s.AddGenerator(itemset.Of(0, 2), 3, itemset.Of(0))
	s.AddGenerator(itemset.Of(1, 4), 4, itemset.Of(4))
	s.AddGenerator(itemset.Of(1, 4), 4, itemset.Of(1))
	gens := s.AllGenerators()
	if len(gens) != 3 {
		t.Fatalf("%d generators", len(gens))
	}
	for i := 1; i < len(gens); i++ {
		if gens[i-1].Generator.Compare(gens[i].Generator) > 0 {
			t.Errorf("generators out of order: %v then %v",
				gens[i-1].Generator, gens[i].Generator)
		}
	}
}
