package closedset

import (
	"math/rand"
	"strings"
	"testing"

	"closedrules/internal/itemset"
)

func TestWriteReadRoundTrip(t *testing.T) {
	s := New()
	s.AddGenerator(itemset.Of(), 5, itemset.Of())
	s.AddGenerator(itemset.Of(0, 2), 3, itemset.Of(0))
	s.AddGenerator(itemset.Of(1, 4), 4, itemset.Of(1))
	s.AddGenerator(itemset.Of(1, 4), 4, itemset.Of(4))
	s.Add(itemset.Of(2), 4)

	var sb strings.Builder
	if err := Write(&sb, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("round trip mismatch:\n%s", sb.String())
	}
	// Generators preserved too.
	c, ok := got.Get(itemset.Of(1, 4))
	if !ok || len(c.Generators) != 2 {
		t.Errorf("generators lost: %+v", c)
	}
	bot, ok := got.Bottom()
	if !ok || bot.Items.Len() != 0 || bot.Support != 5 {
		t.Errorf("bottom lost: %+v,%v", bot, ok)
	}
}

func TestReadSkipsCommentsAndBlankLines(t *testing.T) {
	in := "# header\n\n4\t2\n# comment\n3\t0 2\t0\n"
	s, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"notanumber\t1 2\n",
		"5\n",
		"5\tx y\n",
		"5\t1 2\tbadgen\n",
		"-3\t1\n",
		"5\t-1 2\n",
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad input accepted: %q", i, in)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for iter := 0; iter < 40; iter++ {
		s := New()
		for n := 0; n < r.Intn(25); n++ {
			var items []int
			for i := 0; i < r.Intn(6); i++ {
				items = append(items, r.Intn(40))
			}
			is := itemset.Of(items...)
			sup := 1 + r.Intn(100)
			s.Add(is, sup)
			for g := 0; g < r.Intn(3); g++ {
				var gi []int
				for _, x := range is {
					if r.Intn(2) == 0 {
						gi = append(gi, x)
					}
				}
				s.AddGenerator(is, sup, itemset.Of(gi...))
			}
		}
		var sb strings.Builder
		if err := Write(&sb, s); err != nil {
			t.Fatal(err)
		}
		got, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(s) {
			t.Fatalf("iter %d: round trip mismatch", iter)
		}
	}
}
