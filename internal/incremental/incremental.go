// Package incremental maintains a mined family of frequent closed
// itemsets under appended transactions, so the refresh layer can update
// the served lattice instead of re-mining the whole dataset (the
// simultaneous lattice-construction idea of Hamrouni et al., applied as
// delta maintenance).
//
// The engine is exact, not approximate. For a pure append D' = D ∪ Δ
// three facts make a delta algorithm complete:
//
//  1. Every itemset closed in D stays closed in D': appending objects
//     only shrinks extents per-itemset intersection-wise, and the
//     closure h_D'(A) ⊆ h_D(A) = A while A ⊆ h_D'(A) always, so the
//     resident closed sets survive verbatim. Only their supports move,
//     by exactly their support within Δ.
//
//  2. Every itemset newly closed in D' has a non-empty extent inside Δ
//     (otherwise its D'-extent equals its D-extent and it would have
//     been closed in D already), hence it is a subset of some appended
//     transaction.
//
//  3. With a relative threshold the absolute minimum support is
//     non-decreasing under appends, so an itemset frequent in D' that
//     does not occur in Δ was already frequent in D — the resident
//     family plus the subsets of appended rows cover all of FC(D').
//
// Update therefore (a) re-counts resident supports against a small
// vertical Δ-context, and (b) runs a Close-by-One enumeration of the
// closed sets of D' restricted to the items of each (maximal, distinct)
// appended transaction, keeping candidates that are closed in the full
// context and not already resident. Generators are not maintained —
// minimality of a generator is a global property that an append can
// break anywhere in the lattice — so callers that serve generator-based
// bases must fall back to a full re-mine.
package incremental

import (
	"context"
	"fmt"
	"sort"

	"closedrules/internal/bitset"
	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
)

// pollEvery is the stride of context polls in the flat (non-recursive)
// passes; the recursive enumeration checks on every extension instead.
const pollEvery = 1024

// Update derives FC(full, minSup) from prev = FC(D, prevMinSup), where
// D is the prefix of full holding its first prevTx transactions. It
// returns a fresh Set — prev is never mutated — whose closed itemsets
// and supports are identical to what a full mine of full at minSup
// would produce; generators are not carried over.
//
// The thresholds are absolute counts. minSup must be ≥ prevMinSup:
// a lowered threshold can admit itemsets that were closed and
// infrequent in D but absent from Δ, which no delta scan can recover;
// Update refuses and the caller should re-mine. Likewise it refuses
// when nothing was appended.
func Update(ctx context.Context, prev *closedset.Set, prevMinSup int, full *dataset.Dataset, prevTx, minSup int) (*closedset.Set, error) {
	if prev == nil || full == nil {
		return nil, fmt.Errorf("incremental: nil previous set or dataset")
	}
	n := full.NumTransactions()
	deltaN := n - prevTx
	if prevTx < 1 || deltaN <= 0 {
		return nil, fmt.Errorf("incremental: need a non-empty base and a non-empty delta (base %d, appended %d)", prevTx, deltaN)
	}
	if prevMinSup < 1 {
		return nil, fmt.Errorf("incremental: previous minimum support %d < 1", prevMinSup)
	}
	if minSup < prevMinSup {
		return nil, fmt.Errorf("incremental: minimum support lowered (%d -> %d); completeness requires a full re-mine", prevMinSup, minSup)
	}
	if minSup > n {
		return nil, fmt.Errorf("incremental: minimum support %d exceeds %d transactions", minSup, n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	u := &updater{
		full:   full,
		c:      full.Context(),
		prev:   prev,
		minSup: minSup,
		out:    closedset.New(),
	}

	// Pass 1: vertical Δ-context. One bitset column of width |Δ| per
	// item is enough to re-count every resident closed set by popcount
	// of column intersections.
	dcols := make([]bitset.Set, full.NumItems())
	for i := range dcols {
		dcols[i] = bitset.New(deltaN)
	}
	for o := prevTx; o < n; o++ {
		for _, x := range full.Transaction(o) {
			dcols[x].Add(o - prevTx)
		}
	}

	// Pass 2: resident closed sets survive with support + Δ-support;
	// the ones falling below the (possibly raised) threshold drop out.
	// Iteration order is irrelevant here — Each skips the canonical
	// sort-and-copy All would pay on every update of a refresh chain.
	scratch := bitset.New(deltaN)
	i := 0
	prev.Each(func(cl closedset.Closed) bool {
		if i++; i%pollEvery == 0 && ctx.Err() != nil {
			return false
		}
		if sup := cl.Support + deltaSupport(dcols, deltaN, scratch, cl.Items); sup >= minSup {
			u.out.Add(cl.Items, sup)
		}
		return true
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Pass 3: enumerate candidates among subsets of appended rows. Any
	// closed set new to D' lies inside some appended transaction, hence
	// inside a maximal one — deduplicate and drop dominated rows first,
	// then run one Close-by-One over the full context pruned to the
	// subsets of those rows.
	if err := newEnum(u, maximalRows(full, prevTx)).run(ctx); err != nil {
		return nil, err
	}
	return u.out, nil
}

// deltaSupport counts the appended transactions containing items, by
// intersecting their Δ-columns. scratch must have width deltaN.
func deltaSupport(dcols []bitset.Set, deltaN int, scratch bitset.Set, items itemset.Itemset) int {
	switch len(items) {
	case 0:
		return deltaN
	case 1:
		return dcols[items[0]].Count()
	case 2:
		return dcols[items[0]].IntersectionCount(dcols[items[1]])
	}
	scratch.Copy(dcols[items[0]])
	for _, x := range items[1 : len(items)-1] {
		scratch.And(dcols[x])
	}
	return scratch.IntersectionCount(dcols[items[len(items)-1]])
}

// maximalRows returns the ⊆-maximal distinct transactions among the
// appended suffix full[prevTx:]. Restricting the enumeration to them is
// lossless: a subset of an appended row is a subset of a maximal one.
func maximalRows(full *dataset.Dataset, prevTx int) []itemset.Itemset {
	distinct := make([]itemset.Itemset, 0, full.NumTransactions()-prevTx)
	seen := map[string]struct{}{}
	for o := prevTx; o < full.NumTransactions(); o++ {
		t := full.Transaction(o)
		k := t.Key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		distinct = append(distinct, t)
	}
	// Longest first, so a kept row can only be dominated by an earlier
	// kept row.
	sort.SliceStable(distinct, func(i, j int) bool { return len(distinct[i]) > len(distinct[j]) })
	maximal := make([]itemset.Itemset, 0, len(distinct))
outer:
	for _, t := range distinct {
		for _, m := range maximal {
			if m.ContainsAll(t) {
				continue outer
			}
		}
		maximal = append(maximal, t)
	}
	return maximal
}

// updater carries the per-Update state shared by the passes.
type updater struct {
	full   *dataset.Dataset
	c      *dataset.Context
	prev   *closedset.Set
	minSup int
	out    *closedset.Set
}

// enum is one Close-by-One enumeration of the closed sets of the full
// context, pruned to subsets of the appended maximal rows. Each node
// tracks the rows that still contain its closure as a small bitmask;
// when the mask empties the whole branch is abandoned, since descendant
// closures are supersets. Compared to enumerating each row's projection
// separately, prefixes shared between overlapping rows are visited once
// — the difference between linear and constant in the number of
// appended copies of a dense row — and canonicity makes every closed
// set appear exactly once, so no seen-set or closedness re-check is
// needed.
type enum struct {
	u        *updater
	rows     []itemset.Itemset
	rowsWith []bitset.Set // item -> rows whose transaction contains it
	rowItems []bitset.Set // row -> its items, over the item universe
	sup      []int        // item -> support in the full context
	ext      []bitset.Set // per-depth extent scratch (object universe)
	mask     []bitset.Set // per-depth row-mask scratch
	allowed  []bitset.Set // per-depth allowed-item scratch (item universe)
}

// newEnum builds the shared state of a Pass-3 enumeration: vertical row
// masks, per-item supports, and per-depth scratch buffers. Tree depth
// is bounded by the longest row, because closures grow by at least one
// item per level and must stay inside some row.
func newEnum(u *updater, rows []itemset.Itemset) *enum {
	e := &enum{u: u, rows: rows}
	e.rowsWith = make([]bitset.Set, u.c.NumItems)
	for i := range e.rowsWith {
		e.rowsWith[i] = bitset.New(len(rows))
	}
	e.rowItems = make([]bitset.Set, len(rows))
	maxLen := 0
	for ri, row := range rows {
		e.rowItems[ri] = bitset.New(u.c.NumItems)
		for _, i := range row {
			e.rowsWith[i].Add(ri)
			e.rowItems[ri].Add(i)
		}
		if len(row) > maxLen {
			maxLen = len(row)
		}
	}
	e.sup = make([]int, u.c.NumItems)
	for i, col := range u.c.Cols {
		e.sup[i] = col.Count()
	}
	depth := maxLen + 2
	e.ext = make([]bitset.Set, depth)
	e.mask = make([]bitset.Set, depth)
	e.allowed = make([]bitset.Set, depth)
	for d := range e.ext {
		e.ext[d] = bitset.New(u.c.NumObjects)
		e.mask[d] = bitset.New(len(rows))
		e.allowed[d] = bitset.New(u.c.NumItems)
	}
	return e
}

// run starts the enumeration at the closure of the full object set. Its
// items occur in every transaction — in particular in every appended
// row — so the root row mask stays full.
func (e *enum) run(ctx context.Context) error {
	if len(e.rows) == 0 {
		return nil
	}
	root := bitset.Full(e.u.c.NumObjects)
	var closure itemset.Itemset
	if o := root.Next(0); o >= 0 {
		for _, i := range e.u.full.Transaction(o) {
			if root.IsSubsetOf(e.u.c.Cols[i]) {
				closure = append(closure, i)
			}
		}
	}
	return e.visit(ctx, root, closure, bitset.Full(len(e.rows)), 0, 0)
}

// visit is one Close-by-One node: closure is closed in the full context
// with the given extent, mask holds the rows containing it, and
// extensions are tried with items ≥ start.
func (e *enum) visit(ctx context.Context, extent bitset.Set, closure itemset.Itemset, mask bitset.Set, start, depth int) error {
	e.emit(closure, extent)
	allowed := e.allowedItems(mask, depth)
	for j := allowed.Next(start); j >= 0; j = allowed.Next(j + 1) {
		if err := ctx.Err(); err != nil {
			return err
		}
		if e.sup[j] < e.u.minSup || closure.Contains(j) {
			continue
		}
		col := e.u.c.Cols[j]
		if !extent.IntersectionAtLeast(col, e.u.minSup) {
			continue
		}
		ext := e.ext[depth].AndInto(extent, col)
		next, m := e.close(ext, mask, closure, j, depth)
		if next == nil {
			continue
		}
		if !canonical(closure, next, j) {
			continue
		}
		if err := e.visit(ctx, ext, next, m, j+1, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// close computes the full-context closure of ext — the extent of
// closure extended by item j — together with the rows still containing
// that closure. The closure is contained in every member transaction,
// so scanning a single member bounds the candidate items. It returns a
// nil itemset as soon as no appended row contains the closure.
func (e *enum) close(ext, mask bitset.Set, closure itemset.Itemset, j, depth int) (itemset.Itemset, bitset.Set) {
	m := e.mask[depth].AndInto(mask, e.rowsWith[j])
	if m.IsEmpty() {
		return nil, m
	}
	o := ext.Next(0)
	if o < 0 {
		return nil, m // unreachable: extents here have count ≥ minSup ≥ 1
	}
	t := e.u.full.Transaction(o)
	out := make(itemset.Itemset, 0, len(t))
	for _, i := range t {
		switch {
		case i == j || closure.Contains(i):
			out = append(out, i)
		case ext.IsSubsetOf(e.u.c.Cols[i]):
			out = append(out, i)
			m.And(e.rowsWith[i])
			if m.IsEmpty() {
				return nil, m
			}
		}
	}
	return out, m
}

// allowedItems returns the union of the items of the rows in mask: only
// they can extend the closure without leaving every appended row.
func (e *enum) allowedItems(mask bitset.Set, depth int) bitset.Set {
	buf := e.allowed[depth]
	buf.Clear()
	mask.ForEach(func(ri int) bool {
		buf.Or(e.rowItems[ri])
		return true
	})
	return buf
}

// canonical is the Close-by-One test: extending closure with j is
// canonical iff the resulting closure adds no item smaller than j —
// otherwise the same closed set is generated from that smaller item.
func canonical(closure, next itemset.Itemset, j int) bool {
	for _, i := range next {
		if i >= j {
			return true
		}
		if !closure.Contains(i) {
			return false
		}
	}
	return true
}

// emit settles one closed set: residents were already carried over with
// their recounted supports in pass 2; anything else is new to D'.
func (e *enum) emit(closure itemset.Itemset, extent bitset.Set) {
	if e.u.prev.Contains(closure) {
		return
	}
	e.u.out.Add(closure, extent.Count())
}
