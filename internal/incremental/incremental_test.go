package incremental

import (
	"context"
	"math/rand"
	"testing"

	"closedrules/internal/bitset"
	"closedrules/internal/charm"
	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/testgen"
)

// fullMine is the reference: an ordinary mine of the whole dataset.
func fullMine(t *testing.T, d *dataset.Dataset, minSup int) *closedset.Set {
	t.Helper()
	fc, err := charm.MineContext(context.Background(), d, minSup)
	if err != nil {
		t.Fatalf("charm mine: %v", err)
	}
	return fc
}

// requireEqual asserts the two sets hold the same itemsets and supports.
func requireEqual(t *testing.T, got, want *closedset.Set, label string) {
	t.Helper()
	if got.Equal(want) && want.Equal(got) {
		return
	}
	t.Fatalf("%s: incremental FC differs from full mine\n got %d closed sets: %v\nwant %d closed sets: %v",
		label, got.Len(), got.All(), want.Len(), want.All())
}

// randomDataset draws a dataset with at least min transactions.
func randomDataset(r *rand.Rand, min int) *dataset.Dataset {
	for {
		d := testgen.Random(r, 60, 10, 0.35)
		if d.NumTransactions() >= min {
			return d
		}
	}
}

// TestUpdateMatchesFullMineRandom replays random append schedules over
// random datasets and checks each incremental step against a full mine
// of the same prefix at the same (relative, hence non-decreasing
// absolute) threshold.
func TestUpdateMatchesFullMineRandom(t *testing.T) {
	ctx := context.Background()
	for seed := 0; seed < 10; seed++ {
		r := rand.New(rand.NewSource(int64(seed)*7919 + 1))
		d := randomDataset(r, 12)
		n := d.NumTransactions()
		rel := 0.1 + 0.2*r.Float64()

		cur := 4 + r.Intn(n/2)
		base, err := d.Slice(0, cur)
		if err != nil {
			t.Fatal(err)
		}
		prevMin := base.AbsoluteSupport(rel)
		fc := fullMine(t, base, prevMin)
		for cur < n {
			hi := cur + 1 + r.Intn(5)
			if hi > n {
				hi = n
			}
			full, err := d.Slice(0, hi)
			if err != nil {
				t.Fatal(err)
			}
			minSup := full.AbsoluteSupport(rel)
			got, err := Update(ctx, fc, prevMin, full, cur, minSup)
			if err != nil {
				t.Fatalf("seed %d: Update(%d->%d): %v", seed, cur, hi, err)
			}
			requireEqual(t, got, fullMine(t, full, minSup), "random schedule")
			fc, prevMin, cur = got, minSup, hi
		}
	}
}

// TestUpdateMatchesFullMineCorrelated repeats the schedule check in the
// correlated regime (many equal-support itemsets, dense rows).
func TestUpdateMatchesFullMineCorrelated(t *testing.T) {
	ctx := context.Background()
	for seed := 0; seed < 4; seed++ {
		r := rand.New(rand.NewSource(int64(seed)*104729 + 3))
		d := testgen.Correlated(r, 40, 5, 3, 0.2)
		n := d.NumTransactions()
		cur := n / 2
		base, err := d.Slice(0, cur)
		if err != nil {
			t.Fatal(err)
		}
		prevMin := base.AbsoluteSupport(0.25)
		fc := fullMine(t, base, prevMin)
		for cur < n {
			hi := cur + 1 + r.Intn(4)
			if hi > n {
				hi = n
			}
			full, err := d.Slice(0, hi)
			if err != nil {
				t.Fatal(err)
			}
			minSup := full.AbsoluteSupport(0.25)
			got, err := Update(ctx, fc, prevMin, full, cur, minSup)
			if err != nil {
				t.Fatalf("seed %d: Update: %v", seed, err)
			}
			requireEqual(t, got, fullMine(t, full, minSup), "correlated schedule")
			fc, prevMin, cur = got, minSup, hi
		}
	}
}

// TestUpdateGrowsItemUniverse appends transactions that mention items
// the base dataset has never seen; the concatenated universe is wider
// than the one the resident family was mined in.
func TestUpdateGrowsItemUniverse(t *testing.T) {
	base, err := dataset.FromTransactions([][]int{
		{0, 1, 2}, {0, 2}, {1, 2}, {0, 1}, {2},
	})
	if err != nil {
		t.Fatal(err)
	}
	appended, err := dataset.FromTransactions([][]int{
		{0, 2, 7}, {1, 7, 9}, {7, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := dataset.Concat(base, appended)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumItems() != 10 {
		t.Fatalf("concat universe = %d, want 10", full.NumItems())
	}
	fc := fullMine(t, base, 1)
	got, err := Update(context.Background(), fc, 1, full, base.NumTransactions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, got, fullMine(t, full, 2), "grown universe")
}

// TestUpdateEmptyAndDuplicateRows exercises appended batches containing
// empty transactions and exact duplicates of base rows.
func TestUpdateEmptyAndDuplicateRows(t *testing.T) {
	d, err := dataset.FromTransactions([][]int{
		{0, 1, 2}, {0, 2}, {1, 2}, {0, 1, 2}, // base
		{}, {0, 2}, {0, 1, 2}, {}, // appended
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := d.Slice(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	fc := fullMine(t, base, 1)
	got, err := Update(context.Background(), fc, 1, d, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	requireEqual(t, got, fullMine(t, d, 2), "empty and duplicate rows")
}

// TestUpdateRefusals covers the inputs Update must reject: lowered
// thresholds, empty deltas, empty bases, thresholds above |O|.
func TestUpdateRefusals(t *testing.T) {
	d, err := dataset.FromTransactions([][]int{{0, 1}, {0}, {1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	base, err := d.Slice(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	fc := fullMine(t, base, 2)
	ctx := context.Background()
	cases := []struct {
		name            string
		prevTx          int
		prevMin, minSup int
	}{
		{"lowered threshold", 2, 2, 1},
		{"empty delta", 4, 2, 2},
		{"empty base", 0, 2, 2},
		{"threshold above n", 2, 2, 5},
		{"bad prev threshold", 2, 0, 2},
	}
	for _, tc := range cases {
		if _, err := Update(ctx, fc, tc.prevMin, d, tc.prevTx, tc.minSup); err == nil {
			t.Errorf("%s: Update accepted, want error", tc.name)
		}
	}
	if _, err := Update(ctx, nil, 2, d, 2, 2); err == nil {
		t.Error("nil previous set accepted")
	}
}

// TestUpdateCancellation: a cancelled context aborts the update.
func TestUpdateCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	d := randomDataset(r, 20)
	base, err := d.Slice(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	fc := fullMine(t, base, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Update(ctx, fc, 2, d, 10, 2); err != context.Canceled {
		t.Fatalf("Update on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestUpdateDoesNotMutatePrev: the resident family must be reusable for
// retries (the refresher falls back to a full mine on error).
func TestUpdateDoesNotMutatePrev(t *testing.T) {
	d, err := dataset.FromTransactions([][]int{
		{0, 1, 2}, {0, 2}, {1, 2}, {0, 1, 2}, {0, 1}, {2}, {0, 1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := d.Slice(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	fc := fullMine(t, base, 1)
	before := fc.All()
	if _, err := Update(context.Background(), fc, 1, d, 4, 2); err != nil {
		t.Fatal(err)
	}
	after := fc.All()
	if len(before) != len(after) {
		t.Fatalf("prev mutated: %d -> %d closed sets", len(before), len(after))
	}
	for i := range before {
		if !before[i].Items.Equal(after[i].Items) || before[i].Support != after[i].Support {
			t.Fatalf("prev mutated at %d: %v/%d -> %v/%d",
				i, before[i].Items, before[i].Support, after[i].Items, after[i].Support)
		}
	}
}

// TestDeltaSupport checks the vertical Δ-count helper directly.
func TestDeltaSupport(t *testing.T) {
	d, err := dataset.FromTransactions([][]int{
		{0, 1, 2}, {0, 2}, {1, 2}, {2}, {0, 1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Δ = last 3 rows; build the Δ-columns exactly as Update does.
	n, prevTx := d.NumTransactions(), 2
	deltaN := n - prevTx
	dc := make([]bitset.Set, d.NumItems())
	for i := range dc {
		dc[i] = bitset.New(deltaN)
	}
	for o := prevTx; o < n; o++ {
		for _, x := range d.Transaction(o) {
			dc[x].Add(o - prevTx)
		}
	}
	scratch := bitset.New(deltaN)
	cases := []struct {
		items itemset.Itemset
		want  int
	}{
		{itemset.Of(), 3},
		{itemset.Of(2), 3},
		{itemset.Of(0), 1},
		{itemset.Of(0, 1), 1},
		{itemset.Of(0, 1, 2), 1},
		{itemset.Of(1, 2), 2},
	}
	for _, tc := range cases {
		if got := deltaSupport(dc, deltaN, scratch, tc.items); got != tc.want {
			t.Errorf("deltaSupport(%v) = %d, want %d", tc.items, got, tc.want)
		}
	}
}
