package core

import (
	"fmt"

	"closedrules/internal/closedset"
	"closedrules/internal/lattice"
	"closedrules/internal/rules"
)

// LuxenburgerOptions controls the construction of the approximate-rule
// bases of Theorem 2.
type LuxenburgerOptions struct {
	// MinConfidence keeps only rules with confidence ≥ this threshold.
	MinConfidence float64
	// IncludeEmptyAntecedent keeps rules whose antecedent is the empty
	// closed set (possible when h(∅) = ∅ ∈ FC). Conventional rule
	// listings exclude them; support derivation along lattice paths
	// needs them, so the inference engine always works on the
	// unfiltered diagram.
	IncludeEmptyAntecedent bool
}

// LuxenburgerFull builds the (unreduced) Luxenburger basis: one rule
// I1 → I2∖I1 for every pair of frequent closed itemsets I1 ⊂ I2. For
// comparable closed itemsets supports strictly decrease upward, so
// every rule is approximate (confidence < 1).
func LuxenburgerFull(fc *closedset.Set, opt LuxenburgerOptions) ([]rules.Rule, error) {
	if err := checkConf(opt.MinConfidence); err != nil {
		return nil, err
	}
	all := fc.All()
	var out []rules.Rule
	for i, lo := range all {
		if lo.Items.Len() == 0 && !opt.IncludeEmptyAntecedent {
			continue
		}
		for j, hi := range all {
			if i == j || !hi.Items.ContainsAll(lo.Items) || len(hi.Items) == len(lo.Items) {
				continue
			}
			r := closedPairRule(lo, hi, fc)
			if r.Confidence() >= opt.MinConfidence {
				out = append(out, r)
			}
		}
	}
	rules.Sort(out)
	return out, nil
}

// LuxenburgerReduction builds the transitive reduction of the
// Luxenburger basis (Theorem 2, second part): only the Hasse edges of
// the iceberg lattice. Every approximate rule's support and confidence
// is recoverable from these edges by path products, which is what
// Engine implements.
func LuxenburgerReduction(lat *lattice.Lattice, fc *closedset.Set, opt LuxenburgerOptions) ([]rules.Rule, error) {
	if err := checkConf(opt.MinConfidence); err != nil {
		return nil, err
	}
	var out []rules.Rule
	for _, e := range lat.Edges() {
		lo, hi := lat.Nodes[e[0]], lat.Nodes[e[1]]
		if lo.Items.Len() == 0 && !opt.IncludeEmptyAntecedent {
			continue
		}
		r := closedPairRule(lo, hi, fc)
		if r.Confidence() >= opt.MinConfidence {
			out = append(out, r)
		}
	}
	rules.Sort(out)
	return out, nil
}

func closedPairRule(lo, hi closedset.Closed, fc *closedset.Set) rules.Rule {
	cons := hi.Items.Diff(lo.Items)
	consSup := 0
	if s, ok := fc.SupportOf(cons); ok {
		consSup = s
	}
	return rules.Rule{
		Antecedent:        lo.Items,
		Consequent:        cons,
		Support:           hi.Support,
		AntecedentSupport: lo.Support,
		ConsequentSupport: consSup,
	}
}

func checkConf(c float64) error {
	if c < 0 || c > 1 {
		return fmt.Errorf("core: minConfidence %v outside [0,1]", c)
	}
	return nil
}
