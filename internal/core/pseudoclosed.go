// Package core implements the primary contribution of the ICDE'2000
// paper: bases for association rules built on frequent closed
// itemsets.
//
//   - Theorem 1: the Duquenne–Guigues basis for exact (100% confidence)
//     rules, defined on the frequent pseudo-closed itemsets;
//   - Theorem 2: the Luxenburger basis for approximate rules, defined
//     on pairs of comparable frequent closed itemsets, and its
//     transitive reduction on the Hasse diagram of the iceberg lattice;
//   - the inference machinery (LinClosure over implications, path
//     products over the lattice) that constructively proves the basis
//     property: every valid rule, with its support and confidence, is
//     derivable from the bases alone;
//   - the informative (min-max) bases on minimal generators, the
//     follow-on refinement by the same authors (SIGKDD Expl. 2000),
//     included as an extension.
package core

import (
	"fmt"

	"closedrules/internal/closedset"
	"closedrules/internal/itemset"
)

// Pseudo is a frequent pseudo-closed itemset together with its closure
// and support: the raw material of the Duquenne–Guigues basis.
type Pseudo struct {
	Items   itemset.Itemset
	Closure itemset.Itemset
	Support int // supp(Items) = supp(Closure)
}

// PseudoClosedSets computes the frequent pseudo-closed itemsets from
// the frequent itemsets and the frequent closed itemsets (Theorem 1's
// definition): a frequent itemset I is pseudo-closed iff it is not
// closed and h(Q) ⊆ I for every frequent pseudo-closed Q ⊊ I. The
// empty set is pseudo-closed iff it is not closed (h(∅) ≠ ∅).
//
// numTx is |O|, needed for the support of ∅. The frequent family must
// be complete down to the mining threshold; results are in
// size-ascending canonical order.
func PseudoClosedSets(numTx int, fam *itemset.Family, fc *closedset.Set) ([]Pseudo, error) {
	var out []Pseudo
	consider := func(items itemset.Itemset) error {
		if fc.Contains(items) {
			return nil // closed, not pseudo-closed
		}
		for _, q := range out {
			if items.ContainsAll(q.Items) && !items.ContainsAll(q.Closure) {
				return nil // misses the closure of a pseudo-closed subset
			}
		}
		cl, ok := fc.ClosureOf(items)
		if !ok {
			return fmt.Errorf("core: no closure for frequent itemset %v (FC incomplete?)", items)
		}
		out = append(out, Pseudo{Items: items, Closure: cl.Items, Support: cl.Support})
		return nil
	}

	// ∅ is frequent iff |O| ≥ minsup, which holds exactly when the
	// mining run produced a bottom element (FC non-empty).
	if numTx > 0 && fc.Len() > 0 {
		if err := consider(itemset.Empty()); err != nil {
			return nil, err
		}
	}
	// fam.All() is (size, lex)-ordered: every proper subset of an
	// itemset precedes it, which is all the recurrence needs.
	for _, f := range fam.All() {
		if err := consider(f.Items); err != nil {
			return nil, err
		}
	}
	return out, nil
}
