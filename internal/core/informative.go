package core

import (
	"fmt"

	"closedrules/internal/closedset"
	"closedrules/internal/lattice"
	"closedrules/internal/rules"
)

// The informative ("min-max") bases are the follow-on refinement of
// this paper's bases by the same group (Bastide, Pasquier, Taouil,
// Stumme, Lakhal — "Mining minimal non-redundant association rules
// using frequent closed itemsets", CL 2000 / SIGKDD Explorations
// 2(2)). Where Duquenne–Guigues rules have pseudo-closed antecedents,
// informative rules have *minimal generator* antecedents: each rule
// has a minimal antecedent and a maximal consequent, which makes the
// set larger than the DG basis but directly readable (no inference
// needed to interpret a rule). They require a miner that tracks
// generators (Close or A-Close in this library).

// GenericBasis builds the generic basis for exact rules: g → h(g)∖g
// for every minimal generator g that differs from its closure.
func GenericBasis(fc *closedset.Set) ([]rules.Rule, error) {
	gens := fc.AllGenerators()
	if len(gens) == 0 && fc.Len() > 0 {
		return nil, fmt.Errorf("core: closed set carries no generators (use Close or A-Close)")
	}
	var out []rules.Rule
	for _, g := range gens {
		if g.Generator.Equal(g.Closure) {
			continue
		}
		cons := g.Closure.Diff(g.Generator)
		consSup := 0
		if s, ok := fc.SupportOf(cons); ok {
			consSup = s
		}
		out = append(out, rules.Rule{
			Antecedent:        g.Generator,
			Consequent:        cons,
			Support:           g.Support,
			AntecedentSupport: g.Support,
			ConsequentSupport: consSup,
		})
	}
	rules.Sort(out)
	return out, nil
}

// InformativeBasis builds the informative basis for approximate rules:
// g → I2∖g for every minimal generator g and every frequent closed
// I2 ⊋ h(g). Reduced=true restricts I2 to the upper covers of h(g) in
// the iceberg lattice (the "reduced informative basis").
func InformativeBasis(lat *lattice.Lattice, fc *closedset.Set, reduced bool, opt LuxenburgerOptions) ([]rules.Rule, error) {
	if err := checkConf(opt.MinConfidence); err != nil {
		return nil, err
	}
	gens := fc.AllGenerators()
	if len(gens) == 0 && fc.Len() > 0 {
		return nil, fmt.Errorf("core: closed set carries no generators (use Close or A-Close)")
	}
	var out []rules.Rule
	for _, g := range gens {
		if g.Generator.Len() == 0 && !opt.IncludeEmptyAntecedent {
			continue
		}
		hIdx, ok := lat.NodeIndex(g.Closure)
		if !ok {
			return nil, fmt.Errorf("core: closure %v missing from lattice", g.Closure)
		}
		var targets []int
		if reduced {
			targets = lat.Up[hIdx]
		} else {
			targets = strictSupersets(lat, hIdx)
		}
		for _, ti := range targets {
			hi := lat.Nodes[ti]
			cons := hi.Items.Diff(g.Generator)
			consSup := 0
			if s, ok := fc.SupportOf(cons); ok {
				consSup = s
			}
			r := rules.Rule{
				Antecedent:        g.Generator,
				Consequent:        cons,
				Support:           hi.Support,
				AntecedentSupport: g.Support,
				ConsequentSupport: consSup,
			}
			if r.Confidence() >= opt.MinConfidence {
				out = append(out, r)
			}
		}
	}
	out = rules.Dedup(out)
	rules.Sort(out)
	return out, nil
}

// strictSupersets returns the indices of all nodes strictly above idx.
func strictSupersets(lat *lattice.Lattice, idx int) []int {
	var out []int
	base := lat.Nodes[idx].Items
	for j, n := range lat.Nodes {
		if j != idx && n.Items.ContainsAll(base) && n.Items.Len() > base.Len() {
			out = append(out, j)
		}
	}
	return out
}
