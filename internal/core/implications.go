package core

import (
	"closedrules/internal/itemset"
	"closedrules/internal/rules"
)

// Implications is a set of implications (exact rules) equipped with the
// LinClosure fixpoint operator (Beeri & Bernstein): Close(X) is the
// smallest itemset containing X that satisfies every implication. When
// the implications are the Duquenne–Guigues basis of a context,
// Close(X) = h(X) for every frequent X — the syntactic closure matches
// the semantic one, which is exactly Theorem 1's completeness claim.
type Implications struct {
	premises    []itemset.Itemset
	conclusions []itemset.Itemset
	// byItem[i] lists the implications whose premise contains item i.
	byItem map[int][]int
	// emptyPremise lists implications with an empty premise (∅ → h(∅)).
	emptyPremise []int
}

// NewImplications indexes a list of exact rules for LinClosure.
// Non-exact rules are rejected by the caller's contract but tolerated
// here: they are treated as implications regardless of confidence.
func NewImplications(basis []rules.Rule) *Implications {
	s := &Implications{byItem: map[int][]int{}}
	for _, r := range basis {
		idx := len(s.premises)
		s.premises = append(s.premises, r.Antecedent)
		s.conclusions = append(s.conclusions, r.Consequent)
		if r.Antecedent.Len() == 0 {
			s.emptyPremise = append(s.emptyPremise, idx)
			continue
		}
		for _, it := range r.Antecedent {
			s.byItem[it] = append(s.byItem[it], idx)
		}
	}
	return s
}

// Len returns the number of implications.
func (s *Implications) Len() int { return len(s.premises) }

// Close computes the closure of x under the implication set with the
// LinClosure counting strategy: each implication fires once, when the
// last item of its premise is reached.
func (s *Implications) Close(x itemset.Itemset) itemset.Itemset {
	need := make([]int, len(s.premises))
	inClosure := map[int]bool{}
	var queue []int

	add := func(it int) {
		if !inClosure[it] {
			inClosure[it] = true
			queue = append(queue, it)
		}
	}

	fire := func(idx int) {
		for _, c := range s.conclusions[idx] {
			add(c)
		}
	}

	for i := range s.premises {
		need[i] = s.premises[i].Len()
	}
	for _, idx := range s.emptyPremise {
		fire(idx)
	}
	for _, it := range x {
		add(it)
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, idx := range s.byItem[it] {
			need[idx]--
			if need[idx] == 0 {
				fire(idx)
			}
		}
	}

	out := make([]int, 0, len(inClosure))
	for it := range inClosure {
		out = append(out, it)
	}
	return itemset.Of(out...)
}

// Derives reports whether the exact rule A → C is a consequence of the
// implication set (Armstrong derivability): C ⊆ Close(A).
func (s *Implications) Derives(r rules.Rule) bool {
	return s.Close(r.Antecedent).ContainsAll(r.Consequent)
}

// Respects reports whether the itemset is a model of the implication
// set: every implication with premise ⊆ x has its conclusion ⊆ x,
// i.e. x is its own closure.
func (s *Implications) Respects(x itemset.Itemset) bool {
	return s.Close(x).Equal(x)
}
