package core

import (
	"fmt"

	"closedrules/internal/itemset"
	"closedrules/internal/rules"
)

// Engine derives any valid association rule — with its exact support
// and confidence — from the two bases alone, without access to the
// database or to the full FC set. It is the constructive counterpart
// of the paper's Theorems 1 and 2:
//
//   - closures come from LinClosure over the Duquenne–Guigues basis
//     (h(X) is the implicational closure of X);
//   - supports of closed itemsets come from the rule records of the
//     (reduced) Luxenburger basis, seeded with |O| for the bottom;
//   - any rule A → C is then measured as
//     conf = supp(h(A∪C)) / supp(h(A)), supp = supp(h(A∪C)).
//
// Build the engine from unfiltered bases (MinConfidence 0,
// IncludeEmptyAntecedent true) for complete derivability; confidence-
// filtered bases yield a partial engine that cannot see below the
// filter, mirroring the paper's remark that the bases are generating
// sets for the rules above the thresholds.
type Engine struct {
	imps     *Implications
	numTx    int
	supports map[string]int // closure key → absolute support
}

// NewEngine assembles a derivation engine from the Duquenne–Guigues
// basis and a Luxenburger basis (full or reduced). numTx is |O|.
func NewEngine(numTx int, dg, lux []rules.Rule) (*Engine, error) {
	if numTx < 0 {
		return nil, fmt.Errorf("core: negative numTx")
	}
	e := &Engine{imps: NewImplications(dg), numTx: numTx, supports: map[string]int{}}

	// The bottom closed set is the closure of ∅; its support is |O|.
	bottom := e.imps.Close(itemset.Empty())
	e.supports[bottom.Key()] = numTx

	// Every Luxenburger rule records supp(I2) on the rule (and supp(I1)
	// as the antecedent support); harvest both ends.
	for _, r := range lux {
		e.supports[r.Union().Key()] = r.Support
		e.supports[r.Antecedent.Key()] = r.AntecedentSupport
	}
	// DG rules record supp(h(P)) too.
	for _, r := range dg {
		e.supports[r.Union().Key()] = r.Support
	}
	return e, nil
}

// Closure returns h(X) as derived from the exact basis.
func (e *Engine) Closure(x itemset.Itemset) itemset.Itemset {
	return e.imps.Close(x)
}

// Support returns supp(X) = supp(h(X)) if the closure's support is
// derivable from the bases.
func (e *Engine) Support(x itemset.Itemset) (int, bool) {
	s, ok := e.supports[e.Closure(x).Key()]
	return s, ok
}

// memoSupport is a memoized Support probe result (see supportMemoized).
type memoSupport struct {
	sup int
	ok  bool
}

// supportMemoized is Support with a caller-owned memo keyed by the raw
// (unclosed) itemset key: the key is derived once per lookup and the
// LinClosure fixpoint once per distinct itemset, instead of once per
// probe. Hot loops that probe the same sides repeatedly — DeriveAllRules
// asks for every subset of an itemset first as an antecedent and again
// as a consequent — pass one memo across the whole loop.
func (e *Engine) supportMemoized(x itemset.Itemset, memo map[string]memoSupport) (int, bool) {
	k := x.Key()
	if v, hit := memo[k]; hit {
		return v.sup, v.ok
	}
	s, ok := e.supports[e.imps.Close(x).Key()]
	memo[k] = memoSupport{sup: s, ok: ok}
	return s, ok
}

// Rule reconstructs the measured rule A → C. The consequent support is
// filled in when derivable, else left 0.
func (e *Engine) Rule(antecedent, consequent itemset.Itemset) (rules.Rule, error) {
	if antecedent.Intersect(consequent).Len() > 0 {
		return rules.Rule{}, fmt.Errorf("core: antecedent and consequent overlap")
	}
	u := antecedent.Union(consequent)
	supU, ok := e.Support(u)
	if !ok {
		return rules.Rule{}, fmt.Errorf("core: support of %v not derivable", u)
	}
	supA, ok := e.Support(antecedent)
	if !ok {
		return rules.Rule{}, fmt.Errorf("core: support of %v not derivable", antecedent)
	}
	r := rules.Rule{
		Antecedent:        antecedent,
		Consequent:        consequent,
		Support:           supU,
		AntecedentSupport: supA,
	}
	if supC, ok := e.Support(consequent); ok {
		r.ConsequentSupport = supC
	}
	return r, nil
}

// Holds reports whether A → C is a valid rule at the given thresholds,
// as decided purely from the bases.
func (e *Engine) Holds(antecedent, consequent itemset.Itemset, minSup int, minConf float64) (bool, error) {
	r, err := e.Rule(antecedent, consequent)
	if err != nil {
		return false, err
	}
	return r.Support >= minSup && r.Confidence() >= minConf, nil
}

// DeriveExact reports whether the exact rule A → C (confidence 1)
// follows from the Duquenne–Guigues basis by Armstrong inference.
func (e *Engine) DeriveExact(antecedent, consequent itemset.Itemset) bool {
	return e.imps.Derives(rules.Rule{Antecedent: antecedent, Consequent: consequent})
}
