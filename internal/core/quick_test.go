package core

// Property-based tests (testing/quick) for the implication machinery:
// LinClosure over an arbitrary implication set must be a closure
// operator, and derivability must respect Armstrong's axioms.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"closedrules/internal/itemset"
	"closedrules/internal/rules"
)

// impSystem is a randomly generated implication system over a small
// item universe; it implements quick.Generator so testing/quick can
// draw values directly.
type impSystem struct {
	n    int
	imps []rules.Rule
}

func (impSystem) Generate(r *rand.Rand, size int) reflect.Value {
	n := 2 + r.Intn(8)
	s := impSystem{n: n}
	for k := 0; k < r.Intn(10); k++ {
		var prem, conc []int
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				prem = append(prem, i)
			}
			if r.Intn(3) == 0 {
				conc = append(conc, i)
			}
		}
		s.imps = append(s.imps, rules.Rule{
			Antecedent: itemset.Of(prem...),
			Consequent: itemset.Of(conc...),
		})
	}
	return reflect.ValueOf(s)
}

// randomSubset draws a subset of {0..n-1} from the rand source.
func randomSubset(r *rand.Rand, n int) itemset.Itemset {
	var items []int
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			items = append(items, i)
		}
	}
	return itemset.Of(items...)
}

func TestQuickLinClosureIsClosureOperator(t *testing.T) {
	r := rand.New(rand.NewSource(907))
	f := func(sys impSystem) bool {
		imps := NewImplications(sys.imps)
		x := randomSubset(r, sys.n)
		y := x.Union(randomSubset(r, sys.n))
		cx, cy := imps.Close(x), imps.Close(y)
		// extensive
		if !cx.ContainsAll(x) {
			return false
		}
		// idempotent
		if !imps.Close(cx).Equal(cx) {
			return false
		}
		// monotone: x ⊆ y ⇒ Close(x) ⊆ Close(y)
		return cy.ContainsAll(cx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestQuickClosedSetsAreModels(t *testing.T) {
	r := rand.New(rand.NewSource(911))
	f := func(sys impSystem) bool {
		imps := NewImplications(sys.imps)
		x := randomSubset(r, sys.n)
		cx := imps.Close(x)
		// The closure respects the system, and every implication with
		// premise inside cx has its conclusion inside cx.
		if !imps.Respects(cx) {
			return false
		}
		for _, im := range sys.imps {
			if cx.ContainsAll(im.Antecedent) && !cx.ContainsAll(im.Consequent) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Error(err)
	}
}

// TestQuickArmstrongAxioms: derivability must satisfy reflexivity,
// augmentation and transitivity.
func TestQuickArmstrongAxioms(t *testing.T) {
	r := rand.New(rand.NewSource(919))
	f := func(sys impSystem) bool {
		imps := NewImplications(sys.imps)
		x := randomSubset(r, sys.n)
		y := randomSubset(r, sys.n)
		z := randomSubset(r, sys.n)
		// Reflexivity: X → X' for X' ⊆ X.
		if !imps.Derives(rules.Rule{Antecedent: x, Consequent: x.Intersect(y)}) {
			return false
		}
		// Augmentation: if X → Y then X∪Z → Y∪Z.
		if imps.Derives(rules.Rule{Antecedent: x, Consequent: y}) {
			if !imps.Derives(rules.Rule{Antecedent: x.Union(z), Consequent: y.Union(z)}) {
				return false
			}
		}
		// Transitivity: X → Y and Y → Z imply X → Z.
		if imps.Derives(rules.Rule{Antecedent: x, Consequent: y}) &&
			imps.Derives(rules.Rule{Antecedent: y, Consequent: z}) {
			if !imps.Derives(rules.Rule{Antecedent: x, Consequent: z}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: r}); err != nil {
		t.Error(err)
	}
}
