package core

import (
	"math"
	"math/rand"
	"testing"

	"closedrules/internal/lattice"
	"closedrules/internal/naive"
	"closedrules/internal/rules"
	"closedrules/internal/testgen"
)

// TestDeriveAllRulesMatchesGenerate is the full "generating set" round
// trip: DG + Luxenburger reduction + FC regenerate *exactly* the rule
// set that direct measurement produces, at several confidence levels.
func TestDeriveAllRulesMatchesGenerate(t *testing.T) {
	r := rand.New(rand.NewSource(701))
	for iter := 0; iter < 30; iter++ {
		d := testgen.Random(r, 16, 8, 0.45)
		minSup := 1 + r.Intn(3)
		ctx := d.Context()
		fam := naive.FrequentItemsets(ctx, minSup)
		fc := naive.ClosedItemsets(ctx, minSup)
		lat := lattice.Build(fc)
		dg, err := DuquenneGuigues(ctx.NumObjects, fam, fc)
		if err != nil {
			t.Fatal(err)
		}
		red, err := LuxenburgerReduction(lat, fc, LuxenburgerOptions{IncludeEmptyAntecedent: true})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(ctx.NumObjects, dg, red)
		if err != nil {
			t.Fatal(err)
		}

		for _, minConf := range []float64{0, 0.5, 0.9, 1} {
			derived, err := DeriveAllRules(eng, fc, minConf, 25)
			if err != nil {
				t.Fatal(err)
			}
			measured, err := rules.Generate(fam, minConf)
			if err != nil {
				t.Fatal(err)
			}
			if len(derived) != len(measured) {
				t.Fatalf("iter %d conf %v: derived %d rules, measured %d",
					iter, minConf, len(derived), len(measured))
			}
			for i := range measured {
				if derived[i].Key() != measured[i].Key() ||
					derived[i].Support != measured[i].Support ||
					math.Abs(derived[i].Confidence()-measured[i].Confidence()) > 1e-12 {
					t.Fatalf("iter %d conf %v: rule %d: derived %v, measured %v",
						iter, minConf, i, derived[i], measured[i])
				}
			}
		}
	}
}

func TestDeriveAllRulesValidation(t *testing.T) {
	eng := &Engine{imps: NewImplications(nil), supports: map[string]int{}}
	if _, err := DeriveAllRules(eng, naive.ClosedItemsets(testgen.Random(rand.New(rand.NewSource(1)), 5, 3, 0.5).Context(), 1), 1.5, 25); err == nil {
		t.Error("bad minConf accepted")
	}
}
