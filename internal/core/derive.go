package core

import (
	"closedrules/internal/closedset"
	"closedrules/internal/itemset"
	"closedrules/internal/rules"
)

// DeriveAllRules regenerates the complete set of valid association
// rules from the condensed representation alone: the frequent itemsets
// are expanded from FC (the §2 generating-set property) and every
// rule's support and confidence is produced by the basis-backed
// engine — the database is never consulted. It is the operational form
// of the paper's claim that the bases are generating sets; the tests
// verify it returns exactly what rules.Generate measures on the data.
//
// maxWidth bounds the expansion of maximal closed itemsets (see
// ExpandFrequent).
func DeriveAllRules(eng *Engine, fc *closedset.Set, minConf float64, maxWidth int) ([]rules.Rule, error) {
	if err := checkConf(minConf); err != nil {
		return nil, err
	}
	fam, err := ExpandFrequent(fc, maxWidth)
	if err != nil {
		return nil, err
	}
	var out []rules.Rule
	for _, f := range fam.All() {
		if f.Items.Len() < 2 {
			continue
		}
		var derr error
		f.Items.Subsets(func(ante itemset.Itemset) bool {
			cons := f.Items.Diff(ante)
			r, err := eng.Rule(ante, cons)
			if err != nil {
				derr = err
				return false
			}
			if r.Confidence() >= minConf {
				out = append(out, r)
			}
			return true
		})
		if derr != nil {
			return nil, derr
		}
	}
	rules.Sort(out)
	return out, nil
}
