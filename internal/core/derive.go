package core

import (
	"fmt"

	"closedrules/internal/closedset"
	"closedrules/internal/itemset"
	"closedrules/internal/rules"
)

// DeriveAllRules regenerates the complete set of valid association
// rules from the condensed representation alone: the frequent itemsets
// are expanded from FC (the §2 generating-set property) and every
// rule's support and confidence is produced by the basis-backed
// engine — the database is never consulted. It is the operational form
// of the paper's claim that the bases are generating sets; the tests
// verify it returns exactly what rules.Generate measures on the data.
//
// maxWidth bounds the expansion of maximal closed itemsets (see
// ExpandFrequent).
func DeriveAllRules(eng *Engine, fc *closedset.Set, minConf float64, maxWidth int) ([]rules.Rule, error) {
	if err := checkConf(minConf); err != nil {
		return nil, err
	}
	fam, err := ExpandFrequent(fc, maxWidth)
	if err != nil {
		return nil, err
	}
	var out []rules.Rule
	memo := map[string]memoSupport{}
	for _, f := range fam.All() {
		if f.Items.Len() < 2 {
			continue
		}
		// Every subset split of f shares the same union f.Items, whose
		// support the expansion already knows — derive it once here
		// instead of re-closing (and re-keying) it for every subset.
		// The memo carries the per-side supports: each subset is probed
		// as an antecedent of one split and a consequent of the
		// complementary one, and smaller subsets recur across itemsets.
		supU := f.Support
		var derr error
		f.Items.Subsets(func(ante itemset.Itemset) bool {
			cons := f.Items.Diff(ante)
			supA, ok := eng.supportMemoized(ante, memo)
			if !ok {
				derr = fmt.Errorf("core: support of %v not derivable", ante)
				return false
			}
			r := rules.Rule{
				Antecedent:        ante,
				Consequent:        cons,
				Support:           supU,
				AntecedentSupport: supA,
			}
			if supC, ok := eng.supportMemoized(cons, memo); ok {
				r.ConsequentSupport = supC
			}
			if r.Confidence() >= minConf {
				out = append(out, r)
			}
			return true
		})
		if derr != nil {
			return nil, derr
		}
	}
	rules.Sort(out)
	return out, nil
}
