package core

import (
	"fmt"

	"closedrules/internal/closedset"
	"closedrules/internal/itemset"
	"closedrules/internal/rules"
)

// DuquenneGuigues builds the Duquenne–Guigues basis for exact
// association rules (Theorem 1): the rules P → h(P)∖P for every
// frequent pseudo-closed itemset P. The result is a minimal
// non-redundant generating set for all exact rules between frequent
// itemsets; its rules all have confidence 1.
//
// When ∅ is pseudo-closed (some item occurs in every transaction) the
// basis contains the rule ∅ → h(∅), which conventional rule listings
// omit; keep or filter it with DropEmptyAntecedent depending on the
// comparison being made.
func DuquenneGuigues(numTx int, fam *itemset.Family, fc *closedset.Set) ([]rules.Rule, error) {
	pseudo, err := PseudoClosedSets(numTx, fam, fc)
	if err != nil {
		return nil, err
	}
	out := make([]rules.Rule, 0, len(pseudo))
	for _, p := range pseudo {
		cons := p.Closure.Diff(p.Items)
		consSup := 0
		if s, ok := fc.SupportOf(cons); ok {
			consSup = s
		}
		out = append(out, rules.Rule{
			Antecedent:        p.Items,
			Consequent:        cons,
			Support:           p.Support,
			AntecedentSupport: p.Support, // supp(P) = supp(h(P)): exact
			ConsequentSupport: consSup,
		})
	}
	rules.Sort(out)
	return out, nil
}

// DropEmptyAntecedent filters out rules with an empty antecedent.
func DropEmptyAntecedent(list []rules.Rule) []rules.Rule {
	out := make([]rules.Rule, 0, len(list))
	for _, r := range list {
		if r.Antecedent.Len() > 0 {
			out = append(out, r)
		}
	}
	return out
}

// ExpandFrequent reconstructs the complete frequent-itemset family
// from the frequent closed itemsets — the §2 property that FC is a
// generating set for FI: every frequent itemset is a subset of some
// frequent closed itemset, and its support is the support of its
// closure. It enumerates subsets of the maximal closed itemsets, so
// it is exponential in their size; maximal itemsets wider than
// maxWidth (≤ 30) are rejected to prevent accidental blow-up.
func ExpandFrequent(fc *closedset.Set, maxWidth int) (*itemset.Family, error) {
	if maxWidth <= 0 || maxWidth > 30 {
		maxWidth = 25
	}
	fam := itemset.NewFamily()
	for _, m := range fc.Maximal() {
		if m.Items.Len() > maxWidth {
			return nil, fmt.Errorf("core: maximal closed itemset of %d items exceeds expansion width %d",
				m.Items.Len(), maxWidth)
		}
		// All non-empty subsets of m, plus m itself.
		addWithSupport(fam, fc, m.Items)
		m.Items.Subsets(func(sub itemset.Itemset) bool {
			addWithSupport(fam, fc, sub)
			return true
		})
	}
	return fam, nil
}

func addWithSupport(fam *itemset.Family, fc *closedset.Set, items itemset.Itemset) {
	if items.Len() == 0 || fam.Contains(items) {
		return
	}
	if sup, ok := fc.SupportOf(items); ok {
		fam.Add(items, sup)
	}
}
