package core

import (
	"math/rand"
	"testing"

	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/galois"
	"closedrules/internal/itemset"
	"closedrules/internal/lattice"
	"closedrules/internal/naive"
	"closedrules/internal/rules"
	"closedrules/internal/testgen"
)

// classic returns the Close-paper example: 1:ACD 2:BCE 3:ABCE 4:BE
// 5:ABCE with A=0,…,E=4, plus its FI/FC at minsup 2.
func classic(t *testing.T) (*dataset.Context, *itemset.Family, *closedset.Set) {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := d.Context()
	return ctx, naive.FrequentItemsets(ctx, 2), naive.ClosedItemsets(ctx, 2)
}

func TestPseudoClosedSetsClassic(t *testing.T) {
	ctx, fam, fc := classic(t)
	got, err := PseudoClosedSets(ctx.NumObjects, fam, fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("|FP| = %d, want 3: %v", len(got), got)
	}
	want := map[string]string{
		itemset.Of(0).Key(): itemset.Of(0, 2).Key(), // A → AC
		itemset.Of(1).Key(): itemset.Of(1, 4).Key(), // B → BE
		itemset.Of(4).Key(): itemset.Of(1, 4).Key(), // E → BE
	}
	for _, p := range got {
		cl, ok := want[p.Items.Key()]
		if !ok || p.Closure.Key() != cl {
			t.Errorf("pseudo %v closure %v unexpected", p.Items, p.Closure)
		}
	}
}

func TestPseudoClosedMatchesNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	for iter := 0; iter < 60; iter++ {
		d := testgen.Random(r, 16, 8, 0.45)
		minSup := 1 + r.Intn(3)
		ctx := d.Context()
		fam := naive.FrequentItemsets(ctx, minSup)
		fc := naive.ClosedItemsets(ctx, minSup)
		got, err := PseudoClosedSets(ctx.NumObjects, fam, fc)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.PseudoClosed(ctx, minSup)
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d pseudo-closed, naive %d", iter, len(got), len(want))
		}
		wantKeys := map[string]bool{}
		for _, w := range want {
			wantKeys[w.Key()] = true
		}
		for _, p := range got {
			if !wantKeys[p.Items.Key()] {
				t.Fatalf("iter %d: unexpected pseudo-closed %v", iter, p.Items)
			}
		}
	}
}

func TestDuquenneGuiguesClassic(t *testing.T) {
	ctx, fam, fc := classic(t)
	dg, err := DuquenneGuigues(ctx.NumObjects, fam, fc)
	if err != nil {
		t.Fatal(err)
	}
	// The classic DG basis: A→C, B→E, E→B.
	if len(dg) != 3 {
		t.Fatalf("|DG| = %d, want 3: %v", len(dg), dg)
	}
	want := map[string]bool{
		rules.Rule{Antecedent: itemset.Of(0), Consequent: itemset.Of(2)}.Key(): true,
		rules.Rule{Antecedent: itemset.Of(1), Consequent: itemset.Of(4)}.Key(): true,
		rules.Rule{Antecedent: itemset.Of(4), Consequent: itemset.Of(1)}.Key(): true,
	}
	for _, r := range dg {
		if !want[r.Key()] {
			t.Errorf("unexpected DG rule %v", r)
		}
		if !r.IsExact() {
			t.Errorf("DG rule %v not exact", r)
		}
	}
}

// TestDGSoundness: every DG rule holds with confidence 1 in the data.
func TestDGSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(223))
	for iter := 0; iter < 50; iter++ {
		d := testgen.Random(r, 16, 8, 0.45)
		minSup := 1 + r.Intn(3)
		ctx := d.Context()
		fam := naive.FrequentItemsets(ctx, minSup)
		fc := naive.ClosedItemsets(ctx, minSup)
		dg, err := DuquenneGuigues(ctx.NumObjects, fam, fc)
		if err != nil {
			t.Fatal(err)
		}
		for _, rule := range dg {
			u := rule.Union()
			if galois.Support(ctx, u) != galois.Support(ctx, rule.Antecedent) {
				t.Fatalf("iter %d: DG rule %v does not hold", iter, rule)
			}
			if rule.Support != galois.Support(ctx, u) {
				t.Fatalf("iter %d: DG rule %v support mislabeled", iter, rule)
			}
		}
	}
}

// TestDGCompleteness: every valid exact rule is Armstrong-derivable
// from the DG basis (Theorem 1).
func TestDGCompleteness(t *testing.T) {
	r := rand.New(rand.NewSource(227))
	for iter := 0; iter < 50; iter++ {
		d := testgen.Random(r, 16, 8, 0.45)
		minSup := 1 + r.Intn(3)
		ctx := d.Context()
		fam := naive.FrequentItemsets(ctx, minSup)
		fc := naive.ClosedItemsets(ctx, minSup)
		dg, err := DuquenneGuigues(ctx.NumObjects, fam, fc)
		if err != nil {
			t.Fatal(err)
		}
		imps := NewImplications(dg)
		all, err := rules.Generate(fam, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		exact, _ := rules.Split(all)
		for _, rule := range exact {
			if !imps.Derives(rule) {
				t.Fatalf("iter %d: exact rule %v not derivable from DG %v", iter, rule, dg)
			}
		}
	}
}

// TestDGClosureMatchesGalois: LinClosure over the DG basis computes
// h(X) for every frequent X — the sharpest form of completeness.
func TestDGClosureMatchesGalois(t *testing.T) {
	r := rand.New(rand.NewSource(229))
	for iter := 0; iter < 50; iter++ {
		d := testgen.Random(r, 16, 8, 0.45)
		minSup := 1 + r.Intn(3)
		ctx := d.Context()
		fam := naive.FrequentItemsets(ctx, minSup)
		fc := naive.ClosedItemsets(ctx, minSup)
		dg, err := DuquenneGuigues(ctx.NumObjects, fam, fc)
		if err != nil {
			t.Fatal(err)
		}
		imps := NewImplications(dg)
		for _, f := range fam.All() {
			want := galois.Closure(ctx, f.Items)
			if got := imps.Close(f.Items); !got.Equal(want) {
				t.Fatalf("iter %d: Close(%v) = %v, want h = %v", iter, f.Items, got, want)
			}
		}
		// And for ∅ as well — but only when ∅ is frequent (otherwise
		// the basis rightfully knows nothing about h(∅)).
		if fc.Len() > 0 {
			if got := imps.Close(itemset.Empty()); !got.Equal(galois.Closure(ctx, itemset.Empty())) {
				t.Fatalf("iter %d: Close(∅) = %v", iter, got)
			}
		}
	}
}

// TestDGNonRedundant: no DG rule is derivable from the others —
// the basis is minimal (non-redundant generating set).
func TestDGNonRedundant(t *testing.T) {
	r := rand.New(rand.NewSource(233))
	for iter := 0; iter < 50; iter++ {
		d := testgen.Random(r, 16, 8, 0.45)
		minSup := 1 + r.Intn(3)
		ctx := d.Context()
		fam := naive.FrequentItemsets(ctx, minSup)
		fc := naive.ClosedItemsets(ctx, minSup)
		dg, err := DuquenneGuigues(ctx.NumObjects, fam, fc)
		if err != nil {
			t.Fatal(err)
		}
		for drop := range dg {
			rest := make([]rules.Rule, 0, len(dg)-1)
			rest = append(rest, dg[:drop]...)
			rest = append(rest, dg[drop+1:]...)
			if NewImplications(rest).Derives(dg[drop]) {
				t.Fatalf("iter %d: DG rule %v redundant", iter, dg[drop])
			}
		}
	}
}

func TestLuxenburgerFullClassic(t *testing.T) {
	_, _, fc := classic(t)
	lux, err := LuxenburgerFull(fc, LuxenburgerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-enumerated: 7 closed pairs with non-empty antecedent.
	if len(lux) != 7 {
		t.Fatalf("|Lux| = %d, want 7: %v", len(lux), lux)
	}
	for _, r := range lux {
		if r.IsExact() {
			t.Errorf("Luxenburger rule %v is exact", r)
		}
	}
	// With the empty antecedent there are two more (∅→C, ∅→BE, ∅→BCE, ∅→ABCE, ∅→AC).
	luxAll, err := LuxenburgerFull(fc, LuxenburgerOptions{IncludeEmptyAntecedent: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(luxAll) != 12 {
		t.Fatalf("|Lux with ∅| = %d, want 12", len(luxAll))
	}
}

func TestLuxenburgerReductionClassic(t *testing.T) {
	_, _, fc := classic(t)
	lat := lattice.Build(fc)
	red, err := LuxenburgerReduction(lat, fc, LuxenburgerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 7 Hasse edges minus the 2 from the empty bottom = 5 rules.
	if len(red) != 5 {
		t.Fatalf("|reduction| = %d, want 5: %v", len(red), red)
	}
	want := map[string]bool{
		rules.Rule{Antecedent: itemset.Of(2), Consequent: itemset.Of(0)}.Key():       true, // C→A
		rules.Rule{Antecedent: itemset.Of(2), Consequent: itemset.Of(1, 4)}.Key():    true, // C→BE
		rules.Rule{Antecedent: itemset.Of(1, 4), Consequent: itemset.Of(2)}.Key():    true, // BE→C
		rules.Rule{Antecedent: itemset.Of(0, 2), Consequent: itemset.Of(1, 4)}.Key(): true, // AC→BE
		rules.Rule{Antecedent: itemset.Of(1, 2, 4), Consequent: itemset.Of(0)}.Key(): true, // BCE→A
	}
	for _, r := range red {
		if !want[r.Key()] {
			t.Errorf("unexpected reduction rule %v", r)
		}
	}
}

func TestLuxenburgerMinConfidenceFilter(t *testing.T) {
	_, _, fc := classic(t)
	lat := lattice.Build(fc)
	red, err := LuxenburgerReduction(lat, fc, LuxenburgerOptions{MinConfidence: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// Confidences: C→A 3/4, C→BE 3/4, BE→C 3/4, AC→BE 2/3, BCE→A 2/3.
	if len(red) != 3 {
		t.Fatalf("|reduction @0.7| = %d, want 3", len(red))
	}
	if _, err := LuxenburgerFull(fc, LuxenburgerOptions{MinConfidence: 1.5}); err == nil {
		t.Error("bad minconf accepted")
	}
}

// TestEngineDerivesEveryRule is the full Theorem 1+2 round trip: an
// engine built only from the two bases reproduces support and
// confidence of every valid rule (exact and approximate).
func TestEngineDerivesEveryRule(t *testing.T) {
	r := rand.New(rand.NewSource(239))
	for iter := 0; iter < 40; iter++ {
		d := testgen.Random(r, 16, 8, 0.45)
		minSup := 1 + r.Intn(3)
		ctx := d.Context()
		fam := naive.FrequentItemsets(ctx, minSup)
		fc := naive.ClosedItemsets(ctx, minSup)
		lat := lattice.Build(fc)

		dg, err := DuquenneGuigues(ctx.NumObjects, fam, fc)
		if err != nil {
			t.Fatal(err)
		}
		red, err := LuxenburgerReduction(lat, fc, LuxenburgerOptions{IncludeEmptyAntecedent: true})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(ctx.NumObjects, dg, red)
		if err != nil {
			t.Fatal(err)
		}

		all, err := rules.Generate(fam, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range all {
			got, err := eng.Rule(want.Antecedent, want.Consequent)
			if err != nil {
				t.Fatalf("iter %d: rule %v not derivable: %v", iter, want, err)
			}
			if got.Support != want.Support || got.AntecedentSupport != want.AntecedentSupport {
				t.Fatalf("iter %d: rule %v derived as sup=%d/%d, want %d/%d",
					iter, want, got.Support, got.AntecedentSupport,
					want.Support, want.AntecedentSupport)
			}
		}
	}
}

func TestEngineSupportsEveryFrequentItemset(t *testing.T) {
	r := rand.New(rand.NewSource(241))
	for iter := 0; iter < 40; iter++ {
		d := testgen.Random(r, 16, 8, 0.45)
		minSup := 1 + r.Intn(3)
		ctx := d.Context()
		fam := naive.FrequentItemsets(ctx, minSup)
		fc := naive.ClosedItemsets(ctx, minSup)
		lat := lattice.Build(fc)
		dg, _ := DuquenneGuigues(ctx.NumObjects, fam, fc)
		red, _ := LuxenburgerReduction(lat, fc, LuxenburgerOptions{IncludeEmptyAntecedent: true})
		eng, err := NewEngine(ctx.NumObjects, dg, red)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fam.All() {
			got, ok := eng.Support(f.Items)
			if !ok || got != f.Support {
				t.Fatalf("iter %d: Support(%v) = %d,%v want %d",
					iter, f.Items, got, ok, f.Support)
			}
		}
	}
}

func TestEngineRejectsOverlap(t *testing.T) {
	ctx, fam, fc := classic(t)
	lat := lattice.Build(fc)
	dg, _ := DuquenneGuigues(ctx.NumObjects, fam, fc)
	red, _ := LuxenburgerReduction(lat, fc, LuxenburgerOptions{IncludeEmptyAntecedent: true})
	eng, _ := NewEngine(ctx.NumObjects, dg, red)
	if _, err := eng.Rule(itemset.Of(1), itemset.Of(1, 4)); err == nil {
		t.Error("overlapping rule accepted")
	}
	if _, err := eng.Rule(itemset.Of(3), itemset.Of(1)); err == nil {
		t.Error("infrequent antecedent derivable")
	}
}

func TestEngineHolds(t *testing.T) {
	ctx, fam, fc := classic(t)
	lat := lattice.Build(fc)
	dg, _ := DuquenneGuigues(ctx.NumObjects, fam, fc)
	red, _ := LuxenburgerReduction(lat, fc, LuxenburgerOptions{IncludeEmptyAntecedent: true})
	eng, _ := NewEngine(ctx.NumObjects, dg, red)
	// C→B has conf 3/4 and support 3.
	ok, err := eng.Holds(itemset.Of(2), itemset.Of(1), 2, 0.7)
	if err != nil || !ok {
		t.Errorf("Holds(C→B @0.7) = %v,%v", ok, err)
	}
	ok, err = eng.Holds(itemset.Of(2), itemset.Of(1), 2, 0.8)
	if err != nil || ok {
		t.Errorf("Holds(C→B @0.8) = %v,%v", ok, err)
	}
}

func TestExpandFrequentMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(251))
	for iter := 0; iter < 50; iter++ {
		d := testgen.Random(r, 16, 8, 0.45)
		minSup := 1 + r.Intn(3)
		ctx := d.Context()
		fc := naive.ClosedItemsets(ctx, minSup)
		got, err := ExpandFrequent(fc, 25)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.FrequentItemsets(ctx, minSup)
		if !got.Equal(want) {
			t.Fatalf("iter %d: expand %d itemsets, naive %d", iter, got.Len(), want.Len())
		}
	}
}

func TestGenericBasisClassic(t *testing.T) {
	_, _, fc := classic(t)
	gb, err := GenericBasis(fc)
	if err != nil {
		t.Fatal(err)
	}
	// Generators with closure ≠ self: A→C(AC), B→E, E→B, BC→E? no:
	// BC generates BCE → rule BC→E; CE→B; AB→CE; AE→BC.
	if len(gb) != 7 {
		t.Fatalf("|GB| = %d, want 7: %v", len(gb), gb)
	}
	for _, r := range gb {
		if !r.IsExact() {
			t.Errorf("generic rule %v not exact", r)
		}
	}
}

// TestGenericBasisEquivalentToDG: the generic basis and the DG basis
// generate the same exact rules (both are complete for exact rules).
func TestGenericBasisEquivalentToDG(t *testing.T) {
	r := rand.New(rand.NewSource(257))
	for iter := 0; iter < 40; iter++ {
		d := testgen.Random(r, 16, 8, 0.45)
		minSup := 1 + r.Intn(3)
		ctx := d.Context()
		fam := naive.FrequentItemsets(ctx, minSup)
		fc := naive.ClosedItemsets(ctx, minSup)
		dg, err := DuquenneGuigues(ctx.NumObjects, fam, fc)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := GenericBasis(fc)
		if err != nil {
			t.Fatal(err)
		}
		dgImps, gbImps := NewImplications(dg), NewImplications(gb)
		for _, rule := range dg {
			if !gbImps.Derives(rule) {
				t.Fatalf("iter %d: GB cannot derive DG rule %v", iter, rule)
			}
		}
		for _, rule := range gb {
			if !dgImps.Derives(rule) {
				t.Fatalf("iter %d: DG cannot derive GB rule %v", iter, rule)
			}
		}
		// DG is the cardinality-minimum basis: never larger than GB.
		if len(dg) > len(gb) {
			t.Fatalf("iter %d: |DG|=%d > |GB|=%d", iter, len(dg), len(gb))
		}
	}
}

// TestInformativeBasisCoversAllApproxRules: for every valid approximate
// rule A→C there is an informative rule with antecedent ⊆ A, union ⊇
// A∪C, and the same support and confidence (the min-max property).
func TestInformativeBasisCoversAllApproxRules(t *testing.T) {
	r := rand.New(rand.NewSource(263))
	for iter := 0; iter < 30; iter++ {
		d := testgen.Random(r, 16, 8, 0.45)
		minSup := 1 + r.Intn(3)
		ctx := d.Context()
		fam := naive.FrequentItemsets(ctx, minSup)
		fc := naive.ClosedItemsets(ctx, minSup)
		lat := lattice.Build(fc)
		ib, err := InformativeBasis(lat, fc, false, LuxenburgerOptions{IncludeEmptyAntecedent: true})
		if err != nil {
			t.Fatal(err)
		}
		all, err := rules.Generate(fam, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, approx := rules.Split(all)
		for _, want := range approx {
			found := false
			u := want.Union()
			for _, r2 := range ib {
				if want.Antecedent.ContainsAll(r2.Antecedent) &&
					r2.Union().ContainsAll(u) &&
					r2.Support == want.Support &&
					r2.AntecedentSupport == want.AntecedentSupport {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("iter %d: approx rule %v not covered by informative basis", iter, want)
			}
		}
	}
}

func TestInformativeReducedSubsetOfFull(t *testing.T) {
	_, _, fc := classic(t)
	lat := lattice.Build(fc)
	full, err := InformativeBasis(lat, fc, false, LuxenburgerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	red, err := InformativeBasis(lat, fc, true, LuxenburgerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(red) > len(full) {
		t.Fatalf("|reduced IB| = %d > |IB| = %d", len(red), len(full))
	}
	fullKeys := map[string]bool{}
	for _, r := range full {
		fullKeys[r.Key()] = true
	}
	for _, r := range red {
		if !fullKeys[r.Key()] {
			t.Errorf("reduced rule %v not in full basis", r)
		}
	}
}

// TestMaximalFrequentAreMaximalClosed is the paper's §2 property: the
// maximal frequent itemsets coincide with the maximal frequent closed
// itemsets (the second pillar, next to supp(X) = supp(h(X)), of FC
// being a generating set for FI).
func TestMaximalFrequentAreMaximalClosed(t *testing.T) {
	r := rand.New(rand.NewSource(271))
	for iter := 0; iter < 60; iter++ {
		d := testgen.Random(r, 18, 8, 0.45)
		minSup := 1 + r.Intn(4)
		ctx := d.Context()
		fam := naive.FrequentItemsets(ctx, minSup)
		fc := naive.ClosedItemsets(ctx, minSup)

		// Maximal frequent itemsets, from FI directly.
		var maxFI []itemset.Itemset
		all := fam.All()
		for i, a := range all {
			isMax := true
			for j, b := range all {
				if i != j && b.Items.ContainsAll(a.Items) {
					isMax = false
					break
				}
			}
			if isMax {
				maxFI = append(maxFI, a.Items)
			}
		}

		maxFC := fc.Maximal()
		// The empty bottom can be the only closed set when no item is
		// frequent; FI excludes ∅, so compare only non-empty maxima.
		var maxFCn []itemset.Itemset
		for _, m := range maxFC {
			if m.Items.Len() > 0 {
				maxFCn = append(maxFCn, m.Items)
			}
		}
		if len(maxFI) != len(maxFCn) {
			t.Fatalf("iter %d: %d maximal frequent, %d maximal closed",
				iter, len(maxFI), len(maxFCn))
		}
		keys := map[string]bool{}
		for _, m := range maxFCn {
			keys[m.Key()] = true
		}
		for _, m := range maxFI {
			if !keys[m.Key()] {
				t.Fatalf("iter %d: maximal frequent %v is not maximal closed", iter, m)
			}
		}
	}
}

// TestLinClosureAgainstFixpoint cross-checks LinClosure with a naive
// iterate-to-fixpoint evaluator on random implication systems.
func TestLinClosureAgainstFixpoint(t *testing.T) {
	r := rand.New(rand.NewSource(269))
	for iter := 0; iter < 200; iter++ {
		n := 2 + r.Intn(10)
		var imps []rules.Rule
		for k := 0; k < r.Intn(8); k++ {
			var prem, conc []int
			for i := 0; i < n; i++ {
				if r.Intn(4) == 0 {
					prem = append(prem, i)
				}
				if r.Intn(4) == 0 {
					conc = append(conc, i)
				}
			}
			imps = append(imps, rules.Rule{
				Antecedent: itemset.Of(prem...),
				Consequent: itemset.Of(conc...),
			})
		}
		var start []int
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				start = append(start, i)
			}
		}
		x := itemset.Of(start...)

		// Naive fixpoint.
		want := x.Clone()
		for changed := true; changed; {
			changed = false
			for _, im := range imps {
				if want.ContainsAll(im.Antecedent) && !want.ContainsAll(im.Consequent) {
					want = want.Union(im.Consequent)
					changed = true
				}
			}
		}
		got := NewImplications(imps).Close(x)
		if !got.Equal(want) {
			t.Fatalf("iter %d: LinClosure %v, fixpoint %v (imps %v, x %v)",
				iter, got, want, imps, x)
		}
	}
}

func TestImplicationsRespects(t *testing.T) {
	imps := NewImplications([]rules.Rule{
		{Antecedent: itemset.Of(0), Consequent: itemset.Of(1)},
	})
	if imps.Respects(itemset.Of(0)) {
		t.Error("{0} should not respect 0→1")
	}
	if !imps.Respects(itemset.Of(0, 1)) {
		t.Error("{0,1} should respect 0→1")
	}
	if !imps.Respects(itemset.Of(2)) {
		t.Error("{2} should respect 0→1 vacuously")
	}
}
