package rules

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"closedrules/internal/itemset"
	"closedrules/internal/naive"
	"closedrules/internal/testgen"
)

func fam345(t *testing.T) *itemset.Family {
	// supports consistent with the classic example restricted to B,C,E
	// (1=B, 2=C, 4=E).
	f := itemset.NewFamily()
	f.Add(itemset.Of(1), 4)
	f.Add(itemset.Of(2), 4)
	f.Add(itemset.Of(4), 4)
	f.Add(itemset.Of(1, 2), 3)
	f.Add(itemset.Of(1, 4), 4)
	f.Add(itemset.Of(2, 4), 3)
	f.Add(itemset.Of(1, 2, 4), 3)
	return f
}

func TestRuleBasics(t *testing.T) {
	r := Rule{
		Antecedent:        itemset.Of(1),
		Consequent:        itemset.Of(4),
		Support:           4,
		AntecedentSupport: 4,
		ConsequentSupport: 4,
	}
	if !r.IsExact() {
		t.Error("B→E should be exact")
	}
	if r.Confidence() != 1 {
		t.Errorf("conf = %v", r.Confidence())
	}
	if !r.Union().Equal(itemset.Of(1, 4)) {
		t.Errorf("Union = %v", r.Union())
	}
	r2 := Rule{Antecedent: itemset.Of(2), Consequent: itemset.Of(1), Support: 3, AntecedentSupport: 4}
	if r2.IsExact() {
		t.Error("C→B should be approximate")
	}
	if math.Abs(r2.Confidence()-0.75) > 1e-12 {
		t.Errorf("conf = %v", r2.Confidence())
	}
	if (Rule{}).Confidence() != 0 {
		t.Error("zero rule confidence")
	}
}

func TestRuleFormat(t *testing.T) {
	r := Rule{Antecedent: itemset.Of(0), Consequent: itemset.Of(2), Support: 3, AntecedentSupport: 3}
	got := r.Format([]string{"A", "B", "C"})
	if !strings.Contains(got, "{A} → {C}") || !strings.Contains(got, "conf=1.000") {
		t.Errorf("Format = %q", got)
	}
}

func TestKeyDistinguishesDirection(t *testing.T) {
	a := Rule{Antecedent: itemset.Of(1), Consequent: itemset.Of(2)}
	b := Rule{Antecedent: itemset.Of(2), Consequent: itemset.Of(1)}
	if a.Key() == b.Key() {
		t.Error("keys collide for opposite directions")
	}
}

func TestGenerateAllAtZeroConf(t *testing.T) {
	fam := fam345(t)
	got, err := Generate(fam, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Each k-itemset yields 2^k − 2 rules: three 2-sets → 2 each,
	// one 3-set → 6; total 12.
	if len(got) != 12 {
		t.Fatalf("|rules| = %d, want 12: %v", len(got), got)
	}
	// Supports must be the union's support.
	for _, r := range got {
		wantSup, ok := fam.Support(r.Union())
		if !ok || r.Support != wantSup {
			t.Errorf("rule %v support %d want %d", r, r.Support, wantSup)
		}
		if r.Antecedent.Intersect(r.Consequent).Len() != 0 {
			t.Errorf("rule %v has overlapping sides", r)
		}
	}
}

func TestGenerateConfidenceFilter(t *testing.T) {
	fam := fam345(t)
	got, err := Generate(fam, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.Confidence() < 0.9 {
			t.Errorf("rule %v below threshold", r)
		}
	}
	// Exact ones here: B→E, E→B, BC→E, CE→B, C∧E→B etc. Check one known.
	found := false
	for _, r := range got {
		if r.Antecedent.Equal(itemset.Of(1)) && r.Consequent.Equal(itemset.Of(4)) {
			found = true
		}
	}
	if !found {
		t.Error("B→E missing at conf 0.9")
	}
}

func TestGenerateValidation(t *testing.T) {
	fam := fam345(t)
	if _, err := Generate(fam, -0.1); err == nil {
		t.Error("negative minConf accepted")
	}
	if _, err := Generate(fam, 1.1); err == nil {
		t.Error("minConf > 1 accepted")
	}
}

func TestGenerateMatchesNaiveOnRandomData(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		d := testgen.Random(r, 20, 8, 0.45)
		minSup := 1 + r.Intn(3)
		fam := naive.FrequentItemsets(d.Context(), minSup)
		for _, minConf := range []float64{0, 0.3, 0.7, 1} {
			fast, err := Generate(fam, minConf)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := GenerateNaive(fam, minConf)
			if err != nil {
				t.Fatal(err)
			}
			if len(fast) != len(slow) {
				t.Fatalf("iter %d conf %v: fast %d rules, naive %d",
					iter, minConf, len(fast), len(slow))
			}
			for i := range fast {
				if fast[i].Key() != slow[i].Key() || fast[i].Support != slow[i].Support ||
					fast[i].AntecedentSupport != slow[i].AntecedentSupport {
					t.Fatalf("iter %d conf %v: rule %d differs: %v vs %v",
						iter, minConf, i, fast[i], slow[i])
				}
			}
		}
	}
}

func TestSplit(t *testing.T) {
	fam := fam345(t)
	all, _ := Generate(fam, 0)
	exact, approx := Split(all)
	if len(exact)+len(approx) != len(all) {
		t.Fatal("split loses rules")
	}
	for _, r := range exact {
		if !r.IsExact() {
			t.Errorf("non-exact in exact: %v", r)
		}
	}
	for _, r := range approx {
		if r.IsExact() {
			t.Errorf("exact in approx: %v", r)
		}
	}
	// B→E and E→B are the exact 2-item rules; BC→E, CE→B exact too;
	// plus B→E-from-BCE variants… verify count by direct reasoning:
	// exact rules are those with supp(A)=supp(A∪C).
	wantExact := 0
	for _, r := range all {
		if r.AntecedentSupport == r.Support {
			wantExact++
		}
	}
	if len(exact) != wantExact {
		t.Errorf("exact = %d, want %d", len(exact), wantExact)
	}
}

func TestDedup(t *testing.T) {
	a := Rule{Antecedent: itemset.Of(1), Consequent: itemset.Of(2), Support: 1}
	b := Rule{Antecedent: itemset.Of(1), Consequent: itemset.Of(2), Support: 9}
	c := Rule{Antecedent: itemset.Of(2), Consequent: itemset.Of(1), Support: 1}
	got := Dedup([]Rule{a, b, c})
	if len(got) != 2 || got[0].Support != 1 {
		t.Errorf("Dedup = %v", got)
	}
}

func TestSortDeterministic(t *testing.T) {
	a := Rule{Antecedent: itemset.Of(2), Consequent: itemset.Of(1)}
	b := Rule{Antecedent: itemset.Of(1), Consequent: itemset.Of(2)}
	c := Rule{Antecedent: itemset.Of(1), Consequent: itemset.Of(2, 3)}
	list := []Rule{a, c, b}
	Sort(list)
	if list[0].Key() != b.Key() || list[1].Key() != c.Key() || list[2].Key() != a.Key() {
		t.Errorf("Sort order wrong: %v", list)
	}
}

func TestComputeMetrics(t *testing.T) {
	// n=5, A: supp 4, C: supp 4, A∪C: supp 3 → conf .75, lift .9375.
	r := Rule{
		Antecedent: itemset.Of(2), Consequent: itemset.Of(1),
		Support: 3, AntecedentSupport: 4, ConsequentSupport: 4,
	}
	m, err := ComputeMetrics(r, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Support-0.6) > 1e-12 {
		t.Errorf("Support = %v", m.Support)
	}
	if math.Abs(m.Lift-(0.75/0.8)) > 1e-12 {
		t.Errorf("Lift = %v", m.Lift)
	}
	if math.Abs(m.Leverage-(0.6-0.8*0.8)) > 1e-12 {
		t.Errorf("Leverage = %v", m.Leverage)
	}
	if math.Abs(m.Conviction-(0.2/0.25)) > 1e-12 {
		t.Errorf("Conviction = %v", m.Conviction)
	}
	if math.Abs(m.Jaccard-(0.6/1.0)) > 1e-12 {
		t.Errorf("Jaccard = %v", m.Jaccard)
	}
	// Exact rule → +Inf conviction.
	r.Support = 4
	m, err = ComputeMetrics(r, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m.Conviction, 1) {
		t.Errorf("Conviction = %v, want +Inf", m.Conviction)
	}
}

func TestComputeMetricsErrors(t *testing.T) {
	r := Rule{Antecedent: itemset.Of(1), Consequent: itemset.Of(2), Support: 1, AntecedentSupport: 1}
	if _, err := ComputeMetrics(r, 0); err == nil {
		t.Error("numTx 0 accepted")
	}
	if _, err := ComputeMetrics(r, 5); err == nil {
		t.Error("missing consequent support accepted")
	}
}
