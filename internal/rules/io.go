package rules

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"closedrules/internal/itemset"
)

// jsonRule is the wire form of a rule.
type jsonRule struct {
	Antecedent        []int   `json:"antecedent"`
	Consequent        []int   `json:"consequent"`
	Support           int     `json:"support"`
	AntecedentSupport int     `json:"antecedentSupport"`
	ConsequentSupport int     `json:"consequentSupport,omitempty"`
	Confidence        float64 `json:"confidence"`
}

// WriteJSON writes the rules as a JSON array (one object per rule,
// item ids as integers, confidence included for readability).
func WriteJSON(w io.Writer, list []Rule) error {
	out := make([]jsonRule, len(list))
	for i, r := range list {
		out[i] = jsonRule{
			Antecedent:        append([]int{}, r.Antecedent...),
			Consequent:        append([]int{}, r.Consequent...),
			Support:           r.Support,
			AntecedentSupport: r.AntecedentSupport,
			ConsequentSupport: r.ConsequentSupport,
			Confidence:        r.Confidence(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses rules written by WriteJSON. The redundant confidence
// field is ignored (it is recomputed from the supports).
func ReadJSON(r io.Reader) ([]Rule, error) {
	var raw []jsonRule
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("rules: json: %v", err)
	}
	out := make([]Rule, len(raw))
	for i, jr := range raw {
		out[i] = Rule{
			Antecedent:        itemset.Of(jr.Antecedent...),
			Consequent:        itemset.Of(jr.Consequent...),
			Support:           jr.Support,
			AntecedentSupport: jr.AntecedentSupport,
			ConsequentSupport: jr.ConsequentSupport,
		}
	}
	return out, nil
}

// WriteCSV writes rules as CSV with the header
// antecedent,consequent,support,antecedentSupport,consequentSupport,confidence.
// Itemsets are space-separated ids within their field.
func WriteCSV(w io.Writer, list []Rule) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"antecedent", "consequent", "support", "antecedentSupport",
		"consequentSupport", "confidence",
	}); err != nil {
		return err
	}
	for _, r := range list {
		rec := []string{
			intsField(r.Antecedent),
			intsField(r.Consequent),
			strconv.Itoa(r.Support),
			strconv.Itoa(r.AntecedentSupport),
			strconv.Itoa(r.ConsequentSupport),
			strconv.FormatFloat(r.Confidence(), 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses rules written by WriteCSV.
func ReadCSV(r io.Reader) ([]Rule, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("rules: csv: %v", err)
	}
	if len(recs) == 0 {
		return nil, nil
	}
	var out []Rule
	for i, rec := range recs {
		if i == 0 && len(rec) > 0 && rec[0] == "antecedent" {
			continue // header
		}
		if len(rec) < 5 {
			return nil, fmt.Errorf("rules: csv row %d has %d fields", i+1, len(rec))
		}
		ante, err := intsParse(rec[0])
		if err != nil {
			return nil, fmt.Errorf("rules: csv row %d: %v", i+1, err)
		}
		cons, err := intsParse(rec[1])
		if err != nil {
			return nil, fmt.Errorf("rules: csv row %d: %v", i+1, err)
		}
		sup, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("rules: csv row %d: support: %v", i+1, err)
		}
		anteSup, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("rules: csv row %d: antecedentSupport: %v", i+1, err)
		}
		consSup, err := strconv.Atoi(rec[4])
		if err != nil {
			return nil, fmt.Errorf("rules: csv row %d: consequentSupport: %v", i+1, err)
		}
		out = append(out, Rule{
			Antecedent:        itemset.Of(ante...),
			Consequent:        itemset.Of(cons...),
			Support:           sup,
			AntecedentSupport: anteSup,
			ConsequentSupport: consSup,
		})
	}
	return out, nil
}

func intsField(s itemset.Itemset) string {
	out := ""
	for i, x := range s {
		if i > 0 {
			out += " "
		}
		out += strconv.Itoa(x)
	}
	return out
}

func intsParse(s string) ([]int, error) {
	var out []int
	cur := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if cur >= 0 {
				x, err := strconv.Atoi(s[cur:i])
				if err != nil {
					return nil, err
				}
				out = append(out, x)
				cur = -1
			}
			continue
		}
		if cur < 0 {
			cur = i
		}
	}
	return out, nil
}
