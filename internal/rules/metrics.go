package rules

import (
	"fmt"
	"math"
)

// Metrics carries the standard interestingness measures of a rule
// relative to a database of numTx transactions.
type Metrics struct {
	Support    float64 // relative support of A ∪ C
	Confidence float64
	Lift       float64 // conf / P(C); 1 means independence
	Leverage   float64 // P(A∪C) − P(A)·P(C)
	Conviction float64 // (1−P(C)) / (1−conf); +Inf for exact rules
	Jaccard    float64 // P(A∪C) / (P(A)+P(C)−P(A∪C))
}

// ComputeMetrics derives the measures; it requires ConsequentSupport
// to be populated and numTx ≥ 1.
func ComputeMetrics(r Rule, numTx int) (Metrics, error) {
	if numTx < 1 {
		return Metrics{}, fmt.Errorf("rules: numTx %d < 1", numTx)
	}
	if r.ConsequentSupport <= 0 {
		return Metrics{}, fmt.Errorf("rules: rule %v lacks consequent support", r)
	}
	n := float64(numTx)
	pa := float64(r.AntecedentSupport) / n
	pc := float64(r.ConsequentSupport) / n
	pu := float64(r.Support) / n
	conf := r.Confidence()
	m := Metrics{
		Support:    pu,
		Confidence: conf,
		Lift:       conf / pc,
		Leverage:   pu - pa*pc,
		Jaccard:    pu / (pa + pc - pu),
	}
	if conf >= 1 {
		m.Conviction = math.Inf(1)
	} else {
		m.Conviction = (1 - pc) / (1 - conf)
	}
	return m, nil
}
