package rules

import (
	"sort"

	"closedrules/internal/itemset"
)

// Filter returns the rules satisfying pred, preserving order.
func Filter(list []Rule, pred func(Rule) bool) []Rule {
	var out []Rule
	for _, r := range list {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// WithItem keeps rules mentioning the item on either side.
func WithItem(list []Rule, item int) []Rule {
	return Filter(list, func(r Rule) bool {
		return r.Antecedent.Contains(item) || r.Consequent.Contains(item)
	})
}

// WithConsequentItem keeps rules whose consequent contains the item —
// "what predicts item x?".
func WithConsequentItem(list []Rule, item int) []Rule {
	return Filter(list, func(r Rule) bool { return r.Consequent.Contains(item) })
}

// WithAntecedentSubsetOf keeps rules whose antecedent is contained in
// the given itemset — the rules applicable to a partially observed
// object.
func WithAntecedentSubsetOf(list []Rule, observed itemset.Itemset) []Rule {
	return Filter(list, func(r Rule) bool { return observed.ContainsAll(r.Antecedent) })
}

// MinSupport keeps rules with absolute support ≥ n.
func MinSupport(list []Rule, n int) []Rule {
	return Filter(list, func(r Rule) bool { return r.Support >= n })
}

// MinConfidence keeps rules with confidence ≥ c.
func MinConfidence(list []Rule, c float64) []Rule {
	return Filter(list, func(r Rule) bool { return r.Confidence() >= c })
}

// TopBy returns the k rules maximizing score (stable on ties by the
// canonical rule order); k ≤ 0 or k ≥ len returns a sorted copy of
// everything. score is called exactly once per rule — the scores are
// precomputed before the sort, not re-derived inside the comparator —
// so an expensive score (lift recomputes the full metric set) costs
// O(n), not O(n log n), per ranking.
func TopBy(list []Rule, k int, score func(Rule) float64) []Rule {
	type scored struct {
		r Rule
		s float64
	}
	dec := make([]scored, len(list))
	for i, r := range list {
		dec[i] = scored{r: r, s: score(r)}
	}
	sort.SliceStable(dec, func(i, j int) bool {
		if dec[i].s != dec[j].s {
			return dec[i].s > dec[j].s
		}
		return dec[i].r.Compare(dec[j].r) < 0
	})
	if k <= 0 || k > len(dec) {
		k = len(dec)
	}
	out := make([]Rule, k)
	for i := range out {
		out[i] = dec[i].r
	}
	return out
}

// ByLift is a score function for TopBy ranking by lift; rules lacking
// a consequent support rank last.
func ByLift(numTx int) func(Rule) float64 {
	return func(r Rule) float64 {
		if r.ConsequentSupport <= 0 || numTx <= 0 {
			return -1
		}
		m, err := ComputeMetrics(r, numTx)
		if err != nil {
			return -1
		}
		return m.Lift
	}
}
