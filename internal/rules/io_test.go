package rules

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"closedrules/internal/itemset"
)

func sampleRules() []Rule {
	return []Rule{
		{
			Antecedent: itemset.Of(1), Consequent: itemset.Of(4),
			Support: 4, AntecedentSupport: 4, ConsequentSupport: 4,
		},
		{
			Antecedent: itemset.Of(2), Consequent: itemset.Of(0, 1),
			Support: 2, AntecedentSupport: 4, ConsequentSupport: 2,
		},
		{
			Antecedent: itemset.Of(), Consequent: itemset.Of(3),
			Support: 5, AntecedentSupport: 5, ConsequentSupport: 5,
		},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, sampleRules()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRules()
	if len(got) != len(want) {
		t.Fatalf("round trip: %d rules, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key() != want[i].Key() || got[i].Support != want[i].Support ||
			got[i].AntecedentSupport != want[i].AntecedentSupport ||
			got[i].ConsequentSupport != want[i].ConsequentSupport {
			t.Errorf("rule %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestJSONReadErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("bad json accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, sampleRules()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRules()
	if len(got) != len(want) {
		t.Fatalf("round trip: %d rules, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key() != want[i].Key() || got[i].Support != want[i].Support {
			t.Errorf("rule %d mismatch", i)
		}
	}
}

func TestCSVReadErrors(t *testing.T) {
	cases := []string{
		"antecedent,consequent,support,antecedentSupport,consequentSupport,confidence\n1,2,x,1,1,1\n",
		"antecedent,consequent,support,antecedentSupport,consequentSupport,confidence\n1,2\n",
		"antecedent,consequent,support,antecedentSupport,consequentSupport,confidence\na b,2,1,1,1,1\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad csv accepted", i)
		}
	}
	if got, err := ReadCSV(strings.NewReader("")); err != nil || len(got) != 0 {
		t.Errorf("empty csv: %v, %v", got, err)
	}
}

func TestCSVRandomRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for iter := 0; iter < 30; iter++ {
		var list []Rule
		for n := 0; n < r.Intn(20); n++ {
			a := itemset.Of(r.Intn(50), r.Intn(50))
			c := itemset.Of(50 + r.Intn(50))
			list = append(list, Rule{
				Antecedent: a, Consequent: c,
				Support:           1 + r.Intn(100),
				AntecedentSupport: 100 + r.Intn(100),
				ConsequentSupport: 1 + r.Intn(200),
			})
		}
		var sb strings.Builder
		if err := WriteCSV(&sb, list); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(list) {
			t.Fatalf("iter %d: %d != %d", iter, len(got), len(list))
		}
		for i := range list {
			if got[i].Key() != list[i].Key() {
				t.Fatalf("iter %d: rule %d key mismatch", iter, i)
			}
		}
	}
}

func TestFilters(t *testing.T) {
	list := sampleRules()
	if got := WithItem(list, 4); len(got) != 1 || !got[0].Consequent.Equal(itemset.Of(4)) {
		t.Errorf("WithItem(4) = %v", got)
	}
	if got := WithConsequentItem(list, 1); len(got) != 1 {
		t.Errorf("WithConsequentItem(1) = %v", got)
	}
	if got := WithAntecedentSubsetOf(list, itemset.Of(1, 2)); len(got) != 3 {
		// all three: {1} ⊆, {2} ⊆, ∅ ⊆.
		t.Errorf("WithAntecedentSubsetOf = %v", got)
	}
	if got := MinSupport(list, 4); len(got) != 2 {
		t.Errorf("MinSupport(4) = %v", got)
	}
	if got := MinConfidence(list, 0.9); len(got) != 2 {
		t.Errorf("MinConfidence(0.9) = %v", got)
	}
}

func TestTopBy(t *testing.T) {
	list := sampleRules()
	got := TopBy(list, 2, func(r Rule) float64 { return float64(r.Support) })
	if len(got) != 2 || got[0].Support != 5 || got[1].Support != 4 {
		t.Errorf("TopBy = %v", got)
	}
	all := TopBy(list, 0, func(r Rule) float64 { return -float64(r.Support) })
	if len(all) != 3 || all[0].Support != 2 {
		t.Errorf("TopBy(0) = %v", all)
	}
	// input untouched
	if list[0].Support != 4 {
		t.Error("TopBy mutated input")
	}
}

func TestByLift(t *testing.T) {
	score := ByLift(5)
	r := sampleRules()[1] // conf .5, P(C)=.4 → lift 1.25
	if got := score(r); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("lift = %v", got)
	}
	bad := Rule{Antecedent: itemset.Of(0), Consequent: itemset.Of(1), Support: 1, AntecedentSupport: 1}
	if score(bad) != -1 {
		t.Error("missing consequent support should rank last")
	}
}
