// Package rules defines association rules and implements the
// generation of the complete set of valid rules from the frequent
// itemsets (Agrawal & Srikant's ap-genrules). This complete, highly
// redundant set is exactly what the paper's bases compress; its size
// is the denominator of every reduction-factor experiment.
package rules

import (
	"fmt"
	"sort"

	"closedrules/internal/itemset"
)

// Rule is an association rule Antecedent → Consequent (disjoint
// itemsets) with its measured absolute supports. Confidence is derived
// from the two support counts so exactness is an integer comparison,
// never a float one.
type Rule struct {
	Antecedent itemset.Itemset
	Consequent itemset.Itemset
	// Support is supp(Antecedent ∪ Consequent): the paper's rule
	// support.
	Support int
	// AntecedentSupport is supp(Antecedent).
	AntecedentSupport int
	// ConsequentSupport is supp(Consequent); 0 when unknown (some
	// basis constructions do not need it). Metrics that require it
	// report that explicitly.
	ConsequentSupport int
}

// Confidence returns supp(A∪C)/supp(A).
func (r Rule) Confidence() float64 {
	if r.AntecedentSupport == 0 {
		return 0
	}
	return float64(r.Support) / float64(r.AntecedentSupport)
}

// IsExact reports whether the rule holds with 100% confidence.
func (r Rule) IsExact() bool { return r.Support == r.AntecedentSupport && r.Support > 0 }

// Union returns Antecedent ∪ Consequent.
func (r Rule) Union() itemset.Itemset { return r.Antecedent.Union(r.Consequent) }

// String renders "A → C (sup=s, conf=c)".
func (r Rule) String() string { return r.Format(nil) }

// Format renders the rule with item names.
func (r Rule) Format(names []string) string {
	return fmt.Sprintf("%s → %s (sup=%d, conf=%.3f)",
		r.Antecedent.Format(names), r.Consequent.Format(names), r.Support, r.Confidence())
}

// Compare orders rules canonically: by antecedent, then consequent.
func (r Rule) Compare(o Rule) int {
	if c := r.Antecedent.Compare(o.Antecedent); c != 0 {
		return c
	}
	return r.Consequent.Compare(o.Consequent)
}

// Key returns an injective map key for the rule's (A, C) pair.
func (r Rule) Key() string {
	return r.Antecedent.Key() + "→" + r.Consequent.Key()
}

// Sort orders a rule list canonically in place.
func Sort(list []Rule) {
	sort.Slice(list, func(i, j int) bool { return list[i].Compare(list[j]) < 0 })
}

// Split partitions rules into exact (confidence 1) and approximate
// (confidence < 1) rules, preserving order.
func Split(list []Rule) (exact, approximate []Rule) {
	for _, r := range list {
		if r.IsExact() {
			exact = append(exact, r)
		} else {
			approximate = append(approximate, r)
		}
	}
	return exact, approximate
}

// Generate produces every valid association rule A → C with A, C
// non-empty and disjoint, A∪C frequent, and confidence ≥ minConf,
// using the ap-genrules consequent-growing strategy: a consequent
// that fails minConf never reappears inside a larger consequent
// (confidence is anti-monotone in the consequent).
func Generate(fam *itemset.Family, minConf float64) ([]Rule, error) {
	var out []Rule
	err := ForEach(fam, minConf, func(r Rule) { out = append(out, r) })
	if err != nil {
		return nil, err
	}
	Sort(out)
	return out, nil
}

// Count tallies the valid exact and approximate rules at minConf
// without materializing them — the counting experiments run at scales
// where the full rule list would be wastefully large.
func Count(fam *itemset.Family, minConf float64) (exact, approximate int, err error) {
	err = ForEach(fam, minConf, func(r Rule) {
		if r.IsExact() {
			exact++
		} else {
			approximate++
		}
	})
	return exact, approximate, err
}

// ForEach streams every valid rule to visit, in per-itemset generation
// order (use Generate for the canonical sorted order).
func ForEach(fam *itemset.Family, minConf float64, visit func(Rule)) error {
	if minConf < 0 || minConf > 1 {
		return fmt.Errorf("rules: minConf %v outside [0,1]", minConf)
	}
	for _, f := range fam.All() {
		if f.Items.Len() < 2 {
			continue
		}
		eachRuleFor(fam, f, minConf, visit)
	}
	return nil
}

func eachRuleFor(fam *itemset.Family, f itemset.Counted, minConf float64, visit func(Rule)) {
	// Level 1 consequents: single items.
	var level []itemset.Itemset
	for _, c := range f.Items {
		cons := itemset.Of(c)
		if r, ok := makeRule(fam, f, cons); ok && r.Confidence() >= minConf {
			visit(r)
			level = append(level, cons)
		}
	}
	// Grow consequents apriori-style.
	for m := 2; m < f.Items.Len() && len(level) >= 2; m++ {
		cands := joinConsequents(level)
		var next []itemset.Itemset
		for _, cons := range cands {
			if r, ok := makeRule(fam, f, cons); ok && r.Confidence() >= minConf {
				visit(r)
				next = append(next, cons)
			}
		}
		level = next
	}
}

func makeRule(fam *itemset.Family, f itemset.Counted, cons itemset.Itemset) (Rule, bool) {
	ante := f.Items.Diff(cons)
	anteSup, ok := fam.Support(ante)
	if !ok {
		return Rule{}, false // cannot happen for a frequent f; guards misuse
	}
	consSup, _ := fam.Support(cons)
	return Rule{
		Antecedent:        ante,
		Consequent:        cons,
		Support:           f.Support,
		AntecedentSupport: anteSup,
		ConsequentSupport: consSup,
	}, true
}

// joinConsequents joins same-size consequents sharing all but the last
// item, mirroring levelwise.Join (duplicated here to keep consequent
// growth self-contained and allocation-light).
func joinConsequents(level []itemset.Itemset) []itemset.Itemset {
	sort.Slice(level, func(i, j int) bool { return level[i].CompareLex(level[j]) < 0 })
	var out []itemset.Itemset
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			k := len(a)
			if !a[:k-1].Equal(b[:k-1]) {
				break
			}
			cand := make(itemset.Itemset, k+1)
			copy(cand, a)
			cand[k] = b[k-1]
			out = append(out, cand)
		}
	}
	return out
}

// GenerateNaive enumerates valid rules by direct subset enumeration —
// a reference implementation used to cross-check Generate and as the
// naive baseline in benchmarks.
func GenerateNaive(fam *itemset.Family, minConf float64) ([]Rule, error) {
	if minConf < 0 || minConf > 1 {
		return nil, fmt.Errorf("rules: minConf %v outside [0,1]", minConf)
	}
	var out []Rule
	for _, f := range fam.All() {
		if f.Items.Len() < 2 {
			continue
		}
		f := f
		f.Items.Subsets(func(ante itemset.Itemset) bool {
			anteSup, ok := fam.Support(ante)
			if !ok {
				return true
			}
			cons := f.Items.Diff(ante)
			consSup, _ := fam.Support(cons)
			r := Rule{
				Antecedent:        ante,
				Consequent:        cons,
				Support:           f.Support,
				AntecedentSupport: anteSup,
				ConsequentSupport: consSup,
			}
			if r.Confidence() >= minConf {
				out = append(out, r)
			}
			return true
		})
	}
	Sort(out)
	return out, nil
}

// Dedup removes duplicate (antecedent, consequent) pairs, keeping the
// first occurrence. Input order is preserved.
func Dedup(list []Rule) []Rule {
	seen := make(map[string]bool, len(list))
	out := list[:0:0]
	for _, r := range list {
		k := r.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}
