// Package pascal implements the PASCAL frequent-itemset miner
// (Bastide, Taouil, Pasquier, Stumme, Lakhal — "Mining frequent
// patterns with counting inference", SIGKDD Explorations 2(2), 2000),
// the same group's key-pattern refinement of Apriori: once an itemset
// is known not to be a key (some subset has equal support), its
// support is *inferred* as the minimum of its immediate subsets'
// supports instead of being counted against the database. On
// correlated data most candidates are non-keys and the database work
// collapses; on weakly correlated data PASCAL degrades gracefully to
// Apriori.
package pascal

import (
	"context"
	"fmt"

	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/levelwise"
)

// Stats reports the counting-inference effectiveness of a run.
type Stats struct {
	Passes             int
	CandidatesPerLevel []int
	CountedPerLevel    []int // candidates actually counted in the DB
	InferredPerLevel   []int // candidates whose support was inferred
}

// TotalCounted sums the counted candidates over all levels.
func (s Stats) TotalCounted() int {
	n := 0
	for _, c := range s.CountedPerLevel {
		n += c
	}
	return n
}

// TotalInferred sums the inferred candidates over all levels.
func (s Stats) TotalInferred() int {
	n := 0
	for _, c := range s.InferredPerLevel {
		n += c
	}
	return n
}

type entry struct {
	items   itemset.Itemset
	support int
	isKey   bool
}

// Mine returns all non-empty frequent itemsets with absolute support ≥
// minSup, plus inference statistics.
func Mine(d *dataset.Dataset, minSup int) (*itemset.Family, Stats, error) {
	return MineContext(context.Background(), d, minSup)
}

// MineContext is Mine with cancellation: ctx is checked before every
// level, so a cancelled context aborts the run within one level.
func MineContext(ctx context.Context, d *dataset.Dataset, minSup int) (*itemset.Family, Stats, error) {
	var stats Stats
	if minSup < 1 {
		return nil, stats, fmt.Errorf("pascal: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	fam := itemset.NewFamily()
	nTx := d.NumTransactions()

	// Level 1.
	sup := d.ItemSupports()
	stats.Passes = 1
	stats.CandidatesPerLevel = append(stats.CandidatesPerLevel, d.NumItems())
	stats.CountedPerLevel = append(stats.CountedPerLevel, d.NumItems())
	stats.InferredPerLevel = append(stats.InferredPerLevel, 0)
	var level []entry
	for it, s := range sup {
		if s < minSup {
			continue
		}
		one := itemset.Of(it)
		fam.Add(one, s)
		// A single item is a key unless it is as frequent as ∅.
		level = append(level, entry{items: one, support: s, isKey: s < nTx})
	}

	for k := 2; len(level) >= 2; k++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		prev := make(map[string]*entry, len(level))
		items := make([]itemset.Itemset, len(level))
		for i := range level {
			prev[level[i].items.Key()] = &level[i]
			items[i] = level[i].items
		}
		levelwise.SortLex(items)
		cands := levelwise.Join(items)
		cands = levelwise.PruneBySubsets(cands, levelwise.Keys(items))
		if len(cands) == 0 {
			break
		}
		stats.CandidatesPerLevel = append(stats.CandidatesPerLevel, len(cands))

		next := make([]entry, 0, len(cands))
		var toCount []int // indices into next needing a database count
		for _, cand := range cands {
			pred := -1
			anyNonKey := false
			for drop := 0; drop < len(cand); drop++ {
				sub := make(itemset.Itemset, 0, len(cand)-1)
				sub = append(sub, cand[:drop]...)
				sub = append(sub, cand[drop+1:]...)
				e := prev[sub.Key()]
				if pred < 0 || e.support < pred {
					pred = e.support
				}
				if !e.isKey {
					anyNonKey = true
				}
			}
			if anyNonKey {
				// Counting inference: supp(cand) = pred, no DB work.
				next = append(next, entry{items: cand, support: pred, isKey: false})
				continue
			}
			next = append(next, entry{items: cand, support: pred, isKey: false})
			toCount = append(toCount, len(next)-1)
		}
		stats.InferredPerLevel = append(stats.InferredPerLevel, len(next)-len(toCount))
		stats.CountedPerLevel = append(stats.CountedPerLevel, len(toCount))

		if len(toCount) > 0 {
			countSets := make([]itemset.Itemset, len(toCount))
			for i, idx := range toCount {
				countSets[i] = next[idx].items
			}
			counts := make([]int, len(countSets))
			trie := levelwise.NewTrie(k, countSets)
			if err := trie.WalkPass(ctx, d.Transactions(), k, func(_, ci int) { counts[ci]++ }); err != nil {
				return nil, stats, err
			}
			stats.Passes++
			for i, idx := range toCount {
				pred := next[idx].support // pred was stored as the bound
				next[idx].support = counts[i]
				next[idx].isKey = counts[i] < pred
			}
		}

		// Keep the frequent ones.
		kept := next[:0]
		for _, e := range next {
			if e.support >= minSup {
				fam.Add(e.items, e.support)
				kept = append(kept, e)
			}
		}
		level = kept
	}
	return fam, stats, nil
}
