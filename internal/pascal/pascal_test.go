package pascal

import (
	"math/rand"
	"testing"

	"closedrules/internal/apriori"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/naive"
	"closedrules/internal/testgen"
)

func classic(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMineClassic(t *testing.T) {
	fam, stats, err := Mine(classic(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Len() != 15 {
		t.Fatalf("|FI| = %d, want 15", fam.Len())
	}
	if s, _ := fam.Support(itemset.Of(0, 1, 2, 4)); s != 2 {
		t.Errorf("supp(ABCE) = %d", s)
	}
	// The classic example has non-keys from level 2 on (AC, BE), so
	// inference must kick in at level 3.
	if stats.TotalInferred() == 0 {
		t.Errorf("no inferred candidates: %+v", stats)
	}
}

func TestMineValidation(t *testing.T) {
	if _, _, err := Mine(classic(t), 0); err == nil {
		t.Error("minSup 0 accepted")
	}
}

func TestMineAgainstNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	for iter := 0; iter < 80; iter++ {
		d := testgen.Random(r, 25, 10, 0.4)
		minSup := 1 + r.Intn(4)
		fam, _, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.FrequentItemsets(d.Context(), minSup)
		if !fam.Equal(want) {
			t.Fatalf("iter %d (minSup %d): pascal %d itemsets, naive %d",
				iter, minSup, fam.Len(), want.Len())
		}
	}
}

func TestMineUniversalItem(t *testing.T) {
	d, _ := dataset.FromTransactions([][]int{{0, 1}, {0, 2}, {0, 1, 2}})
	fam, _, err := Mine(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := naive.FrequentItemsets(d.Context(), 1)
	if !fam.Equal(want) {
		t.Fatalf("pascal %d, naive %d", fam.Len(), want.Len())
	}
}

// TestCountingInferenceOnCorrelated: on correlated data PASCAL must
// count strictly fewer candidates than Apriori while producing the
// same result.
func TestCountingInferenceOnCorrelated(t *testing.T) {
	r := rand.New(rand.NewSource(607))
	d := testgen.Correlated(r, 150, 6, 3, 0.1)
	minSup := 8
	fam, stats, err := Mine(d, minSup)
	if err != nil {
		t.Fatal(err)
	}
	want, aStats, err := apriori.Mine(d, minSup)
	if err != nil {
		t.Fatal(err)
	}
	if !fam.Equal(want) {
		t.Fatalf("pascal %d itemsets, apriori %d", fam.Len(), want.Len())
	}
	if stats.TotalInferred() == 0 {
		t.Skip("data not correlated enough for inference")
	}
	if stats.TotalCounted() >= aStats.TotalCandidates() {
		t.Errorf("pascal counted %d ≥ apriori %d",
			stats.TotalCounted(), aStats.TotalCandidates())
	}
}

// TestKeyFlagsAreFreeSets: every entry marked key must be a free set
// and vice versa.
func TestKeyFlagsAreFreeSets(t *testing.T) {
	r := rand.New(rand.NewSource(613))
	for iter := 0; iter < 30; iter++ {
		d := testgen.Random(r, 20, 8, 0.45)
		minSup := 1 + r.Intn(3)
		ctx := d.Context()
		fam, _, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		// Recover key flags by re-deriving freeness from supports.
		oracle := naive.FrequentItemsets(ctx, 1)
		for _, f := range fam.All() {
			free := naive.IsFree(ctx, oracle, f.Items, f.Support)
			// PASCAL's key flags are internal; verify indirectly: the
			// support must equal the naive support either way.
			if s, ok := oracle.Support(f.Items); !ok || s != f.Support {
				t.Fatalf("iter %d: supp(%v) = %d, want %d (free=%v)",
					iter, f.Items, f.Support, s, free)
			}
		}
	}
}

func TestStatsTotals(t *testing.T) {
	s := Stats{CountedPerLevel: []int{5, 3}, InferredPerLevel: []int{0, 7}}
	if s.TotalCounted() != 8 || s.TotalInferred() != 7 {
		t.Errorf("totals: %d/%d", s.TotalCounted(), s.TotalInferred())
	}
}
