// Package charm implements the CHARM closed-itemset miner (Zaki &
// Hsiao, SDM 2002), the best-known follow-on to Close/A-Close. It
// explores the itemset-tidset search tree depth-first, using the four
// tidset-containment properties to collapse branches, and a
// subsumption hash to confirm closedness. CHARM does not track
// minimal generators; it serves as an independent producer of FC for
// cross-checking and as an ablation point in the benchmarks.
package charm

import (
	"context"
	"fmt"
	"sort"

	"closedrules/internal/bitset"
	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/galois"
	"closedrules/internal/itemset"
)

type node struct {
	items itemset.Itemset
	tids  bitset.Set
}

type miner struct {
	ctx    context.Context
	minSup int
	fc     *closedset.Set
	// byHash buckets found closed itemsets by tidset hash for the
	// subsumption check.
	byHash map[uint64][]subEntry
}

type subEntry struct {
	items   itemset.Itemset
	support int
}

// Mine returns the frequent closed itemsets (including the bottom
// h(∅)) at absolute support ≥ minSup.
func Mine(d *dataset.Dataset, minSup int) (*closedset.Set, error) {
	return MineContext(context.Background(), d, minSup)
}

// MineContext is Mine with cancellation: ctx is checked at every
// branch extension of the IT-tree, so a cancelled context aborts the
// run within one extension step.
func MineContext(ctx context.Context, d *dataset.Dataset, minSup int) (*closedset.Set, error) {
	if minSup < 1 {
		return nil, fmt.Errorf("charm: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dc := d.Context()
	m := &miner{ctx: ctx, minSup: minSup, fc: closedset.New(), byHash: map[uint64][]subEntry{}}

	if d.NumTransactions() >= minSup {
		bottom := galois.Closure(dc, itemset.Empty())
		m.fc.Add(bottom, d.NumTransactions())
		m.byHash[bitset.Full(d.NumTransactions()).Hash()] = append(
			m.byHash[bitset.Full(d.NumTransactions()).Hash()],
			subEntry{items: bottom, support: d.NumTransactions()})
	}

	// Universal items (support |O|) belong to every closure; they are
	// absorbed into each root's prefix instead of spawning branches.
	var roots []node
	var universal itemset.Itemset
	for it := 0; it < dc.NumItems; it++ {
		sup := dc.Cols[it].Count()
		switch {
		case d.NumTransactions() > 0 && sup == d.NumTransactions():
			universal = universal.With(it)
		case sup >= minSup:
			roots = append(roots, node{items: itemset.Of(it), tids: dc.Cols[it]})
		}
	}
	if universal.Len() > 0 {
		for i := range roots {
			roots[i].items = roots[i].items.Union(universal)
		}
	}

	sortBySupport(roots)
	if err := m.extend(roots); err != nil {
		return nil, err
	}
	return m.fc, nil
}

func sortBySupport(ns []node) {
	sort.SliceStable(ns, func(i, j int) bool {
		ci, cj := ns[i].tids.Count(), ns[j].tids.Count()
		if ci != cj {
			return ci < cj
		}
		return ns[i].items.Compare(ns[j].items) < 0
	})
}

// extend processes one level of the IT-tree (Zaki's CHARM-EXTEND).
func (m *miner) extend(nodes []node) error {
	skip := make([]bool, len(nodes))
	for i := range nodes {
		if skip[i] {
			continue
		}
		if err := m.ctx.Err(); err != nil {
			return err
		}
		x := nodes[i].items
		ti := nodes[i].tids
		var children []node
		for j := i + 1; j < len(nodes); j++ {
			if skip[j] {
				continue
			}
			tj := nodes[j].tids
			inter := ti.Intersect(tj)
			sup := inter.Count()
			tiSubTj := inter.Equal(ti) // ti ⊆ tj
			tjSubTi := inter.Equal(tj) // tj ⊆ ti
			switch {
			case tiSubTj && tjSubTi: // property 1: identical tidsets
				x = x.Union(nodes[j].items)
				skip[j] = true
			case tiSubTj: // property 2: ti ⊂ tj — absorb j's items
				x = x.Union(nodes[j].items)
			case tjSubTi: // property 3: tj ⊂ ti — child, drop j
				if sup >= m.minSup {
					children = append(children, node{items: nodes[j].items, tids: inter})
				}
				skip[j] = true
			default: // property 4: incomparable
				if sup >= m.minSup {
					children = append(children, node{items: nodes[j].items, tids: inter})
				}
			}
		}
		// Children inherit the fully absorbed prefix x: every item of x
		// occurs in all of ti ⊇ child tids.
		for k := range children {
			children[k].items = children[k].items.Union(x)
		}
		sortBySupport(children)
		if len(children) > 0 {
			if err := m.extend(children); err != nil {
				return err
			}
		}
		m.insertIfClosed(x, ti)
	}
	return nil
}

// insertIfClosed adds x unless a previously found closed itemset with
// the same tidset subsumes it.
func (m *miner) insertIfClosed(x itemset.Itemset, tids bitset.Set) {
	h := tids.Hash()
	sup := tids.Count()
	for _, e := range m.byHash[h] {
		if e.support == sup && e.items.ContainsAll(x) {
			return // subsumed: x is not closed
		}
	}
	m.byHash[h] = append(m.byHash[h], subEntry{items: x, support: sup})
	m.fc.Add(x, sup)
}
