// Package charm implements the CHARM closed-itemset miner (Zaki &
// Hsiao, SDM 2002), the best-known follow-on to Close/A-Close. It
// explores the itemset-tidset search tree depth-first, using the four
// tidset-containment properties to collapse branches, and a
// subsumption hash to confirm closedness. CHARM does not track
// minimal generators; it serves as an independent producer of FC for
// cross-checking and as an ablation point in the benchmarks. A
// parallel variant that fans the first-level equivalence classes out
// to a worker pool is in pcharm.go.
package charm

import (
	"context"
	"fmt"
	"sort"

	"closedrules/internal/bitset"
	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/galois"
	"closedrules/internal/itemset"
)

// node is one IT-pair of the search tree, with its support cached so
// the pairwise pruning never re-popcounts a tidset.
type node struct {
	items itemset.Itemset
	tids  bitset.Set
	sup   int
}

// miner walks the IT-tree and hands every candidate closed itemset to
// emit; the closedness filtering itself lives behind emit, so the
// sequential and parallel front ends share the exact same search.
type miner struct {
	ctx    context.Context
	minSup int
	emit   func(x itemset.Itemset, tids bitset.Set, sup int)
}

// collector is the subsumption index of the sequential miner: a
// candidate is closed unless an earlier-found closed itemset with the
// same tidset contains it (Zaki's hash-based closedness check).
type collector struct {
	fc     *closedset.Set
	byHash map[uint64][]subEntry
}

type subEntry struct {
	items   itemset.Itemset
	support int
}

func newCollector() *collector {
	return &collector{fc: closedset.New(), byHash: map[uint64][]subEntry{}}
}

// insert adds x unless a previously found closed itemset with the same
// tidset subsumes it. Equal support plus containment implies equal
// tidsets, so the hash only buckets — it never decides.
func (c *collector) insert(x itemset.Itemset, h uint64, sup int) {
	for _, e := range c.byHash[h] {
		if e.support == sup && e.items.ContainsAll(x) {
			return // subsumed: x is not closed
		}
	}
	c.byHash[h] = append(c.byHash[h], subEntry{items: x, support: sup})
	c.fc.Add(x, sup)
}

// Mine returns the frequent closed itemsets (including the bottom
// h(∅)) at absolute support ≥ minSup.
func Mine(d *dataset.Dataset, minSup int) (*closedset.Set, error) {
	return MineContext(context.Background(), d, minSup)
}

// MineContext is Mine with cancellation: ctx is checked at every
// branch extension of the IT-tree, so a cancelled context aborts the
// run within one extension step.
func MineContext(ctx context.Context, d *dataset.Dataset, minSup int) (*closedset.Set, error) {
	if minSup < 1 {
		return nil, fmt.Errorf("charm: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dc := d.Context()
	col := newCollector()
	addBottom(dc, d, minSup, col)

	roots := buildRoots(dc, d.NumTransactions(), minSup)
	m := &miner{ctx: ctx, minSup: minSup, emit: func(x itemset.Itemset, tids bitset.Set, sup int) {
		col.insert(x, tids.Hash(), sup)
	}}
	if err := m.extend(roots); err != nil {
		return nil, err
	}
	return col.fc, nil
}

// addBottom inserts h(∅) (support |O|) when it is frequent.
func addBottom(dc *dataset.Context, d *dataset.Dataset, minSup int, col *collector) {
	if d.NumTransactions() >= minSup {
		bottom := galois.Closure(dc, itemset.Empty())
		full := bitset.Full(d.NumTransactions())
		col.insert(bottom, full.Hash(), d.NumTransactions())
	}
}

// buildRoots assembles the level-1 IT-pairs in increasing-support
// order. Universal items (support |O|) belong to every closure; they
// are absorbed into each root's prefix instead of spawning branches.
func buildRoots(dc *dataset.Context, numTx, minSup int) []node {
	var roots []node
	var universal itemset.Itemset
	for it := 0; it < dc.NumItems; it++ {
		sup := dc.Cols[it].Count()
		switch {
		case numTx > 0 && sup == numTx:
			universal = universal.With(it)
		case sup >= minSup:
			roots = append(roots, node{items: itemset.Of(it), tids: dc.Cols[it], sup: sup})
		}
	}
	if universal.Len() > 0 {
		for i := range roots {
			roots[i].items = roots[i].items.Union(universal)
		}
	}
	sortBySupport(roots)
	return roots
}

func sortBySupport(ns []node) {
	sort.SliceStable(ns, func(i, j int) bool {
		if ns[i].sup != ns[j].sup {
			return ns[i].sup < ns[j].sup
		}
		return ns[i].items.Compare(ns[j].items) < 0
	})
}

// extend processes one level of the IT-tree (Zaki's CHARM-EXTEND).
func (m *miner) extend(nodes []node) error {
	skip := make([]bool, len(nodes))
	for i := range nodes {
		if skip[i] {
			continue
		}
		if err := m.ctx.Err(); err != nil {
			return err
		}
		x, members := classOf(nodes, skip, i, m.minSup)
		if len(members) > 0 {
			if err := m.extend(buildChildren(nodes, i, x, members)); err != nil {
				return err
			}
		}
		m.emit(x, nodes[i].tids, nodes[i].sup)
	}
	return nil
}

// member is one surviving child of an equivalence class, identified by
// its index in the parent level; its tidset is not materialized yet.
type member struct {
	j   int
	sup int
}

// probe is the popcount-only kernel of the class-boundary decision:
// the support of ta ∩ tb plus Zaki's two containment flags, read off
// the cached supports without materializing the intersection.
//
//ar:noalloc
func probe(a, b node) (sup int, taSubTb, tbSubTa bool) {
	sup = a.tids.IntersectionCount(b.tids)
	return sup, sup == a.sup, sup == b.sup
}

// classOf computes the equivalence class of nodes[i] at the current
// level: the fully absorbed prefix x and the surviving child members,
// applying Zaki's four tidset-containment properties and marking later
// nodes consumed by properties 1/3 in skip. The pairwise pruning works
// through probe only, so deciding class boundaries allocates no
// tidsets at all — materialization is buildChildren's job, which the
// parallel front end defers into its workers. Shared by the sequential
// walk (extend) and MineParallelContext, which must agree on class
// boundaries exactly.
func classOf(nodes []node, skip []bool, i, minSup int) (itemset.Itemset, []member) {
	x := nodes[i].items
	var members []member
	for j := i + 1; j < len(nodes); j++ {
		if skip[j] {
			continue
		}
		sup, tiSubTj, tjSubTi := probe(nodes[i], nodes[j])
		switch {
		case tiSubTj && tjSubTi: // property 1: identical tidsets
			x = x.Union(nodes[j].items)
			skip[j] = true
		case tiSubTj: // property 2: ti ⊂ tj — absorb j's items
			x = x.Union(nodes[j].items)
		case tjSubTi: // property 3: tj ⊂ ti — child, drop j
			if sup >= minSup {
				members = append(members, member{j: j, sup: sup})
			}
			skip[j] = true
		default: // property 4: incomparable
			if sup >= minSup {
				members = append(members, member{j: j, sup: sup})
			}
		}
	}
	return x, members
}

// buildChildren materializes the child nodes of one class: intersected
// tidsets, the absorbed prefix x unioned in (every item of x occurs in
// all of ti ⊇ child tids), sorted by support for the next level.
func buildChildren(nodes []node, i int, x itemset.Itemset, members []member) []node {
	ti := nodes[i].tids
	children := make([]node, len(members))
	for k, mb := range members {
		children[k] = node{
			items: nodes[mb.j].items.Union(x),
			tids:  ti.Intersect(nodes[mb.j].tids),
			sup:   mb.sup,
		}
	}
	sortBySupport(children)
	return children
}
