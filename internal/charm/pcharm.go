package charm

import (
	"context"
	"fmt"

	"closedrules/internal/bitset"
	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	registry "closedrules/internal/miner"
)

// Parallel CHARM: the first-level equivalence classes (one per
// frequent root item) are fanned out to a bounded worker pool, and the
// per-class results are merged back through the sequential subsumption
// index in root order.
//
// The merge is what makes the result byte-identical to MineContext:
// the IT-tree walk below a root never reads the subsumption index (the
// index only filters output), so each worker records its *candidate*
// insertions — in the exact order the sequential miner would attempt
// them — and the single-threaded replay applies the same
// previously-found-subsumer check against the same prior state. No
// striped locks are needed on the hot path; workers share nothing but
// the read-only root nodes.

// attempt is one candidate insertion recorded by a worker: the itemset,
// its support, and the hash of its tidset (the tidset itself is not
// retained — equal support plus containment already implies tidset
// equality, the hash only buckets).
type attempt struct {
	items itemset.Itemset
	hash  uint64
	sup   int
}

// pjob is the unit handed to the pool: one root's class — prefix,
// root index and surviving members — plus the recorded attempts it
// produces. Child tidsets are not materialized here: the dispatcher
// only decides class boundaries (popcounts, allocation-free); the
// worker pays for its own class's intersections, so that work runs in
// parallel and only one class's tidsets are resident per worker.
type pjob struct {
	x        itemset.Itemset
	root     int
	members  []member
	attempts []attempt
}

// MineParallel mines the frequent closed itemsets with the given
// number of workers (≤ 0 means one per CPU); the result is
// byte-identical to Mine.
func MineParallel(d *dataset.Dataset, minSup, workers int) (*closedset.Set, error) {
	return MineParallelContext(context.Background(), d, minSup, workers)
}

// MineParallelContext is MineParallel with cancellation: every worker
// checks ctx at each branch extension of its subtree, so a cancelled
// context aborts the whole pool within one extension step per worker.
func MineParallelContext(ctx context.Context, d *dataset.Dataset, minSup, workers int) (*closedset.Set, error) {
	if minSup < 1 {
		return nil, fmt.Errorf("charm: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	dc := d.Context()
	roots := buildRoots(dc, d.NumTransactions(), minSup)

	// First level, sequential: the pairwise tidset-containment pruning
	// couples the roots (property 1/3 removes later roots, property 2
	// grows the prefix), so the class boundaries are computed by the
	// same classOf the sequential CHARM-EXTEND uses — only the descent
	// below each class is farmed out.
	var jobs []*pjob
	skip := make([]bool, len(roots))
	for i := range roots {
		if skip[i] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x, members := classOf(roots, skip, i, minSup)
		jobs = append(jobs, &pjob{x: x, root: i, members: members})
	}

	err := registry.RunPool(len(jobs), workers, func(i int) error {
		return jobs[i].run(ctx, roots, minSup)
	})
	if err != nil {
		return nil, err
	}

	// Deterministic merge: replay every worker's attempts in root order
	// through the sequential subsumption index.
	col := newCollector()
	addBottom(dc, d, minSup, col)
	for _, jb := range jobs {
		for _, a := range jb.attempts {
			col.insert(a.items, a.hash, a.sup)
		}
	}
	return col.fc, nil
}

// run mines one class subtree, recording candidate insertions in
// sequential attempt order (children post-order, then the class prefix
// itself).
func (jb *pjob) run(ctx context.Context, roots []node, minSup int) error {
	m := &miner{ctx: ctx, minSup: minSup, emit: func(x itemset.Itemset, tids bitset.Set, sup int) {
		jb.attempts = append(jb.attempts, attempt{items: x, hash: tids.Hash(), sup: sup})
	}}
	if len(jb.members) > 0 {
		if err := m.extend(buildChildren(roots, jb.root, jb.x, jb.members)); err != nil {
			return err
		}
	}
	jb.attempts = append(jb.attempts, attempt{items: jb.x, hash: roots[jb.root].tids.Hash(), sup: roots[jb.root].sup})
	return nil
}
