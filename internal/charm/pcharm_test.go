package charm

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"closedrules/internal/testgen"
)

// countdownCtx cancels itself after a fixed number of Err probes — a
// deterministic way to hit a miner mid-run, deep inside the IT-tree,
// regardless of machine speed.
type countdownCtx struct {
	context.Context
	mu sync.Mutex
	n  int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
	if c.n <= 0 {
		return context.Canceled
	}
	return nil
}

func TestMineParallelMatchesSequentialClassic(t *testing.T) {
	d := classic(t)
	for _, workers := range []int{1, 2, 4, 7} {
		seq, err := Mine(d, 2)
		if err != nil {
			t.Fatal(err)
		}
		par, err := MineParallel(d, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !par.Equal(seq) {
			t.Fatalf("workers=%d: parallel %d closed, sequential %d", workers, par.Len(), seq.Len())
		}
	}
}

// TestMineParallelByteIdentical checks the strongest contract: All()
// returns the same closed itemsets, in the same order, with the same
// supports — not just the same family.
func TestMineParallelByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	for iter := 0; iter < 60; iter++ {
		d := testgen.Random(r, 30, 12, 0.4)
		minSup := 1 + r.Intn(4)
		workers := 1 + r.Intn(6)
		seq, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		par, err := MineParallel(d, minSup, workers)
		if err != nil {
			t.Fatal(err)
		}
		sa, pa := seq.All(), par.All()
		if len(sa) != len(pa) {
			t.Fatalf("iter %d (workers %d): parallel %d closed, sequential %d", iter, workers, len(pa), len(sa))
		}
		for i := range sa {
			if !sa[i].Items.Equal(pa[i].Items) || sa[i].Support != pa[i].Support {
				t.Fatalf("iter %d (workers %d): element %d differs: %v/%d vs %v/%d",
					iter, workers, i, pa[i].Items, pa[i].Support, sa[i].Items, sa[i].Support)
			}
		}
	}
}

func TestMineParallelCorrelated(t *testing.T) {
	r := rand.New(rand.NewSource(137))
	for iter := 0; iter < 10; iter++ {
		d := testgen.Correlated(r, 80, 5, 3, 0.15)
		minSup := 2 + r.Intn(8)
		seq, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		par, err := MineParallel(d, minSup, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !par.Equal(seq) {
			t.Fatalf("iter %d: parallel %d, sequential %d", iter, par.Len(), seq.Len())
		}
	}
}

func TestMineParallelCancelledMidMine(t *testing.T) {
	r := rand.New(rand.NewSource(139))
	d := testgen.Correlated(r, 200, 6, 3, 0.2)
	// A full run needs far more than 40 Err probes; the countdown
	// cancels while workers are inside their subtrees.
	ctx := &countdownCtx{Context: context.Background(), n: 40}
	if _, err := MineParallelContext(ctx, d, 2, 4); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMineParallelCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineParallelContext(ctx, classic(t), 2, 2); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMineParallelValidation(t *testing.T) {
	if _, err := MineParallel(classic(t), 0, 2); err == nil {
		t.Error("minSup 0 accepted")
	}
}
