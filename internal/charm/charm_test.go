package charm

import (
	"math/rand"
	"testing"

	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/naive"
	"closedrules/internal/testgen"
)

func classic(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMineClassic(t *testing.T) {
	fc, err := Mine(classic(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Len() != 6 {
		t.Fatalf("|FC| = %d, want 6: %v", fc.Len(), fc.All())
	}
	if s, ok := fc.Support(itemset.Of(0, 1, 2, 4)); !ok || s != 2 {
		t.Errorf("supp(ABCE) = %d,%v", s, ok)
	}
}

func TestMineValidation(t *testing.T) {
	if _, err := Mine(classic(t), 0); err == nil {
		t.Error("minSup 0 accepted")
	}
}

func TestMineUniversalItem(t *testing.T) {
	d, _ := dataset.FromTransactions([][]int{{0, 1}, {0, 2}, {0, 1, 2}})
	fc, err := Mine(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := naive.ClosedItemsets(d.Context(), 1)
	if !fc.Equal(want) {
		t.Fatalf("FC mismatch: got %v want %v", fc.All(), want.All())
	}
}

func TestMineSingleItemUniverse(t *testing.T) {
	d, _ := dataset.FromTransactions([][]int{{0}, {0}, {}})
	fc, err := Mine(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := naive.ClosedItemsets(d.Context(), 1)
	if !fc.Equal(want) {
		t.Fatalf("FC mismatch: got %v want %v", fc.All(), want.All())
	}
}

func TestMineAgainstNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for iter := 0; iter < 120; iter++ {
		d := testgen.Random(r, 25, 10, 0.4)
		minSup := 1 + r.Intn(4)
		fc, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.ClosedItemsets(d.Context(), minSup)
		if !fc.Equal(want) {
			t.Fatalf("iter %d (minSup %d): charm %d closed, naive %d\ncharm: %v\nnaive: %v",
				iter, minSup, fc.Len(), want.Len(), fc.All(), want.All())
		}
	}
}

func TestMineAgainstNaiveCorrelated(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	for iter := 0; iter < 15; iter++ {
		d := testgen.Correlated(r, 60, 5, 3, 0.15)
		minSup := 2 + r.Intn(8)
		fc, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.ClosedItemsets(d.Context(), minSup)
		if !fc.Equal(want) {
			t.Fatalf("iter %d: charm %d, naive %d", iter, fc.Len(), want.Len())
		}
	}
}
