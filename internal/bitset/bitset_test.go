package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewIsEmpty(t *testing.T) {
	for _, w := range []int{0, 1, 63, 64, 65, 200} {
		s := New(w)
		if !s.IsEmpty() {
			t.Errorf("New(%d) not empty", w)
		}
		if s.Count() != 0 {
			t.Errorf("New(%d).Count() = %d", w, s.Count())
		}
		if s.Width() != w {
			t.Errorf("New(%d).Width() = %d", w, s.Width())
		}
	}
}

func TestAddHasRemove(t *testing.T) {
	s := New(130)
	for _, x := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(x) {
			t.Fatalf("Has(%d) before Add", x)
		}
		s.Add(x)
		if !s.Has(x) {
			t.Fatalf("!Has(%d) after Add", x)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Has(64) after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	// Adding twice is idempotent.
	s.Add(0)
	if got := s.Count(); got != 7 {
		t.Fatalf("Count after double Add = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(){
		func() { New(10).Add(10) },
		func() { New(10).Add(-1) },
		func() { New(10).Has(100) },
		func() { New(10).Remove(10) },
		func() { New(-1) },
		func() { New(10).And(New(11)) },
		func() { New(10).IsSubset(New(64)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFullAndFillTrim(t *testing.T) {
	for _, w := range []int{1, 63, 64, 65, 100, 128} {
		s := Full(w)
		if got := s.Count(); got != w {
			t.Errorf("Full(%d).Count() = %d", w, got)
		}
		// trim must keep bits beyond width zero so Equal works.
		e := New(w)
		for i := 0; i < w; i++ {
			e.Add(i)
		}
		if !s.Equal(e) {
			t.Errorf("Full(%d) != element-wise fill", w)
		}
	}
	s := Full(0)
	if !s.IsEmpty() {
		t.Error("Full(0) not empty")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice(100, []int{1, 5, 64, 70, 99})
	b := FromSlice(100, []int{5, 64, 65})

	if got := a.Intersect(b).Slice(); !reflect.DeepEqual(got, []int{5, 64}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b).Slice(); !reflect.DeepEqual(got, []int{1, 5, 64, 65, 70, 99}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Difference(b).Slice(); !reflect.DeepEqual(got, []int{1, 70, 99}) {
		t.Errorf("Difference = %v", got)
	}
	if got := a.IntersectionCount(b); got != 2 {
		t.Errorf("IntersectionCount = %d", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false")
	}
	if a.Intersects(FromSlice(100, []int{2, 3})) {
		t.Error("Intersects disjoint = true")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice(70, []int{0, 1, 69})
	b := FromSlice(70, []int{1, 69})
	c := a.Clone()
	c.And(b)
	if got := c.Slice(); !reflect.DeepEqual(got, []int{1, 69}) {
		t.Errorf("And = %v", got)
	}
	c = a.Clone()
	c.Or(FromSlice(70, []int{5}))
	if got := c.Slice(); !reflect.DeepEqual(got, []int{0, 1, 5, 69}) {
		t.Errorf("Or = %v", got)
	}
	c = a.Clone()
	c.AndNot(b)
	if got := c.Slice(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("AndNot = %v", got)
	}
	// a must be untouched by Clone-based ops.
	if got := a.Slice(); !reflect.DeepEqual(got, []int{0, 1, 69}) {
		t.Errorf("a mutated: %v", got)
	}
}

func TestSubsetRelations(t *testing.T) {
	a := FromSlice(128, []int{2, 64})
	b := FromSlice(128, []int{2, 64, 100})
	if !a.IsSubset(b) || !a.IsProperSubset(b) {
		t.Error("a should be proper subset of b")
	}
	if b.IsSubset(a) {
		t.Error("b ⊆ a should be false")
	}
	if !a.IsSubset(a) || a.IsProperSubset(a) {
		t.Error("reflexivity broken")
	}
	if !New(128).IsSubset(a) {
		t.Error("∅ ⊆ a should hold")
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := FromSlice(200, []int{3, 5, 64, 128, 199})
	var seen []int
	s.ForEach(func(x int) bool {
		seen = append(seen, x)
		return true
	})
	if !sort.IntsAreSorted(seen) {
		t.Errorf("ForEach out of order: %v", seen)
	}
	if !reflect.DeepEqual(seen, []int{3, 5, 64, 128, 199}) {
		t.Errorf("ForEach = %v", seen)
	}
	var count int
	s.ForEach(func(x int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestNext(t *testing.T) {
	s := FromSlice(200, []int{3, 64, 199})
	cases := []struct{ in, want int }{
		{-5, 3}, {0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 199}, {199, 199}, {200, -1},
	}
	for _, c := range cases {
		if got := s.Next(c.in); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := New(10).Next(0); got != -1 {
		t.Errorf("empty Next = %d", got)
	}
}

func TestString(t *testing.T) {
	if got := FromSlice(10, []int{1, 3}).String(); got != "{1, 3}" {
		t.Errorf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestHashDistinguishes(t *testing.T) {
	a := FromSlice(100, []int{1, 2, 3})
	b := FromSlice(100, []int{1, 2, 4})
	if a.Hash() == b.Hash() {
		t.Error("hash collision on trivially different sets (suspicious)")
	}
	if a.Hash() != a.Clone().Hash() {
		t.Error("hash not deterministic")
	}
}

// randomSet draws a set and its reference map representation.
func randomSet(r *rand.Rand, width int) (Set, map[int]bool) {
	s := New(width)
	m := map[int]bool{}
	n := r.Intn(width + 1)
	for i := 0; i < n; i++ {
		x := r.Intn(width)
		s.Add(x)
		m[x] = true
	}
	return s, m
}

func TestQuickAgainstMapModel(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		width := 1 + r.Intn(180)
		a, ma := randomSet(r, width)
		b, mb := randomSet(r, width)

		inter := a.Intersect(b)
		uni := a.Union(b)
		diff := a.Difference(b)
		for x := 0; x < width; x++ {
			if inter.Has(x) != (ma[x] && mb[x]) {
				t.Fatalf("intersect mismatch at %d", x)
			}
			if uni.Has(x) != (ma[x] || mb[x]) {
				t.Fatalf("union mismatch at %d", x)
			}
			if diff.Has(x) != (ma[x] && !mb[x]) {
				t.Fatalf("difference mismatch at %d", x)
			}
		}
		if inter.Count() != a.IntersectionCount(b) {
			t.Fatal("IntersectionCount != Intersect().Count()")
		}
		if got, want := uni.Count(), a.Count()+b.Count()-inter.Count(); got != want {
			t.Fatalf("inclusion-exclusion: %d != %d", got, want)
		}
		if inter.IsSubset(a) != true || inter.IsSubset(b) != true {
			t.Fatal("intersection not subset of operands")
		}
		if !a.IsSubset(uni) || !b.IsSubset(uni) {
			t.Fatal("operand not subset of union")
		}
	}
}

func TestQuickSliceRoundTrip(t *testing.T) {
	f := func(elems []uint8) bool {
		s := New(256)
		want := map[int]bool{}
		for _, e := range elems {
			s.Add(int(e))
			want[int(e)] = true
		}
		got := s.Slice()
		if len(got) != len(want) {
			return false
		}
		for _, x := range got {
			if !want[x] {
				return false
			}
		}
		return sort.IntsAreSorted(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestInPlacePrimitives cross-checks the allocation-free ops against
// their allocating counterparts on random operands, including aliased
// destinations.
func TestInPlacePrimitives(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.Intn(200)
		a, b := New(width), New(width)
		for i := 0; i < width; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
			}
			if rng.Intn(2) == 0 {
				b.Add(i)
			}
		}
		dst := New(width)
		if dst.AndInto(a, b); !dst.Equal(a.Intersect(b)) {
			t.Fatal("AndInto != Intersect")
		}
		if dst.OrInto(a, b); !dst.Equal(a.Union(b)) {
			t.Fatal("OrInto != Union")
		}
		if dst.AndNotInto(a, b); !dst.Equal(a.Difference(b)) {
			t.Fatal("AndNotInto != Difference")
		}
		if got, want := a.IntersectionCount(b), a.Intersect(b).Count(); got != want {
			t.Fatalf("IntersectionCount = %d, want %d", got, want)
		}
		if got, want := a.AndNotCount(b), a.Difference(b).Count(); got != want {
			t.Fatalf("AndNotCount = %d, want %d", got, want)
		}
		if got, want := a.IsSubsetOf(b), a.Difference(b).IsEmpty(); got != want {
			t.Fatalf("IsSubsetOf = %v, want %v", got, want)
		}
		// Aliased destination: dst == a.
		aCopy := a.Clone()
		aCopy.AndInto(aCopy, b)
		if !aCopy.Equal(a.Intersect(b)) {
			t.Fatal("aliased AndInto differs")
		}
		// Copy reuses storage.
		scratch := New(width)
		scratch.Copy(a)
		if !scratch.Equal(a) {
			t.Fatal("Copy differs")
		}
	}
}

// TestInPlacePrimitivesAllocFree asserts the hot-path probes allocate
// nothing per operation.
func TestInPlacePrimitivesAllocFree(t *testing.T) {
	a, b, dst := Full(1000), New(1000), New(1000)
	for i := 0; i < 1000; i += 3 {
		b.Add(i)
	}
	n := testing.AllocsPerRun(100, func() {
		dst.AndInto(a, b)
		_ = a.IntersectionCount(b)
		_ = a.AndNotCount(b)
		_ = b.IsSubsetOf(a)
		dst.Copy(b)
	})
	if n != 0 {
		t.Fatalf("allocs per run = %v, want 0", n)
	}
}

// TestInPlaceWidthMismatchPanics verifies the width contract.
func TestInPlaceWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on width mismatch")
		}
	}()
	New(10).AndInto(New(10), New(20))
}
