// Package bitset provides dense, fixed-width bitsets used throughout the
// library to represent object sets (extents, tidsets) and item sets
// (intents) of a binary data-mining context.
//
// A Set is a value type: the zero value is an empty set of width 0.
// All binary operations require operands of equal width; they panic
// otherwise, since mixing universes is always a programming error.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-width bitset over the universe {0, …, width-1}.
type Set struct {
	words []uint64
	width int
}

// New returns an empty set over a universe of the given width.
func New(width int) Set {
	if width < 0 {
		panic("bitset: negative width")
	}
	return Set{words: make([]uint64, (width+wordBits-1)/wordBits), width: width}
}

// Full returns the set containing every element of the universe.
func Full(width int) Set {
	s := New(width)
	s.Fill()
	return s
}

// FromSlice returns a set of the given width containing exactly the
// listed elements.
func FromSlice(width int, elems []int) Set {
	s := New(width)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Width reports the width of the universe.
func (s Set) Width() int { return s.width }

// Add inserts x into the set.
func (s Set) Add(x int) {
	s.check(x)
	s.words[x/wordBits] |= 1 << (uint(x) % wordBits)
}

// Remove deletes x from the set.
func (s Set) Remove(x int) {
	s.check(x)
	s.words[x/wordBits] &^= 1 << (uint(x) % wordBits)
}

// Has reports whether x is in the set.
func (s Set) Has(x int) bool {
	s.check(x)
	return s.words[x/wordBits]&(1<<(uint(x)%wordBits)) != 0
}

func (s Set) check(x int) {
	if x < 0 || x >= s.width {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", x, s.width))
	}
}

// Count returns the cardinality of the set.
func (s Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no elements.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Copy overwrites s with the contents of t (equal widths required)
// without allocating — the reuse counterpart of Clone.
func (s Set) Copy(t Set) {
	s.sameWidth(t)
	copy(s.words, t.words)
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{words: make([]uint64, len(s.words)), width: s.width}
	copy(c.words, s.words)
	return c
}

// Fill adds every element of the universe to the set.
func (s Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// Clear removes all elements.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// trim zeroes the bits beyond width in the last word.
func (s Set) trim() {
	if s.width%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(s.width) % wordBits)) - 1
	}
}

func (s Set) sameWidth(t Set) {
	if s.width != t.width {
		panic(fmt.Sprintf("bitset: width mismatch %d vs %d", s.width, t.width))
	}
}

// And replaces s with s ∩ t.
func (s Set) And(t Set) {
	s.sameWidth(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// Or replaces s with s ∪ t.
func (s Set) Or(t Set) {
	s.sameWidth(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// AndNot replaces s with s \ t.
func (s Set) AndNot(t Set) {
	s.sameWidth(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// IntersectionCount returns |s ∩ t| by popcounting the word-wise AND —
// no allocation and no mutation. It is the support probe of the
// vertical miners: most candidate extensions only need the cardinality
// of an intersection, never the intersection itself.
//
//ar:noalloc
func (s Set) IntersectionCount(t Set) int {
	s.sameWidth(t)
	n := 0
	for i, w := range s.words {
		n += bits.OnesCount64(w & t.words[i])
	}
	return n
}

// IntersectionAtLeast reports whether |s ∩ t| ≥ k, returning as soon
// as the partial popcount reaches k. It is the thresholded variant of
// IntersectionCount for minimum-support pruning, where a surviving
// extension never needs the exact cardinality: probes that pass exit
// after a prefix of the words, and only failing probes pay the full
// scan.
//
//ar:noalloc
func (s Set) IntersectionAtLeast(t Set, k int) bool {
	s.sameWidth(t)
	if k <= 0 {
		return true
	}
	// Popcount in branch-free blocks of 8 words and only then test the
	// threshold: a per-word test would stall the popcount pipeline on
	// the (common) failing probes that must scan everything anyway.
	n, i := 0, 0
	for ; i+8 <= len(s.words); i += 8 {
		n += bits.OnesCount64(s.words[i]&t.words[i]) +
			bits.OnesCount64(s.words[i+1]&t.words[i+1]) +
			bits.OnesCount64(s.words[i+2]&t.words[i+2]) +
			bits.OnesCount64(s.words[i+3]&t.words[i+3]) +
			bits.OnesCount64(s.words[i+4]&t.words[i+4]) +
			bits.OnesCount64(s.words[i+5]&t.words[i+5]) +
			bits.OnesCount64(s.words[i+6]&t.words[i+6]) +
			bits.OnesCount64(s.words[i+7]&t.words[i+7])
		if n >= k {
			return true
		}
	}
	for ; i < len(s.words); i++ {
		n += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return n >= k
}

// AndInto sets dst = a ∩ b without allocating. All three sets must
// share one width, and dst must not alias a or b: the implementation
// reserves the right to reorder or vectorize the word loop, which is
// only safe when the destination is distinct. It returns dst for
// chaining.
//
//ar:noalloc
func (dst Set) AndInto(a, b Set) Set {
	a.sameWidth(b)
	dst.sameWidth(a)
	for i, w := range a.words {
		dst.words[i] = w & b.words[i]
	}
	return dst
}

// OrInto sets dst = a ∪ b without allocating, under the same
// no-aliasing and width contract as AndInto.
//
//ar:noalloc
func (dst Set) OrInto(a, b Set) Set {
	a.sameWidth(b)
	dst.sameWidth(a)
	for i, w := range a.words {
		dst.words[i] = w | b.words[i]
	}
	return dst
}

// AndNotInto sets dst = a ∖ b without allocating, under the same
// no-aliasing and width contract as AndInto.
//
//ar:noalloc
func (dst Set) AndNotInto(a, b Set) Set {
	a.sameWidth(b)
	dst.sameWidth(a)
	for i, w := range a.words {
		dst.words[i] = w &^ b.words[i]
	}
	return dst
}

// AndNotCount returns |a ∖ b| (the size of the diffset) without
// allocating — the diffset analogue of IntersectionCount.
//
//ar:noalloc
func (s Set) AndNotCount(t Set) int {
	s.sameWidth(t)
	n := 0
	for i, w := range s.words {
		n += bits.OnesCount64(w &^ t.words[i])
	}
	return n
}

// Intersect returns a new set s ∩ t.
func (s Set) Intersect(t Set) Set {
	s.sameWidth(t)
	r := Set{words: make([]uint64, len(s.words)), width: s.width}
	for i, w := range s.words {
		r.words[i] = w & t.words[i]
	}
	return r
}

// Union returns a new set s ∪ t.
func (s Set) Union(t Set) Set {
	s.sameWidth(t)
	r := Set{words: make([]uint64, len(s.words)), width: s.width}
	for i, w := range s.words {
		r.words[i] = w | t.words[i]
	}
	return r
}

// Difference returns a new set s \ t.
func (s Set) Difference(t Set) Set {
	s.sameWidth(t)
	r := Set{words: make([]uint64, len(s.words)), width: s.width}
	for i, w := range s.words {
		r.words[i] = w &^ t.words[i]
	}
	return r
}

// Equal reports whether s and t contain the same elements.
func (s Set) Equal(t Set) bool {
	if s.width != t.width {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// IsSubset reports whether every element of s is in t. It is a synonym
// of IsSubsetOf, kept for symmetry with IsProperSubset.
func (s Set) IsSubset(t Set) bool { return s.IsSubsetOf(t) }

// IsSubsetOf reports whether s ⊆ t with a single word-wise pass and no
// allocation — the containment probe behind CHARM's four tidset
// properties.
//
//ar:noalloc
func (s Set) IsSubsetOf(t Set) bool {
	s.sameWidth(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// IsProperSubset reports whether s ⊂ t strictly.
func (s Set) IsProperSubset(t Set) bool {
	return s.IsSubset(t) && !s.Equal(t)
}

// Intersects reports whether s ∩ t is non-empty.
func (s Set) Intersects(t Set) bool {
	s.sameWidth(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for each element in ascending order. If fn returns
// false the iteration stops early.
func (s Set) ForEach(fn func(x int) bool) {
	for i, w := range s.words {
		base := i * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(base + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// Next returns the smallest element ≥ x, or -1 if none exists.
func (s Set) Next(x int) int {
	if x < 0 {
		x = 0
	}
	if x >= s.width {
		return -1
	}
	i := x / wordBits
	w := s.words[i] >> (uint(x) % wordBits)
	if w != 0 {
		return x + bits.TrailingZeros64(w)
	}
	for i++; i < len(s.words); i++ {
		if s.words[i] != 0 {
			return i*wordBits + bits.TrailingZeros64(s.words[i])
		}
	}
	return -1
}

// Slice returns the elements in ascending order.
func (s Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(x int) bool {
		out = append(out, x)
		return true
	})
	return out
}

// Hash returns a 64-bit FNV-1a style hash of the set contents, suitable
// for bucketing sets by value (e.g. CHARM's closedness check).
func (s Set) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range s.words {
		for b := 0; b < 8; b++ {
			h ^= (w >> (8 * uint(b))) & 0xff
			h *= prime
		}
	}
	return h
}

// String renders the set as "{e1, e2, …}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(x int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", x)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
