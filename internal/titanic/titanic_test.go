package titanic

import (
	"math/rand"
	"testing"

	"closedrules/internal/closealg"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/naive"
	"closedrules/internal/testgen"
)

func classic(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.FromTransactions([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMineClassic(t *testing.T) {
	fc, stats, err := Mine(classic(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Len() != 6 {
		t.Fatalf("|FC| = %d, want 6: %v", fc.Len(), fc.All())
	}
	if s, ok := fc.Support(itemset.Of(1, 2, 4)); !ok || s != 3 {
		t.Errorf("supp(BCE) = %d,%v", s, ok)
	}
	// Counting passes only — closures must not add passes.
	if stats.Passes != len(stats.CandidatesPerLevel) {
		t.Errorf("Passes = %d with %d candidate levels",
			stats.Passes, len(stats.CandidatesPerLevel))
	}
}

func TestMineValidation(t *testing.T) {
	if _, _, err := Mine(classic(t), 0); err == nil {
		t.Error("minSup 0 accepted")
	}
}

func TestMineUniversalItem(t *testing.T) {
	d, _ := dataset.FromTransactions([][]int{{0, 1}, {0, 2}, {0, 1, 2}})
	fc, _, err := Mine(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := naive.ClosedItemsets(d.Context(), 1)
	if !fc.Equal(want) {
		t.Fatalf("FC mismatch: got %v want %v", fc.All(), want.All())
	}
	bot, ok := fc.Bottom()
	if !ok || !bot.Items.Equal(itemset.Of(0)) {
		t.Errorf("Bottom = %v,%v", bot, ok)
	}
}

// TestInfrequentBoundaryCase is the trap the counted-candidate rule
// avoids: a and b both frequent, {a,b} infrequent with the same
// supports — the closure of {a} must not absorb b.
func TestInfrequentBoundaryCase(t *testing.T) {
	// a=0 in tx 1-5, b=1 in tx 6-10, both support 5, {0,1} support 0.
	raw := [][]int{{0}, {0}, {0}, {0}, {0}, {1}, {1}, {1}, {1}, {1}}
	d, _ := dataset.FromTransactions(raw)
	fc, _, err := Mine(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	cl, ok := fc.ClosureOf(itemset.Of(0))
	if !ok || !cl.Items.Equal(itemset.Of(0)) {
		t.Fatalf("h({0}) = %v,%v — absorbed an infrequent extension", cl.Items, ok)
	}
	want := naive.ClosedItemsets(d.Context(), 5)
	if !fc.Equal(want) {
		t.Fatalf("FC mismatch: got %v want %v", fc.All(), want.All())
	}
}

func TestMineAgainstNaiveRandom(t *testing.T) {
	r := rand.New(rand.NewSource(401))
	for iter := 0; iter < 100; iter++ {
		d := testgen.Random(r, 25, 10, 0.4)
		minSup := 1 + r.Intn(4)
		fc, _, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.ClosedItemsets(d.Context(), minSup)
		if !fc.Equal(want) {
			t.Fatalf("iter %d (minSup %d): titanic %d closed, naive %d\ntitanic: %v\nnaive: %v",
				iter, minSup, fc.Len(), want.Len(), fc.All(), want.All())
		}
	}
}

func TestMineHighMinSupRandom(t *testing.T) {
	// High thresholds stress the infrequent-candidate bookkeeping.
	r := rand.New(rand.NewSource(409))
	for iter := 0; iter < 60; iter++ {
		d := testgen.Random(r, 30, 8, 0.5)
		minSup := 4 + r.Intn(8)
		fc, _, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.ClosedItemsets(d.Context(), minSup)
		if !fc.Equal(want) {
			t.Fatalf("iter %d (minSup %d): titanic %d, naive %d",
				iter, minSup, fc.Len(), want.Len())
		}
	}
}

func TestMineAgreesWithCloseCorrelated(t *testing.T) {
	r := rand.New(rand.NewSource(419))
	for iter := 0; iter < 30; iter++ {
		d := testgen.Correlated(r, 60, 5, 3, 0.2)
		minSup := 2 + r.Intn(8)
		a, _, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		c, _, err := closealg.Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(c) {
			t.Fatalf("iter %d: titanic and close disagree (%d vs %d)", iter, a.Len(), c.Len())
		}
	}
}

// TestGeneratorsMatchClose: TITANIC's keys are exactly Close's
// generators.
func TestGeneratorsMatchClose(t *testing.T) {
	r := rand.New(rand.NewSource(421))
	for iter := 0; iter < 30; iter++ {
		d := testgen.Random(r, 20, 8, 0.45)
		minSup := 1 + r.Intn(3)
		a, _, err := Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		c, _, err := closealg.Mine(d, minSup)
		if err != nil {
			t.Fatal(err)
		}
		g1, g2 := a.AllGenerators(), c.AllGenerators()
		if len(g1) != len(g2) {
			t.Fatalf("iter %d: %d keys vs %d generators", iter, len(g1), len(g2))
		}
		for i := range g1 {
			if !g1[i].Generator.Equal(g2[i].Generator) || !g1[i].Closure.Equal(g2[i].Closure) {
				t.Fatalf("iter %d: key %d mismatch: %v→%v vs %v→%v", iter, i,
					g1[i].Generator, g1[i].Closure, g2[i].Generator, g2[i].Closure)
			}
		}
	}
}
