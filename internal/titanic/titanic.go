// Package titanic implements the TITANIC closed-itemset miner
// (Stumme, Taouil, Bastide, Pasquier, Lakhal — "Computing iceberg
// concept lattices with TITANIC", DKE 42(2), 2002), the third
// algorithm of the same research group. Like A-Close it mines key
// sets (minimal generators) level-wise by support counting, but it
// computes every closure *from the counted supports alone*, with no
// extra database pass:
//
//	h(X) = X ∪ { a ∉ X : s(X∪{a}) = s(X) }
//
// where s(Y) is the counted support when Y was a candidate, and
// otherwise min{ s(C) : C counted, C ⊆ Y } — exact for frequent Y
// because the minimal equal-support subset (a key) of a frequent set
// is always a counted candidate, and a safe under-threshold bound for
// infrequent Y because the minimal infrequent subset of Y was counted
// too (candidates are counted before the minsup filter).
package titanic

import (
	"context"
	"fmt"
	"sort"

	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/levelwise"
)

// Stats reports the level-wise work of a run.
type Stats struct {
	Passes             int
	CandidatesPerLevel []int
	KeysPerLevel       []int
}

type key struct {
	items   itemset.Itemset
	support int
}

// Mine returns the frequent closed itemsets (including the bottom
// h(∅) with generator ∅) at absolute support ≥ minSup. No database
// pass is made after support counting: closures come from the counted
// candidate supports.
func Mine(d *dataset.Dataset, minSup int) (*closedset.Set, Stats, error) {
	return MineContext(context.Background(), d, minSup)
}

// MineContext is Mine with cancellation: ctx is checked before every
// level-wise counting pass and before each level of the closure
// computation, so a cancelled context aborts the run within one level.
func MineContext(ctx context.Context, d *dataset.Dataset, minSup int) (*closedset.Set, Stats, error) {
	var stats Stats
	if minSup < 1 {
		return nil, stats, fmt.Errorf("titanic: minSup %d < 1", minSup)
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	nTx := d.NumTransactions()

	// counted holds the exact support of every candidate ever counted,
	// including infrequent ones; buckets[a] lists counted candidates
	// containing item a (used by the closure fallback).
	counted := map[string]int{}
	buckets := make([][]itemset.Itemset, d.NumItems())
	remember := func(c itemset.Itemset, sup int) {
		counted[c.Key()] = sup
		for _, a := range c {
			buckets[a] = append(buckets[a], c)
		}
	}

	// Level 1: every item is a candidate.
	sup := d.ItemSupports()
	stats.Passes = 1
	stats.CandidatesPerLevel = append(stats.CandidatesPerLevel, d.NumItems())
	var level []key
	for it, s := range sup {
		one := itemset.Of(it)
		remember(one, s)
		// Items as frequent as ∅ are not keys (supp = supp(∅)).
		if s >= minSup && s < nTx {
			level = append(level, key{items: one, support: s})
		}
	}
	stats.KeysPerLevel = append(stats.KeysPerLevel, len(level))
	allKeys := [][]key{level}

	for k := 2; len(level) >= 2; k++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		supports := make(map[string]int, len(level))
		items := make([]itemset.Itemset, len(level))
		for i, g := range level {
			supports[g.items.Key()] = g.support
			items[i] = g.items
		}
		levelwise.SortLex(items)
		cands := levelwise.Join(items)
		cands = levelwise.PruneBySubsets(cands, levelwise.Keys(items))
		if len(cands) == 0 {
			break
		}
		stats.CandidatesPerLevel = append(stats.CandidatesPerLevel, len(cands))

		counts := make([]int, len(cands))
		trie := levelwise.NewTrie(k, cands)
		if err := trie.WalkPass(ctx, d.Transactions(), k, func(_, idx int) { counts[idx]++ }); err != nil {
			return nil, stats, err
		}
		stats.Passes++

		var next []key
		for i, cand := range cands {
			remember(cand, counts[i])
			if counts[i] < minSup {
				continue
			}
			isKey := true
			for drop := 0; drop < len(cand) && isKey; drop++ {
				sub := make(itemset.Itemset, 0, len(cand)-1)
				sub = append(sub, cand[:drop]...)
				sub = append(sub, cand[drop+1:]...)
				if s, ok := supports[sub.Key()]; ok && s == counts[i] {
					isKey = false
				}
			}
			if isKey {
				next = append(next, key{items: cand, support: counts[i]})
			}
		}
		stats.KeysPerLevel = append(stats.KeysPerLevel, len(next))
		allKeys = append(allKeys, next)
		level = next
	}

	// Sort each bucket by ascending support so the closure fallback
	// hits its early exit (m < xSup) as soon as possible.
	for a := range buckets {
		b := buckets[a]
		sort.Slice(b, func(i, j int) bool {
			return counted[b[i].Key()] < counted[b[j].Key()]
		})
	}

	// Pair supports in an allocation-free index: every pair of level-1
	// keys was counted at level 2 (before the minsup filter), and
	// supp(X∪{a}) = supp(X) requires supp({x,a}) ≥ supp(X) for every
	// x ∈ X — on sparse data this rejects nearly every candidate item
	// before the bucket scan.
	pairSup := map[[2]int]int{}
	for c, s := range counted {
		it, err := itemset.FromKey(c)
		if err == nil && it.Len() == 2 {
			pairSup[[2]int{it[0], it[1]}] = s
		}
	}
	singleSup := d.ItemSupports()

	// extendsClosure reports whether supp(X∪{a}) = supp(X), deciding
	// a ∈ h(X) from the counted supports (see package comment); the
	// bound is exact whenever X∪{a} is frequent.
	extendsClosure := func(x itemset.Itemset, xSup, a int) bool {
		// supp(X∪{a}) ≤ supp({a}): a cheap O(1) rejection.
		if singleSup[a] < xSup {
			return false
		}
		for _, xi := range x {
			p := [2]int{xi, a}
			if xi > a {
				p = [2]int{a, xi}
			}
			if s, ok := pairSup[p]; ok && s < xSup {
				return false // supp({x,a}) < supp(X) ⇒ supp(X∪{a}) < supp(X)
			}
		}
		y := x.With(a)
		if s, ok := counted[y.Key()]; ok {
			return s == xSup
		}
		// min over counted C ∋ a with C∖{a} ⊆ X; we only need to know
		// whether the min drops below supp(X), so the ascending-support
		// bucket order lets us stop at the first conclusive entry.
		for _, c := range buckets[a] {
			s := counted[c.Key()]
			if s >= xSup {
				break // all remaining entries are ≥ xSup: min = xSup
			}
			if x.ContainsAll(c.Without(a)) {
				return false // min < xSup
			}
		}
		return true
	}

	closureOf := func(x itemset.Itemset, xSup int) itemset.Itemset {
		h := x.Clone()
		for a := 0; a < d.NumItems(); a++ {
			if x.Contains(a) {
				continue
			}
			if extendsClosure(x, xSup, a) {
				h = h.With(a)
			}
		}
		return h
	}

	fc := closedset.New()
	if nTx >= minSup {
		fc.AddGenerator(closureOf(itemset.Empty(), nTx), nTx, itemset.Empty())
	}
	for _, lv := range allKeys {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		for _, g := range lv {
			fc.AddGenerator(closureOf(g.items, g.support), g.support, g.items)
		}
	}
	return fc, stats, nil
}
