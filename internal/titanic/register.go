package titanic

import (
	"context"

	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/miner"
)

type registered struct{}

func (registered) MineClosed(ctx context.Context, d *dataset.Dataset, minSup int) ([]closedset.Closed, error) {
	fc, _, err := MineContext(ctx, d, minSup)
	if err != nil {
		return nil, err
	}
	return fc.All(), nil
}

func (registered) TracksGenerators() bool { return true }

func init() { miner.RegisterClosed("titanic", registered{}) }
