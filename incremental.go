package closedrules

import (
	"context"
	"errors"
	"fmt"

	"closedrules/internal/dataset"
	"closedrules/internal/incremental"
	"closedrules/internal/miner"
)

// ErrIncremental marks conditions under which an incremental update
// cannot reproduce a full mine (lowered threshold, empty delta, …).
// Callers that see it should fall back to MineContext on the full
// dataset; errors.Is reports it on every refusal from UpdateAppend.
var ErrIncremental = errors.New("closedrules: incremental update not applicable")

// UpdateAppend derives the Result for prev's dataset extended by the
// appended transactions without re-mining: resident closed itemsets are
// re-counted against the delta and the (provably few) new closed
// itemsets are enumerated from the appended rows, per the delta
// argument documented in internal/incremental. The returned Result is
// byte-equivalent — same closed itemsets, supports, and derived
// generator-free bases — to MineContext over the concatenated dataset
// with the same options; prev is left untouched and keeps serving.
//
// The options are interpreted exactly as in MineContext, but the
// algorithm selection is ignored (the result's MinerName is
// "incremental") and the resolved absolute threshold must be at least
// prev's — true by construction for a relative threshold under appends.
// Generators are not maintained: the result has TracksGenerators() ==
// false, so bases that need generators (generic, informative) require a
// full re-mine instead.
//
// Refusals — nil or empty inputs, a lowered threshold, a threshold
// above the new transaction count — return an error wrapping
// ErrIncremental. Context cancellation returns ctx.Err() unwrapped.
func UpdateAppend(ctx context.Context, prev *Result, appended *Dataset, opts ...MineOption) (*Result, error) {
	if prev == nil {
		return nil, fmt.Errorf("%w: nil previous result", ErrIncremental)
	}
	if appended == nil || appended.NumTransactions() == 0 {
		return nil, fmt.Errorf("%w: empty delta", ErrIncremental)
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	// The algorithm option is unused here (the update engine is the
	// algorithm), but an unknown name must not succeed incrementally
	// when the same options would fail a full mine.
	if cfg.algorithm != "" {
		if _, err := miner.LookupClosed(cfg.algorithm); err != nil {
			return nil, err
		}
	}
	full, err := dataset.Concat(prev.d, appended)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrIncremental, err)
	}
	minSup, err := cfg.minSup(full)
	if err != nil {
		return nil, err
	}
	fc, err := incremental.Update(ctx, prev.fc, prev.minSup, full, prev.d.NumTransactions(), minSup)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrIncremental, err)
	}
	return &Result{
		d:         full,
		minSup:    minSup,
		minerName: "incremental",
		hasGens:   false,
		fc:        fc,
	}, nil
}
