package closedrules

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"closedrules/internal/closedset"
	"closedrules/internal/rules"
)

// recCacheLimit bounds the per-state recommendation cache; when it
// fills, the cache is reset rather than evicted entry by entry — the
// working set of observed baskets in a serving deployment is small
// compared to the limit, so resets are rare.
const recCacheLimit = 1 << 12

// QueryService serves support, confidence and recommendation queries
// from a mined condensed representation (frequent closed itemsets +
// rule bases) to many concurrent callers — the long-lived serving
// counterpart of a one-shot Mine run. All methods are safe for
// concurrent use; Swap atomically replaces the underlying data (hot
// reload after a re-mine) without blocking in-flight queries.
type QueryService struct {
	mu sync.RWMutex
	st *serviceState
}

// serviceState is an immutable-after-build snapshot of everything the
// service answers from; Swap replaces it wholesale. Only the recCache
// map mutates after build, always under QueryService.mu.
type serviceState struct {
	numTx    int
	minConf  float64
	fc       *closedset.Set
	recRules []Rule // basis rules (exact + approximate) for Recommend
	recCache map[string][]Rule
}

// NewQueryService builds a service from a mining result. minConf
// filters the approximate basis rules served by Recommend; Support and
// Confidence are unaffected by it (they derive exact measures from the
// closed itemsets).
func NewQueryService(res *Result, minConf float64) (*QueryService, error) {
	st, err := stateFromResult(res, minConf)
	if err != nil {
		return nil, err
	}
	return &QueryService{st: st}, nil
}

// NewQueryServiceFromCollection builds a service from a detached
// closed-itemset collection (the "mine once, serve later" workflow).
// Exact rules come from the generic basis when the collection carries
// generators; otherwise Recommend serves approximate rules only.
func NewQueryServiceFromCollection(col *ClosedCollection, minConf float64) (*QueryService, error) {
	st, err := stateFromCollection(col, minConf)
	if err != nil {
		return nil, err
	}
	return &QueryService{st: st}, nil
}

func stateFromResult(res *Result, minConf float64) (*serviceState, error) {
	if res == nil {
		return nil, fmt.Errorf("closedrules: nil Result")
	}
	if minConf < 0 || minConf > 1 {
		return nil, fmt.Errorf("closedrules: minConf %v outside [0,1]", minConf)
	}
	bases, err := res.Bases(minConf)
	if err != nil {
		return nil, err
	}
	recRules := make([]Rule, 0, bases.Size())
	recRules = append(recRules, bases.Exact...)
	recRules = append(recRules, bases.Approximate...)
	return &serviceState{
		numTx:    res.Dataset().NumTransactions(),
		minConf:  minConf,
		fc:       res.fc,
		recRules: recRules,
		recCache: map[string][]Rule{},
	}, nil
}

func stateFromCollection(col *ClosedCollection, minConf float64) (*serviceState, error) {
	if col == nil {
		return nil, fmt.Errorf("closedrules: nil ClosedCollection")
	}
	if minConf < 0 || minConf > 1 {
		return nil, fmt.Errorf("closedrules: minConf %v outside [0,1]", minConf)
	}
	var recRules []Rule
	if len(col.set.AllGenerators()) > 0 {
		exact, err := col.GenericBasis()
		if err != nil {
			return nil, err
		}
		recRules = append(recRules, exact...)
	}
	approx, err := col.LuxenburgerReduction(minConf)
	if err != nil {
		return nil, err
	}
	recRules = append(recRules, approx...)
	return &serviceState{
		numTx:    col.NumTransactions(),
		minConf:  minConf,
		fc:       col.set,
		recRules: recRules,
		recCache: map[string][]Rule{},
	}, nil
}

// Swap atomically replaces the served data with a freshly mined
// result, keeping the service's confidence threshold. In-flight
// queries finish against the old snapshot; new queries see the new
// one. The expensive basis construction happens before the lock is
// taken, so queries are never blocked on a re-mine.
func (qs *QueryService) Swap(res *Result) error {
	qs.mu.RLock()
	minConf := qs.st.minConf
	qs.mu.RUnlock()
	st, err := stateFromResult(res, minConf)
	if err != nil {
		return err
	}
	qs.mu.Lock()
	qs.st = st
	qs.mu.Unlock()
	return nil
}

// NumTransactions returns |O| of the currently served dataset.
func (qs *QueryService) NumTransactions() int {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	return qs.st.numTx
}

// MinConfidence returns the confidence threshold of the served
// approximate basis.
func (qs *QueryService) MinConfidence() float64 {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	return qs.st.minConf
}

// NumRules returns the number of basis rules available to Recommend.
func (qs *QueryService) NumRules() int {
	qs.mu.RLock()
	defer qs.mu.RUnlock()
	return len(qs.st.recRules)
}

// Support answers supp(X) = supp(h(X)) from the closed itemsets; ok is
// false when X is not frequent at the mining threshold.
func (qs *QueryService) Support(ctx context.Context, x Itemset) (support int, ok bool, err error) {
	if err := ctx.Err(); err != nil {
		return 0, false, err
	}
	qs.mu.RLock()
	st := qs.st
	qs.mu.RUnlock()
	s, ok := st.fc.SupportOf(x)
	return s, ok, nil
}

// Confidence measures the rule A → C as supp(h(A∪C)) / supp(h(A)) —
// the paper's derivation — and errors when either support is not
// derivable (the rule involves an infrequent itemset) or the sides
// overlap.
func (qs *QueryService) Confidence(ctx context.Context, antecedent, consequent Itemset) (float64, error) {
	r, err := qs.Rule(ctx, antecedent, consequent)
	if err != nil {
		return 0, err
	}
	return r.Confidence(), nil
}

// Rule reconstructs the fully measured rule A → C (support, antecedent
// support, and consequent support when derivable) from the condensed
// representation.
func (qs *QueryService) Rule(ctx context.Context, antecedent, consequent Itemset) (Rule, error) {
	if err := ctx.Err(); err != nil {
		return Rule{}, err
	}
	if antecedent.Intersect(consequent).Len() > 0 {
		return Rule{}, fmt.Errorf("closedrules: antecedent and consequent overlap")
	}
	qs.mu.RLock()
	st := qs.st
	qs.mu.RUnlock()
	u := antecedent.Union(consequent)
	supU, ok := st.fc.SupportOf(u)
	if !ok {
		return Rule{}, fmt.Errorf("closedrules: support of %v not derivable (not frequent at the mining threshold)", u)
	}
	supA, ok := st.fc.SupportOf(antecedent)
	if !ok {
		return Rule{}, fmt.Errorf("closedrules: support of %v not derivable (not frequent at the mining threshold)", antecedent)
	}
	r := Rule{
		Antecedent:        antecedent,
		Consequent:        consequent,
		Support:           supU,
		AntecedentSupport: supA,
	}
	if supC, ok := st.fc.SupportOf(consequent); ok {
		r.ConsequentSupport = supC
	}
	return r, nil
}

// Recommend returns up to k basis rules applicable to the observed
// itemset — antecedent covered by the observation, consequent not
// already fully observed — ranked by descending lift. Results are
// cached per (observation, k) until the next Swap.
func (qs *QueryService) Recommend(ctx context.Context, observed Itemset, k int) ([]Rule, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("closedrules: Recommend k %d < 1", k)
	}
	key := observed.Key() + "#" + strconv.Itoa(k)
	qs.mu.RLock()
	st := qs.st
	cached, hit := st.recCache[key]
	qs.mu.RUnlock()
	if hit {
		// Hand out a copy: a caller re-sorting its result must not
		// corrupt the ranking served to the next cache hit.
		return append([]Rule(nil), cached...), nil
	}

	applicable := rules.WithAntecedentSubsetOf(st.recRules, observed)
	novel := rules.Filter(applicable, func(r Rule) bool {
		return !observed.ContainsAll(r.Consequent)
	})
	top := rules.TopBy(novel, k, rules.ByLift(st.numTx))

	qs.mu.Lock()
	// The state may have been swapped while we computed; caching into
	// the old snapshot's map is still correct (it is keyed to that
	// snapshot) and the map write is serialized by the lock.
	if len(st.recCache) >= recCacheLimit {
		st.recCache = map[string][]Rule{}
	}
	st.recCache[key] = top
	qs.mu.Unlock()
	return append([]Rule(nil), top...), nil
}
